package fft

import "fmt"

// The data re-sorting routines of Section IV. Each MPI rank of the r×c
// grid holds PLANES×ROWS×COLS = (N/r)×(N/c)×N double-complex elements.
// Before each of the two all-to-all exchanges, the local array is
// re-sorted into per-destination chunks; the paper measures exactly
// these packing loops (S1CF = store-1st-colwise-forward, etc.). The
// colwise and planewise variants traverse in different orders but
// produce identical chunks — which is why the paper reports only the
// colwise results ("the structure and performance of S1PF and S2PF are
// similar").

// Grid describes the process decomposition of an N³ transform.
type Grid struct {
	N, R, C int
}

// Validate checks divisibility.
func (g Grid) Validate() error {
	if g.N <= 0 || g.R <= 0 || g.C <= 0 {
		return fmt.Errorf("fft: non-positive grid %+v", g)
	}
	if g.N%g.R != 0 || g.N%g.C != 0 {
		return fmt.Errorf("fft: N=%d not divisible by grid %dx%d", g.N, g.R, g.C)
	}
	if g.N%(g.R*g.C) != 0 && g.N%g.R != 0 {
		return fmt.Errorf("fft: invalid grid %+v", g)
	}
	return nil
}

// Planes, Rows, Cols are the local extents (N/r, N/c, N).
func (g Grid) Planes() int { return g.N / g.R }
func (g Grid) Rows() int   { return g.N / g.C }
func (g Grid) Cols() int   { return g.N }

// LocalElems returns the per-rank element count.
func (g Grid) LocalElems() int { return g.Planes() * g.Rows() * g.Cols() }

// Ranks returns the total rank count.
func (g Grid) Ranks() int { return g.R * g.C }

// RankID maps grid coordinates to a rank number.
func (g Grid) RankID(i, j int) int { return i*g.C + j }

// RankCoords inverts RankID.
func (g Grid) RankCoords(id int) (i, j int) { return id / g.C, id % g.C }

// S1CF packs the local array (layout [plane][row][col], col = z
// contiguous) into c chunks for the first all-to-all: chunk j' holds the
// z-slab z ∈ [j'·N/c, (j'+1)·N/c) in layout [plane][z'][row]. This is
// the colwise variant: the output is filled sequentially while the input
// is read in strides (Listing 8's access pattern).
func (g Grid) S1CF(local []complex128) [][]complex128 {
	return g.packFirst(local, true)
}

// S1PF is the planewise variant of S1CF: identical chunks, produced by
// traversing the input sequentially and scattering into the outputs.
func (g Grid) S1PF(local []complex128) [][]complex128 {
	return g.packFirst(local, false)
}

func (g Grid) packFirst(local []complex128, colwise bool) [][]complex128 {
	p, r, n, zc := g.Planes(), g.Rows(), g.Cols(), g.N/g.C
	if len(local) != g.LocalElems() {
		panic(fmt.Sprintf("fft: S1 pack of %d elements, want %d", len(local), g.LocalElems()))
	}
	chunks := make([][]complex128, g.C)
	for j := range chunks {
		chunks[j] = make([]complex128, p*zc*r)
	}
	if colwise {
		// Destination-major traversal: chunks fill sequentially, the
		// source is read with a stride of COLS elements.
		for j := 0; j < g.C; j++ {
			dst := chunks[j]
			idx := 0
			for plane := 0; plane < p; plane++ {
				for z := 0; z < zc; z++ {
					zGlobal := j*zc + z
					for row := 0; row < r; row++ {
						dst[idx] = local[(plane*r+row)*n+zGlobal]
						idx++
					}
				}
			}
		}
		return chunks
	}
	// Planewise: source-major traversal, scattered stores.
	for plane := 0; plane < p; plane++ {
		for row := 0; row < r; row++ {
			base := (plane*r + row) * n
			for col := 0; col < n; col++ {
				j := col / zc
				z := col % zc
				chunks[j][(plane*zc+z)*r+row] = local[base+col]
			}
		}
	}
	return chunks
}

// UnpackFirst merges the chunks received in the first all-to-all into
// the mid-pipeline layout [plane][z'][y] with y ∈ [0,N) contiguous, so
// the second FFT pass runs on unit-stride rows. received[j”] is the
// chunk from column-group peer j” (layout [plane][z'][row]).
func (g Grid) UnpackFirst(received [][]complex128) []complex128 {
	p, r, zc := g.Planes(), g.Rows(), g.N/g.C
	if len(received) != g.C {
		panic(fmt.Sprintf("fft: UnpackFirst with %d chunks, want %d", len(received), g.C))
	}
	out := make([]complex128, p*zc*g.N)
	for j := 0; j < g.C; j++ {
		chunk := received[j]
		if len(chunk) != p*zc*r {
			panic(fmt.Sprintf("fft: first-stage chunk %d has %d elements, want %d", j, len(chunk), p*zc*r))
		}
		for plane := 0; plane < p; plane++ {
			for z := 0; z < zc; z++ {
				dstBase := (plane*zc+z)*g.N + j*r
				srcBase := (plane*zc + z) * r
				copy(out[dstBase:dstBase+r], chunk[srcBase:srcBase+r])
			}
		}
	}
	return out
}

// S2CF packs the mid-pipeline array (layout [plane][z'][y]) into r
// chunks for the second all-to-all: chunk i' holds y ∈ [i'·N/r,
// (i'+1)·N/r) in layout [plane][z'][y”]. The innermost traversal
// dimension matches the innermost layout dimension, so the stride's
// effect is amortized (Fig. 9's 1-read-1-write behaviour).
func (g Grid) S2CF(mid []complex128) [][]complex128 {
	return g.packSecond(mid, true)
}

// S2PF is the planewise variant of S2CF (identical chunks).
func (g Grid) S2PF(mid []complex128) [][]complex128 {
	return g.packSecond(mid, false)
}

func (g Grid) packSecond(mid []complex128, colwise bool) [][]complex128 {
	p, zc, yr := g.Planes(), g.N/g.C, g.N/g.R
	if len(mid) != p*zc*g.N {
		panic(fmt.Sprintf("fft: S2 pack of %d elements, want %d", len(mid), p*zc*g.N))
	}
	chunks := make([][]complex128, g.R)
	for i := range chunks {
		chunks[i] = make([]complex128, p*zc*yr)
	}
	if colwise {
		for i := 0; i < g.R; i++ {
			dst := chunks[i]
			idx := 0
			for plane := 0; plane < p; plane++ {
				for z := 0; z < zc; z++ {
					srcBase := (plane*zc+z)*g.N + i*yr
					copy(dst[idx:idx+yr], mid[srcBase:srcBase+yr])
					idx += yr
				}
			}
		}
		return chunks
	}
	for plane := 0; plane < p; plane++ {
		for z := 0; z < zc; z++ {
			base := (plane*zc + z) * g.N
			for y := 0; y < g.N; y++ {
				i := y / yr
				chunks[i][(plane*zc+z)*yr+(y%yr)] = mid[base+y]
			}
		}
	}
	return chunks
}

// UnpackSecond merges the second-exchange chunks into the final layout
// [y”][z'][x] with x ∈ [0,N) contiguous for the third FFT pass.
// received[i”] is the chunk from row-group peer i” (layout
// [plane][z'][y”]).
func (g Grid) UnpackSecond(received [][]complex128) []complex128 {
	p, zc, yr := g.Planes(), g.N/g.C, g.N/g.R
	if len(received) != g.R {
		panic(fmt.Sprintf("fft: UnpackSecond with %d chunks, want %d", len(received), g.R))
	}
	out := make([]complex128, yr*zc*g.N)
	for i := 0; i < g.R; i++ {
		chunk := received[i]
		if len(chunk) != p*zc*yr {
			panic(fmt.Sprintf("fft: second-stage chunk %d has %d elements, want %d", i, len(chunk), p*zc*yr))
		}
		for plane := 0; plane < p; plane++ {
			x := i*p + plane
			for z := 0; z < zc; z++ {
				for y2 := 0; y2 < yr; y2++ {
					out[(y2*zc+z)*g.N+x] = chunk[(plane*zc+z)*yr+y2]
				}
			}
		}
	}
	return out
}
