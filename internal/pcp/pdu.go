// Package pcp implements a Performance Co-Pilot-style metrics service: a
// PMCD daemon that holds the privileged credential needed to read nest
// hardware counters and exports them to unprivileged clients over a
// binary TCP protocol, and the client used by PAPI's PCP component.
//
// The wire protocol is a simplified PCP: length-prefixed, big-endian PDUs
// with a handshake, a name/PMID table exchange, and fetch-by-PMID. The
// daemon refreshes its view of the hardware counters at a fixed sampling
// interval (like pmcd's collection), so clients observe slightly stale
// values — one of the indirection costs the paper quantifies.
package pcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Magic is exchanged at connection setup.
const Magic = "PCP1"

// PDU type codes. They are exported so protocol middleboxes (the
// pmproxy daemon) can speak the wire format without reimplementing it.
const (
	PDUNamesReq  uint8 = 1
	PDUNamesResp uint8 = 2
	PDUFetchReq  uint8 = 3
	PDUFetchResp uint8 = 4
	// PDUFetchPartialResp answers a fetch that some cluster nodes could
	// not serve: a fetch-response body prefixed with the missing node
	// list (see AppendPartialResp). Clients surface it as a FetchResult
	// plus a *PartialError.
	PDUFetchPartialResp uint8 = 5
	// PDUFetchAllReq is the batch fetch: an empty payload answered with
	// every metric in the server's table, in PMID order, from one
	// snapshot. One round trip serves a whole EventSet or a cluster
	// snapshot instead of a names exchange plus an enumerated fetch.
	PDUFetchAllReq uint8 = 6
	// PDUVersionReq negotiates the wire protocol version after the magic
	// handshake: the payload is the sender's maximum version, the reply
	// (PDUVersionResp) is min(client max, server max). A Version1-only
	// server answers it with PDUError instead — which is exactly the
	// fallback signal, since the connection stays usable in lockstep
	// framing. At Version2 and above both sides switch to tagged frames
	// (see WriteTaggedPDU) immediately after the version exchange.
	PDUVersionReq  uint8 = 7
	PDUVersionResp uint8 = 8
	// PDUFetchBatchReq carries multiple PMID sets so one round trip
	// serves a whole multi-component EventSet: the reply is one
	// PDUFetchBatchResp holding a fetch-response body per set, all served
	// from a single snapshot.
	PDUFetchBatchReq  uint8 = 9
	PDUFetchBatchResp uint8 = 10
	// PDUStatusError is the typed error PDU introduced at Version3: an
	// i32 status code plus a message, so a client can classify a
	// server-side rejection (overload shed, quota) programmatically
	// instead of string-matching a PDUError. Servers only send it to
	// peers that negotiated Version3 or higher; older peers get a plain
	// PDUError with the same message.
	PDUStatusError uint8 = 254
	PDUError       uint8 = 255
)

// Wire protocol versions negotiated via PDUVersionReq.
const (
	// Version1 is the original lockstep protocol: plain 5-byte frames,
	// one request outstanding per connection.
	Version1 uint32 = 1
	// Version2 adds tagged 9-byte frames (pipelining with out-of-order
	// completion) and the batch fetch PDUs.
	Version2 uint32 = 2
	// Version3 widens the tagged frame header with a tenant field (see
	// WriteWidePDU) so multi-tenant QoS travels in-band, and adds
	// PDUStatusError for typed server-side rejections. Version1 and
	// Version2 peers negotiate down and never see either.
	Version3 uint32 = 3
	// MaxVersion is the newest version this package speaks.
	MaxVersion = Version3
)

// Per-value status codes in fetch responses.
const (
	StatusOK         int32 = 0
	StatusNoSuchPMID int32 = -3 // mirrors PM_ERR_PMID
	StatusValueError int32 = -5 // the underlying read failed
	StatusNodeDown   int32 = -7 // the owning cluster node did not answer
	// StatusOverload is carried in a PDUStatusError when the server shed
	// the request under admission control rather than failing to serve
	// it. Clients surface it as an error wrapping ErrOverload.
	StatusOverload int32 = -9
)

// ErrOverload is the sentinel a shed request's error wraps, on both
// sides of the wire: a server-side admission layer returns errors
// wrapping it, and a client receiving a PDUStatusError with
// StatusOverload reconstructs it — so errors.Is(err, ErrOverload) means
// "the service is up but chose not to serve this request now".
var ErrOverload = errors.New("pcp: server overloaded")

// StatusError is a typed server-side rejection decoded from a
// PDUStatusError. It unwraps to ErrOverload when the status says so,
// keeping one errors.Is check valid in-process and over the wire.
type StatusError struct {
	Status int32
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("pcp: server status %d: %s", e.Status, e.Msg)
}

// Unwrap maps known status codes onto their sentinel errors.
func (e *StatusError) Unwrap() error {
	if e.Status == StatusOverload {
		return ErrOverload
	}
	return nil
}

// MaxPDUBytes bounds a PDU payload; anything larger is a protocol error.
// The limit exists so a hostile or corrupt length prefix cannot force an
// unbounded allocation in ReadPDU.
const MaxPDUBytes = 1 << 20

// ErrProtocol indicates a malformed or unexpected PDU.
var ErrProtocol = errors.New("pcp: protocol error")

// ErrPDUTooLarge indicates a PDU whose length prefix exceeds MaxPDUBytes.
// It wraps ErrProtocol, so errors.Is works against either.
var ErrPDUTooLarge = fmt.Errorf("%w: PDU exceeds %d-byte limit", ErrProtocol, MaxPDUBytes)

// NameEntry maps a metric name to its PMID.
type NameEntry struct {
	PMID uint32
	Name string
}

// FetchValue is one metric value in a fetch response.
type FetchValue struct {
	PMID   uint32
	Status int32
	Value  uint64
}

// FetchResult is a decoded fetch response.
type FetchResult struct {
	// Timestamp is the simulated time (ns) at which the daemon last
	// sampled the hardware counters.
	Timestamp int64
	Values    []FetchValue
}

// hdrPool recycles 5-byte frame headers. A stack array would do, but
// passing it through the io.Writer/io.Reader interface forces it to the
// heap; pooling keeps the framing layer allocation-free.
var hdrPool = sync.Pool{
	New: func() any { b := make([]byte, 5); return &b },
}

// WritePDU frames and writes one PDU. It does not allocate in the
// steady state: the frame header comes from a pool.
func WritePDU(w io.Writer, typ uint8, payload []byte) error {
	if len(payload) > MaxPDUBytes {
		return fmt.Errorf("%w (writing %d bytes)", ErrPDUTooLarge, len(payload))
	}
	hp := hdrPool.Get().(*[]byte)
	hdr := *hp
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = typ
	_, err := w.Write(hdr)
	hdrPool.Put(hp)
	if err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadPDU reads one framed PDU. The length prefix is validated against
// MaxPDUBytes before any allocation, so a hostile peer cannot trigger an
// arbitrarily large make(); oversize frames fail with ErrPDUTooLarge.
func ReadPDU(r io.Reader) (typ uint8, payload []byte, err error) {
	return ReadPDUInto(r, nil)
}

// ReadPDUInto is ReadPDU reading the payload into buf, growing it if
// needed. The returned payload aliases buf's backing array (when large
// enough), so it is only valid until the next ReadPDUInto with the same
// buffer; serving loops pass the previous payload back in to run
// allocation-free in the steady state.
func ReadPDUInto(r io.Reader, buf []byte) (typ uint8, payload []byte, err error) {
	hp := hdrPool.Get().(*[]byte)
	hdr := *hp
	_, err = io.ReadFull(r, hdr)
	n := binary.BigEndian.Uint32(hdr[:4])
	typ = hdr[4]
	hdrPool.Put(hp)
	if err != nil {
		return 0, nil, err
	}
	if n > MaxPDUBytes {
		return 0, nil, fmt.Errorf("%w (length prefix %d)", ErrPDUTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// --- payload encoding -------------------------------------------------

type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

func (e *encoder) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

func (e *encoder) i32(v int32) { e.u32(uint32(v)) }
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.err = fmt.Errorf("%w: truncated u32", ErrProtocol)
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = fmt.Errorf("%w: truncated u64", ErrProtocol)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if uint32(len(d.buf)) < n {
		d.err = fmt.Errorf("%w: truncated string", ErrProtocol)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(d.buf))
	}
	return nil
}

// The codec comes in two spellings per PDU: Encode* allocates a fresh
// buffer, Append* extends a caller-provided one (append-style, like
// strconv.AppendInt), letting serving loops reuse a scratch buffer and
// encode without allocating.

// EncodeNamesResp encodes the metric table.
func EncodeNamesResp(entries []NameEntry) []byte { return AppendNamesResp(nil, entries) }

// AppendNamesResp appends the encoded metric table to dst.
func AppendNamesResp(dst []byte, entries []NameEntry) []byte {
	e := encoder{buf: dst}
	e.u32(uint32(len(entries)))
	for _, n := range entries {
		e.u32(n.PMID)
		e.str(n.Name)
	}
	return e.buf
}

func DecodeNamesResp(b []byte) ([]NameEntry, error) {
	d := decoder{buf: b}
	n := d.u32()
	if n > MaxPDUBytes/5 {
		return nil, fmt.Errorf("%w: implausible name count %d", ErrProtocol, n)
	}
	out := make([]NameEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		pmid := d.u32()
		name := d.str()
		out = append(out, NameEntry{PMID: pmid, Name: name})
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return out, nil
}

func EncodeFetchReq(pmids []uint32) []byte { return AppendFetchReq(nil, pmids) }

// AppendFetchReq appends the encoded fetch request to dst.
func AppendFetchReq(dst []byte, pmids []uint32) []byte {
	e := encoder{buf: dst}
	e.u32(uint32(len(pmids)))
	for _, id := range pmids {
		e.u32(id)
	}
	return e.buf
}

func DecodeFetchReq(b []byte) ([]uint32, error) { return DecodeFetchReqInto(b, nil) }

// DecodeFetchReqInto decodes a fetch request, appending the PMIDs to dst
// (pass dst[:0] to reuse its backing array).
func DecodeFetchReqInto(b []byte, dst []uint32) ([]uint32, error) {
	d := decoder{buf: b}
	n := d.u32()
	if n > MaxPDUBytes/4 {
		return nil, fmt.Errorf("%w: implausible pmid count %d", ErrProtocol, n)
	}
	for i := uint32(0); i < n; i++ {
		dst = append(dst, d.u32())
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return dst, nil
}

func EncodeFetchResp(res FetchResult) []byte { return AppendFetchResp(nil, res) }

// AppendFetchResp appends the encoded fetch response to dst.
func AppendFetchResp(dst []byte, res FetchResult) []byte {
	e := encoder{buf: dst}
	e.i64(res.Timestamp)
	e.u32(uint32(len(res.Values)))
	for _, v := range res.Values {
		e.u32(v.PMID)
		e.i32(v.Status)
		e.u64(v.Value)
	}
	return e.buf
}

func DecodeFetchResp(b []byte) (FetchResult, error) {
	var res FetchResult
	if err := DecodeFetchRespInto(b, &res); err != nil {
		return FetchResult{}, err
	}
	return res, nil
}

// DecodeFetchRespInto decodes a fetch response into res, reusing
// res.Values' backing array. res is left zeroed on error.
func DecodeFetchRespInto(b []byte, res *FetchResult) error {
	d := decoder{buf: b}
	d.fetchBody(res)
	if err := d.done(); err != nil {
		*res = FetchResult{}
		return err
	}
	return nil
}

// fetchBody decodes one fetch-response body (timestamp, count, values)
// from the decoder's position into res, reusing res.Values' backing
// array. It is the shared sub-parser of the full, partial and batch
// response decoders; on failure d.err is set and res is unspecified.
func (d *decoder) fetchBody(res *FetchResult) {
	ts := d.i64()
	n := d.u32()
	if d.err == nil && n > MaxPDUBytes/16 {
		d.err = fmt.Errorf("%w: implausible value count %d", ErrProtocol, n)
	}
	if d.err != nil {
		return
	}
	vals := res.Values[:0]
	for i := uint32(0); i < n; i++ {
		vals = append(vals, FetchValue{
			PMID:   d.u32(),
			Status: d.i32(),
			Value:  d.u64(),
		})
	}
	if d.err != nil {
		return
	}
	res.Timestamp = ts
	res.Values = vals
}

func EncodeError(msg string) []byte { return AppendError(nil, msg) }

// AppendError appends an encoded error PDU payload to dst.
func AppendError(dst []byte, msg string) []byte {
	e := encoder{buf: dst}
	e.str(msg)
	return e.buf
}

func DecodeError(b []byte) (string, error) {
	d := decoder{buf: b}
	s := d.str()
	if err := d.done(); err != nil {
		return "", err
	}
	return s, nil
}

// AppendStatusError appends an encoded PDUStatusError payload to dst:
// an i32 status code followed by a message string.
func AppendStatusError(dst []byte, status int32, msg string) []byte {
	e := encoder{buf: dst}
	e.i32(status)
	e.str(msg)
	return e.buf
}

// EncodeStatusError encodes a PDUStatusError payload into a fresh buffer.
func EncodeStatusError(status int32, msg string) []byte {
	return AppendStatusError(nil, status, msg)
}

// DecodeStatusError decodes a PDUStatusError payload into a *StatusError.
func DecodeStatusError(b []byte) (*StatusError, error) {
	d := decoder{buf: b}
	status := d.i32()
	msg := d.str()
	if err := d.done(); err != nil {
		return nil, err
	}
	return &StatusError{Status: status, Msg: msg}, nil
}

// AppendVersion appends an encoded version PDU payload (request and
// response share the format: one u32 version) to dst.
func AppendVersion(dst []byte, version uint32) []byte {
	e := encoder{buf: dst}
	e.u32(version)
	return e.buf
}

// EncodeVersion encodes a version PDU payload into a fresh buffer.
func EncodeVersion(version uint32) []byte { return AppendVersion(nil, version) }

// DecodeVersion decodes a version PDU payload. A version of zero is a
// protocol error: there is no version 0 and accepting one would make a
// zeroed frame negotiate successfully.
func DecodeVersion(b []byte) (uint32, error) {
	d := decoder{buf: b}
	v := d.u32()
	if err := d.done(); err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, fmt.Errorf("%w: version 0", ErrProtocol)
	}
	return v, nil
}

// MaxBatchSets bounds the number of PMID sets in one batch fetch, like
// the other implausibility guards in the decoders.
const MaxBatchSets = MaxPDUBytes / 8

// AppendFetchBatchReq appends an encoded batch fetch request to dst:
// the set count, then each set as an ordinary fetch-request body.
func AppendFetchBatchReq(dst []byte, sets [][]uint32) []byte {
	e := encoder{buf: dst}
	e.u32(uint32(len(sets)))
	for _, pmids := range sets {
		e.u32(uint32(len(pmids)))
		for _, id := range pmids {
			e.u32(id)
		}
	}
	return e.buf
}

// EncodeFetchBatchReq encodes a batch fetch request into a fresh buffer.
func EncodeFetchBatchReq(sets [][]uint32) []byte { return AppendFetchBatchReq(nil, sets) }

// DecodeFetchBatchReqInto decodes a batch fetch request, reusing dst's
// outer and inner backing arrays (pass dst[:0] with populated capacity
// to run allocation-free in the steady state).
func DecodeFetchBatchReqInto(b []byte, dst [][]uint32) ([][]uint32, error) {
	d := decoder{buf: b}
	nsets := d.u32()
	if nsets > MaxBatchSets {
		return nil, fmt.Errorf("%w: implausible batch set count %d", ErrProtocol, nsets)
	}
	for i := uint32(0); i < nsets; i++ {
		n := d.u32()
		if d.err == nil && n > MaxPDUBytes/4 {
			return nil, fmt.Errorf("%w: implausible pmid count %d", ErrProtocol, n)
		}
		if d.err != nil {
			return nil, d.err
		}
		var set []uint32
		if i < uint32(cap(dst)) {
			set = dst[:i+1][i][:0]
		}
		for j := uint32(0); j < n; j++ {
			set = append(set, d.u32())
		}
		dst = append(dst[:i], set)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return dst[:nsets], nil
}

// AppendFetchBatchResp appends an encoded batch fetch response to dst:
// one partial-result header (missing-node list and cause — empty on a
// full answer) covering the whole batch, then the set count and each
// set's fetch-response body. All sets are served from one snapshot, so
// a single header suffices.
func AppendFetchBatchResp(dst []byte, sets []FetchResult, missing []string, cause string) []byte {
	e := encoder{buf: dst}
	e.u32(uint32(len(missing)))
	for _, m := range missing {
		e.str(m)
	}
	e.str(cause)
	e.u32(uint32(len(sets)))
	for _, res := range sets {
		e.buf = AppendFetchResp(e.buf, res)
	}
	return e.buf
}

// EncodeFetchBatchResp encodes a batch fetch response into a fresh
// buffer.
func EncodeFetchBatchResp(sets []FetchResult, missing []string, cause string) []byte {
	return AppendFetchBatchResp(nil, sets, missing, cause)
}

// DecodeFetchBatchRespInto decodes a batch fetch response, reusing
// dst's outer array and each element's Values backing array. The
// returned *PartialError is nil on a full answer and applies to the
// batch as a whole (the missing nodes' values carry StatusNodeDown in
// every affected set).
func DecodeFetchBatchRespInto(b []byte, dst []FetchResult) ([]FetchResult, *PartialError, error) {
	d := decoder{buf: b}
	nmiss := d.u32()
	if nmiss > MaxPartialMissing {
		return nil, nil, fmt.Errorf("%w: implausible missing-node count %d", ErrProtocol, nmiss)
	}
	var pe *PartialError
	if nmiss > 0 {
		pe = &PartialError{Missing: make([]string, 0, nmiss)}
		for i := uint32(0); i < nmiss; i++ {
			pe.Missing = append(pe.Missing, d.str())
		}
		pe.Cause = d.str()
	} else {
		d.str() // cause slot, empty on a full answer
	}
	nsets := d.u32()
	if d.err == nil && nsets > MaxBatchSets {
		return nil, nil, fmt.Errorf("%w: implausible batch set count %d", ErrProtocol, nsets)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	for i := uint32(0); i < nsets; i++ {
		var res FetchResult
		if i < uint32(cap(dst)) {
			res = dst[:i+1][i]
		}
		d.fetchBody(&res)
		if d.err != nil {
			return nil, nil, d.err
		}
		dst = append(dst[:i], res)
	}
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return dst[:nsets], pe, nil
}
