package gpu

import (
	"testing"

	"papimc/internal/mem"
	"papimc/internal/simtime"
)

func newDevice() (*Device, *mem.Controller, *simtime.Clock) {
	clock := simtime.NewClock()
	ctl := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, clock)
	return New(0, ctl), ctl, clock
}

func TestEventNameMatchesTableII(t *testing.T) {
	d, _, _ := newDevice()
	if got := d.EventName(); got != "Tesla_V100-SXM2-16GB:device_0:power" {
		t.Errorf("event name = %q", got)
	}
}

func TestIdlePower(t *testing.T) {
	d, _, _ := newDevice()
	if p := d.PowerMilliwatts(0); p != IdleMilliwatts {
		t.Errorf("idle power = %d, want %d", p, IdleMilliwatts)
	}
}

func TestExecutePowerSpike(t *testing.T) {
	d, _, _ := newDevice()
	end := d.Execute(Flops/100, 0) // 10 ms of work
	mid := simtime.Time(int64(end) / 2)
	if p := d.PowerMilliwatts(mid); p != BusyMilliwatts {
		t.Errorf("power during kernel = %d, want %d", p, BusyMilliwatts)
	}
	if p := d.PowerMilliwatts(end.Add(simtime.Millisecond)); p != IdleMilliwatts {
		t.Errorf("power after kernel = %d, want idle", p)
	}
}

func TestCopyToDeviceReadsHostMemory(t *testing.T) {
	d, ctl, _ := newDevice()
	end := d.CopyToDevice(1<<20, 0)
	r, w := ctl.Totals(end)
	if r != 1<<20 || w != 0 {
		t.Errorf("H2D traffic = %d/%d, want 1 MiB reads", r, w)
	}
	if p := d.PowerMilliwatts(simtime.Time(int64(end) / 2)); p != CopyMilliwatts {
		t.Errorf("power during copy = %d, want %d", p, CopyMilliwatts)
	}
}

func TestCopyFromDeviceWritesHostMemory(t *testing.T) {
	d, ctl, _ := newDevice()
	end := d.CopyFromDevice(1<<20, 0)
	r, w := ctl.Totals(end)
	if r != 0 || w != 1<<20 {
		t.Errorf("D2H traffic = %d/%d, want 1 MiB writes", r, w)
	}
}

func TestOperationsSerialize(t *testing.T) {
	d, _, _ := newDevice()
	e1 := d.CopyToDevice(1<<20, 0)
	e2 := d.Execute(Flops/1000, 0) // requested at t=0, must queue
	if e2 <= e1 {
		t.Errorf("kernel finished at %v, before the copy at %v", e2, e1)
	}
	if d.BusyUntil() != e2 {
		t.Errorf("BusyUntil = %v, want %v", d.BusyUntil(), e2)
	}
}

func TestPipelinePhaseOrdering(t *testing.T) {
	// The Fig. 11 shape: H2D read burst, power spike, D2H write burst.
	d, ctl, _ := newDevice()
	const bytes = 64 << 20
	t1 := d.CopyToDevice(bytes, 0)
	t2 := d.Execute(Flops/50, t1)
	t3 := d.CopyFromDevice(bytes, t2)
	// During the kernel there must be no new host traffic.
	r1, w1 := ctl.Totals(t1)
	r2, w2 := ctl.Totals(t2)
	if r2 != r1 || w2 != w1 {
		t.Errorf("host traffic during kernel: %d/%d -> %d/%d", r1, w1, r2, w2)
	}
	r3, w3 := ctl.Totals(t3)
	if w3-w2 != bytes {
		t.Errorf("D2H wrote %d, want %d", w3-w2, bytes)
	}
	if r3 != r2 {
		t.Errorf("unexpected reads during D2H")
	}
	if p := d.PowerMilliwatts(t1.Add(simtime.Microsecond)); p != BusyMilliwatts {
		t.Errorf("power right after H2D = %d, want busy", p)
	}
}

func TestZeroWork(t *testing.T) {
	d, _, _ := newDevice()
	if end := d.Execute(0, 42); end != 42 {
		t.Errorf("zero-flop kernel moved time to %v", end)
	}
	if end := d.CopyToDevice(0, 42); end != 42 {
		t.Errorf("zero-byte copy moved time to %v", end)
	}
}

func TestSegmentPruning(t *testing.T) {
	d, _, _ := newDevice()
	var at simtime.Time
	for i := 0; i < 10000; i++ {
		at = d.Execute(Flops/1e6, at)
	}
	// Must still answer power queries and not grow unboundedly.
	if p := d.PowerMilliwatts(at.Add(simtime.Second)); p != IdleMilliwatts {
		t.Errorf("power after workload = %d", p)
	}
}
