package stats

import (
	"math"
	"slices"
	"testing"

	"papimc/internal/xrand"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if h.Count() != 32 || h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// Below histSub the buckets are unit-width: quantiles are exact.
	// The p50 rank of 32 values is the 16th smallest, i.e. value 15.
	if q := h.Quantile(0.5); q != 15 {
		t.Errorf("p50 = %v, want 15", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("p0 = %v, want 0", q)
	}
	if q := h.Quantile(1); q != 31 {
		t.Errorf("p100 = %v, want 31", q)
	}
}

// TestHistogramRelativeError: every reported quantile of a wide-range
// sample is within the documented 1/32 relative bucketing error of the
// exact order statistic.
func TestHistogramRelativeError(t *testing.T) {
	rng := xrand.New(7)
	var h Histogram
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Latencies spanning 100ns .. ~100ms.
		v := int64(100 + rng.Int63n(100_000_000))
		vals = append(vals, v)
		h.Record(v)
	}
	exact := func(q float64) int64 {
		cp := append([]int64(nil), vals...)
		slices.Sort(cp)
		rank := int(q*float64(len(cp)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > len(cp) {
			rank = len(cp)
		}
		return cp[rank-1]
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		want := float64(exact(q))
		if rel := math.Abs(got-want) / want; rel > 1.0/32+0.01 {
			t.Errorf("q%.3f = %v, exact %v (rel err %.3f)", q, got, want, rel)
		}
	}
}

// TestHistogramMerge: merging per-worker histograms is exactly the
// histogram of the union — the property the load generator relies on.
func TestHistogramMerge(t *testing.T) {
	rng := xrand.New(42)
	var all, a, b Histogram
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1_000_000)
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged count/min/max mismatch")
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%v: merged %v != direct %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.counts != all.counts {
		t.Error("merged bucket counts differ from direct recording")
	}
}

// TestHistogramQuantilesMatchesSinglePath: the batch accessor returns
// exactly what the single-quantile path returns, for every q, in any
// order, including the extremes, same-bucket repeats, and empty input.
func TestHistogramQuantilesMatchesSinglePath(t *testing.T) {
	rng := xrand.New(11)
	var h Histogram
	for i := 0; i < 30000; i++ {
		h.Record(int64(50 + rng.Int63n(500_000_000)))
	}
	qs := []float64{0.999, 0.5, 0.99, 0.5, 0, 1, 0.9, 0.001, 0.501, -0.5, 1.5}
	got := h.Quantiles(qs)
	if len(got) != len(qs) {
		t.Fatalf("len = %d, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := h.Quantile(q); got[i] != want {
			t.Errorf("Quantiles[%d] (q=%v) = %v, want Quantile = %v", i, q, got[i], want)
		}
	}

	var empty Histogram
	for _, v := range empty.Quantiles([]float64{0.5, 0.99}) {
		if v != 0 {
			t.Errorf("empty histogram batch quantile = %v, want 0", v)
		}
	}
}

func TestHistogramRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	if got := testing.AllocsPerRun(1000, func() {
		h.Record(123456)
	}); got != 0 {
		t.Errorf("Record allocates %.1f objects per run, want 0", got)
	}
}

func TestHistogramNegativeAndEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative value not clamped: min %d max %d", h.Min(), h.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(99)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset did not empty the histogram")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*7919 + 100)
	}
}
