// Package mpi provides the message-passing substrate for the distributed
// 3D-FFT: ranks run as goroutines exchanging real data over per-pair
// channels, while every remote transfer is accounted on the simulated
// InfiniBand fabric (port counters and host-DMA memory traffic), so the
// PAPI infiniband and PCP components observe the communication exactly as
// Fig. 11's All2All spikes.
package mpi

import (
	"fmt"
	"sync"

	"papimc/internal/ib"
	"papimc/internal/simtime"
	"papimc/internal/units"
)

// message carries payload between ranks.
type message struct {
	data []complex128
}

// Comm is a communicator over a fixed set of ranks.
type Comm struct {
	size      int
	fabric    *ib.Fabric
	endpoints []*ib.Endpoint // per rank; may be nil entries
	clock     *simtime.Clock

	// mailboxes[src][dst] holds at most one in-flight message per pair.
	mailboxes [][]chan message

	bar *barrier
}

// New creates a communicator of the given size. fabric and endpoints may
// be nil for purely functional (non-accounted) runs; when endpoints are
// provided there must be one per rank.
func New(size int, fabric *ib.Fabric, endpoints []*ib.Endpoint, clock *simtime.Clock) *Comm {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid communicator size %d", size))
	}
	if endpoints != nil && len(endpoints) != size {
		panic(fmt.Sprintf("mpi: %d endpoints for %d ranks", len(endpoints), size))
	}
	boxes := make([][]chan message, size)
	for s := range boxes {
		boxes[s] = make([]chan message, size)
		for d := range boxes[s] {
			boxes[s][d] = make(chan message, 1)
		}
	}
	return &Comm{
		size:      size,
		fabric:    fabric,
		endpoints: endpoints,
		clock:     clock,
		mailboxes: boxes,
		bar:       newBarrier(size),
	}
}

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Rank returns the handle for rank id.
func (c *Comm) Rank(id int) *Rank {
	if id < 0 || id >= c.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", id, c.size))
	}
	return &Rank{comm: c, id: id}
}

// Run spawns one goroutine per rank executing body and waits for all of
// them. Panics inside a rank are re-raised in the caller.
func (c *Comm) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make(chan interface{}, c.size)
	for id := 0; id < c.size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			body(c.Rank(id))
		}(id)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Rank is one process's view of the communicator.
type Rank struct {
	comm *Comm
	id   int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// account records a transfer on the fabric.
func (r *Rank) account(dst int, bytes int64) {
	c := r.comm
	if c.fabric == nil || c.endpoints == nil || bytes == 0 {
		return
	}
	var now simtime.Time
	if c.clock != nil {
		now = c.clock.Now()
	}
	c.fabric.Transfer(c.endpoints[r.id], c.endpoints[dst], bytes, now)
}

// Send delivers data to dst. At most one message per (src,dst) pair may
// be in flight; a second Send to the same destination blocks until the
// first is received.
func (r *Rank) Send(dst int, data []complex128) {
	if dst == r.id {
		panic("mpi: self-send; use local copies")
	}
	r.account(dst, int64(len(data))*units.ComplexBytes)
	r.comm.mailboxes[r.id][dst] <- message{data: data}
}

// Recv receives the message sent by src, blocking until it arrives.
func (r *Rank) Recv(src int) []complex128 {
	if src == r.id {
		panic("mpi: self-receive")
	}
	return (<-r.comm.mailboxes[src][r.id]).data
}

// Barrier blocks until every rank reaches it.
func (r *Rank) Barrier() { r.comm.bar.await() }

// Alltoallv exchanges chunks[d] with every rank d and returns the chunks
// received, indexed by source. The self-chunk is passed through without
// touching the fabric. chunks must have exactly Size entries.
func (r *Rank) Alltoallv(chunks [][]complex128) [][]complex128 {
	if len(chunks) != r.Size() {
		panic(fmt.Sprintf("mpi: Alltoallv with %d chunks on a %d-rank communicator", len(chunks), r.Size()))
	}
	// Post all sends first (mailboxes are buffered, so this cannot
	// block), then collect.
	for d := 0; d < r.Size(); d++ {
		if d == r.id {
			continue
		}
		r.Send(d, chunks[d])
	}
	out := make([][]complex128, r.Size())
	out[r.id] = chunks[r.id]
	for s := 0; s < r.Size(); s++ {
		if s == r.id {
			continue
		}
		out[s] = r.Recv(s)
	}
	return out
}

// --- reusable barrier ----------------------------------------------------

type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
