package archive

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"papimc/internal/pcp"
)

// goldenRows regenerates the exact rows the golden v1 archive was built
// from (by the pre-rollup code): a counter that wraps past 2^64
// mid-archive, a well-behaved counter, and a decreasing level.
func goldenRows() []Sample {
	rows := make([]Sample, 37)
	v0 := ^uint64(0) - 5000
	for i := range rows {
		rows[i] = Sample{
			Timestamp: int64(i) * 500_000_000,
			Values: []uint64{
				v0 + uint64(i)*400, // wraps between i=12 and i=13
				uint64(i) * 64,
				10000 - uint64(i)*100,
			},
		}
	}
	return rows
}

// TestGoldenV1Interop is the on-disk compatibility pin: a v1 archive
// written by the pre-rollup code (committed bytes, hash-pinned so the
// fixture cannot drift) must read unchanged — same schema, same rows,
// same wrap-corrected query answers — and its rollup tiers must be
// rebuilt from the raw rows on load.
func TestGoldenV1Interop(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_v1.pmlog"))
	if err != nil {
		t.Fatal(err)
	}
	const wantSHA = "a14651db14a0d357c7befa4f1f317393871858f8641e4060e61acd4629ee7fe6"
	if got := hex.EncodeToString(sha256Sum(data)); got != wantSHA {
		t.Fatalf("golden fixture drifted: sha256 %s, want %s", got, wantSHA)
	}
	if !bytes.HasPrefix(data, []byte(fileMagicV1)) {
		t.Fatalf("golden fixture is not a v1 archive")
	}

	a, err := Read(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatalf("v1 archive no longer reads: %v", err)
	}
	wantNames := []pcp.NameEntry{
		{PMID: 1, Name: "golden.counter.a"},
		{PMID: 2, Name: "golden.counter.b"},
		{PMID: 9, Name: "golden.level.c"},
	}
	if got := a.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("schema = %+v, want %+v", got, wantNames)
	}
	rows, err := a.All()
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenRows(); !reflect.DeepEqual(rows, want) {
		t.Fatalf("decoded rows differ from the pre-change writer's input")
	}

	// Query semantics across the recorded wrap are preserved: column 1
	// gains 400 per 500ms = 800/s, through the wrap, exactly.
	if rate, err := a.Rate(1, 0, 36*500_000_000); err != nil || rate != 800 {
		t.Errorf("Rate over golden archive = %v, %v; want exactly 800", rate, err)
	}
	if rate, err := a.Rate(9, 0, 36*500_000_000); err != nil || rate != -200 {
		t.Errorf("Rate of golden level = %v, %v; want exactly -200", rate, err)
	}
	// Rollups were rebuilt from the raw rows and agree with the raw path.
	if rate, err := a.RateAt(Res10s, 1, 0, 36*500_000_000); err != nil || rate != 800 {
		t.Errorf("rollup Rate over golden archive = %v, %v; want exactly 800", rate, err)
	}

	// Re-serializing upgrades to v2; the rows survive untouched.
	var out bytes.Buffer
	if _, err := a.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out.Bytes(), []byte(fileMagicV2)) {
		t.Fatalf("WriteTo no longer emits v2")
	}
	b, err := Read(&out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := b.All()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Fatalf("v1 -> v2 upgrade changed rows")
	}
}

func sha256Sum(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// TestV2RoundTripTiers: rollup tiers — including evicted-bucket counts
// and history extending past the retained raw rows after compaction —
// survive WriteTo/Read bucket-for-bucket.
func TestV2RoundTripTiers(t *testing.T) {
	a, _ := New(schema(2), Options{
		BlockSamples: 8,
		Rollups:      []int64{100, 1000},
		RawRetention: 2000,
	})
	for i := 0; i < 400; i++ {
		if err := a.Append(row(int64(i)*25, uint64(i)*7, ^uint64(0)-uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Compact() == 0 {
		t.Fatal("compaction folded nothing; retention config broken")
	}
	rawFirst, _, _ := a.Span()
	tFirst, _, _ := a.SpanAt(Resolution(100))
	if tFirst >= rawFirst {
		t.Fatalf("rollups should cover folded history: tier starts %d, raw starts %d", tFirst, rawFirst)
	}

	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.All()
	rb, _ := b.All()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("raw rows changed over round trip")
	}
	for _, res := range []Resolution{100, 1000} {
		ba, err := a.Buckets(res, -1<<60, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Buckets(res, -1<<60, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ba, bb) {
			t.Fatalf("tier %v buckets changed over round trip", res)
		}
	}
	// The reloaded archive keeps answering over the folded span.
	vA, errA := a.RateAt(Resolution(100), 1, 0, 5000)
	vB, errB := b.RateAt(Resolution(100), 1, 0, 5000)
	if errA != nil || errB != nil || vA != vB {
		t.Fatalf("rollup rate diverged after reload: %v/%v vs %v/%v", vA, errA, vB, errB)
	}
	// And appends continue cleanly after a reload.
	if err := b.Append(row(400*25, 400*7, ^uint64(0)-400)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(row(0, 1, 1)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("stale append after reload = %v, want ErrOutOfOrder", err)
	}
}

// TestV2UnknownSectionSkipped: forward compatibility — a reader must
// skip section ids it does not know.
func TestV2UnknownSectionSkipped(t *testing.T) {
	a, _ := New(schema(1), Options{BlockSamples: 4})
	for i := 0; i < 10; i++ {
		if err := a.Append(row(int64(i)*5, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Splice an unknown section in front of the existing ones: bump the
	// section count and prepend id=77.
	data := buf.Bytes()
	// Find the section-count byte: re-serialize by hand is fragile, so
	// instead append is not possible (trailing bytes are rejected).
	// Re-encode: parse up to the section count, then rebuild.
	p := &parser{buf: data[len(fileMagicV2):]}
	if _, err := readSchema(p); err != nil {
		t.Fatal(err)
	}
	nChunks := p.uv()
	for i := uint64(0); i < nChunks; i++ {
		p.uv()
		blen := p.uv()
		p.bytes(blen)
	}
	if p.err != nil {
		t.Fatal(p.err)
	}
	head := data[:len(data)-len(p.buf)]
	rest := p.buf // nSections + sections
	nSections, n := binary.Uvarint(rest)
	if n <= 0 {
		t.Fatal("bad section count")
	}
	var spliced []byte
	spliced = append(spliced, head...)
	spliced = binary.AppendUvarint(spliced, nSections+1)
	spliced = binary.AppendUvarint(spliced, 77) // unknown id
	spliced = binary.AppendUvarint(spliced, 5)
	spliced = append(spliced, "hello"...)
	spliced = append(spliced, rest[n:]...)

	b, err := Read(bytes.NewReader(spliced), Options{})
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	ra, _ := a.All()
	rb, _ := b.All()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("rows changed with unknown section present")
	}
}

// TestV2RejectsCorruptSections: hostile section contents are rejected
// with ErrFormat, never accepted silently.
func TestV2RejectsCorruptSections(t *testing.T) {
	a, _ := New(schema(1), Options{BlockSamples: 4, Rollups: []int64{100}})
	for i := 0; i < 20; i++ {
		if err := a.Append(row(int64(i)*10, uint64(i)*3)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	if _, err := Read(bytes.NewReader(pristine), Options{}); err != nil {
		t.Fatalf("pristine archive rejected: %v", err)
	}
	// Truncations anywhere in the file must fail cleanly (the sections
	// live at the end, so the tail truncations hit the index/rollups).
	for cut := len(pristine) - 1; cut > len(fileMagicV2); cut -= 7 {
		if _, err := Read(bytes.NewReader(pristine[:cut]), Options{}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Flipping bytes in the trailing sections must never be silently
	// accepted as different data: either rejected (index mismatch,
	// invariant violation) or — for fields like the evicted count or a
	// float sum where any value is structurally valid — decoded to a
	// queryable archive.
	for off := len(pristine) - 1; off > len(pristine)*3/4; off-- {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0x40
		b, err := Read(bytes.NewReader(mut), Options{})
		if err != nil {
			continue
		}
		if _, err := b.All(); err != nil {
			t.Fatalf("accepted archive (flip at %d) fails to decode: %v", off, err)
		}
	}
}

// TestReadRejectsLyingChunkCounts: a chunk claiming more rows than its
// bytes can hold is rejected before any large allocation happens.
func TestReadRejectsLyingChunkCounts(t *testing.T) {
	var b []byte
	b = append(b, fileMagicV2...)
	b = binary.AppendUvarint(b, 1)
	b = binary.AppendUvarint(b, 1)
	b = binary.AppendUvarint(b, 1)
	b = append(b, 'x')
	b = binary.AppendUvarint(b, 1)     // one chunk
	b = binary.AppendUvarint(b, 1<<24) // claiming 16M rows
	b = binary.AppendUvarint(b, 4)     // ... in 4 bytes
	b = append(b, 1, 2, 3, 4)
	b = binary.AppendUvarint(b, 0) // no sections
	if _, err := Read(bytes.NewReader(b), Options{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("lying chunk count err = %v, want ErrFormat", err)
	}
}
