// Package qmc is the QMCPACK stand-in for Fig. 12: a real (toy-scale)
// quantum Monte Carlo code with the example problem's exact phase
// structure — Variational Monte Carlo without drift, VMC with drift,
// then Diffusion Monte Carlo. The physics is the 3D isotropic harmonic
// oscillator (ħ=m=ω=1) with the trial wavefunction
// ψ_α(r) = exp(-α·r²/2), whose local energy
//
//	E_L(r) = 3α/2 + (1-α²)·r²/2
//
// is exact (1.5) at α=1, giving the tests an analytic ground truth:
// ⟨E⟩_VMC(α) = (3/4)(α + 1/α), and DMC projects to E₀ = 1.5 from any
// reasonable trial.
package qmc

import (
	"fmt"
	"math"

	"papimc/internal/xrand"
)

// Config parameterizes a QMC run.
type Config struct {
	// Alpha is the trial wavefunction's variational parameter.
	Alpha float64
	// Walkers is the Monte Carlo population size.
	Walkers int
	// StepSize is the VMC proposal width / DMC time step.
	StepSize float64
	// Seed drives the deterministic PRNG.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Alpha <= 0 {
		return fmt.Errorf("qmc: alpha %v must be positive", c.Alpha)
	}
	if c.Walkers <= 0 {
		return fmt.Errorf("qmc: need at least one walker, got %d", c.Walkers)
	}
	if c.StepSize <= 0 {
		return fmt.Errorf("qmc: step size %v must be positive", c.StepSize)
	}
	return nil
}

// Result summarizes a QMC phase.
type Result struct {
	Energy     float64 // mean local energy
	Variance   float64 // variance of the local energy
	Acceptance float64 // Metropolis acceptance ratio (1 for DMC)
	Walkers    int     // final population (DMC branches)
	Steps      int
}

// ExactVMCEnergy returns the analytic variational energy
// (3/4)(α + 1/α) of the trial wavefunction.
func ExactVMCEnergy(alpha float64) float64 {
	return 0.75 * (alpha + 1/alpha)
}

// GroundStateEnergy is the exact result DMC converges to.
const GroundStateEnergy = 1.5

type walker struct {
	r [3]float64
}

// localEnergy evaluates E_L at the walker's position.
func localEnergy(alpha float64, r [3]float64) float64 {
	r2 := r[0]*r[0] + r[1]*r[1] + r[2]*r[2]
	return 1.5*alpha + 0.5*(1-alpha*alpha)*r2
}

// logPsi2 returns ln|ψ_α|² = -α·r².
func logPsi2(alpha float64, r [3]float64) float64 {
	return -alpha * (r[0]*r[0] + r[1]*r[1] + r[2]*r[2])
}

// initWalkers spreads the population around the origin.
func initWalkers(cfg Config, rng *xrand.Source) []walker {
	ws := make([]walker, cfg.Walkers)
	sigma := 1 / math.Sqrt(2*cfg.Alpha)
	for i := range ws {
		for d := 0; d < 3; d++ {
			ws[i].r[d] = sigma * rng.NormFloat64()
		}
	}
	return ws
}

// VMCNoDrift runs Variational Monte Carlo with the plain symmetric
// Metropolis move (the example problem's first stage).
func VMCNoDrift(cfg Config, steps int) (Result, error) {
	return vmc(cfg, steps, false)
}

// VMCDrift runs VMC with drifted (importance-sampled Langevin)
// proposals, the second stage: higher acceptance for the same step.
func VMCDrift(cfg Config, steps int) (Result, error) {
	return vmc(cfg, steps, true)
}

func vmc(cfg Config, steps int, drift bool) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if steps <= 0 {
		return Result{}, fmt.Errorf("qmc: non-positive step count %d", steps)
	}
	rng := xrand.New(cfg.Seed)
	ws := initWalkers(cfg, rng)
	tau := cfg.StepSize

	var sumE, sumE2 float64
	var accepted, proposed int64
	warmup := steps / 5
	for step := 0; step < steps; step++ {
		for i := range ws {
			old := ws[i].r
			var next [3]float64
			var logRatio float64
			if drift {
				// Langevin proposal r' = r + τ·F/2 + √τ·ξ with the
				// quantum force F = ∇ln|ψ|² = -2αr, plus the
				// Metropolis–Hastings Green-function correction.
				for d := 0; d < 3; d++ {
					next[d] = old[d] - tau*cfg.Alpha*old[d] + math.Sqrt(tau)*rng.NormFloat64()
				}
				// Metropolis–Hastings: π(r')·G(r ← r') over π(r)·G(r' ← r).
				logRatio = logPsi2(cfg.Alpha, next) - logPsi2(cfg.Alpha, old) +
					logGreen(cfg.Alpha, old, next, tau) - logGreen(cfg.Alpha, next, old, tau)
			} else {
				for d := 0; d < 3; d++ {
					next[d] = old[d] + tau*(2*rng.Float64()-1)
				}
				logRatio = logPsi2(cfg.Alpha, next) - logPsi2(cfg.Alpha, old)
			}
			proposed++
			if logRatio >= 0 || rng.Float64() < math.Exp(logRatio) {
				ws[i].r = next
				accepted++
			}
			if step >= warmup {
				e := localEnergy(cfg.Alpha, ws[i].r)
				sumE += e
				sumE2 += e * e
			}
		}
	}
	n := float64(steps-warmup) * float64(len(ws))
	mean := sumE / n
	return Result{
		Energy:     mean,
		Variance:   sumE2/n - mean*mean,
		Acceptance: float64(accepted) / float64(proposed),
		Walkers:    len(ws),
		Steps:      steps,
	}, nil
}

// logGreen is ln G(to ← from): the drift-diffusion transition density.
func logGreen(alpha float64, to, from [3]float64, tau float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		mu := from[d] - tau*alpha*from[d]
		diff := to[d] - mu
		s -= diff * diff / (2 * tau)
	}
	return s
}

// DMC runs Diffusion Monte Carlo with drifted walkers, branching, and
// population control toward cfg.Walkers; the mixed estimator converges
// to the true ground-state energy regardless of α (third stage).
func DMC(cfg Config, steps int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if steps <= 0 {
		return Result{}, fmt.Errorf("qmc: non-positive step count %d", steps)
	}
	rng := xrand.New(cfg.Seed + 1)
	ws := initWalkers(cfg, rng)
	tau := cfg.StepSize
	eTrial := ExactVMCEnergy(cfg.Alpha)

	var sumE float64
	var sumE2 float64
	var samples float64
	warmup := steps / 5
	for step := 0; step < steps; step++ {
		next := make([]walker, 0, len(ws))
		var stepE float64
		for i := range ws {
			old := ws[i].r
			var moved [3]float64
			for d := 0; d < 3; d++ {
				moved[d] = old[d] - tau*cfg.Alpha*old[d] + math.Sqrt(tau)*rng.NormFloat64()
			}
			eOld := localEnergy(cfg.Alpha, old)
			eNew := localEnergy(cfg.Alpha, moved)
			weight := math.Exp(-tau * (0.5*(eOld+eNew) - eTrial))
			copies := int(weight + rng.Float64())
			if copies > 3 {
				copies = 3 // branching cap for stability
			}
			for cpy := 0; cpy < copies; cpy++ {
				next = append(next, walker{r: moved})
				stepE += eNew
			}
		}
		if len(next) == 0 {
			// Population died out: restart from the trial distribution
			// (a pathological step size; keep the run alive).
			next = initWalkers(cfg, rng)
			for i := range next {
				stepE += localEnergy(cfg.Alpha, next[i].r)
			}
		}
		ws = next
		mean := stepE / float64(len(ws))
		// Population control: steer E_T to keep the census near target.
		eTrial = mean - 0.1/tau*math.Log(float64(len(ws))/float64(cfg.Walkers))
		if step >= warmup {
			sumE += mean
			sumE2 += mean * mean
			samples++
		}
	}
	mean := sumE / samples
	return Result{
		Energy:     mean,
		Variance:   sumE2/samples - mean*mean,
		Acceptance: 1,
		Walkers:    len(ws),
		Steps:      steps,
	}, nil
}

// PhaseName identifies the example problem's stages in profiles.
type PhaseName string

// The example problem of [17] runs these stages in order.
const (
	PhaseVMCNoDrift PhaseName = "VMC-no-drift"
	PhaseVMCDrift   PhaseName = "VMC-drift"
	PhaseDMC        PhaseName = "DMC"
)

// Phases returns the example problem's stage order.
func Phases() []PhaseName {
	return []PhaseName{PhaseVMCNoDrift, PhaseVMCDrift, PhaseDMC}
}
