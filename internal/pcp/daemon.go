package pcp

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"

	"papimc/internal/simtime"
)

// Metric is one exported metric: a name and a privileged read function.
type Metric struct {
	Name string
	// Read returns the metric value as of simulated time t. The daemon
	// holds whatever credential Read needs; clients never do.
	Read func(t simtime.Time) (uint64, error)
}

// Daemon is the PMCD analogue: it samples its metrics at a fixed
// interval of simulated time and serves the latest sample to clients.
type Daemon struct {
	clock    *simtime.Clock
	interval simtime.Duration

	mu         sync.Mutex
	metrics    []Metric // sorted by name; PMID = index+1
	byName     map[string]uint32
	lastSample simtime.Time
	sampled    bool
	cache      []FetchValue

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewDaemon builds a daemon sampling the given metrics every interval.
// Metric names must be unique; PMIDs are assigned in sorted-name order.
func NewDaemon(clock *simtime.Clock, interval simtime.Duration, metrics []Metric) (*Daemon, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("pcp: non-positive sample interval %d", interval)
	}
	ms := append([]Metric(nil), metrics...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	byName := make(map[string]uint32, len(ms))
	for i, m := range ms {
		if m.Read == nil {
			return nil, fmt.Errorf("pcp: metric %q has no reader", m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("pcp: duplicate metric %q", m.Name)
		}
		byName[m.Name] = uint32(i + 1)
	}
	return &Daemon{
		clock:    clock,
		interval: interval,
		metrics:  ms,
		byName:   byName,
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Names returns the daemon's metric table.
func (d *Daemon) Names() []NameEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NameEntry, len(d.metrics))
	for i, m := range d.metrics {
		out[i] = NameEntry{PMID: uint32(i + 1), Name: m.Name}
	}
	return out
}

// Register adds a metric to a running daemon's namespace — the analogue
// of a PCP agent (PMDA) coming online after pmcd has started. The new
// metric gets the next free PMID (registration order, not sorted-name
// order) and becomes fetchable at the next sampling tick.
func (d *Daemon) Register(m Metric) error {
	if m.Read == nil {
		return fmt.Errorf("pcp: metric %q has no reader", m.Name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byName[m.Name]; dup {
		return fmt.Errorf("pcp: duplicate metric %q", m.Name)
	}
	d.metrics = append(d.metrics, m)
	d.byName[m.Name] = uint32(len(d.metrics))
	d.sampled = false // force a resample so the new metric is fetchable now
	return nil
}

// sampleLocked refreshes the cached values if the sampling interval has
// elapsed (or nothing has been sampled yet). It reuses the cache's
// backing array; callers copy values out before releasing d.mu.
func (d *Daemon) sampleLocked() {
	now := d.clock.Now()
	if d.sampled && now.Sub(d.lastSample) < d.interval {
		return
	}
	vals := d.cache[:0]
	for i, m := range d.metrics {
		v, err := m.Read(now)
		if err != nil {
			vals = append(vals, FetchValue{PMID: uint32(i + 1), Status: StatusValueError})
			continue
		}
		vals = append(vals, FetchValue{PMID: uint32(i + 1), Status: StatusOK, Value: v})
	}
	d.cache = vals
	d.lastSample = now
	d.sampled = true
}

// Fetch returns the daemon's current view of the requested PMIDs. It is
// exported for in-process use and exercised by the network handler.
func (d *Daemon) Fetch(pmids []uint32) FetchResult {
	return d.FetchInto(pmids, nil)
}

// FetchInto is Fetch appending the values to vals (pass a previous
// result's Values[:0] to serve from a reused buffer without allocating).
func (d *Daemon) FetchInto(pmids []uint32, vals []FetchValue) FetchResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sampleLocked()
	for _, id := range pmids {
		if id == 0 || int(id) > len(d.cache) {
			vals = append(vals, FetchValue{PMID: id, Status: StatusNoSuchPMID})
			continue
		}
		vals = append(vals, d.cache[id-1])
	}
	return FetchResult{Timestamp: int64(d.lastSample), Values: vals}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves clients in the
// background until Close. It returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pcp: listen: %w", err)
	}
	d.ln = ln
	d.wg.Add(1)
	go d.acceptLoop()
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			select {
			case <-d.closed:
				return
			default:
				// Transient accept errors: keep serving.
				continue
			}
		}
		d.connMu.Lock()
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				conn.Close()
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
			d.serveConn(conn)
		}()
	}
}

// serveConn handles one client connection: handshake, then a
// request/response loop. The loop reuses per-connection scratch buffers
// for the request payload, decoded PMIDs, fetched values and encoded
// response, so steady-state fetch serving does not allocate.
func (d *Daemon) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := ServerHandshake(br, bw); err != nil {
		return
	}
	var (
		payloadBuf []byte
		respBuf    []byte
		pmids      []uint32
		vals       []FetchValue
	)
	for {
		typ, payload, err := ReadPDUInto(br, payloadBuf)
		if err != nil {
			return
		}
		payloadBuf = payload
		var respType uint8
		var resp []byte
		switch typ {
		case PDUNamesReq:
			respType, resp = PDUNamesResp, AppendNamesResp(respBuf[:0], d.Names())
		case PDUFetchReq:
			pmids, err = DecodeFetchReqInto(payload, pmids[:0])
			if err != nil {
				respType, resp = PDUError, AppendError(respBuf[:0], err.Error())
				break
			}
			res := d.FetchInto(pmids, vals[:0])
			vals = res.Values
			respType, resp = PDUFetchResp, AppendFetchResp(respBuf[:0], res)
		default:
			respType, resp = PDUError, AppendError(respBuf[:0], fmt.Sprintf("unknown PDU type %d", typ))
		}
		respBuf = resp
		if err := WritePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener, disconnects clients, and waits for
// connection handlers to finish. It is idempotent.
func (d *Daemon) Close() error {
	var err error
	d.closeOnce.Do(func() {
		close(d.closed)
		if d.ln != nil {
			err = d.ln.Close()
		}
		d.connMu.Lock()
		for conn := range d.conns {
			conn.Close()
		}
		d.connMu.Unlock()
		d.wg.Wait()
	})
	return err
}

// ServerHandshake performs the daemon side of connection setup: the
// client sends Magic, the server echoes it. Exported so other servers
// speaking the protocol (pmproxy) share the exact semantics.
func ServerHandshake(br *bufio.Reader, bw *bufio.Writer) error {
	magic := make([]byte, len(Magic))
	if _, err := ioReadFull(br, magic); err != nil {
		return err
	}
	if string(magic) != Magic {
		return fmt.Errorf("%w: bad handshake %q", ErrProtocol, magic)
	}
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	return bw.Flush()
}

// ioReadFull is io.ReadFull; indirected for readability alongside bufio.
func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
