package pcp

import (
	"fmt"
	"testing"

	"papimc/internal/simtime"
)

// benchMetrics builds n synthetic metrics so the benchmarks measure the
// serving path itself, not the cost of the underlying counter model.
func benchMetrics(n int) []Metric {
	ms := make([]Metric, n)
	for i := range ms {
		v := uint64(i) * 64
		ms[i] = Metric{
			Name: fmt.Sprintf("bench.metric.%02d", i),
			Read: func(simtime.Time) (uint64, error) { return v, nil },
		}
	}
	return ms
}

func benchDaemon(b *testing.B) *Daemon {
	b.Helper()
	d, err := NewDaemon(simtime.NewClock(), 10*simtime.Millisecond, benchMetrics(16))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

var benchPMIDs = []uint32{1, 2, 3, 4, 5, 6, 7, 8}

// BenchmarkFetchInto is the in-process fetch hot path on one goroutine:
// the cost of serving eight values from the current sample.
func BenchmarkFetchInto(b *testing.B) {
	d := benchDaemon(b)
	var vals []FetchValue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := d.FetchInto(benchPMIDs, vals[:0])
		vals = res.Values
	}
}

// BenchmarkParallelFetchInto hammers one daemon from GOMAXPROCS
// goroutines. Run with -cpu 1,2,4,8: under the seed tree's global mutex
// throughput was flat; with snapshot publication it scales with cores.
func BenchmarkParallelFetchInto(b *testing.B) {
	d := benchDaemon(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var vals []FetchValue
		for pb.Next() {
			res := d.FetchInto(benchPMIDs, vals[:0])
			vals = res.Values
		}
	})
}

// BenchmarkFetchRoundTripTCP is the single-connection round trip over a
// real socket — the PR 3 allocation-free baseline that must not regress.
func BenchmarkFetchRoundTripTCP(b *testing.B) {
	d := benchDaemon(b)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var res FetchResult
	if err := c.FetchInto(benchPMIDs, &res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.FetchInto(benchPMIDs, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelDaemonTCP measures concurrent serving over real
// sockets: one connection per worker, all hitting the same daemon.
func BenchmarkParallelDaemonTCP(b *testing.B) {
	d := benchDaemon(b)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c, err := Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		var res FetchResult
		for pb.Next() {
			if err := c.FetchInto(benchPMIDs, &res); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
