package pmproxy

import (
	"fmt"
	"testing"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// benchRig builds a daemon with synthetic metrics and a proxy in front
// of it, so the benchmarks measure proxy serving overhead rather than
// the counter model.
func benchRig(b *testing.B) (*Proxy, string) {
	b.Helper()
	ms := make([]pcp.Metric, 16)
	for i := range ms {
		v := uint64(i) * 64
		ms[i] = pcp.Metric{
			Name: fmt.Sprintf("bench.metric.%02d", i),
			Read: func(simtime.Time) (uint64, error) { return v, nil },
		}
	}
	clock := simtime.NewClock()
	d, err := pcp.NewDaemon(clock, 10*simtime.Millisecond, ms)
	if err != nil {
		b.Fatal(err)
	}
	upstream, err := d.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	p := New(Config{
		Upstream: upstream,
		Clock:    clock,
		Interval: 10 * simtime.Millisecond,
		Timeout:  2 * time.Second,
	})
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p, addr
}

var benchPMIDs = []uint32{1, 2, 3, 4, 5, 6, 7, 8}

// BenchmarkProxyFetchInProcess is the coalesced-hit hot path on one
// goroutine: the simulated clock never advances, so after the first
// round trip every fetch is served from the interval cache.
func BenchmarkProxyFetchInProcess(b *testing.B) {
	p, _ := benchRig(b)
	if _, err := p.Fetch(benchPMIDs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fetch(benchPMIDs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelProxyFetch hammers the coalescing cache from
// GOMAXPROCS goroutines, all asking for the same pmid set — the
// worst case for a serialized cache, the common case in production
// (every dashboard fetches the same metrics). Run with -cpu 1,2,4,8.
func BenchmarkParallelProxyFetch(b *testing.B) {
	p, _ := benchRig(b)
	if _, err := p.Fetch(benchPMIDs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Fetch(benchPMIDs); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelProxyTCP is the full fan-out path over real
// sockets: one client connection per worker, all coalescing onto the
// proxy's cache.
func BenchmarkParallelProxyTCP(b *testing.B) {
	_, addr := benchRig(b)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c, err := pcp.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		var res pcp.FetchResult
		for pb.Next() {
			if err := c.FetchInto(benchPMIDs, &res); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
