package workload

import (
	"errors"
	"strings"
	"testing"
)

// TestCapacityKnee sweeps the exactly-solvable spec: one server at 1ms
// per request serves 1000/s, the cohort offers 600/s, so mult 2 is the
// first saturated point.
func TestCapacityKnee(t *testing.T) {
	rep, err := Capacity(kneeSpec(), CapacityOptions{Mults: []float64{0.5, 1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Knee != 2 {
		t.Fatalf("knee at index %d (%q), want 2 (mult 2):\n%s", rep.Knee, rep.KneeReason, rep.Render())
	}
	if rep.Points[1].Ratio < 0.99 {
		t.Errorf("mult 1 (600/s into 1000/s capacity) saturated: ratio %.3f", rep.Points[1].Ratio)
	}
	if rep.Points[2].Ratio >= 0.99 {
		t.Errorf("mult 2 (1200/s into 1000/s capacity) not saturated: ratio %.3f", rep.Points[2].Ratio)
	}
	// Achieved throughput at and past the knee pins near capacity.
	for _, i := range []int{2, 3} {
		if a := rep.Points[i].Achieved; a < 900 || a > 1100 {
			t.Errorf("point %d achieved %.0f/s, want ~1000 (capacity)", i, a)
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "knee at mult=2") || !strings.Contains(out, "<<") {
		t.Errorf("render missing knee verdict:\n%s", out)
	}
}

// TestCapacityDeterministicAcrossWorkers is the sweep contract extended
// to the analyzer: the report is byte-identical at any worker count.
func TestCapacityDeterministicAcrossWorkers(t *testing.T) {
	opts := func(w int) CapacityOptions {
		return CapacityOptions{Mults: []float64{0.5, 1, 2}, Workers: w}
	}
	serial, err := Capacity(richSpec(), opts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Capacity(richSpec(), opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Errorf("worker count changed the report:\n%s\nvs\n%s", serial.Render(), parallel.Render())
	}
}

func TestCapacityNoKnee(t *testing.T) {
	spec := kneeSpec()
	rep, err := Capacity(spec, CapacityOptions{Mults: []float64{0.25, 0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Knee != -1 {
		t.Errorf("underloaded sweep found a knee at %d: %s", rep.Knee, rep.KneeReason)
	}
	if !strings.Contains(rep.Render(), "no knee found") {
		t.Errorf("render missing no-knee verdict:\n%s", rep.Render())
	}
}

func TestCapacityOptionErrors(t *testing.T) {
	for name, mults := range map[string][]float64{
		"zero mult":      {0, 1},
		"negative mult":  {-1, 1},
		"not increasing": {1, 1},
	} {
		_, err := Capacity(kneeSpec(), CapacityOptions{Mults: mults})
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: %v does not wrap ErrSpec", name, err)
		}
	}
	bad := kneeSpec()
	bad.Cohorts = nil
	if _, err := Capacity(bad, CapacityOptions{}); err == nil {
		t.Error("invalid spec accepted")
	}
}
