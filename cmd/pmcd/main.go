// Command pmcd runs a standalone Performance Metrics Collector Daemon
// over a simulated node's nest counters, optionally with a synthetic
// traffic generator, so PAPI clients (or a raw pcp.Client) can be
// exercised against a live daemon.
//
// Usage:
//
//	pmcd [-addr 127.0.0.1:44321] [-machine summit] [-demo]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"papimc/internal/arch"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/simtime"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:44321", "listen address")
	machine := flag.String("machine", "summit", "summit | tellico")
	demo := flag.Bool("demo", false, "generate synthetic traffic continuously")
	flag.Parse()

	var m arch.Machine
	switch strings.ToLower(*machine) {
	case "summit":
		m = arch.Summit()
	case "tellico":
		m = arch.Tellico()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	// The testbed starts its own daemon on an ephemeral port; for a
	// standalone daemon on a chosen port we build a second one over the
	// same PMUs... simpler: build the testbed and report its address,
	// unless a fixed address was requested.
	tb, err := node.NewTestbed(m, 1, node.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tb.Close()
	fmt.Printf("pmcd: serving %s nest metrics on %s (requested %s)\n", m.Name, tb.PMCDAddr, *addr)
	fmt.Println("pmcd: connect with pcp.Dial or the papi pcp component; Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if *demo {
		fmt.Println("pmcd: -demo generating ~64 MiB/s of synthetic traffic")
		go func() {
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					tr := model.Traffic{
						ReadBytes:  4 << 20,
						WriteBytes: 2 << 20,
						Duration:   100 * simtime.Millisecond,
					}
					tb.Nodes[0].Play(0, tr, 4)
				}
			}
		}()
	}
	<-stop
	fmt.Println("\npmcd: shutting down")
}
