// The discrete-event engine: a binary min-heap of per-client arrival
// candidates over virtual time. Every client is a state machine with its
// own sweep.Seed2 substream; candidates arrive at the cohort's envelope
// rate and are accepted by thinning against the momentary rate curve, so
// arrivals form a non-homogeneous Poisson process per cohort while every
// draw stays deterministic.
//
// Virtual-time and wall-clock runs share this entire path — generation,
// thinning, issue, accounting, trace recording. They diverge only at two
// clock touchpoints: pace() (a no-op in virtual time, a sleep-until in
// wall time) and the Target (deterministic queue model vs. real fetch).
// That is what makes a laptop simulate a million concurrent clients
// faster than real time with the same code that drives a real tier.
package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"papimc/internal/loadgen"
	"papimc/internal/simtime"
	"papimc/internal/stats"
	"papimc/internal/sweep"
	"papimc/internal/xrand"
)

// Options configures one workload run.
type Options struct {
	// Mult scales every cohort's rate curve (the capacity analyzer's
	// sweep axis). 0 means 1.
	Mult float64
	// Target overrides the service model. Nil means NewSimTarget(spec)
	// in virtual time; ignored when Live is set.
	Target Target
	// Record, when non-nil, receives every issued request as a trace row.
	Record *Trace
	// Live switches to the wall-clock executor: arrivals are paced in
	// real time and issued against real connections.
	Live *LiveOptions
}

// LiveOptions configures the wall-clock executor.
type LiveOptions struct {
	// Factory builds one connection per executor worker.
	Factory loadgen.Factory
	// Workers bounds in-flight requests (0 means 64). Generation blocks
	// when all workers are busy, which is the executor's backpressure.
	Workers int
	// MaxPMIDs caps the fetch width a request's Size can demand (0: 64).
	MaxPMIDs int
}

// CohortResult is one cohort's accounting in a report.
type CohortResult struct {
	Name      string            `json:"name"`
	Clients   int               `json:"clients"`
	Arrivals  int64             `json:"arrivals"`
	Completed int64             `json:"completed"` // completion within the horizon
	Pending   int64             `json:"pending"`   // issued, completion past the horizon
	Errors    int64             `json:"errors"`
	ByClass   [NumClasses]int64 `json:"by_class"`
	P50       int64             `json:"p50_ns"`
	P90       int64             `json:"p90_ns"`
	P99       int64             `json:"p99_ns"`
	P999      int64             `json:"p999_ns"`
	MaxLat    int64             `json:"max_ns"`
}

// Report is one run's result: per-cohort and total accounting plus the
// saturation ratio the capacity analyzer keys on. In virtual-time mode
// every field is bit-identical across runs with the same spec and seed.
type Report struct {
	Name    string           `json:"name"`
	Seed    uint64           `json:"seed"`
	Mult    float64          `json:"mult"`
	Horizon simtime.Duration `json:"horizon_ns"`
	Live    bool             `json:"live,omitempty"`
	Cohorts []CohortResult   `json:"cohorts"`
	Total   CohortResult     `json:"total"`
	// Offered is the accepted arrival rate over the horizon; Achieved
	// counts only completions inside the horizon; their Ratio dropping
	// below 1 is the first knee signal.
	Offered  float64 `json:"offered_per_sec"`
	Achieved float64 `json:"achieved_per_sec"`
	Ratio    float64 `json:"ratio"`
	Events   int64   `json:"events"` // candidates processed by the event loop
}

// event is one pending arrival candidate, ordered by (t, cohort, client)
// so heap order — and therefore every downstream draw — is deterministic.
type event struct {
	t      int64
	cohort int32
	client int32
}

func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.cohort != b.cohort {
		return a.cohort < b.cohort
	}
	return a.client < b.client
}

// eventHeap is a hand-rolled binary min-heap: the loop runs millions of
// push/pop pairs, so we avoid container/heap's interface boxing.
type eventHeap struct{ ev []event }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h.ev[i], h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(h.ev[l], h.ev[small]) {
			small = l
		}
		if r < n && eventLess(h.ev[r], h.ev[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.ev[i], h.ev[small] = h.ev[small], h.ev[i]
		i = small
	}
}

func (h *eventHeap) init() {
	for i := len(h.ev)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// cohortGen is a cohort's precomputed generation state.
type cohortGen struct {
	spec      *CohortSpec
	srcs      []xrand.Source // one substream per client
	envelope  float64
	invRateNs float64 // mean candidate inter-arrival per client, ns
	cumMix    [NumClasses]float64
	sizeMin   float64
	sizeInvA  float64 // 1/alpha, 0 for fixed size
	sizeMax   float64
}

func newCohortGen(spec *Spec, ci int, mult float64) *cohortGen {
	c := &spec.Cohorts[ci]
	g := &cohortGen{spec: c, envelope: c.envelope()}
	peak := c.Rate * mult * g.envelope / float64(c.Clients)
	g.invRateNs = 1e9 / peak
	w := c.Mix.weights()
	total := c.Mix.total()
	cum := 0.0
	for i := range w {
		cum += w[i] / total
		g.cumMix[i] = cum
	}
	g.cumMix[NumClasses-1] = 1 // guard against float residue
	g.sizeMin = float64(c.Size.Min)
	g.sizeMax = float64(c.Size.Max)
	if c.Size.Alpha > 0 {
		g.sizeInvA = 1 / c.Size.Alpha
	}
	g.srcs = make([]xrand.Source, c.Clients)
	for j := range g.srcs {
		g.srcs[j] = *xrand.New(sweep.Seed2(spec.Seed, ci, j))
	}
	return g
}

// next draws client j's next candidate delay in ns (exponential at the
// envelope rate).
func (g *cohortGen) next(j int) int64 {
	d := g.srcs[j].ExpFloat64() * g.invRateNs
	if d < 1 {
		d = 1
	}
	if d > math.MaxInt64/2 {
		d = math.MaxInt64 / 2
	}
	return int64(d)
}

// accept thins the candidate at time t against the momentary rate curve.
func (g *cohortGen) accept(j int, t simtime.Time) bool {
	return g.srcs[j].Float64()*g.envelope < g.spec.modulation(t)
}

// draw samples the request class and heavy-tailed size from the client's
// substream.
func (g *cohortGen) draw(j int) (Class, int) {
	u := g.srcs[j].Float64()
	class := Class(0)
	for class < NumClasses-1 && u > g.cumMix[class] {
		class++
	}
	size := g.sizeMin
	if g.sizeInvA > 0 {
		v := g.srcs[j].Float64()
		if v < 1e-12 {
			v = 1e-12
		}
		size = g.sizeMin * math.Pow(v, -g.sizeInvA)
	}
	if size > g.sizeMax {
		size = g.sizeMax
	}
	return class, int(size)
}

// engine carries one run's mutable state; Run and Replay both drive it
// through the same pace/issue/complete path.
type engine struct {
	spec    *Spec
	mult    float64
	horizon int64
	target  Target
	rec     *Trace

	// live-mode rig; nil in virtual time.
	live      *LiveOptions
	wallStart time.Time
	reqs      chan Request
	wg        sync.WaitGroup
	mu        sync.Mutex // guards accounting + trace in live mode
	liveErr   error

	seq    int64
	events int64
	acc    []cohortAcc
}

type cohortAcc struct {
	arrivals, completed, pending, errs int64
	byClass                            [NumClasses]int64
	hist                               stats.Histogram
}

func newEngine(spec *Spec, o Options) (*engine, error) {
	e := &engine{
		spec:    spec,
		mult:    o.Mult,
		horizon: int64(spec.Duration),
		target:  o.Target,
		rec:     o.Record,
		live:    o.Live,
		acc:     make([]cohortAcc, len(spec.Cohorts)),
	}
	if e.mult <= 0 {
		e.mult = 1
	}
	if e.rec != nil {
		e.rec.Spec = spec.Name
		e.rec.Seed = spec.Seed
		e.rec.Mult = e.mult
		e.rec.Horizon = e.horizon
		e.rec.Cohorts = e.rec.Cohorts[:0]
		for i := range spec.Cohorts {
			e.rec.Cohorts = append(e.rec.Cohorts, spec.Cohorts[i].Name)
		}
		e.rec.Rows = e.rec.Rows[:0]
	}
	if e.live != nil {
		if e.live.Factory == nil {
			return nil, fmt.Errorf("workload: live mode requires a Factory")
		}
		if err := e.startLive(); err != nil {
			return nil, err
		}
	} else if e.target == nil {
		e.target = NewSimTarget(spec)
	}
	return e, nil
}

func (e *engine) startLive() error {
	workers := e.live.Workers
	if workers <= 0 {
		workers = 64
	}
	e.wallStart = time.Now()
	e.reqs = make(chan Request, workers)
	for w := 0; w < workers; w++ {
		fet, cleanup, err := e.live.Factory()
		if err != nil {
			close(e.reqs)
			e.wg.Wait()
			return fmt.Errorf("workload: live worker %d: %w", w, err)
		}
		lt := NewLiveTarget(fet, e.live.MaxPMIDs)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer cleanup()
			for req := range e.reqs {
				out := lt.Do(req)
				e.mu.Lock()
				e.complete(req, out)
				e.mu.Unlock()
			}
		}()
	}
	return nil
}

// pace is the only clock touchpoint of the generation loop: virtual time
// proceeds as fast as the heap drains, wall time sleeps to the schedule.
func (e *engine) pace(t int64) {
	if e.live == nil {
		return
	}
	if d := time.Until(e.wallStart.Add(time.Duration(t))); d > 0 {
		time.Sleep(d)
	}
}

// issue sends one request down the shared path: inline through the
// deterministic target in virtual time, to the executor pool in live
// mode.
func (e *engine) issue(t int64, cohort int, class Class, size int) {
	req := Request{T: simtime.Time(t), Seq: e.seq, Cohort: cohort, Class: class, Size: size}
	e.seq++
	if e.live != nil {
		e.reqs <- req
		return
	}
	e.complete(req, e.target.Do(req))
}

// complete records one outcome. Called inline in virtual time, under
// e.mu from executor workers in live mode.
func (e *engine) complete(req Request, out Outcome) {
	a := &e.acc[req.Cohort]
	a.arrivals++
	a.byClass[req.Class]++
	status := uint8(0)
	if out.Err {
		a.errs++
		status = 1
	}
	if int64(req.T)+out.Lat <= e.horizon {
		a.completed++
		a.hist.Record(out.Lat)
	} else {
		a.pending++
	}
	if e.rec != nil {
		e.rec.Rows = append(e.rec.Rows, Row{
			T: int64(req.T), Seq: req.Seq, Cohort: uint32(req.Cohort),
			Class: req.Class, Size: uint32(req.Size), Lat: out.Lat, Status: status,
		})
	}
}

// finish drains the executor, sorts trace rows back into issue order
// (live completions arrive out of order), and assembles the report.
func (e *engine) finish() *Report {
	if e.live != nil {
		close(e.reqs)
		e.wg.Wait()
	}
	if e.rec != nil {
		sort.Slice(e.rec.Rows, func(i, j int) bool { return e.rec.Rows[i].Seq < e.rec.Rows[j].Seq })
	}
	rep := &Report{
		Name:    e.spec.Name,
		Seed:    e.spec.Seed,
		Mult:    e.mult,
		Horizon: simtime.Duration(e.horizon),
		Live:    e.live != nil,
		Events:  e.events,
	}
	var total cohortAcc
	qs := []float64{0.5, 0.9, 0.99, 0.999}
	for i := range e.acc {
		a := &e.acc[i]
		cr := cohortResult(e.spec.Cohorts[i].Name, e.spec.Cohorts[i].Clients, a, qs)
		rep.Cohorts = append(rep.Cohorts, cr)
		total.arrivals += a.arrivals
		total.completed += a.completed
		total.pending += a.pending
		total.errs += a.errs
		for c := range a.byClass {
			total.byClass[c] += a.byClass[c]
		}
		total.hist.Merge(&a.hist)
	}
	rep.Total = cohortResult("total", e.spec.TotalClients(), &total, qs)
	secs := simtime.Duration(e.horizon).Seconds()
	if secs > 0 {
		rep.Offered = float64(total.arrivals) / secs
		rep.Achieved = float64(total.completed) / secs
	}
	rep.Ratio = 1
	if total.arrivals > 0 {
		rep.Ratio = float64(total.completed) / float64(total.arrivals)
	}
	return rep
}

func cohortResult(name string, clients int, a *cohortAcc, qs []float64) CohortResult {
	q := a.hist.Quantiles(qs)
	return CohortResult{
		Name: name, Clients: clients,
		Arrivals: a.arrivals, Completed: a.completed, Pending: a.pending, Errors: a.errs,
		ByClass: a.byClass,
		P50:     int64(q[0]), P90: int64(q[1]), P99: int64(q[2]), P999: int64(q[3]),
		MaxLat: a.hist.Max(),
	}
}

// Run expands the spec into its request stream and executes it. With the
// default virtual-time executor the run is deterministic: byte-identical
// reports (and traces) across runs with the same spec and seed.
func Run(spec *Spec, o Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(spec, o)
	if err != nil {
		return nil, err
	}
	gens := make([]*cohortGen, len(spec.Cohorts))
	var h eventHeap
	for ci := range spec.Cohorts {
		gens[ci] = newCohortGen(spec, ci, e.mult)
		for j := 0; j < spec.Cohorts[ci].Clients; j++ {
			if t := gens[ci].next(j); t <= e.horizon {
				h.ev = append(h.ev, event{t: t, cohort: int32(ci), client: int32(j)})
			}
		}
	}
	h.init()
	for len(h.ev) > 0 {
		ev := h.pop()
		e.events++
		g := gens[ev.cohort]
		j := int(ev.client)
		if g.accept(j, simtime.Time(ev.t)) {
			class, size := g.draw(j)
			e.pace(ev.t)
			e.issue(ev.t, int(ev.cohort), class, size)
		}
		if t := ev.t + g.next(j); t <= e.horizon {
			h.push(event{t: t, cohort: ev.cohort, client: ev.client})
		}
	}
	return e.finish(), nil
}

// Replay re-issues a recorded trace through the same issue path: the
// per-request schedule comes from the trace rows instead of the client
// state machines, everything downstream — pacing, target, accounting,
// re-recording — is the code Run uses. Replaying a virtual-time trace
// against the spec that recorded it reproduces the original run's result
// stream bit-exact.
func Replay(tr *Trace, spec *Spec, o Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(tr.Cohorts) != len(spec.Cohorts) {
		return nil, fmt.Errorf("workload: trace has %d cohorts, spec %d", len(tr.Cohorts), len(spec.Cohorts))
	}
	for i := range tr.Cohorts {
		if tr.Cohorts[i] != spec.Cohorts[i].Name {
			return nil, fmt.Errorf("workload: trace cohort %d is %q, spec has %q", i, tr.Cohorts[i], spec.Cohorts[i].Name)
		}
	}
	if o.Mult == 0 {
		o.Mult = tr.Mult
	}
	replaySpec := *spec
	replaySpec.Seed = tr.Seed
	if tr.Horizon > 0 {
		replaySpec.Duration = simtime.Duration(tr.Horizon)
	}
	e, err := newEngine(&replaySpec, o)
	if err != nil {
		return nil, err
	}
	for i := range tr.Rows {
		r := &tr.Rows[i]
		if int(r.Cohort) >= len(spec.Cohorts) {
			return nil, fmt.Errorf("workload: trace row %d names cohort %d of %d", i, r.Cohort, len(spec.Cohorts))
		}
		e.events++
		e.pace(r.T)
		e.issue(r.T, int(r.Cohort), r.Class, int(r.Size))
	}
	return e.finish(), nil
}
