// Package nvmlcomp implements PAPI's NVML component: instantaneous GPU
// power readings (Table II: nvml:::Tesla_V100-SXM2-16GB:device_0:power),
// reported in milliwatts as NVML does.
package nvmlcomp

import (
	"errors"
	"fmt"

	"papimc/internal/gpu"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

// Component exposes the power sensors of a node's GPUs.
type Component struct {
	devices []*gpu.Device
	byName  map[string]*gpu.Device
}

// New builds the component over the given devices.
func New(devices []*gpu.Device) *Component {
	c := &Component{devices: devices, byName: make(map[string]*gpu.Device)}
	for _, d := range devices {
		c.byName[d.EventName()] = d
	}
	return c
}

// Name implements papi.Component.
func (c *Component) Name() string { return "nvml" }

func info(d *gpu.Device) papi.EventInfo {
	return papi.EventInfo{
		Name:        d.EventName(),
		Description: fmt.Sprintf("instantaneous power draw of GPU %d", d.Index()),
		Units:       "mW",
		Instant:     true,
	}
}

// ListEvents implements papi.Component.
func (c *Component) ListEvents() ([]papi.EventInfo, error) {
	out := make([]papi.EventInfo, len(c.devices))
	for i, d := range c.devices {
		out[i] = info(d)
	}
	return out, nil
}

// Describe implements papi.Component.
func (c *Component) Describe(native string) (papi.EventInfo, error) {
	d, ok := c.byName[native]
	if !ok {
		return papi.EventInfo{}, fmt.Errorf("%w: %q", papi.ErrNoEvent, native)
	}
	return info(d), nil
}

// NewCounters implements papi.Component.
func (c *Component) NewCounters(natives []string) (papi.Counters, error) {
	set := &counters{}
	for _, n := range natives {
		d, ok := c.byName[n]
		if !ok {
			return nil, fmt.Errorf("%w: %q", papi.ErrNoEvent, n)
		}
		set.devices = append(set.devices, d)
	}
	return set, nil
}

type counters struct {
	devices []*gpu.Device
	closed  bool
}

func (s *counters) ReadAt(t simtime.Time) ([]uint64, error) {
	if s.closed {
		return nil, errors.New("nvmlcomp: counters closed")
	}
	out := make([]uint64, len(s.devices))
	for i, d := range s.devices {
		out[i] = d.PowerMilliwatts(t)
	}
	return out, nil
}

func (s *counters) Close() error {
	s.closed = true
	return nil
}
