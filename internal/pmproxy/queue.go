package pmproxy

import (
	"container/heap"
	"fmt"
	"sync"
)

// wfq is the weighted fair queue gating upstream operations. Cache hits
// never touch it; only work that would occupy an upstream connection
// acquires a slot. When all slots are busy, waiters queue per tenant
// and are released in virtual-finish-time order: each waiter is stamped
// finish = max(queue vtime, tenant's last finish) + 1/weight, so a
// backlogged tenant's requests space out by the inverse of its weight
// and a heavier tenant drains proportionally faster — weighted fair
// sharing without timers or per-tenant goroutines.
//
// Each tenant's backlog is bounded: a request arriving with maxQueue
// waiters already queued for its tenant is shed immediately with a
// typed ErrAdmissionRejected, which upstream of here turns into either
// a stale serve (degradable tenants) or a counted shed.
type wfq struct {
	maxQueue int
	weight   func(tenant uint32) float64

	mu         sync.Mutex
	slots      int // free service slots
	vtime      float64
	waiters    waiterHeap
	queued     map[uint32]int     // waiters per tenant (the bound)
	lastFinish map[uint32]float64 // per-tenant virtual finish memo
	closed     bool
}

// waiter is one queued acquire: its release signal and heap bookkeeping.
type waiter struct {
	tenant  uint32
	finish  float64
	ready   chan struct{} // 1-buffered: granting never blocks
	index   int
	granted bool
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].finish < h[j].finish }
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *waiterHeap) Push(x any)        { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

func newWFQ(slots, maxQueue int, weight func(uint32) float64) *wfq {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 1 {
		maxQueue = 64
	}
	if weight == nil {
		weight = func(uint32) float64 { return 1 }
	}
	return &wfq{
		maxQueue:   maxQueue,
		weight:     weight,
		slots:      slots,
		queued:     make(map[uint32]int),
		lastFinish: make(map[uint32]float64),
	}
}

// acquire takes a service slot for the tenant, blocking in fair-queue
// order when none is free. It returns a typed rejection when the
// tenant's queue is full or the queue is shut down.
func (q *wfq) acquire(tenant uint32) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return fmt.Errorf("%w: proxy shutting down", ErrAdmissionRejected)
	}
	if q.slots > 0 && len(q.waiters) == 0 {
		q.slots--
		q.mu.Unlock()
		return nil
	}
	if q.queued[tenant] >= q.maxQueue {
		q.mu.Unlock()
		return fmt.Errorf("%w: tenant %d queue full (%d waiting)", ErrAdmissionRejected, tenant, q.maxQueue)
	}
	w := &waiter{tenant: tenant, ready: make(chan struct{}, 1)}
	start := q.vtime
	if lf := q.lastFinish[tenant]; lf > start {
		start = lf
	}
	w.finish = start + 1/q.weight(tenant)
	q.lastFinish[tenant] = w.finish
	q.queued[tenant]++
	heap.Push(&q.waiters, w)
	// A slot may be free with waiters still queued (freed between the
	// fast path above and here, or granted by a release that raced):
	// dispatch so the head waiter — possibly this one — runs.
	q.dispatchLocked()
	q.mu.Unlock()
	<-w.ready
	q.mu.Lock()
	closed := q.closed && !w.granted
	q.mu.Unlock()
	if closed {
		return fmt.Errorf("%w: proxy shutting down", ErrAdmissionRejected)
	}
	return nil
}

// release returns a slot and hands it to the earliest-finish waiter, if
// any — the slot transfer that keeps the queue work-conserving.
func (q *wfq) release() {
	q.mu.Lock()
	q.slots++
	q.dispatchLocked()
	q.mu.Unlock()
}

// dispatchLocked grants free slots to waiters in virtual-finish order.
func (q *wfq) dispatchLocked() {
	for q.slots > 0 && len(q.waiters) > 0 {
		w := heap.Pop(&q.waiters).(*waiter)
		q.slots--
		q.vtime = w.finish
		q.queued[w.tenant]--
		if q.queued[w.tenant] == 0 {
			delete(q.queued, w.tenant)
		}
		w.granted = true
		w.ready <- struct{}{}
	}
}

// shutdown fails every queued waiter with a typed rejection and makes
// all future acquires fail immediately.
func (q *wfq) shutdown() {
	q.mu.Lock()
	q.closed = true
	ws := append([]*waiter(nil), q.waiters...)
	q.waiters = q.waiters[:0]
	q.queued = make(map[uint32]int)
	q.mu.Unlock()
	for _, w := range ws {
		w.ready <- struct{}{}
	}
}
