package workload

import (
	"strings"
	"testing"
	"time"

	"papimc/internal/loadgen"
	"papimc/internal/simtime"
	"papimc/internal/testutil"
)

// richSpec exercises every generation feature: two cohorts, skewed
// class mixes, heavy-tailed sizes, diurnal harmonics, and rate windows.
func richSpec() *Spec {
	return &Spec{
		Name:     "rich",
		Seed:     7,
		Duration: 20 * simtime.Second,
		Server:   ServerSpec{Servers: 16, Base: 200 * simtime.Microsecond, Jitter: 0.2, SizeRef: 4},
		Cohorts: []CohortSpec{
			{
				Name: "dashboards", Clients: 2000, Rate: 400,
				Mix:     Mix{Live: 6, Proxied: 2, Archive: 1, Derived: 1},
				Size:    SizeSpec{Min: 2, Alpha: 1.2, Max: 128},
				Diurnal: []Harmonic{{Period: 10 * simtime.Second, Amplitude: 0.5}},
				Windows: []Window{{Start: 0, Mult: 1}, {Start: 10 * simtime.Second, Mult: 1.5}},
			},
			{
				Name: "alerting", Clients: 500, Rate: 200,
				Mix:  Mix{Live: 1},
				Size: SizeSpec{Min: 1, Alpha: 0.8, Max: 8},
			},
		},
	}
}

// kneeSpec has an exactly computable capacity: one server, 1ms service
// time at the fixed size, so 1000 req/s. Rate 600 leaves headroom at
// mult 1 and saturates at mult 2.
func kneeSpec() *Spec {
	return &Spec{
		Name:     "knee",
		Seed:     42,
		Duration: 30 * simtime.Second,
		Server:   ServerSpec{Servers: 1, Base: simtime.Millisecond, SizeRef: 1},
		Cohorts: []CohortSpec{{
			Name: "api", Clients: 400, Rate: 600,
			Size: SizeSpec{Min: 1, Max: 1},
		}},
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(richSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(richSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("same spec and seed rendered differently:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	if a.Total.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	// A different seed must move the stream.
	other := richSpec()
	other.Seed = 8
	c, err := Run(other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Render() == a.Render() {
		t.Error("different seeds produced identical reports")
	}
}

func TestRunMixSizesAndAccounting(t *testing.T) {
	rep, err := Run(richSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dash := rep.Cohorts[0]
	// dashboards weights 6:2:1:1 — live must dominate, every class present.
	if dash.ByClass[Live] <= dash.ByClass[Proxied] || dash.ByClass[Proxied] <= dash.ByClass[Archive] {
		t.Errorf("mix ordering violated: %v", dash.ByClass)
	}
	for c := Live; c < NumClasses; c++ {
		if dash.ByClass[c] == 0 {
			t.Errorf("class %v never drawn in %d arrivals", c, dash.Arrivals)
		}
	}
	// alerting is pure live.
	alert := rep.Cohorts[1]
	if got := alert.ByClass[Proxied] + alert.ByClass[Archive] + alert.ByClass[Derived]; got != 0 {
		t.Errorf("pure-live cohort drew %d non-live requests", got)
	}
	// Accounting closes: arrivals = completed + pending, per cohort and total.
	for _, c := range append(rep.Cohorts, rep.Total) {
		if c.Arrivals != c.Completed+c.Pending {
			t.Errorf("%s: arrivals %d != completed %d + pending %d", c.Name, c.Arrivals, c.Completed, c.Pending)
		}
	}
	// Percentiles are monotone and bounded by the max.
	tot := rep.Total
	if !(tot.P50 <= tot.P90 && tot.P90 <= tot.P99 && tot.P99 <= tot.P999 && tot.P999 <= tot.MaxLat) {
		t.Errorf("percentiles not monotone: p50=%d p90=%d p99=%d p99.9=%d max=%d",
			tot.P50, tot.P90, tot.P99, tot.P999, tot.MaxLat)
	}
	// Offered rate lands near the configured aggregate (600/s average:
	// the diurnal term averages out, the mult-1.5 window raises the mean).
	if rep.Offered < 400 || rep.Offered > 1100 {
		t.Errorf("offered rate %.1f/s far from configured aggregate", rep.Offered)
	}
}

func TestRunMultScalesOfferedLoad(t *testing.T) {
	base, err := Run(kneeSpec(), Options{Mult: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	double, err := Run(kneeSpec(), Options{Mult: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := double.Offered / base.Offered
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling mult scaled offered load by %.2f, want ~2", ratio)
	}
}

// TestMillionClientsVirtualTime is the headline acceptance check: one
// million concurrent clients simulated over ten virtual minutes, faster
// than real time, with a byte-identical report across runs.
func TestMillionClientsVirtualTime(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector shadow memory makes the 1M-client heap too heavy")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := func() *Spec {
		return &Spec{
			Name:     "million",
			Seed:     99,
			Duration: 600 * simtime.Second,
			Server:   ServerSpec{Servers: 32, Base: 500 * simtime.Microsecond, Jitter: 0.1, SizeRef: 8},
			Cohorts: []CohortSpec{{
				Name: "world", Clients: 1_000_000, Rate: 3000,
				Mix:     Mix{Live: 4, Proxied: 3, Archive: 2, Derived: 1},
				Size:    SizeSpec{Min: 1, Alpha: 1.1, Max: 64},
				Diurnal: []Harmonic{{Period: 300 * simtime.Second, Amplitude: 0.6}},
			}},
		}
	}
	start := time.Now()
	a, err := Run(spec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	virtual := time.Duration(int64(a.Horizon))
	if wall >= virtual {
		t.Errorf("virtual-time run of %v took %v wall — not faster than real time", virtual, wall)
	}
	t.Logf("1M clients, %v virtual in %v wall (%.0fx real time, %d events, %d arrivals)",
		virtual, wall, virtual.Seconds()/wall.Seconds(), a.Events, a.Total.Arrivals)
	if a.Total.Arrivals < 1_000_000 {
		t.Errorf("only %d arrivals over the horizon, want over a million", a.Total.Arrivals)
	}
	b, err := Run(spec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("million-client simulation not deterministic across runs")
	}
}

// TestLiveModeSharedPath drives the wall-clock executor against a real
// daemon: same spec, same generation path, real fetches.
func TestLiveModeSharedPath(t *testing.T) {
	_, addr := testutil.StartCounterDaemon(t, 32)
	spec := &Spec{
		Name:     "live-smoke",
		Seed:     3,
		Duration: 300 * simtime.Millisecond,
		Cohorts: []CohortSpec{{
			Name: "smoke", Clients: 50, Rate: 200,
			Size: SizeSpec{Min: 1, Alpha: 1, Max: 16},
		}},
	}
	var tr Trace
	rep, err := Run(spec, Options{
		Record: &tr,
		Live:   &LiveOptions{Factory: loadgen.DialFactory(addr), Workers: 8, MaxPMIDs: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Live {
		t.Error("report not flagged live")
	}
	if rep.Total.Arrivals == 0 {
		t.Fatal("live run issued no requests")
	}
	if rep.Total.Errors != 0 {
		t.Errorf("%d errors against a healthy daemon", rep.Total.Errors)
	}
	if !strings.Contains(rep.Render(), "mode=wall-clock") {
		t.Errorf("render missing live mode marker:\n%s", rep.Render())
	}
	// The recorded trace is sorted back into issue order even though live
	// completions land out of order.
	for i := 1; i < len(tr.Rows); i++ {
		if tr.Rows[i].T < tr.Rows[i-1].T || tr.Rows[i].Seq != tr.Rows[i-1].Seq+1 {
			t.Fatalf("trace row %d out of issue order", i)
		}
	}
	if int64(len(tr.Rows)) != rep.Total.Arrivals {
		t.Errorf("trace has %d rows, report %d arrivals", len(tr.Rows), rep.Total.Arrivals)
	}
}

func TestLiveModeFactoryError(t *testing.T) {
	spec := kneeSpec()
	bad := func() (loadgen.Fetcher, func() error, error) {
		return nil, nil, errFactory
	}
	if _, err := Run(spec, Options{Live: &LiveOptions{Factory: bad}}); err == nil {
		t.Fatal("factory failure not surfaced")
	}
	if _, err := Run(spec, Options{Live: &LiveOptions{}}); err == nil {
		t.Fatal("nil factory accepted")
	}
}

var errFactory = &factoryErr{}

type factoryErr struct{}

func (*factoryErr) Error() string { return "factory down" }
