package loadgen

import (
	"strings"
	"testing"

	"papimc/internal/pmproxy"
)

// TestRunTenantsShedAccounting drives two tenant streams at a
// QoS-enabled proxy: the quota'd tenant completes every op with zero
// sheds, the quota-less tenant is fully shed — and sheds are counted
// apart from errors, because a shed is the tier working as configured.
func TestRunTenantsShedAccounting(t *testing.T) {
	_, addr := testDaemon(t)
	p := pmproxy.New(pmproxy.Config{
		Upstream: addr,
		Admission: pmproxy.AdmissionConfig{
			Policy:  "token-bucket",
			Tenants: map[uint32]pmproxy.TenantConfig{1: {Rate: 1e9}},
			Default: pmproxy.TenantConfig{Rate: 0},
		},
	})
	paddr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	opts := Options{Mode: Closed, Ops: 50, PMIDs: []uint32{1, 2}}
	results, err := RunTenants([]TenantLoad{
		{Name: "gold", Tenant: 1, Factory: DialTenantFactory(paddr, 1), Opts: opts},
		{Tenant: 2, Factory: DialTenantFactory(paddr, 2), Opts: opts},
	})
	if err != nil {
		t.Fatal(err)
	}
	gold, starved := results[0], results[1]
	if gold.Name != "gold" || gold.Ops != 50 || gold.Shed != 0 || gold.Errors != 0 {
		t.Errorf("gold result = %+v, want 50 ops, 0 sheds, 0 errors", gold.Result)
	}
	if starved.Name != "tenant-2" || starved.Shed != 50 || starved.Ops != 0 || starved.Errors != 0 {
		t.Errorf("quota-less result = %+v, want 50 sheds, 0 ops, 0 errors", starved.Result)
	}
	if got := p.TenantStatsFor(2); got.Shed != 50 {
		t.Errorf("proxy counted %d sheds for tenant 2, want 50", got.Shed)
	}

	rep := TenantReport(results)
	for _, want := range []string{"sheds", "gold", "tenant-2"} {
		if !strings.Contains(rep, want) {
			t.Errorf("tenant report missing %q:\n%s", want, rep)
		}
	}
}
