package pcp_test

// Daemon-over-the-network tests, in an external test package so they can
// share the internal/testutil testbed (testutil imports pcp; an internal
// test file would be an import cycle). Wire-codec and protocol-internal
// tests stay in pcp_test.go.

import (
	"fmt"
	"sync"
	"testing"

	"papimc/internal/nest"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
	"papimc/internal/testutil"
)

func TestDaemonNamesOverNetwork(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	c := testutil.Dial(t, bed.Addr)
	entries, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("got %d metrics, want 16", len(entries))
	}
	found := false
	for _, e := range entries {
		if e.Name == "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87" {
			found = true
		}
		if e.PMID == 0 {
			t.Errorf("metric %q has PMID 0", e.Name)
		}
	}
	if !found {
		t.Error("Table I Summit metric name missing from namespace")
	}
}

func TestFetchSeesTraffic(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	c := testutil.Dial(t, bed.Addr)
	bed.Ctl.AddTraffic(true, 0, 64*800, 0, 0)
	bed.Clock.Advance(100 * simtime.Millisecond)
	var names []string
	for ch := 0; ch < 8; ch++ {
		names = append(names, pcp.NestMetricName(bed.NestPMU(), nest.Event{Channel: ch}))
	}
	res, err := c.FetchByName(names...)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, v := range res.Values {
		if v.Status != pcp.StatusOK {
			t.Fatalf("value status %d", v.Status)
		}
		sum += v.Value
	}
	if sum != 64*800 {
		t.Errorf("read sum over PCP = %d, want %d", sum, 64*800)
	}
}

func TestDaemonSamplingIntervalStaleness(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	c := testutil.Dial(t, bed.Addr)
	name := pcp.NestMetricName(bed.NestPMU(), nest.Event{Channel: 0})
	// First fetch samples at t=0.
	res1, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	// New traffic, but within the same sampling interval: stale value.
	bed.Ctl.AddTraffic(true, 0, 64*8000, 0, 0)
	bed.Clock.Advance(simtime.Millisecond)
	res2, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Values[0].Value != res1.Values[0].Value {
		t.Errorf("value refreshed within sampling interval: %d -> %d",
			res1.Values[0].Value, res2.Values[0].Value)
	}
	if res2.Timestamp != res1.Timestamp {
		t.Errorf("timestamp advanced within interval")
	}
	// After the interval elapses the new traffic is visible.
	bed.Clock.Advance(20 * simtime.Millisecond)
	res3, err := c.FetchByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Values[0].Value <= res1.Values[0].Value {
		t.Errorf("value did not refresh after interval: %d", res3.Values[0].Value)
	}
}

func TestFetchUnknownPMID(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	c := testutil.Dial(t, bed.Addr)
	res, err := c.Fetch([]uint32{9999, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v.Status != pcp.StatusNoSuchPMID {
			t.Errorf("pmid %d status = %d, want StatusNoSuchPMID", v.PMID, v.Status)
		}
	}
}

func TestLookupUnknownName(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	c := testutil.Dial(t, bed.Addr)
	if _, err := c.Lookup("no.such.metric"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

// TestConcurrentClients spins a daemon and hammers it from several
// goroutines to exercise concurrent connection handling.
func TestConcurrentClients(t *testing.T) {
	bed := testutil.StartNestDaemon(t, simtime.Millisecond)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			c, err := pcp.Dial(bed.Addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.Fetch([]uint32{1, 2, 3}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Errorf("client goroutine: %v", err)
		}
	}
}

// TestLookupRefreshesOnMiss: a metric registered after the client cached
// the name table still resolves — the client refreshes once on a miss
// instead of returning a permanent "unknown metric" error.
func TestLookupRefreshesOnMiss(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	c := testutil.Dial(t, bed.Addr)
	if _, err := c.Names(); err != nil { // populate the cache
		t.Fatal(err)
	}
	const late = "perfevent.hwcounters.late_agent.value.cpu87"
	if err := bed.Daemon.Register(pcp.Metric{Name: late,
		Read: func(simtime.Time) (uint64, error) { return 1234, nil }}); err != nil {
		t.Fatal(err)
	}
	id, err := c.Lookup(late)
	if err != nil {
		t.Fatalf("Lookup after namespace growth: %v", err)
	}
	if id == 0 {
		t.Error("resolved PMID 0")
	}
	res, err := c.FetchByName(late)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0].Status != pcp.StatusOK || res.Values[0].Value != 1234 {
		t.Errorf("late metric fetch = %+v", res.Values[0])
	}
	// A genuinely unknown metric still errors (after one refresh).
	if _, err := c.Lookup("still.not.there"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestDaemonRegisterValidation(t *testing.T) {
	bed := testutil.StartNestDaemon(t, testutil.SampleInterval)
	if err := bed.Daemon.Register(pcp.Metric{Name: "no.reader"}); err == nil {
		t.Error("expected error for nil reader")
	}
	existing := bed.Daemon.Names()[0].Name
	if err := bed.Daemon.Register(pcp.Metric{Name: existing,
		Read: func(simtime.Time) (uint64, error) { return 0, nil }}); err == nil {
		t.Error("expected error for duplicate metric")
	}
}

// TestDaemonFanOutRace hammers one daemon from many goroutines mixing
// FetchByName and Names while the clock advances concurrently, asserting
// no lost responses and per-connection monotonic timestamps. Run with
// -race, this is the serving tier's concurrency gate.
func TestDaemonFanOutRace(t *testing.T) {
	bed := testutil.StartNestDaemon(t, simtime.Millisecond)
	name := pcp.NestMetricName(bed.NestPMU(), nest.Event{Channel: 0})

	const goroutines = 16
	const iters = 40
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() { // concurrent time + traffic source
		defer tickWG.Done()
		for {
			select {
			case <-stopTick:
				return
			default:
				bed.Ctl.AddTraffic(true, 0, 64, bed.Clock.Now(), bed.Clock.Now())
				bed.Clock.Advance(100 * simtime.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := pcp.Dial(bed.Addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var lastTS int64 = -1
			for i := 0; i < iters; i++ {
				if i%8 == 0 {
					entries, err := c.Names()
					if err != nil {
						errs <- fmt.Errorf("names: %w", err)
						return
					}
					if len(entries) == 0 {
						errs <- fmt.Errorf("lost names response")
						return
					}
				}
				res, err := c.FetchByName(name)
				if err != nil {
					errs <- fmt.Errorf("fetch %d: %w", i, err)
					return
				}
				if len(res.Values) != 1 {
					errs <- fmt.Errorf("fetch %d: %d values", i, len(res.Values))
					return
				}
				if res.Timestamp < lastTS {
					errs <- fmt.Errorf("timestamp went backwards: %d -> %d", lastTS, res.Timestamp)
					return
				}
				lastTS = res.Timestamp
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(stopTick)
	tickWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
