package loadgen

import (
	"fmt"
	"strings"
	"sync"
)

// TenantLoad is one tenant's stream in a multi-tenant run: its own
// generation options driven through its own factory (typically
// DialTenantFactory, so the tenant identity travels in-band to a
// QoS-enabled proxy).
type TenantLoad struct {
	// Name labels the stream in the report ("gold", "silver"); empty
	// means "tenant-<id>".
	Name    string
	Tenant  uint32
	Factory Factory
	Opts    Options
}

// TenantResult pairs one tenant's stream with its run result.
type TenantResult struct {
	Name   string
	Tenant uint32
	Result
}

// RunTenants executes every tenant's load stream concurrently — the
// overload shape: independent open-loop streams competing for one tier —
// and returns per-tenant results in input order. An error from any
// stream fails the run.
func RunTenants(loads []TenantLoad) ([]TenantResult, error) {
	results := make([]TenantResult, len(loads))
	errs := make([]error, len(loads))
	var wg sync.WaitGroup
	for i, l := range loads {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%d", l.Tenant)
		}
		results[i] = TenantResult{Name: name, Tenant: l.Tenant}
		wg.Add(1)
		go func(i int, l TenantLoad) {
			defer wg.Done()
			r, err := Run(l.Factory, l.Opts)
			if err != nil {
				errs[i] = fmt.Errorf("loadgen: tenant %q: %w", results[i].Name, err)
				return
			}
			results[i].Result = r
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// TenantReport renders a multi-tenant run as an aligned text table, one
// row per tenant stream.
func TenantReport(results []TenantResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %5s %9s %6s %6s %12s %9s %9s %9s\n",
		"tenant", "id", "mode", "ops", "errs", "sheds", "throughput", "p50", "p99", "max")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %6d %5s %9d %6d %6d %9.0f/s %9s %9s %9s\n",
			r.Name, r.Tenant, r.Mode, r.Ops, r.Errors, r.Shed, r.Throughput,
			fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.Max))
	}
	return b.String()
}
