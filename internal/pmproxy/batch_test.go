package pmproxy

import (
	"reflect"
	"testing"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// TestProxyFetchBatchOneUpstreamRoundTrip is the batch coalescer's
// acceptance test: a cold batch of n distinct sets (one duplicated)
// costs the unique sets upstream but exactly ONE grouped upstream round
// trip, the duplicate rides along, and a second batch inside the same
// sampling interval is served entirely from the cache.
func TestProxyFetchBatchOneUpstreamRoundTrip(t *testing.T) {
	_, _, _, p, addr := rig(t, nil)
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() < pcp.Version2 {
		t.Fatalf("client negotiated version %d, want batch-capable", c.Version())
	}

	sets := [][]uint32{{1, 2}, {3, 4, 5}, {6}, {1, 2}} // last duplicates the first
	out, err := c.FetchBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(sets) {
		t.Fatalf("got %d results for %d sets", len(out), len(sets))
	}
	for si, res := range out {
		if len(res.Values) != len(sets[si]) {
			t.Fatalf("set %d: %d values for %d pmids", si, len(res.Values), len(sets[si]))
		}
		for j, v := range res.Values {
			if v.PMID != sets[si][j] || v.Status != pcp.StatusOK {
				t.Fatalf("set %d value %d = %+v, want OK for pmid %d", si, j, v, sets[si][j])
			}
		}
	}
	if !reflect.DeepEqual(out[0], out[3]) {
		t.Fatalf("duplicate sets answered differently:\n%+v\n%+v", out[0], out[3])
	}
	st := p.Stats()
	if st.ClientFetches != int64(len(sets)) {
		t.Errorf("ClientFetches = %d, want %d (one per batch set)", st.ClientFetches, len(sets))
	}
	if st.UpstreamFetches != 3 {
		t.Errorf("UpstreamFetches = %d, want 3 (unique cold sets)", st.UpstreamFetches)
	}
	if st.UpstreamBatchRTs != 1 {
		t.Errorf("UpstreamBatchRTs = %d, want 1 — the batch must group its misses into one round trip", st.UpstreamBatchRTs)
	}

	// Same interval, same sets: pure cache, no new upstream traffic.
	again, err := c.FetchBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, out) {
		t.Fatal("cached batch answer differs from the answer that filled the cache")
	}
	st2 := p.Stats()
	if st2.UpstreamFetches != st.UpstreamFetches || st2.UpstreamBatchRTs != st.UpstreamBatchRTs {
		t.Errorf("warm batch went upstream: %+v -> %+v", st, st2)
	}
	if st2.CoalescedHits < st.CoalescedHits+int64(len(sets)) {
		t.Errorf("CoalescedHits = %d after warm batch, want >= %d", st2.CoalescedHits, st.CoalescedHits+int64(len(sets)))
	}
}

// TestProxyBatchMatchesSingleFetches: inside one sampling interval a
// batch answer and per-set single fetches are the same cached bytes.
func TestProxyBatchMatchesSingleFetches(t *testing.T) {
	_, _, _, p, _ := rig(t, nil)
	sets := [][]uint32{{1, 2, 3}, {4}, {5, 6}}
	batch, err := p.FetchBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	for si, set := range sets {
		single, err := p.Fetch(set)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, batch[si]) {
			t.Errorf("set %d: single fetch %+v != batch answer %+v", si, single, batch[si])
		}
	}
}

// TestProxyBatchStaleFallback: when the grouped upstream round trip
// fails, each missing set individually falls back to its cached answer
// — the batch degrades per set, like single fetches do.
func TestProxyBatchStaleFallback(t *testing.T) {
	_, clock, d, p, _ := rig(t, func(c *Config) {
		c.MaxRetries = 0
		c.Timeout = 200 * time.Millisecond
	})
	sets := [][]uint32{{1, 2}, {3, 4}}
	warm, err := p.FetchBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	d.Close() // upstream gone

	clock.Advance(sampleInterval + simtime.Millisecond)
	stale, err := p.FetchBatch(sets)
	if err != nil {
		t.Fatalf("stale batch serve failed: %v", err)
	}
	if !reflect.DeepEqual(stale, warm) {
		t.Fatalf("stale batch re-stamped or changed:\nwarm:  %+v\nstale: %+v", warm, stale)
	}
	if st := p.Stats(); st.StaleServes != int64(len(sets)) {
		t.Errorf("StaleServes = %d, want %d (one per degraded set)", st.StaleServes, len(sets))
	}

	// A set with no cached answer fails the whole batch: there is
	// nothing safe to return for it.
	if _, err := p.FetchBatch([][]uint32{{1, 2}, {7, 8}}); err == nil {
		t.Error("batch containing an uncached set succeeded with upstream down")
	}
}

// TestLookupAffineMemo pins the connection-affinity memo's contract:
// repeated lookups of the same key through one connection's local map
// return the identical entry without re-probing the shard, and the memo
// is bounded at maxShardEntries.
func TestLookupAffineMemo(t *testing.T) {
	_, _, _, p, _ := rig(t, nil)
	if _, err := p.Fetch([]uint32{1, 2}); err != nil { // create the shard entry
		t.Fatal(err)
	}
	key := string(pcp.AppendFetchReq(nil, []uint32{1, 2}))

	local := make(map[string]*entry)
	e1 := p.lookupAffine([]byte(key), local)
	if e1 == nil {
		t.Fatal("lookupAffine missed an entry a fetch just created")
	}
	if _, ok := local[key]; !ok {
		t.Fatal("lookupAffine did not memoize into the connection-local map")
	}
	if e2 := p.lookupAffine([]byte(key), local); e2 != e1 {
		t.Fatal("affine lookup returned a different entry for the same key")
	}

	// The memo is bounded: once full, new keys resolve but are not stored.
	full := make(map[string]*entry)
	for i := 0; i < maxShardEntries; i++ {
		full[string(pcp.AppendFetchReq(nil, []uint32{uint32(i + 100)}))] = e1
	}
	if _, err := p.Fetch([]uint32{3}); err != nil {
		t.Fatal(err)
	}
	overKey := pcp.AppendFetchReq(nil, []uint32{3})
	if e := p.lookupAffine(overKey, full); e == nil {
		t.Fatal("bounded memo must still resolve via the shard")
	}
	if _, stored := full[string(overKey)]; stored {
		t.Fatalf("memo grew past maxShardEntries (%d)", maxShardEntries)
	}
}
