package metricql

import (
	"math"
	"strings"
	"testing"

	"papimc/internal/pcp"
)

// fakeSource is a scriptable metric source: the test moves vals/ts
// between fetches and the engine sees a daemon-like sample stream.
type fakeSource struct {
	names   []pcp.NameEntry
	vals    map[uint32]uint64
	ts      int64
	fetches int
	fail    map[uint32]int32 // pmid -> non-OK status to return
}

func (f *fakeSource) Names() ([]pcp.NameEntry, error) { return f.names, nil }

func (f *fakeSource) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	f.fetches++
	res := pcp.FetchResult{Timestamp: f.ts}
	for _, id := range pmids {
		if st, bad := f.fail[id]; bad {
			res.Values = append(res.Values, pcp.FetchValue{PMID: id, Status: st})
			continue
		}
		v, ok := f.vals[id]
		st := pcp.StatusOK
		if !ok {
			st = pcp.StatusNoSuchPMID
		}
		res.Values = append(res.Values, pcp.FetchValue{PMID: id, Status: st, Value: v})
	}
	return res, nil
}

func newFake() *fakeSource {
	return &fakeSource{
		names: []pcp.NameEntry{
			{PMID: 1, Name: "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87"},
			{PMID: 2, Name: "perfevent.hwcounters.nest_mba1_imc.PM_MBA1_READ_BYTES.value.cpu87"},
			{PMID: 3, Name: "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value.cpu87"},
			{PMID: 4, Name: "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu175"},
			{PMID: 5, Name: "kernel.load"},
		},
		vals: map[uint32]uint64{1: 0, 2: 0, 3: 0, 4: 0, 5: 10},
		ts:   0,
	}
}

func newEngineFake() (*Engine, *fakeSource) {
	f := newFake()
	e := NewEngine(f)
	e.AliasAll(NestAliases(f.names))
	return e, f
}

func TestParseCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a + b * c", "(a + (b * c))"},
		{"(a+b)*c", "((a + b) * c)"},
		{"a * b", "(a * b)"},
		{"a*b", "a*b"}, // unspaced '*' between name chars is a glob
		{"2*3", "(2 * 3)"},
		{"-x", "(-x)"},
		{"-3", "-3"},
		{"1.5e3", "1500"},
		{"sum(nest.mba*.read_bytes)", "sum(nest.mba*.read_bytes)"},
		{"rate(nest.mba[0-7].read_bytes)", "rate(nest.mba[0-7].read_bytes)"},
		{"avg_over(kernel.load, 500ms)", "avg_over(kernel.load, 500000000ns)"},
		{"max_over(x, 1.5s)", "max_over(x, 1500000000ns)"},
		{"rate(a)*3", "(rate(a) * 3)"},
		{"a - -b", "(a - (-b))"},
	}
	for _, c := range cases {
		ex, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := ex.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms must reparse to themselves.
		ex2, err := Parse(c.want)
		if err != nil {
			t.Errorf("reparse %q: %v", c.want, err)
			continue
		}
		if ex2.String() != c.want {
			t.Errorf("canonical %q not a fixed point: reparses to %q", c.want, ex2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"a +",
		"(a",
		"a)",
		"foo(a)",          // unknown function
		"rate(a + b)",     // rate needs a plain metric
		"rate(3)",         // ditto
		"sum(a, b)",       // sum takes one argument
		"avg_over(a)",     // missing window
		"avg_over(a, b)",  // window must be a duration
		"avg_over(a, 5)",  // plain number is not a duration
		"avg_over(a, 0s)", // window must be positive
		"500ms",           // bare duration
		"3x",              // bad unit
		"a $ b",
		"a[0-",
		strings.Repeat("(", 300) + "a" + strings.Repeat(")", 300), // too deep
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
	if _, err := Parse(strings.Repeat("a", maxExprBytes+1)); err == nil {
		t.Error("over-long expression accepted")
	}
}

func TestParseInstant(t *testing.T) {
	for in, want := range map[string]bool{
		"a + b":                 false,
		"sum(nest.mba*.x)":      false,
		"rate(a)":               true,
		"sum(rate(a))":          true,
		"delta(a) + 3":          true,
		"avg_over(a, 1s)":       true,
		"max_over(rate(a), 1s)": true,
		"(a / b) * 100":         false,
	} {
		ex, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := ex.Instant(); got != want {
			t.Errorf("Instant(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestNestAliases(t *testing.T) {
	f := newFake()
	a := NestAliases(f.names)
	for alias, raw := range map[string]string{
		"nest.mba0.read_bytes":        "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87",
		"nest.mba0.read_bytes.cpu87":  "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87",
		"nest.mba0.read_bytes.cpu175": "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu175",
		"nest.mba0.write_bytes":       "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value.cpu87",
		"nest.mba1.read_bytes":        "perfevent.hwcounters.nest_mba1_imc.PM_MBA1_READ_BYTES.value.cpu87",
	} {
		if a[alias] != raw {
			t.Errorf("alias %q = %q, want %q", alias, a[alias], raw)
		}
	}
}

func TestGlobExpansion(t *testing.T) {
	e, _ := newEngineFake()
	q, err := e.Query("sum(nest.mba*.read_bytes)")
	if err != nil {
		t.Fatal(err)
	}
	// The bare glob matches the socket-0 aliases only (mba0, mba1), not
	// the .cpu175 qualified instance of mba0.
	ids := make(map[uint32]bool)
	q.pmids(ids)
	if len(ids) != 2 || !ids[1] || !ids[2] {
		t.Fatalf("pattern expanded to pmids %v, want {1, 2}", ids)
	}
	// Qualified glob reaches the other socket.
	q2, err := e.Query("sum(nest.mba*.read_bytes.cpu175)")
	if err != nil {
		t.Fatal(err)
	}
	ids2 := make(map[uint32]bool)
	q2.pmids(ids2)
	if len(ids2) != 1 || !ids2[4] {
		t.Fatalf("qualified pattern expanded to %v, want {4}", ids2)
	}
	// No match is a bind error, not an empty vector.
	if _, err := e.Query("sum(nest.mba*.bogus)"); err == nil {
		t.Error("pattern with no matches bound successfully")
	}
	if _, err := e.Query("nest.mba9.read_bytes"); err == nil {
		t.Error("unknown exact metric bound successfully")
	}
}

func TestRateAndDelta(t *testing.T) {
	e, f := newEngineFake()
	q, err := e.Query("rate(nest.mba0.read_bytes)")
	if err != nil {
		t.Fatal(err)
	}
	qd, err := e.Query("delta(nest.mba0.read_bytes)")
	if err != nil {
		t.Fatal(err)
	}

	f.vals[1], f.ts = 1000, 0
	vs, err := e.EvalAll(q, qd)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := vs[0].Scalar(); v != 0 {
		t.Errorf("rate after one sample = %v, want 0", v)
	}

	f.vals[1], f.ts = 6000, 10_000_000 // +5000 bytes over 10ms
	vs, err = e.EvalAll(q, qd)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := vs[0].Scalar(); v != 5000/0.01 {
		t.Errorf("rate = %v, want %v", v, 5000/0.01)
	}
	if v, _ := vs[1].Scalar(); v != 5000 {
		t.Errorf("delta = %v, want 5000", v)
	}
}

// TestRateCounterWrap is the regression test for the satellite bugfix:
// a uint64 counter wrapping between samples must yield the true small
// positive rate, not a huge negative one.
func TestRateCounterWrap(t *testing.T) {
	e, f := newEngineFake()
	q, err := e.Query("rate(nest.mba0.read_bytes)")
	if err != nil {
		t.Fatal(err)
	}
	f.vals[1], f.ts = math.MaxUint64-999, 0
	if _, err := e.EvalAll(q); err != nil {
		t.Fatal(err)
	}
	f.vals[1], f.ts = 1000-1+1, 1_000_000_000 // wrapped: true delta 2000
	vs, err := e.EvalAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := vs[0].Scalar(); v != 2000 {
		t.Errorf("rate across wrap = %v, want 2000", v)
	}
	// The shared helper itself.
	if d := pcp.CounterDelta(math.MaxUint64-999, 1000); d != 2000 {
		t.Errorf("CounterDelta across wrap = %d, want 2000", d)
	}
	if d := pcp.CounterDelta(100, 350); d != 250 {
		t.Errorf("CounterDelta = %d, want 250", d)
	}
}

func TestMemoizationSharedSubtrees(t *testing.T) {
	e, f := newEngineFake()
	// Both queries contain sum(rate(nest.mba*.read_bytes)); total also
	// adds the write side.
	read, err := e.Query("sum(rate(nest.mba*.read_bytes))")
	if err != nil {
		t.Fatal(err)
	}
	total, err := e.Query("sum(rate(nest.mba*.read_bytes)) + sum(rate(nest.mba*.write_bytes))")
	if err != nil {
		t.Fatal(err)
	}

	f.vals[1], f.vals[2], f.vals[3] = 100, 200, 50
	f.ts = 0
	if _, err := e.EvalAll(read, total); err != nil {
		t.Fatal(err)
	}
	if f.fetches != 1 {
		t.Fatalf("EvalAll of two queries cost %d fetches, want 1", f.fetches)
	}

	f.vals[1], f.vals[2], f.vals[3] = 1100, 1200, 550
	f.ts = 1_000_000_000
	vs, err := e.EvalAll(read, total)
	if err != nil {
		t.Fatal(err)
	}
	if f.fetches != 2 {
		t.Fatalf("second EvalAll cost %d cumulative fetches, want 2", f.fetches)
	}
	if v, _ := vs[0].Scalar(); v != 2000 {
		t.Errorf("read bw = %v, want 2000", v)
	}
	if v, _ := vs[1].Scalar(); v != 2500 {
		t.Errorf("total bw = %v, want 2500", v)
	}

	// Re-evaluating within the same daemon interval (unchanged fetch
	// timestamp) must not advance counter state: the rate stands.
	f.vals[1] = 9999 // daemon hasn't resampled, so this is invisible
	vs, err = e.EvalAll(read)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := vs[0].Scalar(); v != 2000 {
		t.Errorf("same-interval re-eval changed rate to %v, want 2000", v)
	}
}

func TestWindowedFunctions(t *testing.T) {
	e, f := newEngineFake()
	avg, err := e.Query("avg_over(rate(nest.mba0.read_bytes), 2s)")
	if err != nil {
		t.Fatal(err)
	}
	max, err := e.Query("max_over(rate(nest.mba0.read_bytes), 2s)")
	if err != nil {
		t.Fatal(err)
	}
	// Counter values per 1s step; rates: 0 (first sample), 1000, 3000,
	// 500, 500. The 2s window holds the last two rates.
	steps := []uint64{0, 1000, 4000, 4500, 5000}
	wantAvg := []float64{0, 500, 2000, 1750, 500}
	wantMax := []float64{0, 1000, 3000, 3000, 500}
	for i, v := range steps {
		f.vals[1] = v
		f.ts = int64(i) * 1_000_000_000
		vs, err := e.EvalAll(avg, max)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := vs[0].Scalar(); v != wantAvg[i] {
			t.Errorf("step %d: avg_over = %v, want %v", i, v, wantAvg[i])
		}
		if v, _ := vs[1].Scalar(); v != wantMax[i] {
			t.Errorf("step %d: max_over = %v, want %v", i, v, wantMax[i])
		}
	}
}

func TestArithmeticBroadcast(t *testing.T) {
	e, f := newEngineFake()
	f.vals[1], f.vals[2] = 100, 300
	q, err := e.Query("nest.mba*.read_bytes / 4 + 1")
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Vals) != 2 || v.Vals[0] != 26 || v.Vals[1] != 76 {
		t.Errorf("broadcast result = %+v, want [26 76]", v)
	}
	if len(v.Names) != 2 {
		t.Errorf("vector lost names: %+v", v.Names)
	}
	// Vector/vector of equal width works elementwise.
	q2, err := e.Query("nest.mba*.read_bytes - nest.mba*.read_bytes")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := q2.Eval()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range v2.Vals {
		if x != 0 {
			t.Errorf("self-difference = %+v, want zeros", v2.Vals)
		}
	}
	// Width mismatch is a bind error.
	if _, err := e.Query("nest.mba*.read_bytes + nest.mba0.write_bytes.cpu*"); err != nil {
		// mba* read is width 2, write cpu* is width 1... width-1
		// vectors broadcast only if scalar; both are named vectors, so
		// widths 2 vs 1 must fail.
		_ = err
	} else {
		t.Error("width mismatch bound successfully")
	}
	// Division by zero yields NaN, not a panic.
	q3, err := e.Query("kernel.load / (kernel.load - kernel.load)")
	if err != nil {
		t.Fatal(err)
	}
	v3, err := q3.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v3.Vals[0]) {
		t.Errorf("x/0 = %v, want NaN", v3.Vals[0])
	}
}

func TestAggregates(t *testing.T) {
	e, f := newEngineFake()
	f.vals[1], f.vals[2] = 10, 30
	for expr, want := range map[string]float64{
		"sum(nest.mba*.read_bytes)": 40,
		"avg(nest.mba*.read_bytes)": 20,
		"min(nest.mba*.read_bytes)": 10,
		"max(nest.mba*.read_bytes)": 30,
	} {
		q, err := e.Query(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		v, err := q.Eval()
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if got, _ := v.Scalar(); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestFetchErrors(t *testing.T) {
	e, f := newEngineFake()
	f.fail = map[uint32]int32{1: pcp.StatusValueError}
	q, err := e.Query("nest.mba0.read_bytes")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Eval(); err == nil {
		t.Error("failing metric evaluated successfully")
	}

	// Timestamps must not go backwards.
	f.fail = nil
	f.ts = 5_000_000_000
	if _, err := q.Eval(); err != nil {
		t.Fatal(err)
	}
	f.ts = 1_000_000_000
	if _, err := q.Eval(); err == nil {
		t.Error("backwards timestamp accepted")
	}
}

func TestScalar(t *testing.T) {
	if _, err := (Value{Names: []string{"a", "b"}, Vals: []float64{1, 2}}).Scalar(); err == nil {
		t.Error("Scalar() of width-2 vector succeeded")
	}
	if v, err := (Value{Names: []string{"a"}, Vals: []float64{7}}).Scalar(); err != nil || v != 7 {
		t.Errorf("Scalar() of width-1 vector = %v, %v", v, err)
	}
}
