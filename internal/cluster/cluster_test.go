package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"papimc/internal/metricql"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
	"papimc/internal/sweep"
)

const testInterval = 10 * simtime.Millisecond

func TestNodeMetricModel(t *testing.T) {
	// Channel counts vary with the seed but stay in the documented set.
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		ch := NodeChannels(sweep.Seed(1, i))
		if ch != 4 && ch != 6 && ch != 8 {
			t.Fatalf("NodeChannels out of range: %d", ch)
		}
		seen[ch] = true
	}
	if len(seen) < 2 {
		t.Error("64 seeds produced a homogeneous cluster; arch variation is broken")
	}

	names := MetricNames(7)
	if !sort.StringsAreSorted(names) {
		t.Errorf("MetricNames not sorted: %v", names)
	}
	if len(names) != 4+NodeChannels(7) {
		t.Errorf("MetricNames has %d entries, want %d", len(names), 4+NodeChannels(7))
	}

	// A node daemon's served values certify against MetricValue.
	clock := simtime.NewClock()
	n, err := NewNode("node000", 7, clock, testInterval)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Daemon.Close()
	clock.Advance(testInterval + 1)
	res, err := n.Source().Fetch([]uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v.Status != pcp.StatusOK || v.Value != MetricValue(7, v.PMID, res.Timestamp) {
			t.Errorf("node value does not certify: %+v", v)
		}
	}
}

func TestNodeGate(t *testing.T) {
	clock := simtime.NewClock()
	n, err := NewNode("node000", 3, clock, testInterval)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Daemon.Close()
	src := n.Source()
	if _, err := src.Fetch([]uint32{1}); err != nil {
		t.Fatalf("healthy fetch: %v", err)
	}
	n.Kill()
	if _, err := src.Fetch([]uint32{1}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("killed node fetch: %v", err)
	}
	if !n.Down() {
		t.Error("Down() false after Kill")
	}
	n.Restore()
	if _, err := src.Fetch([]uint32{1}); err != nil {
		t.Fatalf("restored fetch: %v", err)
	}
	n.Stall(time.Millisecond)
	start := time.Now()
	if _, err := src.Fetch([]uint32{1}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("stalled node fetch: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("stalled fetch returned before the stall elapsed")
	}
}

func TestFederatorNamespaceAndFetch(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 4, FanOut: 2, Seed: 42, Interval: testInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Depth() != 2 { // 2 leaves + root
		t.Errorf("Depth() = %d, want 2", tr.Depth())
	}

	names, err := tr.Root.Names()
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 0
	for _, n := range tr.Nodes {
		wantLen += len(MetricNames(n.Seed))
	}
	if len(names) != wantLen {
		t.Fatalf("root namespace has %d entries, want %d", len(names), wantLen)
	}
	for i, en := range names {
		if en.PMID != uint32(i+1) {
			t.Fatalf("root PMIDs not dense: entry %d is %+v", i, en)
		}
		if !strings.Contains(en.Name, ":") {
			t.Fatalf("unqualified root metric %q", en.Name)
		}
		if i > 0 && names[i-1].Name >= en.Name {
			t.Fatalf("root namespace not sorted at %d: %q >= %q", i, names[i-1].Name, en.Name)
		}
	}

	// A scatter-gather fetch of a scattered subset answers in request
	// order with certified values.
	tr.Clock.Advance(testInterval + 1)
	ids := []uint32{uint32(len(names)), 1, uint32(len(names) / 2)}
	res, err := tr.Root.Fetch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != len(ids) {
		t.Fatalf("got %d values for %d pmids", len(res.Values), len(ids))
	}
	for i, v := range res.Values {
		if v.PMID != ids[i] {
			t.Errorf("value %d has PMID %d, want %d (request order broken)", i, v.PMID, ids[i])
		}
	}
	if err := tr.Certify(res, int64(tr.Clock.Now())); err != nil {
		t.Error(err)
	}

	// Unknown PMIDs answer StatusNoSuchPMID without failing the query.
	res, err = tr.Root.Fetch([]uint32{1, 9999})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[1].Status != pcp.StatusNoSuchPMID {
		t.Errorf("unknown pmid status = %d", res.Values[1].Status)
	}
}

func TestPartialResultNamesExactlyTheMissing(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 16, FanOut: 4, Seed: 9, Interval: testInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	victims := []string{"node003", "node007", "node012"}
	for _, v := range victims {
		tr.Node(v).Kill()
	}
	res, err := tr.Snapshot()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *pcp.PartialError, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, victims) {
		t.Errorf("missing = %v, want %v", pe.Missing, victims)
	}

	// Every value owned by a victim is StatusNodeDown; every other value
	// is present (Certify already proved the survivors' values).
	downNodes := make(map[string]bool)
	for _, v := range victims {
		downNodes[v] = true
	}
	names, _ := tr.Root.Names()
	for i, v := range res.Values {
		node, _, _ := strings.Cut(names[i].Name, ":")
		if downNodes[node] != (v.Status == pcp.StatusNodeDown) {
			t.Errorf("%s: status %d does not match down-set", names[i].Name, v.Status)
		}
	}

	// Recovery: the next snapshot is whole again.
	for _, v := range victims {
		tr.Node(v).Restore()
	}
	if _, err := tr.Snapshot(); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
}

func TestWholeSubtreeDown(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 8, FanOut: 2, Seed: 5, Interval: testInterval, Policy: pmproxy.EdgePolicy{Retries: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Kill both nodes of one leaf federator: the leaf fails outright,
	// its parent converts the dead edge into the pair of missing nodes.
	tr.Node("node000").Kill()
	tr.Node("node001").Kill()
	_, err = tr.Snapshot()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected partial error, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, []string{"node000", "node001"}) {
		t.Errorf("missing = %v", pe.Missing)
	}
}

func TestStalledZoneMissesDeadline(t *testing.T) {
	tr, err := Assemble(Config{
		Nodes: 8, FanOut: 2, Seed: 11, Interval: testInterval,
		Policy: pmproxy.EdgePolicy{Deadline: 25 * time.Millisecond, HedgeAfter: 5 * time.Millisecond, Retries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.Node("node005").Stall(500 * time.Millisecond)
	_, err = tr.Snapshot()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected partial error, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, []string{"node005"}) {
		t.Errorf("missing = %v, want [node005]", pe.Missing)
	}
	// The stalled edge burned its deadline on every round.
	var stalledEdge pmproxy.UpstreamStats
	for _, es := range tr.EdgeStats() {
		if strings.HasSuffix(es.Edge, "->node005") {
			stalledEdge = es.Stats
		}
	}
	if stalledEdge.DeadlineMisses == 0 || stalledEdge.Failures != 1 {
		t.Errorf("stalled edge stats: %+v", stalledEdge)
	}
}

func checkEdgeLaws(t *testing.T, tr *Tree) {
	t.Helper()
	for _, es := range tr.EdgeStats() {
		s := es.Stats
		if s.Fetches != s.Successes+s.Failures {
			t.Errorf("%s: Fetches=%d != Successes=%d + Failures=%d", es.Edge, s.Fetches, s.Successes, s.Failures)
		}
		if s.Errors != s.Retries+s.Failures {
			t.Errorf("%s: Errors=%d != Retries=%d + Failures=%d", es.Edge, s.Errors, s.Retries, s.Failures)
		}
		if s.HedgesWon > s.Hedges {
			t.Errorf("%s: HedgesWon=%d > Hedges=%d", es.Edge, s.HedgesWon, s.Hedges)
		}
		if s.DeadlineMisses > s.Errors {
			t.Errorf("%s: DeadlineMisses=%d > Errors=%d", es.Edge, s.DeadlineMisses, s.Errors)
		}
	}
}

// TestAcceptance64Nodes is the issue's acceptance scenario: a 3-level
// tree over 64 nodes, 3 nodes down, one scatter-gather query answering
// with exactly the missing nodes named, deterministically reproducible,
// plus a consistent snapshot at one virtual timestamp.
func TestAcceptance64Nodes(t *testing.T) {
	run := func() (missing []string, groups metricql.Value, ts int64) {
		tr, err := Assemble(Config{Nodes: 64, FanOut: 4, Seed: 0xC10C, Interval: testInterval,
			Policy: pmproxy.EdgePolicy{Retries: 1}})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if tr.Depth() != 3 {
			t.Fatalf("64-node FanOut-4 tree has depth %d, want 3", tr.Depth())
		}

		for _, v := range []string{"node013", "node037", "node061"} {
			tr.Node(v).Kill()
		}

		// Consistent snapshot first: every surviving value certifies at
		// one virtual timestamp.
		res, err := tr.Snapshot()
		var pe *pcp.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("snapshot: %v", err)
		}
		ts = res.Timestamp

		// The federated query: sum(mem.read_bw) by (node) over the root.
		eng := metricql.NewEngine(tr.Root)
		q, err := eng.Query("sum(mem.read_bw) by (node)")
		if err != nil {
			t.Fatal(err)
		}
		v, err := q.Eval()
		if !errors.As(err, &pe) {
			t.Fatalf("query did not surface the partial error: %v", err)
		}
		checkEdgeLaws(t, tr)
		return pe.Missing, v, ts
	}

	missing, v, ts := run()
	if !reflect.DeepEqual(missing, []string{"node013", "node037", "node061"}) {
		t.Fatalf("missing = %v", missing)
	}
	if len(v.Names) != 61 {
		t.Fatalf("grouped answer has %d nodes, want 61", len(v.Names))
	}
	for i, name := range v.Names {
		if name == "node013" || name == "node037" || name == "node061" {
			t.Errorf("down node %s present in the answer", name)
		}
		// One mem.read_bw per node: the group sum is that single
		// certified value.
		idx := 0
		fmt.Sscanf(name, "node%d", &idx)
		seed := sweep.Seed(0xC10C, idx)
		pmid := uint32(0)
		for j, mn := range MetricNames(seed) {
			if mn == "mem.read_bw" {
				pmid = uint32(j + 1)
			}
		}
		if want := float64(MetricValue(seed, pmid, ts)); v.Vals[i] != want {
			t.Errorf("%s: group value %v, want %v", name, v.Vals[i], want)
		}
	}

	// Byte-for-byte reproducible: a second identical cluster answers
	// identically.
	missing2, v2, ts2 := run()
	if !reflect.DeepEqual(missing2, missing) || !reflect.DeepEqual(v2, v) || ts2 != ts {
		t.Error("identical seed did not reproduce the identical answer")
	}
}

func TestNetModeTree(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 8, FanOut: 2, Seed: 77, Interval: testInterval, Net: true,
		Policy: pmproxy.EdgePolicy{Retries: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tr.Depth())
	}
	if _, err := tr.Snapshot(); err != nil {
		t.Fatalf("net-mode snapshot: %v", err)
	}

	// A killed node's absence travels the wire as PDUFetchPartialResp
	// through two federator hops.
	tr.Node("node004").Kill()
	_, err = tr.Snapshot()
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected partial error over TCP, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, []string{"node004"}) {
		t.Errorf("missing = %v", pe.Missing)
	}
}

func TestServedFederatorClientParity(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 4, FanOut: 2, Seed: 3, Interval: testInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	srv, addr, err := Serve(tr.Root, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tr.Clock.Advance(testInterval + 1)
	remote, err := c.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	local, err := tr.Root.FetchAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Errorf("served FetchAll differs from in-process: %+v vs %+v", remote, local)
	}
	rn, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	ln, _ := tr.Root.Names()
	if !reflect.DeepEqual(rn, ln) {
		t.Error("served Names differs from in-process")
	}
}

func BenchmarkRootFetchAll(b *testing.B) {
	for _, nodes := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			tr, err := Assemble(Config{Nodes: nodes, FanOut: 8, Seed: 1, Interval: testInterval})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			tr.Clock.Advance(testInterval + 1)
			if _, err := tr.Root.FetchAll(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Root.FetchAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
