// Package simtime provides the simulated clock used by the hardware models.
//
// All timing in the simulator is virtual: workloads advance a Clock by the
// duration their memory traffic and arithmetic would take on the modelled
// machine, and counters, noise generators and profilers read that clock.
// Nothing in the simulation depends on the wall clock, which keeps whole
// experiments deterministic and allows "50 runs of a 16-node job" to finish
// in milliseconds.
package simtime

import (
	"fmt"
	"sync/atomic"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// String renders the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// FromSeconds converts seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// Clock is a monotonically advancing simulated clock, safe for concurrent
// use. The zero value is a clock at time 0.
//
// The clock is lock-free: Now is a single atomic load, so hot read paths
// (the PMCD daemon consults the clock on every fetch) never contend with
// each other or with writers advancing simulated time.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock starting at time 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time {
	return Time(c.now.Load())
}

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored (the clock is monotonic).
func (c *Clock) Advance(d Duration) Time {
	if d <= 0 {
		return Time(c.now.Load())
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock to t if t is in the future; it never moves the
// clock backwards. It returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}
