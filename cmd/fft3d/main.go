// Command fft3d drives the distributed 3D-FFT mini-app of Section IV:
// it verifies the numerics of the distributed pipeline, reproduces the
// re-sort traffic figures (6–9), the large-job comparison (Fig. 10), and
// the multi-component profile (Fig. 11).
//
// Usage:
//
//	fft3d -verify [-n 16] [-r 2] [-c 4]
//	fft3d -fig 6a|6b|7a|7b|8|9a|9b|10 [-quick]
//	fft3d -profile [-quick]
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"papimc/internal/fft"
	"papimc/internal/figures"
	"papimc/internal/mpi"
	"papimc/internal/xrand"
)

func main() {
	verify := flag.Bool("verify", false, "run the distributed FFT and check it against the local transform")
	n := flag.Int("n", 16, "problem size N (with -verify)")
	r := flag.Int("r", 2, "process grid rows (with -verify)")
	c := flag.Int("c", 4, "process grid columns (with -verify)")
	fig := flag.String("fig", "", "figure to reproduce: 6a 6b 7a 7b 8 9a 9b 10")
	prof := flag.Bool("profile", false, "produce the Fig. 11 multi-component profile")
	quick := flag.Bool("quick", false, "shrink sweeps")
	seed := flag.Uint64("seed", 0, "noise seed")
	flag.Parse()

	switch {
	case *verify:
		if err := runVerify(*n, *r, *c); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *fig != "":
		emit("fig"+*fig, figures.Options{Quick: *quick, Seed: *seed})
	case *prof:
		emit("fig11", figures.Options{Quick: *quick, Seed: *seed})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(id string, opts figures.Options) {
	g, err := figures.ByID(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := g.Gen(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\n\n", res.Title)
	res.Table.Write(os.Stdout)
	if res.Chart != nil {
		fmt.Println()
		res.Chart.Write(os.Stdout)
	}
}

func runVerify(n, r, c int) error {
	g := fft.Grid{N: n, R: r, C: c}
	if err := g.Validate(); err != nil {
		return err
	}
	rng := xrand.New(1)
	global := make([]complex128, n*n*n)
	for i := range global {
		global[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	want := append([]complex128(nil), global...)
	fft.FFT3D(want, n)

	comm := mpi.New(g.Ranks(), nil, nil, nil)
	results := make([][]complex128, g.Ranks())
	comm.Run(func(rk *mpi.Rank) {
		i, j := g.RankCoords(rk.ID())
		results[rk.ID()] = fft.Distributed3D(g, rk, fft.LocalSlab(g, global, i, j))
	})
	worst := 0.0
	for id, out := range results {
		i, j := g.RankCoords(id)
		for off, v := range out {
			x, y, z := fft.OutputIndex(g, i, j, off)
			if d := cmplx.Abs(v - want[(x*n+y)*n+z]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("distributed 3D-FFT, N=%d on a %dx%d grid (%d ranks): max |err| vs local transform = %.3g\n",
		n, r, c, g.Ranks(), worst)
	if worst > 1e-8 {
		return fmt.Errorf("verification FAILED (max error %g)", worst)
	}
	fmt.Println("verification PASSED")
	return nil
}
