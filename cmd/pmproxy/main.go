// Command pmproxy runs the proxy daemon: it listens for PCP clients and
// multiplexes them onto one upstream PMCD connection, coalescing
// identical fetches that land within one daemon sampling interval into a
// single upstream round trip and serving stale-but-timestamped answers
// while the upstream is unreachable.
//
// Usage:
//
//	pmproxy -addr 127.0.0.1:44322 -upstream 127.0.0.1:44321 [-interval 10ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:44322", "listen address")
	upstream := flag.String("upstream", "127.0.0.1:44321", "PMCD daemon address")
	interval := flag.Duration("interval", 10*time.Millisecond, "coalescing window (the daemon's sampling interval)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-upstream-round-trip deadline")
	retries := flag.Int("retries", 2, "upstream retry attempts")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff")
	flag.Parse()

	p := pmproxy.New(pmproxy.Config{
		Upstream:   *upstream,
		Interval:   simtime.Duration(interval.Nanoseconds()),
		Timeout:    *timeout,
		MaxRetries: *retries,
		Backoff:    *backoff,
	})
	bound, err := p.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmproxy:", err)
		os.Exit(1)
	}
	fmt.Printf("pmproxy: serving on %s, upstream %s, coalescing window %v\n", bound, *upstream, *interval)
	fmt.Println("pmproxy: connect with pcp.Dial or the papi pcp component; Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	p.Close()
	st := p.Stats()
	fmt.Printf("\npmproxy: %d client fetches, %d upstream fetches (%.1fx coalescing), %d coalesced hits, %d stale serves, %d upstream errors\n",
		st.ClientFetches, st.UpstreamFetches, st.CoalescingRatio(), st.CoalescedHits, st.StaleServes, st.UpstreamErrors)
}
