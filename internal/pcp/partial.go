package pcp

import (
	"fmt"
	"strings"
)

// PartialError reports a fetch that was answered from an incomplete set
// of cluster nodes: the values that could be gathered are valid (and
// returned alongside this error), but the named nodes contributed
// nothing. Per-value, the missing nodes' entries carry StatusNodeDown.
//
// It is the typed degradation contract of the federated tier: a
// scatter-gather over a thousand nodes with three of them down returns
// an answer plus a *PartialError naming exactly those three, never a
// bare failure. Callers detect it with errors.As and decide whether a
// partial answer is acceptable.
type PartialError struct {
	// Missing lists the node IDs that contributed no data, sorted.
	Missing []string
	// Cause is a representative underlying failure, for diagnostics.
	Cause string
}

func (e *PartialError) Error() string {
	msg := fmt.Sprintf("pcp: partial result: %d node(s) missing: %s",
		len(e.Missing), strings.Join(e.Missing, ","))
	if e.Cause != "" {
		msg += " (" + e.Cause + ")"
	}
	return msg
}

// MaxPartialMissing bounds the missing-node list in a partial-result
// PDU, like the other implausibility guards in the decoders.
const MaxPartialMissing = MaxPDUBytes / 8

// AppendPartialResp appends an encoded partial fetch response to dst:
// the missing-node list and cause, followed by the ordinary fetch
// response body. It is the wire form of a FetchResult paired with a
// *PartialError.
func AppendPartialResp(dst []byte, res FetchResult, missing []string, cause string) []byte {
	e := encoder{buf: dst}
	e.u32(uint32(len(missing)))
	for _, m := range missing {
		e.str(m)
	}
	e.str(cause)
	e.buf = AppendFetchResp(e.buf, res)
	return e.buf
}

// EncodePartialResp encodes a partial fetch response into a fresh buffer.
func EncodePartialResp(res FetchResult, missing []string, cause string) []byte {
	return AppendPartialResp(nil, res, missing, cause)
}

// DecodePartialResp decodes a partial fetch response into res (reusing
// res.Values' backing array) and returns the reconstructed
// *PartialError. res is left zeroed on a decode error.
func DecodePartialResp(b []byte, res *FetchResult) (*PartialError, error) {
	d := decoder{buf: b}
	n := d.u32()
	if n > MaxPartialMissing {
		*res = FetchResult{}
		return nil, fmt.Errorf("%w: implausible missing-node count %d", ErrProtocol, n)
	}
	pe := &PartialError{Missing: make([]string, 0, n)}
	for i := uint32(0); i < n; i++ {
		pe.Missing = append(pe.Missing, d.str())
	}
	pe.Cause = d.str()
	if d.err != nil {
		*res = FetchResult{}
		return nil, d.err
	}
	if err := DecodeFetchRespInto(d.buf, res); err != nil {
		return nil, err
	}
	return pe, nil
}
