// Command papitool is the papi_avail / papi_command_line analogue for
// the simulated testbed: it lists every event of every component, or
// reads a set of events around a synthetic workload.
//
// Usage:
//
//	papitool -machine summit -avail
//	papitool -machine tellico -read ev1,ev2 [-mb 64]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"papimc/internal/arch"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/report"
	"papimc/internal/simtime"
)

func main() {
	machine := flag.String("machine", "summit", "summit | tellico")
	avail := flag.Bool("avail", false, "list every available event")
	read := flag.String("read", "", "comma-separated events to measure")
	mb := flag.Int64("mb", 64, "synthetic workload size in MiB (with -read)")
	flag.Parse()

	var m arch.Machine
	switch strings.ToLower(*machine) {
	case "summit":
		m = arch.Summit()
	case "tellico":
		m = arch.Tellico()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}
	tb, err := node.NewTestbed(m, 1, node.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *avail:
		events, err := lib.AllEvents()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := &report.Table{Headers: []string{"Event", "Units", "Instant", "Description"}}
		for _, e := range events {
			t.AddRow(e.Name, e.Units, e.Instant, e.Description)
		}
		fmt.Printf("%d events available on %s:\n\n", len(events), m.Name)
		t.Write(os.Stdout)
	case *read != "":
		es := lib.NewEventSet()
		names := strings.Split(*read, ",")
		for _, n := range names {
			if err := es.Add(strings.TrimSpace(n)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := es.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := model.Traffic{
			ReadBytes:  *mb << 20,
			WriteBytes: *mb << 19,
			Duration:   100 * simtime.Millisecond,
		}
		tb.Nodes[0].Play(0, tr, 16)
		tb.Clock.Advance(100 * simtime.Millisecond)
		vals, err := es.Stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := &report.Table{Headers: []string{"Event", "Value"}}
		for i, n := range es.EventNames() {
			t.AddRow(n, vals[i])
		}
		fmt.Printf("after a synthetic %d MiB-read / %d MiB-write workload:\n\n", *mb, *mb/2)
		t.Write(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
