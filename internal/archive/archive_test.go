package archive

import (
	"bytes"
	"errors"
	"testing"

	"papimc/internal/pcp"
)

func schema(n int) []pcp.NameEntry {
	out := make([]pcp.NameEntry, n)
	for i := range out {
		out[i] = pcp.NameEntry{PMID: uint32(i + 1), Name: string(rune('a' + i))}
	}
	return out
}

func row(ts int64, vals ...uint64) pcp.FetchResult {
	res := pcp.FetchResult{Timestamp: ts}
	for i, v := range vals {
		res.Values = append(res.Values, pcp.FetchValue{PMID: uint32(i + 1), Status: pcp.StatusOK, Value: v})
	}
	return res
}

func TestAppendAndScan(t *testing.T) {
	a, err := New(schema(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]uint64{{0, 10, 20}, {5, 11, 20}, {9, 400, 25}, {12, 400, 25}}
	for _, w := range want {
		if err := a.Append(row(int64(w[0]), w[1], w[2])); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := a.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r.Timestamp != int64(want[i][0]) || r.Values[0] != want[i][1] || r.Values[1] != want[i][2] {
			t.Errorf("row %d = %+v, want %v", i, r, want[i])
		}
	}
	mid, err := a.Samples(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 2 || mid[0].Timestamp != 5 || mid[1].Timestamp != 9 {
		t.Errorf("range scan = %+v", mid)
	}
}

func TestAppendDedupAndOrder(t *testing.T) {
	a, _ := New(schema(1), Options{})
	if err := a.Append(row(10, 1)); err != nil {
		t.Fatal(err)
	}
	// Same daemon sample again: silently deduplicated.
	if err := a.Append(row(10, 1)); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Errorf("len after dup = %d, want 1", a.Len())
	}
	if err := a.Append(row(5, 2)); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order err = %v", err)
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	a, _ := New(schema(2), Options{})
	// Missing a schema PMID.
	res := pcp.FetchResult{Timestamp: 1, Values: []pcp.FetchValue{{PMID: 1, Status: pcp.StatusOK, Value: 3}}}
	if err := a.Append(res); !errors.Is(err, ErrSchema) {
		t.Errorf("missing pmid err = %v", err)
	}
	// A schema PMID with an error status.
	res = row(1, 3, 4)
	res.Values[1].Status = pcp.StatusValueError
	if err := a.Append(res); !errors.Is(err, ErrSchema) {
		t.Errorf("bad status err = %v", err)
	}
}

func TestRingRetentionEvictsOldest(t *testing.T) {
	a, _ := New(schema(1), Options{MaxBytes: 256, BlockSamples: 8})
	for i := 0; i < 1000; i++ {
		if err := a.Append(row(int64(i*10), uint64(i*64))); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Appended != 1000 {
		t.Errorf("appended = %d", st.Appended)
	}
	if st.Evicted == 0 || st.Samples+st.Evicted != 1000 {
		t.Errorf("evicted = %d, retained = %d", st.Evicted, st.Samples)
	}
	if st.EncodedBytes > 256+64 { // one block of slack while appending
		t.Errorf("encoded bytes %d exceed budget", st.EncodedBytes)
	}
	// The newest samples survive.
	first, last, ok := a.Span()
	if !ok || last != 999*10 || first == 0 {
		t.Errorf("span = [%d, %d], ok=%v", first, last, ok)
	}
	rows, err := a.All()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Timestamp <= rows[i-1].Timestamp {
			t.Fatalf("retained rows not monotonic at %d", i)
		}
	}
	// Decoding across eviction boundaries is exact: values are ts/10*64.
	for _, r := range rows {
		if r.Values[0] != uint64(r.Timestamp/10)*64 {
			t.Errorf("row ts=%d value=%d, want %d", r.Timestamp, r.Values[0], uint64(r.Timestamp/10)*64)
		}
	}
}

func TestDeltaEncodingCompresses(t *testing.T) {
	a, _ := New(schema(8), Options{})
	vals := make([]uint64, 8)
	for i := 0; i < 500; i++ {
		res := pcp.FetchResult{Timestamp: int64(i) * 10_000_000}
		for c := range vals {
			vals[c] += uint64(64 * (c + 1))
			res.Values = append(res.Values, pcp.FetchValue{PMID: uint32(c + 1), Status: pcp.StatusOK, Value: vals[c]})
		}
		if err := a.Append(res); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.EncodedBytes*3 > st.RawBytes {
		t.Errorf("delta encoding gained <3x: %d encoded vs %d raw", st.EncodedBytes, st.RawBytes)
	}
}

func TestFloorNearestValueAtRate(t *testing.T) {
	a, _ := New(schema(1), Options{})
	for _, r := range [][2]uint64{{100, 1000}, {200, 3000}, {300, 5000}} {
		if err := a.Append(row(int64(r[0]), r[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := a.Floor(99); ok {
		t.Error("Floor before first sample should miss")
	}
	if s, ok := a.Floor(250); !ok || s.Timestamp != 200 {
		t.Errorf("Floor(250) = %+v, %v", s, ok)
	}
	if s, ok := a.Floor(300); !ok || s.Timestamp != 300 {
		t.Errorf("Floor(300) = %+v, %v", s, ok)
	}
	if s, ok := a.Nearest(260); !ok || s.Timestamp != 300 {
		t.Errorf("Nearest(260) = %+v, %v", s, ok)
	}
	if s, ok := a.Nearest(0); !ok || s.Timestamp != 100 {
		t.Errorf("Nearest(0) = %+v, %v", s, ok)
	}
	v, err := a.ValueAt(1, 150)
	if err != nil || v != 2000 {
		t.Errorf("ValueAt(150) = %v, %v; want 2000", v, err)
	}
	if v, _ := a.ValueAt(1, 50); v != 1000 { // clamped
		t.Errorf("ValueAt before span = %v", v)
	}
	// 4000 counts over 200 ns = 4000 / 200e-9 s.
	rate, err := a.Rate(1, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := 4000.0 / (200.0 / 1e9)
	if rate < want*0.999 || rate > want*1.001 {
		t.Errorf("Rate = %g, want %g", rate, want)
	}
	if _, err := a.Rate(999, 100, 300); !errors.Is(err, ErrNoPMID) {
		t.Errorf("unknown pmid rate err = %v", err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	a, _ := New(schema(3), Options{BlockSamples: 4})
	for i := 0; i < 37; i++ {
		if err := a.Append(row(int64(i)*7, uint64(i)*3, uint64(i*i), 42)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantNames, gotNames := a.Names(), b.Names()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("names len = %d, want %d", len(gotNames), len(wantNames))
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Errorf("name %d = %+v, want %+v", i, gotNames[i], wantNames[i])
		}
	}
	ra, _ := a.All()
	rb, _ := b.All()
	if len(ra) != len(rb) {
		t.Fatalf("rows = %d, want %d", len(rb), len(ra))
	}
	for i := range ra {
		if ra[i].Timestamp != rb[i].Timestamp {
			t.Errorf("row %d ts mismatch", i)
		}
		for c := range ra[i].Values {
			if ra[i].Values[c] != rb[i].Values[c] {
				t.Errorf("row %d col %d mismatch", i, c)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not an archive")), Options{}); !errors.Is(err, ErrFormat) {
		t.Errorf("garbage err = %v", err)
	}
	if _, err := Read(bytes.NewReader([]byte("PMLG1\n")), Options{}); err == nil {
		t.Error("truncated archive accepted")
	}
}

// TestRateCounterWrap is the regression test for the wraparound bug:
// Rate and ValueAt used to difference raw float64 values, so a uint64
// counter wrapping between samples produced a huge negative rate. The
// wrap-corrected delta (pcp.CounterDelta) must yield the true small
// positive rate, exactly.
func TestRateCounterWrap(t *testing.T) {
	a, _ := New(schema(2), Options{})
	// Column a: counter wrapping past 2^64 between the 2nd and 3rd
	// samples (true increment 800/s throughout). Column b: an instant
	// level genuinely decreasing — must NOT be wrap-"corrected".
	v0 := ^uint64(0) - 1000
	rows := []struct {
		ts   int64
		a, b uint64
	}{
		{0, v0, 5000},
		{1_000_000_000, v0 + 800, 4000},
		{2_000_000_000, v0 + 1600, 3000}, // a wraps: stored value 599
	}
	if rows[2].a >= v0 {
		t.Fatal("test setup: counter did not wrap")
	}
	for _, r := range rows {
		if err := a.Append(row(r.ts, r.a, r.b)); err != nil {
			t.Fatal(err)
		}
	}

	if rate, err := a.Rate(1, 0, 2_000_000_000); err != nil || rate != 800 {
		t.Errorf("Rate across wrap = %v, %v; want exactly 800", rate, err)
	}
	if rate, err := a.Rate(1, 1_000_000_000, 2_000_000_000); err != nil || rate != 800 {
		t.Errorf("Rate of wrapping segment = %v, %v; want exactly 800", rate, err)
	}
	// Partial overlap: half of each segment, still 800/s.
	if rate, err := a.Rate(1, 500_000_000, 1_500_000_000); err != nil || rate != 800 {
		t.Errorf("Rate over partial window = %v, %v; want exactly 800", rate, err)
	}
	// The extended series keeps growing past 2^64 instead of collapsing
	// to the small post-wrap stored value.
	if v, err := a.ValueAt(1, 2_000_000_000); err != nil || v < float64(^uint64(0)) {
		t.Errorf("ValueAt after wrap = %v, %v; want beyond 2^64", v, err)
	}
	// A decreasing instant metric is a real decrease, not a wrap.
	if rate, err := a.Rate(2, 0, 2_000_000_000); err != nil || rate != -1000 {
		t.Errorf("Rate of decreasing level = %v, %v; want exactly -1000", rate, err)
	}
}
