// Trace record/replay: a compact on-disk request trace, varint-delta
// encoded like internal/archive's sample volumes. Arrival timestamps are
// nondecreasing in issue order, so each row stores only the uvarint
// delta from the previous row; cohort, class, size, latency and status
// follow as uvarints. A recorded virtual-time run re-encodes to the same
// bytes after a read round trip, and Replay over it reproduces the run
// bit-exact.
package workload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// ErrTrace indicates a corrupt serialized trace.
var ErrTrace = errors.New("workload: bad trace format")

// traceMagic starts a serialized trace.
const traceMagic = "PMWT1\n"

// Decoder sanity bounds: large enough for any real run, small enough
// that hostile counts cannot drive huge allocations.
const (
	traceMaxName    = 1 << 12
	traceMaxCohorts = 1 << 16
	traceMaxSize    = 1 << 20
)

// Row is one issued request and its outcome. Seq is the in-memory issue
// order (live completions arrive out of order and are re-sorted); it is
// implicit on disk — rows are stored in Seq order.
type Row struct {
	T      int64 // virtual arrival, ns
	Seq    int64
	Cohort uint32
	Class  Class
	Size   uint32
	Lat    int64 // ns, measured from scheduled arrival
	Status uint8 // 0 ok, 1 error
}

// Trace is a recorded run: identity (spec name, seed, mult, horizon and
// cohort names, enough to validate a replay target) plus the rows.
type Trace struct {
	Spec    string
	Seed    uint64
	Mult    float64
	Horizon int64
	Cohorts []string
	Rows    []Row
}

// WriteTo serializes the trace.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 0, len(traceMagic)+64+8*len(tr.Rows))
	buf = append(buf, traceMagic...)
	buf = appendString(buf, tr.Spec)
	buf = binary.AppendUvarint(buf, tr.Seed)
	buf = binary.AppendUvarint(buf, floatBits(tr.Mult))
	buf = binary.AppendVarint(buf, tr.Horizon)
	buf = binary.AppendUvarint(buf, uint64(len(tr.Cohorts)))
	for _, name := range tr.Cohorts {
		buf = appendString(buf, name)
	}
	buf = binary.AppendUvarint(buf, uint64(len(tr.Rows)))
	prevT := int64(0)
	for i := range tr.Rows {
		r := &tr.Rows[i]
		if r.T < prevT {
			return 0, fmt.Errorf("workload: trace rows out of order at %d (%d after %d)", i, r.T, prevT)
		}
		buf = binary.AppendUvarint(buf, uint64(r.T-prevT))
		prevT = r.T
		buf = binary.AppendUvarint(buf, uint64(r.Cohort))
		buf = binary.AppendUvarint(buf, uint64(r.Class))
		buf = binary.AppendUvarint(buf, uint64(r.Size))
		buf = binary.AppendUvarint(buf, uint64(r.Lat))
		buf = binary.AppendUvarint(buf, uint64(r.Status))
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadTrace deserializes a trace written by WriteTo. Corrupt input
// yields an error wrapping ErrTrace, never a panic — FuzzReadTrace
// holds it to that.
func ReadTrace(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrTrace)
	}
	d := &traceDecoder{buf: data[len(traceMagic):]}
	tr := &Trace{}
	tr.Spec = d.str(traceMaxName, "spec name")
	tr.Seed = d.uv("seed")
	tr.Mult = bitsFloat(d.uv("mult"))
	tr.Horizon = d.sv("horizon")
	nCohorts := d.uv("cohort count")
	if d.err == nil && nCohorts > traceMaxCohorts {
		return nil, fmt.Errorf("%w: implausible cohort count %d", ErrTrace, nCohorts)
	}
	for i := uint64(0); i < nCohorts && d.err == nil; i++ {
		tr.Cohorts = append(tr.Cohorts, d.str(traceMaxName, "cohort name"))
	}
	nRows := d.uv("row count")
	if d.err != nil {
		return nil, d.err
	}
	// Each row costs at least 6 encoded bytes, so the count is bounded
	// by the remaining input.
	if nRows > uint64(len(d.buf)) {
		return nil, fmt.Errorf("%w: row count %d exceeds remaining input", ErrTrace, nRows)
	}
	tr.Rows = make([]Row, 0, nRows)
	prevT := int64(0)
	for i := uint64(0); i < nRows; i++ {
		var row Row
		dt := d.uv("row dt")
		row.T = prevT + int64(dt)
		if row.T < prevT {
			return nil, fmt.Errorf("%w: timestamp overflow at row %d", ErrTrace, i)
		}
		prevT = row.T
		row.Seq = int64(i)
		cohort := d.uv("row cohort")
		class := d.uv("row class")
		size := d.uv("row size")
		lat := d.uv("row latency")
		status := d.uv("row status")
		if d.err != nil {
			return nil, d.err
		}
		if cohort >= uint64(len(tr.Cohorts)) {
			return nil, fmt.Errorf("%w: row %d cohort %d of %d", ErrTrace, i, cohort, len(tr.Cohorts))
		}
		if class >= uint64(NumClasses) {
			return nil, fmt.Errorf("%w: row %d class %d", ErrTrace, i, class)
		}
		if size > traceMaxSize {
			return nil, fmt.Errorf("%w: row %d size %d", ErrTrace, i, size)
		}
		if lat > 1<<62 {
			return nil, fmt.Errorf("%w: row %d latency %d", ErrTrace, i, lat)
		}
		if status > 1 {
			return nil, fmt.Errorf("%w: row %d status %d", ErrTrace, i, status)
		}
		row.Cohort = uint32(cohort)
		row.Class = Class(class)
		row.Size = uint32(size)
		row.Lat = int64(lat)
		row.Status = uint8(status)
		tr.Rows = append(tr.Rows, row)
	}
	return tr, nil
}

// WriteFile serializes the trace to path.
func (tr *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := tr.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile reads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

type traceDecoder struct {
	buf []byte
	err error
}

func (d *traceDecoder) uv(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated %s", ErrTrace, what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *traceDecoder) sv(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated %s", ErrTrace, what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *traceDecoder) str(maxLen uint64, what string) string {
	ln := d.uv(what + " length")
	if d.err != nil {
		return ""
	}
	if ln > maxLen {
		d.err = fmt.Errorf("%w: %s length %d", ErrTrace, what, ln)
		return ""
	}
	if uint64(len(d.buf)) < ln {
		d.err = fmt.Errorf("%w: truncated %s", ErrTrace, what)
		return ""
	}
	s := string(d.buf[:ln])
	d.buf = d.buf[ln:]
	return s
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
