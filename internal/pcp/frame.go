package pcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Tagged framing (wire protocol Version2). A tagged frame is the plain
// 5-byte frame plus a 4-byte request tag:
//
//	u32 payload length | u8 type | u32 tag | payload
//
// The tag is chosen by the requester and echoed verbatim in the
// response, which is what lets a connection carry many outstanding
// requests with out-of-order completion: the reader demultiplexes
// responses by tag instead of assuming lockstep order. Both sides
// switch to tagged frames immediately after a PDUVersionReq /
// PDUVersionResp exchange negotiates Version2 or higher; Version1
// peers never see a tagged frame.

// TaggedHdrLen is the tagged frame header size.
const TaggedHdrLen = 9

// hdr9Pool recycles tagged frame headers, like hdrPool for plain ones.
var hdr9Pool = sync.Pool{
	New: func() any { b := make([]byte, TaggedHdrLen); return &b },
}

// putTaggedHdr encodes a tagged frame header into hdr.
func putTaggedHdr(hdr []byte, typ uint8, tag uint32, payloadLen int) {
	binary.BigEndian.PutUint32(hdr[:4], uint32(payloadLen))
	hdr[4] = typ
	binary.BigEndian.PutUint32(hdr[5:9], tag)
}

// WriteTaggedPDU frames and writes one tagged PDU. Like WritePDU it
// does not allocate in the steady state.
func WriteTaggedPDU(w io.Writer, typ uint8, tag uint32, payload []byte) error {
	if len(payload) > MaxPDUBytes {
		return fmt.Errorf("%w (writing %d bytes)", ErrPDUTooLarge, len(payload))
	}
	hp := hdr9Pool.Get().(*[]byte)
	hdr := *hp
	putTaggedHdr(hdr, typ, tag, len(payload))
	_, err := w.Write(hdr)
	hdr9Pool.Put(hp)
	if err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadTaggedHeader reads one tagged frame header and validates the
// length prefix against MaxPDUBytes before anything is allocated, so a
// hostile tag/length combination can fail with ErrProtocol but never
// force an oversized allocation. The payload (n bytes) is left unread:
// a demux reader that finds no waiter for the tag discards it with
// br.Discard instead of reading it into memory.
func ReadTaggedHeader(r io.Reader) (typ uint8, tag uint32, n uint32, err error) {
	hp := hdr9Pool.Get().(*[]byte)
	hdr := *hp
	_, err = io.ReadFull(r, hdr)
	n = binary.BigEndian.Uint32(hdr[:4])
	typ = hdr[4]
	tag = binary.BigEndian.Uint32(hdr[5:9])
	hdr9Pool.Put(hp)
	if err != nil {
		return 0, 0, 0, err
	}
	if n > MaxPDUBytes {
		return 0, 0, 0, fmt.Errorf("%w (length prefix %d)", ErrPDUTooLarge, n)
	}
	return typ, tag, n, nil
}

// ReadTaggedPDUInto reads one whole tagged PDU, reading the payload
// into buf and growing it if needed — the tagged analogue of
// ReadPDUInto, with the same aliasing contract.
func ReadTaggedPDUInto(r io.Reader, buf []byte) (typ uint8, tag uint32, payload []byte, err error) {
	typ, tag, n, err := ReadTaggedHeader(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return typ, tag, payload, nil
}

// Wide framing (wire protocol Version3). A wide frame extends the
// tagged frame with a 4-byte tenant field:
//
//	u32 payload length | u8 type | u32 tag | u32 tenant | payload
//
// The tenant identifies the requesting principal for admission control
// and per-tenant accounting at a proxy; servers echo it verbatim in
// responses so middleboxes can attribute both directions of a stream
// without per-connection state. Both sides switch to wide frames
// immediately after negotiating Version3 or higher; Version1 and
// Version2 peers never see one.

// WideHdrLen is the wide (tenant-carrying) frame header size.
const WideHdrLen = 13

// hdr13Pool recycles wide frame headers, like hdr9Pool for tagged ones.
var hdr13Pool = sync.Pool{
	New: func() any { b := make([]byte, WideHdrLen); return &b },
}

// putWideHdr encodes a wide frame header into hdr.
func putWideHdr(hdr []byte, typ uint8, tag, tenant uint32, payloadLen int) {
	binary.BigEndian.PutUint32(hdr[:4], uint32(payloadLen))
	hdr[4] = typ
	binary.BigEndian.PutUint32(hdr[5:9], tag)
	binary.BigEndian.PutUint32(hdr[9:13], tenant)
}

// WriteWidePDU frames and writes one wide PDU. Like WriteTaggedPDU it
// does not allocate in the steady state.
func WriteWidePDU(w io.Writer, typ uint8, tag, tenant uint32, payload []byte) error {
	if len(payload) > MaxPDUBytes {
		return fmt.Errorf("%w (writing %d bytes)", ErrPDUTooLarge, len(payload))
	}
	hp := hdr13Pool.Get().(*[]byte)
	hdr := *hp
	putWideHdr(hdr, typ, tag, tenant, len(payload))
	_, err := w.Write(hdr)
	hdr13Pool.Put(hp)
	if err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadWideHeader reads one wide frame header with the same hostile-input
// contract as ReadTaggedHeader: the length prefix is validated against
// MaxPDUBytes before anything is allocated, and the payload is left
// unread. Any 32-bit tenant value is structurally valid — policy about
// unknown tenants belongs to the admission layer, not the framing.
func ReadWideHeader(r io.Reader) (typ uint8, tag, tenant uint32, n uint32, err error) {
	hp := hdr13Pool.Get().(*[]byte)
	hdr := *hp
	_, err = io.ReadFull(r, hdr)
	n = binary.BigEndian.Uint32(hdr[:4])
	typ = hdr[4]
	tag = binary.BigEndian.Uint32(hdr[5:9])
	tenant = binary.BigEndian.Uint32(hdr[9:13])
	hdr13Pool.Put(hp)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if n > MaxPDUBytes {
		return 0, 0, 0, 0, fmt.Errorf("%w (length prefix %d)", ErrPDUTooLarge, n)
	}
	return typ, tag, tenant, n, nil
}

// ReadWidePDUInto reads one whole wide PDU, reading the payload into
// buf and growing it if needed — the wide analogue of ReadTaggedPDUInto,
// with the same aliasing contract.
func ReadWidePDUInto(r io.Reader, buf []byte) (typ uint8, tag, tenant uint32, payload []byte, err error) {
	typ, tag, tenant, n, err := ReadWideHeader(r)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return typ, tag, tenant, payload, nil
}

// coalesceMax is the payload size up to which a frame is copied into
// the batch's contiguous buffer. Larger payloads are referenced
// zero-copy as their own write-vector element; the copy would cost more
// than the extra iovec.
const coalesceMax = 4096

// frameBatch accumulates tagged frames and writes them with one
// vectored write (writev on a TCP connection): small frames coalesce
// into a contiguous buffer so a burst of pipelined requests or
// responses costs one syscall, and large payloads are referenced
// directly so the classic header+payload copy disappears.
//
// Aliasing: a frame appended with a large payload holds a reference to
// that payload until the next flush. appendFrame reports this with
// direct=true so callers that reuse their encode buffer flush before
// overwriting it.
type frameBatch struct {
	small []byte      // coalesced headers + small payloads
	cut   int         // start of small's region not yet sealed into vec
	vec   net.Buffers // pending write vector
}

// appendFrame adds one tagged frame to the batch. direct reports that
// the payload was referenced zero-copy rather than copied: the caller
// must not modify it before the next flush.
func (b *frameBatch) appendFrame(typ uint8, tag uint32, payload []byte) (direct bool, err error) {
	var hdr [TaggedHdrLen]byte
	putTaggedHdr(hdr[:], typ, tag, len(payload))
	return b.push(hdr[:], payload)
}

// appendWide adds one wide (tenant-carrying) frame to the batch, with
// the same direct/aliasing contract as appendFrame.
func (b *frameBatch) appendWide(typ uint8, tag, tenant uint32, payload []byte) (direct bool, err error) {
	var hdr [WideHdrLen]byte
	putWideHdr(hdr[:], typ, tag, tenant, len(payload))
	return b.push(hdr[:], payload)
}

// push appends an already-encoded header plus payload, coalescing or
// referencing the payload per coalesceMax.
func (b *frameBatch) push(hdr, payload []byte) (direct bool, err error) {
	if len(payload) > MaxPDUBytes {
		return false, fmt.Errorf("%w (writing %d bytes)", ErrPDUTooLarge, len(payload))
	}
	b.small = append(b.small, hdr...)
	if len(payload) > coalesceMax {
		b.seal()
		b.vec = append(b.vec, payload)
		return true, nil
	}
	b.small = append(b.small, payload...)
	return false, nil
}

// seal moves the unsealed tail of small into the write vector. Sealed
// slices stay valid across later appends: growth either writes beyond
// the sealed length or reallocates, leaving the referenced array
// untouched.
func (b *frameBatch) seal() {
	if len(b.small) > b.cut {
		b.vec = append(b.vec, b.small[b.cut:len(b.small):len(b.small)])
		b.cut = len(b.small)
	}
}

// empty reports whether the batch holds no pending frames.
func (b *frameBatch) empty() bool { return len(b.vec) == 0 && len(b.small) == b.cut }

// flush writes every pending frame with a single vectored write and
// resets the batch for reuse (retaining capacity).
func (b *frameBatch) flush(w io.Writer) error {
	b.seal()
	if len(b.vec) == 0 {
		return nil
	}
	vec := b.vec // WriteTo advances (and nils out) a copy, not b.vec itself
	_, err := vec.WriteTo(w)
	b.vec = b.vec[:0]
	b.small = b.small[:0]
	b.cut = 0
	return err
}
