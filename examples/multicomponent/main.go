// Multicomponent: the paper's headline capability — monitor memory
// traffic (via PCP), GPU power (via NVML) and InfiniBand traffic with
// ONE event set, while a heterogeneous workload exercises all three.
package main

import (
	"fmt"
	"log"

	"papimc"
	"papimc/internal/model"
	"papimc/internal/simtime"
)

func main() {
	tb, err := papimc.NewTestbed(papimc.Summit(), 2, papimc.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		log.Fatal(err)
	}

	es := lib.NewEventSet()
	events := []string{
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
		"nvml:::Tesla_V100-SXM2-16GB:device_0:power",
		"infiniband:::mlx5_0_1_ext:port_recv_data",
	}
	if err := es.AddAll(events...); err != nil {
		log.Fatal(err)
	}
	if err := es.Start(); err != nil {
		log.Fatal(err)
	}

	n0, n1 := tb.Nodes[0], tb.Nodes[1]
	dev := n0.GPUs[0][0]

	// Heterogeneous workload: host compute, then a GPU phase (H2D →
	// kernel → D2H), then an exchange with the neighbour node.
	n0.Play(0, model.Traffic{ReadBytes: 96 << 20, WriteBytes: 32 << 20, Duration: 20 * simtime.Millisecond}, 8)

	t := tb.Clock.Now()
	t = dev.CopyToDevice(128<<20, t)
	t = dev.BusyFor(15*simtime.Millisecond, t)
	// Sample GPU power mid-kernel: the instant (level) semantics.
	tb.Clock.AdvanceTo(t.Add(-5 * simtime.Millisecond))
	mid, err := es.Read()
	if err != nil {
		log.Fatal(err)
	}
	t = dev.CopyFromDevice(128<<20, t)
	tb.Clock.AdvanceTo(t)

	// Bidirectional exchange with the neighbour node: node 0's
	// port_recv_data counts the inbound half.
	tb.Fabric.Transfer(n0.NIC, n1.NIC, 64<<20, tb.Clock.Now())
	tb.Fabric.Transfer(n1.NIC, n0.NIC, 64<<20, tb.Clock.Now())
	tb.Clock.Advance(100 * simtime.Millisecond)

	final, err := es.Stop()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mid-kernel sample:")
	fmt.Printf("  GPU power: %.0f W (a kernel is executing)\n", float64(mid[2])/1000)
	fmt.Println("\nend of run:")
	fmt.Printf("  memory reads  (MBA ch0):  %d bytes\n", final[0])
	fmt.Printf("  memory writes (MBA ch0):  %d bytes\n", final[1])
	fmt.Printf("  GPU power now:            %.0f W (idle again)\n", float64(final[2])/1000)
	fmt.Printf("  IB words received:        %d (= %d bytes)\n", final[3], final[3]*4)
	fmt.Println("\nOne API, four hardware domains — the Fig. 11/12 capability.")
}
