package cache

import (
	"testing"

	"papimc/internal/trace"
)

// Access is the simulator's innermost loop — every simulated load and
// store passes through it — so it must never allocate.
func TestAccessDoesNotAllocate(t *testing.T) {
	h, _ := singleCore(t)
	// Footprint larger than L2 so the loop exercises every level,
	// including L3 and memory fills, not just L1 hits.
	const footprint = 2 << 20
	var off int64
	if got := testing.AllocsPerRun(1000, func() {
		h.Access(0, trace.Access{Addr: off % footprint, Size: 8, Kind: trace.Load})
		h.Access(0, trace.Access{Addr: off % footprint, Size: 8, Kind: trace.Store})
		off += 64
	}); got != 0 {
		t.Errorf("Access allocates %.1f objects per run, want 0", got)
	}
}
