package profile

import (
	"fmt"
	"math"

	"papimc/internal/expect"
	"papimc/internal/gpu"
	"papimc/internal/ib"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/simtime"
)

// FFTAppConfig parameterizes the Fig. 11 workload: the GPU-enabled,
// distributed 3D-FFT as seen from one rank (one socket of one node).
// The paper's run uses 32 nodes and an 8×8 virtual processor grid.
type FFTAppConfig struct {
	N     int64
	GridR int64
	GridC int64
}

// Validate checks the configuration.
func (c FFTAppConfig) Validate() error {
	if c.N <= 0 || c.GridR <= 0 || c.GridC <= 0 {
		return fmt.Errorf("profile: invalid FFT config %+v", c)
	}
	if c.N%c.GridR != 0 || c.N%c.GridC != 0 {
		return fmt.Errorf("profile: N=%d not divisible by %dx%d grid", c.N, c.GridR, c.GridC)
	}
	return nil
}

// FFTPhases builds the Fig. 11 phase timeline for rank 0 (socket 0 of
// node 0 of tb, using its first GPU): for each of the three dimensions,
// host memory is read to the GPU (read burst), a batch of 1D FFTs runs
// (power spike), results copy back (write burst); between dimensions the
// data re-sorting phases run on the CPU (the odd ones strided, 2 reads
// per write; the even ones layout-matched, 1:1 at higher bandwidth), and
// the two all-to-alls drive the InfiniBand counters. tb must have at
// least two nodes so the exchanges have a remote peer.
func FFTPhases(tb *node.Testbed, cfg FFTAppConfig) ([]Phase, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tb.Nodes) < 2 {
		return nil, fmt.Errorf("profile: FFT app needs >= 2 nodes, testbed has %d", len(tb.Nodes))
	}
	self := tb.Nodes[0]
	peer := tb.Nodes[1]
	if len(self.AllGPUs()) == 0 {
		return nil, fmt.Errorf("profile: machine %s has no GPUs", tb.Machine.Name)
	}
	dev := self.GPUs[0][0]

	slabBytes := expect.RankElems(cfg.N, cfg.GridR, cfg.GridC) * 16
	flops := 5 * float64(slabBytes/16) * math.Log2(float64(cfg.N))

	copyDur := simtime.FromSeconds(float64(slabBytes) / gpu.CopyBandwidth)
	// Batched FFTs are memory-bound on the device: they achieve a small
	// fraction of peak.
	const fftEffectiveFlops = 500e9
	execDur := simtime.FromSeconds(flops / fftEffectiveFlops)
	if execDur < simtime.Millisecond {
		execDur = simtime.Millisecond
	}

	ctx := model.Serial(tb.Machine)
	strided := model.S1CFCombined(ctx, cfg.N, cfg.GridR, cfg.GridC)
	matched := model.S2CF(ctx, cfg.N, cfg.GridR, cfg.GridC)

	// All-to-all: this rank exchanges (ranks-1)/ranks of its slab.
	ranks := cfg.GridR * cfg.GridC
	wireBytes := slabBytes * (ranks - 1) / ranks
	a2aDur := simtime.FromSeconds(float64(wireBytes) / ib.LinkBandwidth)

	gpuPipeline := func(dim string) []Phase {
		return []Phase{
			{Name: "H2D-" + dim, Duration: copyDur, Emit: scheduleOnce(func(t0 simtime.Time) {
				dev.CopyToDevice(slabBytes, t0)
			})},
			{Name: "FFT-" + dim + "(GPU)", Duration: execDur, Emit: scheduleOnce(func(t0 simtime.Time) {
				dev.BusyFor(execDur, t0)
			})},
			{Name: "D2H-" + dim, Duration: copyDur, Emit: scheduleOnce(func(t0 simtime.Time) {
				dev.CopyFromDevice(slabBytes, t0)
			})},
		}
	}
	resort := func(name string, tr model.Traffic) Phase {
		return Phase{Name: name, Duration: tr.Duration, Emit: emitTraffic(self, 0, tr)}
	}
	alltoall := func(name string) Phase {
		return Phase{Name: name, Duration: a2aDur, Emit: func(t0, t1 simtime.Time) {
			frac := float64(t1.Sub(t0)) / float64(a2aDur)
			bytes := int64(frac * float64(wireBytes))
			tb.Fabric.Transfer(self.NIC, peer.NIC, bytes, t0)
			tb.Fabric.Transfer(peer.NIC, self.NIC, bytes, t0)
		}}
	}

	var phases []Phase
	phases = append(phases, gpuPipeline("z")...)
	phases = append(phases, resort("resort-1(S1CF)", strided))
	phases = append(phases, alltoall("All2All-1"))
	phases = append(phases, resort("resort-2", matched))
	phases = append(phases, gpuPipeline("y")...)
	phases = append(phases, resort("resort-3(S2CF)", strided))
	phases = append(phases, alltoall("All2All-2"))
	phases = append(phases, resort("resort-4", matched))
	phases = append(phases, gpuPipeline("x")...)
	return phases, nil
}

// scheduleOnce wraps a one-shot scheduler (GPU work posts its own
// time-stamped traffic) as an Emit callback.
func scheduleOnce(f func(start simtime.Time)) func(t0, t1 simtime.Time) {
	done := false
	return func(t0, t1 simtime.Time) {
		if !done {
			done = true
			f(t0)
		}
	}
}

// emitTraffic spreads a model prediction proportionally over the
// sub-windows the profiler visits.
func emitTraffic(n *node.Node, socket int, tr model.Traffic) func(t0, t1 simtime.Time) {
	return func(t0, t1 simtime.Time) {
		frac := float64(t1.Sub(t0)) / float64(tr.Duration)
		ctl := n.Mem[socket]
		ctl.AddTraffic(true, int64(t0), int64(frac*float64(tr.ReadBytes)), t0, t1)
		ctl.AddTraffic(false, 1<<30+int64(t0), int64(frac*float64(tr.WriteBytes)), t0, t1)
	}
}

// FFTProfileEvents returns the Fig. 11 event selection: socket-0 memory
// read+write bytes via PCP, the first GPU's power, and the first IB
// port's receive counter (Tables I and II).
func FFTProfileEvents(tb *node.Testbed) []string {
	names := tb.NestEventNames(node.ViaPCP)[:2*tb.Machine.Socket.MBAChannels]
	events := append([]string{}, names...)
	dev := tb.Nodes[0].GPUs[0][0]
	events = append(events, "nvml:::"+dev.EventName())
	events = append(events, "infiniband:::"+tb.Nodes[0].NIC.Ports[0].Name()+":port_recv_data")
	return events
}
