// Package ib simulates the InfiniBand hardware of a Summit node: dual
// Mellanox ConnectX-5 EX ports with the port counters PAPI's infiniband
// component reads (Table II), and a fabric whose transfers update those
// counters, generate host-memory DMA traffic, and take link-speed time.
package ib

import (
	"fmt"
	"sync"

	"papimc/internal/mem"
	"papimc/internal/simtime"
)

// WordBytes: InfiniBand port_{recv,xmit}_data counters tick in 4-byte
// words, a quirk PAPI users must know; we reproduce it.
const WordBytes = 4

// LinkBandwidth is the EDR 100 Gb/s link's usable payload bandwidth.
const LinkBandwidth = 12.5e9 // bytes/s

// Port is one HCA port with PAPI-visible counters.
type Port struct {
	name string

	mu        sync.Mutex
	recvWords uint64
	xmitWords uint64
}

// NewPort builds a port named like Summit's devices, e.g. "mlx5_0_1_ext"
// for HCA 0, port 1.
func NewPort(hca, port int) *Port {
	return &Port{name: fmt.Sprintf("mlx5_%d_%d_ext", hca, port)}
}

// Name returns the device name used in PAPI event spellings.
func (p *Port) Name() string { return p.name }

// CountRecv adds received payload bytes to the port counter.
func (p *Port) CountRecv(bytes int64) {
	p.mu.Lock()
	p.recvWords += uint64((bytes + WordBytes - 1) / WordBytes)
	p.mu.Unlock()
}

// CountXmit adds transmitted payload bytes to the port counter.
func (p *Port) CountXmit(bytes int64) {
	p.mu.Lock()
	p.xmitWords += uint64((bytes + WordBytes - 1) / WordBytes)
	p.mu.Unlock()
}

// Counters returns the port_recv_data and port_xmit_data counters, in
// 4-byte words as on real hardware.
func (p *Port) Counters() (recvWords, xmitWords uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recvWords, p.xmitWords
}

// Endpoint is a node's attachment to the fabric: its ports plus the
// socket memory controllers that DMA traffic lands in.
type Endpoint struct {
	Ports []*Port
	// Mem receives the DMA traffic of sends (reads) and receives
	// (writes); may be nil for counter-only simulations.
	Mem *mem.Controller
}

// NewEndpoint builds an endpoint with the given number of HCAs (one
// port each, as used on Summit's dual-rail nodes).
func NewEndpoint(hcas int, ctl *mem.Controller) *Endpoint {
	e := &Endpoint{Mem: ctl}
	for h := 0; h < hcas; h++ {
		e.Ports = append(e.Ports, NewPort(h, 1))
	}
	return e
}

// Fabric connects endpoints with EDR links.
type Fabric struct {
	Bandwidth float64 // bytes/s per endpoint pair
}

// NewFabric returns a fabric at the default EDR bandwidth.
func NewFabric() *Fabric { return &Fabric{Bandwidth: LinkBandwidth} }

// Transfer moves bytes from src to dst starting at simulated time start,
// striping across the source and destination ports (dual-rail), counting
// DMA traffic on both hosts' memory, and returns the transfer duration.
// Self-transfers are free (rank-local exchange goes through memory only).
func (f *Fabric) Transfer(src, dst *Endpoint, bytes int64, start simtime.Time) simtime.Duration {
	if bytes <= 0 {
		return 0
	}
	if src == dst {
		// Local "transfer": a memory copy on the same node.
		if src.Mem != nil {
			end := start.Add(simtime.FromSeconds(float64(bytes) / f.Bandwidth))
			src.Mem.AddTraffic(true, 0, bytes, start, end)
			src.Mem.AddTraffic(false, 1<<28, bytes, start, end)
			return end.Sub(start)
		}
		return 0
	}
	dur := simtime.FromSeconds(float64(bytes) / f.Bandwidth)
	end := start.Add(dur)
	stripe(src.Ports, bytes, func(p *Port, b int64) { p.CountXmit(b) })
	stripe(dst.Ports, bytes, func(p *Port, b int64) { p.CountRecv(b) })
	// RDMA: the HCA reads the send buffer on the source host and writes
	// the receive buffer on the destination host, progressively over the
	// transfer.
	if src.Mem != nil {
		src.Mem.AddTrafficSpread(true, 0, bytes, start, end, 8)
	}
	if dst.Mem != nil {
		dst.Mem.AddTrafficSpread(false, 1<<28, bytes, start, end, 8)
	}
	return dur
}

// stripe splits bytes evenly over the ports.
func stripe(ports []*Port, bytes int64, f func(*Port, int64)) {
	if len(ports) == 0 {
		return
	}
	share := bytes / int64(len(ports))
	rem := bytes - share*int64(len(ports))
	for i, p := range ports {
		b := share
		if int64(i) < rem {
			b++
		}
		if b > 0 {
			f(p, b)
		}
	}
}
