package faultconn

import (
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"papimc/internal/xrand"
)

// conn is one fault-injected connection. Each direction owns an
// independent dirState so read faults and write faults never correlate.
type conn struct {
	net.Conn
	in *Injector
	id int

	rd dirState
	wr dirState

	// Deadlines are mirrored here so a Stall can honour them without
	// touching the underlying connection (a stalled stream never calls
	// into it). Guarded by dlMu; the underlying conn still gets the
	// deadline too, for real reads in flight.
	dlMu       sync.Mutex
	rdDeadline time.Time
	wrDeadline time.Time

	closeOnce sync.Once
}

// dirState is one direction's fault stream: the byte offset so far and
// the upcoming fault offsets, all drawn from a per-direction RNG
// substream. An event's offset E means "fires once E bytes have passed"
// — except Corrupt, where E is the index of the byte that gets flipped.
type dirState struct {
	mu  sync.Mutex
	in  *Injector
	id  int
	dir Dir
	rng *xrand.Source

	off         int64
	nextReset   int64 // -1 = never
	nextStall   int64
	nextCorrupt int64
	nextLatency int64
	exact       []Fault // exact-offset faults for this conn+dir, sorted
	pending     error   // terminal error delivered to all further calls
}

// init seeds the direction's substreams and draws the first offsets.
func (d *dirState) init(in *Injector, id int, dir Dir, seed uint64) {
	d.in, d.id, d.dir = in, id, dir
	d.rng = xrand.New(seed)
	s := in.sched
	d.nextReset = d.draw(s.ResetEvery)
	d.nextStall = d.draw(s.StallEvery)
	d.nextCorrupt = d.draw(s.CorruptEvery)
	d.nextLatency = d.draw(s.LatencyEvery)
	for _, f := range s.Exact {
		if f.Conn == id && f.Dir == dir && f.Kind != Refuse {
			d.exact = append(d.exact, f)
		}
	}
	sort.Slice(d.exact, func(i, j int) bool { return d.exact[i].Off < d.exact[j].Off })
}

// draw samples the next fault offset for a mean spacing, or -1 when the
// fault is disabled. The spacing is uniform on [1, 2*every], giving mean
// ~every without the unbounded tail an exponential would add.
func (d *dirState) draw(every int64) int64 {
	if every <= 0 {
		return -1
	}
	return d.off + 1 + d.rng.Int63n(2*every)
}

// boundary returns the stream offset at which the earliest upcoming
// fault acts, plus that fault. For Corrupt the boundary is Off+1 (the
// chunk must deliver the byte so it can be flipped); for the rest it is
// Off itself. ok is false when nothing is scheduled.
func (d *dirState) boundary() (bound int64, f Fault, ok bool) {
	consider := func(off int64, kind Kind) {
		if off < 0 {
			return
		}
		b := off
		if kind == Corrupt {
			b = off + 1
		}
		if !ok || b < bound {
			bound, f, ok = b, Fault{Conn: d.id, Dir: d.dir, Off: off, Kind: kind}, true
		}
	}
	// Priority at equal boundaries is fixed by consider-order: the first
	// scheduled kind wins, deterministically.
	consider(d.nextReset, Reset)
	consider(d.nextStall, Stall)
	consider(d.nextCorrupt, Corrupt)
	consider(d.nextLatency, Latency)
	if len(d.exact) > 0 {
		e := d.exact[0]
		consider(e.Off, e.Kind)
	}
	return bound, f, ok
}

// fired advances the state past a fault that just fired, so it cannot
// refire: probabilistic faults redraw their next offset, exact faults
// pop off the queue.
func (d *dirState) fired(f Fault) {
	if len(d.exact) > 0 && d.exact[0].Off == f.Off && d.exact[0].Kind == f.Kind {
		d.exact = d.exact[1:]
		return
	}
	s := d.in.sched
	switch f.Kind {
	case Reset:
		d.nextReset = d.draw(s.ResetEvery)
	case Stall:
		d.nextStall = d.draw(s.StallEvery)
	case Corrupt:
		d.nextCorrupt = d.draw(s.CorruptEvery)
	case Latency:
		d.nextLatency = d.draw(s.LatencyEvery)
	}
}

// chunkAt draws a deterministic chunk size cap for the current offset.
func (d *dirState) chunkAt(max int) int {
	if max <= 0 {
		return 0
	}
	return 1 + int(mix(uint64(d.off)^d.in.seed^uint64(d.id)<<17)%uint64(max))
}

// pace sleeps the bandwidth-cap duration for n delivered bytes.
func (c *conn) pace(n int) {
	if bw := c.in.sched.BytesPerSec; bw > 0 && n > 0 {
		time.Sleep(time.Duration(int64(n) * int64(time.Second) / bw))
	}
}

// deadline returns the mirrored deadline for a direction (zero = none).
func (c *conn) deadline(dir Dir) time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	if dir == Read {
		return c.rdDeadline
	}
	return c.wrDeadline
}

// stall blocks like a dead network: until the caller's deadline, capped
// at MaxStall, then surfaces the same timeout error a deadline would.
// The connection is left terminally broken (a real stalled conn does not
// come back; the caller discards it on timeout anyway).
func (c *conn) stall(d *dirState) error {
	wait := c.in.sched.MaxStall
	if dl := c.deadline(d.dir); !dl.IsZero() {
		if until := time.Until(dl); until < wait {
			wait = until
		}
	}
	if wait > 0 {
		time.Sleep(wait)
	}
	d.pending = os.ErrDeadlineExceeded
	return d.pending
}

// reset kills the connection: both the caller and the peer observe it.
func (c *conn) reset(d *dirState) error {
	d.pending = ErrReset
	c.closeOnce.Do(func() { c.Conn.Close() })
	return ErrReset
}

// Read implements net.Conn. It delivers bytes up to the next fault
// boundary (and within the chunk cap), then fires the fault exactly at
// its scheduled stream offset.
func (c *conn) Read(p []byte) (int, error) {
	d := &c.rd
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.pending != nil {
			return 0, d.pending
		}
		if len(p) == 0 {
			return c.Conn.Read(p)
		}
		bound, f, ok := d.boundary()
		if ok && bound == d.off && f.Kind != Corrupt {
			d.fired(f)
			c.in.record(f)
			switch f.Kind {
			case Reset:
				return 0, c.reset(d)
			case Stall:
				return 0, c.stall(d)
			case Latency:
				time.Sleep(c.in.sched.LatencyAmount)
				continue
			}
		}
		n := len(p)
		if ok {
			if gap := bound - d.off; gap < int64(n) {
				n = int(gap)
			}
		}
		if ch := d.chunkAt(c.in.sched.MaxChunk); ch > 0 && ch < n {
			n = ch
		}
		m, err := c.Conn.Read(p[:n])
		d.off += int64(m)
		c.pace(m)
		if ok && f.Kind == Corrupt && d.off == bound && m > 0 {
			// The chunk was capped to end right after the target byte, so
			// the flipped byte is exactly stream offset f.Off.
			p[m-1] ^= 1 << (mix(uint64(f.Off)^c.in.seed) % 8)
			d.fired(f)
			c.in.record(f)
		}
		return m, err
	}
}

// Write implements net.Conn. The whole buffer is written unless a fatal
// fault fires, in which case the byte count written so far is returned
// with the error (as the net.Conn contract requires).
func (c *conn) Write(p []byte) (int, error) {
	d := &c.wr
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for total < len(p) {
		if d.pending != nil {
			return total, d.pending
		}
		bound, f, ok := d.boundary()
		if ok && bound == d.off && f.Kind != Corrupt {
			d.fired(f)
			c.in.record(f)
			switch f.Kind {
			case Reset:
				return total, c.reset(d)
			case Stall:
				return total, c.stall(d)
			case Latency:
				time.Sleep(c.in.sched.LatencyAmount)
				continue
			}
		}
		n := len(p) - total
		if ok {
			if gap := bound - d.off; gap < int64(n) {
				n = int(gap)
			}
		}
		if ch := d.chunkAt(c.in.sched.MaxChunk); ch > 0 && ch < n {
			n = ch
		}
		seg := p[total : total+n]
		corrupting := ok && f.Kind == Corrupt && d.off+int64(n) == bound
		if corrupting {
			// Never mutate the caller's buffer: corrupt a copy.
			tmp := make([]byte, n)
			copy(tmp, seg)
			tmp[n-1] ^= 1 << (mix(uint64(f.Off)^c.in.seed) % 8)
			seg = tmp
		}
		m, err := c.Conn.Write(seg)
		d.off += int64(m)
		total += m
		c.pace(m)
		if corrupting && m == n {
			d.fired(f)
			c.in.record(f)
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close implements net.Conn.
func (c *conn) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.Conn.Close() })
	return err
}

// SetDeadline implements net.Conn, mirroring the deadline for stalls.
func (c *conn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdDeadline, c.wrDeadline = t, t
	c.dlMu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdDeadline = t
	c.dlMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *conn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.wrDeadline = t
	c.dlMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}
