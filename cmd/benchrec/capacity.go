// The -capacity recorder: sweep the example capacity spec through the
// virtual-time workload engine, record the knee point, and measure how
// fast the engine simulates the million-client diurnal spec. Everything
// but the wall-clock speed figures is deterministic, so successive runs
// agree on every knee number.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"papimc/internal/workload"
)

// CapacityRecord is BENCH_6.json: the swept curve, the knee the
// analyzer found, and the virtual-time engine's simulation rate.
type CapacityRecord struct {
	Note     string                   `json:"note"`
	Capacity *workload.CapacityReport `json:"capacity"`
	// Knee facts lifted out of the report for easy trending.
	KneeMult   float64 `json:"knee_mult"`
	KneeRatio  float64 `json:"knee_ratio"`
	KneeP99Ns  int64   `json:"knee_p99_ns"`
	KneeReason string  `json:"knee_reason"`
	Sim        SimRate `json:"sim"`
}

// SimRate records the engine's speed on the million-client spec.
type SimRate struct {
	Spec           string  `json:"spec"`
	Clients        int     `json:"clients"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Speedup        float64 `json:"speedup"` // virtual / wall
	Arrivals       int64   `json:"arrivals"`
	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"` // wall-clock event rate
}

func capacityMain(out, specPath, simSpecPath string) {
	spec, err := workload.LoadSpec(specPath)
	if err != nil {
		fatal(err)
	}
	rep, err := workload.Capacity(spec, workload.CapacityOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())
	if rep.Knee < 0 {
		fatal(fmt.Errorf("capacity sweep of %s found no knee; the record needs one", specPath))
	}
	knee := rep.Points[rep.Knee]
	rec := CapacityRecord{
		Note: "workload capacity knee (deterministic virtual-time sweep of " + specPath +
			") and engine simulation rate on " + simSpecPath,
		Capacity:   rep,
		KneeMult:   knee.Mult,
		KneeRatio:  knee.Ratio,
		KneeP99Ns:  knee.P99,
		KneeReason: rep.KneeReason,
	}

	simSpec, err := workload.LoadSpec(simSpecPath)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	simRep, err := workload.Run(simSpec, workload.Options{})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()
	virtual := float64(int64(simRep.Horizon)) / 1e9
	rec.Sim = SimRate{
		Spec:           simSpec.Name,
		Clients:        simSpec.TotalClients(),
		VirtualSeconds: virtual,
		WallSeconds:    round2(wall),
		Speedup:        round2(virtual / wall),
		Arrivals:       simRep.Total.Arrivals,
		Events:         simRep.Events,
		EventsPerSec:   round2(float64(simRep.Events) / wall),
	}
	fmt.Printf("sim: %d clients, %.0fs virtual in %.2fs wall (%.0fx real time, %.2gM events/s)\n",
		rec.Sim.Clients, virtual, wall, rec.Sim.Speedup, rec.Sim.EventsPerSec/1e6)

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrec:", err)
	os.Exit(1)
}
