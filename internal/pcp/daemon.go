package pcp

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"

	"papimc/internal/simtime"
)

// Metric is one exported metric: a name and a privileged read function.
type Metric struct {
	Name string
	// Read returns the metric value as of simulated time t. The daemon
	// holds whatever credential Read needs; clients never do.
	Read func(t simtime.Time) (uint64, error)
}

// Daemon is the PMCD analogue: it samples its metrics at a fixed
// interval of simulated time and serves the latest sample to clients.
type Daemon struct {
	clock    *simtime.Clock
	interval simtime.Duration

	mu         sync.Mutex
	metrics    []Metric // sorted by name; PMID = index+1
	byName     map[string]uint32
	lastSample simtime.Time
	sampled    bool
	cache      []FetchValue

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewDaemon builds a daemon sampling the given metrics every interval.
// Metric names must be unique; PMIDs are assigned in sorted-name order.
func NewDaemon(clock *simtime.Clock, interval simtime.Duration, metrics []Metric) (*Daemon, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("pcp: non-positive sample interval %d", interval)
	}
	ms := append([]Metric(nil), metrics...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	byName := make(map[string]uint32, len(ms))
	for i, m := range ms {
		if m.Read == nil {
			return nil, fmt.Errorf("pcp: metric %q has no reader", m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("pcp: duplicate metric %q", m.Name)
		}
		byName[m.Name] = uint32(i + 1)
	}
	return &Daemon{
		clock:    clock,
		interval: interval,
		metrics:  ms,
		byName:   byName,
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Names returns the daemon's metric table.
func (d *Daemon) Names() []NameEntry {
	out := make([]NameEntry, len(d.metrics))
	for i, m := range d.metrics {
		out[i] = NameEntry{PMID: uint32(i + 1), Name: m.Name}
	}
	return out
}

// sample refreshes the cached values if the sampling interval has
// elapsed (or nothing has been sampled yet), and returns the cache.
func (d *Daemon) sample() (simtime.Time, []FetchValue) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	if !d.sampled || now.Sub(d.lastSample) >= d.interval {
		vals := make([]FetchValue, len(d.metrics))
		for i, m := range d.metrics {
			v, err := m.Read(now)
			if err != nil {
				vals[i] = FetchValue{PMID: uint32(i + 1), Status: StatusValueError}
				continue
			}
			vals[i] = FetchValue{PMID: uint32(i + 1), Status: StatusOK, Value: v}
		}
		d.cache = vals
		d.lastSample = now
		d.sampled = true
	}
	return d.lastSample, d.cache
}

// Fetch returns the daemon's current view of the requested PMIDs. It is
// exported for in-process use and exercised by the network handler.
func (d *Daemon) Fetch(pmids []uint32) FetchResult {
	ts, cache := d.sample()
	res := FetchResult{Timestamp: int64(ts)}
	for _, id := range pmids {
		if id == 0 || int(id) > len(cache) {
			res.Values = append(res.Values, FetchValue{PMID: id, Status: StatusNoSuchPMID})
			continue
		}
		res.Values = append(res.Values, cache[id-1])
	}
	return res
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves clients in the
// background until Close. It returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pcp: listen: %w", err)
	}
	d.ln = ln
	d.wg.Add(1)
	go d.acceptLoop()
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			select {
			case <-d.closed:
				return
			default:
				// Transient accept errors: keep serving.
				continue
			}
		}
		d.connMu.Lock()
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				conn.Close()
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
			d.serveConn(conn)
		}()
	}
}

// serveConn handles one client connection: handshake, then a
// request/response loop.
func (d *Daemon) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Handshake: client sends Magic, daemon echoes it.
	magic := make([]byte, len(Magic))
	if _, err := ioReadFull(br, magic); err != nil || string(magic) != Magic {
		return
	}
	if _, err := bw.WriteString(Magic); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for {
		typ, payload, err := readPDU(br)
		if err != nil {
			return
		}
		var respType uint8
		var resp []byte
		switch typ {
		case pduNamesReq:
			respType, resp = pduNamesResp, encodeNamesResp(d.Names())
		case pduFetchReq:
			pmids, err := decodeFetchReq(payload)
			if err != nil {
				respType, resp = pduError, encodeError(err.Error())
				break
			}
			respType, resp = pduFetchResp, encodeFetchResp(d.Fetch(pmids))
		default:
			respType, resp = pduError, encodeError(fmt.Sprintf("unknown PDU type %d", typ))
		}
		if err := writePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener, disconnects clients, and waits for
// connection handlers to finish.
func (d *Daemon) Close() error {
	close(d.closed)
	var err error
	if d.ln != nil {
		err = d.ln.Close()
	}
	d.connMu.Lock()
	for conn := range d.conns {
		conn.Close()
	}
	d.connMu.Unlock()
	d.wg.Wait()
	return err
}

// ioReadFull is io.ReadFull; indirected for readability alongside bufio.
func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
