package model

import (
	"papimc/internal/expect"
	"papimc/internal/simtime"
	"papimc/internal/units"
)

// Per-rank traffic models for the 3D-FFT data re-sorting routines of
// Section IV. Each MPI rank holds (N/r)·(N/c)·N double-complex elements;
// one rank is pinned per socket on Summit, so these predictions are also
// per-socket. Strided phases run at a fraction of streaming bandwidth,
// which software prefetching partially recovers (the Fig. 7b speed-up).

const complexElem = units.ComplexBytes

// strided-access bandwidth efficiencies relative to streaming.
const (
	stridedEfficiency  = 0.30
	prefetchEfficiency = 0.70
)

// S1CFLoopNest1 predicts the first S1CF loop nest (Listing 5): a pure
// sequential copy in → tmp. Without prefetch the stores bypass the
// cache (1 read + 1 write per element); with -fprefetch-loop-arrays the
// dcbtst forces tmp to be read too (Fig. 6).
func S1CFLoopNest1(ctx Context, n, r, c int64) Traffic {
	ctx.validate()
	bytes := expect.RankElems(n, r, c) * complexElem
	reads := bytes
	if ctx.SoftwarePrefetch {
		reads *= 2
	}
	return Traffic{
		ReadBytes:  reads,
		WriteBytes: bytes,
		Duration:   ctx.duration(reads+bytes, 2*bytes, 0),
	}
}

// S1CFLoopNest2 predicts the second S1CF loop nest (Listing 7): tmp is
// read in strides of COLS elements while out is written sequentially.
// The strided stream disables store bypass, so out costs a read per
// write. Each strided tmp read fetches a 64-byte block holding 4
// elements; the other three are only usable if the block survives until
// the traversal returns — a working set of 5·16·N²/(r·c) bytes (Eq. 7).
// Past that boundary reads amplify toward 4 per element: up to 5 reads
// per write in total (Fig. 7a).
func S1CFLoopNest2(ctx Context, n, r, c int64) Traffic {
	ctx.validate()
	bytes := expect.RankElems(n, r, c) * complexElem
	reuseFootprint := 5 * complexElem * n * n / (r * c)
	amp := 1 + 3*lruMiss(reuseFootprint, ctx.EffectiveL3PerCore())
	tmpReads := int64(float64(bytes) * amp)
	reads := tmpReads + bytes // + out read-for-ownership
	eff := stridedEfficiency
	if ctx.SoftwarePrefetch {
		eff = prefetchEfficiency
	}
	d := ctx.duration(reads+bytes, 2*bytes, 0)
	d = simtime.Duration(float64(d) / eff)
	return Traffic{ReadBytes: reads, WriteBytes: bytes, Duration: d}
}

// S1CFCombined predicts the fused S1CF nest (Listing 8): in is read
// sequentially; out is written with a huge stride (PLANES·ROWS
// elements), a stream too sparse in address space to train, so its
// stores write-allocate: 2 reads + 1 write per element. The out blocks
// are revisited within a working set of COLS·(64+16) bytes, which fits
// any realistic cache, so no further amplification occurs.
func S1CFCombined(ctx Context, n, r, c int64) Traffic {
	ctx.validate()
	bytes := expect.RankElems(n, r, c) * complexElem
	outWorkingSet := n * (64 + complexElem)
	amp := 1 + 3*lruMiss(outWorkingSet, ctx.EffectiveL3PerCore())
	outReads := int64(float64(bytes) * amp)
	reads := bytes + outReads
	d := ctx.duration(reads+bytes, 2*bytes, 0)
	d = simtime.Duration(float64(d) / stridedEfficiency)
	return Traffic{ReadBytes: reads, WriteBytes: bytes, Duration: d}
}

// S2CF predicts the second-stage re-sort (Listing 9): the innermost
// traversal dimension matches the innermost layout dimension, so the
// stride's effect is amortized and the stores bypass: 1 read + 1 write
// per element (2 reads with prefetch), at near-streaming bandwidth
// (Fig. 9, and the higher bandwidth of phases 2/4 in Fig. 11).
func S2CF(ctx Context, n, r, c int64) Traffic {
	ctx.validate()
	bytes := expect.RankElems(n, r, c) * complexElem
	reads := bytes
	if ctx.SoftwarePrefetch {
		reads *= 2
	}
	d := ctx.duration(reads+bytes, 2*bytes, 0)
	d = simtime.Duration(float64(d) / 0.85) // mild penalty for the outer stride
	return Traffic{ReadBytes: reads, WriteBytes: bytes, Duration: d}
}
