package loopnest

import (
	"testing"

	"papimc/internal/trace"
)

// recorder captures the emitted access stream.
type recorder struct {
	accesses []trace.Access
	cores    []int
}

func (r *recorder) Access(core int, a trace.Access) {
	r.accesses = append(r.accesses, a)
	r.cores = append(r.cores, core)
}

// copyNest builds "for i in [0,n): out[i] = in[i]" over fresh regions.
func copyNest(n int64) (*Nest, trace.Region, trace.Region) {
	as := trace.NewAddressSpace()
	in := as.Alloc("in", n*8)
	out := as.Alloc("out", n*8)
	nest := &Nest{
		Name:  "copy",
		Loops: []Loop{{Name: "i", Extent: n}},
		Refs: []Ref{
			{Array: in, ElemSize: 8, Kind: trace.Load, Index: Var(0, 1)},
			{Array: out, ElemSize: 8, Kind: trace.Store, Index: Var(0, 1)},
		},
	}
	return nest, in, out
}

func TestExecuteCopy(t *testing.T) {
	nest, in, out := copyNest(4)
	var rec recorder
	nest.Execute(3, &rec)
	if len(rec.accesses) != 8 {
		t.Fatalf("emitted %d accesses, want 8", len(rec.accesses))
	}
	for i := 0; i < 4; i++ {
		ld, st := rec.accesses[2*i], rec.accesses[2*i+1]
		if ld.Kind != trace.Load || ld.Addr != in.Base+int64(i)*8 {
			t.Errorf("iter %d load = %+v", i, ld)
		}
		if st.Kind != trace.Store || st.Addr != out.Base+int64(i)*8 {
			t.Errorf("iter %d store = %+v", i, st)
		}
		if rec.cores[2*i] != 3 {
			t.Errorf("core = %d, want 3", rec.cores[2*i])
		}
	}
}

func TestSoftwarePrefetchEmitsPrefetchStores(t *testing.T) {
	nest, _, _ := copyNest(2)
	nest.SoftwarePrefetch = true
	var rec recorder
	nest.Execute(0, &rec)
	// per iteration: load, prefetch-store, store.
	if len(rec.accesses) != 6 {
		t.Fatalf("emitted %d accesses, want 6", len(rec.accesses))
	}
	if rec.accesses[1].Kind != trace.PrefetchStore || rec.accesses[2].Kind != trace.Store {
		t.Errorf("prefetch ordering wrong: %v %v", rec.accesses[1].Kind, rec.accesses[2].Kind)
	}
	if rec.accesses[1].Addr != rec.accesses[2].Addr {
		t.Error("prefetch must target the store address")
	}
}

func TestModVarCappedIndexing(t *testing.T) {
	// A[i%P][k] with P=2, N=3: rows recycle 0,1,0,1...
	as := trace.NewAddressSpace()
	a := as.Alloc("A", 2*3*8)
	nest := &Nest{
		Name:  "capped",
		Loops: []Loop{{Name: "i", Extent: 4}, {Name: "k", Extent: 3}},
		Refs: []Ref{
			{Array: a, ElemSize: 8, Kind: trace.Load, Index: Add(ModVar(0, 2, 3), Var(1, 1))},
		},
	}
	var rec recorder
	nest.Execute(0, &rec)
	if len(rec.accesses) != 12 {
		t.Fatalf("emitted %d accesses, want 12", len(rec.accesses))
	}
	// i=2 must revisit row 0: access 6 (i=2,k=0) equals access 0.
	if rec.accesses[6].Addr != rec.accesses[0].Addr {
		t.Errorf("modular row recycling broken: %d vs %d", rec.accesses[6].Addr, rec.accesses[0].Addr)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	as := trace.NewAddressSpace()
	small := as.Alloc("small", 16)
	cases := []struct {
		name string
		nest Nest
	}{
		{"no loops", Nest{Name: "x", Refs: []Ref{{Array: small, ElemSize: 8, Index: Expr{}}}}},
		{"zero extent", Nest{Name: "x", Loops: []Loop{{"i", 0}}, Refs: []Ref{{Array: small, ElemSize: 8}}}},
		{"no refs", Nest{Name: "x", Loops: []Loop{{"i", 1}}}},
		{"zero elem", Nest{Name: "x", Loops: []Loop{{"i", 1}}, Refs: []Ref{{Array: small}}}},
		{"bad loop ref", Nest{Name: "x", Loops: []Loop{{"i", 1}},
			Refs: []Ref{{Array: small, ElemSize: 8, Index: Var(5, 1)}}}},
		{"out of bounds", Nest{Name: "x", Loops: []Loop{{"i", 10}},
			Refs: []Ref{{Array: small, ElemSize: 8, Index: Var(0, 1)}}}},
		{"negative index", Nest{Name: "x", Loops: []Loop{{"i", 2}},
			Refs: []Ref{{Array: small, ElemSize: 8, Index: Expr{Terms: []Term{{Loop: 0, Coeff: -1}}}}}}},
	}
	for _, c := range cases {
		if err := c.nest.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	good, _, _ := copyNest(8)
	if err := good.Validate(); err != nil {
		t.Errorf("valid nest rejected: %v", err)
	}
}

func TestIterations(t *testing.T) {
	n := &Nest{Loops: []Loop{{"a", 3}, {"b", 4}, {"c", 5}}}
	if got := n.Iterations(); got != 60 {
		t.Errorf("Iterations = %d, want 60", got)
	}
}

// gemmNest builds the reference GEMM loop body accesses (Listing 3):
// loads A[i][k], B[k][j], store C[i][j].
func gemmNest(n int64) *Nest {
	as := trace.NewAddressSpace()
	a := as.Alloc("A", n*n*8)
	b := as.Alloc("B", n*n*8)
	c := as.Alloc("C", n*n*8)
	return &Nest{
		Name:  "gemm",
		Loops: []Loop{{"i", n}, {"j", n}, {"k", n}},
		Refs: []Ref{
			{Array: a, ElemSize: 8, Kind: trace.Load, Index: Add(Var(0, n), Var(2, 1))},
			{Array: b, ElemSize: 8, Kind: trace.Load, Index: Add(Var(2, n), Var(1, 1))},
			{Array: c, ElemSize: 8, Kind: trace.Store, AtDepth: 2, Index: Add(Var(0, n), Var(1, 1))},
		},
	}
}

func TestClassifyGEMM(t *testing.T) {
	n := gemmNest(64)
	if got := n.Classify(0); got != Sequential {
		t.Errorf("A classified %v, want sequential (stride 8)", got)
	}
	if got := n.Classify(1); got != Strided {
		t.Errorf("B classified %v, want strided (stride 8N)", got)
	}
	// C varies with j, which is its own enclosing loop: sequential.
	if got := n.Classify(2); got != Sequential {
		t.Errorf("C classified %v, want sequential", got)
	}
	if !n.HasStridedRef() {
		t.Error("GEMM must report a strided reference (matrix B)")
	}
}

func TestExecCountAndDepth(t *testing.T) {
	n := gemmNest(16)
	if got := n.ExecCount(0); got != 16*16*16 {
		t.Errorf("A exec count = %d", got)
	}
	if got := n.ExecCount(2); got != 16*16 {
		t.Errorf("C exec count = %d, want once per (i,j)", got)
	}
	var rec recorder
	n.Execute(0, &rec)
	var stores int
	for _, a := range rec.accesses {
		if a.Kind == trace.Store {
			stores++
		}
	}
	if stores != 16*16 {
		t.Errorf("executed %d stores, want 256 (one per (i,j))", stores)
	}
}

func TestRefDepthValidation(t *testing.T) {
	as := trace.NewAddressSpace()
	a := as.Alloc("a", 8*8*8)
	// A depth-1 ref may not use loop 1.
	bad := &Nest{
		Name:  "bad-depth",
		Loops: []Loop{{"i", 8}, {"j", 8}},
		Refs: []Ref{
			{Array: a, ElemSize: 8, Kind: trace.Store, AtDepth: 1, Index: Var(1, 1)},
		},
	}
	if err := bad.Validate(); err == nil {
		t.Error("expected error: depth-1 ref indexing loop 1")
	}
}

func TestInnerStrideBytes(t *testing.T) {
	n := gemmNest(64)
	if s, l := n.InnerStrideBytes(0); s != 8 || l != 2 {
		t.Errorf("A stride = %d on loop %d", s, l)
	}
	if s, l := n.InnerStrideBytes(1); s != 64*8 || l != 2 {
		t.Errorf("B stride = %d on loop %d", s, l)
	}
	if s, l := n.InnerStrideBytes(2); s != 8 || l != 1 {
		t.Errorf("C stride = %d on loop %d", s, l)
	}
}

func TestFootprintBytes(t *testing.T) {
	n := gemmNest(64)
	want := int64(64 * 64 * 8)
	for ref := 0; ref < 3; ref++ {
		if got := n.FootprintBytes(ref); got != want {
			t.Errorf("ref %d footprint = %d, want %d", ref, got, want)
		}
	}
	// Capped ref: footprint bounded by the modulus.
	as := trace.NewAddressSpace()
	a := as.Alloc("A", 2*3*8)
	capped := &Nest{
		Name:  "capped",
		Loops: []Loop{{"i", 100}, {"k", 3}},
		Refs:  []Ref{{Array: a, ElemSize: 8, Kind: trace.Load, Index: Add(ModVar(0, 2, 3), Var(1, 1))}},
	}
	if got := capped.FootprintBytes(0); got != 2*3*8 {
		t.Errorf("capped footprint = %d, want 48", got)
	}
}

func TestStoreDensityGap(t *testing.T) {
	n := gemmNest(64)
	// C stores once per k-loop of 64 iterations × 2 innermost-body refs.
	if got := n.StoreDensityGap(2); got != 64*2 {
		t.Errorf("C density gap = %d, want 128", got)
	}
	copyN, _, _ := copyNest(8)
	if got := copyN.StoreDensityGap(1); got != 2 {
		t.Errorf("copy density gap = %d, want 2", got)
	}
}

func TestExprEval(t *testing.T) {
	e := Add(Var(0, 10), ModVar(1, 3, 100), Expr{Const: 7})
	idx := []int64{2, 5} // 2*10 + (5%3)*100 + 7 = 20+200+7
	if got := e.Eval(idx); got != 227 {
		t.Errorf("Eval = %d, want 227", got)
	}
}

func TestExecutePanicsOnInvalidNest(t *testing.T) {
	bad := &Nest{Name: "bad"}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	bad.Execute(0, &recorder{})
}
