package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || PrefetchStore.String() != "prefetch-store" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestAllocDisjointAligned(t *testing.T) {
	s := NewAddressSpace()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", 5000)
	c := s.Alloc("c", 1)
	regions := []Region{a, b, c}
	for i, r := range regions {
		if r.Base%regionAlign != 0 {
			t.Errorf("region %d base %d not aligned", i, r.Base)
		}
		if r.Base == 0 {
			t.Errorf("region %d allocated at address 0", i)
		}
		for j, o := range regions {
			if i == j {
				continue
			}
			if r.Base < o.End() && o.Base < r.End() {
				t.Errorf("regions %s and %s overlap", r.Name, o.Name)
			}
		}
	}
}

func TestZeroValueAddressSpace(t *testing.T) {
	var s AddressSpace
	r := s.Alloc("x", 10)
	if r.Base == 0 {
		t.Error("zero-value address space allocated at 0")
	}
}

func TestRegionAddr(t *testing.T) {
	s := NewAddressSpace()
	r := s.Alloc("a", 64)
	if got := r.Addr(0); got != r.Base {
		t.Errorf("Addr(0) = %d, want %d", got, r.Base)
	}
	if got := r.Addr(63); got != r.Base+63 {
		t.Errorf("Addr(63) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds offset")
		}
	}()
	r.Addr(64)
}

func TestRegionContains(t *testing.T) {
	s := NewAddressSpace()
	r := s.Alloc("a", 64)
	if !r.Contains(r.Base) || !r.Contains(r.Base+63) {
		t.Error("Contains misses in-bounds addresses")
	}
	if r.Contains(r.Base-1) || r.Contains(r.Base+64) {
		t.Error("Contains accepts out-of-bounds addresses")
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	s := NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	s.Alloc("bad", 0)
}

func TestUsed(t *testing.T) {
	s := NewAddressSpace()
	if s.Used() != 0 {
		t.Errorf("fresh space Used = %d", s.Used())
	}
	s.Alloc("a", 1)
	if s.Used() != regionAlign {
		t.Errorf("Used = %d, want %d", s.Used(), regionAlign)
	}
}

// Property: any sequence of allocations yields pairwise-disjoint regions.
func TestAllocDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewAddressSpace()
		var regions []Region
		for i, sz := range sizes {
			if sz == 0 {
				continue
			}
			regions = append(regions, s.Alloc(string(rune('a'+i%26)), int64(sz)))
		}
		for i, r := range regions {
			for _, o := range regions[i+1:] {
				if r.Base < o.End() && o.Base < r.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
