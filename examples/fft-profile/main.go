// FFT profile: run the real distributed 3D-FFT (verifying its numerics
// against the local transform), then produce the Fig. 11-style
// multi-component profile of the GPU-accelerated pipeline — memory
// traffic, GPU power and InfiniBand activity per phase.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"papimc"
	"papimc/internal/fft"
	"papimc/internal/mpi"
	"papimc/internal/profile"
	"papimc/internal/simtime"
	"papimc/internal/xrand"
)

func main() {
	// Part 1: the real transform at a verifiable size.
	g := fft.Grid{N: 16, R: 2, C: 4}
	rng := xrand.New(3)
	global := make([]complex128, g.N*g.N*g.N)
	for i := range global {
		global[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	want := append([]complex128(nil), global...)
	fft.FFT3D(want, g.N)

	comm := mpi.New(g.Ranks(), nil, nil, nil)
	results := make([][]complex128, g.Ranks())
	comm.Run(func(r *mpi.Rank) {
		i, j := g.RankCoords(r.ID())
		results[r.ID()] = fft.Distributed3D(g, r, fft.LocalSlab(g, global, i, j))
	})
	worst := 0.0
	for id, out := range results {
		i, j := g.RankCoords(id)
		for off, v := range out {
			x, y, z := fft.OutputIndex(g, i, j, off)
			if d := cmplx.Abs(v - want[(x*g.N+y)*g.N+z]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("distributed 3D-FFT on %d goroutine ranks: max error vs local = %.2g\n\n", g.Ranks(), worst)

	// Part 2: the Fig. 11 profile of the GPU-accelerated pipeline at
	// paper scale (N=2016, 8×8 grid).
	tb, err := papimc.NewTestbed(papimc.Summit(), 2, papimc.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		log.Fatal(err)
	}
	phases, err := profile.FFTPhases(tb, profile.FFTAppConfig{N: 2016, GridR: 8, GridC: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := papimc.ProfileRun(lib, profile.FFTProfileEvents(tb), 10*simtime.Millisecond, phases)
	if err != nil {
		log.Fatal(err)
	}
	nCh := tb.Machine.Socket.MBAChannels
	fmt.Println("per-phase totals (one 3D-FFT rank):")
	fmt.Printf("%-16s %14s %14s %12s %12s\n", "phase", "mem read (MB)", "mem write (MB)", "GPU avg (W)", "IB recv (MB)")
	totals := res.PhaseTotals()
	for _, ph := range phases {
		vals, ok := totals[ph.Name]
		if !ok {
			continue
		}
		var r, w float64
		for i := 0; i < 2*nCh; i += 2 {
			r += vals[i]
			w += vals[i+1]
		}
		fmt.Printf("%-16s %14.1f %14.1f %12.0f %12.1f\n",
			ph.Name, r/1e6, w/1e6, vals[2*nCh]/1000, vals[2*nCh+1]*4/1e6)
	}
	fmt.Println("\nThe Fig. 11 shape: read burst → GPU power spike → write burst per")
	fmt.Println("dimension; strided resorts read ~2x what they write; IB only moves")
	fmt.Println("during the All2Alls.")
}
