// Command pcploadgen drives fetch load against the PCP serving tier and
// reports a concurrency sweep: throughput plus p50/p95/p99/p99.9
// latency at each worker count, in open- or closed-loop discipline.
//
// By default it builds a self-contained testbed (a simulated node with a
// live PMCD daemon and a pmproxy in front of it) and sweeps both tiers
// over real TCP connections. Point -target at an address to load an
// externally started daemon or proxy instead.
//
// In -sim mode latencies come from a seeded deterministic service-time
// model and time is virtual, so the whole report is bit-identical across
// runs — useful for diffing sweeps and for CI. Without -sim, latencies
// are wall-clock round-trip times.
//
// With -spec it instead runs a declarative workload model (see
// internal/workload): cohorts, rate curves, diurnal patterns and
// heavy-tailed request mixes expand into a deterministic request
// stream, executed in virtual time by default (millions of clients,
// seconds of wall clock) or against a real tier with -live. The run can
// be recorded to a compact trace with -record and replayed bit-exact
// with -replay.
//
// With -tenant N every connection identifies itself in-band as that
// tenant (protocol Version3), so a QoS-enabled pmproxy applies the
// tenant's quota; with -tenants "gold=1,guest=2" one concurrent stream
// runs per tenant and the report breaks out each tenant's ops, errors,
// sheds and latency quantiles — the two-tenant overload experiment in
// one command.
//
// Usage:
//
//	pcploadgen [-target both|daemon|proxy|ADDR] [-mode closed|open]
//	           [-sweep 1,2,4,8] [-ops 200] [-rate 50000] [-sim] [-seed 1]
//	           [-pipeline N] [-batch B] [-tenant N | -tenants name=id,...]
//	pcploadgen -spec FILE [-mult M] [-record FILE | -replay FILE]
//	           [-live [-target ADDR] [-workers N]]
//
// Example deterministic sweep and workload run:
//
//	pcploadgen -sim -mode open -rate 100000 -sweep 1,4,16
//	pcploadgen -spec examples/workload-specs/diurnal.yaml -mult 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"papimc/internal/arch"
	"papimc/internal/loadgen"
	"papimc/internal/node"
)

func main() {
	target := flag.String("target", "both", "daemon | proxy | both (self-hosted testbed), or a host:port to load externally")
	machine := flag.String("machine", "summit", "summit | tellico (self-hosted testbed)")
	mode := flag.String("mode", "closed", "closed | open")
	sweepFlag := flag.String("sweep", "1,2,4,8", "comma-separated worker counts")
	ops := flag.Int("ops", 200, "requests per worker (0 = run live mode for -duration)")
	duration := flag.Duration("duration", time.Second, "live-mode wall deadline when -ops is 0")
	rate := flag.Float64("rate", 50_000, "open-loop total arrival rate, requests/second")
	numPMIDs := flag.Int("pmids", 8, "number of metrics each request fetches")
	pipeline := flag.Int("pipeline", 0, "share N pipelined connections across all workers (0 = one lockstep-style connection per worker)")
	batch := flag.Int("batch", 1, "PMID sets per request: >1 bundles them into one FetchBatch round trip")
	sim := flag.Bool("sim", false, "deterministic simulated-time latencies")
	seed := flag.Uint64("seed", 1, "simulated-time model seed")
	base := flag.Duration("base", 10*time.Microsecond, "simulated-time mean service time")
	jitter := flag.Float64("jitter", 0.25, "simulated-time relative jitter")
	specPath := flag.String("spec", "", "workload spec file: run the workload model instead of a sweep")
	mult := flag.Float64("mult", 0, "workload rate multiplier (0 = spec's own, or the replayed trace's)")
	record := flag.String("record", "", "write the workload run's request trace to this file")
	replay := flag.String("replay", "", "replay a recorded trace instead of generating arrivals")
	live := flag.Bool("live", false, "execute the workload against a real tier in wall-clock time")
	workers := flag.Int("workers", 32, "live-mode executor connections")
	tenant := flag.Uint64("tenant", 0, "tag every connection with this tenant ID (0 = default tenant)")
	tenants := flag.String("tenants", "", "multi-tenant run: comma-separated name=id streams (e.g. gold=1,guest=2), one concurrent stream each")
	flag.Parse()

	if *specPath != "" || *replay != "" {
		workloadMain(*specPath, *replay, *record, *mult, *live, *target, *machine, *workers)
		return
	}

	sweep, err := parseSweep(*sweepFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcploadgen:", err)
		os.Exit(2)
	}
	opts := loadgen.Options{
		Ops:      *ops,
		Duration: *duration,
		Rate:     *rate,
		PMIDs:    pmidSet(*numPMIDs),
		Batch:    *batch,
	}
	switch *mode {
	case "closed":
		opts.Mode = loadgen.Closed
	case "open":
		opts.Mode = loadgen.Open
	default:
		fmt.Fprintf(os.Stderr, "pcploadgen: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *sim {
		opts.Sim = &loadgen.SimModel{Seed: *seed, Base: *base, Jitter: *jitter}
		if opts.Ops <= 0 {
			opts.Ops = 200
		}
	}

	// Resolve targets: self-hosted testbed tiers or an external address.
	type tier struct {
		name string
		addr string
	}
	var tiers []tier
	switch *target {
	case "daemon", "proxy", "both":
		m := arch.Summit()
		if strings.EqualFold(*machine, "tellico") {
			m = arch.Tellico()
		}
		tb, err := node.NewTestbed(m, 1, node.Options{DisableNoise: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcploadgen:", err)
			os.Exit(1)
		}
		defer tb.Close()
		if *target != "proxy" {
			tiers = append(tiers, tier{"daemon", tb.PMCDAddr})
		}
		if *target != "daemon" {
			_, addr, err := tb.StartProxy()
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcploadgen:", err)
				os.Exit(1)
			}
			tiers = append(tiers, tier{"proxy", addr})
		}
	default:
		tiers = append(tiers, tier{*target, *target})
	}

	if (*tenant != 0 || *tenants != "") && *pipeline > 0 {
		fmt.Fprintln(os.Stderr, "pcploadgen: -tenant/-tenants use one tagged connection per worker and cannot combine with -pipeline")
		os.Exit(2)
	}

	for _, tr := range tiers {
		fmt.Printf("target=%s addr=%s mode=%s pmids=%d", tr.name, tr.addr, *mode, *numPMIDs)
		if *pipeline > 0 {
			fmt.Printf(" pipeline=%d", *pipeline)
		}
		if *batch > 1 {
			fmt.Printf(" batch=%d", *batch)
		}
		if *tenant != 0 {
			fmt.Printf(" tenant=%d", *tenant)
		}
		if *sim {
			fmt.Printf(" sim(seed=%d base=%v jitter=%g)", *seed, *base, *jitter)
		}
		fmt.Println()
		if *tenants != "" {
			// Multi-tenant overload shape: one concurrent stream per
			// tenant at the first sweep entry's worker count, reported
			// per tenant (ops, errors, sheds, latency quantiles).
			loads, err := parseTenants(*tenants, tr.addr, opts, sweep[0])
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcploadgen:", err)
				os.Exit(2)
			}
			results, err := loadgen.RunTenants(loads)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcploadgen:", err)
				os.Exit(1)
			}
			fmt.Print(loadgen.TenantReport(results))
			fmt.Println()
			continue
		}
		factory := loadgen.DialFactory(tr.addr)
		if *pipeline > 0 {
			factory = loadgen.PipelinedFactory(tr.addr, *pipeline)
		}
		if *tenant != 0 {
			factory = loadgen.DialTenantFactory(tr.addr, uint32(*tenant))
		}
		results, err := loadgen.Sweep(factory, sweep, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcploadgen:", err)
			os.Exit(1)
		}
		fmt.Print(loadgen.Report(results))
		fmt.Println()
	}
}

// parseTenants expands "gold=1,guest=2" into one TenantLoad per stream,
// each running the shared options at the given worker count.
func parseTenants(spec, addr string, opts loadgen.Options, workers int) ([]loadgen.TenantLoad, error) {
	var loads []loadgen.TenantLoad
	opts.Workers = workers
	for _, part := range strings.Split(spec, ",") {
		name, idStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tenants entry %q (want name=id)", part)
		}
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad tenant id in -tenants entry %q: %v", part, err)
		}
		loads = append(loads, loadgen.TenantLoad{
			Name:    name,
			Tenant:  uint32(id),
			Factory: loadgen.DialTenantFactory(addr, uint32(id)),
			Opts:    opts,
		})
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("empty -tenants")
	}
	return loads, nil
}

func parseSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad worker count %q in -sweep", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -sweep")
	}
	return out, nil
}

func pmidSet(n int) []uint32 {
	if n <= 0 {
		n = 1
	}
	pmids := make([]uint32, n)
	for i := range pmids {
		pmids[i] = uint32(i + 1)
	}
	return pmids
}
