package pmproxy

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// admitStep is one admission decision in a policy table: the request
// and whether it must admit.
type admitStep struct {
	now      int64 // nanoseconds
	tenant   uint32
	cost     int
	priority int
	admit    bool
}

// runPolicyTable drives a policy through a step sequence, checking every
// decision and that every rejection is typed.
func runPolicyTable(t *testing.T, pol Policy, steps []admitStep) {
	t.Helper()
	for i, s := range steps {
		cost := s.cost
		if cost == 0 {
			cost = 1
		}
		err := pol.Admit(AdmitRequest{Tenant: s.tenant, Cost: cost, Priority: s.priority, Now: s.now})
		if (err == nil) != s.admit {
			t.Fatalf("step %d (%+v): err = %v, want admit=%v", i, s, err, s.admit)
		}
		if err != nil && !IsShed(err) {
			t.Fatalf("step %d: rejection %v is not typed ErrAdmissionRejected", i, err)
		}
	}
}

func TestAlwaysAdmitPolicy(t *testing.T) {
	pol, err := NewPolicy("always-admit", AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]admitStep, 0, 100)
	for i := 0; i < 100; i++ {
		steps = append(steps, admitStep{tenant: uint32(i % 3), admit: true})
	}
	runPolicyTable(t, pol, steps)
}

func TestRejectAllPolicy(t *testing.T) {
	pol, err := NewPolicy("reject-all", AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	runPolicyTable(t, pol, []admitStep{
		{tenant: 0, admit: false},
		{tenant: 1, cost: 5, admit: false},
		{now: 1e12, tenant: 2, admit: false},
	})
	if err := pol.Admit(AdmitRequest{Cost: 1}); !errors.Is(err, pcp.ErrOverload) {
		t.Fatalf("reject-all rejection must chain to pcp.ErrOverload, got %v", err)
	}
}

// TestTokenBucketPolicy pins the refill boundaries: a bucket starts
// full, refills at Rate from Now deltas only, caps at Burst, and a
// zero-rate tenant is always shed.
func TestTokenBucketPolicy(t *testing.T) {
	const sec = int64(1e9)
	cfg := AdmissionConfig{
		Tenants: map[uint32]TenantConfig{
			1: {Rate: 2, Burst: 3},
			2: {Rate: 0}, // zero quota: always shed
			3: {Rate: 0.5},
		},
		Default: TenantConfig{Rate: 1},
	}
	pol, err := NewPolicy("token-bucket", cfg)
	if err != nil {
		t.Fatal(err)
	}
	runPolicyTable(t, pol, []admitStep{
		// Tenant 1 starts with a full burst-3 bucket at t=0.
		{now: 0, tenant: 1, admit: true},
		{now: 0, tenant: 1, admit: true},
		{now: 0, tenant: 1, admit: true},
		{now: 0, tenant: 1, admit: false}, // bucket empty, no time passed
		// Half a second refills exactly one token (rate 2/s).
		{now: sec / 2, tenant: 1, admit: true},
		{now: sec / 2, tenant: 1, admit: false},
		// A long idle stretch caps at Burst, not Rate*dt.
		{now: 100 * sec, tenant: 1, cost: 3, admit: true},
		{now: 100 * sec, tenant: 1, admit: false},
		// Zero-rate tenant is shed even on its first request.
		{now: 0, tenant: 2, admit: false},
		{now: 1000 * sec, tenant: 2, admit: false},
		// Burst defaults to max(Rate, 1): rate 0.5 still gets one token.
		{now: 0, tenant: 3, admit: true},
		{now: 0, tenant: 3, admit: false},
		// Unknown tenants use Default (rate 1, burst 1).
		{now: 0, tenant: 42, admit: true},
		{now: 0, tenant: 42, admit: false},
		{now: sec, tenant: 42, admit: true},
	})

	// A cost above the burst can never admit; an exact-burst cost drains
	// the bucket in one decision.
	fresh, err := NewPolicy("token-bucket", cfg)
	if err != nil {
		t.Fatal(err)
	}
	runPolicyTable(t, fresh, []admitStep{
		{now: 0, tenant: 1, cost: 4, admit: false},
		{now: 0, tenant: 1, cost: 3, admit: true},
		{now: 0, tenant: 1, admit: false},
	})
}

// TestPriorityPolicy pins the inversion-free shed ordering: as the
// shared level rises, priority 3 sheds first (quarter of the bucket),
// priority 0 last (the whole bucket), and draining readmits in the same
// order.
func TestPriorityPolicy(t *testing.T) {
	const sec = int64(1e9)
	pol, err := NewPolicy("priority", AdmissionConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	runPolicyTable(t, pol, []admitStep{
		// Ceilings at depth 4: p3→1, p2→2, p1→3, p0→4.
		{now: 0, priority: 3, admit: true},  // level 1 == p3 ceiling
		{now: 0, priority: 3, admit: false}, // p3 full
		{now: 0, priority: 2, admit: true},  // level 2
		{now: 0, priority: 2, admit: false},
		{now: 0, priority: 1, admit: true}, // level 3
		{now: 0, priority: 1, admit: false},
		{now: 0, priority: 0, admit: true}, // level 4: bucket full
		{now: 0, priority: 0, admit: false},
		// Draining 1 token (0.25s at capacity 4/s) readmits only p0:
		// the high priority recovers first — no inversion.
		{now: sec / 4, priority: 3, admit: false},
		{now: sec / 4, priority: 1, admit: false},
		{now: sec / 4, priority: 0, admit: true},
		// Out-of-range priorities clamp into [0, 3].
		{now: sec / 4, priority: -5, admit: false}, // behaves as p0 (bucket refull)
		{now: 10 * sec, priority: 9, admit: true},  // fully drained; behaves as p3
		{now: 10 * sec, priority: 9, admit: false},
	})

	// Zero capacity disables priority shedding entirely.
	open, err := NewPolicy("priority", AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := open.Admit(AdmitRequest{Cost: 10, Priority: 3}); err != nil {
			t.Fatalf("unprovisioned priority policy shed request %d: %v", i, err)
		}
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	for _, want := range []string{"always-admit", "priority", "reject-all", "token-bucket"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("PolicyNames() = %v, missing %q", names, want)
		}
	}
	if _, err := NewPolicy("no-such-policy", AdmissionConfig{}); err == nil {
		t.Fatal("unknown policy name must error")
	} else if !strings.Contains(err.Error(), "no-such-policy") {
		t.Fatalf("unknown-policy error %q does not name the policy", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterPolicy must panic")
		}
	}()
	RegisterPolicy("always-admit", func(AdmissionConfig) Policy { return alwaysAdmit{} })
}

// TestTokenBucketCountingOracle stresses concurrent Admit against the
// exact oracle: at a frozen clock a burst-B bucket admits exactly
// floor(B) cost-1 requests no matter how the admits interleave. Run
// with -race this also proves the policy is data-race free.
func TestTokenBucketCountingOracle(t *testing.T) {
	const burst = 1000
	pol, err := NewPolicy("token-bucket", AdmissionConfig{
		Default: TenantConfig{Rate: 1e-9, Burst: burst},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 125 // 2000 attempts against 1000 tokens
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := pol.Admit(AdmitRequest{Tenant: 7, Cost: 1, Now: 1})
				if err == nil {
					admitted.Add(1)
				} else if IsShed(err) {
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != burst {
		t.Errorf("admitted %d, oracle says exactly %d", admitted.Load(), burst)
	}
	if admitted.Load()+shed.Load() != workers*perWorker {
		t.Errorf("admitted+shed = %d, want %d (every rejection typed)",
			admitted.Load()+shed.Load(), workers*perWorker)
	}
}

// startQoSBed builds a daemon+proxy pair with a token-bucket admission
// table: tenant 1 has quota, tenant 2 is quota-less but degradable,
// everyone else (including the default tenant) is quota-less and hard.
func startQoSBed(t *testing.T) (nestBed, *Proxy, string) {
	t.Helper()
	bed := startNestDaemon(t, sampleInterval)
	p := New(Config{
		Upstream:   bed.Addr,
		Clock:      bed.Clock,
		Interval:   sampleInterval,
		MaxRetries: 1,
		Admission: AdmissionConfig{
			Policy: "token-bucket",
			Tenants: map[uint32]TenantConfig{
				1: {Rate: 1000},
				2: {Rate: 0, Degradable: true},
			},
			Default: TenantConfig{Rate: 0},
		},
	})
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return bed, p, addr
}

// TestTenantConservation pins the per-tenant accounting law — every
// issued fetch set lands in exactly one of Admitted, Shed, StaleServed —
// across cache hits, policy sheds, degradable stale serves, and
// upstream-down stale serves, and the regression that the aggregate
// StaleServes/Shed counters equal the per-tenant sums.
func TestTenantConservation(t *testing.T) {
	bed, p, _ := startQoSBed(t)
	setA := []uint32{1}
	setB := []uint32{2}

	// Tenant 1 (quota'd) warms set A with a real upstream round trip.
	if _, err := p.FetchTenant(1, setA); err != nil {
		t.Fatal(err)
	}
	// Tenant 2 has no quota, but a fresh cache hit is never gated:
	// quotas meter upstream work, and a hit costs none.
	if _, err := p.FetchTenant(2, setA); err != nil {
		t.Fatalf("fresh cache hit was gated: %v", err)
	}

	bed.Clock.Advance(sampleInterval + simtime.Millisecond)

	// Stale cache + no quota + degradable: served stale, not rejected.
	if _, err := p.FetchTenant(2, setA); err != nil {
		t.Fatalf("degradable shed with cache must serve stale, got %v", err)
	}
	// No cache to degrade to: a counted, typed shed.
	if _, err := p.FetchTenant(2, setB); !IsShed(err) {
		t.Fatalf("uncached quota-less fetch: err = %v, want typed shed", err)
	}
	// Tenant 3 is not degradable: shed even though set A is cached.
	if _, err := p.FetchTenant(3, setA); !IsShed(err) {
		t.Fatalf("hard tenant shed: err = %v, want typed shed", err)
	}
	// Tenant 1's batch of two stale sets costs 2 tokens and admits.
	if _, err := p.FetchBatchTenant(1, [][]uint32{setA, setB}); err != nil {
		t.Fatal(err)
	}

	// Upstream down: tenant 1 is admitted by policy but degrades to a
	// stale serve, which must count in both scopes.
	bed.Daemon.Close()
	bed.Clock.Advance(sampleInterval + simtime.Millisecond)
	if _, err := p.FetchTenant(1, setA); err != nil {
		t.Fatalf("stale fallback with upstream down: %v", err)
	}

	want := map[uint32]TenantStats{
		1: {Tenant: 1, Issued: 4, Admitted: 3, StaleServed: 1},
		2: {Tenant: 2, Issued: 3, Admitted: 1, Shed: 1, StaleServed: 1},
		3: {Tenant: 3, Issued: 1, Shed: 1},
	}
	all := p.TenantStatsAll()
	if len(all) != len(want) {
		t.Fatalf("TenantStatsAll() = %+v, want %d tenants", all, len(want))
	}
	var sumShed, sumStale int64
	for _, ts := range all {
		w, ok := want[ts.Tenant]
		if !ok || ts != w {
			t.Errorf("tenant %d stats = %+v, want %+v", ts.Tenant, ts, w)
		}
		if ts.Issued != ts.Admitted+ts.Shed+ts.StaleServed {
			t.Errorf("tenant %d violates conservation: %+v", ts.Tenant, ts)
		}
		sumShed += ts.Shed
		sumStale += ts.StaleServed
	}
	st := p.Stats()
	if st.Shed != sumShed {
		t.Errorf("aggregate Shed = %d, per-tenant sum = %d", st.Shed, sumShed)
	}
	if st.StaleServes != sumStale {
		t.Errorf("aggregate StaleServes = %d, per-tenant sum = %d", st.StaleServes, sumStale)
	}
	if got := p.TenantStatsFor(99); got != (TenantStats{Tenant: 99}) {
		t.Errorf("unseen tenant stats = %+v, want zero", got)
	}
}

// TestTenantWirePath proves the QoS surface end to end over the wire:
// a Version3 client's tenant tag selects its quota, sheds come back as
// typed pcp.ErrOverload, a degradable tenant silently gets stale data,
// and Version1/Version2 peers see exactly the plain errors they always
// did.
func TestTenantWirePath(t *testing.T) {
	bed, p, addr := startQoSBed(t)
	setA := []uint32{1}

	// Quota-less tenant 3 over a Version3 connection: typed overload.
	c3, err := pcp.DialTenant(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	_, err = c3.Fetch(setA)
	if !errors.Is(err, pcp.ErrOverload) {
		t.Fatalf("shed over wire: err = %v, want pcp.ErrOverload", err)
	}
	var se *pcp.StatusError
	if !errors.As(err, &se) || se.Status != pcp.StatusOverload {
		t.Fatalf("shed over wire: err = %v, want *StatusError{StatusOverload}", err)
	}

	// Tenant 1 warms the cache; tenant 2 (degradable) then gets the
	// stale answer once it ages out, with no client-visible error.
	c1, err := pcp.DialTenant(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	warm, err := c1.Fetch(setA)
	if err != nil {
		t.Fatal(err)
	}
	bed.Clock.Advance(sampleInterval + simtime.Millisecond)
	c2, err := pcp.DialTenant(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	stale, err := c2.Fetch(setA)
	if err != nil {
		t.Fatalf("degradable tenant must get stale data, not %v", err)
	}
	if stale.Timestamp != warm.Timestamp {
		t.Errorf("stale answer timestamp %d, want original %d", stale.Timestamp, warm.Timestamp)
	}
	if got := p.TenantStatsFor(2); got.StaleServed != 1 {
		t.Errorf("tenant 2 stats = %+v, want StaleServed 1", got)
	}

	// Version2 and Version1 peers carry no tenant: they account to the
	// quota-less default tenant and see a plain error PDU — no typed
	// status, no behaviour change on old wires.
	for _, maxV := range []uint32{pcp.Version2, pcp.Version1} {
		c, err := pcp.DialMax(addr, maxV)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Fetch([]uint32{7, 8}) // distinct set: never cache-hits
		if err == nil {
			t.Fatalf("v%d quota-less fetch must fail", maxV)
		}
		if errors.Is(err, pcp.ErrOverload) {
			t.Errorf("v%d peer got a typed overload; old wires must see plain errors", maxV)
		}
		if !strings.Contains(err.Error(), "admission rejected") {
			t.Errorf("v%d error %q does not carry the rejection message", maxV, err)
		}
		c.Close()
	}
	if got := p.TenantStatsFor(DefaultTenant); got.Shed != 2 {
		t.Errorf("default tenant stats = %+v, want Shed 2", got)
	}
}
