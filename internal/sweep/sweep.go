// Package sweep is the deterministic parallel executor behind every
// figure regeneration: it fans the independent tasks of a sweep (problem
// sizes, repeated runs, whole figures) out across a bounded worker pool
// and reassembles the results in task order.
//
// Determinism is by construction, not by luck. Each task must derive all
// of its randomness from Seed(base, index) — its own substream of the
// sweep's base seed — and share no mutable state with other tasks, so a
// task computes the same result no matter which worker runs it or when.
// The executor then only reorders scheduling, never results: output with
// workers=N is byte-identical to workers=1, which the figures package
// asserts in its determinism test.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Seed derives the seed of task index from a sweep's base seed. It is a
// SplitMix64 stream jump: adjacent indices yield statistically
// independent substreams, so per-task generators do not correlate.
func Seed(base uint64, index int) uint64 {
	const gamma = 0x9E3779B97F4A7C15
	z := base + uint64(index+1)*gamma
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed2 derives the seed of element (i, j) of a two-level substream
// hierarchy — cohort i, client j in the workload model's use — by
// re-splitting substream i. Rows never collide with each other or with
// the single-level Seed stream of the same base, so a million clients
// across many cohorts all draw from statistically independent streams.
func Seed2(base uint64, i, j int) uint64 {
	return Seed(Seed(base, i), j)
}

// Workers resolves a -j style parallelism request: values below 1 mean
// "one worker per available CPU" (GOMAXPROCS).
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Map runs fn(0..n-1) on up to workers goroutines and returns the
// results in index order. fn must be safe for concurrent invocation and
// derive any randomness from its index (see Seed). If any invocation
// fails, Map waits for the remaining tasks and returns the error of the
// lowest failing index — the same error serial execution would surface —
// with its index attached.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		// Serial fast path: same code path the workers run, no goroutines.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("sweep: task %d: %w", i, err)
			}
			results[i] = v
		}
		return results, nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		errIdx   int
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := fn(i)
				if err != nil {
					errMu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					errMu.Unlock()
					continue
				}
				results[i] = v
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("sweep: task %d: %w", errIdx, firstErr)
	}
	return results, nil
}

// Each is Map for tasks with no result value.
func Each(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}
