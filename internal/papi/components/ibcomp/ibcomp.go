// Package ibcomp implements PAPI's infiniband component: the HCA port
// data counters of Table II (infiniband:::mlx5_[0|1]_1_ext:port_recv_data
// and port_xmit_data). As on real hardware, the counters tick in 4-byte
// words.
package ibcomp

import (
	"errors"
	"fmt"
	"strings"

	"papimc/internal/ib"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

// Component exposes a node's HCA port counters.
type Component struct {
	ports  []*ib.Port
	byName map[string]*ib.Port
}

// New builds the component over the node's ports.
func New(ports []*ib.Port) *Component {
	c := &Component{ports: ports, byName: make(map[string]*ib.Port)}
	for _, p := range ports {
		c.byName[p.Name()] = p
	}
	return c
}

// Name implements papi.Component.
func (c *Component) Name() string { return "infiniband" }

func eventNames(p *ib.Port) []string {
	return []string{p.Name() + ":port_recv_data", p.Name() + ":port_xmit_data"}
}

func info(name string) papi.EventInfo {
	dir := "received"
	if strings.HasSuffix(name, "xmit_data") {
		dir = "transmitted"
	}
	return papi.EventInfo{
		Name:        name,
		Description: fmt.Sprintf("4-byte words %s on the port", dir),
		Units:       "words(4B)",
	}
}

// ListEvents implements papi.Component.
func (c *Component) ListEvents() ([]papi.EventInfo, error) {
	var out []papi.EventInfo
	for _, p := range c.ports {
		for _, n := range eventNames(p) {
			out = append(out, info(n))
		}
	}
	return out, nil
}

// parse resolves a native name to a port and direction.
func (c *Component) parse(native string) (*ib.Port, bool, error) {
	i := strings.LastIndex(native, ":")
	if i < 0 {
		return nil, false, fmt.Errorf("%w: %q", papi.ErrNoEvent, native)
	}
	port, ok := c.byName[native[:i]]
	if !ok {
		return nil, false, fmt.Errorf("%w: unknown port in %q", papi.ErrNoEvent, native)
	}
	switch native[i+1:] {
	case "port_recv_data":
		return port, false, nil
	case "port_xmit_data":
		return port, true, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown counter in %q", papi.ErrNoEvent, native)
	}
}

// Describe implements papi.Component.
func (c *Component) Describe(native string) (papi.EventInfo, error) {
	if _, _, err := c.parse(native); err != nil {
		return papi.EventInfo{}, err
	}
	return info(native), nil
}

// NewCounters implements papi.Component.
func (c *Component) NewCounters(natives []string) (papi.Counters, error) {
	set := &counters{}
	for _, n := range natives {
		port, xmit, err := c.parse(n)
		if err != nil {
			return nil, err
		}
		set.ports = append(set.ports, port)
		set.xmit = append(set.xmit, xmit)
	}
	return set, nil
}

type counters struct {
	ports  []*ib.Port
	xmit   []bool
	closed bool
}

func (s *counters) ReadAt(t simtime.Time) ([]uint64, error) {
	if s.closed {
		return nil, errors.New("ibcomp: counters closed")
	}
	out := make([]uint64, len(s.ports))
	for i, p := range s.ports {
		recv, xmit := p.Counters()
		if s.xmit[i] {
			out[i] = xmit
		} else {
			out[i] = recv
		}
	}
	return out, nil
}

func (s *counters) Close() error {
	s.closed = true
	return nil
}
