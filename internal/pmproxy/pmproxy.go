// Package pmproxy implements the pmproxy analogue: a daemon that speaks
// the PCP PDU protocol on both sides and multiplexes many unprivileged
// clients onto one upstream PMCD connection.
//
// The fan-out win comes from coalescing: the upstream daemon only
// refreshes its counter view once per sampling interval, so identical
// fetch requests landing within one interval are served from a single
// upstream round trip — M clients cost O(1) upstream fetches per
// interval instead of M. Concurrent identical requests additionally
// share one in-flight round trip (single-flight), the name table is
// cached, upstream round trips carry a wall-clock deadline with bounded
// retry/backoff, and when the upstream is down the proxy degrades
// gracefully by serving the last good answer with its original (stale)
// timestamp rather than failing the client.
package pmproxy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// ErrUpstreamDown is returned when the upstream is unreachable after
// retries and no cached answer is available (or stale serving is off).
var ErrUpstreamDown = errors.New("pmproxy: upstream unavailable")

// Config tunes a Proxy.
type Config struct {
	// Upstream is the PMCD daemon address. Ignored when Dial is set.
	Upstream string
	// Dial overrides how the upstream connection is (re)established.
	Dial func() (*pcp.Client, error)
	// Clock, when set, provides the coalescing timebase (the simulated
	// deployments share the daemon's clock). When nil, wall time is used
	// with Interval read as nanoseconds.
	Clock *simtime.Clock
	// Interval is the upstream daemon's sampling interval: answers
	// younger than this are served from cache without an upstream round
	// trip. Zero disables interval coalescing (single-flight still
	// applies).
	Interval simtime.Duration
	// Timeout bounds each upstream round trip; on expiry the connection
	// is dropped and redialled. Zero means no deadline.
	Timeout time.Duration
	// MaxRetries is how many times a failed upstream operation is
	// retried (with doubling backoff) before giving up.
	MaxRetries int
	// Backoff is the initial delay between retries.
	Backoff time.Duration
	// DisableStale makes the proxy fail requests when the upstream is
	// down instead of serving the last good (timestamped) answer.
	DisableStale bool
}

// Stats is a snapshot of the proxy's counters.
type Stats struct {
	ClientFetches   int64 // fetch PDUs received from clients
	UpstreamFetches int64 // fetch round trips that reached the daemon
	CoalescedHits   int64 // client fetches answered from the interval cache
	StaleServes     int64 // answers served from cache because upstream was down
	UpstreamErrors  int64 // failed upstream operations (before retry)
	Redials         int64 // upstream connections established
}

// CoalescingRatio is client fetches per upstream fetch — the fan-out
// win. With no traffic it reports 1.
func (s Stats) CoalescingRatio() float64 {
	if s.UpstreamFetches == 0 {
		return 1
	}
	return float64(s.ClientFetches) / float64(s.UpstreamFetches)
}

// entry is one coalescing-cache slot. Its mutex doubles as the
// single-flight gate: the holder performs the upstream round trip while
// identical requests queue behind it and then hit the freshened cache.
type entry struct {
	mu        sync.Mutex
	res       pcp.FetchResult
	fetchedAt int64 // proxy timebase, not the daemon timestamp
	valid     bool
}

// maxCacheEntries bounds the coalescing cache; on overflow the whole
// cache is reset (distinct pmid-sets are rare in practice).
const maxCacheEntries = 1024

// Proxy is the daemon. Create with New, then Start.
type Proxy struct {
	cfg Config

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}

	upMu sync.Mutex
	up   *pcp.Client

	nameMu  sync.Mutex
	names   []pcp.NameEntry
	namesAt int64
	hasName bool

	cacheMu sync.Mutex
	cache   map[string]*entry

	clientFetches   atomic.Int64
	upstreamFetches atomic.Int64
	coalescedHits   atomic.Int64
	staleServes     atomic.Int64
	upstreamErrors  atomic.Int64
	redials         atomic.Int64
}

// New builds a proxy; it does not touch the network until Start (or the
// first request forces an upstream dial).
func New(cfg Config) *Proxy {
	return &Proxy{
		cfg:    cfg,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		cache:  make(map[string]*entry),
	}
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		ClientFetches:   p.clientFetches.Load(),
		UpstreamFetches: p.upstreamFetches.Load(),
		CoalescedHits:   p.coalescedHits.Load(),
		StaleServes:     p.staleServes.Load(),
		UpstreamErrors:  p.upstreamErrors.Load(),
		Redials:         p.redials.Load(),
	}
}

// now reads the proxy's coalescing timebase.
func (p *Proxy) now() int64 {
	if p.cfg.Clock != nil {
		return int64(p.cfg.Clock.Now())
	}
	return time.Now().UnixNano()
}

// fresh reports whether a cache write at t0 is still within the
// upstream's sampling interval at time t1.
func (p *Proxy) fresh(t0, t1 int64) bool {
	return p.cfg.Interval > 0 && t1-t0 < int64(p.cfg.Interval)
}

// upstream returns the live upstream connection, dialling if needed.
func (p *Proxy) upstream() (*pcp.Client, error) {
	p.upMu.Lock()
	defer p.upMu.Unlock()
	if p.up != nil {
		return p.up, nil
	}
	dial := p.cfg.Dial
	if dial == nil {
		dial = func() (*pcp.Client, error) { return pcp.Dial(p.cfg.Upstream) }
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	c.SetTimeout(p.cfg.Timeout)
	p.redials.Add(1)
	p.up = c
	return c, nil
}

// dropUpstream discards a connection after a failure; a timed-out round
// trip leaves the stream mid-PDU, so the connection cannot be reused.
func (p *Proxy) dropUpstream(c *pcp.Client) {
	p.upMu.Lock()
	if p.up == c {
		p.up = nil
	}
	p.upMu.Unlock()
	c.Close()
}

// withUpstream runs op against the upstream connection with bounded
// retry and doubling backoff, redialling after each failure.
func (p *Proxy) withUpstream(op func(*pcp.Client) error) error {
	var lastErr error
	backoff := p.cfg.Backoff
	for attempt := 0; ; attempt++ {
		c, err := p.upstream()
		if err == nil {
			if err = op(c); err == nil {
				return nil
			}
			p.dropUpstream(c)
		}
		lastErr = err
		p.upstreamErrors.Add(1)
		if attempt >= p.cfg.MaxRetries {
			return fmt.Errorf("%w: %v", ErrUpstreamDown, lastErr)
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// keyBufPool holds scratch buffers for encoding cache keys: the encoded
// request is looked up via the map[string(bytes)] fast path, so the
// common hit case allocates neither the buffer nor the key string.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Fetch serves one client fetch through the coalescing cache. Exported
// for in-process use; the network handler goes through it too.
func (p *Proxy) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	p.clientFetches.Add(1)
	bp := keyBufPool.Get().(*[]byte)
	key := pcp.AppendFetchReq((*bp)[:0], pmids)
	p.cacheMu.Lock()
	e, ok := p.cache[string(key)]
	if !ok {
		if len(p.cache) >= maxCacheEntries {
			p.cache = make(map[string]*entry)
		}
		e = &entry{}
		p.cache[string(key)] = e
	}
	p.cacheMu.Unlock()
	*bp = key
	keyBufPool.Put(bp)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.valid && p.fresh(e.fetchedAt, p.now()) {
		p.coalescedHits.Add(1)
		return e.res, nil
	}
	var res pcp.FetchResult
	err := p.withUpstream(func(c *pcp.Client) error {
		var ferr error
		res, ferr = c.Fetch(pmids)
		return ferr
	})
	if err != nil {
		if e.valid && !p.cfg.DisableStale {
			// Graceful degradation: the answer is stale but carries its
			// original daemon timestamp, so the client can tell.
			p.staleServes.Add(1)
			return e.res, nil
		}
		return pcp.FetchResult{}, err
	}
	p.upstreamFetches.Add(1)
	e.res, e.fetchedAt, e.valid = res, p.now(), true
	return res, nil
}

// Names serves the upstream name table through the proxy's cache.
func (p *Proxy) Names() ([]pcp.NameEntry, error) {
	p.nameMu.Lock()
	defer p.nameMu.Unlock()
	if p.hasName && p.fresh(p.namesAt, p.now()) {
		return p.names, nil
	}
	var entries []pcp.NameEntry
	err := p.withUpstream(func(c *pcp.Client) error {
		var nerr error
		entries, nerr = c.Names()
		return nerr
	})
	if err != nil {
		if p.hasName && !p.cfg.DisableStale {
			p.staleServes.Add(1)
			return p.names, nil
		}
		return nil, err
	}
	p.names, p.namesAt, p.hasName = entries, p.now(), true
	return entries, nil
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves clients in the
// background until Close. It returns the bound address.
func (p *Proxy) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pmproxy: listen: %w", err)
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
				continue
			}
		}
		p.connMu.Lock()
		p.conns[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				conn.Close()
				p.connMu.Lock()
				delete(p.conns, conn)
				p.connMu.Unlock()
			}()
			p.serveConn(conn)
		}()
	}
}

// serveConn speaks the daemon side of the PDU protocol to one client.
func (p *Proxy) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := pcp.ServerHandshake(br, bw); err != nil {
		return
	}
	// Per-connection scratch reused across requests so steady-state
	// coalesced serving does not allocate.
	var (
		payloadBuf []byte
		respBuf    []byte
		pmids      []uint32
	)
	for {
		typ, payload, err := pcp.ReadPDUInto(br, payloadBuf)
		if err != nil {
			return
		}
		payloadBuf = payload
		var respType uint8
		var resp []byte
		switch typ {
		case pcp.PDUNamesReq:
			entries, err := p.Names()
			if err != nil {
				respType, resp = pcp.PDUError, pcp.AppendError(respBuf[:0], err.Error())
				break
			}
			respType, resp = pcp.PDUNamesResp, pcp.AppendNamesResp(respBuf[:0], entries)
		case pcp.PDUFetchReq:
			pmids, err = pcp.DecodeFetchReqInto(payload, pmids[:0])
			if err != nil {
				respType, resp = pcp.PDUError, pcp.AppendError(respBuf[:0], err.Error())
				break
			}
			res, err := p.Fetch(pmids)
			if err != nil {
				respType, resp = pcp.PDUError, pcp.AppendError(respBuf[:0], err.Error())
				break
			}
			respType, resp = pcp.PDUFetchResp, pcp.AppendFetchResp(respBuf[:0], res)
		default:
			respType, resp = pcp.PDUError, pcp.AppendError(respBuf[:0], fmt.Sprintf("unknown PDU type %d", typ))
		}
		respBuf = resp
		if err := pcp.WritePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener, disconnects clients, drops the upstream
// connection, and waits for handlers to finish. It is idempotent.
func (p *Proxy) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.closed)
		if p.ln != nil {
			err = p.ln.Close()
		}
		p.connMu.Lock()
		for conn := range p.conns {
			conn.Close()
		}
		p.connMu.Unlock()
		p.upMu.Lock()
		if p.up != nil {
			p.up.Close()
			p.up = nil
		}
		p.upMu.Unlock()
		p.wg.Wait()
	})
	return err
}
