package perfuncore

import (
	"errors"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/nest"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

// rig builds a two-socket Tellico with ideal controllers.
func rig(cred nest.Credential) (*Component, []*mem.Controller, *simtime.Clock) {
	clock := simtime.NewClock()
	m := arch.Tellico()
	var pmus []*nest.PMU
	var ctls []*mem.Controller
	for s := 0; s < m.SocketsPerNode; s++ {
		ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
		ctls = append(ctls, ctl)
		pmus = append(pmus, nest.NewPMU(m, s, ctl))
	}
	return New(pmus, cred), ctls, clock
}

func TestListEventsBothSockets(t *testing.T) {
	c, _, _ := rig(nest.RootCredential())
	events, err := c.ListEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 32 { // 2 sockets × 8 channels × 2 directions
		t.Fatalf("ListEvents len = %d, want 32", len(events))
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
		if e.Units != "bytes" {
			t.Errorf("event %s units = %q", e.Name, e.Units)
		}
	}
	if !names["power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"] {
		t.Error("socket-0 event missing")
	}
	// Tellico: 16 cores × 4 SMT = 64 threads/socket, so socket 1 starts
	// at cpu 64.
	if !names["power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=64"] {
		t.Error("socket-1 event missing")
	}
}

func TestDescribe(t *testing.T) {
	c, _, _ := rig(nest.RootCredential())
	info, err := c.Describe("power9_nest_mba3::PM_MBA3_WRITE_BYTES:cpu=0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Instant {
		t.Error("nest counters must not be instant events")
	}
	if _, err := c.Describe("power9_nest_mba9::PM_MBA9_READ_BYTES:cpu=0"); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("bad channel err = %v", err)
	}
	if _, err := c.Describe("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=999"); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("bad cpu err = %v", err)
	}
}

func TestPermissionDenied(t *testing.T) {
	c, _, _ := rig(nest.UserCredential())
	_, err := c.NewCounters([]string{"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"})
	if !errors.Is(err, papi.ErrPermission) {
		t.Errorf("err = %v, want papi.ErrPermission", err)
	}
}

func TestCountersReadPerSocket(t *testing.T) {
	c, ctls, clock := rig(nest.RootCredential())
	// Socket 0: 640 read bytes on channel 0; socket 1: 1280 on channel 0.
	ctls[0].AddTraffic(true, 0, 640, 0, 0)
	ctls[1].AddTraffic(true, 0, 1280, 0, 0)
	ctrs, err := c.NewCounters([]string{
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0",
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=64",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrs.Close()
	vals, err := ctrs.ReadAt(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	// 640 bytes = 10 tx interleaved over 8 channels: channel 0 gets 2 tx.
	if vals[0] != 128 {
		t.Errorf("socket0 ch0 = %d, want 128", vals[0])
	}
	// 1280 bytes = 20 tx: channels 0-3 get 3 tx, rest 2; ch0 = 192.
	if vals[1] != 192 {
		t.Errorf("socket1 ch0 = %d, want 192", vals[1])
	}
}

func TestReadAfterClose(t *testing.T) {
	c, _, clock := rig(nest.RootCredential())
	ctrs, err := c.NewCounters([]string{"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"})
	if err != nil {
		t.Fatal(err)
	}
	ctrs.Close()
	if _, err := ctrs.ReadAt(clock.Now()); err == nil {
		t.Error("expected error reading closed counters")
	}
}
