package testutil

import (
	"testing"

	"papimc/internal/cluster"
	"papimc/internal/pcp"
)

func TestStartClusterNodes(t *testing.T) {
	bed := StartClusterNodes(t, 20, 0xBED)
	if len(bed.Nodes) != 20 {
		t.Fatalf("got %d nodes", len(bed.Nodes))
	}
	seeds := make(map[uint64]bool)
	widths := make(map[int]bool)
	bed.Clock.Advance(SampleInterval + 1)
	ts := int64(bed.Clock.Now())
	for _, n := range bed.Nodes {
		if seeds[n.Seed] {
			t.Errorf("duplicate seed %#x", n.Seed)
		}
		seeds[n.Seed] = true
		names := n.Daemon.Names()
		widths[len(names)] = true
		// Every node samples the shared clock: one fetch certifies.
		res := n.Daemon.Fetch([]uint32{1})
		if res.Timestamp != ts {
			t.Errorf("%s: timestamp %d, want %d (shared clock broken)", n.Name, res.Timestamp, ts)
		}
		if res.Values[0].Status != pcp.StatusOK || res.Values[0].Value != cluster.MetricValue(n.Seed, 1, ts) {
			t.Errorf("%s: value does not certify", n.Name)
		}
	}
	if len(widths) < 2 {
		t.Error("20 nodes share one namespace width; arch variation is broken")
	}
}
