// Package chaos is the fault-injection property harness for the serving
// stack: it drives a live daemon → pmproxy → client testbed through a
// seeded faultconn schedule and checks the stack's safety contract on
// every operation.
//
// The contract under ANY fault schedule:
//
//   - A served fetch result is never torn or corrupt: every value is
//     consistent with the result's timestamp. The testbed's metrics are
//     self-certifying — metric pmid's value at daemon time t is
//     certVal(pmid, t), a full-avalanche mix — so a torn snapshot, a
//     re-stamped stale answer, or an undetected corruption breaks the
//     value↔timestamp binding and is caught by recomputation.
//   - A result is either fresh (timestamp == the shared clock's now) or
//     declared stale (its original, older timestamp) — never silently
//     re-stamped.
//   - A failed fetch is a clean, typed error (pmproxy.ErrUpstreamDown),
//     not a hang, a partial result, or a raw transport error.
//   - The proxy's Stats exactly account for every injected fault:
//     ClientFetches = CoalescedHits + UpstreamFetches + StaleServes +
//     observed errors; UpstreamErrors = Retries + Exhausted; every
//     exhaustion surfaces as exactly one stale serve (fetch or name) or
//     one observed ErrUpstreamDown; with corruption disabled,
//     UpstreamErrors equals the injector's fatal fault count exactly.
//   - The archive Recorder tee never writes a partial or torn row: the
//     recording always re-reads cleanly and every archived row is
//     self-consistent.
//
// Corruption is the one deliberate hole: the PDU protocol carries no
// checksum (matching PCP's trust model — the transport is assumed
// reliable), so a flipped payload byte can decode into a plausible wrong
// value — and because the proxy caches what it decodes, one corruption
// can be served many times within an interval. With CorruptEvery (or
// exact Corrupt faults) enabled the checks run in tolerant mode:
// inconsistencies may only appear when corruption actually fired, and
// errors stay clean, but per-value consistency is not a hard invariant
// and there is no tight numeric bound (cache amplification). DESIGN.md
// section 11 documents this boundary.
//
// Determinism: a trial's entire behaviour — fault trace, stats, verdict
// — is a pure function of (Options.Seed, trial index). Each trial runs
// single-threaded against its own testbed, trials parallelize via
// sweep.Map with in-order reassembly, and all randomness (op mix, pmid
// subsets, clock advances, fault offsets, retry jitter) derives from
// SplitMix64 substreams of the trial seed. The same seed reproduces the
// same report at any worker count.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"papimc/internal/archive"
	"papimc/internal/faultconn"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
	"papimc/internal/sweep"
	"papimc/internal/xrand"
)

// NumMetrics is the testbed's metric count; pmids are 1..NumMetrics.
const NumMetrics = 8

// Interval is the testbed daemon's sampling interval (simulated time).
const Interval = 10 * simtime.Millisecond

// Options configures a chaos run.
type Options struct {
	// Seed is the base seed; trial i derives sweep.Seed(Seed, i).
	Seed uint64
	// Trials is how many independent testbeds to drive.
	Trials int
	// Ops is the operation count per trial.
	Ops int
	// Workers parallelizes trials (never operations within a trial);
	// sweep.Workers semantics: 0 = GOMAXPROCS, capped.
	Workers int
	// Schedule is the fault plan, shared by all trials (each trial's
	// injector draws from its own seed substream). A zero MaxStall is
	// defaulted to 100ms so stall-heavy sweeps stay fast.
	Schedule faultconn.Schedule
	// Timeout bounds each proxy→daemon round trip (wall clock). Zero
	// means 2s — generous, so only injected faults fail operations.
	Timeout time.Duration
	// BreakStale simulates a stale-serving bug (results re-stamped to
	// now) to prove the suite detects it. Test-only.
	BreakStale bool
	// Trial, when >= 0, runs only that single trial index — the replay
	// path for a failure line. -1 (or 0 with Trials set) runs all.
	Trial int
}

// Trial is one trial's observed outcome. All fields are deterministic
// functions of (base seed, index).
type Trial struct {
	Index int
	Seed  uint64

	Fetches    int // proxy.Fetch calls (direct + recorder tee)
	NameOps    int
	FetchErrs  int
	NameErrs   int
	Stale      int // successes served with an old (declared) timestamp
	Inconsist  int // values failing the certVal check (corruption mode)
	Records    int // rows in the recorder's archive after replay
	Faults     faultconn.Stats
	Proxy      pmproxy.Stats
	Trace      []faultconn.Fault
	Violations []string
}

// Report is a full run's outcome.
type Report struct {
	Opts   Options
	Trials []Trial
}

// Failed reports whether any trial violated an invariant.
func (r *Report) Failed() bool {
	for _, t := range r.Trials {
		if len(t.Violations) > 0 {
			return true
		}
	}
	return false
}

// String renders the deterministic per-trial report. Two runs with the
// same options produce byte-identical output at any worker count.
func (r *Report) String() string {
	var b strings.Builder
	for _, t := range r.Trials {
		fmt.Fprintf(&b, "trial %02d seed=%#016x ops=%d fetches=%d names=%d errs=%d/%d stale=%d inconsistent=%d records=%d faults[%s] proxy[fetch=%d up=%d coal=%d stale=%d/%d uerr=%d retry=%d exh=%d redial=%d]\n",
			t.Index, t.Seed, t.Fetches+t.NameOps, t.Fetches, t.NameOps,
			t.FetchErrs, t.NameErrs, t.Stale, t.Inconsist, t.Records, t.Faults,
			t.Proxy.ClientFetches, t.Proxy.UpstreamFetches, t.Proxy.CoalescedHits,
			t.Proxy.StaleServes, t.Proxy.StaleNameServes, t.Proxy.UpstreamErrors,
			t.Proxy.Retries, t.Proxy.Exhausted, t.Proxy.Redials)
		for _, f := range t.Trace {
			fmt.Fprintf(&b, "  fault %s\n", f)
		}
		for _, v := range t.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// certGamma decorrelates the pmid and timestamp inputs of certVal.
const certGamma = 0x9E3779B97F4A7C15

// certVal is the self-certifying metric value: what metric pmid must
// read at daemon time ts. Full-avalanche, so any single-bit disagreement
// between a served value and its timestamp is detected.
func certVal(pmid uint32, ts int64) uint64 {
	return mix(uint64(ts)*certGamma + uint64(pmid))
}

// mix is one SplitMix64 scramble.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Metrics builds the testbed's self-certifying metric set. Names are
// zero-padded so sorted-name order equals numeric order and metric i
// gets pmid i+1 — which each Read closure bakes in.
func Metrics() []pcp.Metric {
	ms := make([]pcp.Metric, NumMetrics)
	for i := range ms {
		pmid := uint32(i + 1)
		ms[i] = pcp.Metric{
			Name: fmt.Sprintf("chaos.metric.%02d", i),
			Read: func(t simtime.Time) (uint64, error) { return certVal(pmid, int64(t)), nil },
		}
	}
	return ms
}

// Substream salts decorrelating the per-trial RNG streams (op mix,
// retry jitter) from the injector's fault streams, which use the trial
// seed directly.
const (
	opStream      = 0x095
	backoffStream = 0xB0FF
)

// Profiles are the named fault schedules shared by the test suite and
// the cmd/chaos driver. Mean spacings are tuned to a trial's traffic
// volume (a few KB per direction) so each faulty profile fires a
// handful of faults per trial without drowning the stack.
var Profiles = map[string]faultconn.Schedule{
	"clean":    {},
	"chunked":  {MaxChunk: 7},
	"latency":  {LatencyEvery: 300, LatencyAmount: 200 * time.Microsecond, MaxChunk: 32},
	"resets":   {ResetEvery: 4000, MaxChunk: 64},
	"stalls":   {StallEvery: 6000, MaxStall: 50 * time.Millisecond},
	"refusals": {RefuseProb: 0.3},
	// flaky breaks live connections AND makes redials fail: the recipe
	// for exhausted retries against a warm cache, i.e. stale serves.
	"flaky":   {RefuseProb: 0.5, ResetEvery: 1500, MaxChunk: 32},
	"corrupt": {CorruptEvery: 3000, MaxChunk: 64},
	"mixed": {
		RefuseProb:   0.1,
		ResetEvery:   6000,
		StallEvery:   8000,
		CorruptEvery: 6000,
		LatencyEvery: 2000,
		MaxChunk:     48,
		MaxStall:     50 * time.Millisecond,
	},
}

// ProfileNames returns the profile names in sorted order.
func ProfileNames() []string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReproLine is the one-command replay for a failing trial: running it
// re-executes exactly that trial (same seed substream, same schedule)
// and reprints its fault trace and violations.
func ReproLine(o Options, trial int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "go run ./cmd/chaos -seed %#x -trials %d -trial %d -ops %d", o.Seed, maxInt(o.Trials, trial+1), trial, o.Ops)
	s := o.Schedule
	if s.RefuseProb > 0 {
		fmt.Fprintf(&b, " -refuse %g", s.RefuseProb)
	}
	if s.ResetEvery > 0 {
		fmt.Fprintf(&b, " -reset %d", s.ResetEvery)
	}
	if s.StallEvery > 0 {
		fmt.Fprintf(&b, " -stall %d", s.StallEvery)
	}
	if s.CorruptEvery > 0 {
		fmt.Fprintf(&b, " -corrupt %d", s.CorruptEvery)
	}
	if s.LatencyEvery > 0 {
		fmt.Fprintf(&b, " -latency %d", s.LatencyEvery)
	}
	if s.MaxChunk > 0 {
		fmt.Fprintf(&b, " -chunk %d", s.MaxChunk)
	}
	if o.BreakStale {
		b.WriteString(" -break-stale")
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run executes the chaos sweep. The error is only for harness failures
// (listen, daemon construction); invariant violations are reported in
// the Report, not as errors.
func Run(o Options) (*Report, error) {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Ops <= 0 {
		o.Ops = 40
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Schedule.MaxStall <= 0 {
		o.Schedule.MaxStall = 100 * time.Millisecond
	}
	rep := &Report{Opts: o}
	if o.Trial >= 0 {
		t, err := runTrial(o, o.Trial)
		if err != nil {
			return nil, err
		}
		rep.Trials = []Trial{t}
		return rep, nil
	}
	trials, err := sweep.Map(o.Trials, o.Workers, func(i int) (Trial, error) {
		return runTrial(o, i)
	})
	if err != nil {
		return nil, err
	}
	rep.Trials = trials
	return rep, nil
}

// fetcher adapts the in-process Proxy to archive.Fetcher (the proxy has
// no Lookup; the recorder never calls it in this harness).
type fetcher struct{ p *pmproxy.Proxy }

func (f fetcher) Names() ([]pcp.NameEntry, error)             { return f.p.Names() }
func (f fetcher) Fetch(ids []uint32) (pcp.FetchResult, error) { return f.p.Fetch(ids) }
func (f fetcher) Lookup(name string) (uint32, error) {
	ents, err := f.p.Names()
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.Name == name {
			return e.PMID, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown metric %q", name)
}

// runTrial drives one complete testbed single-threadedly. Everything
// stochastic derives from the trial seed.
func runTrial(o Options, idx int) (Trial, error) {
	seed := sweep.Seed(o.Seed, idx)
	t := Trial{Index: idx, Seed: seed}
	violate := func(format string, args ...any) {
		t.Violations = append(t.Violations, fmt.Sprintf(format, args...))
	}

	clock := simtime.NewClock()
	daemon, err := pcp.NewDaemon(clock, Interval, Metrics())
	if err != nil {
		return t, err
	}
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		return t, err
	}
	defer daemon.Close()

	inj := faultconn.New(seed, o.Schedule)
	dial := inj.Dial(func() (net.Conn, error) { return net.Dial("tcp", addr) })
	proxy := pmproxy.New(pmproxy.Config{
		Dial: func() (*pcp.Client, error) {
			c, err := dial()
			if err != nil {
				return nil, err
			}
			// Pin the lockstep protocol: the suite's conservation laws
			// count one fatal fault per failed upstream round trip, which
			// is exact only when requests are single-flight. The
			// pipelined path has its own chaos coverage (typed
			// per-request errors, no hangs) in internal/pcp's
			// pipeline_fault_test.go.
			return pcp.NewClientConnMax(c, pcp.Version1)
		},
		Clock:      clock,
		Interval:   Interval,
		Timeout:    o.Timeout,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		BackoffMax: 4 * time.Millisecond,
		Seed:       mix(seed ^ backoffStream),
		PoolSize:   1,
	})
	defer proxy.Close()

	arch, err := archive.New(daemon.Names(), archive.Options{})
	if err != nil {
		return t, err
	}
	rec := archive.NewRecorder(fetcher{proxy}, arch)

	corruptOn := o.Schedule.CorruptEvery > 0
	for _, f := range o.Schedule.Exact {
		if f.Kind == faultconn.Corrupt {
			corruptOn = true
		}
	}

	rng := xrand.New(mix(seed ^ opStream))
	allPMIDs := make([]uint32, NumMetrics)
	for i := range allPMIDs {
		allPMIDs[i] = uint32(i + 1)
	}
	// The proxy's coalescing cache is keyed by exact pmid-set, so the
	// driver fetches from a small per-trial palette of subsets rather
	// than a fresh random set each op: repeated keys are what exercise
	// coalesced hits and stale fallback.
	palette := make([][]uint32, 4)
	for i := range palette {
		k := 1 + rng.Intn(NumMetrics)
		perm := rng.Perm(NumMetrics)
		sub := make([]uint32, k)
		for j := 0; j < k; j++ {
			sub[j] = uint32(perm[j] + 1)
		}
		palette[i] = sub
	}
	upstreamDownSeen := 0

	// checkFetch verifies one served result against the contract. now is
	// the shared clock at the moment of the call; requested is the exact
	// pmid order the caller asked for.
	checkFetch := func(res pcp.FetchResult, now int64, requested []uint32) {
		ts := res.Timestamp
		if ts > now {
			if corruptOn {
				t.Inconsist++ // a flipped timestamp byte, tolerated
				return
			}
			violate("result timestamp %d is in the future (now %d)", ts, now)
		}
		// The driver only advances the clock in whole-interval steps, so
		// a fresh (or coalesced) answer has ts == now exactly and a stale
		// serve has ts < now strictly.
		if ts != now {
			t.Stale++
		}
		if o.BreakStale && ts != now {
			// Simulated bug: a proxy that re-stamps stale answers. The
			// value↔timestamp binding must catch this.
			ts = now
		}
		if len(res.Values) != len(requested) {
			if corruptOn {
				t.Inconsist++
				return
			}
			violate("result has %d values for a %d-pmid request", len(res.Values), len(requested))
			return
		}
		for i, v := range res.Values {
			bad := v.PMID != requested[i] || v.Status != pcp.StatusOK || v.Value != certVal(v.PMID, ts)
			if !bad {
				continue
			}
			t.Inconsist++
			if !corruptOn {
				violate("torn/corrupt value: op-ts=%d pmid=%d (want %d) status=%d value=%#x want=%#x",
					res.Timestamp, v.PMID, requested[i], v.Status, v.Value, certVal(v.PMID, ts))
			}
		}
	}
	checkErr := func(err error, path string) {
		if !errors.Is(err, pmproxy.ErrUpstreamDown) {
			violate("unclean %s error (not ErrUpstreamDown): %v", path, err)
			return
		}
		upstreamDownSeen++
	}

	for op := 0; op < o.Ops; op++ {
		// Advance in whole intervals or not at all: keeps fresh results
		// exactly at ts == now (see checkFetch) while still exercising the
		// coalescing window when the clock holds still.
		if rng.Intn(2) == 0 {
			clock.Advance(Interval + simtime.Millisecond)
		}
		now := int64(clock.Now())
		switch pick := rng.Intn(10); {
		case pick < 6: // direct fetch of a palette pmid subset
			sub := palette[rng.Intn(len(palette))]
			t.Fetches++
			res, err := proxy.Fetch(sub)
			if err != nil {
				t.FetchErrs++
				checkErr(err, "fetch")
				continue
			}
			checkFetch(res, now, sub)
		case pick < 8: // recorder tee: fetch full schema through the proxy
			t.Fetches++
			res, err := rec.Fetch(allPMIDs)
			if err != nil {
				t.FetchErrs++
				checkErr(err, "recorder fetch")
				continue
			}
			checkFetch(res, now, allPMIDs)
		default: // name table
			t.NameOps++
			ents, err := proxy.Names()
			if err != nil {
				t.NameErrs++
				checkErr(err, "names")
				continue
			}
			if len(ents) != NumMetrics {
				if corruptOn {
					t.Inconsist++
				} else {
					violate("name table has %d entries, want %d", len(ents), NumMetrics)
				}
				continue
			}
			for i, e := range ents {
				if e.PMID != uint32(i+1) || e.Name != fmt.Sprintf("chaos.metric.%02d", i) {
					if corruptOn {
						t.Inconsist++ // cached corrupted table, tolerated
						continue
					}
					violate("torn name table entry %d: %+v", i, e)
				}
			}
		}
	}

	t.Proxy = proxy.Stats()
	t.Faults = inj.Stats()
	t.Trace = inj.Trace()
	st := t.Proxy

	// Conservation laws: the Stats counters must exactly account for
	// every operation and every injected fault.
	if st.ClientFetches != int64(t.Fetches) {
		violate("ClientFetches=%d but driver issued %d fetches", st.ClientFetches, t.Fetches)
	}
	if got, want := st.CoalescedHits+st.UpstreamFetches+st.StaleServes+int64(t.FetchErrs), st.ClientFetches; got != want {
		violate("fetch accounting: coalesced(%d)+upstream(%d)+stale(%d)+errors(%d)=%d != ClientFetches=%d",
			st.CoalescedHits, st.UpstreamFetches, st.StaleServes, t.FetchErrs, got, want)
	}
	if st.UpstreamErrors != st.Retries+st.Exhausted {
		violate("retry accounting: UpstreamErrors=%d != Retries=%d + Exhausted=%d",
			st.UpstreamErrors, st.Retries, st.Exhausted)
	}
	// A corrupted timestamp byte can make the driver misclassify a result
	// as stale (or fresh), so this law is exact only without corruption.
	if !corruptOn && st.StaleServes != int64(t.Stale) {
		violate("stale accounting: StaleServes=%d but driver observed %d stale results", st.StaleServes, t.Stale)
	}
	if got, want := st.StaleServes+st.StaleNameServes+int64(upstreamDownSeen), st.Exhausted; got != want {
		violate("exhaustion accounting: stale(%d)+staleNames(%d)+observedErrors(%d)=%d != Exhausted=%d",
			st.StaleServes, st.StaleNameServes, upstreamDownSeen, got, want)
	}
	fatal := int64(t.Faults.Fatal())
	if corruptOn {
		if st.UpstreamErrors < fatal || st.UpstreamErrors > fatal+int64(t.Faults.Corrupts) {
			violate("fault accounting: UpstreamErrors=%d outside [fatal=%d, fatal+corrupts=%d]",
				st.UpstreamErrors, fatal, fatal+int64(t.Faults.Corrupts))
		}
		// The proxy caches decoded results, so one corruption can surface
		// as many inconsistencies — no tight bound, but inconsistencies
		// with zero fired corruptions would mean the stack tears data on
		// its own.
		if t.Inconsist > 0 && t.Faults.Corrupts == 0 {
			violate("%d inconsistent values with no fired corruption", t.Inconsist)
		}
	} else if st.UpstreamErrors != fatal {
		violate("fault accounting: UpstreamErrors=%d != injected fatal faults=%d (%s)",
			st.UpstreamErrors, fatal, t.Faults)
	}

	// Recorder tee integrity: the archive must round-trip its wire format
	// and every row must be complete and self-consistent — a mid-write
	// reset upstream must never leave a partial record.
	var buf bytes.Buffer
	if _, err := arch.WriteTo(&buf); err != nil {
		violate("archive WriteTo failed: %v", err)
		return t, nil
	}
	reread, err := archive.Read(&buf, archive.Options{})
	if err != nil {
		violate("recorded archive unreadable (partial record?): %v", err)
		return t, nil
	}
	rows, err := reread.All()
	if err != nil {
		violate("recorded archive undecodable: %v", err)
		return t, nil
	}
	t.Records = len(rows)
	prevTS := int64(-1 << 62)
	for _, row := range rows {
		if row.Timestamp <= prevTS {
			violate("archive rows out of order: %d after %d", row.Timestamp, prevTS)
		}
		prevTS = row.Timestamp
		if len(row.Values) != NumMetrics {
			violate("partial archive row at ts=%d: %d of %d values", row.Timestamp, len(row.Values), NumMetrics)
			continue
		}
		for i, v := range row.Values {
			if want := certVal(uint32(i+1), row.Timestamp); v != want {
				if corruptOn {
					continue // bounded by the corruption budget, checked live
				}
				violate("corrupt archive row ts=%d pmid=%d value=%#x want=%#x", row.Timestamp, i+1, v, want)
			}
		}
	}
	return t, nil
}
