package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"
)

// pipePair builds a loopback TCP pair: the client side is dialed through
// the injector, the server side is plain. Loopback (not net.Pipe) so that
// buffered writes and real deadlines behave like production.
func pipePair(t *testing.T, in *Injector) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial := in.Dial(func() (net.Conn, error) {
		return net.Dial("tcp", ln.Addr().String())
	})
	client, err = dial()
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// pump copies n pattern bytes server->client and returns what the client
// read before any error.
func pump(t *testing.T, in *Injector, n int) (got []byte, err error) {
	t.Helper()
	client, server := pipePair(t, in)
	go func() {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i)
		}
		server.Write(buf)
		server.Close()
	}()
	got, err = io.ReadAll(client)
	return got, err
}

func TestZeroScheduleIsTransparent(t *testing.T) {
	in := New(1, Schedule{})
	got, err := pump(t, in, 4096)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 4096 {
		t.Fatalf("got %d bytes, want 4096", len(got))
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, byte(i))
		}
	}
	if tr := in.Trace(); len(tr) != 0 {
		t.Fatalf("zero schedule fired faults: %v", tr)
	}
}

func TestExactResetAtOffset(t *testing.T) {
	in := New(7, Schedule{Exact: []Fault{{Conn: 0, Dir: Read, Off: 100, Kind: Reset}}})
	got, err := pump(t, in, 4096)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d bytes before reset, want exactly 100", len(got))
	}
	want := []Fault{{Conn: 0, Dir: Read, Off: 100, Kind: Reset}}
	if tr := in.Trace(); !reflect.DeepEqual(tr, want) {
		t.Fatalf("trace = %v, want %v", tr, want)
	}
	if st := in.Stats(); st.Resets != 1 || st.Fatal() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExactCorruptFlipsExactlyOneByte(t *testing.T) {
	const off = 1234
	in := New(9, Schedule{Exact: []Fault{{Conn: 0, Dir: Read, Off: off, Kind: Corrupt}}})
	got, err := pump(t, in, 4096)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 4096 {
		t.Fatalf("got %d bytes, want 4096", len(got))
	}
	var flipped []int
	for i, b := range got {
		if b != byte(i) {
			flipped = append(flipped, i)
		}
	}
	if len(flipped) != 1 || flipped[0] != off {
		t.Fatalf("flipped offsets = %v, want [%d]", flipped, off)
	}
	if diff := got[off] ^ byte(off%256); diff&(diff-1) != 0 {
		t.Fatalf("offset %d changed by %#x, want a single-bit flip", off, diff)
	}
}

func TestDeterministicTraceAcrossRuns(t *testing.T) {
	sched := Schedule{ResetEvery: 700, CorruptEvery: 900, LatencyEvery: 500, MaxChunk: 64}
	run := func() ([]Fault, Stats, []byte) {
		in := New(42, sched)
		got, _ := pump(t, in, 8192)
		return in.Trace(), in.Stats(), got
	}
	tr1, st1, got1 := run()
	tr2, st2, got2 := run()
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("traces differ:\n%v\n%v", tr1, tr2)
	}
	if st1 != st2 {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	if !bytes.Equal(got1, got2) {
		t.Fatalf("delivered bytes differ (len %d vs %d)", len(got1), len(got2))
	}
	if len(tr1) == 0 {
		t.Fatal("schedule fired nothing over 8KiB; expected activity")
	}
}

func TestDialRefusalProbOne(t *testing.T) {
	in := New(3, Schedule{RefuseProb: 1})
	dial := in.Dial(func() (net.Conn, error) {
		t.Fatal("underlying dial must not run on refusal")
		return nil, nil
	})
	for i := 0; i < 3; i++ {
		if _, err := dial(); !errors.Is(err, ErrRefused) {
			t.Fatalf("dial %d: err = %v, want ErrRefused", i, err)
		}
	}
	if st := in.Stats(); st.Refusals != 3 || st.Conns != 3 {
		t.Fatalf("stats = %+v, want 3 refusals over 3 conns", st)
	}
}

func TestListenerRefusalClosesConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	in := New(5, Schedule{Exact: []Fault{{Conn: 0, Kind: Refuse}}})
	fln := in.Listener(ln)

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()

	// First dial: accepted then refused server-side — the client observes
	// EOF/reset on read. Second dial survives.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused conn delivered data")
	}
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("second connection never accepted")
	}
	if st := in.Stats(); st.Refusals != 1 {
		t.Fatalf("stats = %+v, want 1 refusal", st)
	}
}

func TestMaxChunkCapsReads(t *testing.T) {
	in := New(11, Schedule{MaxChunk: 16})
	client, server := pipePair(t, in)
	go func() {
		server.Write(make([]byte, 4096))
		server.Close()
	}()
	buf := make([]byte, 4096)
	total := 0
	for {
		n, err := client.Read(buf)
		if n > 16 {
			t.Fatalf("read returned %d bytes, cap is 16", n)
		}
		total += n
		if err != nil {
			break
		}
	}
	if total != 4096 {
		t.Fatalf("total %d, want 4096", total)
	}
}

func TestStallHonorsReadDeadline(t *testing.T) {
	in := New(13, Schedule{
		Exact:    []Fault{{Conn: 0, Dir: Read, Off: 10, Kind: Stall}},
		MaxStall: 10 * time.Second, // deadline must win
	})
	client, server := pipePair(t, in)
	go func() {
		server.Write(make([]byte, 64))
	}()
	if _, err := io.ReadFull(client, make([]byte, 10)); err != nil {
		t.Fatalf("pre-stall read: %v", err)
	}
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := client.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("stall returned after %v, want ~50ms", elapsed)
	}
	// The stream is terminally broken after a stall.
	if _, err := client.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("post-stall read err = %v, want deadline exceeded", err)
	}
}

func TestStallCappedByMaxStall(t *testing.T) {
	in := New(17, Schedule{
		Exact:    []Fault{{Conn: 0, Dir: Read, Off: 0, Kind: Stall}},
		MaxStall: 30 * time.Millisecond,
	})
	client, _ := pipePair(t, in)
	start := time.Now()
	_, err := client.Read(make([]byte, 1)) // no deadline set
	elapsed := time.Since(start)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed < 20*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("stall returned after %v, want ~30ms", elapsed)
	}
}

func TestWriteResetReportsPartialCount(t *testing.T) {
	in := New(19, Schedule{Exact: []Fault{{Conn: 0, Dir: Write, Off: 50, Kind: Reset}}})
	client, server := pipePair(t, in)
	go io.Copy(io.Discard, server)
	n, err := client.Write(make([]byte, 200))
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if n != 50 {
		t.Fatalf("wrote %d before reset, want exactly 50", n)
	}
}

func TestWriteCorruptDoesNotMutateCallerBuffer(t *testing.T) {
	in := New(23, Schedule{Exact: []Fault{{Conn: 0, Dir: Write, Off: 5, Kind: Corrupt}}})
	client, server := pipePair(t, in)
	recv := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(server)
		recv <- b
	}()
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	orig := append([]byte(nil), buf...)
	if _, err := client.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	client.Close()
	if !bytes.Equal(buf, orig) {
		t.Fatal("Write mutated the caller's buffer")
	}
	got := <-recv
	if len(got) != 64 {
		t.Fatalf("peer received %d bytes, want 64", len(got))
	}
	var flipped []int
	for i, b := range got {
		if b != byte(i) {
			flipped = append(flipped, i)
		}
	}
	if len(flipped) != 1 || flipped[0] != 5 {
		t.Fatalf("flipped offsets on the wire = %v, want [5]", flipped)
	}
}

func TestWrapPassThroughWhenDisabled(t *testing.T) {
	in := New(29, Schedule{})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if w := in.Wrap(c1); w != c1 {
		t.Fatal("zero schedule should return the conn unwrapped")
	}
}
