package mem

import (
	"testing"
	"testing/quick"

	"papimc/internal/arch"
	"papimc/internal/simtime"
)

func idealController() (*Controller, *simtime.Clock) {
	clock := simtime.NewClock()
	c := NewController(Config{Channels: 8, DisableNoise: true}, clock)
	return c, clock
}

func noisyController(seed uint64) (*Controller, *simtime.Clock) {
	clock := simtime.NewClock()
	c := NewController(Config{Channels: 8, Noise: arch.Summit().Noise, Seed: seed}, clock)
	return c, clock
}

func TestIdealCountersExact(t *testing.T) {
	c, _ := idealController()
	c.AddTraffic(true, 0, 64*100, 0, 0)
	c.AddTraffic(false, 0, 64*50, 0, 0)
	r, w := c.Totals(0)
	if r != 6400 || w != 3200 {
		t.Errorf("totals = %d/%d, want 6400/3200", r, w)
	}
}

func TestChannelInterleaving(t *testing.T) {
	c, _ := idealController()
	// 16 transactions over 8 channels: exactly 2 per channel.
	c.AddTraffic(true, 0, 64*16, 0, 0)
	for i, ch := range c.Read(0) {
		if ch.ReadBytes != 128 {
			t.Errorf("channel %d = %d bytes, want 128", i, ch.ReadBytes)
		}
	}
}

func TestInterleavingRemainderFollowsAddress(t *testing.T) {
	c, _ := idealController()
	// 3 transactions starting at address 5*64: channels 5,6,7 get one each.
	c.AddTraffic(true, 5*64, 3*64, 0, 0)
	counts := c.Read(0)
	for i, ch := range counts {
		want := uint64(0)
		if i >= 5 {
			want = 64
		}
		if ch.ReadBytes != want {
			t.Errorf("channel %d = %d, want %d", i, ch.ReadBytes, want)
		}
	}
}

func TestTrafficRoundsUpToTransactions(t *testing.T) {
	c, _ := idealController()
	c.AddTraffic(true, 0, 1, 0, 0) // 1 byte still costs a 64-byte transaction
	r, _ := c.Totals(0)
	if r != 64 {
		t.Errorf("1-byte traffic counted as %d, want 64", r)
	}
}

func TestZeroAndNegativeTrafficIgnored(t *testing.T) {
	c, _ := idealController()
	c.AddTraffic(true, 0, 0, 0, 0)
	c.AddTraffic(true, 0, -10, 0, 0)
	if r, w := c.Totals(0); r != 0 || w != 0 {
		t.Errorf("empty traffic produced counts %d/%d", r, w)
	}
}

func TestPostingLagHidesRecentTraffic(t *testing.T) {
	c, _ := noisyController(1)
	start := simtime.Time(simtime.Second) // let noise baseline exist
	r0, w0 := c.Totals(start)
	c.AddTraffic(true, 0, 1<<20, start, start)
	// Immediately at `start` the traffic has not posted yet.
	r1, _ := c.Totals(start)
	if r1 != r0 {
		t.Errorf("traffic visible instantly despite posting lag: %d -> %d", r0, r1)
	}
	// Well after the lag it is fully visible (modulo noise, which only adds).
	r2, _ := c.Totals(start.Add(simtime.Second))
	if r2-r0 < 1<<20 {
		t.Errorf("posted traffic missing: delta = %d, want >= %d", r2-r0, 1<<20)
	}
	_ = w0
}

func TestBackgroundNoiseAccumulates(t *testing.T) {
	c, _ := noisyController(2)
	r1, w1 := c.Totals(simtime.Time(simtime.Second))
	r2, w2 := c.Totals(simtime.Time(2 * simtime.Second))
	if r2 <= r1 || w2 <= w1 {
		t.Errorf("background noise did not accumulate: %d->%d reads, %d->%d writes", r1, r2, w1, w2)
	}
	// ~24 MiB/s nominal: over 1s expect single-digit-MiB to tens of MiB.
	delta := float64(r2 - r1 + w2 - w1)
	if delta < 1e6 || delta > 1e9 {
		t.Errorf("noise magnitude implausible: %v bytes/s", delta)
	}
}

func TestMeasurementOverheadInjection(t *testing.T) {
	// Isolate the overhead term: no background noise, no posting lag.
	c := NewController(Config{
		Channels: 8,
		Noise:    arch.NoiseParams{MeasurementOverheadBytes: 1 << 20},
		Seed:     3,
	}, simtime.NewClock())
	t0 := simtime.Time(simtime.Second)
	if r, w := c.Totals(t0); r != 0 || w != 0 {
		t.Fatalf("unexpected baseline traffic %d/%d", r, w)
	}
	c.InjectMeasurementOverhead(t0)
	r, w := c.Totals(t0)
	total := float64(r + w)
	// Log-normal with unit mean around 1 MiB: accept a wide band.
	if total < 1<<17 || total > 1<<24 {
		t.Errorf("overhead traffic = %v bytes, want on the order of 1 MiB", total)
	}
	if w == 0 || r == 0 {
		t.Errorf("overhead should contain both reads (%d) and writes (%d)", r, w)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		c, _ := noisyController(42)
		c.AddTraffic(true, 128, 1<<16, 0, simtime.Time(10*simtime.Millisecond))
		c.InjectMeasurementOverhead(simtime.Time(20 * simtime.Millisecond))
		return c.Totals(simtime.Time(simtime.Second))
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 != r2 || w1 != w2 {
		t.Errorf("same seed produced different totals: %d/%d vs %d/%d", r1, w1, r2, w2)
	}
}

func TestCountersMonotonic(t *testing.T) {
	c, _ := noisyController(7)
	var lastR, lastW uint64
	for i := 1; i <= 20; i++ {
		tm := simtime.Time(i) * simtime.Time(50*simtime.Millisecond)
		c.AddTraffic(i%2 == 0, int64(i)*64, int64(i)*1024, tm, tm)
		r, w := c.Totals(tm)
		if r < lastR || w < lastW {
			t.Fatalf("counters decreased at step %d: %d/%d after %d/%d", i, r, w, lastR, lastW)
		}
		lastR, lastW = r, w
	}
}

func TestPanicsOnBadChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero channels")
		}
	}()
	NewController(Config{Channels: 0}, simtime.NewClock())
}

// Property: for an ideal controller, total counted bytes equal the
// rounded-up transaction bytes of everything added, split exactly across
// channels (conservation).
func TestConservationProperty(t *testing.T) {
	f := func(chunks []uint16, readMask uint32) bool {
		c, _ := idealController()
		var wantR, wantW uint64
		for i, raw := range chunks {
			bytes := int64(raw)
			if bytes == 0 {
				continue
			}
			read := readMask>>(uint(i)%32)&1 == 1
			rounded := (bytes + 63) / 64 * 64
			if read {
				wantR += uint64(rounded)
			} else {
				wantW += uint64(rounded)
			}
			c.AddTraffic(read, int64(i)*64, bytes, 0, 0)
		}
		r, w := c.Totals(0)
		return r == wantR && w == wantW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: channel shares differ by at most one transaction for a
// single bulk transfer.
func TestBalanceProperty(t *testing.T) {
	f := func(txCount uint16, addrTx uint16) bool {
		c, _ := idealController()
		if txCount == 0 {
			return true
		}
		c.AddTraffic(true, int64(addrTx)*64, int64(txCount)*64, 0, 0)
		counts := c.Read(0)
		min, max := counts[0].ReadBytes, counts[0].ReadBytes
		for _, ch := range counts {
			if ch.ReadBytes < min {
				min = ch.ReadBytes
			}
			if ch.ReadBytes > max {
				max = ch.ReadBytes
			}
		}
		return max-min <= 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortAdapter(t *testing.T) {
	c, clock := idealController()
	p := Port{C: c}
	clock.Advance(100)
	p.MemRead(0, 128)
	p.MemWrite(64, 64)
	r, w := c.Totals(clock.Now())
	if r != 128 || w != 64 {
		t.Errorf("port traffic = %d/%d, want 128/64", r, w)
	}
}
