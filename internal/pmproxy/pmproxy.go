// Package pmproxy implements the pmproxy analogue: a daemon that speaks
// the PCP PDU protocol on both sides and multiplexes many unprivileged
// clients onto a small pool of upstream PMCD connections.
//
// The fan-out win comes from coalescing: the upstream daemon only
// refreshes its counter view once per sampling interval, so identical
// fetch requests landing within one interval are served from a single
// upstream round trip — M clients cost O(1) upstream fetches per
// interval instead of M. The serving path is built to scale with cores:
//
//   - The coalescing cache is sharded by request hash, so distinct
//     pmid-sets never contend on one lock.
//   - A cache hit is lock-free: each entry publishes its current answer
//     through an atomic pointer, so the common case (every dashboard
//     fetching the same metrics within one interval) is a pointer load,
//     not a mutex acquisition.
//   - Only refreshes serialize, per entry (single-flight): one goroutine
//     performs the upstream round trip while identical concurrent
//     requests queue behind it and then hit the freshened cache.
//   - Cache-miss round trips for different entries pipeline through a
//     small upstream connection pool instead of queueing on a single
//     connection.
//
// The name table is cached behind an atomic pointer, upstream round
// trips carry a wall-clock deadline with bounded retry/backoff, and when
// the upstream is down the proxy degrades gracefully by serving the last
// good answer with its original (stale) timestamp rather than failing
// the client.
package pmproxy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
	"papimc/internal/xrand"
)

// ErrUpstreamDown is returned when the upstream is unreachable after
// retries and no cached answer is available (or stale serving is off).
var ErrUpstreamDown = errors.New("pmproxy: upstream unavailable")

// Config tunes a Proxy.
type Config struct {
	// Upstream is the PMCD daemon address. Ignored when Dial is set.
	Upstream string
	// Dial overrides how upstream connections are (re)established.
	Dial func() (*pcp.Client, error)
	// Clock, when set, provides the coalescing timebase (the simulated
	// deployments share the daemon's clock). When nil, wall time is used
	// with Interval read as nanoseconds.
	Clock *simtime.Clock
	// Interval is the upstream daemon's sampling interval: answers
	// younger than this are served from cache without an upstream round
	// trip. Zero disables interval coalescing (single-flight still
	// applies).
	Interval simtime.Duration
	// Timeout bounds each upstream round trip; on expiry the connection
	// is dropped and redialled. Zero means no deadline.
	Timeout time.Duration
	// MaxRetries is how many times a failed upstream operation is
	// retried (with capped, jittered doubling backoff) before giving up.
	MaxRetries int
	// Backoff is the initial delay between retries.
	Backoff time.Duration
	// BackoffMax caps the doubling backoff between retries. Zero means
	// 1s. Without a cap, long retry sequences (accumulated across
	// repeated outages) double into multi-minute sleeps.
	BackoffMax time.Duration
	// Seed seeds the backoff jitter RNG, keeping retry timing
	// deterministic under the chaos suite. Zero is a valid seed.
	Seed uint64
	// DisableStale makes the proxy fail requests when the upstream is
	// down instead of serving the last good (timestamped) answer.
	DisableStale bool
	// PoolSize caps the number of concurrent upstream connections.
	// Cache misses for distinct pmid-sets pipeline across the pool
	// instead of queueing on one connection. Zero means 4.
	PoolSize int
	// Admission configures the admission/scheduling layer in front of
	// the fetch path: a factory-registered policy, per-tenant quotas,
	// and weighted fair queueing. The zero value disables admission
	// entirely (every request proceeds, no queue) — the pre-QoS fast
	// path. An unknown policy name panics in New; validate with
	// NewPolicy first when the name comes from user input.
	Admission AdmissionConfig
	// Breaker configures the per-upstream circuit breaker. A zero
	// Threshold disables it (the default), keeping fault accounting
	// exactly as before.
	Breaker BreakerConfig
}

// defaultPoolSize is the upstream connection cap when Config.PoolSize is
// zero: enough to pipeline the handful of distinct pmid-sets live
// dashboards ask for, small enough not to crowd the daemon.
const defaultPoolSize = 4

// Stats is a snapshot of the proxy's counters. A batch fetch of n sets
// counts as n ClientFetches, and each of its sets as one CoalescedHit,
// UpstreamFetch or StaleServe — so the existing ratios keep their
// meaning — while UpstreamBatchRTs separately counts the actual
// upstream round trips batches were grouped into.
type Stats struct {
	ClientFetches        int64 // fetch (or batch-set) requests received from clients
	UpstreamFetches      int64 // fetch sets that reached the daemon
	UpstreamBatchRTs     int64 // grouped upstream round trips serving batch misses
	CoalescedHits        int64 // client fetches answered from the interval cache
	StaleServes          int64 // fetch answers served from cache because upstream was down
	StaleNameServes      int64 // name tables served from cache because upstream was down
	UpstreamErrors       int64 // failed upstream operations (before retry)
	Retries              int64 // failed upstream operations that were retried
	Exhausted            int64 // upstream operations that failed after all retries
	Redials              int64 // upstream connections established
	Shed                 int64 // fetch sets rejected by admission (typed ErrAdmissionRejected)
	BreakerOpens         int64 // circuit-breaker trips (closed/half-open → open)
	BreakerProbes        int64 // half-open probes admitted
	BreakerShortCircuits int64 // requests failed fast by an open breaker (no dial, no retries)
}

// TenantStats is one tenant's request accounting. Every issued fetch
// set lands in exactly one of Admitted, Shed or StaleServed:
//
//	Issued == Admitted + Shed + StaleServed
//
// Admitted counts sets the admission layer let through to normal
// serving (cache hits and upstream round trips — including round trips
// that then failed upstream without a stale fallback, which stay
// visible in the aggregate error counters). Shed counts typed
// admission rejections; StaleServed counts sets answered from cache
// because the upstream was down or the set was shed but degradable.
type TenantStats struct {
	Tenant      uint32
	Issued      int64
	Admitted    int64
	Shed        int64
	StaleServed int64
}

// CoalescingRatio is client fetches per upstream fetch — the fan-out
// win. With no traffic it reports 1.
func (s Stats) CoalescingRatio() float64 {
	if s.UpstreamFetches == 0 {
		return 1
	}
	return float64(s.ClientFetches) / float64(s.UpstreamFetches)
}

// cached is one immutable published answer. Readers reach it through an
// atomic pointer and never lock; a new answer is a new cached value.
type cached struct {
	res       pcp.FetchResult
	fetchedAt int64 // proxy timebase, not the daemon timestamp
}

// entry is one coalescing-cache slot. The current answer is published
// through cur (lock-free hits); mu is only the single-flight gate for
// refreshes: the holder performs the upstream round trip while identical
// requests queue behind it and then hit the freshened cache.
type entry struct {
	cur atomic.Pointer[cached]
	mu  sync.Mutex
}

// numShards splits the coalescing cache so distinct pmid-sets land on
// distinct locks. 16 shards keeps the worst-case map mutex hold times
// negligible at far more cores than the daemon tier ever sees, at the
// cost of a few hundred bytes.
const numShards = 16

// maxShardEntries bounds each shard; on overflow the shard is reset
// (distinct pmid-sets are rare in practice).
const maxShardEntries = 64

// shard is one slice of the coalescing cache: a mutex-guarded map from
// encoded fetch request to its entry. The lock covers only map access —
// never upstream round trips.
type shard struct {
	mu sync.Mutex
	m  map[string]*entry
}

// nameTable is the cached upstream name table, published atomically.
type nameTable struct {
	entries []pcp.NameEntry
	at      int64
}

// Proxy is the daemon. Create with New, then Start.
type Proxy struct {
	cfg Config

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}

	// Upstream connection pool: sem bounds concurrent upstream round
	// trips; idle connections are kept on the free list for reuse.
	sem    chan struct{}
	freeMu sync.Mutex
	free   []*pcp.Client

	names  atomic.Pointer[nameTable]
	nameMu sync.Mutex // single-flight gate for name-table refresh

	shards [numShards]shard

	// Admission layer: policy (nil = disabled), weighted fair queue
	// gating upstream work (nil = disabled), per-upstream breaker
	// (nil = disabled), and per-tenant counters.
	admit   Policy
	queue   *wfq
	brk     *breaker
	tenants sync.Map // uint32 -> *tenantCounter

	clientFetches    atomic.Int64
	upstreamFetches  atomic.Int64
	upstreamBatchRTs atomic.Int64
	coalescedHits    atomic.Int64
	staleServes      atomic.Int64
	staleNameServes  atomic.Int64
	upstreamErrors   atomic.Int64
	retries          atomic.Int64
	exhausted        atomic.Int64
	redials          atomic.Int64
	shed             atomic.Int64
	breakerShorts    atomic.Int64

	// sleep is the retry-backoff sleeper, a hook so the regression test
	// can observe planned sleeps without wall-clock waits.
	sleep func(time.Duration)

	// boMu guards boRng: jitter draws are rare (one per retry), so a
	// mutex is fine.
	boMu  sync.Mutex
	boRng *xrand.Source
}

// New builds a proxy; it does not touch the network until Start (or the
// first request forces an upstream dial).
func New(cfg Config) *Proxy {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = defaultPoolSize
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	p := &Proxy{
		cfg:    cfg,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		sem:    make(chan struct{}, cfg.PoolSize),
		sleep:  time.Sleep,
		boRng:  xrand.New(cfg.Seed),
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*entry)
	}
	if cfg.Admission.Policy != "" {
		pol, err := NewPolicy(cfg.Admission.Policy, cfg.Admission)
		if err != nil {
			panic(err) // construction-time wiring error; see Config.Admission
		}
		p.admit = pol
		slots := cfg.Admission.MaxConcurrent
		if slots <= 0 {
			slots = cfg.PoolSize
		}
		p.queue = newWFQ(slots, cfg.Admission.QueueDepth, func(id uint32) float64 {
			return cfg.Admission.weight(id)
		})
	}
	if cfg.Breaker.Threshold > 0 {
		p.brk = newBreaker(cfg.Breaker, p.jitter)
	}
	return p
}

// tenantCounter returns (creating on first use) the counters for a
// tenant.
func (p *Proxy) tenantCounter(id uint32) *tenantCounter {
	if v, ok := p.tenants.Load(id); ok {
		return v.(*tenantCounter)
	}
	v, _ := p.tenants.LoadOrStore(id, &tenantCounter{})
	return v.(*tenantCounter)
}

// tenantCounter holds one tenant's atomic request accounting.
type tenantCounter struct {
	issued      atomic.Int64
	admitted    atomic.Int64
	shed        atomic.Int64
	staleServed atomic.Int64
}

// TenantStatsFor snapshots one tenant's counters.
func (p *Proxy) TenantStatsFor(id uint32) TenantStats {
	v, ok := p.tenants.Load(id)
	if !ok {
		return TenantStats{Tenant: id}
	}
	tc := v.(*tenantCounter)
	return TenantStats{
		Tenant:      id,
		Issued:      tc.issued.Load(),
		Admitted:    tc.admitted.Load(),
		Shed:        tc.shed.Load(),
		StaleServed: tc.staleServed.Load(),
	}
}

// TenantStatsAll snapshots every tenant seen so far, sorted by tenant
// ID.
func (p *Proxy) TenantStatsAll() []TenantStats {
	var out []TenantStats
	p.tenants.Range(func(k, _ any) bool {
		out = append(out, p.TenantStatsFor(k.(uint32)))
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].Tenant < out[b].Tenant })
	return out
}

// BreakerHistory returns the breaker's state-transition sequence so
// far ("closed→open", ...); empty when the breaker is disabled.
func (p *Proxy) BreakerHistory() []string {
	if p.brk == nil {
		return nil
	}
	return p.brk.history()
}

// admitReq assembles one admission decision's input.
func (p *Proxy) admitReq(tenant uint32, cost int) AdmitRequest {
	return AdmitRequest{
		Tenant:   tenant,
		Cost:     cost,
		Priority: p.cfg.Admission.priority(tenant),
		Now:      p.now(),
	}
}

// degradable reports whether the tenant's queries tolerate staleness
// when shed.
func (p *Proxy) degradable(tenant uint32) bool {
	return p.cfg.Admission.tenant(tenant).Degradable
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	s := Stats{
		ClientFetches:        p.clientFetches.Load(),
		UpstreamFetches:      p.upstreamFetches.Load(),
		UpstreamBatchRTs:     p.upstreamBatchRTs.Load(),
		CoalescedHits:        p.coalescedHits.Load(),
		StaleServes:          p.staleServes.Load(),
		StaleNameServes:      p.staleNameServes.Load(),
		UpstreamErrors:       p.upstreamErrors.Load(),
		Retries:              p.retries.Load(),
		Exhausted:            p.exhausted.Load(),
		Redials:              p.redials.Load(),
		Shed:                 p.shed.Load(),
		BreakerShortCircuits: p.breakerShorts.Load(),
	}
	if p.brk != nil {
		s.BreakerOpens, s.BreakerProbes = p.brk.snapshot()
	}
	return s
}

// now reads the proxy's coalescing timebase.
func (p *Proxy) now() int64 {
	if p.cfg.Clock != nil {
		return int64(p.cfg.Clock.Now())
	}
	return time.Now().UnixNano()
}

// fresh reports whether a cache write at t0 is still within the
// upstream's sampling interval at time t1.
func (p *Proxy) fresh(t0, t1 int64) bool {
	return p.cfg.Interval > 0 && t1-t0 < int64(p.cfg.Interval)
}

// acquire takes a pool slot and returns a live upstream connection,
// reusing an idle one or dialling. On error the slot is released.
func (p *Proxy) acquire() (*pcp.Client, error) {
	p.sem <- struct{}{}
	p.freeMu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.freeMu.Unlock()
		return c, nil
	}
	p.freeMu.Unlock()
	dial := p.cfg.Dial
	if dial == nil {
		dial = func() (*pcp.Client, error) { return pcp.Dial(p.cfg.Upstream) }
	}
	c, err := dial()
	if err != nil {
		<-p.sem
		return nil, err
	}
	c.SetTimeout(p.cfg.Timeout)
	p.redials.Add(1)
	return c, nil
}

// release returns a healthy connection to the pool.
func (p *Proxy) release(c *pcp.Client) {
	p.freeMu.Lock()
	p.free = append(p.free, c)
	p.freeMu.Unlock()
	<-p.sem
}

// discard drops a connection after a failure; a timed-out round trip
// leaves the stream mid-PDU, so the connection cannot be reused.
func (p *Proxy) discard(c *pcp.Client) {
	c.Close()
	<-p.sem
}

// withUpstream runs op against a pooled upstream connection with bounded
// retry and capped, jittered doubling backoff, redialling after each
// failure. Every failed attempt is counted in UpstreamErrors and then in
// exactly one of Retries (another attempt follows) or Exhausted (gave
// up), so UpstreamErrors == Retries + Exhausted holds at all times.
//
// With a breaker configured, an open circuit fails the operation before
// any dial or retry (ErrCircuitOpen, counted in BreakerShortCircuits
// and NOT in the attempt counters — a short-circuited request never
// reached the upstream), and every real attempt's outcome feeds the
// breaker's failure window.
func (p *Proxy) withUpstream(op func(*pcp.Client) error) error {
	if p.brk != nil {
		if err := p.brk.allow(p.now()); err != nil {
			p.breakerShorts.Add(1)
			return err
		}
	}
	var lastErr error
	backoff := p.cfg.Backoff
	for attempt := 0; ; attempt++ {
		c, err := p.acquire()
		if err == nil {
			if err = op(c); err == nil {
				p.release(c)
				if p.brk != nil {
					p.brk.onSuccess()
				}
				return nil
			}
			p.discard(c)
		}
		lastErr = err
		p.upstreamErrors.Add(1)
		if p.brk != nil {
			p.brk.onFailure(p.now())
		}
		if attempt >= p.cfg.MaxRetries {
			p.exhausted.Add(1)
			return fmt.Errorf("%w: %v", ErrUpstreamDown, lastErr)
		}
		p.retries.Add(1)
		if backoff > 0 {
			p.sleep(p.jitter(backoff))
			if backoff > p.cfg.BackoffMax/2 {
				backoff = p.cfg.BackoffMax
			} else {
				backoff *= 2
			}
		}
	}
}

// withUpstreamTenant is withUpstream behind the weighted fair queue:
// the tenant waits its fair-share turn for a service slot before any
// upstream work starts. Only upstream operations queue — cache hits
// never reach here.
func (p *Proxy) withUpstreamTenant(tenant uint32, op func(*pcp.Client) error) error {
	if p.queue != nil {
		if err := p.queue.acquire(tenant); err != nil {
			return err
		}
		defer p.queue.release()
	}
	return p.withUpstream(op)
}

// jitter spreads a backoff uniformly over [d/2, d], drawn from the
// seeded RNG so retry timing is deterministic in simulated runs while
// still decorrelating retry storms.
func (p *Proxy) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	p.boMu.Lock()
	j := time.Duration(p.boRng.Int63n(int64(d/2) + 1))
	p.boMu.Unlock()
	return d/2 + j
}

// keyBufPool holds scratch buffers for encoding cache keys: the encoded
// request is looked up via the map[string(bytes)] fast path, so the
// common hit case allocates neither the buffer nor the key string.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// shardFor hashes an encoded fetch request (FNV-1a) onto a shard.
func (p *Proxy) shardFor(key []byte) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// Xor-fold before reducing: FNV-1a's low bits alone cluster when keys
	// differ in only a few bytes, and the shard index is a small power of
	// two.
	h ^= h >> 32
	h ^= h >> 16
	return &p.shards[h%numShards]
}

// lookup finds or creates the cache entry for an encoded request.
func (p *Proxy) lookup(key []byte) *entry {
	sh := p.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[string(key)]
	if !ok {
		if len(sh.m) >= maxShardEntries {
			sh.m = make(map[string]*entry)
		}
		e = &entry{}
		sh.m[string(key)] = e
	}
	sh.mu.Unlock()
	return e
}

// lookupAffine is lookup behind a connection-local memo: a serving
// connection that re-requests the same pmid-sets (the dashboard steady
// state) resolves its entry with one private map probe and never
// touches the shard mutex again — connection affinity to the 16-way
// sharded cache. The memo holds entry pointers only; if a shard
// overflow resets the shared map underneath, a memoized entry keeps
// working (it still coalesces every connection that memoized it) and
// the bound keeps the memo from outliving its usefulness.
func (p *Proxy) lookupAffine(key []byte, local map[string]*entry) *entry {
	if local != nil {
		if e, ok := local[string(key)]; ok {
			return e
		}
	}
	e := p.lookup(key)
	if local != nil && len(local) < maxShardEntries {
		local[string(key)] = e
	}
	return e
}

// Fetch serves one client fetch through the coalescing cache as the
// default tenant. Exported for in-process use; the network handler goes
// through FetchTenant. The returned result is shared with other readers
// of the same cache entry and must be treated as read-only.
func (p *Proxy) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	return p.FetchTenant(DefaultTenant, pmids)
}

// FetchTenant is Fetch accounted to (and admission-controlled as) the
// given tenant.
func (p *Proxy) FetchTenant(tenant uint32, pmids []uint32) (pcp.FetchResult, error) {
	return p.fetch(tenant, pmids, nil)
}

// shedOrStale resolves a typed admission rejection for one fetch set:
// a degradable tenant with a cached answer is served stale (preferring
// degraded service over rejection), anything else is a counted shed
// failing with the typed error.
func (p *Proxy) shedOrStale(tenant uint32, tc *tenantCounter, e *entry, aerr error) (pcp.FetchResult, error) {
	if c := e.cur.Load(); c != nil && p.degradable(tenant) && !p.cfg.DisableStale {
		p.staleServes.Add(1)
		tc.staleServed.Add(1)
		return c.res, nil
	}
	p.shed.Add(1)
	tc.shed.Add(1)
	return pcp.FetchResult{}, aerr
}

func (p *Proxy) fetch(tenant uint32, pmids []uint32, local map[string]*entry) (pcp.FetchResult, error) {
	p.clientFetches.Add(1)
	tc := p.tenantCounter(tenant)
	tc.issued.Add(1)
	bp := keyBufPool.Get().(*[]byte)
	key := pcp.AppendFetchReq((*bp)[:0], pmids)
	e := p.lookupAffine(key, local)
	*bp = key
	keyBufPool.Put(bp)

	// Lock-free fast path: a published answer younger than the sampling
	// interval is the coalesced hit. Cache hits are never gated: quotas
	// meter upstream work, and a hit costs none.
	if c := e.cur.Load(); c != nil && p.fresh(c.fetchedAt, p.now()) {
		p.coalescedHits.Add(1)
		tc.admitted.Add(1)
		return c.res, nil
	}

	// Refresh path: single-flight per entry. Concurrent identical
	// requests queue here while one goroutine does the round trip, then
	// re-check and count as coalesced hits.
	e.mu.Lock()
	defer e.mu.Unlock()
	if c := e.cur.Load(); c != nil && p.fresh(c.fetchedAt, p.now()) {
		p.coalescedHits.Add(1)
		tc.admitted.Add(1)
		return c.res, nil
	}
	// Admission gate: only work that would cost an upstream round trip
	// is policed.
	if p.admit != nil {
		if aerr := p.admit.Admit(p.admitReq(tenant, 1)); aerr != nil {
			return p.shedOrStale(tenant, tc, e, aerr)
		}
	}
	var res pcp.FetchResult
	err := p.withUpstreamTenant(tenant, func(c *pcp.Client) error {
		var ferr error
		res, ferr = c.Fetch(pmids)
		return ferr
	})
	if err != nil {
		if IsShed(err) {
			// Fair-queue overflow or shutdown: same degrade-or-shed
			// resolution as a policy rejection.
			return p.shedOrStale(tenant, tc, e, err)
		}
		if c := e.cur.Load(); c != nil && !p.cfg.DisableStale {
			// Graceful degradation: the answer is stale but carries its
			// original daemon timestamp, so the client can tell.
			p.staleServes.Add(1)
			tc.staleServed.Add(1)
			return c.res, nil
		}
		// Admitted past the gate; the upstream failed with nothing to
		// degrade to. The failure stays visible in UpstreamErrors.
		tc.admitted.Add(1)
		return pcp.FetchResult{}, err
	}
	p.upstreamFetches.Add(1)
	tc.admitted.Add(1)
	e.cur.Store(&cached{res: res, fetchedAt: p.now()})
	return res, nil
}

// FetchBatch serves a multi-set fetch through the coalescing cache:
// sets that hit are answered from their entries, and all the misses are
// grouped into ONE upstream batch round trip (the whole point of the
// batch PDU — a cold multi-component EventSet costs one upstream RT,
// not one per component). Results alias cache entries and must be
// treated as read-only.
func (p *Proxy) FetchBatch(sets [][]uint32) ([]pcp.FetchResult, error) {
	return p.fetchBatch(DefaultTenant, sets, nil)
}

// FetchBatchTenant is FetchBatch accounted to (and admission-controlled
// as) the given tenant. Each set counts as one issued request; a shed
// batch counts every miss set as shed (hit sets stay admitted), so the
// per-tenant conservation law holds set-exactly.
func (p *Proxy) FetchBatchTenant(tenant uint32, sets [][]uint32) ([]pcp.FetchResult, error) {
	return p.fetchBatch(tenant, sets, nil)
}

// missGroup is one distinct stale pmid-set of a batch: its cache entry
// and every batch index asking for it.
type missGroup struct {
	key     string
	e       *entry
	pmids   []uint32
	indices []int
}

func (p *Proxy) fetchBatch(tenant uint32, sets [][]uint32, local map[string]*entry) ([]pcp.FetchResult, error) {
	p.clientFetches.Add(int64(len(sets)))
	tc := p.tenantCounter(tenant)
	tc.issued.Add(int64(len(sets)))
	results := make([]pcp.FetchResult, len(sets))
	var (
		misses []*missGroup
		byKey  map[string]*missGroup
	)
	bp := keyBufPool.Get().(*[]byte)
	key := (*bp)[:0]
	for i, pmids := range sets {
		key = pcp.AppendFetchReq(key[:0], pmids)
		e := p.lookupAffine(key, local)
		if c := e.cur.Load(); c != nil && p.fresh(c.fetchedAt, p.now()) {
			p.coalescedHits.Add(1)
			tc.admitted.Add(1)
			results[i] = c.res
			continue
		}
		if byKey == nil {
			byKey = make(map[string]*missGroup)
		}
		g := byKey[string(key)]
		if g == nil {
			g = &missGroup{key: string(key), e: e, pmids: pmids}
			byKey[g.key] = g
			misses = append(misses, g)
		}
		g.indices = append(g.indices, i)
	}
	*bp = key
	keyBufPool.Put(bp)
	if len(misses) == 0 {
		return results, nil
	}

	// Single-flight across multiple entries: lock the distinct miss
	// entries in sorted key order — the one total order every batch
	// agrees on, so two overlapping batches can never deadlock (the
	// single-set path never holds more than one entry lock, so it
	// cannot complete a cycle either).
	sort.Slice(misses, func(a, b int) bool { return misses[a].key < misses[b].key })
	held := misses[:0]
	for _, g := range misses {
		g.e.mu.Lock()
		if c := g.e.cur.Load(); c != nil && p.fresh(c.fetchedAt, p.now()) {
			g.e.mu.Unlock()
			p.coalescedHits.Add(int64(len(g.indices)))
			tc.admitted.Add(int64(len(g.indices)))
			for _, i := range g.indices {
				results[i] = c.res
			}
			continue
		}
		held = append(held, g)
	}
	if len(held) == 0 {
		return results, nil
	}
	defer func() {
		for j := len(held) - 1; j >= 0; j-- {
			held[j].e.mu.Unlock()
		}
	}()
	heldSets := 0
	for _, g := range held {
		heldSets += len(g.indices)
	}

	// Admission gate: the batch's upstream cost is its distinct miss
	// groups (one grouped round trip of len(held) sets).
	if p.admit != nil {
		if aerr := p.admit.Admit(p.admitReq(tenant, len(held))); aerr != nil {
			return p.shedOrStaleBatch(tenant, tc, held, heldSets, results, aerr)
		}
	}
	missSets := make([][]uint32, len(held))
	for j, g := range held {
		missSets[j] = g.pmids
	}
	var out []pcp.FetchResult
	err := p.withUpstreamTenant(tenant, func(c *pcp.Client) error {
		var ferr error
		out, ferr = c.FetchBatch(missSets)
		return ferr
	})
	if err != nil {
		if IsShed(err) {
			return p.shedOrStaleBatch(tenant, tc, held, heldSets, results, err)
		}
		// Degrade to stale only when every miss group has a cached
		// answer (all-or-nothing, so the accounting matches what the
		// client actually received).
		stale := !p.cfg.DisableStale
		for _, g := range held {
			if g.e.cur.Load() == nil {
				stale = false
				break
			}
		}
		if !stale {
			tc.admitted.Add(int64(heldSets))
			return nil, err
		}
		for _, g := range held {
			c := g.e.cur.Load()
			p.staleServes.Add(int64(len(g.indices)))
			tc.staleServed.Add(int64(len(g.indices)))
			for _, i := range g.indices {
				results[i] = c.res
			}
		}
		return results, nil
	}
	p.upstreamFetches.Add(int64(len(held)))
	p.upstreamBatchRTs.Add(1)
	tc.admitted.Add(int64(heldSets))
	now := p.now()
	for j, g := range held {
		g.e.cur.Store(&cached{res: out[j], fetchedAt: now})
		for _, i := range g.indices {
			results[i] = out[j]
		}
	}
	return results, nil
}

// shedOrStaleBatch resolves a typed admission rejection for a batch's
// miss groups: when the tenant is degradable and every miss group has a
// cached answer, the whole batch degrades to stale; otherwise every
// miss set counts shed and the batch fails with the typed error.
func (p *Proxy) shedOrStaleBatch(tenant uint32, tc *tenantCounter, held []*missGroup, heldSets int, results []pcp.FetchResult, aerr error) ([]pcp.FetchResult, error) {
	if p.degradable(tenant) && !p.cfg.DisableStale {
		stale := true
		for _, g := range held {
			if g.e.cur.Load() == nil {
				stale = false
				break
			}
		}
		if stale {
			for _, g := range held {
				c := g.e.cur.Load()
				p.staleServes.Add(int64(len(g.indices)))
				tc.staleServed.Add(int64(len(g.indices)))
				for _, i := range g.indices {
					results[i] = c.res
				}
			}
			return results, nil
		}
	}
	p.shed.Add(int64(heldSets))
	tc.shed.Add(int64(heldSets))
	return nil, aerr
}

// Names serves the upstream name table through the proxy's cache. Reads
// of a fresh table are lock-free; refreshes are single-flight.
func (p *Proxy) Names() ([]pcp.NameEntry, error) {
	if t := p.names.Load(); t != nil && p.fresh(t.at, p.now()) {
		return t.entries, nil
	}
	p.nameMu.Lock()
	defer p.nameMu.Unlock()
	if t := p.names.Load(); t != nil && p.fresh(t.at, p.now()) {
		return t.entries, nil
	}
	var entries []pcp.NameEntry
	err := p.withUpstream(func(c *pcp.Client) error {
		var nerr error
		entries, nerr = c.Names()
		return nerr
	})
	if err != nil {
		if t := p.names.Load(); t != nil && !p.cfg.DisableStale {
			p.staleNameServes.Add(1)
			return t.entries, nil
		}
		return nil, err
	}
	p.names.Store(&nameTable{entries: entries, at: p.now()})
	return entries, nil
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves clients in the
// background until Close. It returns the bound address.
func (p *Proxy) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pmproxy: listen: %w", err)
	}
	return p.StartOn(ln), nil
}

// StartOn serves clients on an existing listener until Close. It is the
// injection point for wrapped listeners (fault injection, custom
// transports). It returns the listener's address.
//
// Accepting is sharded per core, like the daemon's: GOMAXPROCS
// goroutines block in Accept on the one listener so a connection burst
// is admitted in parallel.
func (p *Proxy) StartOn(ln net.Listener) string {
	p.ln = ln
	n := runtime.GOMAXPROCS(0)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.acceptLoop()
	}
	return ln.Addr().String()
}

// acceptBackoffMax caps the sleep between retries of a failing Accept.
const acceptBackoffMax = time.Second

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	var backoff time.Duration
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
			}
			// Transient accept errors: back off with a capped doubling
			// sleep instead of spinning hot.
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-p.closed:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		p.connMu.Lock()
		p.conns[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				conn.Close()
				p.connMu.Lock()
				delete(p.conns, conn)
				p.connMu.Unlock()
			}()
			p.serveConn(conn)
		}()
	}
}

// proxyScratch is the per-connection reusable serving state: encode
// buffer, decoded PMID scratch, and the connection's entry memo (the
// cache-shard affinity map).
type proxyScratch struct {
	respBuf []byte
	pmids   []uint32
	sets    [][]uint32
	local   map[string]*entry
}

// errPDU encodes a serving error: a typed PDUStatusError for peers
// that negotiated Version3 (typed=true) when the error is a recognised
// overload, a plain PDUError otherwise — so Version1/Version2 clients
// see exactly the messages they always did.
func errPDU(s *proxyScratch, err error, typed bool) (uint8, []byte) {
	if typed && errors.Is(err, pcp.ErrOverload) {
		return pcp.PDUStatusError, pcp.AppendStatusError(s.respBuf[:0], pcp.StatusOverload, err.Error())
	}
	return pcp.PDUError, pcp.AppendError(s.respBuf[:0], err.Error())
}

// handleReq serves one decoded request PDU, shared by the lockstep,
// tagged and wide loops. tenant is the requester's in-band identity
// (DefaultTenant below Version3); typed selects PDUStatusError
// encoding for overload rejections.
func (p *Proxy) handleReq(typ uint8, tenant uint32, payload []byte, s *proxyScratch, typed bool) (uint8, []byte) {
	switch typ {
	case pcp.PDUNamesReq:
		entries, err := p.Names()
		if err != nil {
			return errPDU(s, err, typed)
		}
		return pcp.PDUNamesResp, pcp.AppendNamesResp(s.respBuf[:0], entries)
	case pcp.PDUFetchReq:
		pmids, err := pcp.DecodeFetchReqInto(payload, s.pmids[:0])
		if err != nil {
			return pcp.PDUError, pcp.AppendError(s.respBuf[:0], err.Error())
		}
		s.pmids = pmids
		res, err := p.fetch(tenant, pmids, s.local)
		if err != nil {
			return errPDU(s, err, typed)
		}
		return pcp.PDUFetchResp, pcp.AppendFetchResp(s.respBuf[:0], res)
	case pcp.PDUFetchBatchReq:
		sets, err := pcp.DecodeFetchBatchReqInto(payload, s.sets[:0])
		if err != nil {
			return pcp.PDUError, pcp.AppendError(s.respBuf[:0], err.Error())
		}
		s.sets = sets
		results, err := p.fetchBatch(tenant, sets, s.local)
		if err != nil {
			return errPDU(s, err, typed)
		}
		return pcp.PDUFetchBatchResp, pcp.AppendFetchBatchResp(s.respBuf[:0], results, nil, "")
	default:
		return pcp.PDUError, pcp.AppendError(s.respBuf[:0], fmt.Sprintf("unknown PDU type %d", typ))
	}
}

// serveConn speaks the daemon side of the PDU protocol to one client:
// lockstep until a PDUVersionReq negotiates Version2 (tagged frames) or
// Version3 (wide frames carrying the tenant in-band).
func (p *Proxy) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := pcp.ServerHandshake(br, bw); err != nil {
		return
	}
	// Per-connection scratch reused across requests so steady-state
	// coalesced serving does not allocate.
	var payloadBuf []byte
	s := proxyScratch{local: make(map[string]*entry)}
	for {
		typ, payload, err := pcp.ReadPDUInto(br, payloadBuf)
		if err != nil {
			return
		}
		payloadBuf = payload
		var respType uint8
		var resp []byte
		var version uint32
		if typ == pcp.PDUVersionReq {
			respType, resp, version = pcp.NegotiateVersionV(payload, s.respBuf[:0])
			s.respBuf = resp
		} else {
			respType, resp = p.handleReq(typ, DefaultTenant, payload, &s, false)
		}
		if err := pcp.WritePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		switch {
		case version >= pcp.Version3:
			pcp.ServeTaggedWide(conn, br, func(typ uint8, tenant uint32, payload []byte) (uint8, []byte) {
				return p.handleReq(typ, tenant, payload, &s, true)
			})
			return
		case version >= pcp.Version2:
			pcp.ServeTagged(conn, br, func(typ uint8, payload []byte) (uint8, []byte) {
				return p.handleReq(typ, DefaultTenant, payload, &s, false)
			})
			return
		}
	}
}

// Close stops the listener, disconnects clients, drops the pooled
// upstream connections, and waits for handlers to finish. It is
// idempotent.
func (p *Proxy) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.closed)
		if p.queue != nil {
			p.queue.shutdown()
		}
		if p.ln != nil {
			err = p.ln.Close()
		}
		p.connMu.Lock()
		for conn := range p.conns {
			conn.Close()
		}
		p.connMu.Unlock()
		p.freeMu.Lock()
		for _, c := range p.free {
			c.Close()
		}
		p.free = nil
		p.freeMu.Unlock()
		p.wg.Wait()
	})
	return err
}
