package pcp

// CounterDelta returns the increase of a monotonic uint64 counter from
// prev to cur, correcting for wraparound. Unsigned subtraction computes
// the delta modulo 2^64, which is exactly the wrapped distance: a
// counter that advanced past the top (cur < prev) yields
// (2^64 - prev) + cur, not a huge negative number as float64
// subtraction would. Every consumer that differences counter samples —
// archive interpolation, metricql's rate()/delta(), report bandwidth —
// must go through this helper rather than subtracting floats.
func CounterDelta(prev, cur uint64) uint64 {
	return cur - prev
}
