// Package model is the analytic memory-traffic engine: closed-form
// predictions of the bytes each kernel moves to and from main memory,
// including the micro-architectural effects the paper investigates
// (store bypass, read-per-write, stride amplification past Eq. 7, the
// Eq. 3/4 GEMM cache regimes, L3 slice borrowing and its imperfect
// lateral cast-outs). It exists because exact line-level simulation of
// an N=4096 GEMM (10¹¹ accesses) is infeasible; tests cross-validate the
// engine against internal/cache at sizes where both run.
//
// All functions also predict a duration from the machine's rate
// parameters, so harnesses can play the traffic into a mem.Controller
// over simulated time and read it back through PAPI with realistic noise.
package model

import (
	"fmt"

	"papimc/internal/arch"
	"papimc/internal/simtime"
	"papimc/internal/units"
)

// Context describes the execution environment of a kernel batch.
type Context struct {
	Machine arch.Machine
	// ActiveCores is the number of cores running kernels (1 = serial;
	// the paper's batched runs use every usable core of the socket).
	ActiveCores int
	// SoftwarePrefetch models -fprefetch-loop-arrays.
	SoftwarePrefetch bool
	// CastoutSpillFraction is the fraction of lateral cast-outs routed
	// through memory (single-thread extraneous traffic, Fig. 3a).
	// Zero selects the default 1/3.
	CastoutSpillFraction float64
}

// Serial returns a single-core context on machine m.
func Serial(m arch.Machine) Context { return Context{Machine: m, ActiveCores: 1} }

// Batched returns a context using every usable core of one socket.
func Batched(m arch.Machine) Context {
	return Context{Machine: m, ActiveCores: m.Socket.UsableCores}
}

func (c Context) spillFraction() float64 {
	if c.CastoutSpillFraction == 0 {
		return 1.0 / 3.0
	}
	return c.CastoutSpillFraction
}

func (c Context) validate() {
	if c.ActiveCores <= 0 || c.ActiveCores > c.Machine.Socket.Cores {
		panic(fmt.Sprintf("model: %d active cores on a %d-core socket",
			c.ActiveCores, c.Machine.Socket.Cores))
	}
}

// EffectiveL3PerCore is the L3 capacity one core can realistically use:
// with idle core pairs present their slices are borrowable (a lone core
// reaches the full 110 MB on Summit); at full occupancy each core gets
// its contention-free share.
func (c Context) EffectiveL3PerCore() int64 {
	c.validate()
	return c.Machine.Socket.L3Total() / int64(c.ActiveCores)
}

// LocalL3PerCore is the capacity reachable without lateral cast-out:
// the pair's own slice, shared when both of its cores are active.
func (c Context) LocalL3PerCore() int64 {
	c.validate()
	slice := c.Machine.Socket.L3SlicePerPair
	if eff := c.EffectiveL3PerCore(); eff < slice {
		return eff
	}
	return slice
}

// IdleSlicesAvailable reports whether any core pair is fully idle
// (assuming compact thread placement), enabling lateral cast-out.
func (c Context) IdleSlicesAvailable() bool {
	c.validate()
	usedPairs := (c.ActiveCores + 1) / 2
	return usedPairs < c.Machine.Socket.CorePairs
}

// Traffic is a predicted traffic volume and duration for one socket.
type Traffic struct {
	ReadBytes  int64
	WriteBytes int64
	Duration   simtime.Duration
}

// TotalBytes returns reads plus writes.
func (t Traffic) TotalBytes() int64 { return t.ReadBytes + t.WriteBytes }

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// lruMiss returns the steady-state miss fraction of a cyclically
// re-traversed working set of `footprint` bytes in `capacity` bytes of
// cache: essentially a step (LRU keeps nothing useful once the set
// exceeds capacity), smoothed over ±10% to model partial conflict and
// the non-LRU reality of hashed slices.
func lruMiss(footprint, capacity int64) float64 {
	if capacity <= 0 {
		return 1
	}
	f, c := float64(footprint), float64(capacity)
	return clamp01((f - 0.9*c) / (0.2 * c))
}

// spillExtra returns the extra read+write bytes caused by imperfect
// lateral cast-outs when a single thread's footprint overflows its local
// slice into borrowed ones (Fig. 3a's extraneous traffic). It is zero at
// full occupancy (nothing to borrow).
func (c Context) spillExtra(footprint int64) (read, write int64) {
	if !c.IdleSlicesAvailable() {
		return 0, 0
	}
	local := c.LocalL3PerCore()
	eff := c.EffectiveL3PerCore()
	lateral := footprint - local
	if lateral <= 0 {
		return 0, 0
	}
	if max := eff - local; lateral > max {
		lateral = max
	}
	extra := int64(c.spillFraction() * float64(lateral))
	extra = units.RoundUpTx(extra)
	return extra, extra
}

// duration computes the kernel runtime from its demands: the slowest of
// the memory system (shared), the core's cache-side bandwidth, and its
// arithmetic rate.
func (c Context) duration(memBytes, cacheBytes int64, flops float64) simtime.Duration {
	s := c.Machine.Socket
	memTime := float64(memBytes) / s.MemBandwidth
	cacheTime := float64(cacheBytes) / (s.CacheBandwidth * float64(c.ActiveCores))
	flopTime := flops / (s.CoreFlopsPerSec * float64(c.ActiveCores))
	t := memTime
	if cacheTime > t {
		t = cacheTime
	}
	if flopTime > t {
		t = flopTime
	}
	return simtime.FromSeconds(t)
}

const elem = units.DoubleBytes

// GEMM predicts the total socket traffic of ctx.ActiveCores independent
// N×N reference GEMMs (Listings 3–4), one per core.
//
// Per core: A is read once (row reuse is immediate); C incurs a
// read-for-ownership per element because B's column access is a strided
// stream that disables store bypass; B is read once if it fits the
// core's effective L3 share and once per outer iteration otherwise —
// the Eq. 4 jump. A single thread borrowing idle slices additionally
// pays the lateral cast-out spill once its three matrices overflow the
// local slice.
func GEMM(ctx Context, n int64) Traffic {
	ctx.validate()
	mat := n * n * elem
	miss := lruMiss(mat, ctx.EffectiveL3PerCore())
	readsB := float64(mat) * (1 + float64(n-1)*miss)
	reads := 2*mat + int64(readsB)
	writes := mat
	er, ew := ctx.spillExtra(3 * mat)
	reads += er
	writes += ew
	k := int64(ctx.ActiveCores)
	flops := 2 * float64(n) * float64(n) * float64(n) * float64(ctx.ActiveCores)
	cacheBytes := (2*n*n*n + n*n) * elem * k
	return Traffic{
		ReadBytes:  reads * k,
		WriteBytes: writes * k,
		Duration:   ctx.duration((reads+writes)*k, cacheBytes, flops),
	}
}

// CappedGEMV predicts the total socket traffic of ctx.ActiveCores
// independent capped GEMVs (Listing 2): y_i = Σ A[i%p][k]·x[k] for
// i < m. The x vector is cached after its first read; A is read once if
// its p×n footprint fits the effective share and once per row-cycle
// otherwise (the paper's experiments size A to exceed the share, giving
// the m·n expectation); y's sparse store stream write-allocates, costing
// a read per element.
func CappedGEMV(ctx Context, m, n, p int64) Traffic {
	ctx.validate()
	if p > m {
		p = m
	}
	matA := p * n * elem
	vecX := n * elem
	vecY := m * elem
	missA := lruMiss(matA+vecX, ctx.EffectiveL3PerCore())
	cycles := float64(m)/float64(p) - 1 // extra traversals beyond the first
	if cycles < 0 {
		cycles = 0
	}
	readsA := float64(matA) * (1 + cycles*missA)
	missX := lruMiss(vecX, ctx.EffectiveL3PerCore())
	readsX := float64(vecX) * (1 + float64(m-1)*missX)
	reads := int64(readsA) + int64(readsX) + vecY // + y RFO
	writes := vecY
	er, ew := ctx.spillExtra(matA + vecX + vecY)
	reads += er
	writes += ew
	k := int64(ctx.ActiveCores)
	flops := 2 * float64(m) * float64(n) * float64(ctx.ActiveCores)
	cacheBytes := (2*m*n + m) * elem * k
	return Traffic{
		ReadBytes:  reads * k,
		WriteBytes: writes * k,
		Duration:   ctx.duration((reads+writes)*k, cacheBytes, flops),
	}
}

// SquareGEMV predicts the unmodified M=N GEMV's traffic.
func SquareGEMV(ctx Context, m int64) Traffic {
	return CappedGEMV(ctx, m, m, m)
}
