// Package pcpcomp implements PAPI's PCP component: counters read
// indirectly through the Performance Metrics Collector Daemon, so no
// elevated privileges are needed. This is the paper's central artifact —
// the route by which ordinary Summit users measure memory traffic.
//
// Event names follow Table I's spelling:
//
//	pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87
//
// where the trailing ":cpuNNN" qualifier selects the per-socket instance,
// mapped onto the daemon's ".cpuNNN"-suffixed metric names.
package pcpcomp

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"papimc/internal/papi"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// Source is what the component needs from its metric provider: the
// pcp.Client satisfies it (live daemon or pmproxy), and so do
// archive.Recorder (live + recording tee) and archive.Replay (offline
// playback of a recording), letting the same profiling code run against
// any of them.
type Source interface {
	Names() ([]pcp.NameEntry, error)
	Lookup(name string) (uint32, error)
	Fetch(pmids []uint32) (pcp.FetchResult, error)
}

// Component reads metrics from a PCP metric source — typically a PMCD
// daemon over a client connection, but any Source works.
type Component struct {
	client Source
}

// New wraps an existing metric source (a client connection, a recorder,
// or an archive replay).
func New(client Source) *Component { return &Component{client: client} }

// Dial connects to a PMCD daemon (or a pmproxy) and wraps the connection.
func Dial(addr string) (*Component, error) {
	c, err := pcp.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Component{client: c}, nil
}

// Name implements papi.Component.
func (c *Component) Name() string { return "pcp" }

// instanceSuffix matches the daemon's per-socket instance suffix.
var instanceSuffix = regexp.MustCompile(`\.(cpu\d+)$`)

// nativeToMetric converts the user-facing ":cpuNNN" qualifier spelling
// into the daemon's ".cpuNNN" metric name.
func nativeToMetric(native string) string {
	if base, qual, ok := strings.Cut(native, ":"); ok && strings.HasPrefix(qual, "cpu") {
		return base + "." + qual
	}
	return native
}

// metricToNative is the inverse, used when listing.
func metricToNative(metric string) string {
	if m := instanceSuffix.FindStringSubmatch(metric); m != nil {
		return strings.TrimSuffix(metric, "."+m[1]) + ":" + m[1]
	}
	return metric
}

// ListEvents implements papi.Component by querying the daemon's
// namespace.
func (c *Component) ListEvents() ([]papi.EventInfo, error) {
	entries, err := c.client.Names()
	if err != nil {
		return nil, err
	}
	out := make([]papi.EventInfo, len(entries))
	for i, e := range entries {
		out[i] = papi.EventInfo{
			Name:        metricToNative(e.Name),
			Description: fmt.Sprintf("PCP metric %s", e.Name),
			Units:       unitsFor(e.Name),
		}
	}
	return out, nil
}

// unitsFor guesses display units from the metric name.
func unitsFor(metric string) string {
	switch {
	case strings.Contains(metric, "BYTES"):
		return "bytes"
	case strings.Contains(metric, "power"):
		return "mW"
	default:
		return ""
	}
}

// Describe implements papi.Component.
func (c *Component) Describe(native string) (papi.EventInfo, error) {
	metric := nativeToMetric(native)
	if _, err := c.client.Lookup(metric); err != nil {
		return papi.EventInfo{}, fmt.Errorf("%w: %v", papi.ErrNoEvent, err)
	}
	return papi.EventInfo{
		Name:        native,
		Description: fmt.Sprintf("PCP metric %s", metric),
		Units:       unitsFor(metric),
	}, nil
}

// NewCounters implements papi.Component.
func (c *Component) NewCounters(natives []string) (papi.Counters, error) {
	pmids := make([]uint32, len(natives))
	for i, n := range natives {
		id, err := c.client.Lookup(nativeToMetric(n))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", papi.ErrNoEvent, err)
		}
		pmids[i] = id
	}
	return &counters{client: c.client, pmids: pmids}, nil
}

// fetchIntoSource is the allocation-free fetch the pcp.Client offers;
// sources that implement it let ReadAt reuse one decoded result across
// reads instead of allocating values every sample.
type fetchIntoSource interface {
	FetchInto(pmids []uint32, res *pcp.FetchResult) error
}

type counters struct {
	client Source
	pmids  []uint32
	res    pcp.FetchResult // reused across reads when the source allows
	out    []uint64        // reused result buffer
	closed bool
}

// ReadAt implements papi.Counters. The daemon decides the sampling
// instant (its last collection tick); t is unused, which is precisely
// the indirection the paper evaluates.
func (s *counters) ReadAt(t simtime.Time) ([]uint64, error) {
	if s.closed {
		return nil, errors.New("pcpcomp: counters closed")
	}
	_ = t
	res := s.res
	if fi, ok := s.client.(fetchIntoSource); ok {
		if err := fi.FetchInto(s.pmids, &s.res); err != nil {
			return nil, err
		}
		res = s.res
	} else {
		var err error
		res, err = s.client.Fetch(s.pmids)
		if err != nil {
			return nil, err
		}
	}
	if len(res.Values) != len(s.pmids) {
		return nil, fmt.Errorf("pcpcomp: daemon returned %d values for %d metrics", len(res.Values), len(s.pmids))
	}
	if cap(s.out) < len(res.Values) {
		s.out = make([]uint64, len(res.Values))
	}
	s.out = s.out[:len(res.Values)]
	for i, v := range res.Values {
		if v.Status != pcp.StatusOK {
			return nil, fmt.Errorf("pcpcomp: metric pmid %d failed with status %d", v.PMID, v.Status)
		}
		s.out[i] = v.Value
	}
	return s.out, nil
}

func (s *counters) Close() error {
	s.closed = true
	return nil
}
