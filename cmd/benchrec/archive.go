package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"papimc/internal/archive"
	"papimc/internal/pcp"
	"papimc/internal/stats"
)

// The archive record simulates a long recording at a 1ms cadence with
// 1s and 60s rollup tiers: 2M rows is a ~33-minute recording, and the
// pushdown window below covers most of it — the same shape as a 30-day
// dashboard query over a production archive, scaled to CI time.
const (
	archCadence  = int64(time.Millisecond)
	archBaseRows = 2_000
)

var archRollups = []int64{int64(time.Second), int64(time.Minute)}

// SizeEntry is the query-latency row for one archive size.
type SizeEntry struct {
	Label        string  `json:"label"`
	Rows         int     `json:"rows"`
	EncodedBytes int     `json:"encoded_bytes"`
	WindowNs     float64 `json:"samples_window_ns"` // fixed 100-row range query
	ValueAtNs    float64 `json:"value_at_ns"`       // point lookup mid-span
	RateNs       float64 `json:"rate_ns"`           // rate over a trailing 1s window
}

// archiveMain records the archive tier's headline numbers
// (BENCH_8.json): block-index query latency as the archive grows
// 1x/32x/1000x, the rollup-pushdown speedup for a long window, and the
// read-latency tail while the background compactor churns.
func archiveMain(out string, duration time.Duration) {
	report := struct {
		Note       string      `json:"note"`
		Sizes      []SizeEntry `json:"sizes"`
		Growth1000 float64     `json:"window_query_growth_1000x"` // window ns at 1000x / 1x
		Pushdown   struct {
			WindowSeconds float64 `json:"window_seconds"`
			Resolution    string  `json:"resolution"`
			RawNs         float64 `json:"raw_ns"`
			RollupNs      float64 `json:"rollup_ns"`
			Speedup       float64 `json:"speedup"`
			RawValue      float64 `json:"raw_avg"`
			RollupValue   float64 `json:"rollup_avg"`
		} `json:"pushdown"`
		Compaction struct {
			Reads    int64   `json:"reads"`
			Folded   int     `json:"rows_folded"`
			P50Us    float64 `json:"p50_us"`
			P99Us    float64 `json:"p99_us"`
			QuietP99 float64 `json:"quiet_p99_us"`
		} `json:"compaction_concurrent_reads"`
	}{
		Note: "archive tier at production scale: fixed-width range-query latency as the raw tier " +
			"grows 1x/32x/1000x (block index keeps it flat), avg_over pushdown into rollup tiers vs " +
			"a forced raw scan over the same window, and range-read latency while the background " +
			"compactor folds aged raw blocks concurrently.",
	}

	// Query latency vs size: the same fixed-width queries against
	// archives 1x, 32x, and 1000x the base size. With the block index
	// these are O(log blocks + answer), so the latencies stay flat.
	var biggest *archive.Archive
	for _, sz := range []struct {
		label string
		rows  int
	}{{"1x", archBaseRows}, {"32x", 32 * archBaseRows}, {"1000x", 1000 * archBaseRows}} {
		a := buildBenchArchive(sz.rows, 0)
		biggest = a
		first, last, _ := a.Span()
		windowLo := last - 100*archCadence
		e := SizeEntry{Label: sz.label, Rows: sz.rows, EncodedBytes: a.Stats().EncodedBytes}
		e.WindowNs, _ = measureOp(300*time.Millisecond, func() {
			if _, err := a.Samples(windowLo, last); err != nil {
				fatal(err)
			}
		})
		mid := (first + last) / 2
		e.ValueAtNs, _ = measureOp(300*time.Millisecond, func() {
			if _, err := a.ValueAt(1, mid); err != nil {
				fatal(err)
			}
		})
		e.RateNs, _ = measureOp(300*time.Millisecond, func() {
			if _, err := a.Rate(1, last-int64(time.Second), last); err != nil {
				fatal(err)
			}
		})
		report.Sizes = append(report.Sizes, e)
		fmt.Printf("size %-6s rows=%-8d window=%8.0f ns  value_at=%8.0f ns  rate=%8.0f ns  encoded=%d B\n",
			sz.label, sz.rows, e.WindowNs, e.ValueAtNs, e.RateNs, e.EncodedBytes)
	}
	report.Growth1000 = round2(report.Sizes[2].WindowNs / report.Sizes[0].WindowNs)
	fmt.Printf("window-query growth at 1000x: %.2fx\n\n", report.Growth1000)

	// Pushdown: avg_over a window covering 90% of the biggest archive,
	// answered from the coarsest qualifying rollup tier versus a forced
	// raw scan of the same window. Both paths see the same archive; the
	// values are printed so divergence would be visible in the record.
	first, last, _ := biggest.Span()
	t0, t1 := first+(last-first)/10, last
	res := biggest.SelectResolution(t0, t1)
	if res == archive.ResRaw {
		fatal(fmt.Errorf("pushdown window unexpectedly selected the raw path"))
	}
	report.Pushdown.WindowSeconds = float64(t1-t0) / 1e9
	report.Pushdown.Resolution = res.String()
	var rawAgg, ruAgg archive.WindowAgg
	report.Pushdown.RawNs, _ = measureOp(time.Second, func() {
		var err error
		if rawAgg, err = biggest.WindowAt(archive.ResRaw, 1, t0, t1); err != nil {
			fatal(err)
		}
	})
	report.Pushdown.RollupNs, _ = measureOp(time.Second, func() {
		var err error
		if ruAgg, err = biggest.WindowAt(res, 1, t0, t1); err != nil {
			fatal(err)
		}
	})
	report.Pushdown.RawValue = rawAgg.Sum / float64(rawAgg.Count)
	report.Pushdown.RollupValue = ruAgg.Sum / float64(ruAgg.Count)
	report.Pushdown.Speedup = round2(report.Pushdown.RawNs / report.Pushdown.RollupNs)
	fmt.Printf("pushdown %.0fs window at %v: raw=%.0f ns rollup=%.0f ns  speedup=%.1fx  (avg %.6g vs %.6g)\n\n",
		report.Pushdown.WindowSeconds, res, report.Pushdown.RawNs, report.Pushdown.RollupNs,
		report.Pushdown.Speedup, report.Pushdown.RawValue, report.Pushdown.RollupValue)

	// Compaction-concurrent reads: a writer extends the archive while the
	// compactor folds aged raw blocks as fast as it can; readers time
	// fixed-width range queries near the head. The quiet p99 (same-size
	// archive, nothing running) is recorded next to it so the record
	// shows what concurrency costs the tail.
	quiet := buildBenchArchive(200_000, 0)
	_, qLast, _ := quiet.Span()
	var qh stats.Histogram
	deadline := time.Now().Add(duration / 4)
	for time.Now().Before(deadline) {
		start := time.Now()
		if _, err := quiet.Samples(qLast-100*archCadence, qLast); err != nil {
			fatal(err)
		}
		qh.Record(time.Since(start).Nanoseconds())
	}
	report.Compaction.QuietP99 = round2(qh.Quantile(0.99) / 1e3)

	live := buildBenchArchive(200_000, 50_000*archCadence)
	stopCompact := live.StartCompactor(200 * time.Microsecond)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		row := archive.Sample{Values: make([]uint64, 4)}
		for i := 200_000; !stop.Load(); i++ {
			fillBenchRow(&row, i)
			if err := live.AppendSample(row); err != nil {
				fatal(err)
			}
		}
	}()
	var h stats.Histogram
	deadline = time.Now().Add(duration)
	for time.Now().Before(deadline) {
		_, last, _ := live.Span()
		start := time.Now()
		if _, err := live.Samples(last-100*archCadence, last); err != nil {
			fatal(err)
		}
		h.Record(time.Since(start).Nanoseconds())
	}
	stop.Store(true)
	wg.Wait()
	stopCompact()
	report.Compaction.Reads = h.Count()
	report.Compaction.Folded = live.Stats().Folded
	report.Compaction.P50Us = round2(h.Quantile(0.50) / 1e3)
	report.Compaction.P99Us = round2(h.Quantile(0.99) / 1e3)
	fmt.Printf("compaction-concurrent reads: %d reads, %d rows folded, p50=%.1fus p99=%.1fus (quiet p99=%.1fus)\n",
		report.Compaction.Reads, report.Compaction.Folded,
		report.Compaction.P50Us, report.Compaction.P99Us, report.Compaction.QuietP99)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// buildBenchArchive appends rows deterministic samples at the bench
// cadence: two counters at different slopes, a wrapping counter, and a
// sawtooth level.
func buildBenchArchive(rows int, rawRetention int64) *archive.Archive {
	a, err := archive.New([]pcp.NameEntry{
		{PMID: 1, Name: "bench.counter.a"},
		{PMID: 2, Name: "bench.counter.b"},
		{PMID: 3, Name: "bench.counter.wrap"},
		{PMID: 4, Name: "bench.level"},
	}, archive.Options{
		Rollups:      archRollups,
		RawRetention: rawRetention,
		MaxBytes:     1 << 40, // size sweep owns retention; never evict
		MaxBuckets:   1 << 30,
	})
	if err != nil {
		fatal(err)
	}
	row := archive.Sample{Values: make([]uint64, 4)}
	for i := 0; i < rows; i++ {
		fillBenchRow(&row, i)
		if err := a.AppendSample(row); err != nil {
			fatal(err)
		}
	}
	return a
}

func fillBenchRow(row *archive.Sample, i int) {
	row.Timestamp = int64(i) * archCadence
	row.Values[0] = uint64(i) * 640
	row.Values[1] = uint64(i) * 17
	row.Values[2] = ^uint64(0) - 100_000 + uint64(i)*4096 // wraps early, keeps wrapping
	row.Values[3] = uint64(500 + 100*(i%7))
}

// measureOp times fn in batches until the budget elapses and returns
// its mean latency.
func measureOp(budget time.Duration, fn func()) (nsPerOp float64, ops int64) {
	fn() // warm caches (decoded blocks) so the steady state is measured
	deadline := time.Now().Add(budget)
	start := time.Now()
	for time.Now().Before(deadline) {
		for i := 0; i < 16; i++ {
			fn()
		}
		ops += 16
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops), ops
}
