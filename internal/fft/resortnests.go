package fft

import (
	"papimc/internal/loopnest"
	"papimc/internal/trace"
	"papimc/internal/units"
)

// Loop-nest traffic descriptors of the re-sorting listings (5, 7, 8, 9).
// These drive the exact cache simulator for Figs. 6–9 at small sizes and
// document precisely which access pattern each figure measures; the
// analytic engine (internal/model) covers the paper-scale sweeps.

const complexElem = units.ComplexBytes

// S1CFLoopNest1Nest is Listing 5: the sequential copy of the 1D input
// into the 3D tmp array. Both references are unit-stride, so without
// software prefetch the tmp stores bypass the cache (Fig. 6a).
func (g Grid) S1CFLoopNest1Nest(as *trace.AddressSpace, prefetch bool) *loopnest.Nest {
	p, r, n := int64(g.Planes()), int64(g.Rows()), int64(g.Cols())
	in := as.Alloc("s1cf.in", p*r*n*complexElem)
	tmp := as.Alloc("s1cf.tmp", p*r*n*complexElem)
	// Linear index (plane·ROWS + row)·COLS + col for both arrays.
	idx := loopnest.Add(
		loopnest.Var(0, r*n),
		loopnest.Var(1, n),
		loopnest.Var(2, 1),
	)
	return &loopnest.Nest{
		Name: "S1CF.LN1",
		Loops: []loopnest.Loop{
			{Name: "plane", Extent: p},
			{Name: "row", Extent: r},
			{Name: "col", Extent: n},
		},
		Refs: []loopnest.Ref{
			{Array: in, ElemSize: complexElem, Kind: trace.Load, Index: idx},
			{Array: tmp, ElemSize: complexElem, Kind: trace.Store, Index: idx},
		},
		SoftwarePrefetch: prefetch,
	}
}

// S1CFLoopNest2Nest is Listing 7: tmp is traversed column-major (a
// stride of COLS elements between consecutive reads) while out fills
// sequentially. The strided stream forces out's stores to
// write-allocate, and past the Eq. 7 working set each tmp element costs
// a whole transaction (Fig. 7a's five-reads regime).
func (g Grid) S1CFLoopNest2Nest(as *trace.AddressSpace, prefetch bool) *loopnest.Nest {
	p, r, n := int64(g.Planes()), int64(g.Rows()), int64(g.Cols())
	tmp := as.Alloc("s1cf.tmp2", p*r*n*complexElem)
	out := as.Alloc("s1cf.out", p*r*n*complexElem)
	return &loopnest.Nest{
		Name: "S1CF.LN2",
		Loops: []loopnest.Loop{
			{Name: "col", Extent: n},
			{Name: "plane", Extent: p},
			{Name: "row", Extent: r},
		},
		Refs: []loopnest.Ref{
			// tmp[plane][row][col] read with col fixed in the outer
			// loop: consecutive (plane,row) steps stride by COLS.
			{Array: tmp, ElemSize: complexElem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(1, r*n), loopnest.Var(2, n), loopnest.Var(0, 1))},
			// out[col][plane][row] written sequentially.
			{Array: out, ElemSize: complexElem, Kind: trace.Store,
				Index: loopnest.Add(loopnest.Var(0, p*r), loopnest.Var(1, r), loopnest.Var(2, 1))},
		},
		SoftwarePrefetch: prefetch,
	}
}

// S1CFCombinedNest is Listing 8: the fused re-sort. in is read
// sequentially; out is written with a stride of PLANES·ROWS elements —
// a stream whose jumps are too large to train, so its stores
// write-allocate (Fig. 8's two reads per write).
func (g Grid) S1CFCombinedNest(as *trace.AddressSpace, prefetch bool) *loopnest.Nest {
	p, r, n := int64(g.Planes()), int64(g.Rows()), int64(g.Cols())
	in := as.Alloc("s1cf.in", p*r*n*complexElem)
	out := as.Alloc("s1cf.out", p*r*n*complexElem)
	return &loopnest.Nest{
		Name: "S1CF.combined",
		Loops: []loopnest.Loop{
			{Name: "plane", Extent: p},
			{Name: "row", Extent: r},
			{Name: "col", Extent: n},
		},
		Refs: []loopnest.Ref{
			{Array: in, ElemSize: complexElem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(0, r*n), loopnest.Var(1, n), loopnest.Var(2, 1))},
			{Array: out, ElemSize: complexElem, Kind: trace.Store,
				Index: loopnest.Add(loopnest.Var(2, p*r), loopnest.Var(0, r), loopnest.Var(1, 1))},
		},
		SoftwarePrefetch: prefetch,
	}
}

// S1PFNest is the planewise first-stage pack: the input is traversed
// sequentially while the per-destination chunks fill in short strides of
// ROWS elements. Those strides stay within a cache line for realistic
// grids, so the store streams remain bypassable — the reason the paper
// reports "the structure and performance of S1PF ... are similar to
// those of S1CF" and shows only the colwise results.
func (g Grid) S1PFNest(as *trace.AddressSpace, prefetch bool) *loopnest.Nest {
	p, r, n := int64(g.Planes()), int64(g.Rows()), int64(g.Cols())
	zc := int64(g.N / g.C)
	in := as.Alloc("s1pf.in", p*r*n*complexElem)
	// The C chunks are contiguous in one buffer, chunk j at offset
	// j·(p·zc·r); within it the store lands at (plane·zc + z)·r + row
	// with col = j·zc + z.
	out := as.Alloc("s1pf.chunks", p*r*n*complexElem)
	return &loopnest.Nest{
		Name: "S1PF",
		Loops: []loopnest.Loop{
			{Name: "plane", Extent: p},
			{Name: "row", Extent: r},
			{Name: "j", Extent: int64(g.C)},
			{Name: "z", Extent: zc},
		},
		Refs: []loopnest.Ref{
			// in[(plane·r + row)·n + j·zc + z]: sequential overall.
			{Array: in, ElemSize: complexElem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(0, r*n), loopnest.Var(1, n),
					loopnest.Var(2, zc), loopnest.Var(3, 1))},
			// chunk_j[(plane·zc + z)·r + row]: stride r elements per z.
			{Array: out, ElemSize: complexElem, Kind: trace.Store,
				Index: loopnest.Add(loopnest.Var(2, p*zc*r), loopnest.Var(0, zc*r),
					loopnest.Var(3, r), loopnest.Var(1, 1))},
		},
		SoftwarePrefetch: prefetch,
	}
}

// S2PFNest is the planewise second-stage pack: like S2CF it copies runs
// of N/r contiguous elements, just grouped per source plane first, so
// its traffic is indistinguishable from S2CF's.
func (g Grid) S2PFNest(as *trace.AddressSpace, prefetch bool) *loopnest.Nest {
	p := int64(g.Planes())
	zc := int64(g.N / g.C)
	yr := int64(g.N / g.R)
	n := int64(g.N)
	in := as.Alloc("s2pf.in", p*zc*n*complexElem)
	out := as.Alloc("s2pf.chunks", int64(g.R)*p*zc*yr*complexElem)
	return &loopnest.Nest{
		Name: "S2PF",
		Loops: []loopnest.Loop{
			{Name: "plane", Extent: p},
			{Name: "z", Extent: zc},
			{Name: "dst", Extent: int64(g.R)},
			{Name: "y", Extent: yr},
		},
		Refs: []loopnest.Ref{
			// in[(plane·zc + z)·N + dst·yr + y]: sequential overall.
			{Array: in, ElemSize: complexElem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(0, zc*n), loopnest.Var(1, n),
					loopnest.Var(2, yr), loopnest.Var(3, 1))},
			// chunk_dst[(plane·zc + z)·yr + y].
			{Array: out, ElemSize: complexElem, Kind: trace.Store,
				Index: loopnest.Add(loopnest.Var(2, p*zc*yr), loopnest.Var(0, zc*yr),
					loopnest.Var(1, yr), loopnest.Var(3, 1))},
		},
		SoftwarePrefetch: prefetch,
	}
}

// S2CFNest is Listing 9's pattern as realized by the second-stage pack:
// the mid array [plane][z'][y] is read in runs of N/r contiguous
// elements (the innermost traversal dimension matches the innermost
// layout dimension, amortizing the outer stride) and out fills
// sequentially — so the stores bypass (Fig. 9a's one read, one write).
func (g Grid) S2CFNest(as *trace.AddressSpace, prefetch bool) *loopnest.Nest {
	p := int64(g.Planes())
	zc := int64(g.N / g.C)
	yr := int64(g.N / g.R)
	n := int64(g.N)
	in := as.Alloc("s2cf.in", p*zc*n*complexElem)
	out := as.Alloc("s2cf.out", int64(g.R)*p*zc*yr*complexElem)
	return &loopnest.Nest{
		Name: "S2CF",
		Loops: []loopnest.Loop{
			{Name: "dst", Extent: int64(g.R)},
			{Name: "plane", Extent: p},
			{Name: "z", Extent: zc},
			{Name: "y", Extent: yr},
		},
		Refs: []loopnest.Ref{
			// in[(plane·zc + z)·N + dst·yr + y]: y contiguous.
			{Array: in, ElemSize: complexElem, Kind: trace.Load,
				Index: loopnest.Add(loopnest.Var(1, zc*n), loopnest.Var(2, n),
					loopnest.Var(0, yr), loopnest.Var(3, 1))},
			// out fills sequentially across the whole traversal.
			{Array: out, ElemSize: complexElem, Kind: trace.Store,
				Index: loopnest.Add(loopnest.Var(0, p*zc*yr), loopnest.Var(1, zc*yr),
					loopnest.Var(2, yr), loopnest.Var(3, 1))},
		},
		SoftwarePrefetch: prefetch,
	}
}
