// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each BenchmarkFig*/BenchmarkTable* regenerates its
// experiment end to end on the simulated testbed (quick parameter
// ranges; run cmd/figures for the paper-scale sweeps) and reports the
// headline quantity as a custom metric, so `go test -bench .` prints the
// reproduced results next to the timings:
//
//   - read-err / write-err: mean relative error of measured vs expected
//     traffic (Figs. 2–5; the jump regions are excluded from the mean
//     where the paper's expectation deliberately stops applying);
//   - reads-per-write: the traffic-ratio signature (Figs. 6–9);
//   - bandwidth and ratio columns (Fig. 10);
//   - samples and phases (Figs. 11–12).
//
// Micro-benchmarks of the substrates (cache simulation rate, PDU
// round-trip, FFT throughput, EventSet read latency) follow at the end.
package papimc_test

import (
	"fmt"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/archive"
	"papimc/internal/cache"
	"papimc/internal/fft"
	"papimc/internal/figures"
	"papimc/internal/harness"
	"papimc/internal/kernels"
	"papimc/internal/metricql"
	"papimc/internal/model"
	"papimc/internal/mpi"
	"papimc/internal/node"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/trace"
	"papimc/internal/xrand"
)

var quick = figures.Options{Quick: true}

// meanPointErrors averages the relative errors of a sweep, keeping only
// sizes where the dashed-line expectation applies (below the cache
// regime boundary given by keep).
func meanPointErrors(b *testing.B, pts []harness.Point, keep func(size int64) bool) {
	b.Helper()
	var readErr, writeErr float64
	n := 0
	for _, p := range pts {
		if keep != nil && !keep(p.Size) {
			continue
		}
		readErr += p.ReadError()
		writeErr += p.WriteError()
		n++
	}
	if n == 0 {
		b.Fatal("no points in the comparable regime")
	}
	b.ReportMetric(readErr/float64(n), "read-err")
	b.ReportMetric(writeErr/float64(n), "write-err")
}

func benchGEMMFig(b *testing.B, gen func(figures.Options) (*figures.Result, error),
	cfg harness.GEMMConfig, keep func(int64) bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pts, err := harness.GEMMSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			meanPointErrors(b, pts, keep)
		}
	}
	_ = gen
}

func quickGEMMConfig(m arch.Machine, batched bool, route node.Route, reps harness.RepsPolicy) harness.GEMMConfig {
	return harness.GEMMConfig{
		Machine: m, Batched: batched, Route: route, Reps: reps,
		Sizes:   []int64{128, 256, 512, 700, 1024, 2048},
		Options: node.Options{Seed: 20230515},
	}
}

// cachedRegime keeps sizes below the Eq. 4 boundary where the
// expectation holds.
func cachedRegime(n int64) bool { return n <= 800 }

// BenchmarkFig2a: serial GEMM, 1 rep, PCP. The paper's point is that
// the error is LARGE here; the metric records it.
func BenchmarkFig2a(b *testing.B) {
	benchGEMMFig(b, figures.Fig2a,
		quickGEMMConfig(arch.Summit(), false, node.ViaPCP, harness.SingleRep), cachedRegime)
}

// BenchmarkFig2b: serial GEMM, 1 rep, perf_uncore — equally noisy.
func BenchmarkFig2b(b *testing.B) {
	benchGEMMFig(b, figures.Fig2b,
		quickGEMMConfig(arch.Tellico(), false, node.Direct, harness.SingleRep), cachedRegime)
}

// BenchmarkFig3a: adaptive reps shrink the serial error.
func BenchmarkFig3a(b *testing.B) {
	benchGEMMFig(b, figures.Fig3a,
		quickGEMMConfig(arch.Summit(), false, node.ViaPCP, harness.AdaptiveReps), cachedRegime)
}

// BenchmarkFig3b: batched GEMM matches the expectation tightly below
// the Eq. 4 jump.
func BenchmarkFig3b(b *testing.B) {
	benchGEMMFig(b, figures.Fig3b,
		quickGEMMConfig(arch.Summit(), true, node.ViaPCP, harness.AdaptiveReps), cachedRegime)
}

// BenchmarkFig4a/b: the Tellico (perf_uncore) counterparts.
func BenchmarkFig4a(b *testing.B) {
	benchGEMMFig(b, figures.Fig4a,
		quickGEMMConfig(arch.Tellico(), false, node.Direct, harness.AdaptiveReps), cachedRegime)
}

func BenchmarkFig4b(b *testing.B) {
	benchGEMMFig(b, figures.Fig4b,
		quickGEMMConfig(arch.Tellico(), true, node.Direct, harness.AdaptiveReps), cachedRegime)
}

func benchGEMV(b *testing.B, m arch.Machine, route node.Route) {
	cfg := harness.GEMVConfig{
		Machine: m, Route: route, Reps: harness.AdaptiveReps,
		Sizes:   []int64{512, 1280, 4096, 16384, 65536},
		Options: node.Options{Seed: 20230515},
	}
	for i := 0; i < b.N; i++ {
		pts, err := harness.CappedGEMVSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			meanPointErrors(b, pts, nil)
		}
	}
}

// BenchmarkFig5a/b: capped GEMV via PCP and perf_uncore.
func BenchmarkFig5a(b *testing.B) { benchGEMV(b, arch.Summit(), node.ViaPCP) }
func BenchmarkFig5b(b *testing.B) { benchGEMV(b, arch.Tellico(), node.Direct) }

func benchResort(b *testing.B, routine harness.ResortRoutine, prefetch bool, wantRatio float64) {
	cfg := harness.ResortConfig{
		Machine: arch.Summit(), Routine: routine, Prefetch: prefetch,
		GridR: 2, GridC: 4, Route: node.ViaPCP,
		Sizes: []int64{512, 1344}, Runs: 5,
		Options: node.Options{Seed: 20230515},
	}
	for i := 0; i < b.N; i++ {
		pts, err := harness.ResortSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			p := pts[0]
			ratio := float64(p.ExpectedReadBytes) / float64(p.ExpectedWriteBytes)
			b.ReportMetric(ratio, "reads-per-write")
			if wantRatio != 0 && (ratio < wantRatio*0.9 || ratio > wantRatio*1.1) {
				b.Fatalf("expected ratio %.1f, model says %.2f", wantRatio, ratio)
			}
		}
	}
}

// BenchmarkFig6a/b: S1CF loop nest 1 — 1 read/write without prefetch,
// 2 with.
func BenchmarkFig6a(b *testing.B) { benchResort(b, harness.S1CFLoopNest1, false, 1) }
func BenchmarkFig6b(b *testing.B) { benchResort(b, harness.S1CFLoopNest1, true, 2) }

// BenchmarkFig7a/b: S1CF loop nest 2 — 2 reads per write in the
// cache-friendly regime (5 past Eq. 7, see the sweep table).
func BenchmarkFig7a(b *testing.B) { benchResort(b, harness.S1CFLoopNest2, false, 2) }
func BenchmarkFig7b(b *testing.B) { benchResort(b, harness.S1CFLoopNest2, true, 2) }

// BenchmarkFig8: the combined nest — 2 reads per write.
func BenchmarkFig8(b *testing.B) { benchResort(b, harness.S1CFCombined, false, 2) }

// BenchmarkFig9a/b: S2CF — 1 read per write (2 with prefetch).
func BenchmarkFig9a(b *testing.B) { benchResort(b, harness.S2CFRoutine, false, 1) }
func BenchmarkFig9b(b *testing.B) { benchResort(b, harness.S2CFRoutine, true, 2) }

// BenchmarkFig10: the 16-node, 4×8-grid bandwidth comparison.
func BenchmarkFig10(b *testing.B) {
	var rows []harness.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = harness.Fig10(arch.Summit(), []int64{1344, 2016})
	}
	for _, r := range rows {
		b.ReportMetric(r.BandwidthGBs, fmt.Sprintf("%s-N%d-GB/s", r.Routine, r.N))
	}
}

// BenchmarkFig11: the full multi-component FFT profile.
func BenchmarkFig11(b *testing.B) {
	var res *figures.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig11(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Table.Rows)), "samples")
}

// BenchmarkFig12: the QMCPACK-analogue profile.
func BenchmarkFig12(b *testing.B) {
	var res *figures.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = figures.Fig12(quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Table.Rows)), "samples")
}

// BenchmarkTableI / BenchmarkTableII: event inventory generation.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.TableI(quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.TableII(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

type nullMem struct{}

func (nullMem) MemRead(addr, bytes int64)  {}
func (nullMem) MemWrite(addr, bytes int64) {}

// BenchmarkCacheSimAccess: exact-simulator throughput (accesses/op).
func BenchmarkCacheSimAccess(b *testing.B) {
	h := cache.New(cache.Config{Socket: arch.Summit().Socket, ActiveCores: []int{0}}, nullMem{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, trace.Access{Addr: int64(i%1000000) * 8, Size: 8, Kind: trace.Load})
	}
}

// BenchmarkGEMMExactSim: the line-level simulation of one N=96 GEMM.
func BenchmarkGEMMExactSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		soc := arch.Summit().Socket
		h := cache.New(cache.Config{Socket: soc, ActiveCores: []int{0}}, nullMem{})
		nest := kernels.GEMMNest(trace.NewAddressSpace(), "g", 96)
		nest.Execute(0, h)
		h.Drain()
	}
}

// BenchmarkGEMMModel: the analytic engine's cost for one prediction.
func BenchmarkGEMMModel(b *testing.B) {
	ctx := model.Batched(arch.Summit())
	for i := 0; i < b.N; i++ {
		model.GEMM(ctx, 2048)
	}
}

// BenchmarkFFT1D: the mixed-radix FFT at the paper's N=1344.
func BenchmarkFFT1D(b *testing.B) {
	rng := xrand.New(1)
	x := make([]complex128, 1344)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	b.SetBytes(1344 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.Forward(x)
	}
}

// BenchmarkEventSetReadDirect: latency of one perf_uncore read.
func BenchmarkEventSetReadDirect(b *testing.B) {
	benchEventSetRead(b, node.Direct)
}

// BenchmarkEventSetReadPCP: latency of one read through the daemon —
// the indirection cost the paper accepts for unprivileged access.
func BenchmarkEventSetReadPCP(b *testing.B) {
	benchEventSetRead(b, node.ViaPCP)
}

func benchEventSetRead(b *testing.B, route node.Route) {
	tb, err := node.NewTestbed(arch.Tellico(), 1, node.Options{DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		b.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.AddAll(tb.NestEventNames(route)...); err != nil {
		b.Fatal(err)
	}
	if err := es.Start(); err != nil {
		b.Fatal(err)
	}
	defer es.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := es.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedFFT: the full 8-rank numeric pipeline.
func BenchmarkDistributedFFT(b *testing.B) {
	g := fft.Grid{N: 32, R: 2, C: 4}
	rng := xrand.New(2)
	global := make([]complex128, g.N*g.N*g.N)
	for i := range global {
		global[i] = complex(rng.Float64(), rng.Float64())
	}
	slabs := make([][]complex128, g.Ranks())
	for id := 0; id < g.Ranks(); id++ {
		i, j := g.RankCoords(id)
		slabs[id] = fft.LocalSlab(g, global, i, j)
	}
	b.SetBytes(int64(len(global)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm := mpi.New(g.Ranks(), nil, nil, nil)
		comm.Run(func(r *mpi.Rank) {
			local := append([]complex128(nil), slabs[r.ID()]...)
			fft.Distributed3D(g, r, local)
		})
	}
}

// --- serving-tier micro-benchmarks ------------------------------------------

// BenchmarkPDUFetchRespEncodeDecode: one 16-value fetch response through
// the wire codec — the per-request CPU cost of the serving path. Uses
// the buffer-reusing Append/Into spellings the serving loops run on;
// steady state is allocation-free.
func BenchmarkPDUFetchRespEncodeDecode(b *testing.B) {
	res := pcp.FetchResult{Timestamp: 123456789}
	for i := 0; i < 16; i++ {
		res.Values = append(res.Values, pcp.FetchValue{PMID: uint32(i + 1), Status: pcp.StatusOK, Value: uint64(i) << 32})
	}
	var buf []byte
	var dec pcp.FetchResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = pcp.AppendFetchResp(buf[:0], res)
		if err := pcp.DecodeFetchRespInto(buf, &dec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDUNamesEncodeDecode: the name-table exchange (once per
// client, amortized away by the proxy's cache).
func BenchmarkPDUNamesEncodeDecode(b *testing.B) {
	var entries []pcp.NameEntry
	for i := 0; i < 32; i++ {
		entries = append(entries, pcp.NameEntry{PMID: uint32(i + 1),
			Name: fmt.Sprintf("perfevent.hwcounters.nest_mba%d_imc.PM_MBA%d_READ_BYTES.value.cpu87", i%8, i%8)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := pcp.EncodeNamesResp(entries)
		if _, err := pcp.DecodeNamesResp(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyFetchCoalesced: steady-state fan-out serving — a client
// fetch answered from the pmproxy coalescing cache, no upstream round
// trip. Compare with BenchmarkEventSetReadPCP (every read hits the
// daemon) for the multiplexing win; the coalescing ratio is reported.
func BenchmarkProxyFetchCoalesced(b *testing.B) {
	tb, err := node.NewTestbed(arch.Tellico(), 1, node.Options{DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	p := pmproxy.New(pmproxy.Config{
		Upstream: tb.PMCDAddr,
		Clock:    tb.Clock,
		Interval: tb.Machine.Noise.PMCDSampleInterval,
	})
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	c, err := pcp.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	pmids := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := c.Fetch(pmids); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch(pmids); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(p.Stats().CoalescingRatio(), "coalescing-ratio")
}

// BenchmarkArchiveAppend: pmlogger's recording hot path — one fetch
// result delta-encoded into the archive ring.
func BenchmarkArchiveAppend(b *testing.B) {
	var names []pcp.NameEntry
	for i := 0; i < 16; i++ {
		names = append(names, pcp.NameEntry{PMID: uint32(i + 1), Name: fmt.Sprintf("m%d", i)})
	}
	a, err := archive.New(names, archive.Options{MaxBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	res := pcp.FetchResult{}
	for i := 0; i < 16; i++ {
		res.Values = append(res.Values, pcp.FetchValue{PMID: uint32(i + 1), Status: pcp.StatusOK})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Timestamp = int64(i+1) * 10_000_000
		for j := range res.Values {
			res.Values[j].Value += uint64(64 * (j + 1))
		}
		if err := a.Append(res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := a.Stats()
	if st.Samples > 0 {
		b.ReportMetric(float64(st.EncodedBytes)/float64(st.Samples), "B/sample")
	}
}

// BenchmarkMetricQLParse: the derived-metrics expression front end —
// lexing and parsing the standard total-bandwidth expression.
func BenchmarkMetricQLParse(b *testing.B) {
	const src = "sum(rate(nest.mba*.read_bytes)) + sum(rate(nest.mba*.write_bytes))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := metricql.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricQLEval: one fresh-interval evaluation of the total-
// bandwidth query over a live daemon connection — the per-sample cost a
// derived event adds to a profile loop (fetch + counter-state advance +
// memoized rate/sum evaluation).
func BenchmarkMetricQLEval(b *testing.B) {
	tb, err := node.NewTestbed(arch.Summit(), 1, node.Options{Seed: 1, DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	client, err := pcp.Dial(tb.PMCDAddr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	names, err := client.Names()
	if err != nil {
		b.Fatal(err)
	}
	eng := metricql.NewEngine(client)
	eng.AliasAll(metricql.NestAliases(names))
	q, err := eng.Query("sum(rate(nest.mba*.read_bytes)) + sum(rate(nest.mba*.write_bytes))")
	if err != nil {
		b.Fatal(err)
	}
	step := tb.Machine.Noise.PMCDSampleInterval
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Clock.Advance(step) // next daemon sample: every eval is a fresh interval
		if _, err := eng.EvalAll(q); err != nil {
			b.Fatal(err)
		}
	}
}
