// Command pmproxy runs the proxy daemon: it listens for PCP clients and
// multiplexes them onto one upstream PMCD connection, coalescing
// identical fetches that land within one daemon sampling interval into a
// single upstream round trip and serving stale-but-timestamped answers
// while the upstream is unreachable.
//
// With -policy the admission/QoS layer is enabled: per-tenant quotas
// (repeatable -tenant specs), weighted fair queueing, and load shedding
// with typed overload errors. Tenants identify themselves in-band by
// dialling with pcp.DialTenant (protocol Version3); older clients land
// on the default tenant. A -breaker-threshold adds a per-upstream
// circuit breaker.
//
// Usage:
//
//	pmproxy -addr 127.0.0.1:44322 -upstream 127.0.0.1:44321 [-interval 10ms]
//	pmproxy -policy token-bucket -tenant id=1,rate=1000,burst=50 \
//	        -tenant id=2,rate=50,degradable -default-tenant rate=10
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
)

// parseTenantSpec parses "id=1,rate=100,burst=4,weight=2,prio=1,degradable".
// withID selects between a -tenant spec (id required) and the
// -default-tenant spec (id forbidden).
func parseTenantSpec(spec string, withID bool) (uint32, pmproxy.TenantConfig, error) {
	var (
		id    uint64
		sawID bool
		tc    pmproxy.TenantConfig
	)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, hasVal := strings.Cut(part, "=")
		var err error
		switch k {
		case "id":
			id, err = strconv.ParseUint(v, 10, 32)
			sawID = true
		case "rate":
			tc.Rate, err = strconv.ParseFloat(v, 64)
		case "burst":
			tc.Burst, err = strconv.ParseFloat(v, 64)
		case "weight":
			tc.Weight, err = strconv.ParseFloat(v, 64)
		case "prio":
			tc.Priority, err = strconv.Atoi(v)
		case "degradable":
			if hasVal {
				tc.Degradable, err = strconv.ParseBool(v)
			} else {
				tc.Degradable = true
			}
		default:
			return 0, tc, fmt.Errorf("unknown key %q in tenant spec %q", k, spec)
		}
		if err != nil {
			return 0, tc, fmt.Errorf("bad value for %q in tenant spec %q: %v", k, spec, err)
		}
	}
	if withID && !sawID {
		return 0, tc, fmt.Errorf("tenant spec %q needs id=N", spec)
	}
	if !withID && sawID {
		return 0, tc, fmt.Errorf("default-tenant spec %q must not set id", spec)
	}
	return uint32(id), tc, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:44322", "listen address")
	upstream := flag.String("upstream", "127.0.0.1:44321", "PMCD daemon address")
	interval := flag.Duration("interval", 10*time.Millisecond, "coalescing window (the daemon's sampling interval)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-upstream-round-trip deadline")
	retries := flag.Int("retries", 2, "upstream retry attempts")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff")

	policy := flag.String("policy", "", "admission policy ("+strings.Join(pmproxy.PolicyNames(), ", ")+"); empty disables admission")
	capacity := flag.Float64("capacity", 0, "provisioned upstream capacity in req/s (priority policy)")
	queueDepth := flag.Int("queue-depth", 0, "per-tenant fair-queue backlog bound (0 = 64)")
	maxConc := flag.Int("max-concurrent", 0, "fair-queue service slots (0 = pool size)")
	admission := pmproxy.AdmissionConfig{Tenants: map[uint32]pmproxy.TenantConfig{}}
	flag.Func("tenant", "per-tenant quota spec: id=N[,rate=R][,burst=B][,weight=W][,prio=P][,degradable] (repeatable)",
		func(spec string) error {
			id, tc, err := parseTenantSpec(spec, true)
			if err != nil {
				return err
			}
			admission.Tenants[id] = tc
			return nil
		})
	flag.Func("default-tenant", "quota spec for tenants without a -tenant entry: [rate=R][,burst=B][,...]",
		func(spec string) error {
			_, tc, err := parseTenantSpec(spec, false)
			if err != nil {
				return err
			}
			admission.Default = tc
			return nil
		})

	brkThreshold := flag.Int("breaker-threshold", 0, "consecutive upstream failures that open the circuit breaker (0 = off)")
	brkProbe := flag.Duration("breaker-probe-delay", 100*time.Millisecond, "initial open interval before a half-open probe")
	brkProbeMax := flag.Duration("breaker-probe-delay-max", 5*time.Second, "cap on the doubling open interval")
	flag.Parse()

	admission.Policy = *policy
	admission.Capacity = *capacity
	admission.QueueDepth = *queueDepth
	admission.MaxConcurrent = *maxConc
	if *policy != "" {
		// Validate the user-supplied name here: pmproxy.New treats an
		// unknown policy as a wiring bug and panics.
		if _, err := pmproxy.NewPolicy(*policy, admission); err != nil {
			fmt.Fprintln(os.Stderr, "pmproxy:", err)
			os.Exit(2)
		}
	}

	p := pmproxy.New(pmproxy.Config{
		Upstream:   *upstream,
		Interval:   simtime.Duration(interval.Nanoseconds()),
		Timeout:    *timeout,
		MaxRetries: *retries,
		Backoff:    *backoff,
		Admission:  admission,
		Breaker: pmproxy.BreakerConfig{
			Threshold:     *brkThreshold,
			ProbeDelay:    *brkProbe,
			ProbeDelayMax: *brkProbeMax,
		},
	})
	bound, err := p.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmproxy:", err)
		os.Exit(1)
	}
	fmt.Printf("pmproxy: serving on %s, upstream %s, coalescing window %v\n", bound, *upstream, *interval)
	if *policy != "" {
		fmt.Printf("pmproxy: admission policy %s, %d tenant quotas\n", *policy, len(admission.Tenants))
	}
	fmt.Println("pmproxy: connect with pcp.Dial or the papi pcp component; Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	p.Close()
	st := p.Stats()
	fmt.Printf("\npmproxy: %d client fetches, %d upstream fetches (%.1fx coalescing), %d coalesced hits, %d stale serves, %d upstream errors\n",
		st.ClientFetches, st.UpstreamFetches, st.CoalescingRatio(), st.CoalescedHits, st.StaleServes, st.UpstreamErrors)
	if *policy != "" {
		fmt.Printf("pmproxy: %d shed, breaker opens=%d probes=%d short-circuits=%d\n",
			st.Shed, st.BreakerOpens, st.BreakerProbes, st.BreakerShortCircuits)
		for _, ts := range p.TenantStatsAll() {
			fmt.Printf("pmproxy: tenant %d: issued=%d admitted=%d shed=%d stale-served=%d\n",
				ts.Tenant, ts.Issued, ts.Admitted, ts.Shed, ts.StaleServed)
		}
	}
}
