package ibcomp

import (
	"errors"
	"testing"

	"papimc/internal/ib"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

func rig() (*Component, *ib.Endpoint) {
	ep := ib.NewEndpoint(2, nil)
	return New(ep.Ports), ep
}

func TestListEventsTableII(t *testing.T) {
	c, _ := rig()
	events, err := c.ListEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 { // 2 ports × 2 directions
		t.Fatalf("len = %d, want 4", len(events))
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
	}
	// Table II: infiniband:::mlx5_[0|1]_1_ext:port_recv_data.
	for _, want := range []string{
		"mlx5_0_1_ext:port_recv_data",
		"mlx5_1_1_ext:port_recv_data",
		"mlx5_0_1_ext:port_xmit_data",
	} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
}

func TestDescribeErrors(t *testing.T) {
	c, _ := rig()
	for _, bad := range []string{"", "mlx5_0_1_ext", "mlx5_9_1_ext:port_recv_data", "mlx5_0_1_ext:bogus"} {
		if _, err := c.Describe(bad); !errors.Is(err, papi.ErrNoEvent) {
			t.Errorf("Describe(%q) err = %v", bad, err)
		}
	}
}

func TestCountersThroughEventSet(t *testing.T) {
	c, ep := rig()
	clock := simtime.NewClock()
	lib := papi.NewLibrary(clock)
	if err := lib.Register(c); err != nil {
		t.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.AddAll(
		"infiniband:::mlx5_0_1_ext:port_recv_data",
		"infiniband:::mlx5_0_1_ext:port_xmit_data",
	); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	ep.Ports[0].CountRecv(4000)
	ep.Ports[0].CountXmit(8000)
	vals, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	// Counters tick in 4-byte words.
	if vals[0] != 1000 || vals[1] != 2000 {
		t.Errorf("vals = %v, want [1000 2000]", vals)
	}
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
}
