package model

import (
	"math"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/expect"
	"papimc/internal/units"
)

func relErr(got, want int64) float64 {
	return math.Abs(float64(got)-float64(want)) / math.Abs(float64(want))
}

func TestContextGeometry(t *testing.T) {
	serial := Serial(arch.Summit())
	if got := serial.EffectiveL3PerCore(); got != 110*units.MiB {
		t.Errorf("serial effective L3 = %s, want 110 MiB", units.FormatBytes(got))
	}
	if got := serial.LocalL3PerCore(); got != 10*units.MiB {
		t.Errorf("serial local L3 = %s, want 10 MiB", units.FormatBytes(got))
	}
	if !serial.IdleSlicesAvailable() {
		t.Error("a lone core must see idle slices")
	}
	batched := Batched(arch.Summit())
	if batched.ActiveCores != 21 {
		t.Fatalf("batched cores = %d, want 21", batched.ActiveCores)
	}
	eff := batched.EffectiveL3PerCore()
	if eff < 5*units.MiB || eff > 6*units.MiB {
		t.Errorf("batched effective L3 = %s, want ~5 MiB", units.FormatBytes(eff))
	}
	if batched.IdleSlicesAvailable() {
		t.Error("21 of 22 cores leaves no fully idle pair")
	}
}

func TestLRUMissStep(t *testing.T) {
	cap := int64(5 * units.MiB)
	if m := lruMiss(cap/2, cap); m != 0 {
		t.Errorf("half-capacity miss = %v, want 0", m)
	}
	if m := lruMiss(cap*2, cap); m != 1 {
		t.Errorf("double-capacity miss = %v, want 1", m)
	}
	mid := lruMiss(cap, cap)
	if mid <= 0 || mid >= 1 {
		t.Errorf("at-capacity miss = %v, want in (0,1)", mid)
	}
}

// Batched GEMM at cache-resident sizes matches the paper's dashed-line
// expectation exactly (Fig. 3b's agreement region).
func TestGEMMMatchesExpectationWhenCached(t *testing.T) {
	ctx := Batched(arch.Summit())
	for _, n := range []int64{128, 256, 400, 700} {
		got := GEMM(ctx, n)
		want := expect.GEMM(n).Scale(int64(ctx.ActiveCores))
		if got.ReadBytes != want.ReadBytes {
			t.Errorf("N=%d reads = %d, want %d", n, got.ReadBytes, want.ReadBytes)
		}
		if got.WriteBytes != want.WriteBytes {
			t.Errorf("N=%d writes = %d, want %d", n, got.WriteBytes, want.WriteBytes)
		}
	}
}

// Past the Eq. 4 boundary (one matrix > per-core share) batched GEMM
// traffic jumps drastically; the serial run with 110 MB of borrowable
// L3 does not (Section III's observation on Figs. 3–4).
func TestGEMMEquation4Jump(t *testing.T) {
	batched := Batched(arch.Summit())
	serial := Serial(arch.Summit())
	const n = 1200 // one matrix = 11.5 MB: > 5 MB share, << 110 MB
	expected := expect.GEMM(n)

	b := GEMM(batched, n)
	perCore := b.ReadBytes / int64(batched.ActiveCores)
	if perCore < 10*expected.ReadBytes {
		t.Errorf("batched per-core reads = %d, expected drastic jump over %d", perCore, expected.ReadBytes)
	}

	s := GEMM(serial, n)
	// Serial: B still fits in borrowed L3; only the cast-out spill adds
	// traffic, well under 2× the expectation.
	if s.ReadBytes > 2*expected.ReadBytes {
		t.Errorf("serial reads = %d, want < 2× expectation %d (no jump)", s.ReadBytes, expected.ReadBytes)
	}
	if s.ReadBytes <= expected.ReadBytes {
		t.Errorf("serial reads = %d, want > expectation %d (spill extraneous traffic)", s.ReadBytes, expected.ReadBytes)
	}
}

// Below the lateral cast-out threshold the serial GEMM matches the
// expectation exactly; beyond it the divergence grows with N (Fig. 3a).
func TestGEMMSerialSpillGrowsWithN(t *testing.T) {
	serial := Serial(arch.Summit())
	small := GEMM(serial, 400) // 3 matrices = 3.8 MB < 10 MB local slice
	if small.ReadBytes != expect.GEMM(400).ReadBytes {
		t.Errorf("serial N=400 reads = %d, want exact expectation %d",
			small.ReadBytes, expect.GEMM(400).ReadBytes)
	}
	prevExcess := 0.0
	for _, n := range []int64{800, 1200, 1600} {
		got := GEMM(serial, n)
		want := expect.GEMM(n)
		excess := float64(got.ReadBytes-want.ReadBytes) / float64(want.ReadBytes)
		if excess <= 0 {
			t.Errorf("N=%d: no extraneous serial traffic", n)
		}
		if excess < prevExcess {
			t.Errorf("N=%d: spill excess %.3f shrank from %.3f", n, excess, prevExcess)
		}
		prevExcess = excess
	}
}

// The capped GEMV in its design regime (A sized past the share)
// reproduces M×N + M + N reads and M writes per thread (Fig. 5's
// "reading perfectly matches expectations").
func TestCappedGEMVMatchesExpectation(t *testing.T) {
	ctx := Batched(arch.Summit())
	const n, p = 1280, 1280 // A = 13.1 MB > 5.24 MB share
	for _, m := range []int64{2560, 10240, 102400} {
		got := CappedGEMV(ctx, m, n, p)
		want := expect.CappedGEMV(m, n).Scale(int64(ctx.ActiveCores))
		if e := relErr(got.ReadBytes, want.ReadBytes); e > 0.001 {
			t.Errorf("M=%d reads = %d, want %d (rel err %.4f)", m, got.ReadBytes, want.ReadBytes, e)
		}
		if got.WriteBytes != want.WriteBytes {
			t.Errorf("M=%d writes = %d, want %d", m, got.WriteBytes, want.WriteBytes)
		}
	}
}

// In the square phase (M=N=P) the reads match M² + 2M.
func TestSquareGEMVMatchesExpectation(t *testing.T) {
	ctx := Batched(arch.Summit())
	for _, m := range []int64{256, 512, 1024} {
		got := SquareGEMV(ctx, m)
		want := expect.SquareGEMV(m).Scale(int64(ctx.ActiveCores))
		if e := relErr(got.ReadBytes, want.ReadBytes); e > 0.001 {
			t.Errorf("M=%d reads = %d, want %d", m, got.ReadBytes, want.ReadBytes)
		}
		if got.WriteBytes != want.WriteBytes {
			t.Errorf("M=%d writes = %d, want %d", m, got.WriteBytes, want.WriteBytes)
		}
	}
}

// --- FFT re-sort models --------------------------------------------------

func TestS1CFLoopNest1Expectation(t *testing.T) {
	ctx := Serial(arch.Summit())
	n, r, c := int64(512), int64(2), int64(4)
	got := S1CFLoopNest1(ctx, n, r, c)
	want := expect.S1CFLoopNest1(n, r, c, false)
	if got.ReadBytes != want.ReadBytes || got.WriteBytes != want.WriteBytes {
		t.Errorf("LN1 = %+v, want %+v", got, want)
	}
	ctx.SoftwarePrefetch = true
	got = S1CFLoopNest1(ctx, n, r, c)
	want = expect.S1CFLoopNest1(n, r, c, true)
	if got.ReadBytes != want.ReadBytes {
		t.Errorf("LN1 prefetch reads = %d, want %d", got.ReadBytes, want.ReadBytes)
	}
}

// LN2: two reads per write below the Eq. 7 boundary, approaching five
// past it (Fig. 7a).
func TestS1CFLoopNest2Amplification(t *testing.T) {
	ctx := Batched(arch.Summit()) // 5.24 MB effective share
	r, c := int64(2), int64(4)
	small := S1CFLoopNest2(ctx, 400, r, c)
	wantSmall := expect.S1CFLoopNest2(400, r, c)
	if small.ReadBytes != wantSmall.ReadBytes {
		t.Errorf("LN2 N=400 reads = %d, want %d (2 per write)", small.ReadBytes, wantSmall.ReadBytes)
	}
	big := S1CFLoopNest2(ctx, 1400, r, c)
	bytes := expect.RankElems(1400, r, c) * 16
	if big.ReadBytes != 5*bytes {
		t.Errorf("LN2 N=1400 reads = %d, want %d (5 per write)", big.ReadBytes, 5*bytes)
	}
	if big.WriteBytes != bytes {
		t.Errorf("LN2 writes = %d, want %d", big.WriteBytes, bytes)
	}
}

func TestS1CFCombinedExpectation(t *testing.T) {
	ctx := Serial(arch.Summit())
	n, r, c := int64(1024), int64(2), int64(4)
	got := S1CFCombined(ctx, n, r, c)
	want := expect.S1CFCombined(n, r, c)
	if got.ReadBytes != want.ReadBytes || got.WriteBytes != want.WriteBytes {
		t.Errorf("combined = %+v, want %+v", got, want)
	}
}

func TestS2CFExpectation(t *testing.T) {
	ctx := Serial(arch.Summit())
	n, r, c := int64(1024), int64(2), int64(4)
	got := S2CF(ctx, n, r, c)
	want := expect.S2CF(n, r, c, false)
	if got.ReadBytes != want.ReadBytes || got.WriteBytes != want.WriteBytes {
		t.Errorf("S2CF = %+v, want %+v", got, want)
	}
	ctx.SoftwarePrefetch = true
	if got := S2CF(ctx, n, r, c); got.ReadBytes != 2*want.ReadBytes {
		t.Errorf("S2CF prefetch reads = %d, want %d", got.ReadBytes, 2*want.ReadBytes)
	}
}

// Prefetch must speed LN2 up without changing its traffic (Fig. 7b).
func TestPrefetchSpeedsUpStridedPhase(t *testing.T) {
	base := Batched(arch.Summit())
	pf := base
	pf.SoftwarePrefetch = true
	n, r, c := int64(1344), int64(2), int64(4)
	slow := S1CFLoopNest2(base, n, r, c)
	fast := S1CFLoopNest2(pf, n, r, c)
	if fast.Duration >= slow.Duration {
		t.Errorf("prefetch did not speed up LN2: %v vs %v", fast.Duration, slow.Duration)
	}
	if fast.ReadBytes != slow.ReadBytes || fast.WriteBytes != slow.WriteBytes {
		t.Error("prefetch changed LN2 traffic; only bandwidth should improve")
	}
}

// S2CF must realize higher bandwidth than S1CF's strided nest (the
// Fig. 10 / Fig. 11 phase-bandwidth ordering).
func TestBandwidthOrdering(t *testing.T) {
	ctx := Serial(arch.Summit())
	n, r, c := int64(1344), int64(4), int64(8)
	bw := func(tr Traffic) float64 {
		return float64(tr.TotalBytes()) / tr.Duration.Seconds()
	}
	s1 := S1CFLoopNest2(ctx, n, r, c)
	s2 := S2CF(ctx, n, r, c)
	if bw(s2) <= bw(s1) {
		t.Errorf("S2CF bandwidth %v <= S1CF LN2 bandwidth %v", bw(s2), bw(s1))
	}
}

func TestDurationsPositiveAndBounded(t *testing.T) {
	ctx := Batched(arch.Summit())
	for _, tr := range []Traffic{
		GEMM(ctx, 512),
		CappedGEMV(ctx, 10000, 1280, 1280),
		S1CFLoopNest2(ctx, 1344, 2, 4),
	} {
		if tr.Duration <= 0 {
			t.Errorf("non-positive duration: %+v", tr)
		}
		bw := float64(tr.TotalBytes()) / tr.Duration.Seconds()
		if bw > ctx.Machine.Socket.MemBandwidth*1.01 {
			t.Errorf("implied bandwidth %v exceeds the socket's %v", bw, ctx.Machine.Socket.MemBandwidth)
		}
	}
}

func TestContextValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero active cores")
		}
	}()
	Context{Machine: arch.Summit()}.EffectiveL3PerCore()
}
