// Command chaos runs the seeded fault-injection sweep against the full
// serving stack (daemon → pmproxy → client → archive recorder) and
// checks the chaos package's safety contract on every operation.
//
// A run is a pure function of its flags: the same seed reproduces the
// byte-identical report at any -j. On a violation the driver prints the
// offending trials and one repro command line per failure, then exits 1.
//
// With -cluster the sweep runs against federated metric trees instead:
// each trial assembles its own hierarchical scatter-gather cluster,
// kills and stalls nodes mid-stream, and checks the partial-result
// contract — every query answers, the missing nodes are named exactly,
// and every surviving value certifies.
//
// With -overload the sweep runs the multi-tenant QoS suite instead:
// three tenants offer twice the modelled upstream capacity through the
// proxy's admission layer, and each trial checks the overload contract
// (gold p99 within 2x of its uncontended baseline under a protecting
// policy, exact per-tenant conservation, typed sheds, stale-served
// degradation, and a collapsing control arm).
//
//	go run ./cmd/chaos -profile mixed -trials 16
//	go run ./cmd/chaos -seed 0xc4a05 -trials 4 -trial 1 -ops 30 -corrupt 3000 -chunk 64
//	go run ./cmd/chaos -cluster -nodes 64 -fanout 4 -kill 3 -trials 8
//	go run ./cmd/chaos -overload -policy token-bucket -trials 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"papimc/internal/chaos"
	"papimc/internal/faultconn"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 0xC4A05, "base seed (trial i derives its own substream)")
		trials     = flag.Int("trials", 8, "number of independent trials")
		ops        = flag.Int("ops", 40, "operations per trial")
		workers    = flag.Int("j", 0, "parallel trial workers (0 = GOMAXPROCS)")
		profile    = flag.String("profile", "", "named fault profile: "+strings.Join(chaos.ProfileNames(), ", "))
		trial      = flag.Int("trial", -1, "replay only this trial index (-1 = all)")
		breakStale = flag.Bool("break-stale", false, "simulate the stale re-stamping bug (the suite must fail)")
		timeout    = flag.Duration("timeout", 0, "per round-trip deadline (0 = 2s)")

		refuse  = flag.Float64("refuse", 0, "connection refusal probability")
		reset   = flag.Int64("reset", 0, "mean bytes between injected resets (0 = off)")
		stall   = flag.Int64("stall", 0, "mean bytes between silent stalls (0 = off)")
		corrupt = flag.Int64("corrupt", 0, "mean bytes between single-bit flips (0 = off)")
		latency = flag.Int64("latency", 0, "mean bytes between inserted delays (0 = off)")
		chunk   = flag.Int("chunk", 0, "max bytes per read/write (0 = unlimited)")

		overloadMode = flag.Bool("overload", false, "sweep the multi-tenant overload QoS suite instead of the fault suite")
		policy       = flag.String("policy", "token-bucket", "[overload] admission policy: "+strings.Join(chaos.OverloadPolicies(), ", "))

		clusterMode = flag.Bool("cluster", false, "sweep federated metric trees instead of the serving stack")
		nodes       = flag.Int("nodes", 64, "[cluster] node count per tree")
		fanout      = flag.Int("fanout", 4, "[cluster] federator fan-out")
		queries     = flag.Int("queries", 4, "[cluster] scatter-gather queries per trial")
		kill        = flag.Int("kill", 3, "[cluster] nodes killed per trial")
		stalled     = flag.Int("stalled", 0, "[cluster] nodes stalled per trial")
		flap        = flag.Bool("flap", false, "[cluster] re-draw the victims before every query")
	)
	flag.Parse()

	if *overloadMode {
		o := chaos.OverloadOptions{
			Seed:    *seed,
			Trials:  *trials,
			Policy:  *policy,
			Workers: *workers,
			Trial:   *trial,
		}
		start := time.Now()
		rep, err := chaos.RunOverload(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(rep)
		fmt.Fprintf(os.Stderr, "elapsed %.2fs\n", time.Since(start).Seconds())
		if rep.Failed() {
			bad := 0
			for _, tr := range rep.Trials {
				if len(tr.Violations) > 0 {
					bad++
					fmt.Printf("repro: %s\n", chaos.OverloadReproLine(o, tr.Index))
				}
			}
			fmt.Printf("FAIL: %d of %d trials violated the overload contract\n", bad, len(rep.Trials))
			os.Exit(1)
		}
		fmt.Printf("ok: %d trials, seed %#x\n", len(rep.Trials), o.Seed)
		return
	}

	if *clusterMode {
		prof := chaos.ClusterProfile{Kill: *kill, Stall: *stalled, Flap: *flap}
		if *profile != "" {
			p, ok := chaos.ClusterProfiles[*profile]
			if !ok {
				fmt.Fprintf(os.Stderr, "chaos: unknown cluster profile %q (have: %s)\n",
					*profile, strings.Join(chaos.ClusterProfileNames(), ", "))
				os.Exit(2)
			}
			prof = p
		}
		o := chaos.ClusterOptions{
			Seed:    *seed,
			Trials:  *trials,
			Queries: *queries,
			Nodes:   *nodes,
			FanOut:  *fanout,
			Workers: *workers,
			Profile: prof,
			Trial:   *trial,
		}
		start := time.Now()
		rep, err := chaos.RunCluster(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(rep)
		fmt.Fprintf(os.Stderr, "elapsed %.2fs\n", time.Since(start).Seconds())
		if rep.Failed() {
			bad := 0
			for _, tr := range rep.Trials {
				if len(tr.Violations) > 0 {
					bad++
					fmt.Printf("repro: %s\n", chaos.ClusterReproLine(o, tr.Index))
				}
			}
			fmt.Printf("FAIL: %d of %d trials violated the partial-result contract\n", bad, len(rep.Trials))
			os.Exit(1)
		}
		fmt.Printf("ok: %d trials, seed %#x\n", len(rep.Trials), o.Seed)
		return
	}

	sched := faultconn.Schedule{
		RefuseProb:   *refuse,
		ResetEvery:   *reset,
		StallEvery:   *stall,
		CorruptEvery: *corrupt,
		LatencyEvery: *latency,
		MaxChunk:     *chunk,
	}
	if *profile != "" {
		p, ok := chaos.Profiles[*profile]
		if !ok {
			fmt.Fprintf(os.Stderr, "chaos: unknown profile %q (have: %s)\n",
				*profile, strings.Join(chaos.ProfileNames(), ", "))
			os.Exit(2)
		}
		sched = p
	}

	o := chaos.Options{
		Seed:       *seed,
		Trials:     *trials,
		Ops:        *ops,
		Workers:    *workers,
		Schedule:   sched,
		Timeout:    *timeout,
		BreakStale: *breakStale,
		Trial:      *trial,
	}
	start := time.Now()
	rep, err := chaos.Run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	// stdout carries only the deterministic report (byte-identical for a
	// fixed seed at any -j); timing goes to stderr.
	fmt.Print(rep)
	fmt.Fprintf(os.Stderr, "elapsed %.2fs\n", time.Since(start).Seconds())
	if rep.Failed() {
		bad := 0
		for _, tr := range rep.Trials {
			if len(tr.Violations) > 0 {
				bad++
				fmt.Printf("repro: %s\n", chaos.ReproLine(o, tr.Index))
			}
		}
		fmt.Printf("FAIL: %d of %d trials violated the serving contract\n", bad, len(rep.Trials))
		os.Exit(1)
	}
	fmt.Printf("ok: %d trials, seed %#x\n", len(rep.Trials), o.Seed)
}
