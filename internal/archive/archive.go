// Package archive implements the pmlogger analogue: an append-only
// time-series archive of PCP fetch results, so profiles and figures can
// be replayed from a recording instead of a live daemon.
//
// Samples are stored varint-delta encoded — each row is the zigzag
// varint of the timestamp delta followed by one zigzag varint per
// counter delta — in fixed-size blocks whose first row is absolute, so
// any block decodes independently. Retention is a bounded-memory ring:
// when the encoded size exceeds the budget, whole blocks are evicted
// oldest-first. Counters compress extremely well under this scheme
// because consecutive daemon samples differ by small per-channel byte
// counts.
//
// The schema (the PMID set and the name table) is fixed when the
// archive is created, exactly like a real pmlogger archive's metadata
// volume.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"papimc/internal/pcp"
)

// Errors returned by the archive.
var (
	// ErrOutOfOrder rejects a sample older than the newest recorded one.
	ErrOutOfOrder = errors.New("archive: sample out of order")
	// ErrEmpty indicates a query against an archive with no samples.
	ErrEmpty = errors.New("archive: no samples")
	// ErrNoPMID indicates a query for a PMID outside the schema.
	ErrNoPMID = errors.New("archive: pmid not in schema")
	// ErrSchema rejects a fetch result that does not cover the schema.
	ErrSchema = errors.New("archive: fetch result does not match schema")
	// ErrFormat indicates a corrupt serialized archive.
	ErrFormat = errors.New("archive: bad archive format")
)

// Sample is one decoded row: the daemon's sample timestamp and one value
// per schema PMID, in schema order.
type Sample struct {
	Timestamp int64
	Values    []uint64
}

// Options tune archive construction.
type Options struct {
	// MaxBytes bounds the encoded sample storage; oldest blocks are
	// evicted once it is exceeded. 0 means DefaultMaxBytes.
	MaxBytes int
	// BlockSamples is the number of rows per block. 0 means
	// DefaultBlockSamples.
	BlockSamples int
}

// Defaults for Options.
const (
	DefaultMaxBytes     = 4 << 20
	DefaultBlockSamples = 64
)

// block is one independently decodable run of delta-encoded rows.
type block struct {
	buf     []byte
	count   int
	firstTS int64
	lastTS  int64
}

// Archive is an append-only recording. It is safe for concurrent use.
type Archive struct {
	mu       sync.Mutex
	names    []pcp.NameEntry
	byName   map[string]uint32
	col      map[uint32]int // PMID -> column index
	blocks   []*block
	last     Sample // newest row, for delta encoding
	total    int    // encoded bytes across blocks
	appended int    // rows accepted (including later-evicted ones)
	evicted  int    // rows dropped by ring retention
	opts     Options
}

// New builds an empty archive over the given name table. The entries
// define the schema: one column per PMID, in the given order.
func New(names []pcp.NameEntry, opts Options) (*Archive, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("archive: empty schema")
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.BlockSamples <= 0 {
		opts.BlockSamples = DefaultBlockSamples
	}
	a := &Archive{
		names:  append([]pcp.NameEntry(nil), names...),
		byName: make(map[string]uint32, len(names)),
		col:    make(map[uint32]int, len(names)),
		opts:   opts,
	}
	for i, e := range names {
		if e.PMID == 0 {
			return nil, fmt.Errorf("archive: schema entry %q has PMID 0", e.Name)
		}
		if _, dup := a.col[e.PMID]; dup {
			return nil, fmt.Errorf("archive: duplicate PMID %d in schema", e.PMID)
		}
		a.byName[e.Name] = e.PMID
		a.col[e.PMID] = i
	}
	return a, nil
}

// Names returns the schema's name table.
func (a *Archive) Names() []pcp.NameEntry {
	return append([]pcp.NameEntry(nil), a.names...)
}

// Lookup resolves a schema metric name to its PMID.
func (a *Archive) Lookup(name string) (uint32, error) {
	if id, ok := a.byName[name]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("archive: unknown metric %q", name)
}

// PMIDs returns the schema PMIDs in column order.
func (a *Archive) PMIDs() []uint32 {
	out := make([]uint32, len(a.names))
	for i, e := range a.names {
		out[i] = e.PMID
	}
	return out
}

// Append records one fetch result. The result must contain an OK value
// for every schema PMID (extra values are ignored). A result with the
// same timestamp as the newest row is a daemon cache hit and is silently
// skipped; an older timestamp is ErrOutOfOrder.
func (a *Archive) Append(res pcp.FetchResult) error {
	row := Sample{Timestamp: res.Timestamp, Values: make([]uint64, len(a.names))}
	seen := 0
	for _, v := range res.Values {
		c, ok := a.col[v.PMID]
		if !ok {
			continue
		}
		if v.Status != pcp.StatusOK {
			return fmt.Errorf("%w: pmid %d has status %d", ErrSchema, v.PMID, v.Status)
		}
		row.Values[c] = v.Value
		seen++
	}
	if seen < len(a.names) {
		return fmt.Errorf("%w: %d of %d schema pmids present", ErrSchema, seen, len(a.names))
	}
	return a.AppendSample(row)
}

// AppendSample records one pre-built row (len(Values) must equal the
// schema width). Same ordering rules as Append.
func (a *Archive) AppendSample(row Sample) error {
	if len(row.Values) != len(a.names) {
		return fmt.Errorf("%w: row has %d values, schema has %d", ErrSchema, len(row.Values), len(a.names))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.appended > 0 {
		if row.Timestamp == a.last.Timestamp {
			return nil // same daemon sample, nothing new
		}
		if row.Timestamp < a.last.Timestamp {
			return fmt.Errorf("%w: %d after %d", ErrOutOfOrder, row.Timestamp, a.last.Timestamp)
		}
	}

	cur := a.tail()
	if cur == nil || cur.count >= a.opts.BlockSamples {
		cur = &block{firstTS: row.Timestamp}
		a.blocks = append(a.blocks, cur)
	}
	before := len(cur.buf)
	if cur.count == 0 {
		// Keyframe: absolute timestamp and values.
		cur.buf = binary.AppendVarint(cur.buf, row.Timestamp)
		for _, v := range row.Values {
			cur.buf = binary.AppendUvarint(cur.buf, v)
		}
		cur.firstTS = row.Timestamp
	} else {
		cur.buf = binary.AppendVarint(cur.buf, row.Timestamp-a.last.Timestamp)
		for i, v := range row.Values {
			cur.buf = binary.AppendVarint(cur.buf, int64(v-a.last.Values[i]))
		}
	}
	cur.count++
	cur.lastTS = row.Timestamp
	a.total += len(cur.buf) - before
	a.last = Sample{Timestamp: row.Timestamp, Values: append([]uint64(nil), row.Values...)}
	a.appended++

	// Ring retention: evict oldest whole blocks past the byte budget,
	// always keeping the block being written.
	for a.total > a.opts.MaxBytes && len(a.blocks) > 1 {
		old := a.blocks[0]
		a.blocks = a.blocks[1:]
		a.total -= len(old.buf)
		a.evicted += old.count
	}
	return nil
}

// tail returns the block currently being appended to, or nil.
func (a *Archive) tail() *block {
	if len(a.blocks) == 0 {
		return nil
	}
	return a.blocks[len(a.blocks)-1]
}

// decodeBlock appends the block's rows to dst.
func (a *Archive) decodeBlock(b *block, dst []Sample) ([]Sample, error) {
	buf := b.buf
	var prev Sample
	for i := 0; i < b.count; i++ {
		row := Sample{Values: make([]uint64, len(a.names))}
		if i == 0 {
			ts, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("%w: keyframe timestamp", ErrFormat)
			}
			buf = buf[n:]
			row.Timestamp = ts
			for c := range row.Values {
				v, n := binary.Uvarint(buf)
				if n <= 0 {
					return nil, fmt.Errorf("%w: keyframe value", ErrFormat)
				}
				buf = buf[n:]
				row.Values[c] = v
			}
		} else {
			dt, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("%w: delta timestamp", ErrFormat)
			}
			buf = buf[n:]
			row.Timestamp = prev.Timestamp + dt
			for c := range row.Values {
				dv, n := binary.Varint(buf)
				if n <= 0 {
					return nil, fmt.Errorf("%w: delta value", ErrFormat)
				}
				buf = buf[n:]
				row.Values[c] = prev.Values[c] + uint64(dv)
			}
		}
		dst = append(dst, row)
		prev = row
	}
	return dst, nil
}

// Len returns the number of retained samples.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.blocks {
		n += b.count
	}
	return n
}

// Stats describes the archive's storage state.
type Stats struct {
	Samples      int // retained rows
	Appended     int // rows ever accepted
	Evicted      int // rows dropped by ring retention
	EncodedBytes int // current encoded size
	RawBytes     int // what the retained rows would cost un-encoded
}

// Stats returns storage counters, including the raw-vs-encoded size so
// tests can assert the compression win.
func (a *Archive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Stats{Appended: a.appended, Evicted: a.evicted, EncodedBytes: a.total}
	for _, b := range a.blocks {
		s.Samples += b.count
	}
	s.RawBytes = s.Samples * (8 + 8*len(a.names))
	return s
}

// Span returns the timestamps of the oldest and newest retained samples.
func (a *Archive) Span() (first, last int64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.blocks) == 0 || a.blocks[0].count == 0 {
		return 0, 0, false
	}
	return a.blocks[0].firstTS, a.tail().lastTS, true
}

// Samples returns every retained row with t0 <= Timestamp <= t1, oldest
// first.
func (a *Archive) Samples(t0, t1 int64) ([]Sample, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Sample
	for _, b := range a.blocks {
		if b.count == 0 || b.lastTS < t0 || b.firstTS > t1 {
			continue
		}
		rows, err := a.decodeBlock(b, nil)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if r.Timestamp >= t0 && r.Timestamp <= t1 {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// All returns every retained row, oldest first.
func (a *Archive) All() ([]Sample, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allLocked()
}

func (a *Archive) allLocked() ([]Sample, error) {
	var out []Sample
	var err error
	for _, b := range a.blocks {
		if out, err = a.decodeBlock(b, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Floor returns the newest sample with Timestamp <= t — the value a live
// daemon would have served at time t. ok is false if every retained
// sample is newer than t (or the archive is empty).
func (a *Archive) Floor(t int64) (Sample, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var cand *block
	for _, b := range a.blocks {
		if b.count == 0 || b.firstTS > t {
			break
		}
		cand = b
	}
	if cand == nil {
		return Sample{}, false
	}
	rows, err := a.decodeBlock(cand, nil)
	if err != nil {
		return Sample{}, false
	}
	best := Sample{}
	found := false
	for _, r := range rows {
		if r.Timestamp <= t {
			best, found = r, true
		}
	}
	return best, found
}

// Nearest returns the retained sample whose timestamp is closest to t
// (ties go to the older sample).
func (a *Archive) Nearest(t int64) (Sample, bool) {
	a.mu.Lock()
	rows, err := a.allLocked()
	a.mu.Unlock()
	if err != nil || len(rows) == 0 {
		return Sample{}, false
	}
	best := rows[0]
	for _, r := range rows[1:] {
		if absDelta(r.Timestamp, t) < absDelta(best.Timestamp, t) {
			best = r
		}
	}
	return best, true
}

func absDelta(a, b int64) uint64 {
	if a < b {
		return uint64(b - a)
	}
	return uint64(a - b)
}

// sampleStep is the wrap-corrected change of column c between two
// consecutive rows, as a signed float: the mod-2^64 delta from
// pcp.CounterDelta reinterpreted as int64, so a counter that wrapped
// between samples yields its true small positive increment (not a huge
// negative one, the bug this replaced) while an instant metric that
// genuinely decreased still yields a negative step.
func sampleStep(lo, hi Sample, c int) float64 {
	return float64(int64(pcp.CounterDelta(lo.Values[c], hi.Values[c])))
}

// ValueAt returns the metric's value at time t on the unwrapped
// ("extended") series: linear interpolation between the surrounding
// samples with uint64 wraparound corrected per step, clamped to the
// recording's span. After a wrap the extended value keeps growing past
// 2^64 — the series stays monotone for counters, which is what
// interpolation is for.
func (a *Archive) ValueAt(pmid uint32, t int64) (float64, error) {
	c, ok := a.col[pmid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPMID, pmid)
	}
	rows, err := a.All()
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, ErrEmpty
	}
	if t <= rows[0].Timestamp {
		return float64(rows[0].Values[c]), nil
	}
	ext := float64(rows[0].Values[c])
	for i := 1; i < len(rows); i++ {
		step := sampleStep(rows[i-1], rows[i], c)
		if t <= rows[i].Timestamp {
			lo, hi := rows[i-1], rows[i]
			f := float64(t-lo.Timestamp) / float64(hi.Timestamp-lo.Timestamp)
			return ext + f*step, nil
		}
		ext += step
	}
	return ext, nil
}

// Rate returns the metric's average rate over [t0, t1] in units per
// second of simulated time — the quantity the paper's bandwidth figures
// plot. It is deliberately not the difference of two ValueAt endpoints:
// near 2^64 adjacent float64 values are 2048 apart, so differencing two
// extended values would swallow exactly the small per-interval deltas a
// rate is made of. Instead each segment's wrap-corrected uint64 delta is
// summed directly, weighted by its fractional overlap with [t0, t1].
func (a *Archive) Rate(pmid uint32, t0, t1 int64) (float64, error) {
	if t1 <= t0 {
		return 0, fmt.Errorf("archive: bad rate interval [%d, %d]", t0, t1)
	}
	c, ok := a.col[pmid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPMID, pmid)
	}
	rows, err := a.All()
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := 1; i < len(rows); i++ {
		lo, hi := rows[i-1].Timestamp, rows[i].Timestamp
		if hi <= lo {
			continue
		}
		s, e := max(t0, lo), min(t1, hi)
		if e <= s {
			continue
		}
		frac := float64(e-s) / float64(hi-lo)
		sum += frac * sampleStep(rows[i-1], rows[i], c)
	}
	return sum / (float64(t1-t0) / 1e9), nil
}

// --- serialization -----------------------------------------------------

// fileMagic starts a serialized archive.
const fileMagic = "PMLG1\n"

// WriteTo serializes the archive: magic, schema, then every retained row
// re-encoded as one delta stream.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	a.mu.Lock()
	rows, err := a.allLocked()
	names := a.names
	a.mu.Unlock()
	if err != nil {
		return 0, err
	}
	var buf []byte
	buf = append(buf, fileMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, e := range names {
		buf = binary.AppendUvarint(buf, uint64(e.PMID))
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	var prev Sample
	for i, r := range rows {
		if i == 0 {
			buf = binary.AppendVarint(buf, r.Timestamp)
			for _, v := range r.Values {
				buf = binary.AppendUvarint(buf, v)
			}
		} else {
			buf = binary.AppendVarint(buf, r.Timestamp-prev.Timestamp)
			for c, v := range r.Values {
				buf = binary.AppendVarint(buf, int64(v-prev.Values[c]))
			}
		}
		prev = r
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// Read deserializes an archive written by WriteTo.
func Read(r io.Reader, opts Options) (*Archive, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrFormat)
	}
	buf := data[len(fileMagic):]
	uv := func() uint64 {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			err = fmt.Errorf("%w: truncated uvarint", ErrFormat)
			return 0
		}
		buf = buf[n:]
		return v
	}
	sv := func() int64 {
		v, n := binary.Varint(buf)
		if n <= 0 {
			err = fmt.Errorf("%w: truncated varint", ErrFormat)
			return 0
		}
		buf = buf[n:]
		return v
	}
	nNames := uv()
	if err != nil {
		return nil, err
	}
	if nNames == 0 || nNames > 1<<20 {
		return nil, fmt.Errorf("%w: implausible name count %d", ErrFormat, nNames)
	}
	names := make([]pcp.NameEntry, 0, nNames)
	for i := uint64(0); i < nNames; i++ {
		pmid := uv()
		ln := uv()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < ln {
			return nil, fmt.Errorf("%w: truncated name", ErrFormat)
		}
		names = append(names, pcp.NameEntry{PMID: uint32(pmid), Name: string(buf[:ln])})
		buf = buf[ln:]
	}
	a, aerr := New(names, opts)
	if aerr != nil {
		return nil, aerr
	}
	nRows := uv()
	if err != nil {
		return nil, err
	}
	prev := Sample{Values: make([]uint64, len(names))}
	for i := uint64(0); i < nRows; i++ {
		row := Sample{Values: make([]uint64, len(names))}
		if i == 0 {
			row.Timestamp = sv()
			for c := range row.Values {
				row.Values[c] = uv()
			}
		} else {
			row.Timestamp = prev.Timestamp + sv()
			for c := range row.Values {
				row.Values[c] = prev.Values[c] + uint64(sv())
			}
		}
		if err != nil {
			return nil, err
		}
		if aerr := a.AppendSample(row); aerr != nil {
			return nil, aerr
		}
		prev = row
	}
	return a, nil
}
