package simtime

import (
	"sync"
	"testing"
)

func TestAddSub(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Errorf("Add: got %d, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Errorf("Sub: got %d, want 50", d)
	}
}

func TestDurationSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2 {
		t.Errorf("Seconds = %v, want 2", s)
	}
	if s := (500 * Millisecond).Seconds(); s != 0.5 {
		t.Errorf("Seconds = %v, want 0.5", s)
	}
}

func TestFromSeconds(t *testing.T) {
	if d := FromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{5, "5ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{Second + 500*Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at 0")
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Errorf("Now = %d, want 100", c.Now())
	}
	c.Advance(-50) // ignored
	if c.Now() != 100 {
		t.Errorf("negative Advance moved clock: %d", c.Now())
	}
	c.AdvanceTo(80) // ignored, in the past
	if c.Now() != 100 {
		t.Errorf("AdvanceTo moved clock backwards: %d", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Errorf("AdvanceTo = %d, want 200", c.Now())
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Errorf("concurrent advances lost updates: %d, want 8000", c.Now())
	}
}
