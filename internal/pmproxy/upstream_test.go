package pmproxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"papimc/internal/pcp"
)

// okResult is a canned successful child answer.
var okResult = pcp.FetchResult{Timestamp: 7, Values: []pcp.FetchValue{{PMID: 1, Status: pcp.StatusOK, Value: 99}}}

func checkUpstreamLaws(t *testing.T, s UpstreamStats) {
	t.Helper()
	if s.Fetches != s.Successes+s.Failures {
		t.Errorf("edge accounting: Fetches=%d != Successes=%d + Failures=%d", s.Fetches, s.Successes, s.Failures)
	}
	if s.Errors != s.Retries+s.Failures {
		t.Errorf("round accounting: Errors=%d != Retries=%d + Failures=%d", s.Errors, s.Retries, s.Failures)
	}
	if s.HedgesWon > s.Hedges {
		t.Errorf("HedgesWon=%d > Hedges=%d", s.HedgesWon, s.Hedges)
	}
	if s.DeadlineMisses > s.Errors {
		t.Errorf("DeadlineMisses=%d > Errors=%d", s.DeadlineMisses, s.Errors)
	}
}

// TestUpstreamStatsExact mirrors the proxy's stats-conservation checks
// for the federation edge: scripted child behaviours must produce
// exactly the predicted counter values, not just satisfy inequalities.
func TestUpstreamStatsExact(t *testing.T) {
	t.Run("healthy", func(t *testing.T) {
		u := NewUpstream("root->z0", func([]uint32) (pcp.FetchResult, error) {
			return okResult, nil
		}, EdgePolicy{Deadline: 2 * time.Second, HedgeAfter: time.Second, Retries: 2})
		for i := 0; i < 5; i++ {
			if _, err := u.Fetch([]uint32{1}); err != nil {
				t.Fatal(err)
			}
		}
		want := UpstreamStats{Fetches: 5, Successes: 5}
		if got := u.Stats(); got != want {
			t.Errorf("stats: got %+v want %+v", got, want)
		}
		checkUpstreamLaws(t, u.Stats())
	})

	t.Run("always-error", func(t *testing.T) {
		childErr := errors.New("boom")
		u := NewUpstream("root->z1", func([]uint32) (pcp.FetchResult, error) {
			return pcp.FetchResult{}, childErr
		}, EdgePolicy{Deadline: 2 * time.Second, HedgeAfter: time.Second, Retries: 2})
		_, err := u.Fetch([]uint32{1})
		if !errors.Is(err, childErr) {
			t.Fatalf("error does not wrap the child's: %v", err)
		}
		want := UpstreamStats{Fetches: 1, Failures: 1, Errors: 3, Retries: 2}
		if got := u.Stats(); got != want {
			t.Errorf("stats: got %+v want %+v", got, want)
		}
		checkUpstreamLaws(t, u.Stats())
	})

	t.Run("deadline-miss", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		u := NewUpstream("z0->node3", func([]uint32) (pcp.FetchResult, error) {
			<-release // stalled child: never answers within the deadline
			return okResult, nil
		}, EdgePolicy{Deadline: 20 * time.Millisecond, Retries: 1})
		_, err := u.Fetch([]uint32{1})
		if !errors.Is(err, ErrDeadline) || !errors.Is(err, ErrUpstreamDown) {
			t.Fatalf("deadline failure not typed: %v", err)
		}
		want := UpstreamStats{Fetches: 1, Failures: 1, Errors: 2, Retries: 1, DeadlineMisses: 2}
		if got := u.Stats(); got != want {
			t.Errorf("stats: got %+v want %+v", got, want)
		}
		checkUpstreamLaws(t, u.Stats())
	})

	t.Run("hedge-wins", func(t *testing.T) {
		var calls atomic.Int64
		primaryDone := make(chan struct{})
		u := NewUpstream("z0->node4", func([]uint32) (pcp.FetchResult, error) {
			if calls.Add(1) == 1 {
				<-primaryDone // slow primary; the hedge answers instantly
				return okResult, nil
			}
			return okResult, nil
		}, EdgePolicy{Deadline: 5 * time.Second, HedgeAfter: 5 * time.Millisecond, Retries: 1})
		res, err := u.Fetch([]uint32{1})
		close(primaryDone)
		if err != nil {
			t.Fatal(err)
		}
		if res.Values[0].Value != 99 {
			t.Errorf("wrong result: %+v", res)
		}
		want := UpstreamStats{Fetches: 1, Successes: 1, Hedges: 1, HedgesWon: 1}
		if got := u.Stats(); got != want {
			t.Errorf("stats: got %+v want %+v", got, want)
		}
		checkUpstreamLaws(t, u.Stats())
	})

	t.Run("partial-is-success", func(t *testing.T) {
		pe := &pcp.PartialError{Missing: []string{"node007"}}
		u := NewUpstream("root->z2", func([]uint32) (pcp.FetchResult, error) {
			return okResult, pe
		}, EdgePolicy{Retries: 3})
		res, err := u.Fetch([]uint32{1})
		var got *pcp.PartialError
		if !errors.As(err, &got) || got.Missing[0] != "node007" {
			t.Fatalf("partial error not passed through: %v", err)
		}
		if len(res.Values) != 1 {
			t.Errorf("partial result dropped: %+v", res)
		}
		// A partial answer is a success: no retries burned re-asking a
		// child that already answered as well as it can.
		want := UpstreamStats{Fetches: 1, Successes: 1}
		if s := u.Stats(); s != want {
			t.Errorf("stats: got %+v want %+v", s, want)
		}
	})
}

// TestUpstreamStatsConservationConcurrent drives one edge from many
// goroutines over a child that fails a deterministic subset of calls and
// asserts the conservation laws plus the exact success/failure split.
func TestUpstreamStatsConservationConcurrent(t *testing.T) {
	var n atomic.Int64
	u := NewUpstream("root->z0", func([]uint32) (pcp.FetchResult, error) {
		// Every 3rd call fails; with Retries=1 a fetch only fails when
		// both its rounds draw failing calls.
		if n.Add(1)%3 == 0 {
			return pcp.FetchResult{}, fmt.Errorf("transient")
		}
		return okResult, nil
	}, EdgePolicy{Retries: 1})

	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	var observedErrs atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := u.Fetch([]uint32{1}); err != nil {
					observedErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	s := u.Stats()
	if s.Fetches != goroutines*per {
		t.Errorf("Fetches=%d want %d", s.Fetches, goroutines*per)
	}
	if s.Failures != observedErrs.Load() {
		t.Errorf("Failures=%d but callers observed %d errors", s.Failures, observedErrs.Load())
	}
	checkUpstreamLaws(t, s)
}
