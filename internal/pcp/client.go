package pcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Client is an unprivileged connection to a PMCD daemon. It is safe for
// concurrent use; requests are serialized on the connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration // per-round-trip wall deadline; 0 = none

	// Scratch buffers reused across round trips (guarded by mu): the
	// encoded request and the received payload. A round trip's response
	// is decoded before mu is released, so aliasing is safe.
	reqBuf  []byte
	recvBuf []byte

	names map[string]uint32 // lazily populated name table
}

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) { return DialRaw(addr, Magic) }

// DialRaw connects using the given handshake magic; it exists so tests
// can exercise the daemon's rejection of unknown protocols.
func DialRaw(addr, magic string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pcp: dial %s: %w", addr, err)
	}
	return NewClientConnRaw(conn, magic)
}

// NewClientConn performs the protocol handshake over an
// already-established connection and returns a Client speaking on it.
// It is the injection point for transport wrappers (fault injection,
// in-process pipes): anything that satisfies net.Conn can carry the
// protocol. On handshake failure the connection is closed.
func NewClientConn(conn net.Conn) (*Client, error) { return NewClientConnRaw(conn, Magic) }

// NewClientConnRaw is NewClientConn with a caller-chosen handshake magic.
func NewClientConnRaw(conn net.Conn, magic string) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if _, err := c.bw.WriteString(magic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	echo := make([]byte, len(Magic))
	if _, err := io.ReadFull(c.br, echo); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pcp: handshake: %w", err)
	}
	if string(echo) != Magic {
		conn.Close()
		return nil, fmt.Errorf("%w: bad handshake %q", ErrProtocol, echo)
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetTimeout bounds every subsequent round trip by a wall-clock deadline.
// A round trip that exceeds it fails with a net timeout error; the
// connection is then in an undefined protocol state and should be
// discarded. Zero disables the deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// roundTripLocked sends one request PDU and decodes the reply, surfacing
// daemon-side error PDUs as Go errors. The caller must hold c.mu. The
// returned payload aliases the client's receive buffer and is only valid
// until the next round trip; callers decode it before releasing the lock.
func (c *Client) roundTripLocked(reqType uint8, payload []byte, wantType uint8) ([]byte, error) {
	resp, _, err := c.roundTripAnyLocked(reqType, payload, wantType, wantType)
	return resp, err
}

// roundTripAnyLocked is roundTripLocked accepting either of two response
// types, returning which one arrived.
func (c *Client) roundTripAnyLocked(reqType uint8, payload []byte, want1, want2 uint8) ([]byte, uint8, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := WritePDU(c.bw, reqType, payload); err != nil {
		return nil, 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, 0, err
	}
	typ, resp, err := ReadPDUInto(c.br, c.recvBuf)
	if err != nil {
		return nil, 0, err
	}
	c.recvBuf = resp
	if typ == PDUError {
		msg, derr := DecodeError(resp)
		if derr != nil {
			return nil, 0, derr
		}
		return nil, 0, fmt.Errorf("pcp: daemon error: %s", msg)
	}
	if typ != want1 && typ != want2 {
		return nil, 0, fmt.Errorf("%w: expected PDU %d, got %d", ErrProtocol, want1, typ)
	}
	return resp, typ, nil
}

// Names fetches the daemon's metric table.
func (c *Client) Names() ([]NameEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.roundTripLocked(PDUNamesReq, nil, PDUNamesResp)
	if err != nil {
		return nil, err
	}
	entries, err := DecodeNamesResp(resp)
	if err != nil {
		return nil, err
	}
	c.names = make(map[string]uint32, len(entries))
	for _, e := range entries {
		c.names[e.Name] = e.PMID
	}
	return entries, nil
}

// Fetch retrieves values for the given PMIDs. Against a federated
// server it may return both a valid (partial) result and a
// *PartialError naming the nodes that contributed nothing; see
// FetchInto.
func (c *Client) Fetch(pmids []uint32) (FetchResult, error) {
	var res FetchResult
	if err := c.FetchInto(pmids, &res); err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			return res, err
		}
		return FetchResult{}, err
	}
	return res, nil
}

// FetchInto is Fetch decoding into res, reusing res.Values' backing
// array. With a warm result it performs the whole round trip without
// allocating: the request is encoded into and the response received
// into client-owned scratch buffers.
//
// A PDUFetchPartialResp from a federated server decodes into a valid
// res AND a non-nil *PartialError return: the values for the missing
// nodes carry StatusNodeDown and the error names those nodes. Any
// other non-nil error leaves res untrustworthy.
func (c *Client) FetchInto(pmids []uint32, res *FetchResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqBuf = AppendFetchReq(c.reqBuf[:0], pmids)
	return c.fetchRoundTripLocked(PDUFetchReq, c.reqBuf, res)
}

// FetchAll retrieves every metric the server exports, in PMID order,
// from one snapshot — the batch form of Fetch, one round trip for the
// whole namespace. Partial results surface as in FetchInto.
func (c *Client) FetchAll() (FetchResult, error) {
	var res FetchResult
	if err := c.FetchAllInto(&res); err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			return res, err
		}
		return FetchResult{}, err
	}
	return res, nil
}

// FetchAllInto is FetchAll decoding into res, reusing its backing array.
func (c *Client) FetchAllInto(res *FetchResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetchRoundTripLocked(PDUFetchAllReq, nil, res)
}

// fetchRoundTripLocked performs one fetch-family round trip, accepting
// either a full or a partial fetch response. The caller must hold c.mu.
func (c *Client) fetchRoundTripLocked(reqType uint8, payload []byte, res *FetchResult) error {
	resp, typ, err := c.roundTripAnyLocked(reqType, payload, PDUFetchResp, PDUFetchPartialResp)
	if err != nil {
		return err
	}
	if typ == PDUFetchPartialResp {
		pe, derr := DecodePartialResp(resp, res)
		if derr != nil {
			return derr
		}
		return pe
	}
	return DecodeFetchRespInto(resp, res)
}

// Lookup resolves a metric name to its PMID, fetching the name table on
// first use. A miss against the cached table refreshes it once before
// failing, so metrics registered after the cache was populated (the
// daemon's namespace can grow) still resolve.
func (c *Client) Lookup(name string) (uint32, error) {
	c.mu.Lock()
	cached := c.names
	c.mu.Unlock()
	if cached != nil {
		if id, ok := cached[name]; ok {
			return id, nil
		}
	}
	if _, err := c.Names(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	id, ok := c.names[name]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("pcp: unknown metric %q", name)
	}
	return id, nil
}

// FetchByName resolves and fetches the named metrics in order.
func (c *Client) FetchByName(names ...string) (FetchResult, error) {
	pmids := make([]uint32, len(names))
	for i, n := range names {
		id, err := c.Lookup(n)
		if err != nil {
			return FetchResult{}, err
		}
		pmids[i] = id
	}
	return c.Fetch(pmids)
}
