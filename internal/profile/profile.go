// Package profile implements the time-series, multi-component profiling
// of Section IV-C: it steps a phase-structured workload through simulated
// time, sampling a PAPI EventSet at a fixed interval, and reports one row
// per sample — memory traffic rates, GPU power levels and network
// counters side by side, the raw material of Figs. 11 and 12.
package profile

import (
	"fmt"

	"papimc/internal/papi"
	"papimc/internal/simtime"
)

// Phase is one stage of a profiled workload.
type Phase struct {
	Name     string
	Duration simtime.Duration
	// Emit posts the phase's hardware activity for the sub-window
	// [t0, t1); it is called once per sample step. May be nil for
	// phases whose activity was scheduled up front (e.g. GPU work).
	Emit func(t0, t1 simtime.Time)
}

// Sample is one profiler row.
type Sample struct {
	Time  simtime.Time
	Phase string
	// Values holds, per event, the delta over this sampling interval
	// for counter events and the current level for instant events.
	Values []uint64
}

// Result is a complete profile.
type Result struct {
	Events  []string
	Instant []bool
	Samples []Sample
}

// Run profiles the phases with the given events at the given sampling
// interval. The library's clock is advanced through every phase.
func Run(lib *papi.Library, events []string, interval simtime.Duration, phases []Phase) (*Result, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("profile: non-positive sampling interval %v", interval)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("profile: no phases")
	}
	res := &Result{Events: events, Instant: make([]bool, len(events))}
	for i, ev := range events {
		info, err := lib.DescribeEvent(ev)
		if err != nil {
			return nil, err
		}
		res.Instant[i] = info.Instant
	}
	es := lib.NewEventSet()
	if err := es.AddAll(events...); err != nil {
		return nil, err
	}
	if err := es.Start(); err != nil {
		return nil, err
	}
	defer es.Close()

	clock := lib.Clock()
	prev, err := es.Read()
	if err != nil {
		return nil, err
	}
	for _, ph := range phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("profile: phase %q has non-positive duration", ph.Name)
		}
		end := clock.Now().Add(ph.Duration)
		for clock.Now() < end {
			t0 := clock.Now()
			t1 := t0.Add(interval)
			if t1 > end {
				t1 = end
			}
			if ph.Emit != nil {
				ph.Emit(t0, t1)
			}
			clock.AdvanceTo(t1)
			cur, err := es.Read()
			if err != nil {
				return nil, err
			}
			row := Sample{Time: t1, Phase: ph.Name, Values: make([]uint64, len(cur))}
			for i, v := range cur {
				if res.Instant[i] {
					row.Values[i] = v
					continue
				}
				if v >= prev[i] {
					row.Values[i] = v - prev[i]
				}
			}
			prev = cur
			res.Samples = append(res.Samples, row)
		}
	}
	return res, nil
}

// PhaseTotals sums the counter columns per phase (instant events are
// averaged); useful for asserting figure shapes.
func (r *Result) PhaseTotals() map[string][]float64 {
	out := map[string][]float64{}
	counts := map[string]int{}
	for _, s := range r.Samples {
		tot, ok := out[s.Phase]
		if !ok {
			tot = make([]float64, len(r.Events))
			out[s.Phase] = tot
		}
		counts[s.Phase]++
		for i, v := range s.Values {
			tot[i] += float64(v)
		}
	}
	for phase, tot := range out {
		for i := range tot {
			if r.Instant[i] {
				tot[i] /= float64(counts[phase])
			}
		}
	}
	return out
}
