// Package mem simulates the memory subsystem behind the POWER9 nest: a
// per-socket memory controller whose traffic is interleaved across eight
// MBA channels, each maintaining the PM_MBA*_READ_BYTES and
// PM_MBA*_WRITE_BYTES counters the paper measures.
//
// Two deliberate imperfections make the counters behave like the real
// ones:
//
//   - posting lag: traffic becomes visible in the counters only some
//     (stochastic) time after it occurs on the bus, so windows around
//     very short kernels miss part of their own traffic and catch strays
//     from earlier activity;
//   - background noise: the OS and other tenants generate traffic at a
//     heavy-tailed rate, and the act of reading the counters itself
//     pollutes memory (measurement overhead).
//
// Together these reproduce the noise floor of Figs. 2–3 that motivates
// the paper's adaptive-repetition scheme.
package mem

import (
	"fmt"
	"sync"

	"papimc/internal/arch"
	"papimc/internal/simtime"
	"papimc/internal/units"
	"papimc/internal/xrand"
)

// TxBytes is the channel interleaving and counting granularity.
const TxBytes = units.MemTxBytes

// ChannelCounts is a snapshot of one MBA channel's byte counters.
type ChannelCounts struct {
	ReadBytes  uint64
	WriteBytes uint64
}

// event is traffic waiting to become visible in a channel counter.
type event struct {
	post  simtime.Time
	ch    int
	read  bool
	bytes int64
}

// Config configures a Controller.
type Config struct {
	Channels int
	Noise    arch.NoiseParams
	Seed     uint64
	// DisableNoise turns off background noise, measurement overhead and
	// posting lag, giving an ideal counter (used by validation tests to
	// separate modelling effects from noise).
	DisableNoise bool
}

// Controller is one socket's memory controller. It is safe for
// concurrent use.
type Controller struct {
	mu        sync.Mutex
	cfg       Config
	clock     *simtime.Clock
	rng       *xrand.Source
	pending   []event
	counters  []ChannelCounts
	lastNoise simtime.Time
}

// NewController builds a controller with the given channel count and
// noise model. It panics if channels is not positive.
func NewController(cfg Config, clock *simtime.Clock) *Controller {
	if cfg.Channels <= 0 {
		panic(fmt.Sprintf("mem: invalid channel count %d", cfg.Channels))
	}
	return &Controller{
		cfg:      cfg,
		clock:    clock,
		rng:      xrand.New(cfg.Seed),
		counters: make([]ChannelCounts, cfg.Channels),
	}
}

// Channels returns the number of MBA channels.
func (c *Controller) Channels() int { return c.cfg.Channels }

// Clock returns the simulated clock driving this controller.
func (c *Controller) Clock() *simtime.Clock { return c.clock }

// AddTraffic records bytes of read or write traffic occurring over
// [start, end] at the given starting address. The traffic is interleaved
// across channels in 64-byte transactions and posts to the counters with
// the configured lag after end.
func (c *Controller) AddTraffic(read bool, addr, bytes int64, start, end simtime.Time) {
	if bytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(read, addr, bytes, end)
	_ = start // start is kept in the signature for future DRAM-timing models
}

func (c *Controller) addLocked(read bool, addr, bytes int64, at simtime.Time) {
	tx := units.TxCount(bytes)
	n := int64(c.cfg.Channels)
	base := tx / n
	rem := tx % n
	first := (addr / TxBytes) % n
	if first < 0 {
		first = -first
	}
	for i := int64(0); i < n; i++ {
		chTx := base
		// The remainder lands on the channels immediately following the
		// starting address's channel, as interleaving would place it.
		if (i-first+n)%n < rem {
			chTx++
		}
		if chTx == 0 {
			continue
		}
		post := at
		if !c.cfg.DisableNoise && c.cfg.Noise.CounterPostLatency > 0 {
			lag := simtime.Duration(float64(c.cfg.Noise.CounterPostLatency) * c.rng.ExpFloat64())
			post = at.Add(lag)
		}
		c.pending = append(c.pending, event{post: post, ch: int(i), read: read, bytes: chTx * TxBytes})
	}
}

// AddTrafficSpread records bytes of traffic distributed uniformly over
// [start, end] in the given number of slices, so that counter samples
// taken inside the window see the transfer progressing rather than one
// lump at the end. Use it for long DMA transfers and copies.
func (c *Controller) AddTrafficSpread(read bool, addr, bytes int64, start, end simtime.Time, slices int) {
	if bytes <= 0 {
		return
	}
	if slices < 1 {
		slices = 1
	}
	span := end.Sub(start)
	per := bytes / int64(slices)
	for s := 0; s < slices; s++ {
		b := per
		if s == slices-1 {
			b = bytes - per*int64(slices-1)
		}
		t1 := start.Add(simtime.Duration(int64(span) * int64(s+1) / int64(slices)))
		t0 := start.Add(simtime.Duration(int64(span) * int64(s) / int64(slices)))
		c.AddTraffic(read, addr+int64(s)*TxBytes, b, t0, t1)
	}
}

// InjectMeasurementOverhead models the memory traffic caused by one
// counter-read operation (daemon wakeup, context switches, cache
// pollution of the measuring process).
func (c *Controller) InjectMeasurementOverhead(t simtime.Time) {
	if c.cfg.DisableNoise || c.cfg.Noise.MeasurementOverheadBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Log-normal with unit mean: exp(-σ²/2 + σZ).
	const sigma = 0.5
	mag := c.rng.LogNormal(-sigma*sigma/2, sigma)
	bytes := int64(c.cfg.Noise.MeasurementOverheadBytes * mag)
	// Overhead is mostly reads (instruction fetch, page metadata), with
	// a smaller write component.
	c.addLocked(true, int64(c.rng.Uint64()%(1<<30)), bytes*2/3, t)
	c.addLocked(false, int64(c.rng.Uint64()%(1<<30)), bytes/3, t)
}

// noiseStep is the granularity at which background noise is synthesized.
const noiseStep = simtime.Millisecond

// advanceNoiseLocked synthesizes background traffic from lastNoise to t.
func (c *Controller) advanceNoiseLocked(t simtime.Time) {
	if c.cfg.DisableNoise || c.cfg.Noise.BackgroundBytesPerSec <= 0 {
		c.lastNoise = t
		return
	}
	sigma := c.cfg.Noise.BackgroundBurstSigma
	for c.lastNoise < t {
		step := simtime.Duration(noiseStep)
		if remaining := t.Sub(c.lastNoise); remaining < step {
			step = remaining
		}
		mag := 1.0
		if sigma > 0 {
			mag = c.rng.LogNormal(-sigma*sigma/2, sigma)
		}
		bytes := int64(c.cfg.Noise.BackgroundBytesPerSec * step.Seconds() * mag)
		at := c.lastNoise.Add(step)
		addr := int64(c.rng.Uint64() % (1 << 30))
		c.addLocked(true, addr, bytes*3/5, at)
		c.addLocked(false, addr, bytes*2/5, at)
		c.lastNoise = at
	}
}

// Read returns a snapshot of every channel's counters as visible at
// simulated time t: all traffic posted at or before t, plus background
// noise up to t.
func (c *Controller) Read(t simtime.Time) []ChannelCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceNoiseLocked(t)
	// Fold posted events into the cumulative counters.
	keep := c.pending[:0]
	for _, e := range c.pending {
		if e.post <= t {
			if e.read {
				c.counters[e.ch].ReadBytes += uint64(e.bytes)
			} else {
				c.counters[e.ch].WriteBytes += uint64(e.bytes)
			}
		} else {
			keep = append(keep, e)
		}
	}
	c.pending = keep
	out := make([]ChannelCounts, len(c.counters))
	copy(out, c.counters)
	return out
}

// Totals returns the summed read and write bytes across channels at t.
func (c *Controller) Totals(t simtime.Time) (readBytes, writeBytes uint64) {
	for _, ch := range c.Read(t) {
		readBytes += ch.ReadBytes
		writeBytes += ch.WriteBytes
	}
	return readBytes, writeBytes
}

// Port adapts the controller to the cache simulator's MemPort: each
// MemRead/MemWrite is traffic at the clock's current instant.
type Port struct {
	C *Controller
}

// MemRead implements cache.MemPort.
func (p Port) MemRead(addr, bytes int64) {
	now := p.C.clock.Now()
	p.C.AddTraffic(true, addr, bytes, now, now)
}

// MemWrite implements cache.MemPort.
func (p Port) MemWrite(addr, bytes int64) {
	now := p.C.clock.Now()
	p.C.AddTraffic(false, addr, bytes, now, now)
}
