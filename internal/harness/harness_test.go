package harness

import (
	"testing"

	"papimc/internal/arch"
	"papimc/internal/node"
)

func TestRepsPolicies(t *testing.T) {
	if SingleRep(4096) != 1 {
		t.Error("SingleRep != 1")
	}
	if AdaptiveReps(100) != 489 || AdaptiveReps(4096) != 10 {
		t.Errorf("adaptive = %d/%d", AdaptiveReps(100), AdaptiveReps(4096))
	}
	if FixedReps(7)(123) != 7 {
		t.Error("FixedReps broken")
	}
}

// With ideal counters, the measured traffic must equal the model's
// prediction exactly, through either route.
func TestMeasureAveragedIdealExact(t *testing.T) {
	for _, route := range []node.Route{node.ViaPCP, node.Direct} {
		cfg := GEMMConfig{
			Machine: arch.Tellico(), // direct route needs privilege
			Batched: true,
			Route:   route,
			Reps:    FixedReps(3),
			Sizes:   []int64{256},
			Options: node.Options{DisableNoise: true},
		}
		pts, err := GEMMSweep(cfg)
		if err != nil {
			t.Fatalf("%v: %v", route, err)
		}
		p := pts[0]
		if p.MeasuredReadBytes != float64(p.ExpectedReadBytes) {
			t.Errorf("%v: reads %v != expected %d", route, p.MeasuredReadBytes, p.ExpectedReadBytes)
		}
		if p.MeasuredWriteBytes != float64(p.ExpectedWriteBytes) {
			t.Errorf("%v: writes %v != expected %d", route, p.MeasuredWriteBytes, p.ExpectedWriteBytes)
		}
	}
}

// The central accuracy claim, statistically: with realistic noise,
// single repetitions of a small GEMM are way off, while adaptive
// repetitions bring the average within a few percent (Figs. 2 vs 3a).
func TestAdaptiveRepetitionsBeatSingleRep(t *testing.T) {
	base := GEMMConfig{
		Machine: arch.Summit(),
		Batched: false,
		Route:   node.ViaPCP,
		Sizes:   []int64{256},
		Options: node.Options{Seed: 11},
	}
	single := base
	single.Reps = SingleRep
	one, err := GEMMSweep(single)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.Reps = AdaptiveReps
	many, err := GEMMSweep(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if one[0].ReadError() < 0.3 {
		t.Errorf("1-rep N=256 read error %.3f unexpectedly small (no noise floor?)", one[0].ReadError())
	}
	if many[0].ReadError() > 0.05 {
		t.Errorf("adaptive read error %.3f, want < 5%%", many[0].ReadError())
	}
	if many[0].ReadError() >= one[0].ReadError() {
		t.Errorf("averaging did not help: %.3f vs %.3f", many[0].ReadError(), one[0].ReadError())
	}
}

// PCP and perf_uncore must agree statistically on the same workload —
// the paper's headline result. (Tellico grants both routes.)
func TestRoutesAgreeUnderNoise(t *testing.T) {
	mk := func(route node.Route) Point {
		cfg := GEMMConfig{
			Machine: arch.Tellico(),
			Batched: true,
			Route:   route,
			Reps:    FixedReps(50),
			// N=700 keeps B within the per-core share, so the dashed
			// expectation applies (past N≈809 both routes correctly
			// measure the Eq. 4 jump instead).
			Sizes:   []int64{700},
			Options: node.Options{Seed: 3},
		}
		pts, err := GEMMSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0]
	}
	viaPCP := mk(node.ViaPCP)
	direct := mk(node.Direct)
	// Both within a few percent of the expectation and of each other.
	if viaPCP.ReadError() > 0.05 || direct.ReadError() > 0.05 {
		t.Errorf("read errors: pcp %.3f, direct %.3f", viaPCP.ReadError(), direct.ReadError())
	}
	rel := viaPCP.MeasuredReadBytes / direct.MeasuredReadBytes
	if rel < 0.95 || rel > 1.05 {
		t.Errorf("routes disagree: pcp/direct = %.3f", rel)
	}
}

func TestCappedGEMVSweepShape(t *testing.T) {
	cfg := GEMVConfig{
		Machine: arch.Summit(),
		Route:   node.ViaPCP,
		Reps:    FixedReps(2),
		Sizes:   []int64{512, 1280, 4096},
		Options: node.Options{DisableNoise: true},
	}
	pts, err := CappedGEMVSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Ideal counters: reads must match the (square then capped)
	// expectations exactly; tiny rounding from 64-byte transactions.
	for _, p := range pts {
		if p.ReadError() > 0.01 {
			t.Errorf("M=%d read error %.4f", p.Size, p.ReadError())
		}
		if p.WriteError() > 0.01 {
			t.Errorf("M=%d write error %.4f", p.Size, p.WriteError())
		}
	}
	// The capped point must use the per-thread M×N expectation, not M².
	last := pts[2]
	perThread := last.ExpectedReadBytes / 21
	if perThread >= 4096*4096*8 {
		t.Error("capped expectation not applied above the cap")
	}
	if wantCap := int64((4096*1280 + 4096 + 1280) * 8); perThread != wantCap {
		t.Errorf("per-thread capped expectation = %d, want %d", perThread, wantCap)
	}
}

func TestMeasureAveragedRejectsBadReps(t *testing.T) {
	tb, err := node.NewTestbed(arch.Summit(), 1, node.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, _, err := MeasureAveraged(tb, node.ViaPCP, 0, func(int) {}); err == nil {
		t.Error("expected error for zero reps")
	}
}

func TestResortSweepRangesAndExpectations(t *testing.T) {
	cfg := ResortConfig{
		Machine: arch.Summit(),
		Routine: S2CFRoutine,
		GridR:   2, GridC: 4,
		Route:   node.ViaPCP,
		Sizes:   []int64{512},
		Runs:    5,
		Options: node.Options{Seed: 5},
	}
	pts, err := ResortSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.MinReadBytes > p.MaxReadBytes || p.MinWriteBytes > p.MaxWriteBytes {
		t.Errorf("range inverted: %+v", p)
	}
	if p.ExpectedReadBytes != p.ExpectedWriteBytes {
		t.Error("S2CF expectation must be 1 read : 1 write")
	}
	// With noise, measurements bracket the expectation loosely.
	if p.MaxReadBytes < float64(p.ExpectedReadBytes) {
		t.Errorf("max read %v below expectation %d", p.MaxReadBytes, p.ExpectedReadBytes)
	}
}

func TestResortRoutineStrings(t *testing.T) {
	names := map[ResortRoutine]string{
		S1CFLoopNest1: "S1CF.LN1",
		S1CFLoopNest2: "S1CF.LN2",
		S1CFCombined:  "S1CF.combined",
		S2CFRoutine:   "S2CF",
	}
	for rt, want := range names {
		if rt.String() != want {
			t.Errorf("%d -> %q, want %q", int(rt), rt.String(), want)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(arch.Summit(), []int64{1344, 2016})
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byKey := map[string]Fig10Row{}
	for _, r := range rows {
		byKey[r.Routine+string(rune(r.N))] = r
		if r.BandwidthGBs <= 0 {
			t.Errorf("%s N=%d: non-positive bandwidth", r.Routine, r.N)
		}
	}
	// S1CF moves more reads per write than S2CF, and S2CF realizes
	// higher bandwidth (Fig. 10's two findings).
	for _, n := range []int64{1344, 2016} {
		var s1, s2 Fig10Row
		for _, r := range rows {
			if r.N == n && r.Routine == "S1CF" {
				s1 = r
			}
			if r.N == n && r.Routine == "S2CF" {
				s2 = r
			}
		}
		if s1.ReadWriteRatio <= s2.ReadWriteRatio {
			t.Errorf("N=%d: S1CF ratio %.2f <= S2CF %.2f", n, s1.ReadWriteRatio, s2.ReadWriteRatio)
		}
		if s2.BandwidthGBs <= s1.BandwidthGBs {
			t.Errorf("N=%d: S2CF bandwidth %.2f <= S1CF %.2f", n, s2.BandwidthGBs, s1.BandwidthGBs)
		}
	}
}
