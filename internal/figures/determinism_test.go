package figures

import (
	"bytes"
	"fmt"
	"testing"
)

// render writes a result exactly the way cmd/figures does: title, table,
// and chart when present.
func render(t *testing.T, res *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n\n", res.Title)
	if err := res.Table.Write(&b); err != nil {
		t.Fatal(err)
	}
	if res.Chart != nil {
		fmt.Fprintln(&b)
		if err := res.Chart.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

// TestWorkerCountInvariance is the sweep executor's headline guarantee:
// regenerating the full figure set with four workers produces output
// byte-identical to the serial run, because every sweep task runs on its
// own testbed seeded from sweep.Seed(base, index).
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure twice")
	}
	serialOpts := Options{Quick: true, Workers: 1}
	parallelOpts := Options{Quick: true, Workers: 4}
	for _, g := range All() {
		serialRes, err := g.Gen(serialOpts)
		if err != nil {
			t.Fatalf("%s workers=1: %v", g.ID, err)
		}
		parallelRes, err := g.Gen(parallelOpts)
		if err != nil {
			t.Fatalf("%s workers=4: %v", g.ID, err)
		}
		serial := render(t, serialRes)
		parallel := render(t, parallelRes)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: workers=4 output differs from workers=1\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				g.ID, serial, parallel)
		}
	}
}
