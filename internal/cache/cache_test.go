package cache

import (
	"testing"
	"testing/quick"

	"papimc/internal/arch"
	"papimc/internal/trace"
	"papimc/internal/units"
)

// fakeMem counts traffic by direction.
type fakeMem struct {
	readBytes, writeBytes int64
	reads, writes         int
}

func (m *fakeMem) MemRead(addr, bytes int64)  { m.readBytes += bytes; m.reads++ }
func (m *fakeMem) MemWrite(addr, bytes int64) { m.writeBytes += bytes; m.writes++ }

func summitSocket() arch.Socket { return arch.Summit().Socket }

func singleCore(t *testing.T, opts ...func(*Config)) (*Hierarchy, *fakeMem) {
	t.Helper()
	mem := &fakeMem{}
	cfg := Config{Socket: summitSocket(), ActiveCores: []int{0}}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg, mem), mem
}

func seqLoads(h *Hierarchy, core int, base, bytes, elem int64) {
	for off := int64(0); off < bytes; off += elem {
		h.Access(core, trace.Access{Addr: base + off, Size: elem, Kind: trace.Load})
	}
}

func seqStores(h *Hierarchy, core int, base, bytes, elem int64) {
	for off := int64(0); off < bytes; off += elem {
		h.Access(core, trace.Access{Addr: base + off, Size: elem, Kind: trace.Store})
	}
}

func TestColdSequentialReadTrafficEqualsFootprint(t *testing.T) {
	h, mem := singleCore(t)
	const footprint = 64 * units.KiB
	seqLoads(h, 0, 1<<20, footprint, 8)
	if mem.readBytes != footprint {
		t.Errorf("cold read traffic = %d, want %d", mem.readBytes, footprint)
	}
	if mem.writeBytes != 0 {
		t.Errorf("pure reads generated %d write bytes", mem.writeBytes)
	}
}

func TestWarmReReadIsFree(t *testing.T) {
	h, mem := singleCore(t)
	const footprint = 16 * units.KiB // fits in L1
	seqLoads(h, 0, 1<<20, footprint, 8)
	before := mem.readBytes
	seqLoads(h, 0, 1<<20, footprint, 8)
	if mem.readBytes != before {
		t.Errorf("re-read of cached data caused %d extra bytes", mem.readBytes-before)
	}
	if h.Stats().L1Hits == 0 {
		t.Error("expected L1 hits on re-read")
	}
}

// A pure sequential store stream must bypass the cache: writes equal to
// the footprint, no reads (the S1CF loop-nest-1 observation, Fig. 6a).
func TestSequentialStoreBypass(t *testing.T) {
	h, mem := singleCore(t)
	const footprint = 64 * units.KiB
	seqStores(h, 0, 1<<20, footprint, 16)
	h.Drain()
	// The stream confirms after a few stores, so at most the first block
	// is write-allocated before bypass engages.
	if mem.readBytes > BlockBytes {
		t.Errorf("bypassed stores read %d bytes from memory", mem.readBytes)
	}
	if mem.writeBytes != footprint {
		t.Errorf("store traffic = %d, want %d", mem.writeBytes, footprint)
	}
	if h.Stats().BypassStoreBlocks == 0 {
		t.Error("expected bypass path to be used")
	}
}

// With software prefetch (-fprefetch-loop-arrays) the same store stream
// must incur a read per written block (Fig. 6b).
func TestSoftwarePrefetchForcesReadPerWrite(t *testing.T) {
	h, mem := singleCore(t, func(c *Config) { c.SoftwarePrefetch = true })
	const footprint = 64 * units.KiB
	seqStores(h, 0, 1<<20, footprint, 16)
	h.Drain()
	if mem.readBytes != footprint {
		t.Errorf("prefetched store reads = %d, want %d", mem.readBytes, footprint)
	}
	if mem.writeBytes != footprint {
		t.Errorf("prefetched store writes = %d, want %d", mem.writeBytes, footprint)
	}
}

// An explicit dcbtst (PrefetchStore) before each store has the same
// effect as the config flag: the target blocks are read into L3.
func TestExplicitPrefetchStore(t *testing.T) {
	h, mem := singleCore(t)
	const footprint = 16 * units.KiB
	base := int64(1 << 20)
	for off := int64(0); off < footprint; off += 16 {
		h.Access(0, trace.Access{Addr: base + off, Size: 16, Kind: trace.PrefetchStore})
		h.Access(0, trace.Access{Addr: base + off, Size: 16, Kind: trace.Store})
	}
	h.Drain()
	if mem.readBytes != footprint {
		t.Errorf("dcbtst reads = %d, want %d", mem.readBytes, footprint)
	}
	if mem.writeBytes != footprint {
		t.Errorf("writes = %d, want %d", mem.writeBytes, footprint)
	}
	if h.Stats().PrefetchFills == 0 {
		t.Error("expected prefetch fills")
	}
}

// A strided load stream on the core disables store bypass: the GEMM
// "read for C" effect (Section III / Fig. 3b discussion).
func TestStridedStreamDisablesBypass(t *testing.T) {
	h, mem := singleCore(t)
	loadBase := int64(1 << 24)
	storeBase := int64(1 << 26)
	const n = 2048
	const stride = 4096 // strided: lands on a new block every access
	for i := int64(0); i < n; i++ {
		h.Access(0, trace.Access{Addr: loadBase + i*stride, Size: 8, Kind: trace.Load})
		h.Access(0, trace.Access{Addr: storeBase + i*8, Size: 8, Kind: trace.Store})
	}
	h.Drain()
	st := h.Stats()
	if st.AllocStores == 0 {
		t.Error("expected allocating stores in the presence of a strided stream")
	}
	// Store blocks: n*8/64 blocks, each read (RFO) and eventually written.
	storeBytes := int64(n * 8)
	wantReads := int64(n)*BlockBytes + storeBytes // strided loads: one block each + RFO per store block
	if mem.readBytes != wantReads {
		t.Errorf("reads = %d, want %d", mem.readBytes, wantReads)
	}
	if mem.writeBytes != storeBytes {
		t.Errorf("writes = %d, want %d", mem.writeBytes, storeBytes)
	}
}

// A strided store stream always incurs read-per-write (S1CF combined
// nest, Fig. 8).
func TestStridedStoreStreamReadsPerWrite(t *testing.T) {
	h, mem := singleCore(t)
	base := int64(1 << 24)
	const n = 1024
	const stride = 8192
	for i := int64(0); i < n; i++ {
		h.Access(0, trace.Access{Addr: base + i*stride, Size: 16, Kind: trace.Store})
	}
	h.Drain()
	want := int64(n) * BlockBytes
	if mem.readBytes != want {
		t.Errorf("reads = %d, want %d (read per written block)", mem.readBytes, want)
	}
	if mem.writeBytes != want {
		t.Errorf("writes = %d, want %d", mem.writeBytes, want)
	}
}

// With idle core pairs, a single core's working set can overflow its
// local slice into borrowed slices and still be re-read mostly from
// cache (the 110 MB single-thread effect).
func TestLateralCastoutBorrowing(t *testing.T) {
	h, mem := singleCore(t)
	const footprint = 24 * units.MiB // > 10 MiB local slice, << 110 MiB total
	base := int64(1 << 30)
	seqLoads(h, 0, base, footprint, 64)
	cold := mem.readBytes
	if cold != footprint {
		t.Fatalf("cold reads = %d, want %d", cold, footprint)
	}
	seqLoads(h, 0, base, footprint, 64)
	warm := mem.readBytes - cold
	if warm >= footprint/2 {
		t.Errorf("warm re-read traffic %d not reduced by borrowing (footprint %d)", warm, footprint)
	}
	st := h.Stats()
	if st.LateralCastouts == 0 {
		t.Error("expected lateral castouts")
	}
	if st.L3BorrowHits == 0 {
		t.Error("expected borrow-slice hits")
	}
	if st.CastoutSpills == 0 {
		t.Error("expected some castout spills (the Fig. 3a extraneous traffic)")
	}
}

// With every core active there is nowhere to borrow: the same overflow
// working set must be re-read from memory (the batched-GEMM jump).
func TestNoBorrowingWhenAllCoresActive(t *testing.T) {
	mem := &fakeMem{}
	soc := summitSocket()
	all := make([]int, soc.Cores)
	for i := range all {
		all[i] = i
	}
	h := New(Config{Socket: soc, ActiveCores: all}, mem)
	const footprint = 24 * units.MiB
	base := int64(1 << 30)
	seqLoads(h, 0, base, footprint, 64)
	cold := mem.readBytes
	seqLoads(h, 0, base, footprint, 64)
	warm := mem.readBytes - cold
	if warm < footprint*9/10 {
		t.Errorf("warm re-read traffic %d; want nearly full footprint %d without borrowing", warm, footprint)
	}
	if h.Stats().LateralCastouts != 0 {
		t.Error("no lateral castouts expected with all cores active")
	}
}

// Partial write-combining flushes cost a full 64-byte transaction: the
// write amplification behind Fig. 5's extra write traffic.
func TestWriteCombiningPartialFlushAmplification(t *testing.T) {
	h, mem := singleCore(t)
	// Store 16 bytes into each of 8 distinct blocks: each partial entry
	// is displaced (buffer holds 4) or drained, always as a full block.
	base := int64(1 << 20)
	for i := int64(0); i < 8; i++ {
		h.Access(0, trace.Access{Addr: base + i*BlockBytes, Size: 16, Kind: trace.Store})
	}
	h.Drain()
	want := int64(8) * BlockBytes
	if mem.writeBytes != want {
		t.Errorf("amplified writes = %d, want %d (8 blocks × 64B for 128B stored)", mem.writeBytes, want)
	}
}

// A sparse sequential store stream (one store per many loads, like
// GEMV's y[i] after each dot product) cannot keep a gather buffer open
// and must write-allocate: one read per written block. This is why the
// paper's GEMV expectation includes M reads "incurred by the hardware
// when writing into the vector y".
func TestSparseStoreStreamAllocates(t *testing.T) {
	h, mem := singleCore(t)
	loadBase := int64(1 << 24)
	storeBase := int64(1 << 26)
	const rows = 64
	const rowLen = 256 // loads per store: far above the gather window
	for i := int64(0); i < rows; i++ {
		for k := int64(0); k < rowLen; k++ {
			h.Access(0, trace.Access{Addr: loadBase + (i*rowLen+k)*8, Size: 8, Kind: trace.Load})
		}
		h.Access(0, trace.Access{Addr: storeBase + i*8, Size: 8, Kind: trace.Store})
	}
	h.Drain()
	st := h.Stats()
	if st.AllocStores == 0 {
		t.Error("sparse store stream should write-allocate")
	}
	storeBytes := int64(rows * 8)
	loadBytes := int64(rows * rowLen * 8)
	if mem.readBytes != loadBytes+storeBytes {
		t.Errorf("reads = %d, want %d (loads) + %d (store RFO)", mem.readBytes, loadBytes, storeBytes)
	}
	if mem.writeBytes != storeBytes {
		t.Errorf("writes = %d, want %d", mem.writeBytes, storeBytes)
	}
}

func TestDrainWritesBackDirtyLines(t *testing.T) {
	h, mem := singleCore(t, func(c *Config) { c.SoftwarePrefetch = true })
	const footprint = 8 * units.KiB
	seqStores(h, 0, 1<<20, footprint, 8)
	if mem.writeBytes != 0 {
		t.Fatalf("writes before drain = %d (dirty data should be cached)", mem.writeBytes)
	}
	h.Drain()
	if mem.writeBytes != footprint {
		t.Errorf("drained writes = %d, want %d", mem.writeBytes, footprint)
	}
	if h.CachedBlocks() != 0 {
		t.Errorf("%d blocks still cached after drain", h.CachedBlocks())
	}
}

func TestAccessStraddlingBlocksSplits(t *testing.T) {
	h, mem := singleCore(t)
	// 64-byte load at offset 32 touches two blocks.
	h.Access(0, trace.Access{Addr: 1<<20 + 32, Size: 64, Kind: trace.Load})
	if mem.readBytes != 2*BlockBytes {
		t.Errorf("straddling read traffic = %d, want %d", mem.readBytes, 2*BlockBytes)
	}
	if h.Stats().Accesses != 2 {
		t.Errorf("straddling access counted as %d", h.Stats().Accesses)
	}
}

func TestPanicsOnBadUse(t *testing.T) {
	h, _ := singleCore(t)
	mustPanic(t, "inactive core", func() {
		h.Access(5, trace.Access{Addr: 0, Size: 8, Kind: trace.Load})
	})
	mustPanic(t, "zero size", func() {
		h.Access(0, trace.Access{Addr: 0, Size: 0, Kind: trace.Load})
	})
	mustPanic(t, "no active cores", func() {
		New(Config{Socket: summitSocket()}, &fakeMem{})
	})
	mustPanic(t, "core out of range", func() {
		New(Config{Socket: summitSocket(), ActiveCores: []int{99}}, &fakeMem{})
	})
	mustPanic(t, "duplicate core", func() {
		New(Config{Socket: summitSocket(), ActiveCores: []int{1, 1}}, &fakeMem{})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// Property: for any access mix, memory writes never exceed the number of
// store accesses (each store dirties at most one block, and every write
// traces back to a dirtied or gathered block), and after Drain the
// hierarchy is empty.
func TestTrafficConservationProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		mem := &fakeMem{}
		h := New(Config{Socket: summitSocket(), ActiveCores: []int{0, 1, 4}}, mem)
		stores := 0
		cores := []int{0, 1, 4}
		for _, op := range ops {
			core := cores[int(op%3)]
			kind := trace.Kind(op / 3 % 3)
			addr := int64(op/9%(1<<16)) * 8
			if kind == trace.Store {
				stores++
			}
			h.Access(core, trace.Access{Addr: addr, Size: 8, Kind: kind})
		}
		h.Drain()
		if h.CachedBlocks() != 0 {
			return false
		}
		return mem.writeBytes <= int64(stores)*BlockBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: traffic is always a whole number of 64-byte transactions.
func TestTrafficGranularityProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		mem := &fakeMem{}
		h := New(Config{Socket: summitSocket(), ActiveCores: []int{0}}, mem)
		for _, op := range ops {
			kind := trace.Kind(op % 2) // loads and stores
			addr := int64(op % (1 << 20))
			size := int64(op%3)*8 + 8
			h.Access(0, trace.Access{Addr: addr, Size: size, Kind: kind})
		}
		h.Drain()
		return mem.readBytes%BlockBytes == 0 && mem.writeBytes%BlockBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
