package loadgen

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"papimc/internal/pcp"
)

// batchCounter is a fake batching fetcher that records how work
// arrives: single fetches vs batch round trips, and the shape of each
// batch.
type batchCounter struct {
	singles atomic.Int64
	batches atomic.Int64
	sets    atomic.Int64

	mu        sync.Mutex
	lastShape []int // len of each set in the last batch
}

func (b *batchCounter) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	b.singles.Add(1)
	return b.answer(pmids), nil
}

func (b *batchCounter) FetchBatch(sets [][]uint32) ([]pcp.FetchResult, error) {
	b.batches.Add(1)
	b.sets.Add(int64(len(sets)))
	shape := make([]int, len(sets))
	out := make([]pcp.FetchResult, len(sets))
	for i, s := range sets {
		shape[i] = len(s)
		out[i] = b.answer(s)
	}
	b.mu.Lock()
	b.lastShape = shape
	b.mu.Unlock()
	return out, nil
}

func (b *batchCounter) answer(pmids []uint32) pcp.FetchResult {
	vals := make([]pcp.FetchValue, len(pmids))
	for i, id := range pmids {
		vals[i] = pcp.FetchValue{PMID: id, Status: pcp.StatusOK, Value: uint64(id)}
	}
	return pcp.FetchResult{Timestamp: 1, Values: vals}
}

// TestBatchAccounting: with Batch=B the generator issues one FetchBatch
// round trip per B sets, never single fetches, and the report counts
// fetched sets — Ops and throughput stay comparable across batch sizes.
func TestBatchAccounting(t *testing.T) {
	target := &batchCounter{}
	const batch, ops = 8, 64
	res, err := Run(SharedFactory(target), Options{
		Mode:    Closed,
		Workers: 2,
		Ops:     ops,
		Batch:   batch,
		PMIDs:   []uint32{1, 2, 3},
		Sim:     &SimModel{Seed: 7, Base: 5 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if target.singles.Load() != 0 {
		t.Errorf("%d single fetches issued with Batch=%d, want 0", target.singles.Load(), batch)
	}
	wantSets := int64(2 * ops * batch) // Ops counts requests per worker; each carries Batch sets
	if got := target.sets.Load(); got != wantSets {
		t.Errorf("target saw %d sets, want %d", got, wantSets)
	}
	if target.batches.Load() != int64(2*ops) {
		t.Errorf("target saw %d batch round trips, want %d", target.batches.Load(), 2*ops)
	}
	if res.Ops != wantSets {
		t.Errorf("report Ops = %d, want %d (sets, not round trips)", res.Ops, wantSets)
	}
	target.mu.Lock()
	shape := target.lastShape
	target.mu.Unlock()
	if len(shape) != batch {
		t.Fatalf("last batch carried %d sets, want %d", len(shape), batch)
	}
	for _, n := range shape {
		if n != 3 {
			t.Fatalf("batch set shape %v, want every set = PMIDs", shape)
		}
	}
}

// TestBatchRequiresBatchFetcher: Batch > 1 with a plain Fetcher is a
// configuration error, reported before any load is generated.
func TestBatchRequiresBatchFetcher(t *testing.T) {
	plain := FetchFunc(func(pmids []uint32) (pcp.FetchResult, error) {
		return pcp.FetchResult{}, nil
	})
	_, err := Run(SharedFactory(plain), Options{
		Mode:    Closed,
		Workers: 1,
		Ops:     1,
		Batch:   4,
		PMIDs:   []uint32{1},
		Sim:     &SimModel{Seed: 1, Base: time.Microsecond},
	})
	if err == nil || !strings.Contains(err.Error(), "BatchFetcher") {
		t.Fatalf("err = %v, want a BatchFetcher requirement error", err)
	}
}

// TestPipelinedFactorySharing: the factory hands out at most conns
// connections round-robin, keeps them open until the LAST worker's
// cleanup, and is reusable afterwards — the contract Sweep depends on
// when it reuses one factory across load levels.
func TestPipelinedFactorySharing(t *testing.T) {
	d, addr := testDaemon(t)
	_ = d
	const conns, workers = 2, 5
	f := PipelinedFactory(addr, conns)

	fets := make([]Fetcher, workers)
	cleanups := make([]func() error, workers)
	for i := range fets {
		var err error
		fets[i], cleanups[i], err = f()
		if err != nil {
			t.Fatal(err)
		}
	}
	distinct := map[Fetcher]bool{}
	for _, fet := range fets {
		distinct[fet] = true
	}
	if len(distinct) != conns {
		t.Fatalf("%d workers got %d distinct connections, want %d", workers, len(distinct), conns)
	}

	// Early cleanups must not close the shared connections out from
	// under the remaining workers.
	for i := 0; i < workers-1; i++ {
		if err := cleanups[i](); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fets[workers-1].Fetch([]uint32{1}); err != nil {
		t.Fatalf("shared connection died before its last worker: %v", err)
	}
	if err := cleanups[workers-1](); err != nil {
		t.Fatal(err)
	}
	if _, err := fets[0].Fetch([]uint32{1}); err == nil {
		t.Fatal("connection still alive after the last cleanup")
	}

	// Reusable: the next acquisition dials fresh.
	fet, cleanup, err := f()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if _, err := fet.Fetch([]uint32{1}); err != nil {
		t.Fatalf("factory not reusable after full drain: %v", err)
	}
}

// TestBatchAgainstLiveDaemon: end to end through a real pipelined
// connection, Batch mode fetches real values and every set in the run
// is well-formed.
func TestBatchAgainstLiveDaemon(t *testing.T) {
	_, addr := testDaemon(t)
	res, err := Run(PipelinedFactory(addr, 2), Options{
		Mode:    Closed,
		Workers: 4,
		Ops:     25,
		Batch:   4,
		PMIDs:   []uint32{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against a healthy daemon", res.Errors)
	}
	if want := int64(4 * 25 * 4); res.Ops != want {
		t.Errorf("Ops = %d, want %d", res.Ops, want)
	}
}
