// Package perfuncore implements PAPI's direct nest-counter component:
// the perf_uncore route used on Tellico, where users hold elevated
// privileges. Event names follow Table I's spelling
// (power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0); the cpu qualifier selects
// the socket whose nest is read.
package perfuncore

import (
	"errors"
	"fmt"

	"papimc/internal/arch"
	"papimc/internal/nest"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

// Component reads nest PMUs directly. Instantiating counters fails with
// papi.ErrPermission when the credential is unprivileged — exactly the
// failure an ordinary Summit user encounters, which is why the PCP
// component exists.
type Component struct {
	pmus []*nest.PMU // indexed by socket
	cred nest.Credential
}

// New builds the component over the given per-socket PMUs.
func New(pmus []*nest.PMU, cred nest.Credential) *Component {
	return &Component{pmus: pmus, cred: cred}
}

// Name implements papi.Component.
func (c *Component) Name() string { return "perf_uncore" }

func (c *Component) machine() arch.Machine { return c.pmus[0].Machine() }

// ListEvents implements papi.Component: one entry per (socket, channel,
// direction).
func (c *Component) ListEvents() ([]papi.EventInfo, error) {
	var out []papi.EventInfo
	m := c.machine()
	for socket := range c.pmus {
		cpu := socket * m.HWThreadsPerSocket()
		for _, ev := range c.pmus[socket].Events() {
			out = append(out, c.info(ev, cpu))
		}
	}
	return out, nil
}

func (c *Component) info(ev nest.Event, cpu int) papi.EventInfo {
	dir := "read"
	if ev.Write {
		dir = "written"
	}
	return papi.EventInfo{
		Name:        ev.PerfUncoreName(cpu),
		Description: fmt.Sprintf("bytes %s on MBA channel %d of the socket owning cpu %d", dir, ev.Channel, cpu),
		Units:       "bytes",
	}
}

// parse resolves a native name to an event and socket.
func (c *Component) parse(native string) (nest.Event, int, error) {
	ev, cpu, err := nest.ParsePerfUncoreName(native)
	if err != nil {
		return nest.Event{}, 0, fmt.Errorf("%w: %v", papi.ErrNoEvent, err)
	}
	m := c.machine()
	socket := m.SocketForCPU(cpu)
	if socket < 0 || socket >= len(c.pmus) {
		return nest.Event{}, 0, fmt.Errorf("%w: cpu %d does not map to a monitored socket", papi.ErrNoEvent, cpu)
	}
	if ev.Channel >= m.Socket.MBAChannels {
		return nest.Event{}, 0, fmt.Errorf("%w: channel %d out of range", papi.ErrNoEvent, ev.Channel)
	}
	return ev, socket, nil
}

// Describe implements papi.Component.
func (c *Component) Describe(native string) (papi.EventInfo, error) {
	ev, socket, err := c.parse(native)
	if err != nil {
		return papi.EventInfo{}, err
	}
	info := c.info(ev, socket*c.machine().HWThreadsPerSocket())
	info.Name = native
	return info, nil
}

// NewCounters implements papi.Component.
func (c *Component) NewCounters(natives []string) (papi.Counters, error) {
	if !c.cred.Privileged() {
		return nil, fmt.Errorf("%w: direct nest access requires elevated privileges (use the pcp component)", papi.ErrPermission)
	}
	set := &counters{comp: c}
	for _, n := range natives {
		ev, socket, err := c.parse(n)
		if err != nil {
			return nil, err
		}
		set.events = append(set.events, ev)
		set.sockets = append(set.sockets, socket)
	}
	// Batch per socket once at instantiation: each socket incurs one
	// measurement-overhead injection per read, like one perf_event
	// syscall reading a counter group.
	batches := map[int]*socketBatch{}
	for i, ev := range set.events {
		sk := set.sockets[i]
		b, ok := batches[sk]
		if !ok {
			b = &socketBatch{socket: sk}
			batches[sk] = b
			set.batches = append(set.batches, b)
		}
		b.events = append(b.events, ev)
		b.indices = append(b.indices, i)
	}
	set.out = make([]uint64, len(set.events))
	return set, nil
}

// socketBatch groups a counter set's events on one socket.
type socketBatch struct {
	socket  int
	events  []nest.Event
	indices []int
	vals    []uint64 // per-read scratch
}

type counters struct {
	comp    *Component
	events  []nest.Event
	sockets []int
	batches []*socketBatch // per-socket groups, in first-appearance order
	out     []uint64       // reused result buffer
	closed  bool
}

// ReadAt implements papi.Counters. The per-socket batches and the result
// buffer are precomputed, so a read allocates nothing.
func (s *counters) ReadAt(t simtime.Time) ([]uint64, error) {
	if s.closed {
		return nil, errors.New("perfuncore: counters closed")
	}
	for _, b := range s.batches {
		vals, err := s.comp.pmus[b.socket].ReadAllInto(b.events, s.comp.cred, t, b.vals)
		if err != nil {
			if errors.Is(err, nest.ErrPermission) {
				return nil, fmt.Errorf("%w: %v", papi.ErrPermission, err)
			}
			return nil, err
		}
		b.vals = vals
		for j, idx := range b.indices {
			s.out[idx] = vals[j]
		}
	}
	return s.out, nil
}

func (s *counters) Close() error {
	s.closed = true
	return nil
}
