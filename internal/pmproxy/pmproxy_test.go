package pmproxy

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/nest"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

const sampleInterval = 10 * simtime.Millisecond

// nestBed mirrors testutil.NestBed locally: these tests live in
// package pmproxy (they reach unexported proxy state), and testutil
// imports cluster — which imports pmproxy — so importing testutil from
// here would be a cycle.
type nestBed struct {
	Ctl    *mem.Controller
	Clock  *simtime.Clock
	Daemon *pcp.Daemon
	Addr   string
}

func startNestDaemon(t *testing.T, interval simtime.Duration) nestBed {
	t.Helper()
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := pcp.NewDaemon(clock, interval, pcp.NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return nestBed{Ctl: ctl, Clock: clock, Daemon: d, Addr: addr}
}

// rig builds a daemon over an ideal Summit socket and a proxy in front
// of it sharing the daemon's clock.
func rig(t *testing.T, cfg func(*Config)) (*mem.Controller, *simtime.Clock, *pcp.Daemon, *Proxy, string) {
	t.Helper()
	bed := startNestDaemon(t, sampleInterval)
	c := Config{
		Upstream:   bed.Addr,
		Clock:      bed.Clock,
		Interval:   sampleInterval,
		Timeout:    2 * time.Second,
		MaxRetries: 1,
	}
	if cfg != nil {
		cfg(&c)
	}
	p := New(c)
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return bed.Ctl, bed.Clock, bed.Daemon, p, addr
}

// TestCoalescing32Clients is the acceptance test for the fan-out win:
// 32 concurrent clients fetching the same metric set within one daemon
// sampling interval cost exactly one upstream round trip.
func TestCoalescing32Clients(t *testing.T) {
	_, clock, _, p, addr := rig(t, nil)
	const clients, fetchesPer = 32, 5
	name := "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value.cpu87"
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := pcp.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < fetchesPer; i++ {
				if _, err := c.FetchByName(name); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ClientFetches != clients*fetchesPer {
		t.Errorf("client fetches = %d, want %d", st.ClientFetches, clients*fetchesPer)
	}
	if st.UpstreamFetches != 1 {
		t.Errorf("upstream fetches = %d, want 1 (all requests in one sampling interval)", st.UpstreamFetches)
	}
	if st.CoalescedHits != clients*fetchesPer-1 {
		t.Errorf("coalesced hits = %d, want %d", st.CoalescedHits, clients*fetchesPer-1)
	}
	if r := st.CoalescingRatio(); r != clients*fetchesPer {
		t.Errorf("coalescing ratio = %v", r)
	}

	// A new interval costs exactly one more upstream round trip.
	clock.Advance(sampleInterval + simtime.Millisecond)
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.FetchByName(name); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.UpstreamFetches != 2 {
		t.Errorf("upstream fetches after interval = %d, want 2", st.UpstreamFetches)
	}
}

// TestProxyValuesMatchDirect: a value read through the proxy equals the
// value read straight from the daemon, timestamp included.
func TestProxyValuesMatchDirect(t *testing.T) {
	ctl, clock, _, _, addr := rig(t, nil)
	ctl.AddTraffic(true, 0, 64*800, 0, 0)
	clock.Advance(20 * simtime.Millisecond)
	viaProxy, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer viaProxy.Close()
	res, err := viaProxy.Fetch([]uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Timestamp) != int64(clock.Now()) {
		t.Errorf("timestamp = %d, want %d", res.Timestamp, clock.Now())
	}
	var sum uint64
	for _, v := range res.Values {
		if v.Status != pcp.StatusOK {
			t.Fatalf("status %d", v.Status)
		}
		sum += v.Value
	}
	if sum == 0 {
		t.Error("no traffic visible through proxy")
	}
}

// TestStaleServingWhenUpstreamDown: once the upstream daemon dies, the
// proxy keeps answering with the last good result, carrying its original
// timestamp so clients can detect staleness; with DisableStale it fails.
func TestStaleServingWhenUpstreamDown(t *testing.T) {
	_, clock, d, p, addr := rig(t, func(c *Config) {
		c.MaxRetries = 0
		c.Timeout = 200 * time.Millisecond
	})
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	warm, err := c.Fetch([]uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Close() // upstream gone

	// Past the coalescing window the proxy must go upstream, fail, and
	// fall back to the cached answer.
	clock.Advance(sampleInterval + simtime.Millisecond)
	stale, err := c.Fetch([]uint32{1, 2})
	if err != nil {
		t.Fatalf("stale serve failed: %v", err)
	}
	if stale.Timestamp != warm.Timestamp {
		t.Errorf("stale answer re-stamped: %d vs %d", stale.Timestamp, warm.Timestamp)
	}
	if st := p.Stats(); st.StaleServes == 0 || st.UpstreamErrors == 0 {
		t.Errorf("stats = %+v, want stale serves and upstream errors", st)
	}

	// An uncached pmid-set has nothing to degrade to: error PDU.
	if _, err := c.Fetch([]uint32{3}); err == nil {
		t.Error("expected error for uncached set with upstream down")
	}
}

func TestDisableStaleFailsFast(t *testing.T) {
	_, clock, d, _, addr := rig(t, func(c *Config) {
		c.DisableStale = true
		c.MaxRetries = 0
		c.Timeout = 200 * time.Millisecond
	})
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Fetch([]uint32{1}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	clock.Advance(sampleInterval + simtime.Millisecond)
	if _, err := c.Fetch([]uint32{1}); err == nil {
		t.Error("expected failure with DisableStale")
	}
}

// TestNameTableCachedAndRefreshed: the name table is served from cache
// within an interval and picks up daemon-side namespace growth after it.
func TestNameTableCachedAndRefreshed(t *testing.T) {
	_, clock, d, p, addr := rig(t, nil)
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Register(pcp.Metric{Name: "late.metric",
		Read: func(simtime.Time) (uint64, error) { return 99, nil }}); err != nil {
		t.Fatal(err)
	}
	// Within the interval: still the cached (old) table.
	cached, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != len(before) {
		t.Errorf("cached table grew within interval: %d -> %d", len(before), len(cached))
	}
	clock.Advance(sampleInterval + simtime.Millisecond)
	after, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Errorf("refreshed table has %d entries, want %d", len(after), len(before)+1)
	}
	_ = p
}

// TestRetryBackoffRedials: a flaky upstream dial succeeds after retries.
func TestRetryBackoffRedials(t *testing.T) {
	bed := startNestDaemon(t, sampleInterval)

	var mu sync.Mutex
	dials := 0
	p := New(Config{
		Clock:      bed.Clock,
		Interval:   sampleInterval,
		MaxRetries: 3,
		Dial: func() (*pcp.Client, error) {
			mu.Lock()
			dials++
			n := dials
			mu.Unlock()
			if n <= 2 {
				return nil, fmt.Errorf("transient dial failure %d", n)
			}
			return pcp.Dial(bed.Addr)
		},
	})
	defer p.Close()
	if _, err := p.Fetch([]uint32{1}); err != nil {
		t.Fatalf("fetch through flaky upstream: %v", err)
	}
	st := p.Stats()
	if st.UpstreamErrors != 2 || st.Redials != 1 || st.UpstreamFetches != 1 {
		t.Errorf("stats = %+v, want 2 errors, 1 redial, 1 fetch", st)
	}
	if st.Retries != 2 || st.Exhausted != 0 {
		t.Errorf("stats = %+v, want 2 retries, 0 exhausted", st)
	}

	// Exhausted retries surface ErrUpstreamDown.
	pBad := New(Config{MaxRetries: 1, Dial: func() (*pcp.Client, error) {
		return nil, errors.New("always down")
	}})
	defer pBad.Close()
	if _, err := pBad.Fetch([]uint32{1}); !errors.Is(err, ErrUpstreamDown) {
		t.Errorf("err = %v, want ErrUpstreamDown", err)
	}
	if st := pBad.Stats(); st.UpstreamErrors != 2 || st.Retries != 1 || st.Exhausted != 1 {
		t.Errorf("exhausted stats = %+v, want errors=2 retries=1 exhausted=1", st)
	}
}

// TestBackoffCappedAndJittered is the regression test for the unbounded
// doubling bug: across a long retry sequence the planned sleeps must (a)
// never exceed BackoffMax, (b) stay within each step's jitter window
// [d/2, d], and (c) be reproducible for a fixed Config.Seed.
func TestBackoffCappedAndJittered(t *testing.T) {
	const retries = 20
	run := func(seed uint64) []time.Duration {
		var sleeps []time.Duration
		p := New(Config{
			MaxRetries: retries,
			Backoff:    time.Millisecond,
			BackoffMax: 16 * time.Millisecond,
			Seed:       seed,
			Dial: func() (*pcp.Client, error) {
				return nil, errors.New("always down")
			},
		})
		defer p.Close()
		p.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
		if _, err := p.Fetch([]uint32{1}); !errors.Is(err, ErrUpstreamDown) {
			t.Fatalf("err = %v, want ErrUpstreamDown", err)
		}
		return sleeps
	}

	sleeps := run(7)
	if len(sleeps) != retries {
		t.Fatalf("planned %d sleeps, want %d", len(sleeps), retries)
	}
	// The nominal (pre-jitter) backoff doubles from Backoff and saturates
	// at BackoffMax; each planned sleep must lie in [nominal/2, nominal].
	nominal := time.Millisecond
	const backoffMax = 16 * time.Millisecond
	for i, s := range sleeps {
		if s > backoffMax {
			t.Errorf("sleep %d = %v exceeds BackoffMax %v", i, s, backoffMax)
		}
		if s < nominal/2 || s > nominal {
			t.Errorf("sleep %d = %v outside jitter window [%v, %v]", i, s, nominal/2, nominal)
		}
		if nominal > backoffMax/2 {
			nominal = backoffMax
		} else {
			nominal *= 2
		}
	}
	// Saturation: by the end the nominal backoff must have hit the cap
	// (i.e. the sequence would have overflowed it absent the fix).
	if tail := sleeps[len(sleeps)-1]; tail > backoffMax {
		t.Errorf("tail sleep %v exceeds cap", tail)
	}

	// Determinism: same seed, same planned sleeps; different seed differs.
	if again := run(7); !reflect.DeepEqual(sleeps, again) {
		t.Errorf("sleeps not reproducible for fixed seed:\n%v\n%v", sleeps, again)
	}
	if other := run(8); reflect.DeepEqual(sleeps, other) {
		t.Errorf("different seeds produced identical jitter (suspicious)")
	}
}
