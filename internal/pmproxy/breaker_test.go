package pmproxy

import (
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"papimc/internal/faultconn"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// TestBreakerDelayDoubling unit-tests the breaker clock math with no
// jitter: the open interval doubles after each failed probe, caps at
// ProbeDelayMax, and resets on a successful probe.
func TestBreakerDelayDoubling(t *testing.T) {
	const sec = int64(time.Second)
	b := newBreaker(BreakerConfig{Threshold: 1, ProbeDelay: time.Second, ProbeDelayMax: 3 * time.Second}, nil)

	b.onFailure(0) // threshold 1: first failure trips
	if err := b.allow(sec / 2); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow before probe delay: %v, want ErrCircuitOpen", err)
	}
	// Failures landing while already open (stragglers that were in
	// flight when it tripped) change nothing.
	b.onFailure(sec / 4)

	if err := b.allow(sec); err != nil { // 1s elapsed: probe admitted
		t.Fatalf("probe at delay boundary: %v", err)
	}
	b.onFailure(sec) // failed probe: delay doubles to 2s
	if err := b.allow(3*sec - 1); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow inside doubled delay: %v, want ErrCircuitOpen", err)
	}
	if err := b.allow(3 * sec); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	b.onFailure(3 * sec) // delay caps at 3s, not 4s
	if err := b.allow(6*sec - 1); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("capped delay not honoured")
	}
	if err := b.allow(6 * sec); err != nil {
		t.Fatalf("third probe: %v", err)
	}
	b.onSuccess() // probe succeeded: closed, delay reset
	if err := b.allow(6 * sec); err != nil {
		t.Fatalf("allow while closed: %v", err)
	}
	b.onFailure(7 * sec) // trips again; delay is back to 1s
	if err := b.allow(8 * sec); err != nil {
		t.Fatalf("probe after reset delay: %v", err)
	}

	want := []string{
		"closed→open",
		"open→half-open", "half-open→open",
		"open→half-open", "half-open→open",
		"open→half-open", "half-open→closed",
		"closed→open", "open→half-open",
	}
	if got := b.history(); !reflect.DeepEqual(got, want) {
		t.Errorf("transitions = %v, want %v", got, want)
	}
	opens, probes := b.snapshot()
	if opens != 4 || probes != 4 {
		t.Errorf("opens = %d probes = %d, want 4 and 4", opens, probes)
	}
}

// TestBreakerHalfOpenSingleProbe pins that half-open admits exactly one
// in-flight probe: a second request during the probe is short-circuited.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 1, ProbeDelay: time.Second}, nil)
	b.onFailure(0)
	if err := b.allow(int64(time.Second)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if err := b.allow(int64(time.Second)); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second request during probe: %v, want ErrCircuitOpen", err)
	}
}

// TestBreakerStateMachine drives a real proxy through the full breaker
// cycle using faultconn refusal faults: the first three upstream dials
// are refused, tripping closed→open, failing the first half-open probe
// back to open, and closing on the second probe. While the breaker is
// open no request performs a dial — the short-circuit happens before
// any connection attempt.
func TestBreakerStateMachine(t *testing.T) {
	bed := startNestDaemon(t, sampleInterval)

	// Conns 0-2 are refused at dial time; conn 3 reaches the daemon.
	inj := faultconn.New(1, faultconn.Schedule{Exact: []faultconn.Fault{
		{Conn: 0, Kind: faultconn.Refuse},
		{Conn: 1, Kind: faultconn.Refuse},
		{Conn: 2, Kind: faultconn.Refuse},
	}})
	rawDial := inj.Dial(func() (net.Conn, error) { return net.Dial("tcp", bed.Addr) })
	var dials atomic.Int64
	p := New(Config{
		Dial: func() (*pcp.Client, error) {
			dials.Add(1)
			conn, err := rawDial()
			if err != nil {
				return nil, err
			}
			return pcp.NewClientConn(conn)
		},
		Clock:        bed.Clock,
		DisableStale: true,
		Breaker:      BreakerConfig{Threshold: 2, ProbeDelay: 100 * time.Millisecond},
	})
	defer p.Close()
	pmids := []uint32{1}

	mustFail := func(label string) error {
		t.Helper()
		_, err := p.Fetch(pmids)
		if err == nil {
			t.Fatalf("%s: fetch unexpectedly succeeded", label)
		}
		return err
	}

	// Two refused dials reach the threshold and trip the breaker.
	mustFail("failure 1")
	mustFail("failure 2")
	if got := p.BreakerHistory(); !reflect.DeepEqual(got, []string{"closed→open"}) {
		t.Fatalf("after threshold: history = %v", got)
	}
	if dials.Load() != 2 {
		t.Fatalf("dials = %d, want 2", dials.Load())
	}

	// Open: requests fail fast with ErrCircuitOpen and never dial.
	err := mustFail("short circuit")
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrUpstreamDown) {
		t.Fatalf("open-circuit err = %v, want ErrCircuitOpen wrapping ErrUpstreamDown", err)
	}
	if dials.Load() != 2 {
		t.Fatalf("open breaker dialled: dials = %d, want 2", dials.Load())
	}

	// Past the (jittered, ≤ProbeDelay) open interval the breaker admits
	// one probe; conn 2 is still refused, so it re-opens with a doubled
	// delay.
	bed.Clock.Advance(simtime.Duration(101 * simtime.Millisecond))
	mustFail("failed probe")
	if dials.Load() != 3 {
		t.Fatalf("probe dials = %d, want 3", dials.Load())
	}
	err = mustFail("short circuit after failed probe")
	if !errors.Is(err, ErrCircuitOpen) || dials.Load() != 3 {
		t.Fatalf("re-opened breaker: err = %v dials = %d", err, dials.Load())
	}

	// After the doubled delay the next probe dials conn 3, reaches the
	// daemon, and closes the breaker; normal service resumes.
	bed.Clock.Advance(simtime.Duration(201 * simtime.Millisecond))
	if _, err := p.Fetch(pmids); err != nil {
		t.Fatalf("closing probe failed: %v", err)
	}
	if _, err := p.Fetch(pmids); err != nil {
		t.Fatalf("fetch after close failed: %v", err)
	}

	want := []string{
		"closed→open",
		"open→half-open", "half-open→open",
		"open→half-open", "half-open→closed",
	}
	if got := p.BreakerHistory(); !reflect.DeepEqual(got, want) {
		t.Errorf("transition sequence = %v, want %v", got, want)
	}
	st := p.Stats()
	if st.BreakerOpens != 2 || st.BreakerProbes != 2 || st.BreakerShortCircuits != 2 {
		t.Errorf("breaker counters = opens %d probes %d shorts %d, want 2/2/2",
			st.BreakerOpens, st.BreakerProbes, st.BreakerShortCircuits)
	}
	// Short circuits never reached the upstream, so they must not count
	// as upstream errors: only the 3 refused dials do.
	if st.UpstreamErrors != 3 {
		t.Errorf("UpstreamErrors = %d, want 3 (refused dials only)", st.UpstreamErrors)
	}
	if st.UpstreamErrors != st.Retries+st.Exhausted {
		t.Errorf("attempt accounting broken: errors %d != retries %d + exhausted %d",
			st.UpstreamErrors, st.Retries, st.Exhausted)
	}
}
