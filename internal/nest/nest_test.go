package nest

import (
	"errors"
	"testing"
	"testing/quick"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/simtime"
)

func newTestPMU(m arch.Machine) (*PMU, *mem.Controller) {
	clock := simtime.NewClock()
	ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
	return NewPMU(m, 0, ctl), ctl
}

func TestEventNamesMatchTableI(t *testing.T) {
	// Table I, Tellico row: power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0
	e := Event{Channel: 0, Write: false}
	if got := e.PerfUncoreName(0); got != "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0" {
		t.Errorf("PerfUncoreName = %q", got)
	}
	// Table I, Summit row (PCP namespace part).
	if got := e.PCPMetricName(); got != "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value" {
		t.Errorf("PCPMetricName = %q", got)
	}
	w := Event{Channel: 7, Write: true}
	if got := w.PerfUncoreName(0); got != "power9_nest_mba7::PM_MBA7_WRITE_BYTES:cpu=0" {
		t.Errorf("PerfUncoreName = %q", got)
	}
	if got := w.PCPMetricName(); got != "perfevent.hwcounters.nest_mba7_imc.PM_MBA7_WRITE_BYTES.value" {
		t.Errorf("PCPMetricName = %q", got)
	}
}

func TestParsePerfUncoreName(t *testing.T) {
	ev, cpu, err := ParsePerfUncoreName("power9_nest_mba3::PM_MBA3_WRITE_BYTES:cpu=5")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Channel != 3 || !ev.Write || cpu != 5 {
		t.Errorf("parsed %+v cpu=%d", ev, cpu)
	}
	// Without qualifier.
	ev, cpu, err = ParsePerfUncoreName("power9_nest_mba1::PM_MBA1_READ_BYTES")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Channel != 1 || ev.Write || cpu != 0 {
		t.Errorf("parsed %+v cpu=%d", ev, cpu)
	}
}

func TestParsePerfUncoreNameErrors(t *testing.T) {
	bad := []string{
		"",
		"power9_nest_mba0",                     // no '::'
		"power9_nest_mbaX::PM_MBAX_READ_BYTES", // bad channel
		"power9_nest_mba0::PM_MBA1_READ_BYTES", // channel mismatch
		"power9_nest_mba0::PM_MBA0_READ_BYTES:core=0",   // unknown qualifier
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=zero", // bad cpu
		"intel_imc0::CAS_COUNT",                         // wrong PMU
	}
	for _, s := range bad {
		if _, _, err := ParsePerfUncoreName(s); !errors.Is(err, ErrNoSuchEvent) {
			t.Errorf("ParsePerfUncoreName(%q) err = %v, want ErrNoSuchEvent", s, err)
		}
	}
}

func TestParsePCPMetricNameErrors(t *testing.T) {
	bad := []string{
		"",
		"perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES", // no .value
		"perfevent.hwcounters.nest_mbaQ_imc.PM_MBAQ_READ_BYTES.value",
		"perfevent.hwcounters.nest_mba0_imc.PM_MBA2_READ_BYTES.value", // mismatch
		"mem.util.used",
	}
	for _, s := range bad {
		if _, err := ParsePCPMetricName(s); !errors.Is(err, ErrNoSuchEvent) {
			t.Errorf("ParsePCPMetricName(%q) err = %v, want ErrNoSuchEvent", s, err)
		}
	}
}

// Property: both spellings round-trip for every valid event.
func TestNameRoundTripProperty(t *testing.T) {
	f := func(chRaw uint8, write bool, cpuRaw uint8) bool {
		ev := Event{Channel: int(chRaw % 8), Write: write}
		cpu := int(cpuRaw)
		got, gotCPU, err := ParsePerfUncoreName(ev.PerfUncoreName(cpu))
		if err != nil || got != ev || gotCPU != cpu {
			return false
		}
		got2, err := ParsePCPMetricName(ev.PCPMetricName())
		return err == nil && got2 == ev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPMUPermissionGate(t *testing.T) {
	p, _ := newTestPMU(arch.Tellico())
	ev := Event{Channel: 0}
	if _, err := p.Read(ev, UserCredential(), 0); !errors.Is(err, ErrPermission) {
		t.Errorf("unprivileged read err = %v, want ErrPermission", err)
	}
	if _, err := p.Read(ev, RootCredential(), 0); err != nil {
		t.Errorf("privileged read failed: %v", err)
	}
}

func TestCredentialFor(t *testing.T) {
	if CredentialFor(arch.Summit()).Privileged() {
		t.Error("Summit users must not hold privileged credentials")
	}
	if !CredentialFor(arch.Tellico()).Privileged() {
		t.Error("Tellico users must hold privileged credentials")
	}
}

func TestPMUReadsSeeTraffic(t *testing.T) {
	p, ctl := newTestPMU(arch.Tellico())
	// 8 channels × 2 tx each.
	ctl.AddTraffic(true, 0, 64*16, 0, 0)
	ctl.AddTraffic(false, 0, 64*8, 0, 0)
	var readSum, writeSum uint64
	for ch := 0; ch < 8; ch++ {
		r, err := p.Read(Event{Channel: ch}, RootCredential(), 0)
		if err != nil {
			t.Fatal(err)
		}
		w, err := p.Read(Event{Channel: ch, Write: true}, RootCredential(), 0)
		if err != nil {
			t.Fatal(err)
		}
		readSum += r
		writeSum += w
	}
	if readSum != 64*16 || writeSum != 64*8 {
		t.Errorf("sums = %d/%d, want 1024/512", readSum, writeSum)
	}
}

func TestPMUEventsList(t *testing.T) {
	p, _ := newTestPMU(arch.Summit())
	evs := p.Events()
	if len(evs) != 16 {
		t.Fatalf("Events() returned %d, want 16", len(evs))
	}
	seen := map[Event]bool{}
	for _, e := range evs {
		if seen[e] {
			t.Errorf("duplicate event %+v", e)
		}
		seen[e] = true
	}
}

func TestPMUBadChannel(t *testing.T) {
	p, _ := newTestPMU(arch.Summit())
	if _, err := p.Read(Event{Channel: 99}, RootCredential(), 0); !errors.Is(err, ErrNoSuchEvent) {
		t.Errorf("err = %v, want ErrNoSuchEvent", err)
	}
}

func TestNewPMUPanicsOnChannelMismatch(t *testing.T) {
	clock := simtime.NewClock()
	ctl := mem.NewController(mem.Config{Channels: 4, DisableNoise: true}, clock)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for channel mismatch")
		}
	}()
	NewPMU(arch.Summit(), 0, ctl)
}

func TestSocketForCPUMatchesTableI(t *testing.T) {
	m := arch.Summit()
	// Table I uses cpu87 (socket 0) and cpu175 (socket 1).
	if s := m.SocketForCPU(87); s != 0 {
		t.Errorf("cpu87 -> socket %d, want 0", s)
	}
	if s := m.SocketForCPU(175); s != 1 {
		t.Errorf("cpu175 -> socket %d, want 1", s)
	}
	if s := m.SocketForCPU(176); s != -1 {
		t.Errorf("cpu176 -> socket %d, want -1", s)
	}
	if s := m.SocketForCPU(-1); s != -1 {
		t.Errorf("cpu-1 -> socket %d, want -1", s)
	}
}
