// Package gpu simulates the NVIDIA Tesla V100 accelerators of a Summit
// node at the level Fig. 11 needs: copy engines whose host-side DMA
// appears in the nest counters (the read burst before and write burst
// after each batched 1D-FFT), kernel execution with a power model whose
// spikes the NVML component observes, and enough compute throughput
// bookkeeping to time the phases.
package gpu

import (
	"fmt"
	"sync"

	"papimc/internal/mem"
	"papimc/internal/simtime"
)

// Model parameters for a V100-SXM2-16GB on Summit.
const (
	// DeviceName as NVML reports it (Table II).
	DeviceName = "Tesla_V100-SXM2-16GB"
	// CopyBandwidth is the host↔device NVLink bandwidth.
	CopyBandwidth = 50e9 // bytes/s
	// Flops is the double-precision peak.
	Flops = 7.8e12
	// IdleMilliwatts is the device's idle power draw.
	IdleMilliwatts = 52_000
	// CopyMilliwatts is drawn during transfers.
	CopyMilliwatts = 90_000
	// BusyMilliwatts is drawn during kernel execution.
	BusyMilliwatts = 285_000
)

// powerSegment is a time interval with elevated power.
type powerSegment struct {
	start, end simtime.Time
	milliwatts uint64
}

// Device is one simulated GPU.
type Device struct {
	index int
	host  *mem.Controller // host socket memory for DMA traffic

	mu       sync.Mutex
	segments []powerSegment
	busyTo   simtime.Time
}

// New builds device `index` attached to the given host socket memory.
func New(index int, host *mem.Controller) *Device {
	return &Device{index: index, host: host}
}

// Index returns the device index (the device_N of PAPI event names).
func (d *Device) Index() int { return d.index }

// EventName returns the NVML power event spelling of Table II.
func (d *Device) EventName() string {
	return fmt.Sprintf("%s:device_%d:power", DeviceName, d.index)
}

// available returns the earliest time the device can start new work.
func (d *Device) available(t simtime.Time) simtime.Time {
	if d.busyTo > t {
		return d.busyTo
	}
	return t
}

func (d *Device) addSegment(start simtime.Time, dur simtime.Duration, mw uint64) simtime.Time {
	end := start.Add(dur)
	d.segments = append(d.segments, powerSegment{start: start, end: end, milliwatts: mw})
	d.busyTo = end
	// Bound memory: drop segments that ended long before the latest.
	if len(d.segments) > 4096 {
		cut := len(d.segments) - 2048
		d.segments = append(d.segments[:0], d.segments[cut:]...)
	}
	return end
}

// CopyToDevice schedules a host→device transfer of the given bytes at
// (or after) time start. The host memory is read by the DMA engine. It
// returns when the copy completes.
func (d *Device) CopyToDevice(bytes int64, start simtime.Time) simtime.Time {
	if bytes <= 0 {
		return start
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	begin := d.available(start)
	dur := simtime.FromSeconds(float64(bytes) / CopyBandwidth)
	if d.host != nil {
		d.host.AddTrafficSpread(true, 0, bytes, begin, begin.Add(dur), copySlices)
	}
	return d.addSegment(begin, dur, CopyMilliwatts)
}

// copySlices is how finely DMA traffic is spread across its window so
// profilers sampling mid-copy see the transfer progressing.
const copySlices = 16

// CopyFromDevice schedules a device→host transfer; the host memory is
// written by the DMA engine.
func (d *Device) CopyFromDevice(bytes int64, start simtime.Time) simtime.Time {
	if bytes <= 0 {
		return start
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	begin := d.available(start)
	dur := simtime.FromSeconds(float64(bytes) / CopyBandwidth)
	if d.host != nil {
		d.host.AddTrafficSpread(false, 1<<29, bytes, begin, begin.Add(dur), copySlices)
	}
	return d.addSegment(begin, dur, CopyMilliwatts)
}

// Execute schedules a kernel of the given floating-point operations,
// drawing full power for its duration, and returns the completion time.
func (d *Device) Execute(flops float64, start simtime.Time) simtime.Time {
	if flops <= 0 {
		return start
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	begin := d.available(start)
	dur := simtime.FromSeconds(flops / Flops)
	if dur < simtime.Microsecond {
		dur = simtime.Microsecond // kernel launch floor
	}
	return d.addSegment(begin, dur, BusyMilliwatts)
}

// BusyFor schedules dur of kernel execution starting at (or after)
// start, drawing full power; duration-based scheduling for workload
// models that know how long their kernels run on the device.
func (d *Device) BusyFor(dur simtime.Duration, start simtime.Time) simtime.Time {
	if dur <= 0 {
		return start
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addSegment(d.available(start), dur, BusyMilliwatts)
}

// PowerMilliwatts returns the device's power draw at simulated time t —
// the value the NVML component reports. Segment boundaries are closed
// so a sample taken exactly at a kernel's end still sees it.
func (d *Device) PowerMilliwatts(t simtime.Time) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	power := uint64(IdleMilliwatts)
	for _, s := range d.segments {
		if t >= s.start && t <= s.end && s.milliwatts > power {
			power = s.milliwatts
		}
	}
	return power
}

// BusyUntil returns the device's scheduled completion horizon.
func (d *Device) BusyUntil() simtime.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busyTo
}
