package chaos

import (
	"strings"
	"testing"
)

// TestOverloadPolicies runs the full overload trial for every
// admission policy: the protecting policies must hold the QoS bound,
// the control arm must collapse, and reject-all must drain — each with
// exact per-tenant conservation and typed sheds throughout. A failure
// prints the deterministic report and the one-command repro line.
func TestOverloadPolicies(t *testing.T) {
	for _, policy := range OverloadPolicies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			o := OverloadOptions{Seed: 0x0507, Policy: policy, Trials: 2, Trial: -1}
			rep, err := RunOverload(o)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range rep.Trials {
				if len(tr.Violations) > 0 {
					t.Errorf("trial %d violated invariants; repro: %s\n%s",
						tr.Index, OverloadReproLine(o, tr.Index), rep.String())
					break
				}
			}
		})
	}
}

// TestOverloadReproducible pins byte-reproducibility: the same seed
// yields the identical report string at different worker counts.
func TestOverloadReproducible(t *testing.T) {
	o := OverloadOptions{Seed: 7, Policy: "token-bucket", Trials: 2, Trial: -1}
	o.Workers = 1
	a, err := RunOverload(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	b, err := RunOverload(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("overload report not reproducible:\n--- workers=1\n%s--- workers=4\n%s", a.String(), b.String())
	}
	if a.Failed() {
		t.Errorf("seed 7 trial violated invariants:\n%s", a.String())
	}
	for _, want := range []string{"policy=token-bucket", "gold", "silver", "bronze", "p99x="} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("report missing %q:\n%s", want, a.String())
		}
	}
}

// TestOverloadSingleTrialReplay pins the repro path: replaying trial 1
// alone reproduces exactly trial 1's line from the full sweep.
func TestOverloadSingleTrialReplay(t *testing.T) {
	full, err := RunOverload(OverloadOptions{Seed: 11, Policy: "priority", Trials: 2, Trial: -1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunOverload(OverloadOptions{Seed: 11, Policy: "priority", Trials: 2, Trial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Trials) != 2 || len(one.Trials) != 1 {
		t.Fatalf("trial counts = %d and %d, want 2 and 1", len(full.Trials), len(one.Trials))
	}
	wantRep := (&OverloadReport{Trials: full.Trials[1:]}).String()
	if got := one.String(); got != wantRep {
		t.Errorf("single-trial replay diverged:\n--- sweep trial 1\n%s--- replay\n%s", wantRep, got)
	}
}

// TestOverloadUnknownPolicy pins the validation path: a bad policy
// name is a harness error naming the registered policies, not a panic.
func TestOverloadUnknownPolicy(t *testing.T) {
	_, err := RunOverload(OverloadOptions{Policy: "nope", Trial: -1})
	if err == nil || !strings.Contains(err.Error(), "unknown admission policy") {
		t.Fatalf("err = %v, want unknown-policy error", err)
	}
}
