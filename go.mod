module papimc

go 1.22
