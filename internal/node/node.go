// Package node composes the simulated hardware of a compute node —
// per-socket memory controllers and nest PMUs, GPUs, the InfiniBand
// endpoint — and wires the measurement plane on top: a PMCD daemon
// holding the privileged credential, and a PAPI library with the
// perf_uncore, pcp, nvml and infiniband components registered. Every
// experiment, example and benchmark builds its testbed through this
// package.
package node

import (
	"fmt"

	"papimc/internal/arch"
	"papimc/internal/gpu"
	"papimc/internal/ib"
	"papimc/internal/mem"
	"papimc/internal/metricql"
	"papimc/internal/model"
	"papimc/internal/nest"
	"papimc/internal/papi"
	"papimc/internal/papi/components/derived"
	"papimc/internal/papi/components/ibcomp"
	"papimc/internal/papi/components/nvmlcomp"
	"papimc/internal/papi/components/pcpcomp"
	"papimc/internal/papi/components/perfuncore"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
)

// Options tune testbed construction.
type Options struct {
	// Seed drives every stochastic element; runs are reproducible.
	Seed uint64
	// DisableNoise builds ideal counters (no background traffic,
	// measurement overhead, or posting lag).
	DisableNoise bool
}

// Node is one compute node.
type Node struct {
	Machine arch.Machine
	Clock   *simtime.Clock
	Mem     []*mem.Controller // per socket
	PMUs    []*nest.PMU       // per socket
	GPUs    [][]*gpu.Device   // per socket
	NIC     *ib.Endpoint
}

// New builds a node of the given machine type.
func New(m arch.Machine, clock *simtime.Clock, opts Options, nodeIndex int) *Node {
	n := &Node{Machine: m, Clock: clock}
	gpuIndex := 0
	for s := 0; s < m.SocketsPerNode; s++ {
		ctl := mem.NewController(mem.Config{
			Channels:     m.Socket.MBAChannels,
			Noise:        m.Noise,
			Seed:         opts.Seed + uint64(nodeIndex)*1000 + uint64(s),
			DisableNoise: opts.DisableNoise,
		}, clock)
		n.Mem = append(n.Mem, ctl)
		n.PMUs = append(n.PMUs, nest.NewPMU(m, s, ctl))
		var devs []*gpu.Device
		for g := 0; g < m.GPUsPerSocket; g++ {
			devs = append(devs, gpu.New(gpuIndex, ctl))
			gpuIndex++
		}
		n.GPUs = append(n.GPUs, devs)
	}
	if m.NICPorts > 0 {
		n.NIC = ib.NewEndpoint(m.NICPorts, n.Mem[0])
	}
	return n
}

// AllGPUs flattens the per-socket device lists.
func (n *Node) AllGPUs() []*gpu.Device {
	var out []*gpu.Device
	for _, devs := range n.GPUs {
		out = append(out, devs...)
	}
	return out
}

// Play posts a model-predicted traffic volume onto the given socket's
// memory over the prediction's duration, split into steps slices so
// profilers see a continuous rate, and advances the clock past it.
func (n *Node) Play(socket int, tr model.Traffic, steps int) {
	if steps < 1 {
		steps = 1
	}
	start := n.Clock.Now()
	stepDur := simtime.Duration(int64(tr.Duration) / int64(steps))
	rPer := tr.ReadBytes / int64(steps)
	wPer := tr.WriteBytes / int64(steps)
	ctl := n.Mem[socket]
	for s := 0; s < steps; s++ {
		t0 := start.Add(simtime.Duration(int64(stepDur) * int64(s)))
		t1 := t0.Add(stepDur)
		r, w := rPer, wPer
		if s == steps-1 { // remainder on the last step
			r = tr.ReadBytes - rPer*int64(steps-1)
			w = tr.WriteBytes - wPer*int64(steps-1)
		}
		ctl.AddTraffic(true, int64(s)*4096, r, t0, t1)
		ctl.AddTraffic(false, 1<<30+int64(s)*4096, w, t0, t1)
	}
	n.Clock.AdvanceTo(start.Add(tr.Duration))
}

// Testbed is a set of nodes on a fabric with a measurement plane.
type Testbed struct {
	Machine arch.Machine
	Clock   *simtime.Clock
	Nodes   []*Node
	Fabric  *ib.Fabric

	daemon *pcp.Daemon
	proxy  *pmproxy.Proxy
	// PMCDAddr is the TCP address of node 0's PMCD daemon.
	PMCDAddr string
}

// NewTestbed builds numNodes nodes of machine m and starts a PMCD
// daemon exporting node 0's nest counters (the measured node), exactly
// as on Summit where pmcd runs on every node with root privileges.
func NewTestbed(m arch.Machine, numNodes int, opts Options) (*Testbed, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("node: need at least one node, got %d", numNodes)
	}
	clock := simtime.NewClock()
	tb := &Testbed{Machine: m, Clock: clock, Fabric: ib.NewFabric()}
	for i := 0; i < numNodes; i++ {
		tb.Nodes = append(tb.Nodes, New(m, clock, opts, i))
	}
	daemon, err := pcp.NewDaemon(clock, m.Noise.PMCDSampleInterval,
		pcp.NestMetrics(tb.Nodes[0].PMUs, nest.RootCredential()))
	if err != nil {
		return nil, err
	}
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tb.daemon = daemon
	tb.PMCDAddr = addr
	return tb, nil
}

// StartProxy starts a pmproxy daemon in front of the testbed's PMCD —
// the high-fan-out serving tier: many clients multiplexed onto one
// upstream connection, with identical fetches inside one daemon
// sampling interval coalesced into a single round trip. It returns the
// proxy (for its Stats) and its bound address; clients dial it exactly
// as they would the daemon. The proxy is stopped by Close.
func (tb *Testbed) StartProxy() (*pmproxy.Proxy, string, error) {
	if tb.proxy != nil {
		return nil, "", fmt.Errorf("node: proxy already started")
	}
	p := pmproxy.New(pmproxy.Config{
		Upstream: tb.PMCDAddr,
		Clock:    tb.Clock,
		Interval: tb.Machine.Noise.PMCDSampleInterval,
	})
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	tb.proxy = p
	return p, addr, nil
}

// Close stops the measurement plane.
func (tb *Testbed) Close() error {
	var err error
	if tb.proxy != nil {
		err = tb.proxy.Close()
	}
	if tb.daemon != nil {
		if derr := tb.daemon.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// NewLibrary builds a PAPI library for node 0 with every component the
// machine supports registered:
//
//   - perf_uncore with the credential an ordinary user holds on this
//     machine (privileged on Tellico, denied on Summit),
//   - pcp connected to the node's PMCD daemon,
//   - derived evaluating metricql expressions over a second daemon
//     connection, with the standard nest bandwidth metrics registered,
//   - nvml and infiniband when the node has GPUs / a NIC.
//
// The caller owns the returned cleanup function.
func (tb *Testbed) NewLibrary() (*papi.Library, func(), error) {
	lib := papi.NewLibrary(tb.Clock)
	n := tb.Nodes[0]
	cleanup := func() {}

	if err := lib.Register(perfuncore.New(n.PMUs, nest.CredentialFor(tb.Machine))); err != nil {
		return nil, nil, err
	}
	comp, err := pcpcomp.Dial(tb.PMCDAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("node: connecting to PMCD: %w", err)
	}
	if err := lib.Register(comp); err != nil {
		return nil, nil, err
	}
	dcomp, dclose, err := NewDerivedComponent(tb.PMCDAddr)
	if err != nil {
		return nil, nil, err
	}
	if err := lib.Register(dcomp); err != nil {
		dclose()
		return nil, nil, err
	}
	cleanup = dclose
	if gpus := n.AllGPUs(); len(gpus) > 0 {
		if err := lib.Register(nvmlcomp.New(gpus)); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	if n.NIC != nil {
		if err := lib.Register(ibcomp.New(n.NIC.Ports)); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	return lib, cleanup, nil
}

// NewDerivedComponent builds the derived-metrics component over its own
// connection to the given PMCD (or pmproxy) address: a metricql engine
// with the nest bandwidth aliases and the standard mem.* registrations.
// The returned func closes the connection.
func NewDerivedComponent(addr string) (*derived.Component, func(), error) {
	client, err := pcp.Dial(addr)
	if err != nil {
		return nil, nil, fmt.Errorf("node: connecting derived engine: %w", err)
	}
	comp, err := DerivedComponentOver(client)
	if err != nil {
		client.Close()
		return nil, nil, err
	}
	return comp, func() { client.Close() }, nil
}

// DerivedComponentOver builds the derived component over an existing
// metric source (a client, an archive recorder, or a replay): nest
// aliases from the source's namespace plus the standard registrations.
func DerivedComponentOver(src metricql.Source) (*derived.Component, error) {
	names, err := src.Names()
	if err != nil {
		return nil, fmt.Errorf("node: listing namespace for derived metrics: %w", err)
	}
	eng := metricql.NewEngine(src)
	eng.AliasAll(metricql.NestAliases(names))
	comp := derived.New(eng)
	if err := derived.RegisterNestStandards(comp); err != nil {
		return nil, err
	}
	return comp, nil
}

// Route selects how nest counters are read in an experiment.
type Route int

const (
	// ViaPCP reads through the PMCD daemon (Summit's only option).
	ViaPCP Route = iota
	// Direct reads the counters as perf_uncore events (needs privilege).
	Direct
)

// String implements fmt.Stringer.
func (r Route) String() string {
	if r == ViaPCP {
		return "pcp"
	}
	return "perf_uncore"
}

// NestEventNames returns the fully qualified event names for every
// (channel, direction) of socket 0, spelled for the chosen route —
// exactly the Table I strings.
func (tb *Testbed) NestEventNames(route Route) []string {
	var out []string
	for _, ev := range tb.Nodes[0].PMUs[0].Events() {
		switch route {
		case ViaPCP:
			cpu := tb.Machine.HWThreadsPerSocket() - 1
			out = append(out, fmt.Sprintf("pcp:::%s:cpu%d", ev.PCPMetricName(), cpu))
		default:
			out = append(out, ev.PerfUncoreName(0))
		}
	}
	return out
}
