// Quickstart: build a Summit-like testbed, add the Table I memory-traffic
// events to a PAPI event set through the PCP component (the only route an
// unprivileged Summit user has), run a workload, and read the counters.
package main

import (
	"fmt"
	"log"

	"papimc"
	"papimc/internal/model"
	"papimc/internal/simtime"
)

func main() {
	// One Summit node with its PMCD daemon running.
	tb, err := papimc.NewTestbed(papimc.Summit(), 1, papimc.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// A PAPI library with perf_uncore, pcp, nvml and infiniband
	// components registered for this node.
	lib, _, err := tb.NewLibrary()
	if err != nil {
		log.Fatal(err)
	}

	// Table I events, spelled exactly as on Summit.
	es := lib.NewEventSet()
	for _, name := range []string{
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
	} {
		if err := es.Add(name); err != nil {
			log.Fatal(err)
		}
	}
	if err := es.Start(); err != nil {
		log.Fatal(err)
	}

	// The "application": 256 MiB of reads and 64 MiB of writes over
	// 50 ms of simulated time.
	tb.Nodes[0].Play(0, model.Traffic{
		ReadBytes:  256 << 20,
		WriteBytes: 64 << 20,
		Duration:   50 * simtime.Millisecond,
	}, 16)
	tb.Clock.Advance(50 * simtime.Millisecond) // let the daemon resample

	values, err := es.Stop()
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range es.EventNames() {
		fmt.Printf("%-75s %12d bytes\n", name, values[i])
	}
	fmt.Println("\n(the counters cover MBA channel 0 of 8; total traffic is ~8x these values,")
	fmt.Println(" plus OS background noise and the measurement's own overhead)")
}
