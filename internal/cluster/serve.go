package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"papimc/internal/pcp"
)

// Server serves a Federator over the PCP PDU protocol, so a tree can
// span processes and machines: a parent federator dials it like any
// daemon, and partial results travel as PDUFetchPartialResp. The
// accept/serve structure mirrors pcp.Daemon's.
type Server struct {
	f  *Federator
	ln net.Listener

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Serve starts serving f on addr (e.g. "127.0.0.1:0") and returns the
// running server and its bound address.
func Serve(f *Federator, addr string) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: listen: %w", err)
	}
	s := &Server{
		f:      f,
		ln:     ln,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

const acceptBackoffMax = time.Second

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-s.closed:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := pcp.ServerHandshake(br, bw); err != nil {
		return
	}
	var (
		payloadBuf []byte
		respBuf    []byte
		pmids      []uint32
	)
	for {
		typ, payload, err := pcp.ReadPDUInto(br, payloadBuf)
		if err != nil {
			return
		}
		payloadBuf = payload
		var respType uint8
		var resp []byte
		switch typ {
		case pcp.PDUNamesReq:
			respType, resp = pcp.PDUNamesResp, pcp.AppendNamesResp(respBuf[:0], s.f.names)
		case pcp.PDUFetchReq:
			pmids, err = pcp.DecodeFetchReqInto(payload, pmids[:0])
			if err != nil {
				respType, resp = pcp.PDUError, pcp.AppendError(respBuf[:0], err.Error())
				break
			}
			res, ferr := s.f.Fetch(pmids)
			respType, resp = s.answer(respBuf[:0], res, ferr)
		case pcp.PDUFetchAllReq:
			res, ferr := s.f.FetchAll()
			respType, resp = s.answer(respBuf[:0], res, ferr)
		default:
			respType, resp = pcp.PDUError, pcp.AppendError(respBuf[:0], fmt.Sprintf("unknown PDU type %d", typ))
		}
		respBuf = resp
		if err := pcp.WritePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// answer encodes a scatter-gather outcome: full results as a fetch
// response, partial results as PDUFetchPartialResp, hard failures as a
// PDU error.
func (s *Server) answer(dst []byte, res pcp.FetchResult, err error) (uint8, []byte) {
	var pe *pcp.PartialError
	switch {
	case err == nil:
		return pcp.PDUFetchResp, pcp.AppendFetchResp(dst, res)
	case errors.As(err, &pe):
		return pcp.PDUFetchPartialResp, pcp.AppendPartialResp(dst, res, pe.Missing, pe.Cause)
	default:
		return pcp.PDUError, pcp.AppendError(dst, err.Error())
	}
}

// Close stops the listener, disconnects clients, and waits for handlers.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}
