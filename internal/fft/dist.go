package fft

import (
	"fmt"

	"papimc/internal/mpi"
)

// Distributed3D computes the forward 3D FFT of a global N³ array
// decomposed on grid g across the communicator. Each rank passes its
// local input slab in layout [plane][row][col] (x-slab i, y-slab j, all
// z, z contiguous) and receives its output slab in layout [y”][z'][x]
// (x contiguous); OutputIndex maps the result back to global
// coordinates. The pipeline is the paper's: 1D FFTs along z, S1CF
// re-sort, all-to-all within the row group, 1D FFTs along y, S2CF
// re-sort, all-to-all within the column group, 1D FFTs along x.
func Distributed3D(g Grid, r *mpi.Rank, local []complex128) []complex128 {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if r.Size() != g.Ranks() {
		panic(fmt.Sprintf("fft: %d ranks for a %dx%d grid", r.Size(), g.R, g.C))
	}
	if len(local) != g.LocalElems() {
		panic(fmt.Sprintf("fft: rank %d local slab has %d elements, want %d", r.ID(), len(local), g.LocalElems()))
	}
	i, j := g.RankCoords(r.ID())

	// Phase 1: 1D FFTs along z (contiguous).
	work := append([]complex128(nil), local...)
	ForwardBatch(work, g.Cols())

	// Phase 2: S1CF + all-to-all within the row group (fixed i).
	chunks := g.S1CF(work)
	rowPeer := func(jp int) int { return g.RankID(i, jp) }
	recv := groupAlltoall(r, g.C, j, rowPeer, chunks)
	mid := g.UnpackFirst(recv)

	// Phase 3: 1D FFTs along y (contiguous after the re-sort).
	ForwardBatch(mid, g.N)

	// Phase 4: S2CF + all-to-all within the column group (fixed j).
	chunks2 := g.S2CF(mid)
	colPeer := func(ip int) int { return g.RankID(ip, j) }
	recv2 := groupAlltoall(r, g.R, i, colPeer, chunks2)
	out := g.UnpackSecond(recv2)

	// Phase 5: 1D FFTs along x (contiguous after the re-sort).
	ForwardBatch(out, g.N)
	return out
}

// groupAlltoall exchanges chunks among a subgroup of ranks: member m of
// the group (self = selfIdx) is global rank peer(m). chunks[m] goes to
// member m; the returned slice is indexed the same way.
func groupAlltoall(r *mpi.Rank, groupSize, selfIdx int, peer func(int) int, chunks [][]complex128) [][]complex128 {
	if len(chunks) != groupSize {
		panic(fmt.Sprintf("fft: %d chunks for a group of %d", len(chunks), groupSize))
	}
	// Buffered mailboxes make the send phase non-blocking.
	for m := 0; m < groupSize; m++ {
		if m == selfIdx {
			continue
		}
		r.Send(peer(m), chunks[m])
	}
	out := make([][]complex128, groupSize)
	out[selfIdx] = chunks[selfIdx]
	for m := 0; m < groupSize; m++ {
		if m == selfIdx {
			continue
		}
		out[m] = r.Recv(peer(m))
	}
	return out
}

// LocalSlab extracts rank (i,j)'s input slab from a global row-major
// [x][y][z] array.
func LocalSlab(g Grid, global []complex128, i, j int) []complex128 {
	p, rows, n := g.Planes(), g.Rows(), g.N
	out := make([]complex128, 0, g.LocalElems())
	for plane := 0; plane < p; plane++ {
		x := i*p + plane
		for row := 0; row < rows; row++ {
			y := j*rows + row
			base := (x*n + y) * n
			out = append(out, global[base:base+n]...)
		}
	}
	return out
}

// OutputIndex maps an offset into rank (i,j)'s Distributed3D output to
// the global (x,y,z) coordinates of the transformed array.
func OutputIndex(g Grid, i, j, offset int) (x, y, z int) {
	zc, yr, n := g.N/g.C, g.N/g.R, g.N
	x = offset % n
	rest := offset / n
	z = j*zc + rest%zc
	y = i*yr + rest/zc
	return x, y, z
}
