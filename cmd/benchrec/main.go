// Command benchrec measures the headline hot-path benchmarks in-process
// (via testing.Benchmark) and records the optimization trajectory as
// JSON: the seed-tree baseline next to the current tree's numbers, with
// the speedup and allocation-reduction factors computed. CI runs it so
// every build leaves a machine-readable performance record.
//
// Usage:
//
//	benchrec [-out BENCH_4.json] [-benchtime 1s]
//	benchrec -cluster [-out BENCH_5.json]
//	benchrec -capacity [-out BENCH_6.json]
//	benchrec -wire [-out BENCH_7.json]
//	benchrec -archive [-out BENCH_8.json]
//
// With -cluster it instead records federated root-query latency versus
// node count (the scatter-gather tree from internal/cluster), writing
// BENCH_5.json by default. With -capacity it records the workload
// capacity sweep's knee point and the virtual-time engine's
// million-client simulation rate (internal/workload), writing
// BENCH_6.json by default. With -wire it records proxied fetch
// throughput over real TCP, lockstep Version1 versus the pipelined
// Version2 wire path (tagged PDUs, shared connections, batched sets),
// writing BENCH_7.json by default. With -archive it records the archive
// tier at production scale: fixed-width query latency as the raw tier
// grows 1x/32x/1000x, the avg_over rollup-pushdown speedup, and
// range-read tail latency under a concurrently folding compactor,
// writing BENCH_8.json by default.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"papimc/internal/arch"
	"papimc/internal/cache"
	"papimc/internal/mem"
	"papimc/internal/node"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
	"papimc/internal/trace"
)

// Metric is one benchmark measurement.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Entry pairs a benchmark's recorded baseline with a fresh measurement.
type Entry struct {
	Name       string  `json:"name"`
	Before     *Metric `json:"before,omitempty"` // seed tree (commit b757ce5), absent for new benchmarks
	After      Metric  `json:"after"`
	Speedup    float64 `json:"speedup,omitempty"`           // before.ns / after.ns
	AllocsX    float64 `json:"alloc_reduction,omitempty"`   // before.allocs / after.allocs, when after still allocates
	Eliminated bool    `json:"allocs_eliminated,omitempty"` // allocations dropped to zero
}

// baselines are the seed tree's numbers for the same benchmark bodies,
// measured on the pre-optimization code (single-CPU container, Go
// defaults). They are recorded constants, not re-measured, so the
// trajectory survives the code they measured being gone.
var baselines = map[string]Metric{
	"mem/Read":                {NsPerOp: 665, BytesPerOp: 128, AllocsPerOp: 1},
	"mem/ReadInto":            {NsPerOp: 665, BytesPerOp: 128, AllocsPerOp: 1}, // seed tree had only the allocating Read
	"mem/Totals":              {NsPerOp: 650, BytesPerOp: 128, AllocsPerOp: 1},
	"mem/AddTraffic":          {NsPerOp: 757, BytesPerOp: 1308, AllocsPerOp: 2},
	"cache/SimAccess":         {NsPerOp: 63.4, BytesPerOp: 0, AllocsPerOp: 0},
	"papi/EventSetReadDirect": {NsPerOp: 904, BytesPerOp: 1312, AllocsPerOp: 16},
	"papi/EventSetReadPCP":    {NsPerOp: 14042, BytesPerOp: 3104, AllocsPerOp: 32},
	"pcp/FetchRespRoundTrip":  {NsPerOp: 1162, BytesPerOp: 1512, AllocsPerOp: 12},
	"pmproxy/FetchCoalesced":  {NsPerOp: 10923, BytesPerOp: 1288, AllocsPerOp: 26},
}

// ConcEntry is one concurrency measurement: the same benchmark body at a
// given GOMAXPROCS, against the recorded mutex-serialized baseline.
type ConcEntry struct {
	Name    string  `json:"name"`
	Procs   int     `json:"gomaxprocs"`
	Before  *Metric `json:"before,omitempty"` // mutex-serialized tree (commit e516959)
	After   Metric  `json:"after"`
	Speedup float64 `json:"speedup,omitempty"`
}

// concBaselines are the mutex-serialized tree's numbers for the same
// benchmark bodies, keyed by "name@gomaxprocs". Recorded on this
// single-core container: note how the mutex paths get SLOWER as
// GOMAXPROCS rises (contention overhead with no parallelism to win).
var concBaselines = map[string]Metric{
	"pcp/ParallelFetchInto@1":      {NsPerOp: 57.0},
	"pcp/ParallelFetchInto@8":      {NsPerOp: 81.5},
	"pcp/FetchRoundTripTCP@1":      {NsPerOp: 13317},
	"pcp/ParallelDaemonTCP@1":      {NsPerOp: 10360},
	"pcp/ParallelDaemonTCP@8":      {NsPerOp: 9716},
	"pmproxy/ParallelProxyFetch@1": {NsPerOp: 111.0},
	"pmproxy/ParallelProxyFetch@8": {NsPerOp: 129.9},
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_4.json; BENCH_5.json with -cluster, BENCH_6.json with -capacity, BENCH_7.json with -wire)")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measuring time")
	clusterRec := flag.Bool("cluster", false, "record federated root-query latency vs node count instead")
	capacityRec := flag.Bool("capacity", false, "record the workload capacity knee and simulation rate instead")
	capacitySpec := flag.String("capacity-spec", "examples/workload-specs/capacity.yaml", "spec swept for the -capacity knee")
	simSpec := flag.String("sim-spec", "examples/workload-specs/diurnal.yaml", "spec timed for the -capacity simulation rate")
	wireRec := flag.Bool("wire", false, "record lockstep vs pipelined wire-path throughput instead")
	wireDuration := flag.Duration("wire-duration", 1500*time.Millisecond, "per-run measuring time with -wire")
	archiveRec := flag.Bool("archive", false, "record archive query latency vs size, rollup pushdown, and compaction-concurrent reads instead")
	archiveDuration := flag.Duration("archive-duration", 2*time.Second, "compaction-concurrent measuring time with -archive")
	flag.Parse()
	if *out == "" {
		switch {
		case *clusterRec:
			*out = "BENCH_5.json"
		case *capacityRec:
			*out = "BENCH_6.json"
		case *wireRec:
			*out = "BENCH_7.json"
		case *archiveRec:
			*out = "BENCH_8.json"
		default:
			*out = "BENCH_4.json"
		}
	}
	if *capacityRec {
		capacityMain(*out, *capacitySpec, *simSpec)
		return
	}
	if *wireRec {
		wireMain(*out, *wireDuration)
		return
	}
	if *archiveRec {
		archiveMain(*out, *archiveDuration)
		return
	}
	// testing.Benchmark consults the test.benchtime flag, which only
	// exists after testing.Init registers it.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *clusterRec {
		clusterMain(*out)
		return
	}

	benchmarks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"mem/Read", benchMemRead},
		{"mem/ReadInto", benchMemReadInto},
		{"mem/Totals", benchMemTotals},
		{"mem/AddTraffic", benchMemAddTraffic},
		{"cache/SimAccess", benchCacheAccess},
		{"papi/EventSetReadDirect", func(b *testing.B) { benchEventSetRead(b, node.Direct) }},
		{"papi/EventSetReadPCP", func(b *testing.B) { benchEventSetRead(b, node.ViaPCP) }},
		{"pcp/FetchRespRoundTrip", benchFetchRespRoundTrip},
		{"pmproxy/FetchCoalesced", benchProxyFetch},
	}

	report := struct {
		Note            string      `json:"note"`
		Entries         []Entry     `json:"entries"`
		ConcurrencyNote string      `json:"concurrency_note"`
		Concurrency     []ConcEntry `json:"concurrency"`
	}{
		Note: "hot-path benchmark trajectory; 'before' is the pre-optimization tree (commit b757ce5)",
		ConcurrencyNote: "serving-tier concurrency; 'before' is the mutex-serialized tree (commit e516959). " +
			"Baselines were recorded on a single-core container, where parallel speedup cannot appear " +
			"as wall-clock gain: the lock-free win shows as contention elimination instead — the mutex " +
			"tree degrades as GOMAXPROCS rises while snapshot publication stays flat. On multicore " +
			"hardware the same benchmarks (-bench Parallel -cpu 1,2,4,8) scale with cores.",
	}
	for _, bm := range benchmarks {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bm.fn(b)
		})
		e := Entry{Name: bm.name, After: Metric{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}}
		if base, ok := baselines[bm.name]; ok {
			b := base
			e.Before = &b
			if e.After.NsPerOp > 0 {
				e.Speedup = round2(b.NsPerOp / e.After.NsPerOp)
			}
			if e.After.AllocsPerOp > 0 {
				e.AllocsX = round2(float64(b.AllocsPerOp) / float64(e.After.AllocsPerOp))
			} else if b.AllocsPerOp > 0 {
				e.Eliminated = true
			}
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-26s %10.1f ns/op %8d B/op %4d allocs/op", bm.name, e.After.NsPerOp, e.After.BytesPerOp, e.After.AllocsPerOp)
		if e.Before != nil {
			fmt.Printf("   (was %.1f ns, %d allocs)", e.Before.NsPerOp, e.Before.AllocsPerOp)
		}
		fmt.Println()
	}

	// Concurrency section: the same serving-path bodies at GOMAXPROCS 1
	// and 8, so the record shows how throughput behaves as goroutines are
	// added (see ConcurrencyNote on reading these on a single-core host).
	concurrency := []struct {
		name  string
		procs []int
		fn    func(*testing.B)
	}{
		{"pcp/ParallelFetchInto", []int{1, 8}, benchParallelFetchInto},
		{"pcp/FetchRoundTripTCP", []int{1}, benchFetchRoundTripTCP},
		{"pcp/ParallelDaemonTCP", []int{1, 8}, benchParallelDaemonTCP},
		{"pmproxy/ParallelProxyFetch", []int{1, 8}, benchParallelProxyFetch},
	}
	for _, bm := range concurrency {
		for _, procs := range bm.procs {
			prev := runtime.GOMAXPROCS(procs)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				bm.fn(b)
			})
			runtime.GOMAXPROCS(prev)
			e := ConcEntry{Name: bm.name, Procs: procs, After: Metric{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}}
			if base, ok := concBaselines[fmt.Sprintf("%s@%d", bm.name, procs)]; ok {
				b := base
				e.Before = &b
				if e.After.NsPerOp > 0 {
					e.Speedup = round2(b.NsPerOp / e.After.NsPerOp)
				}
			}
			report.Concurrency = append(report.Concurrency, e)
			fmt.Printf("%-26s @%d %7.1f ns/op %8d B/op %4d allocs/op", bm.name, procs, e.After.NsPerOp, e.After.BytesPerOp, e.After.AllocsPerOp)
			if e.Before != nil {
				fmt.Printf("   (was %.1f ns)", e.Before.NsPerOp)
			}
			fmt.Println()
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

func noisyController(seed uint64) *mem.Controller {
	return mem.NewController(mem.Config{Channels: 8, Noise: arch.Summit().Noise, Seed: seed}, simtime.NewClock())
}

func benchMemRead(b *testing.B) {
	c := noisyController(1)
	t := simtime.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(100 * simtime.Microsecond)
		c.AddTraffic(true, int64(i)*64, 1<<16, t, t)
		c.Read(t)
	}
}

// benchMemReadInto is the steady-state counter-snapshot path the nest
// PMU actually runs: the snapshot buffer is reused across reads.
func benchMemReadInto(b *testing.B) {
	c := noisyController(1)
	t := simtime.Time(0)
	var dst []mem.ChannelCounts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(100 * simtime.Microsecond)
		c.AddTraffic(true, int64(i)*64, 1<<16, t, t)
		dst = c.ReadInto(t, dst)
	}
}

func benchMemTotals(b *testing.B) {
	c := noisyController(2)
	t := simtime.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(100 * simtime.Microsecond)
		c.AddTraffic(false, int64(i)*64, 1<<16, t, t)
		c.Totals(t)
	}
}

func benchMemAddTraffic(b *testing.B) {
	c := mem.NewController(mem.Config{Channels: 8, DisableNoise: true}, simtime.NewClock())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddTraffic(true, int64(i)*64, 1<<16, 0, 0)
	}
	b.StopTimer()
	c.Totals(0)
}

type nullMem struct{}

func (nullMem) MemRead(addr, bytes int64)  {}
func (nullMem) MemWrite(addr, bytes int64) {}

func benchCacheAccess(b *testing.B) {
	h := cache.New(cache.Config{Socket: arch.Summit().Socket, ActiveCores: []int{0}}, nullMem{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, trace.Access{Addr: int64(i%1000000) * 8, Size: 8, Kind: trace.Load})
	}
}

func benchEventSetRead(b *testing.B, route node.Route) {
	tb, err := node.NewTestbed(arch.Tellico(), 1, node.Options{DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	lib, _, err := tb.NewLibrary()
	if err != nil {
		b.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.AddAll(tb.NestEventNames(route)...); err != nil {
		b.Fatal(err)
	}
	if err := es.Start(); err != nil {
		b.Fatal(err)
	}
	defer es.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := es.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFetchRespRoundTrip(b *testing.B) {
	res := pcp.FetchResult{Timestamp: 123456789}
	for i := 0; i < 16; i++ {
		res.Values = append(res.Values, pcp.FetchValue{PMID: uint32(i + 1), Status: pcp.StatusOK, Value: uint64(i) << 32})
	}
	var buf []byte
	var dec pcp.FetchResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = pcp.AppendFetchResp(buf[:0], res)
		if err := pcp.DecodeFetchRespInto(buf, &dec); err != nil {
			b.Fatal(err)
		}
	}
}

// servingDaemon builds a daemon over synthetic metrics so the
// concurrency benchmarks measure the serving path, not the counter
// model. Mirrors the bodies in internal/pcp and internal/pmproxy's
// bench_test files, which CI also runs at -cpu 1,4.
func servingDaemon(b *testing.B) *pcp.Daemon {
	ms := make([]pcp.Metric, 16)
	for i := range ms {
		v := uint64(i) * 64
		ms[i] = pcp.Metric{
			Name: fmt.Sprintf("bench.metric.%02d", i),
			Read: func(simtime.Time) (uint64, error) { return v, nil },
		}
	}
	d, err := pcp.NewDaemon(simtime.NewClock(), 10*simtime.Millisecond, ms)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

var servingPMIDs = []uint32{1, 2, 3, 4, 5, 6, 7, 8}

func benchParallelFetchInto(b *testing.B) {
	d := servingDaemon(b)
	b.RunParallel(func(pb *testing.PB) {
		var vals []pcp.FetchValue
		for pb.Next() {
			res := d.FetchInto(servingPMIDs, vals[:0])
			vals = res.Values
		}
	})
}

func benchFetchRoundTripTCP(b *testing.B) {
	d := servingDaemon(b)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	c, err := pcp.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var res pcp.FetchResult
	if err := c.FetchInto(servingPMIDs, &res); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.FetchInto(servingPMIDs, &res); err != nil {
			b.Fatal(err)
		}
	}
}

func benchParallelDaemonTCP(b *testing.B) {
	d := servingDaemon(b)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.RunParallel(func(pb *testing.PB) {
		c, err := pcp.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		var res pcp.FetchResult
		for pb.Next() {
			if err := c.FetchInto(servingPMIDs, &res); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func benchParallelProxyFetch(b *testing.B) {
	d := servingDaemon(b)
	upstream, err := d.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	p := pmproxy.New(pmproxy.Config{
		Upstream: upstream,
		Clock:    simtime.NewClock(),
		Interval: 10 * simtime.Millisecond,
	})
	defer p.Close()
	if _, err := p.Fetch(servingPMIDs); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Fetch(servingPMIDs); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func benchProxyFetch(b *testing.B) {
	tb, err := node.NewTestbed(arch.Tellico(), 1, node.Options{DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	p := pmproxy.New(pmproxy.Config{
		Upstream: tb.PMCDAddr,
		Clock:    tb.Clock,
		Interval: tb.Machine.Noise.PMCDSampleInterval,
	})
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	c, err := pcp.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	pmids := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := c.Fetch(pmids); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch(pmids); err != nil {
			b.Fatal(err)
		}
	}
}
