// Command qmcprofile runs the QMCPACK-analogue example problem — VMC
// without drift, VMC with drift, then DMC on the 3D harmonic oscillator
// — printing the physics results, and produces the Fig. 12
// multi-component profile of the run.
//
// Usage:
//
//	qmcprofile [-walkers 512] [-steps 2000] [-alpha 0.8] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"papimc/internal/figures"
	"papimc/internal/qmc"
	"papimc/internal/report"
)

func main() {
	walkers := flag.Int("walkers", 512, "Monte Carlo walker population")
	steps := flag.Int("steps", 2000, "steps per stage")
	alpha := flag.Float64("alpha", 0.8, "trial wavefunction parameter")
	quick := flag.Bool("quick", false, "shrink the profile")
	seed := flag.Uint64("seed", 0, "noise seed")
	flag.Parse()

	cfg := qmc.Config{Alpha: *alpha, Walkers: *walkers, StepSize: 0.3, Seed: 42}
	v1, err := qmc.VMCNoDrift(cfg, *steps)
	exitOn(err)
	v2, err := qmc.VMCDrift(cfg, *steps)
	exitOn(err)
	dmcCfg := cfg
	dmcCfg.StepSize = 0.02
	d, err := qmc.DMC(dmcCfg, *steps)
	exitOn(err)

	t := &report.Table{Headers: []string{"stage", "energy", "variance", "acceptance", "walkers"}}
	t.AddRow(string(qmc.PhaseVMCNoDrift), v1.Energy, v1.Variance, v1.Acceptance, v1.Walkers)
	t.AddRow(string(qmc.PhaseVMCDrift), v2.Energy, v2.Variance, v2.Acceptance, v2.Walkers)
	t.AddRow(string(qmc.PhaseDMC), d.Energy, d.Variance, d.Acceptance, d.Walkers)
	fmt.Printf("QMC example problem (3D harmonic oscillator, alpha=%.2f):\n", *alpha)
	fmt.Printf("  analytic VMC energy %.4f, exact ground state %.1f\n\n", qmc.ExactVMCEnergy(*alpha), qmc.GroundStateEnergy)
	t.Write(os.Stdout)

	fmt.Println()
	g, err := figures.ByID("fig12")
	exitOn(err)
	res, err := g.Gen(figures.Options{Quick: *quick, Seed: *seed})
	exitOn(err)
	fmt.Printf("%s\n\n", res.Title)
	res.Table.Write(os.Stdout)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
