package archive

import (
	"sync"
	"time"
)

// Compaction: folding aged raw blocks out of the raw tier once the
// rollup tiers cover them, and trimming decoded-block caches, all
// without ever blocking readers.
//
// Publication protocol. The compactor takes the writer mutex (so it
// serializes with Append, never with readers), builds a new snapshot
// value sharing the immutable blocks and buckets it keeps, and installs
// it with one atomic pointer store. A reader that loaded the previous
// snapshot keeps a fully consistent view — evicted blocks stay alive
// as long as that reader holds them — and the next load observes the
// new list in full. There is no intermediate state to observe.

// hotDecodedBlocks is how many of the newest sealed blocks keep their
// decoded-row caches across a Compact pass; older caches are dropped
// and repopulate on demand.
const hotDecodedBlocks = 8

// Compact runs one compaction pass: raw blocks whose samples are
// entirely older than newest-RawRetention *and* entirely covered by
// completed buckets of every rollup tier are folded out of the raw
// tier (their history remains queryable through the rollups), and
// decoded caches of cold blocks are dropped. Returns the number of raw
// rows folded. A zero RawRetention leaves raw blocks alone (cache
// trimming still runs).
func (a *Archive) Compact() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.snap.Load()
	if !cur.seenAny {
		return 0
	}

	next := *cur // shallow copy: immutable parts shared
	next.compactions++
	folded := 0

	if a.opts.RawRetention > 0 && len(cur.blocks) > 0 && len(cur.tiers) > 0 {
		cutoff := cur.lastTS - a.opts.RawRetention
		// A raw block may fold only when every rollup tier has a
		// *completed* bucket run covering its whole span — otherwise
		// folding would lose history (e.g. rollups disabled, or the
		// block still feeds an open bucket).
		covered := cutoff
		for i := range cur.tiers {
			t := &cur.tiers[i]
			if len(t.done) == 0 {
				covered = cur.blocks[0].firstTS - 1 // nothing completed: fold nothing
				break
			}
			if end := t.done[len(t.done)-1].LastTS; end < covered {
				covered = end
			}
		}
		drop := 0
		for drop < len(cur.blocks) && cur.blocks[drop].lastTS <= min(cutoff, covered) {
			folded += cur.blocks[drop].count
			next.sealedBytes -= len(cur.blocks[drop].buf)
			drop++
		}
		if drop > 0 {
			next.blocks = cur.blocks[drop:]
			next.rawSamples -= folded
			next.folded += folded
		}
	}

	// Trim decoded caches on all but the newest hot blocks. Readers
	// holding a decoded slice keep it; the block just re-decodes for
	// the next cold query.
	for i := 0; i < len(next.blocks)-hotDecodedBlocks; i++ {
		next.blocks[i].dec.Store(nil)
	}

	a.snap.Store(&next)
	return folded
}

// StartCompactor runs Compact every interval on a background goroutine
// until the returned stop function is called. Stop is idempotent and
// waits for an in-flight pass to finish.
func (a *Archive) StartCompactor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				a.Compact()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
