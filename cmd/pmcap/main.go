// Command pmcap is the capacity analyzer: it expands a declarative
// workload spec (see internal/workload), sweeps its rate multiplier
// through the virtual-time engine, and reports the knee — where the tier
// stops absorbing offered load or the p99 cliffs.
//
// Everything runs in virtual time, so a sweep over millions of simulated
// clients finishes in seconds of wall time and the report is
// byte-identical across runs and across -j worker counts: CI diffs two
// invocations to hold the engine to that.
//
// Usage:
//
//	pmcap -spec FILE [-mults 0.25,0.5,1,2,4] [-j N] [-seed N]
//	      [-duration D] [-knee-ratio 0.99] [-cliff 10] [-json]
//
// Example:
//
//	pmcap -spec examples/workload-specs/diurnal.yaml -mults 0.5,1,2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"papimc/internal/simtime"
	"papimc/internal/workload"
)

func main() {
	specPath := flag.String("spec", "", "workload spec file (YAML or JSON), required")
	multsFlag := flag.String("mults", "", "comma-separated rate multipliers to sweep (default 0.25,0.5,1,2,4)")
	workers := flag.Int("j", 0, "parallel sweep workers (0 = GOMAXPROCS; output is identical at any value)")
	seed := flag.Uint64("seed", 0, "override the spec's seed")
	duration := flag.Duration("duration", 0, "override the spec's virtual horizon")
	kneeRatio := flag.Float64("knee-ratio", 0, "saturation threshold on throughput-to-arrival ratio (default 0.99)")
	cliff := flag.Float64("cliff", 0, "p99 cliff factor over the baseline point (default 10)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a table")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "pmcap: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	spec, err := workload.LoadSpec(*specPath)
	if err != nil {
		fail(err)
	}
	if flagSet("seed") {
		spec.Seed = *seed
	}
	if *duration > 0 {
		spec.Duration = simtime.Duration(duration.Nanoseconds())
	}
	mults, err := parseMults(*multsFlag)
	if err != nil {
		fail(err)
	}
	rep, err := workload.Capacity(spec, workload.CapacityOptions{
		Mults:       mults,
		Workers:     *workers,
		KneeRatio:   *kneeRatio,
		CliffFactor: *cliff,
	})
	if err != nil {
		fail(err)
	}
	if *asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(rep.Render())
}

func parseMults(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad multiplier %q in -mults", part)
		}
		out = append(out, f)
	}
	return out, nil
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pmcap:", err)
	os.Exit(1)
}
