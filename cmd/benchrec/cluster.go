package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"papimc/internal/cluster"
	"papimc/internal/metricql"
	"papimc/internal/simtime"
)

// clusterBenchInterval matches the cluster testbed's sampling interval.
const clusterBenchInterval = 10 * simtime.Millisecond

// clusterNodeCounts are the tree sizes the latency record covers; the
// 64-node tree is the CI acceptance geometry, 1024 the scale point.
var clusterNodeCounts = []int{64, 256, 1024}

// clusterMain measures federated root-query latency against tree size
// and writes the record (BENCH_5.json by default): a whole-namespace
// scatter-gather FetchAll and a grouped metricql query, each at every
// node count, over an in-process fanout-8 tree. There are no 'before'
// baselines — the subsystem is new — so the record is the trajectory's
// starting point.
func clusterMain(out string) {
	benches := []struct {
		name string
		fn   func(*testing.B, int)
	}{
		{"cluster/RootFetchAll", benchClusterFetchAll},
		{"cluster/GroupByNode", benchClusterGroupByNode},
	}
	report := struct {
		Note    string  `json:"note"`
		Entries []Entry `json:"entries"`
	}{
		Note: "federated cluster root-query latency vs node count (in-process tree, fanout 8): " +
			"RootFetchAll scatter-gathers the whole namespace through every federator level, " +
			"GroupByNode evaluates sum(mem.read_bw) by (node) at the root with a fresh sample interval per op",
	}
	for _, bm := range benches {
		for _, nodes := range clusterNodeCounts {
			nodes := nodes
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				bm.fn(b, nodes)
			})
			e := Entry{Name: fmt.Sprintf("%s/%d", bm.name, nodes), After: Metric{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}}
			report.Entries = append(report.Entries, e)
			fmt.Printf("%-28s %12.1f ns/op %10d B/op %6d allocs/op\n",
				e.Name, e.After.NsPerOp, e.After.BytesPerOp, e.After.AllocsPerOp)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

func assembleBenchTree(b *testing.B, nodes int) *cluster.Tree {
	tr, err := cluster.Assemble(cluster.Config{
		Nodes:    nodes,
		FanOut:   8,
		Seed:     1,
		Interval: clusterBenchInterval,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	return tr
}

// benchClusterFetchAll measures the pure scatter-gather path: the
// clock holds still, so every daemon serves its cached sample and the
// number is the tree's routing + merge cost.
func benchClusterFetchAll(b *testing.B, nodes int) {
	tr := assembleBenchTree(b, nodes)
	tr.Clock.Advance(clusterBenchInterval + 1)
	if _, err := tr.Root.FetchAll(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Root.FetchAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterGroupByNode measures the grouped query end to end with a
// fresh sample interval per op, so every daemon resamples: the cost of
// answering sum(mem.read_bw) by (node) against live data.
func benchClusterGroupByNode(b *testing.B, nodes int) {
	tr := assembleBenchTree(b, nodes)
	eng := metricql.NewEngine(tr.Root)
	q, err := eng.Query("sum(mem.read_bw) by (node)")
	if err != nil {
		b.Fatal(err)
	}
	tr.Clock.Advance(clusterBenchInterval + 1)
	if _, err := q.Eval(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Clock.Advance(clusterBenchInterval + 1)
		if _, err := q.Eval(); err != nil {
			b.Fatal(err)
		}
	}
}
