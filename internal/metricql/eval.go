package metricql

import (
	"errors"
	"fmt"
	"math"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"papimc/internal/pcp"
)

// Source is what the engine needs from a metric provider. It is a
// structural subset of pcpcomp.Source (Lookup is not needed: the engine
// resolves names from the full namespace listing so globs can expand).
// pcp.Client, archive.Recorder, and archive.Replay all satisfy it.
type Source interface {
	Names() ([]pcp.NameEntry, error)
	Fetch(pmids []uint32) (pcp.FetchResult, error)
}

// Value is an evaluation result: a scalar (Names == nil, Vals[0]) or a
// vector with one element per expanded metric instance.
type Value struct {
	Names []string // nil for a scalar
	Vals  []float64
}

// Scalar returns the value as a single float64. Vectors of width one
// collapse; wider vectors are an error.
func (v Value) Scalar() (float64, error) {
	if len(v.Vals) == 1 {
		return v.Vals[0], nil
	}
	return 0, fmt.Errorf("metricql: expected scalar, got vector of %d", len(v.Vals))
}

// selection is one expanded metric instance of a pattern.
type selection struct {
	name string // display name (alias if matched through one)
	pmid uint32
}

// counterState tracks the last two observed samples of one PMID, the
// substrate for rate() and delta().
type counterState struct {
	prev, cur     uint64
	prevTS, curTS int64
	seen          int // distinct timestamps observed
}

// history is a per-node ring of (timestamp, vector) samples for the
// windowed functions.
type history struct {
	ts   []int64
	vals [][]float64
}

// Engine evaluates parsed expressions against one Source. It owns the
// counter state (previous samples per PMID), an alias table, and a
// per-timestamp memoization cache keyed by canonical subexpression so
// shared subtrees across queries cost one computation per fetch.
type Engine struct {
	mu      sync.Mutex
	src     Source
	wp      WindowPlanner     // non-nil if src can answer windows itself
	aliases map[string]string // alias -> raw metric name
	byName  map[string]uint32 // raw metric name -> pmid (namespace cache)
	state   map[uint32]*counterState
	hists   map[string]*history // canonical key -> shared window ring
	memo    map[string]Value
	down    map[uint32]bool // PMIDs whose node was down on the last fetch
	downKey string          // canonical form of down, the memo invalidator
	lastTS  int64
	hasTS   bool
}

// WindowPlanner is implemented by sources that can answer a windowed
// function over (t0, t1] directly — an archive replay reads its rollup
// tiers instead of having the engine ring-buffer raw samples. fn is the
// metricql function name ("avg_over", "min_over", "max_over",
// "rate_over"). ok=false means this window cannot be pushed down (the
// engine falls back to its sample ring); an error aborts the
// evaluation. Pushed-down windows aggregate every archived sample in
// the window, which matches the ring's fetch-cadence aggregation
// whenever the engine steps at the recording cadence and is strictly
// more accurate when it steps coarser.
type WindowPlanner interface {
	EvalWindow(fn string, pmid uint32, t0, t1 int64) (val float64, ok bool, err error)
}

// NewEngine creates an engine over src. The namespace is listed lazily
// on first Query and refreshed once on a lookup miss.
func NewEngine(src Source) *Engine {
	wp, _ := src.(WindowPlanner)
	return &Engine{
		src:     src,
		wp:      wp,
		aliases: make(map[string]string),
		state:   make(map[uint32]*counterState),
		hists:   make(map[string]*history),
		memo:    make(map[string]Value),
	}
}

// Alias registers name as an alias for the raw metric rawName. Aliases
// participate in glob expansion alongside raw names.
func (e *Engine) Alias(name, rawName string) {
	e.mu.Lock()
	e.aliases[name] = rawName
	e.mu.Unlock()
}

// AliasAll registers a batch of aliases.
func (e *Engine) AliasAll(m map[string]string) {
	e.mu.Lock()
	for k, v := range m {
		e.aliases[k] = v
	}
	e.mu.Unlock()
}

// nestAliasRE matches the daemon's nest counter metric names, e.g.
// perfevent.hwcounters.nest_mba3_imc.PM_MBA3_READ_BYTES.value.cpu87.
var nestAliasRE = regexp.MustCompile(`^perfevent\.hwcounters\.nest_mba(\d+)_imc\.PM_MBA(\d+)_(READ|WRITE)_BYTES\.value\.cpu(\d+)$`)

// NestAliases builds the conventional short names for the POWER9 nest
// counters from a namespace listing:
//
//	nest.mba<ch>.read_bytes.cpu<N>   — every instance, qualified
//	nest.mba<ch>.read_bytes          — the lowest-numbered CPU (socket 0)
//
// so `nest.mba*.read_bytes` expands to the eight socket-0 read counters,
// matching the per-socket selection the paper's Table I uses.
func NestAliases(names []pcp.NameEntry) map[string]string {
	type bare struct {
		cpu int
		raw string
	}
	out := make(map[string]string)
	lowest := make(map[string]bare)
	for _, e := range names {
		m := nestAliasRE.FindStringSubmatch(e.Name)
		if m == nil {
			continue
		}
		ch, dir, cpuStr := m[1], m[3], m[4]
		short := "nest.mba" + ch + "." + map[string]string{"READ": "read", "WRITE": "write"}[dir] + "_bytes"
		out[short+".cpu"+cpuStr] = e.Name
		cpu, _ := strconv.Atoi(cpuStr)
		if b, ok := lowest[short]; !ok || cpu < b.cpu {
			lowest[short] = bare{cpu: cpu, raw: e.Name}
		}
	}
	for short, b := range lowest {
		out[short] = b.raw
	}
	return out
}

// Query is an expression bound to an engine: patterns expanded to PMIDs,
// canonical memo keys computed, window histories allocated.
type Query struct {
	eng  *Engine
	root *node
	src  string
}

// Query parses and binds src. Binding expands metric patterns against
// the source namespace and the alias table, verifies vector widths are
// consistent, and prepares per-node state. The returned Query is only
// valid on this engine.
func (e *Engine) Query(src string) (*Query, error) {
	ex, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Bind(ex)
}

// Bind binds a parsed expression to this engine (see Query). The Expr
// itself is not modified; the Query holds a bound copy.
func (e *Engine) Bind(ex *Expr) (*Query, error) {
	root := cloneNode(ex.root)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.bindNode(root); err != nil {
		return nil, err
	}
	if _, err := staticWidth(root); err != nil {
		return nil, err
	}
	return &Query{eng: e, root: root, src: ex.src}, nil
}

func cloneNode(n *node) *node {
	c := &node{kind: n.kind, num: n.num, pattern: n.pattern, op: n.op, fn: n.fn, window: n.window, by: n.by}
	c.args = make([]*node, len(n.args))
	for i, a := range n.args {
		c.args[i] = cloneNode(a)
	}
	return c
}

// bindNode resolves metric patterns and computes memo keys bottom-up.
// Keys incorporate the bound PMIDs (not just the pattern text) so two
// bindings of the same pattern against a namespace that grew in between
// never share a memo entry. Windowed nodes share their sample history
// engine-wide by key, so the ring stays complete no matter which query
// containing the subexpression is evaluated on a given tick. Callers
// hold e.mu.
func (e *Engine) bindNode(n *node) error {
	for _, a := range n.args {
		if err := e.bindNode(a); err != nil {
			return err
		}
	}
	if n.kind == nodeMetric {
		sel, err := e.expandPattern(n.pattern)
		if err != nil {
			return err
		}
		n.sel = sel
	}
	n.key = boundKey(n)
	if n.window != 0 {
		h, ok := e.hists[n.key]
		if !ok {
			h = &history{}
			e.hists[n.key] = h
		}
		n.hist = h
	}
	return nil
}

// boundKey builds the memoization key from bound children: like the
// canonical String() form, but metric nodes carry their expanded PMIDs.
func boundKey(n *node) string {
	switch n.kind {
	case nodeNum:
		return strconv.FormatFloat(n.num, 'g', -1, 64)
	case nodeMetric:
		var b strings.Builder
		b.WriteString(n.pattern)
		b.WriteByte('@')
		for i, s := range n.sel {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(uint64(s.pmid), 10))
		}
		return b.String()
	case nodeUnary:
		return "(-" + n.args[0].key + ")"
	case nodeBinary:
		return "(" + n.args[0].key + " " + string(n.op) + " " + n.args[1].key + ")"
	case nodeCall:
		k := n.fn + "(" + n.args[0].key
		if n.window != 0 {
			k += ", " + strconv.FormatInt(n.window, 10) + "ns"
		}
		k += ")"
		if n.by != "" {
			k += " by (" + n.by + ")"
		}
		return k
	}
	return ""
}

// refreshNames (re)lists the namespace into byName. Callers hold e.mu.
func (e *Engine) refreshNames() error {
	entries, err := e.src.Names()
	if err != nil {
		return fmt.Errorf("metricql: listing namespace: %w", err)
	}
	e.byName = make(map[string]uint32, len(entries))
	for _, en := range entries {
		e.byName[en.Name] = en.PMID
	}
	return nil
}

func hasGlob(p string) bool {
	for i := 0; i < len(p); i++ {
		switch p[i] {
		case '*', '?', '[':
			return true
		}
	}
	return false
}

// matchQualified matches pattern against a candidate name. A pattern
// that names no node (no ':') additionally matches the metric part of a
// node-qualified name, so "mem.read_bw" or "mem.ch*.read_bw" selects
// that metric on every node of a federated namespace.
func matchQualified(pattern, candidate string) (bool, error) {
	ok, err := path.Match(pattern, candidate)
	if err != nil || ok {
		return ok, err
	}
	if !strings.ContainsRune(pattern, ':') {
		if i := strings.IndexByte(candidate, ':'); i >= 0 {
			return path.Match(pattern, candidate[i+1:])
		}
	}
	return false, nil
}

// expandPattern resolves a metric name or glob into concrete PMIDs.
// Exact names resolve through aliases first, then raw names; globs
// match against the union of alias keys and raw names (alias matches
// deduplicate their raw counterpart by PMID). An exact name that is
// absent but appears node-qualified (node003:mem.read_bw) expands to
// every node's instance, giving unqualified queries cluster-wide scope.
// Callers hold e.mu.
func (e *Engine) expandPattern(pattern string) ([]selection, error) {
	if e.byName == nil {
		if err := e.refreshNames(); err != nil {
			return nil, err
		}
	}
	lookup := func(name string) (uint32, bool) {
		target := name
		if raw, ok := e.aliases[name]; ok {
			target = raw
		}
		id, ok := e.byName[target]
		return id, ok
	}
	if !hasGlob(pattern) {
		id, ok := lookup(pattern)
		if !ok {
			// The namespace may have grown (late Register): refresh once.
			if err := e.refreshNames(); err != nil {
				return nil, err
			}
			id, ok = lookup(pattern)
		}
		if ok {
			return []selection{{name: pattern, pmid: id}}, nil
		}
		// Fall through to the candidate scan: the exact name may exist
		// node-qualified.
	}
	candidates := make([]string, 0, len(e.aliases)+len(e.byName))
	for a := range e.aliases {
		candidates = append(candidates, a)
	}
	for n := range e.byName {
		candidates = append(candidates, n)
	}
	sort.Strings(candidates)
	var sel []selection
	seen := make(map[uint32]bool)
	for _, c := range candidates {
		ok, err := matchQualified(pattern, c)
		if err != nil {
			return nil, errAt(0, "bad pattern %q: %v", pattern, err)
		}
		if !ok {
			continue
		}
		id, found := lookup(c)
		if !found || seen[id] {
			continue
		}
		seen[id] = true
		sel = append(sel, selection{name: c, pmid: id})
	}
	if len(sel) == 0 {
		if !hasGlob(pattern) {
			return nil, fmt.Errorf("metricql: unknown metric %q", pattern)
		}
		return nil, fmt.Errorf("metricql: pattern %q matches no metrics", pattern)
	}
	return sel, nil
}

// staticWidth checks vector-width consistency at bind time and returns
// the node's width: 0 = scalar, -1 = dynamic (a grouped aggregate's
// width is one element per node group, known only at evaluation time).
func staticWidth(n *node) (int, error) {
	switch n.kind {
	case nodeNum:
		return 0, nil
	case nodeMetric:
		return len(n.sel), nil
	case nodeUnary:
		return staticWidth(n.args[0])
	case nodeBinary:
		lw, err := staticWidth(n.args[0])
		if err != nil {
			return 0, err
		}
		rw, err := staticWidth(n.args[1])
		if err != nil {
			return 0, err
		}
		if lw > 0 && rw > 0 && lw != rw {
			return 0, fmt.Errorf("metricql: operand widths differ (%d vs %d) in %s", lw, rw, n.key)
		}
		if lw == -1 || rw == -1 {
			return -1, nil
		}
		if lw != 0 {
			return lw, nil
		}
		return rw, nil
	case nodeCall:
		aw, err := staticWidth(n.args[0])
		if err != nil {
			return 0, err
		}
		switch n.fn {
		case "sum", "avg", "min", "max":
			if n.by != "" {
				if aw == 0 {
					return 0, fmt.Errorf("metricql: %s(...) by (node) needs a vector argument", n.fn)
				}
				return -1, nil
			}
			return 0, nil
		default: // rate, delta, avg_over, max_over preserve width
			return aw, nil
		}
	}
	return 0, fmt.Errorf("metricql: internal: unknown node kind")
}

// Width returns the query's vector width: 0 for a scalar expression,
// -1 for a dynamic width (grouped aggregates), otherwise the number of
// expanded metric instances. Widths 0 and 1 both satisfy Scalar().
func (q *Query) Width() (int, error) { return staticWidth(q.root) }

// pmids appends every PMID referenced by the query to dst.
func (q *Query) pmids(dst map[uint32]bool) {
	collectPMIDs(q.root, dst)
}

func collectPMIDs(n *node, dst map[uint32]bool) {
	if n.kind == nodeMetric {
		for _, s := range n.sel {
			dst[s.pmid] = true
		}
	}
	for _, a := range n.args {
		collectPMIDs(a, dst)
	}
}

// Eval evaluates a single query; see EvalAll. On a partial result the
// Value is valid alongside the non-nil *pcp.PartialError.
func (q *Query) Eval() (Value, error) {
	vs, err := q.eng.EvalAll(q)
	if len(vs) > 0 {
		return vs[0], err
	}
	return Value{}, err
}

// EvalAll fetches every metric referenced by the given queries in one
// round trip, advances counter state if the fetch carries a new
// timestamp, and evaluates each query. Queries sharing subexpressions
// (by canonical form) share the memoized result. Re-evaluating within
// the same daemon sampling interval (same fetch timestamp) advances no
// state and serves memoized values — the engine's cadence is the
// daemon's, like every other PCP consumer.
//
// A federated source may answer partially: values carrying
// StatusNodeDown are dropped from the vectors they would appear in, the
// evaluation proceeds over what answered, and the source's
// *pcp.PartialError (naming the missing nodes) is returned alongside
// the valid values. Any other error leaves the returned slice nil.
func (e *Engine) EvalAll(qs ...*Query) ([]Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	idset := make(map[uint32]bool)
	for _, q := range qs {
		if q.eng != e {
			return nil, fmt.Errorf("metricql: query bound to a different engine")
		}
		q.pmids(idset)
	}
	ids := make([]uint32, 0, len(idset))
	for id := range idset {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	res, err := e.src.Fetch(ids)
	var pe *pcp.PartialError
	if err != nil && !errors.As(err, &pe) {
		return nil, fmt.Errorf("metricql: fetch: %w", err)
	}
	if len(res.Values) != len(ids) {
		return nil, fmt.Errorf("metricql: fetch returned %d values for %d pmids", len(res.Values), len(ids))
	}
	byID := make(map[uint32]uint64, len(res.Values))
	down := make(map[uint32]bool)
	for _, v := range res.Values {
		switch v.Status {
		case pcp.StatusOK:
			byID[v.PMID] = v.Value
		case pcp.StatusNodeDown:
			down[v.PMID] = true
		default:
			return nil, fmt.Errorf("metricql: pmid %d failed with status %d", v.PMID, v.Status)
		}
	}
	ts := res.Timestamp
	if e.hasTS && ts < e.lastTS {
		return nil, fmt.Errorf("metricql: fetch timestamp went backwards (%d < %d)", ts, e.lastTS)
	}
	fresh := !e.hasTS || ts > e.lastTS
	downKey := downSetKey(down)
	e.down = down
	if fresh {
		for id, v := range byID {
			st := e.state[id]
			if st == nil {
				st = &counterState{}
				e.state[id] = st
			}
			if st.seen == 0 {
				st.cur, st.curTS = v, ts
				st.seen = 1
			} else {
				st.prev, st.prevTS = st.cur, st.curTS
				st.cur, st.curTS = v, ts
				st.seen++
			}
		}
		e.lastTS, e.hasTS = ts, true
		e.memo = make(map[string]Value)
		e.downKey = downKey
	} else {
		if downKey != e.downKey {
			// Same daemon sample but a different set of down nodes:
			// memoized vectors embed the old down-set's shape.
			e.memo = make(map[string]Value)
			e.downKey = downKey
		}
		// Same daemon sample as last time: top up state for PMIDs this
		// fetch saw for the first time, keep existing memo entries.
		for id, v := range byID {
			if e.state[id] == nil {
				e.state[id] = &counterState{cur: v, curTS: ts, seen: 1}
			}
		}
	}
	out := make([]Value, len(qs))
	for i, q := range qs {
		v, err := e.evalNode(q.root, byID, ts, fresh)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	if pe != nil {
		return out, pe
	}
	return out, nil
}

// downSetKey canonicalizes a down-PMID set for memo invalidation.
func downSetKey(down map[uint32]bool) string {
	if len(down) == 0 {
		return ""
	}
	ids := make([]uint32, 0, len(down))
	for id := range down {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	return b.String()
}

// LastTimestamp returns the daemon timestamp of the most recent fetch.
func (e *Engine) LastTimestamp() (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastTS, e.hasTS
}

// evalNode evaluates one bound node, memoizing by canonical key.
// Callers hold e.mu.
func (e *Engine) evalNode(n *node, byID map[uint32]uint64, ts int64, fresh bool) (Value, error) {
	if v, ok := e.memo[n.key]; ok {
		return v, nil
	}
	v, err := e.evalNodeUncached(n, byID, ts, fresh)
	if err != nil {
		return Value{}, err
	}
	e.memo[n.key] = v
	return v, nil
}

func (e *Engine) evalNodeUncached(n *node, byID map[uint32]uint64, ts int64, fresh bool) (Value, error) {
	switch n.kind {
	case nodeNum:
		return Value{Vals: []float64{n.num}}, nil

	case nodeMetric:
		names := make([]string, 0, len(n.sel))
		vals := make([]float64, 0, len(n.sel))
		for _, s := range n.sel {
			v, ok := byID[s.pmid]
			if !ok {
				if e.down[s.pmid] {
					// The owning node is down this snapshot: partial-result
					// semantics drop the instance rather than serve a value
					// from a different time.
					continue
				}
				// PMID referenced by another query binding but not
				// fetched this round — serve the last observed sample.
				if st := e.state[s.pmid]; st != nil && st.seen > 0 {
					v = st.cur
				} else {
					return Value{}, fmt.Errorf("metricql: no sample yet for %s", s.name)
				}
			}
			names = append(names, s.name)
			vals = append(vals, float64(v))
		}
		return Value{Names: names, Vals: vals}, nil

	case nodeUnary:
		v, err := e.evalNode(n.args[0], byID, ts, fresh)
		if err != nil {
			return Value{}, err
		}
		out := Value{Names: v.Names, Vals: make([]float64, len(v.Vals))}
		for i, x := range v.Vals {
			out.Vals[i] = -x
		}
		return out, nil

	case nodeBinary:
		l, err := e.evalNode(n.args[0], byID, ts, fresh)
		if err != nil {
			return Value{}, err
		}
		r, err := e.evalNode(n.args[1], byID, ts, fresh)
		if err != nil {
			return Value{}, err
		}
		return applyBinary(n.op, l, r)

	case nodeCall:
		switch n.fn {
		case "rate", "delta":
			return e.evalCounterFn(n, ts)
		case "sum", "avg", "min", "max":
			v, err := e.evalNode(n.args[0], byID, ts, fresh)
			if err != nil {
				return Value{}, err
			}
			if n.by != "" {
				return aggregateBy(n.fn, v)
			}
			return aggregate(n.fn, v)
		case "avg_over", "max_over", "min_over", "rate_over":
			if v, ok, err := e.evalWindowPushdown(n, ts); err != nil {
				return Value{}, err
			} else if ok {
				return v, nil
			}
			v, err := e.evalNode(n.args[0], byID, ts, fresh)
			if err != nil {
				return Value{}, err
			}
			return e.evalWindow(n, v, ts, fresh)
		}
	}
	return Value{}, fmt.Errorf("metricql: internal: cannot evaluate node %q", n.key)
}

// evalCounterFn computes rate() or delta() from the per-PMID counter
// state: the difference of the last two daemon samples with
// monotonic-wrap correction via pcp.CounterDelta. Until two distinct
// samples exist the result is 0 (matching a counter that has not yet
// moved). Callers hold e.mu.
func (e *Engine) evalCounterFn(n *node, ts int64) (Value, error) {
	arg := n.args[0]
	names := make([]string, 0, len(arg.sel))
	vals := make([]float64, 0, len(arg.sel))
	for _, s := range arg.sel {
		if e.down[s.pmid] {
			continue // node down this snapshot: drop, don't fabricate a 0 rate
		}
		names = append(names, s.name)
		st := e.state[s.pmid]
		if st == nil || st.seen < 2 {
			vals = append(vals, 0)
			continue
		}
		d := float64(pcp.CounterDelta(st.prev, st.cur))
		if n.fn == "delta" {
			vals = append(vals, d)
			continue
		}
		dt := float64(st.curTS-st.prevTS) / 1e9
		if dt <= 0 {
			vals = append(vals, 0)
			continue
		}
		vals = append(vals, d/dt)
	}
	return Value{Names: names, Vals: vals}, nil
}

// evalWindow appends the current value of the windowed node's argument
// to its history ring (once per distinct timestamp), prunes samples
// outside the half-open window (ts-window, ts] — so a 2s window on a
// 1s cadence aggregates exactly two samples — and reduces elementwise
// over the retained samples including the current one. Callers hold
// e.mu.
func (e *Engine) evalWindow(n *node, cur Value, ts int64, fresh bool) (Value, error) {
	h := n.hist
	if len(h.vals) > 0 && len(h.vals[len(h.vals)-1]) != len(cur.Vals) {
		// Partial results changed the vector width; old rows can no
		// longer be reduced elementwise against the new shape.
		h.ts = h.ts[:0]
		h.vals = h.vals[:0]
	}
	if len(h.ts) == 0 || h.ts[len(h.ts)-1] != ts {
		vcopy := make([]float64, len(cur.Vals))
		copy(vcopy, cur.Vals)
		h.ts = append(h.ts, ts)
		h.vals = append(h.vals, vcopy)
	}
	cut := ts - n.window
	drop := 0
	for drop < len(h.ts)-1 && h.ts[drop] <= cut {
		drop++
	}
	h.ts = h.ts[drop:]
	h.vals = h.vals[drop:]
	out := Value{Names: cur.Names, Vals: make([]float64, len(cur.Vals))}
	for i := range out.Vals {
		var acc float64
		switch n.fn {
		case "rate_over":
			// Wrap-corrected increase across the retained samples over
			// their time span. The ring only sees the window's first and
			// last samples, so a counter that wrapped more than once
			// inside one window under-reports — the archive pushdown
			// path, which sums per-sample deltas, has no such bound.
			if len(h.vals) >= 2 {
				d := h.vals[len(h.vals)-1][i] - h.vals[0][i]
				if d < 0 {
					d += twoTo64 // counter wrapped mod 2^64
				}
				if dt := float64(h.ts[len(h.ts)-1]-h.ts[0]) / 1e9; dt > 0 {
					acc = d / dt
				}
			}
		default:
			acc = h.vals[0][i]
			for _, row := range h.vals[1:] {
				switch n.fn {
				case "max_over":
					acc = math.Max(acc, row[i])
				case "min_over":
					acc = math.Min(acc, row[i])
				default:
					acc += row[i]
				}
			}
			if n.fn == "avg_over" {
				acc /= float64(len(h.vals))
			}
		}
		out.Vals[i] = acc
	}
	return out, nil
}

// twoTo64 is 2^64 as a float64, the wrap modulus of a uint64 counter.
const twoTo64 = 1 << 64

// evalWindowPushdown asks the source's WindowPlanner (if any) to answer
// a windowed function over a plain metric argument directly. Returns
// ok=false — engine falls back to the sample ring — when the source is
// not a planner, the argument is not a bare metric selection, or the
// planner declines any selected PMID. Callers hold e.mu.
func (e *Engine) evalWindowPushdown(n *node, ts int64) (Value, bool, error) {
	if e.wp == nil {
		return Value{}, false, nil
	}
	arg := n.args[0]
	if arg.kind != nodeMetric {
		return Value{}, false, nil
	}
	names := make([]string, 0, len(arg.sel))
	vals := make([]float64, 0, len(arg.sel))
	for _, s := range arg.sel {
		if e.down[s.pmid] {
			continue // node down this snapshot: drop, as the ring path does
		}
		v, ok, err := e.wp.EvalWindow(n.fn, s.pmid, ts-n.window, ts)
		if err != nil {
			return Value{}, false, err
		}
		if !ok {
			return Value{}, false, nil
		}
		names = append(names, s.name)
		vals = append(vals, v)
	}
	return Value{Names: names, Vals: vals}, true, nil
}

// aggregate collapses a vector to a scalar.
func aggregate(fn string, v Value) (Value, error) {
	if len(v.Vals) == 0 {
		return Value{}, fmt.Errorf("metricql: %s() of empty vector", fn)
	}
	return Value{Vals: []float64{reduce(fn, v.Vals)}}, nil
}

// reduce folds vals (non-empty) under one aggregate function.
func reduce(fn string, vals []float64) float64 {
	acc := vals[0]
	for _, x := range vals[1:] {
		switch fn {
		case "sum", "avg":
			acc += x
		case "min":
			acc = math.Min(acc, x)
		case "max":
			acc = math.Max(acc, x)
		}
	}
	if fn == "avg" {
		acc /= float64(len(vals))
	}
	return acc
}

// nodeOf extracts the node label of a qualified metric name: the prefix
// before the first ':', or "" for an unqualified name.
func nodeOf(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return ""
}

// aggregateBy collapses a vector to one element per node group, the
// evaluation of "sum(x) by (node)". Group names sort lexically so the
// output is deterministic; an all-down input yields an empty (non-nil)
// vector rather than an error — the accompanying *pcp.PartialError
// names what is missing.
func aggregateBy(fn string, v Value) (Value, error) {
	if v.Names == nil {
		return Value{}, fmt.Errorf("metricql: %s(...) by (node) needs a vector argument", fn)
	}
	groups := make(map[string][]float64)
	for i, name := range v.Names {
		k := nodeOf(name)
		groups[k] = append(groups[k], v.Vals[i])
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := Value{Names: make([]string, 0, len(keys)), Vals: make([]float64, 0, len(keys))}
	for _, k := range keys {
		out.Names = append(out.Names, k)
		out.Vals = append(out.Vals, reduce(fn, groups[k]))
	}
	return out, nil
}

// applyBinary combines two values, broadcasting a scalar against a
// vector. Vector-vector requires equal widths (checked at bind time;
// re-checked here for safety) and keeps the left operand's names.
func applyBinary(op byte, l, r Value) (Value, error) {
	apply := func(a, b float64) float64 {
		switch op {
		case '+':
			return a + b
		case '-':
			return a - b
		case '*':
			return a * b
		case '/':
			if b == 0 {
				return math.NaN()
			}
			return a / b
		}
		return math.NaN()
	}
	lscalar := l.Names == nil && len(l.Vals) == 1
	rscalar := r.Names == nil && len(r.Vals) == 1
	switch {
	case lscalar && rscalar:
		return Value{Vals: []float64{apply(l.Vals[0], r.Vals[0])}}, nil
	case lscalar:
		out := Value{Names: r.Names, Vals: make([]float64, len(r.Vals))}
		for i, x := range r.Vals {
			out.Vals[i] = apply(l.Vals[0], x)
		}
		return out, nil
	case rscalar:
		out := Value{Names: l.Names, Vals: make([]float64, len(l.Vals))}
		for i, x := range l.Vals {
			out.Vals[i] = apply(x, r.Vals[0])
		}
		return out, nil
	default:
		if len(l.Vals) != len(r.Vals) {
			return Value{}, fmt.Errorf("metricql: operand widths differ (%d vs %d)", len(l.Vals), len(r.Vals))
		}
		out := Value{Names: l.Names, Vals: make([]float64, len(l.Vals))}
		for i := range l.Vals {
			out.Vals[i] = apply(l.Vals[i], r.Vals[i])
		}
		return out, nil
	}
}
