package pcp

import (
	"fmt"

	"papimc/internal/nest"
	"papimc/internal/simtime"
)

// NestMetrics exports every counter of the given socket PMUs under the
// perfevent namespace, with a per-socket ".cpuN" instance suffix naming
// the last hardware thread of the socket — matching Table I's
// ":cpu[87|175]" instance selectors on Summit.
//
// The daemon holds the privileged credential; this is exactly IBM's
// arrangement for exporting nest counters to unprivileged users.
func NestMetrics(pmus []*nest.PMU, cred nest.Credential) []Metric {
	var out []Metric
	for _, pmu := range pmus {
		p := pmu
		m := p.Machine()
		lastCPU := (p.Socket()+1)*m.HWThreadsPerSocket() - 1
		for _, ev := range p.Events() {
			e := ev
			name := fmt.Sprintf("%s.cpu%d", e.PCPMetricName(), lastCPU)
			out = append(out, Metric{
				Name: name,
				Read: func(t simtime.Time) (uint64, error) {
					return p.Read(e, cred, t)
				},
			})
		}
	}
	return out
}

// NestMetricName builds the full per-socket metric name used by
// NestMetrics for event ev on the given socket of machine-like PMU p.
func NestMetricName(p *nest.PMU, ev nest.Event) string {
	lastCPU := (p.Socket()+1)*p.Machine().HWThreadsPerSocket() - 1
	return fmt.Sprintf("%s.cpu%d", ev.PCPMetricName(), lastCPU)
}
