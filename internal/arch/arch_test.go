package arch

import (
	"testing"

	"papimc/internal/units"
)

func TestMachinesValidate(t *testing.T) {
	for _, m := range []Machine{Summit(), Tellico(), Skylake(), Power10()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestPower10Geometry(t *testing.T) {
	m := Power10()
	if got := m.Socket.L3PerCoreShare(); got != 8*units.MiB {
		t.Errorf("Power10 per-core L3 share = %s, want 8 MiB", units.FormatBytes(got))
	}
	if m.Socket.MBAChannels != 16 {
		t.Errorf("Power10 channels = %d, want 16", m.Socket.MBAChannels)
	}
	// SMT8: 16 cores × 8 threads per socket.
	if got := m.HWThreadsPerSocket(); got != 128 {
		t.Errorf("Power10 threads/socket = %d, want 128", got)
	}
	if s := m.SocketForCPU(127); s != 0 {
		t.Errorf("cpu127 -> socket %d, want 0", s)
	}
	if s := m.SocketForCPU(128); s != 1 {
		t.Errorf("cpu128 -> socket %d, want 1", s)
	}
	if m.PrivilegedNestAccess {
		t.Error("Power10 users should still go through PCP")
	}
}

func TestSummitGeometry(t *testing.T) {
	m := Summit()
	s := m.Socket
	if s.Cores != 22 || s.UsableCores != 21 {
		t.Errorf("Summit cores = %d/%d, want 22/21", s.Cores, s.UsableCores)
	}
	if s.CorePairs != 11 {
		t.Errorf("Summit core pairs = %d, want 11", s.CorePairs)
	}
	// "a total of 110 MB of L3 cache" per socket.
	if got := s.L3Total(); got != 110*units.MiB {
		t.Errorf("Summit L3 total = %s, want 110 MiB", units.FormatBytes(got))
	}
	// "each core can use up to 5MB of L3 cache without creating contention"
	if got := s.L3PerCoreShare(); got != 5*units.MiB {
		t.Errorf("Summit per-core L3 share = %s, want 5 MiB", units.FormatBytes(got))
	}
	if s.MBAChannels != 8 {
		t.Errorf("Summit MBA channels = %d, want 8", s.MBAChannels)
	}
	if m.PrivilegedNestAccess {
		t.Error("Summit must not expose privileged nest access")
	}
	if m.GPUsPerSocket != 3 || m.SocketsPerNode != 2 {
		t.Errorf("Summit GPU/socket layout wrong: %d GPUs/socket, %d sockets", m.GPUsPerSocket, m.SocketsPerNode)
	}
}

func TestTellicoGeometry(t *testing.T) {
	m := Tellico()
	if m.Socket.Cores != 16 {
		t.Errorf("Tellico cores = %d, want 16", m.Socket.Cores)
	}
	if !m.PrivilegedNestAccess {
		t.Error("Tellico must expose privileged nest access")
	}
	if got := m.Socket.L3PerCoreShare(); got != 5*units.MiB {
		t.Errorf("Tellico per-core L3 share = %s, want 5 MiB", units.FormatBytes(got))
	}
}

func TestSkylakeLineSize(t *testing.T) {
	m := Skylake()
	if m.Socket.L1D.LineBytes != 64 {
		t.Errorf("Skylake line = %d, want 64", m.Socket.L1D.LineBytes)
	}
	if m.Arch != "Intel Skylake" {
		t.Errorf("Skylake arch label = %q", m.Arch)
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{Name: "t", SizeBytes: 32 * units.KiB, LineBytes: 128, Assoc: 8}
	if got := g.Sets(); got != 32 {
		t.Errorf("Sets = %d, want 32", got)
	}
}

func TestCacheGeomValidate(t *testing.T) {
	bad := CacheGeom{Name: "bad", SizeBytes: 1000, LineBytes: 128, Assoc: 8}
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for non-multiple size")
	}
	zero := CacheGeom{}
	if err := zero.Validate(); err == nil {
		t.Error("expected validation error for zero geometry")
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	m := Summit()
	m.Socket.UsableCores = 23
	if err := m.Validate(); err == nil {
		t.Error("expected error for usable > physical cores")
	}
	m = Summit()
	m.Socket.CorePairs = 10
	if err := m.Validate(); err == nil {
		t.Error("expected error for inconsistent core pairs")
	}
	m = Summit()
	m.Socket.MBAChannels = 0
	if err := m.Validate(); err == nil {
		t.Error("expected error for zero MBA channels")
	}
	m = Summit()
	m.Socket.MemBandwidth = 0
	if err := m.Validate(); err == nil {
		t.Error("expected error for zero bandwidth")
	}
}

func TestNoiseDefaultsPresent(t *testing.T) {
	for _, m := range []Machine{Summit(), Tellico()} {
		n := m.Noise
		if n.BackgroundBytesPerSec <= 0 || n.MeasurementOverheadBytes <= 0 ||
			n.CounterPostLatency <= 0 || n.PMCDSampleInterval <= 0 {
			t.Errorf("%s noise params incomplete: %+v", m.Name, n)
		}
	}
}
