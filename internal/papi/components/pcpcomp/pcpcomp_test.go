package pcpcomp

import (
	"errors"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/nest"
	"papimc/internal/papi"
	"papimc/internal/papi/components/perfuncore"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// rig builds a Summit socket with an ideal controller, a PMCD daemon
// exporting its nest counters, and a connected component.
func rig(t *testing.T) (*Component, *mem.Controller, *simtime.Clock, *nest.PMU) {
	t.Helper()
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := pcp.NewDaemon(clock, simtime.Millisecond, pcp.NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	comp, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return comp, ctl, clock, pmu
}

func TestQualifierMapping(t *testing.T) {
	if got := nativeToMetric("a.b.value:cpu87"); got != "a.b.value.cpu87" {
		t.Errorf("nativeToMetric = %q", got)
	}
	if got := nativeToMetric("a.b.value"); got != "a.b.value" {
		t.Errorf("nativeToMetric plain = %q", got)
	}
	if got := metricToNative("a.b.value.cpu87"); got != "a.b.value:cpu87" {
		t.Errorf("metricToNative = %q", got)
	}
	if got := metricToNative("a.b.value"); got != "a.b.value" {
		t.Errorf("metricToNative plain = %q", got)
	}
}

func TestListAndDescribeTableINames(t *testing.T) {
	comp, _, _, _ := rig(t)
	events, err := comp.ListEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 16 {
		t.Fatalf("ListEvents len = %d, want 16", len(events))
	}
	// Table I, Summit row: the user-facing spelling with :cpu87.
	name := "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87"
	found := false
	for _, e := range events {
		if e.Name == name {
			found = true
			if e.Units != "bytes" {
				t.Errorf("units = %q", e.Units)
			}
		}
	}
	if !found {
		t.Fatalf("Table I name %q not listed", name)
	}
	if _, err := comp.Describe(name); err != nil {
		t.Errorf("Describe(%q): %v", name, err)
	}
	if _, err := comp.Describe("perfevent.no.such:cpu87"); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("unknown event err = %v", err)
	}
}

func TestCountersSeeTrafficThroughDaemon(t *testing.T) {
	comp, ctl, clock, _ := rig(t)
	ctrs, err := comp.NewCounters([]string{
		"perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrs.Close()
	ctl.AddTraffic(true, 0, 64*8, 0, 0)   // one tx per channel
	ctl.AddTraffic(false, 0, 64*16, 0, 0) // two tx per channel
	clock.Advance(10 * simtime.Millisecond)
	vals, err := ctrs.ReadAt(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 64 || vals[1] != 128 {
		t.Errorf("values = %v, want [64 128]", vals)
	}
}

// TestPCPAgreesWithDirect is the paper's central claim in miniature:
// the same hardware activity measured through the PCP component and
// through perf_uncore yields identical totals (on an ideal, noise-free
// counter; with noise they agree statistically, which the benchmark
// harness demonstrates).
func TestPCPAgreesWithDirect(t *testing.T) {
	comp, ctl, clock, pmu := rig(t)
	lib := papi.NewLibrary(clock)
	if err := lib.Register(comp); err != nil {
		t.Fatal(err)
	}
	direct := perfuncore.New([]*nest.PMU{pmu}, nest.RootCredential())
	if err := lib.Register(direct); err != nil {
		t.Fatal(err)
	}

	mkSet := func(via string) *papi.EventSet {
		es := lib.NewEventSet()
		for ch := 0; ch < 8; ch++ {
			ev := nest.Event{Channel: ch}
			var name string
			if via == "pcp" {
				name = "pcp:::" + ev.PCPMetricName() + ":cpu87"
			} else {
				name = ev.PerfUncoreName(0)
			}
			if err := es.Add(name); err != nil {
				t.Fatal(err)
			}
		}
		return es
	}
	pcpSet, directSet := mkSet("pcp"), mkSet("direct")
	if err := pcpSet.Start(); err != nil {
		t.Fatal(err)
	}
	if err := directSet.Start(); err != nil {
		t.Fatal(err)
	}

	// The "kernel": 1 MiB of reads spread over simulated time.
	ctl.AddTraffic(true, 0, 1<<20, clock.Now(), clock.Now())
	clock.Advance(50 * simtime.Millisecond) // beyond the PCP sampling interval

	sum := func(vs []uint64) (s uint64) {
		for _, v := range vs {
			s += v
		}
		return
	}
	pv, err := pcpSet.Stop()
	if err != nil {
		t.Fatal(err)
	}
	dv, err := directSet.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if sum(pv) != 1<<20 || sum(dv) != 1<<20 {
		t.Errorf("pcp = %d, direct = %d, want both %d", sum(pv), sum(dv), 1<<20)
	}
}

// An unprivileged Summit user can measure via PCP even though direct
// access is denied — the motivation for the component.
func TestPCPWorksWhereDirectIsDenied(t *testing.T) {
	comp, _, clock, pmu := rig(t)
	lib := papi.NewLibrary(clock)
	userCred := nest.CredentialFor(arch.Summit()) // unprivileged
	if err := lib.Register(perfuncore.New([]*nest.PMU{pmu}, userCred)); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(comp); err != nil {
		t.Fatal(err)
	}
	direct := lib.NewEventSet()
	if err := direct.Add("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"); err != nil {
		t.Fatal(err)
	}
	if err := direct.Start(); !errors.Is(err, papi.ErrPermission) {
		t.Fatalf("direct start err = %v, want ErrPermission", err)
	}
	viaPCP := lib.NewEventSet()
	if err := viaPCP.Add("pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87"); err != nil {
		t.Fatal(err)
	}
	if err := viaPCP.Start(); err != nil {
		t.Fatalf("PCP route failed for unprivileged user: %v", err)
	}
	if _, err := viaPCP.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCountersUnknownMetric(t *testing.T) {
	comp, _, _, _ := rig(t)
	if _, err := comp.NewCounters([]string{"nope.nope:cpu87"}); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("err = %v, want ErrNoEvent", err)
	}
}
