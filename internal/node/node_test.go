package node

import (
	"errors"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/model"
	"papimc/internal/papi"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

func summitTestbed(t *testing.T, noise bool) *Testbed {
	t.Helper()
	tb, err := NewTestbed(arch.Summit(), 1, Options{Seed: 1, DisableNoise: !noise})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })
	return tb
}

func TestNodeComposition(t *testing.T) {
	tb := summitTestbed(t, false)
	n := tb.Nodes[0]
	if len(n.Mem) != 2 || len(n.PMUs) != 2 {
		t.Errorf("sockets: %d controllers, %d PMUs", len(n.Mem), len(n.PMUs))
	}
	if got := len(n.AllGPUs()); got != 6 {
		t.Errorf("GPUs = %d, want 6", got)
	}
	if n.NIC == nil || len(n.NIC.Ports) != 2 {
		t.Error("NIC missing or wrong port count")
	}
}

func TestTellicoNodeHasNoGPUsOrNIC(t *testing.T) {
	tb, err := NewTestbed(arch.Tellico(), 1, Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.Nodes[0].AllGPUs()) != 0 || tb.Nodes[0].NIC != nil {
		t.Error("Tellico should have no GPUs or NIC")
	}
}

func TestLibraryComponentsOnSummit(t *testing.T) {
	tb := summitTestbed(t, false)
	lib, cleanup, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	for _, name := range []string{"perf_uncore", "pcp", "derived", "nvml", "infiniband"} {
		if _, err := lib.Component(name); err != nil {
			t.Errorf("component %s missing: %v", name, err)
		}
	}
	events, err := lib.AllEvents()
	if err != nil {
		t.Fatal(err)
	}
	// 32 perf_uncore (2 sockets) + 32 pcp (both sockets exported by
	// PMCD) + 4 derived mem.* + 6 nvml + 4 infiniband.
	if len(events) != 78 {
		t.Errorf("AllEvents = %d, want 78", len(events))
	}
	// The derived component's curated metrics appear in the listing with
	// instant (rate) semantics.
	var readBW *papi.EventInfo
	for i := range events {
		if events[i].Name == "derived:::mem.read_bw" {
			readBW = &events[i]
		}
	}
	if readBW == nil {
		t.Fatal("derived:::mem.read_bw not listed")
	}
	if !readBW.Instant {
		t.Error("mem.read_bw should have Instant (rate) semantics")
	}
	if readBW.Units != "bytes/s" {
		t.Errorf("mem.read_bw units = %q, want bytes/s", readBW.Units)
	}
	if info, err := lib.DescribeEvent("derived:::mem.total_bw"); err != nil || !info.Instant {
		t.Errorf("DescribeEvent(mem.total_bw) = %+v, %v", info, err)
	}
}

// TestDerivedEventsMixWithRaw: an EventSet carrying a raw PCP counter,
// a curated derived metric, and an ad-hoc derived expression reads all
// three through one profile-style lifecycle, and the derived bandwidth
// is visibly nonzero while traffic plays.
func TestDerivedEventsMixWithRaw(t *testing.T) {
	tb := summitTestbed(t, false)
	lib, cleanup, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	es := lib.NewEventSet()
	if err := es.AddAll(
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"derived:::mem.read_bw",
		"derived:::sum(delta(nest.mba*.read_bytes))",
	); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	tr := model.Traffic{ReadBytes: 1 << 22, Duration: 40 * simtime.Millisecond}
	tb.Nodes[0].Play(0, tr, 8)
	tb.Clock.Advance(20 * simtime.Millisecond)
	mid, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if mid[1] == 0 {
		t.Error("mem.read_bw = 0 during a read burst")
	}
	if mid[2] == 0 {
		t.Error("delta of read counters = 0 during a read burst")
	}
	if _, err := es.Stop(); err != nil {
		t.Fatal(err)
	}
	// Unknown derived expressions fail at Add time with ErrNoEvent.
	bad := lib.NewEventSet()
	if err := bad.Add("derived:::sum(rate(nest.mba*.bogus))"); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("bad derived event err = %v, want ErrNoEvent", err)
	}
	if err := bad.Add("derived:::nest.mba*.read_bytes"); !errors.Is(err, papi.ErrNoEvent) {
		t.Errorf("vector derived event err = %v, want ErrNoEvent", err)
	}
}

// On Summit the perf_uncore route must fail while PCP succeeds; on
// Tellico both work — the access-control story of the paper.
func TestRoutePermissions(t *testing.T) {
	summit := summitTestbed(t, false)
	lib, _, err := summit.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	direct := lib.NewEventSet()
	if err := direct.AddAll(summit.NestEventNames(Direct)...); err != nil {
		t.Fatal(err)
	}
	if err := direct.Start(); !errors.Is(err, papi.ErrPermission) {
		t.Errorf("Summit direct route err = %v, want ErrPermission", err)
	}
	viaPCP := lib.NewEventSet()
	if err := viaPCP.AddAll(summit.NestEventNames(ViaPCP)...); err != nil {
		t.Fatal(err)
	}
	if err := viaPCP.Start(); err != nil {
		t.Fatalf("Summit PCP route failed: %v", err)
	}
	viaPCP.Stop()

	tellico, err := NewTestbed(arch.Tellico(), 1, Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tellico.Close()
	tlib, _, err := tellico.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	tdirect := tlib.NewEventSet()
	if err := tdirect.AddAll(tellico.NestEventNames(Direct)...); err != nil {
		t.Fatal(err)
	}
	if err := tdirect.Start(); err != nil {
		t.Fatalf("Tellico direct route failed: %v", err)
	}
	tdirect.Stop()
}

func TestNestEventNamesSpelling(t *testing.T) {
	tb := summitTestbed(t, false)
	pcpNames := tb.NestEventNames(ViaPCP)
	if pcpNames[0] != "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87" {
		t.Errorf("PCP spelling = %q", pcpNames[0])
	}
	directNames := tb.NestEventNames(Direct)
	if directNames[0] != "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0" {
		t.Errorf("direct spelling = %q", directNames[0])
	}
	if len(pcpNames) != 16 || len(directNames) != 16 {
		t.Error("wrong event counts")
	}
}

// Playing model traffic must be fully visible to a PCP event set after
// the clock advances past the sampling interval.
func TestPlayMeasuredThroughPAPI(t *testing.T) {
	tb := summitTestbed(t, false)
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	es := lib.NewEventSet()
	if err := es.AddAll(tb.NestEventNames(ViaPCP)...); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	tr := model.Traffic{ReadBytes: 1 << 22, WriteBytes: 1 << 21, Duration: 20 * simtime.Millisecond}
	tb.Nodes[0].Play(0, tr, 8)
	tb.Clock.Advance(50 * simtime.Millisecond)
	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	for i, v := range vals {
		if i%2 == 0 {
			reads += v
		} else {
			writes += v
		}
	}
	if reads != 1<<22 {
		t.Errorf("measured reads = %d, want %d", reads, 1<<22)
	}
	if writes != 1<<21 {
		t.Errorf("measured writes = %d, want %d", writes, 1<<21)
	}
}

func TestPlayAdvancesClock(t *testing.T) {
	tb := summitTestbed(t, false)
	before := tb.Clock.Now()
	tb.Nodes[0].Play(0, model.Traffic{ReadBytes: 64, Duration: simtime.Second}, 4)
	if tb.Clock.Now().Sub(before) != simtime.Second {
		t.Errorf("clock advanced by %v, want 1s", tb.Clock.Now().Sub(before))
	}
}

func TestNewTestbedValidation(t *testing.T) {
	if _, err := NewTestbed(arch.Summit(), 0, Options{}); err == nil {
		t.Error("expected error for zero nodes")
	}
}

// TestProxyTierServesSameValues: a PAPI measurement taken through the
// pmproxy tier matches one taken straight from the daemon, and the
// proxy's coalescing counters show the fan-out win.
func TestProxyTierServesSameValues(t *testing.T) {
	tb := summitTestbed(t, false)
	proxy, addr, err := tb.StartProxy()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.StartProxy(); err == nil {
		t.Error("second StartProxy should fail")
	}
	tb.Nodes[0].Play(0, model.Traffic{ReadBytes: 1 << 20, Duration: 50 * simtime.Millisecond}, 4)

	direct, err := pcp.Dial(tb.PMCDAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	viaProxy, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer viaProxy.Close()

	pmids := []uint32{1, 2, 3, 4}
	want, err := direct.Fetch(pmids)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := viaProxy.Fetch(pmids)
		if err != nil {
			t.Fatal(err)
		}
		if got.Timestamp != want.Timestamp {
			t.Fatalf("timestamp %d != direct %d", got.Timestamp, want.Timestamp)
		}
		for j := range pmids {
			if got.Values[j] != want.Values[j] {
				t.Fatalf("value %d: %+v != %+v", j, got.Values[j], want.Values[j])
			}
		}
	}
	st := proxy.Stats()
	if st.ClientFetches != 20 || st.UpstreamFetches != 1 {
		t.Errorf("stats = %+v: want 20 client fetches coalesced onto 1 upstream", st)
	}
}
