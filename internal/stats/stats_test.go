package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptySamples(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil) should return ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should return ErrEmpty")
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Error("Mean(nil) should return ErrEmpty")
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Error("Median(nil) should return ErrEmpty")
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Error("StdDev(nil) should return ErrEmpty")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should return ErrEmpty")
	}
}

func TestBasicStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if v, _ := Min(xs); v != 1 {
		t.Errorf("Min = %v, want 1", v)
	}
	if v, _ := Max(xs); v != 4 {
		t.Errorf("Max = %v, want 4", v)
	}
	if v, _ := Mean(xs); v != 2.5 {
		t.Errorf("Mean = %v, want 2.5", v)
	}
	if v, _ := Median(xs); v != 2.5 {
		t.Errorf("Median = %v, want 2.5", v)
	}
}

func TestMedianOdd(t *testing.T) {
	if v, _ := Median([]float64{9, 1, 5}); v != 5 {
		t.Errorf("Median = %v, want 5", v)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestStdDev(t *testing.T) {
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, _ := StdDev(xs)
	if math.Abs(v-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v, want ~2.138", v)
	}
	if v, _ := StdDev([]float64{42}); v != 0 {
		t.Errorf("StdDev of singleton = %v, want 0", v)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 || s.Median != 2 {
		t.Errorf("unexpected summary %+v", s)
	}
}

func TestAdaptiveRepetitions(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 514},
		{100, 489},  // 514 - 24.6 = 489.4 -> 489
		{1000, 268}, // 514 - 246 = 268
		{2047, 10},  // 514 - 503.562 = 10.438 -> 10
		{2048, 10},
		{100000, 10},
	}
	for _, c := range cases {
		if got := AdaptiveRepetitions(c.n); got != c.want {
			t.Errorf("AdaptiveRepetitions(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Property: repetitions are monotonically non-increasing in N and >= 10.
func TestAdaptiveRepetitionsProperties(t *testing.T) {
	prev := AdaptiveRepetitions(0)
	for n := 1; n < 4096; n++ {
		r := AdaptiveRepetitions(n)
		if r > prev {
			t.Fatalf("repetitions increased from %d to %d at N=%d", prev, r, n)
		}
		if r < 10 {
			t.Fatalf("repetitions %d < 10 at N=%d", r, n)
		}
		prev = r
	}
}

func TestRelativeError(t *testing.T) {
	if v := RelativeError(110, 100); math.Abs(v-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v, want 0.1", v)
	}
	if v := RelativeError(90, 100); math.Abs(v-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v, want 0.1", v)
	}
}

// Property: Min <= Median <= Max, Min <= Mean <= Max for any sample.
func TestOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Bound magnitudes so the mean's running sum cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				clean = append(clean, x/1e10)
			}
		}
		if len(clean) == 0 {
			return true
		}
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		med, _ := Median(clean)
		mean, _ := Mean(clean)
		// Tolerance is relative to the sample's magnitude: summation
		// rounding can push the mean slightly outside [min,max].
		tol := 1e-12 * math.Max(math.Abs(mn), math.Abs(mx)) * float64(len(clean))
		return mn <= med && med <= mx && mn <= mean+tol && mean <= mx+tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Median equals the middle of the sorted sample.
func TestMedianMatchesSort(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		got, _ := Median(clean)
		cp := append([]float64(nil), clean...)
		sort.Float64s(cp)
		var want float64
		if n := len(cp); n%2 == 1 {
			want = cp[n/2]
		} else {
			want = (cp[n/2-1] + cp[n/2]) / 2
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
