package metricql

import (
	"strconv"
	"strings"
)

type nodeKind int

const (
	nodeNum nodeKind = iota
	nodeMetric
	nodeUnary
	nodeBinary
	nodeCall
)

// node is one AST vertex. Parse produces the pure syntactic fields;
// Engine.Query fills the bound state (sel, key, hist) in place.
type node struct {
	kind    nodeKind
	num     float64 // nodeNum
	pattern string  // nodeMetric: name or glob pattern
	op      byte    // nodeUnary ('-'), nodeBinary ('+','-','*','/')
	fn      string  // nodeCall
	window  int64   // nodeCall with a window argument, nanoseconds
	by      string  // nodeCall aggregate with a "by (label)" clause
	args    []*node // nodeUnary/nodeBinary operands, nodeCall arguments

	// Bound state (set by Engine.Query):
	sel  []selection // nodeMetric: expanded instances
	key  string      // canonical form, the memoization key
	hist *history    // nodeCall with a window: per-node sample ring
}

// funcSpec describes one callable function.
type funcSpec struct {
	metricArg bool // argument must be a plain metric pattern (rate, delta)
	window    bool // takes a trailing duration argument (avg_over, max_over)
	grouping  bool // aggregate: accepts a trailing "by (node)" clause
}

var funcs = map[string]funcSpec{
	"rate":     {metricArg: true},
	"delta":    {metricArg: true},
	"sum":      {grouping: true},
	"avg":      {grouping: true},
	"min":      {grouping: true},
	"max":      {grouping: true},
	"avg_over": {window: true},
	"max_over": {window: true},
	"min_over": {window: true},
	"rate_over": {
		metricArg: true,
		window:    true,
	},
}

// Expr is a parsed expression. An Expr is immutable after Parse; binding
// to an Engine happens on the per-Engine Query copy.
type Expr struct {
	root *node
	src  string
}

// Parse compiles src into an expression AST. The returned error is a
// *SyntaxError on malformed input; Parse never panics (it is fuzzed).
func Parse(src string) (*Expr, error) {
	if len(src) > maxExprBytes {
		return nil, errAt(0, "expression too long (%d bytes, max %d)", len(src), maxExprBytes)
	}
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	root, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "unexpected %s after expression", p.tok.kind)
	}
	return &Expr{root: root, src: src}, nil
}

// String returns the canonical fully-parenthesized form of the
// expression. Canonical forms reparse to themselves (asserted by the
// fuzz target) and serve as memoization keys.
func (e *Expr) String() string {
	var b strings.Builder
	writeNode(&b, e.root)
	return b.String()
}

// Instant reports whether the expression's value is an instantaneous
// level rather than a monotonic counter: true if any subexpression
// applies rate, delta, or a windowed aggregate. The derived PAPI
// component uses this to pick papi.Instant semantics.
func (e *Expr) Instant() bool {
	return instantNode(e.root)
}

func instantNode(n *node) bool {
	if n.kind == nodeCall {
		switch n.fn {
		case "rate", "delta", "avg_over", "max_over", "min_over", "rate_over":
			return true
		}
	}
	for _, a := range n.args {
		if instantNode(a) {
			return true
		}
	}
	return false
}

func writeNode(b *strings.Builder, n *node) {
	switch n.kind {
	case nodeNum:
		b.WriteString(strconv.FormatFloat(n.num, 'g', -1, 64))
	case nodeMetric:
		b.WriteString(n.pattern)
	case nodeUnary:
		b.WriteString("(-")
		writeNode(b, n.args[0])
		b.WriteByte(')')
	case nodeBinary:
		b.WriteByte('(')
		writeNode(b, n.args[0])
		b.WriteByte(' ')
		b.WriteByte(n.op)
		b.WriteByte(' ')
		writeNode(b, n.args[1])
		b.WriteByte(')')
	case nodeCall:
		b.WriteString(n.fn)
		b.WriteByte('(')
		writeNode(b, n.args[0])
		if n.window != 0 {
			b.WriteString(", ")
			b.WriteString(strconv.FormatInt(n.window, 10))
			b.WriteString("ns")
		}
		b.WriteByte(')')
		if n.by != "" {
			b.WriteString(" by (")
			b.WriteString(n.by)
			b.WriteByte(')')
		}
	}
}

type parser struct {
	lex   lexer
	tok   token
	depth int
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, errAt(p.tok.pos, "expected %s, found %s", k, p.tok.kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// parseExpr parses sum-precedence: prod (('+'|'-') prod)*.
func (p *parser) parseExpr(depth int) (*node, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression too deeply nested")
	}
	left, err := p.parseProd(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := byte('+')
		if p.tok.kind == tokMinus {
			op = '-'
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseProd(depth + 1)
		if err != nil {
			return nil, err
		}
		left = &node{kind: nodeBinary, op: op, args: []*node{left, right}}
	}
	return left, nil
}

// parseProd parses product-precedence: unary (('*'|'/') unary)*.
func (p *parser) parseProd(depth int) (*node, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression too deeply nested")
	}
	left, err := p.parseUnary(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := byte('*')
		if p.tok.kind == tokSlash {
			op = '/'
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		left = &node{kind: nodeBinary, op: op, args: []*node{left, right}}
	}
	return left, nil
}

func (p *parser) parseUnary(depth int) (*node, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression too deeply nested")
	}
	if p.tok.kind == tokMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		// Fold negation of a literal so "-3" canonicalizes to a number.
		if arg.kind == nodeNum {
			return &node{kind: nodeNum, num: -arg.num}, nil
		}
		return &node{kind: nodeUnary, op: '-', args: []*node{arg}}, nil
	}
	return p.parseAtom(depth + 1)
}

func (p *parser) parseAtom(depth int) (*node, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression too deeply nested")
	}
	switch p.tok.kind {
	case tokNumber:
		n := &node{kind: nodeNum, num: p.tok.num}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokName:
		name := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			return p.parseCall(name, depth+1)
		}
		return &node{kind: nodeMetric, pattern: name.text}, nil
	case tokDuration:
		return nil, errAt(p.tok.pos, "duration literal %q only valid as a window argument", p.tok.text)
	}
	return nil, errAt(p.tok.pos, "expected expression, found %s", p.tok.kind)
}

func (p *parser) parseCall(name token, depth int) (*node, error) {
	spec, ok := funcs[name.text]
	if !ok {
		return nil, errAt(name.pos, "unknown function %q", name.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr(depth + 1)
	if err != nil {
		return nil, err
	}
	n := &node{kind: nodeCall, fn: name.text, args: []*node{arg}}
	if spec.metricArg && arg.kind != nodeMetric {
		return nil, errAt(name.pos, "%s() requires a metric name or pattern argument", name.text)
	}
	if spec.window {
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		if p.tok.kind != tokDuration {
			return nil, errAt(p.tok.pos, "%s() window must be a duration (e.g. 500ms), found %s", name.text, p.tok.kind)
		}
		if p.tok.dur <= 0 {
			return nil, errAt(p.tok.pos, "%s() window must be positive", name.text)
		}
		n.window = p.tok.dur
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if p.tok.kind == tokComma {
		return nil, errAt(p.tok.pos, "%s() takes exactly one argument", name.text)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	// "by" is a contextual keyword: it only means grouping immediately
	// after an aggregate's closing paren, so metrics named "by" still work.
	if spec.grouping && p.tok.kind == tokName && p.tok.text == "by" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		lbl, err := p.expect(tokName)
		if err != nil {
			return nil, err
		}
		if lbl.text != "node" {
			return nil, errAt(lbl.pos, "unknown grouping label %q: only the node label exists", lbl.text)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		n.by = lbl.text
	}
	return n, nil
}
