package pcp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"papimc/internal/simtime"
)

// startPipelineDaemon serves a daemon of n self-checking timestamp
// metrics over TCP with the clock advanced past one sample interval.
func startPipelineDaemon(t *testing.T, n int) (*Daemon, *simtime.Clock, string) {
	t.Helper()
	clock := simtime.NewClock()
	var ms []Metric
	for i := 0; i < n; i++ {
		ms = append(ms, tsMetric(fmt.Sprintf("pipe.metric.%02d", i)))
	}
	d, err := NewDaemon(clock, simtime.Millisecond, ms)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := d.StartOn(ln)
	t.Cleanup(func() { d.Close() })
	clock.Advance(2 * simtime.Millisecond)
	return d, clock, addr
}

// startV1OnlyServer hand-rolls a pre-Version2 daemon: correct magic
// handshake and lockstep serving, but PDUVersionReq — like any unknown
// type — gets a PDUError. A negotiating client must fall back to
// Version1 against it.
func startV1OnlyServer(t *testing.T, names []NameEntry, res FetchResult) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				if err := ServerHandshake(br, bw); err != nil {
					return
				}
				for {
					typ, payload, err := ReadPDU(br)
					if err != nil {
						return
					}
					var respType uint8
					var resp []byte
					switch typ {
					case PDUNamesReq:
						respType, resp = PDUNamesResp, EncodeNamesResp(names)
					case PDUFetchReq:
						pmids, err := DecodeFetchReq(payload)
						if err != nil {
							respType, resp = PDUError, EncodeError(err.Error())
							break
						}
						out := res
						out.Values = make([]FetchValue, len(pmids))
						for i, id := range pmids {
							out.Values[i] = FetchValue{PMID: id, Status: StatusOK, Value: uint64(res.Timestamp)}
						}
						respType, resp = PDUFetchResp, EncodeFetchResp(out)
					default:
						respType, resp = PDUError, EncodeError(fmt.Sprintf("unknown PDU type %d", typ))
					}
					if err := WritePDU(bw, respType, resp); err != nil {
						return
					}
					if err := bw.Flush(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestVersionNegotiationMatrix covers every pairing of negotiating and
// older peers: new<->new lands on Version3 wide frames, a Version2-capped
// client gets tagged frames, while a capped (old) client against a new
// daemon and a new client against a v1-only daemon both fall back to
// Version1 lockstep — with results identical to the upgraded pairing's.
func TestVersionNegotiationMatrix(t *testing.T) {
	_, _, addr := startPipelineDaemon(t, 4)
	pmids := []uint32{1, 2, 3, 4}

	// New client, new daemon: Version3 pipelined wide frames.
	cNew, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cNew.Close()
	if v := cNew.Version(); v != Version3 {
		t.Fatalf("new<->new negotiated version %d, want %d", v, Version3)
	}
	namesNew, err := cNew.Names()
	if err != nil {
		t.Fatal(err)
	}
	resNew, err := cNew.Fetch(pmids)
	if err != nil {
		t.Fatal(err)
	}

	// Version2-capped client, new daemon: tagged frames, same answers.
	cV2, err := DialMax(addr, Version2)
	if err != nil {
		t.Fatal(err)
	}
	defer cV2.Close()
	if v := cV2.Version(); v != Version2 {
		t.Fatalf("v2-capped client negotiated version %d, want %d", v, Version2)
	}
	namesV2, err := cV2.Names()
	if err != nil {
		t.Fatal(err)
	}
	resV2, err := cV2.Fetch(pmids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(namesNew, namesV2) {
		t.Fatalf("namespaces differ across versions:\nv3: %v\nv2: %v", namesNew, namesV2)
	}
	if !reflect.DeepEqual(resNew, resV2) {
		t.Fatalf("fetch results differ across versions:\nv3: %+v\nv2: %+v", resNew, resV2)
	}

	// Old client (capped at Version1), new daemon: lockstep fallback.
	cOld, err := DialMax(addr, Version1)
	if err != nil {
		t.Fatal(err)
	}
	defer cOld.Close()
	if v := cOld.Version(); v != Version1 {
		t.Fatalf("old client negotiated version %d, want %d", v, Version1)
	}
	namesOld, err := cOld.Names()
	if err != nil {
		t.Fatal(err)
	}
	resOld, err := cOld.Fetch(pmids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(namesNew, namesOld) {
		t.Fatalf("namespaces differ across versions:\nv2: %v\nv1: %v", namesNew, namesOld)
	}
	if !reflect.DeepEqual(resNew, resOld) {
		t.Fatalf("fetch results differ across versions:\nv2: %+v\nv1: %+v", resNew, resOld)
	}

	// New client, v1-only daemon: the version probe gets a PDUError and
	// the client must settle on lockstep, not fail the connection.
	legacyNames := []NameEntry{{PMID: 1, Name: "legacy.a"}, {PMID: 2, Name: "legacy.b"}}
	legacyAddr := startV1OnlyServer(t, legacyNames, FetchResult{Timestamp: 77})
	cFall, err := Dial(legacyAddr)
	if err != nil {
		t.Fatalf("negotiating client failed against v1-only server: %v", err)
	}
	defer cFall.Close()
	if v := cFall.Version(); v != Version1 {
		t.Fatalf("fallback client at version %d, want %d", v, Version1)
	}
	cPinned, err := DialMax(legacyAddr, Version1)
	if err != nil {
		t.Fatal(err)
	}
	defer cPinned.Close()
	gotFall, err := cFall.Fetch([]uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	gotPinned, err := cPinned.Fetch([]uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFall, gotPinned) {
		t.Fatalf("fallback and pinned clients disagree:\nfallback: %+v\npinned: %+v", gotFall, gotPinned)
	}
	nFall, err := cFall.Names()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nFall, legacyNames) {
		t.Fatalf("fallback names = %v, want %v", nFall, legacyNames)
	}
}

// deadlineCountingConn counts SetDeadline syscalls so the lockstep
// deadline regression has a hard number: one per armed round trip, zero
// when no timeout is set.
type deadlineCountingConn struct {
	net.Conn
	deadlines atomic.Int64
}

func (c *deadlineCountingConn) SetDeadline(t time.Time) error {
	c.deadlines.Add(1)
	return c.Conn.SetDeadline(t)
}

// TestLockstepDeadlineSyscallCount pins the deadline-churn fix: a
// lockstep client with no timeout makes zero SetDeadline calls, and an
// armed client makes exactly one per round trip (the old code paid two
// — arm and clear — even when no timeout was ever set).
func TestLockstepDeadlineSyscallCount(t *testing.T) {
	_, _, addr := startPipelineDaemon(t, 2)
	dial := func() *deadlineCountingConn {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return &deadlineCountingConn{Conn: raw}
	}

	const rounds = 10
	noTimeout := dial()
	c1, err := NewClientConnMax(noTimeout, Version1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	for i := 0; i < rounds; i++ {
		if _, err := c1.Fetch([]uint32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := noTimeout.deadlines.Load(); n != 0 {
		t.Fatalf("client without timeout made %d SetDeadline calls, want 0", n)
	}

	armed := dial()
	c2, err := NewClientConnMax(armed, Version1)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetTimeout(5 * time.Second)
	for i := 0; i < rounds; i++ {
		if _, err := c2.Fetch([]uint32{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Edge-triggered arming: one SetDeadline per round trip, not two.
	if n := armed.deadlines.Load(); n != rounds {
		t.Fatalf("armed client made %d SetDeadline calls over %d round trips, want %d", n, rounds, rounds)
	}
	// Disarming clears the deadline once, then stays quiet.
	c2.SetTimeout(0)
	for i := 0; i < rounds; i++ {
		if _, err := c2.Fetch([]uint32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := armed.deadlines.Load(); n != rounds+1 {
		t.Fatalf("disarmed client at %d SetDeadline calls, want %d (one clearing call)", n, rounds+1)
	}

	// The pipelined client uses per-request timers, never the socket
	// deadline: zero SetDeadline calls even with a timeout armed.
	piped := dial()
	c3, err := NewClientConnMax(piped, MaxVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.SetTimeout(5 * time.Second)
	for i := 0; i < rounds; i++ {
		if _, err := c3.Fetch([]uint32{1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := piped.deadlines.Load(); n != 0 {
		t.Fatalf("pipelined client made %d SetDeadline calls, want 0", n)
	}
}

// TestPipelinedTimeoutKeepsConnectionUsable: a per-request deadline
// expiring must fail only that request — the connection, and requests
// issued after the timeout, keep working. (Lockstep documents the
// opposite: a timeout leaves the connection undefined.) The server here
// parks the first fetch, answers later ones immediately, and finally
// releases the parked response so the client's demux loop must discard
// an answer to an abandoned tag.
func TestPipelinedTimeoutKeepsConnectionUsable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		if err := ServerHandshake(br, bw); err != nil {
			return
		}
		typ, payload, err := ReadPDU(br)
		if err != nil || typ != PDUVersionReq {
			return
		}
		respType, resp, version := NegotiateVersionV(payload, nil)
		if version < Version3 {
			return
		}
		if WritePDU(bw, respType, resp) != nil || bw.Flush() != nil {
			return
		}
		var parkedTag, parkedTenant uint32
		parked := false
		answer := func(tag, tenant uint32) bool {
			body := EncodeFetchResp(FetchResult{Timestamp: 9, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 9}}})
			return WriteWidePDU(bw, PDUFetchResp, tag, tenant, body) == nil && bw.Flush() == nil
		}
		for {
			typ, tag, tenant, _, err := ReadWidePDUInto(br, nil)
			if err != nil {
				return
			}
			if typ != PDUFetchReq {
				continue
			}
			if !parked {
				parked, parkedTag, parkedTenant = true, tag, tenant // time this one out
				continue
			}
			// Release the stale parked answer first: the client abandoned
			// that tag, so its reader must discard it, then match this one.
			if !answer(parkedTag, parkedTenant) || !answer(tag, tenant) {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(80 * time.Millisecond)

	start := time.Now()
	_, err = c.Fetch([]uint32{1})
	if err == nil {
		t.Fatal("parked fetch succeeded, want timeout")
	}
	if !errors.Is(err, ErrRequestTimeout) || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrRequestTimeout wrapping os.ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline is not per-request", elapsed)
	}

	res, err := c.Fetch([]uint32{1})
	if err != nil {
		t.Fatalf("fetch after a timed-out request failed: %v — connection must stay usable", err)
	}
	if len(res.Values) != 1 || res.Values[0].Value != 9 {
		t.Fatalf("post-timeout fetch got %+v", res)
	}
}

// TestPipelineConcurrentStress is the wire path's -race gate: 64
// goroutines share ONE pipelined client, interleaving Fetch and
// FetchBatch, while the daemon concurrently registers metrics and the
// clock advances. The timestamp metric is the lockstep oracle in
// self-checking form — exactly what a lockstep client would verify, but
// checkable per response: every OK value equals its result's timestamp,
// a batch's sets share one timestamp (the single-snapshot guarantee),
// and per-goroutine timestamps never go backwards.
func TestPipelineConcurrentStress(t *testing.T) {
	d, clock, addr := startPipelineDaemon(t, 8)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() < Version2 {
		t.Fatalf("negotiated version %d, want pipelined", c.Version())
	}

	const goroutines = 64
	const iters = 60
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			clock.Advance(250 * simtime.Microsecond)
			if i%10 == 0 {
				_ = d.Register(tsMetric(fmt.Sprintf("pipe.late.%04d", i)))
			}
		}
	}()
	go func() { // idle half the aux budget so Register bursts interleave
		defer aux.Done()
		<-stop
	}()

	check := func(res FetchResult, pmids []uint32) error {
		if len(res.Values) != len(pmids) {
			return fmt.Errorf("%d values for %d pmids", len(res.Values), len(pmids))
		}
		for i, v := range res.Values {
			if v.PMID != pmids[i] {
				return fmt.Errorf("value %d has pmid %d, want %d", i, v.PMID, pmids[i])
			}
			if v.Status == StatusOK && v.Value != uint64(res.Timestamp) {
				return fmt.Errorf("torn snapshot: value %d = %d at timestamp %d", i, v.Value, res.Timestamp)
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pmids := []uint32{1, uint32(g%8 + 1), 3}
			sets := [][]uint32{{1, 2}, pmids, {8}}
			var lastTS int64
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					res, err := c.Fetch(pmids)
					if err != nil {
						errCh <- fmt.Errorf("goroutine %d fetch %d: %w", g, i, err)
						return
					}
					if err := check(res, pmids); err != nil {
						errCh <- fmt.Errorf("goroutine %d fetch %d: %w", g, i, err)
						return
					}
					if res.Timestamp < lastTS {
						errCh <- fmt.Errorf("goroutine %d: timestamp went backwards %d -> %d", g, lastTS, res.Timestamp)
						return
					}
					lastTS = res.Timestamp
				} else {
					out, err := c.FetchBatch(sets)
					if err != nil {
						errCh <- fmt.Errorf("goroutine %d batch %d: %w", g, i, err)
						return
					}
					if len(out) != len(sets) {
						errCh <- fmt.Errorf("goroutine %d batch %d: %d results for %d sets", g, i, len(out), len(sets))
						return
					}
					for si, res := range out {
						if res.Timestamp != out[0].Timestamp {
							errCh <- fmt.Errorf("goroutine %d batch %d: set %d at ts %d, set 0 at %d — batch not one snapshot",
								g, i, si, res.Timestamp, out[0].Timestamp)
							return
						}
						if err := check(res, sets[si]); err != nil {
							errCh <- fmt.Errorf("goroutine %d batch %d set %d: %w", g, i, si, err)
							return
						}
					}
					if out[0].Timestamp < lastTS {
						errCh <- fmt.Errorf("goroutine %d: batch timestamp went backwards %d -> %d", g, lastTS, out[0].Timestamp)
						return
					}
					lastTS = out[0].Timestamp
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
