package pmproxy

import (
	"sync"
	"testing"
)

// TestShardDistribution: distinct pmid-sets must land across many of the
// cache shards (the point of sharding is that they never contend on one
// lock), and the total entry count must equal the number of distinct
// request encodings.
func TestShardDistribution(t *testing.T) {
	_, _, _, p, _ := rig(t, nil)
	const sets = 48
	for i := 0; i < sets; i++ {
		// Distinct pmid-sets; unknown pmids still produce a valid result
		// (per-value NoSuchPMID status), which is all the cache needs.
		if _, err := p.Fetch([]uint32{uint32(i + 1), uint32(i + 100)}); err != nil {
			t.Fatal(err)
		}
	}
	total, occupied := 0, 0
	for i := range p.shards {
		p.shards[i].mu.Lock()
		n := len(p.shards[i].m)
		p.shards[i].mu.Unlock()
		total += n
		if n > 0 {
			occupied++
		}
	}
	if total != sets {
		t.Errorf("cache holds %d entries, want %d", total, sets)
	}
	// FNV-1a over the encoded requests should spread 48 keys over most of
	// the 16 shards; a heavily skewed hash would defeat the sharding.
	if occupied < numShards/2 {
		t.Errorf("only %d of %d shards occupied for %d distinct sets", occupied, numShards, sets)
	}
	if st := p.Stats(); st.UpstreamFetches != sets || st.CoalescedHits != 0 {
		t.Errorf("stats = %+v, want %d upstream fetches and 0 hits", st, sets)
	}
}

// TestStatsExactUnderConcurrency: the lock-free fast path must not lose
// or double-count. With a frozen clock the coalescing counts are exactly
// predictable; with the clock advancing concurrently the split between
// hits and upstream fetches is racy but the counters must still balance
// to the fetch count exactly.
func TestStatsExactUnderConcurrency(t *testing.T) {
	_, clock, _, p, _ := rig(t, nil)
	const goroutines, per = 8, 40
	hammer := func() {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := p.Fetch([]uint32{1, 2}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: frozen clock — every fetch after the first is a hit.
	hammer()
	st := p.Stats()
	if st.ClientFetches != goroutines*per || st.UpstreamFetches != 1 ||
		st.CoalescedHits != goroutines*per-1 {
		t.Errorf("frozen-clock stats = %+v, want %d fetches, 1 upstream, %d hits",
			st, goroutines*per, goroutines*per-1)
	}

	// Phase 2: clock advancing concurrently forces refreshes to race
	// with hits. The hit/upstream split depends on timing, but the
	// accounting must stay exact: each fetch increments exactly one of
	// the outcome counters.
	stop := make(chan struct{})
	var adv sync.WaitGroup
	adv.Add(1)
	go func() {
		defer adv.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(sampleInterval / 4)
			}
		}
	}()
	hammer()
	close(stop)
	adv.Wait()

	st = p.Stats()
	if want := int64(2 * goroutines * per); st.ClientFetches != want {
		t.Errorf("client fetches = %d, want %d", st.ClientFetches, want)
	}
	if st.ClientFetches != st.UpstreamFetches+st.CoalescedHits+st.StaleServes {
		t.Errorf("counters don't balance: %+v", st)
	}
	if st.StaleServes != 0 {
		t.Errorf("stale serves = %d with a live upstream", st.StaleServes)
	}
	if st.UpstreamFetches < 2 {
		t.Errorf("upstream fetches = %d, want refreshes under an advancing clock", st.UpstreamFetches)
	}
}

// TestPoolBoundsUpstreamConnections: concurrent misses for distinct
// pmid-sets pipeline through the pool, but the proxy never holds more
// upstream connections than PoolSize.
func TestPoolBoundsUpstreamConnections(t *testing.T) {
	_, _, _, p, _ := rig(t, func(c *Config) { c.PoolSize = 2 })
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := p.Fetch([]uint32{uint32(g + 1)}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Redials > 2 {
		t.Errorf("redials = %d, want at most PoolSize=2", st.Redials)
	}
	if st.UpstreamFetches != 12 {
		t.Errorf("upstream fetches = %d, want 12 distinct sets", st.UpstreamFetches)
	}
	p.freeMu.Lock()
	idle := len(p.free)
	p.freeMu.Unlock()
	if idle > 2 {
		t.Errorf("%d idle pooled connections, want at most 2", idle)
	}
}
