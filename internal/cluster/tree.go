package cluster

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/simtime"
	"papimc/internal/sweep"
)

// Config shapes an assembled tree.
type Config struct {
	// Nodes is the leaf count. Node i is named node%0*d and seeded with
	// sweep.Seed(Seed, i), so every node's metric stream is an
	// independent deterministic substream.
	Nodes int
	// FanOut is the maximum children per federator (default 4). A
	// 64-node FanOut-4 tree is 3 federator levels: 16 leaves, 4 zones,
	// 1 root.
	FanOut int
	// Seed is the base seed for node substreams.
	Seed uint64
	// Interval is every daemon's sampling interval (default 10ms of
	// simulated time).
	Interval simtime.Duration
	// Policy is applied to leaf federation edges. Higher levels scale
	// Deadline and HedgeAfter by (Retries+2) per level, so a parent's
	// deadline always covers a child's full retry budget — otherwise one
	// stalled node would cascade: the zone's edge times out while the
	// leaf is still retrying, and the whole subtree goes missing instead
	// of one node.
	Policy pmproxy.EdgePolicy
	// Net serves every interior edge over TCP loopback: node daemons
	// listen, federators are served, parents dial PCP clients. Off, the
	// whole tree is in-process function calls — the mode that scales to
	// thousands of nodes in one test.
	Net bool
	// Timeout bounds each net-mode client round trip (default 2s).
	Timeout time.Duration
}

// expectEntry locates the ground truth for one root PMID.
type expectEntry struct {
	seed uint64 // owning node's seed
	pmid uint32 // the metric's PMID on that node
}

// Tree is an assembled cluster: the shared clock, every node, the
// federator levels (leaves first), and the root.
type Tree struct {
	Config Config
	Clock  *simtime.Clock
	Nodes  []*Node
	Levels [][]*Federator
	Root   *Federator

	byName  map[string]*Node
	expect  map[uint32]expectEntry
	closers []io.Closer
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// levelPolicy scales the leaf-edge policy for federator level (leaf =
// 1): Deadline and HedgeAfter grow by (Retries+2) per level. A child
// edge's worst case is Deadline*(Retries+1) — every round timing out —
// so the parent's deadline must exceed that to tell a dead subtree
// from one still resolving its own slow leaf.
func levelPolicy(base pmproxy.EdgePolicy, level int) pmproxy.EdgePolicy {
	p := base
	for l := 1; l < level; l++ {
		p.Deadline *= time.Duration(base.Retries + 2)
		p.HedgeAfter *= time.Duration(base.Retries + 2)
	}
	return p
}

// nodeName formats node i's name with enough digits for n nodes (at
// least 3), so lexical order equals numeric order and the node label
// sorts naturally in grouped query output.
func nodeName(i, n int) string {
	w := 3
	for lim := 1000; n > lim; lim *= 10 {
		w++
	}
	return fmt.Sprintf("node%0*d", w, i)
}

// Assemble builds the whole tree from cfg. On error everything already
// started is torn down.
func Assemble(cfg Config) (*Tree, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.FanOut <= 1 {
		cfg.FanOut = 4
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * simtime.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	t := &Tree{
		Config: cfg,
		Clock:  simtime.NewClock(),
		byName: make(map[string]*Node),
		expect: make(map[uint32]expectEntry),
	}
	ok := false
	defer func() {
		if !ok {
			t.Close()
		}
	}()

	children := make([]Child, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		name := nodeName(i, cfg.Nodes)
		n, err := NewNode(name, sweep.Seed(cfg.Seed, i), t.Clock, cfg.Interval)
		if err != nil {
			return nil, err
		}
		t.Nodes = append(t.Nodes, n)
		t.byName[name] = n
		t.closers = append(t.closers, closerFunc(n.Daemon.Close))
		src := n.Source()
		if cfg.Net {
			addr, err := n.Daemon.Start("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			c, err := pcp.Dial(addr)
			if err != nil {
				return nil, err
			}
			c.SetTimeout(cfg.Timeout)
			t.closers = append(t.closers, c)
			src = n.GateSource(c)
		}
		children = append(children, Child{Name: name, Src: src, Nodes: []string{name}, Qualify: name})
	}

	for level := 1; ; level++ {
		policy := levelPolicy(cfg.Policy, level)
		groups := (len(children) + cfg.FanOut - 1) / cfg.FanOut
		feds := make([]*Federator, 0, groups)
		next := make([]Child, 0, groups)
		for g := 0; g < groups; g++ {
			lo, hi := g*cfg.FanOut, (g+1)*cfg.FanOut
			if hi > len(children) {
				hi = len(children)
			}
			fname := "root"
			if groups > 1 {
				fname = fmt.Sprintf("l%d.f%d", level, g)
			}
			fed, err := NewFederator(fname, children[lo:hi], policy)
			if err != nil {
				return nil, err
			}
			feds = append(feds, fed)
			if groups == 1 {
				break
			}
			var src Source = fed
			if cfg.Net {
				srv, addr, err := Serve(fed, "127.0.0.1:0")
				if err != nil {
					return nil, err
				}
				t.closers = append(t.closers, srv)
				c, err := pcp.Dial(addr)
				if err != nil {
					return nil, err
				}
				c.SetTimeout(cfg.Timeout)
				t.closers = append(t.closers, c)
				src = c
			}
			next = append(next, Child{Name: fname, Src: src, Nodes: fed.Nodes()})
		}
		t.Levels = append(t.Levels, feds)
		if len(feds) == 1 {
			t.Root = feds[0]
			break
		}
		children = next
	}

	// Index the ground truth per root PMID for snapshot certification.
	for _, en := range t.Root.names {
		node, metric, found := strings.Cut(en.Name, ":")
		if !found {
			return nil, fmt.Errorf("cluster: unqualified root metric %q", en.Name)
		}
		n := t.byName[node]
		if n == nil {
			return nil, fmt.Errorf("cluster: root metric %q names unknown node", en.Name)
		}
		pmid := uint32(0)
		for i, mn := range MetricNames(n.Seed) {
			if mn == metric {
				pmid = uint32(i + 1)
				break
			}
		}
		if pmid == 0 {
			return nil, fmt.Errorf("cluster: root metric %q not in node %s's table", en.Name, node)
		}
		t.expect[en.PMID] = expectEntry{seed: n.Seed, pmid: pmid}
	}
	ok = true
	return t, nil
}

// Node returns the named node, or nil.
func (t *Tree) Node(name string) *Node { return t.byName[name] }

// Depth returns the number of federator levels (a 64-node FanOut-4
// tree has depth 3: leaf, zone, root).
func (t *Tree) Depth() int { return len(t.Levels) }

// EdgeStats returns every edge's counters, root level first.
func (t *Tree) EdgeStats() []EdgeStats {
	var out []EdgeStats
	for l := len(t.Levels) - 1; l >= 0; l-- {
		for _, f := range t.Levels[l] {
			out = append(out, f.EdgeStats()...)
		}
	}
	return out
}

// Snapshot takes a cluster-wide consistent snapshot: it advances the
// shared clock past the sampling interval — invalidating every
// daemon's cached sample at once, so each resamples at the new virtual
// now — fetches the entire namespace through the root, and certifies
// every answered value against that single timestamp. The returned
// error is a *pcp.PartialError when nodes are down (the snapshot is
// still consistent over the survivors) and a hard error when any value
// fails certification.
func (t *Tree) Snapshot() (pcp.FetchResult, error) {
	t.Clock.Advance(t.Config.Interval + 1)
	want := int64(t.Clock.Now())
	res, err := t.Root.FetchAll()
	var pe *pcp.PartialError
	if err != nil && !errors.As(err, &pe) {
		return res, err
	}
	if verr := t.Certify(res, want); verr != nil {
		return res, verr
	}
	return res, err
}

// Certify checks a root fetch against the ground truth at virtual time
// ts: the timestamp must be exactly ts and every StatusOK value must
// equal its node's self-certifying value — one recomputation per
// value, no trust in any layer of the tree.
func (t *Tree) Certify(res pcp.FetchResult, ts int64) error {
	if res.Timestamp != ts {
		return fmt.Errorf("cluster: snapshot timestamp %d, want %d", res.Timestamp, ts)
	}
	for _, v := range res.Values {
		switch v.Status {
		case pcp.StatusOK:
			e, okE := t.expect[v.PMID]
			if !okE {
				return fmt.Errorf("cluster: snapshot carries unknown PMID %d", v.PMID)
			}
			if want := MetricValue(e.seed, e.pmid, ts); v.Value != want {
				return fmt.Errorf("cluster: inconsistent value: pmid=%d ts=%d got=%#x want=%#x", v.PMID, ts, v.Value, want)
			}
		case pcp.StatusNodeDown:
			// Named in the partial error; absence is not inconsistency.
		default:
			return fmt.Errorf("cluster: snapshot value pmid=%d has status %d", v.PMID, v.Status)
		}
	}
	return nil
}

// Close tears the tree down: clients, servers, then daemons (reverse
// construction order).
func (t *Tree) Close() error {
	var first error
	for i := len(t.closers) - 1; i >= 0; i-- {
		if err := t.closers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	t.closers = nil
	return first
}
