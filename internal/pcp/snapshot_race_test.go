package pcp

import (
	"fmt"
	"sync"
	"testing"

	"papimc/internal/simtime"
)

// tsMetric returns a metric whose value is the sample time itself, so a
// fetch result is self-checking: every OK value must equal the result's
// timestamp, or the fetch observed a torn snapshot.
func tsMetric(name string) Metric {
	return Metric{Name: name, Read: func(t simtime.Time) (uint64, error) { return uint64(t), nil }}
}

// TestSnapshotConsistencyUnderRegister is the -race stress gate for the
// lock-free serving path: fetchers hammer FetchInto while Register grows
// the namespace and the clock advances concurrently. Every fetch must
// observe one coherent snapshot:
//
//   - PMIDs echo the request, in order;
//   - every OK value equals the result timestamp (all values sampled at
//     one time — never a mix of two samples);
//   - timestamps are monotone per goroutine;
//   - the visible namespace only grows: once a PMID resolves, it never
//     reverts to StatusNoSuchPMID.
func TestSnapshotConsistencyUnderRegister(t *testing.T) {
	clock := simtime.NewClock()
	const baseMetrics = 8
	const lateMetrics = 40
	var ms []Metric
	for i := 0; i < baseMetrics; i++ {
		ms = append(ms, tsMetric(fmt.Sprintf("race.metric.%02d", i)))
	}
	d, err := NewDaemon(clock, simtime.Millisecond, ms)
	if err != nil {
		t.Fatal(err)
	}

	const fetchers = 8
	const iters = 300
	stop := make(chan struct{})
	var aux sync.WaitGroup

	aux.Add(1)
	go func() { // concurrent time source
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(200 * simtime.Microsecond)
			}
		}
	}()
	aux.Add(1)
	go func() { // concurrent namespace growth
		defer aux.Done()
		for i := 0; i < lateMetrics; i++ {
			if err := d.Register(tsMetric(fmt.Sprintf("race.late.%02d", i))); err != nil {
				t.Errorf("register %d: %v", i, err)
				return
			}
		}
	}()

	allPMIDs := make([]uint32, baseMetrics+lateMetrics)
	for i := range allPMIDs {
		allPMIDs[i] = uint32(i + 1)
	}
	var wg sync.WaitGroup
	for g := 0; g < fetchers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var vals []FetchValue
			var lastTS int64 = -1
			resolved := make([]bool, len(allPMIDs))
			for i := 0; i < iters; i++ {
				res := d.FetchInto(allPMIDs, vals[:0])
				vals = res.Values
				if len(res.Values) != len(allPMIDs) {
					t.Errorf("fetch %d: %d values, want %d", i, len(res.Values), len(allPMIDs))
					return
				}
				if res.Timestamp < lastTS {
					t.Errorf("timestamp went backwards: %d -> %d", lastTS, res.Timestamp)
					return
				}
				lastTS = res.Timestamp
				for j, v := range res.Values {
					if v.PMID != allPMIDs[j] {
						t.Errorf("fetch %d: value %d has PMID %d, want %d", i, j, v.PMID, allPMIDs[j])
						return
					}
					switch v.Status {
					case StatusOK:
						resolved[j] = true
						if v.Value != uint64(res.Timestamp) {
							t.Errorf("torn snapshot: pmid %d value %d != timestamp %d", v.PMID, v.Value, res.Timestamp)
							return
						}
					case StatusNoSuchPMID:
						if resolved[j] {
							t.Errorf("pmid %d reverted to NoSuchPMID after resolving", v.PMID)
							return
						}
					default:
						t.Errorf("pmid %d status %d", v.PMID, v.Status)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	aux.Wait()

	// After the dust settles the whole namespace is fetchable at one
	// coherent timestamp.
	clock.Advance(2 * simtime.Millisecond)
	res := d.Fetch(allPMIDs)
	for _, v := range res.Values {
		if v.Status != StatusOK || v.Value != uint64(res.Timestamp) {
			t.Errorf("final fetch: pmid %d status %d value %d (timestamp %d)", v.PMID, v.Status, v.Value, res.Timestamp)
		}
	}
}

// TestFetchIntoDoesNotAllocate guards the serving hot path: with a warm
// reused buffer and a fresh snapshot, an in-process fetch is
// allocation-free.
func TestFetchIntoDoesNotAllocate(t *testing.T) {
	clock := simtime.NewClock()
	var ms []Metric
	for i := 0; i < 16; i++ {
		ms = append(ms, tsMetric(fmt.Sprintf("alloc.metric.%02d", i)))
	}
	d, err := NewDaemon(clock, 10*simtime.Millisecond, ms)
	if err != nil {
		t.Fatal(err)
	}
	pmids := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	var vals []FetchValue
	res := d.FetchInto(pmids, vals[:0])
	vals = res.Values
	if got := testing.AllocsPerRun(100, func() {
		res := d.FetchInto(pmids, vals[:0])
		vals = res.Values
	}); got != 0 {
		t.Errorf("FetchInto allocates %.1f objects per run, want 0", got)
	}
}
