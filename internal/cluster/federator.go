package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
)

// Source is what a federator needs from each child: the namespace and a
// fetch. pcp.Client, pcp.Daemon (via Node.Source), and Federator itself
// all satisfy it, which is what lets trees stack to any depth.
type Source interface {
	Names() ([]pcp.NameEntry, error)
	Fetch(pmids []uint32) (pcp.FetchResult, error)
}

// Child declares one downstream of a federator.
type Child struct {
	// Name labels the edge ("node003" for a leaf edge, "zone1" higher up).
	Name string
	// Src is the child's metric source.
	Src Source
	// Nodes are the leaf node names reachable through this child — the
	// blast radius named in a PartialError when the whole edge fails.
	Nodes []string
	// Qualify, when non-empty, prefixes every child metric name with
	// "<Qualify>:". Leaf edges set it to the node name; upper edges leave
	// it empty because zone namespaces are already qualified.
	Qualify string
}

// routeEntry maps one federator PMID to its owner.
type routeEntry struct {
	child     int
	childPMID uint32
}

// EdgeStats is one edge's name and counters.
type EdgeStats struct {
	Edge  string
	Stats pmproxy.UpstreamStats
}

// Federator is one interior vertex of the aggregation tree. It merges
// its children's namespaces into a single qualified namespace with its
// own PMID assignment (sorted-name order, like a daemon) and serves
// scatter-gather fetches over them: requested PMIDs are routed to the
// owning children, fetched concurrently through per-edge
// pmproxy.Upstream clients (deadline, hedge, retry), and the answers
// are merged. A failed edge contributes StatusNodeDown values and its
// node list to the typed partial error instead of failing the query.
type Federator struct {
	name     string
	children []Child
	ups      []*pmproxy.Upstream
	names    []pcp.NameEntry
	route    []routeEntry // route[i] owns PMID i+1
	nodes    []string     // union of children's Nodes, sorted
}

// NewFederator builds a federator over children, reading each child's
// namespace once. Every edge gets the same policy; heterogeneous
// policies can be modelled by stacking federators.
func NewFederator(name string, children []Child, policy pmproxy.EdgePolicy) (*Federator, error) {
	f := &Federator{name: name, children: children}
	type entry struct {
		name string
		r    routeEntry
	}
	var entries []entry
	nodeSet := make(map[string]bool)
	for i, c := range children {
		if c.Src == nil {
			return nil, fmt.Errorf("cluster: federator %s: child %s has no source", name, c.Name)
		}
		ents, err := c.Src.Names()
		if err != nil {
			return nil, fmt.Errorf("cluster: federator %s: listing child %s: %w", name, c.Name, err)
		}
		for _, en := range ents {
			qn := en.Name
			if c.Qualify != "" {
				qn = c.Qualify + ":" + qn
			}
			entries = append(entries, entry{name: qn, r: routeEntry{child: i, childPMID: en.PMID}})
		}
		for _, nd := range c.Nodes {
			nodeSet[nd] = true
		}
		f.ups = append(f.ups, pmproxy.NewUpstream(name+"->"+c.Name, c.Src.Fetch, policy))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	f.names = make([]pcp.NameEntry, len(entries))
	f.route = make([]routeEntry, len(entries))
	for i, en := range entries {
		if i > 0 && en.name == entries[i-1].name {
			return nil, fmt.Errorf("cluster: federator %s: duplicate metric %q", name, en.name)
		}
		f.names[i] = pcp.NameEntry{PMID: uint32(i + 1), Name: en.name}
		f.route[i] = en.r
	}
	f.nodes = make([]string, 0, len(nodeSet))
	for nd := range nodeSet {
		f.nodes = append(f.nodes, nd)
	}
	sort.Strings(f.nodes)
	return f, nil
}

// Name returns the federator's name.
func (f *Federator) Name() string { return f.name }

// Nodes returns the sorted leaf node names under this federator.
func (f *Federator) Nodes() []string { return append([]string(nil), f.nodes...) }

// Names returns the federator's merged, qualified namespace.
func (f *Federator) Names() ([]pcp.NameEntry, error) {
	return append([]pcp.NameEntry(nil), f.names...), nil
}

// EdgeStats returns each edge's counters, in child order.
func (f *Federator) EdgeStats() []EdgeStats {
	out := make([]EdgeStats, len(f.ups))
	for i, u := range f.ups {
		out[i] = EdgeStats{Edge: u.Name(), Stats: u.Stats()}
	}
	return out
}

// Fetch scatter-gathers the requested PMIDs across the owning children.
//
// Partial-result semantics: the returned FetchResult ALWAYS carries one
// value per requested PMID, in request order. A value owned by an
// unreachable subtree has Status pcp.StatusNodeDown, and the
// accompanying error is a *pcp.PartialError naming every missing leaf
// node (sorted, deduplicated). Only when no child answers at all does
// Fetch fail outright, with an error wrapping pmproxy.ErrUpstreamDown —
// which is exactly what lets a parent federator treat this whole
// subtree as one failed edge.
//
// The merged timestamp is the maximum across answering children; with
// the shared clock held still past the sampling interval every child
// answers at the same virtual time and the maximum is that time.
func (f *Federator) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	results, err := f.FetchBatch([][]uint32{pmids})
	if err != nil {
		var pe *pcp.PartialError
		if errors.As(err, &pe) {
			return results[0], err
		}
		return pcp.FetchResult{}, err
	}
	return results[0], nil
}

// FetchBatch scatter-gathers multiple PMID sets at once: the PMIDs of
// every set are routed together, so each owning child is asked with ONE
// edge round trip covering the entire batch — the federation win of the
// batch PDU. A whole multi-set snapshot costs the same number of edge
// round trips as a single fetch. Fetch is the one-set special case.
//
// Partial-result semantics are Fetch's, lifted to the batch: every set
// carries one value per requested PMID, unreachable subtrees contribute
// StatusNodeDown values, and one *pcp.PartialError names the union of
// missing leaf nodes across the batch. All sets share the merged
// (maximum) timestamp of the single scatter.
func (f *Federator) FetchBatch(sets [][]uint32) ([]pcp.FetchResult, error) {
	type backref struct{ set, slot int }
	type request struct {
		childPMIDs []uint32
		refs       []backref
	}
	reqs := make([]request, len(f.children))
	results := make([]pcp.FetchResult, len(sets))
	routed := false
	for si, pmids := range sets {
		vals := make([]pcp.FetchValue, len(pmids))
		results[si].Values = vals
		for slot, id := range pmids {
			if id == 0 || int(id) > len(f.route) {
				vals[slot] = pcp.FetchValue{PMID: id, Status: pcp.StatusNoSuchPMID}
				continue
			}
			r := f.route[id-1]
			reqs[r.child].childPMIDs = append(reqs[r.child].childPMIDs, r.childPMID)
			reqs[r.child].refs = append(reqs[r.child].refs, backref{set: si, slot: slot})
			routed = true
		}
	}
	if !routed {
		return results, nil
	}

	type answer struct {
		res pcp.FetchResult
		err error
	}
	answers := make([]answer, len(f.children))
	var wg sync.WaitGroup
	for i := range f.children {
		if len(reqs[i].childPMIDs) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := f.ups[i].Fetch(reqs[i].childPMIDs)
			answers[i] = answer{res: res, err: err}
		}(i)
	}
	wg.Wait()

	var ts int64
	missing := make(map[string]bool)
	var cause string
	answered := false
	var lastErr error
	for i := range f.children {
		req := reqs[i]
		if len(req.childPMIDs) == 0 {
			continue
		}
		a := answers[i]
		var pe *pcp.PartialError
		failed := a.err != nil && !errors.As(a.err, &pe)
		if !failed && len(a.res.Values) != len(req.childPMIDs) {
			// A short answer is a protocol violation; treat the edge as down
			// rather than serve misaligned values.
			failed = true
			a.err = fmt.Errorf("cluster: %s: %d values for %d pmids", f.ups[i].Name(), len(a.res.Values), len(req.childPMIDs))
		}
		if failed {
			for _, ref := range req.refs {
				results[ref.set].Values[ref.slot] = pcp.FetchValue{
					PMID: sets[ref.set][ref.slot], Status: pcp.StatusNodeDown,
				}
			}
			for _, nd := range f.children[i].Nodes {
				missing[nd] = true
			}
			if cause == "" {
				cause = fmt.Sprintf("%s: %v", f.children[i].Name, a.err)
			}
			lastErr = a.err
			continue
		}
		answered = true
		if a.res.Timestamp > ts {
			ts = a.res.Timestamp
		}
		if pe != nil {
			for _, nd := range pe.Missing {
				missing[nd] = true
			}
			if cause == "" {
				cause = pe.Cause
			}
		}
		for j, v := range a.res.Values {
			ref := req.refs[j]
			v.PMID = sets[ref.set][ref.slot] // rewrite to this federator's PMID space
			results[ref.set].Values[ref.slot] = v
		}
	}
	for i := range results {
		results[i].Timestamp = ts
	}

	if len(missing) == 0 {
		return results, nil
	}
	if !answered {
		return nil, fmt.Errorf("cluster: %s: every child failed: %w (%v)", f.name, pmproxy.ErrUpstreamDown, lastErr)
	}
	names := make([]string, 0, len(missing))
	for nd := range missing {
		names = append(names, nd)
	}
	sort.Strings(names)
	return results, &pcp.PartialError{Missing: names, Cause: cause}
}

// FetchAll fetches the federator's entire namespace in PMID order — the
// batch form the PDU layer's PDUFetchAllReq maps to.
func (f *Federator) FetchAll() (pcp.FetchResult, error) {
	ids := make([]uint32, len(f.route))
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	return f.Fetch(ids)
}
