package model

// Cross-validation of the analytic engine against the exact line-level
// cache simulator, at problem sizes where exact simulation is feasible.
// This is the evidence that the closed-form regime logic used for
// full-size sweeps agrees with the mechanistic model.

import (
	"testing"

	"papimc/internal/arch"
	"papimc/internal/cache"
	"papimc/internal/kernels"
	"papimc/internal/loopnest"
	"papimc/internal/trace"
)

type countingMem struct{ readBytes, writeBytes int64 }

func (m *countingMem) MemRead(addr, bytes int64)  { m.readBytes += bytes }
func (m *countingMem) MemWrite(addr, bytes int64) { m.writeBytes += bytes }

// exactRun executes a nest on core 0 of a fully occupied Summit socket
// (no borrowable slices, matching a batched context) and returns the
// memory traffic including the final drain.
func exactRun(nest *loopnest.Nest, prefetch bool) (int64, int64) {
	mem := &countingMem{}
	soc := arch.Summit().Socket
	active := make([]int, soc.Cores)
	for i := range active {
		active[i] = i
	}
	h := cache.New(cache.Config{Socket: soc, ActiveCores: active}, mem)
	nest.SoftwarePrefetch = prefetch
	nest.Execute(0, h)
	h.Drain()
	return mem.readBytes, mem.writeBytes
}

// perCore reduces a batched model prediction to one core's share.
func perCore(tr Traffic, ctx Context) (int64, int64) {
	k := int64(ctx.ActiveCores)
	return tr.ReadBytes / k, tr.WriteBytes / k
}

func fullSocket() Context {
	m := arch.Summit()
	return Context{Machine: m, ActiveCores: m.Socket.Cores}
}

func TestModelMatchesExactSimGEMM(t *testing.T) {
	if testing.Short() {
		t.Skip("exact simulation is slow")
	}
	ctx := fullSocket()
	for _, n := range []int64{96, 128, 192} {
		gotR, gotW := exactRun(kernels.GEMMNest(trace.NewAddressSpace(), "gemm", n), false)
		wantR, wantW := perCore(GEMM(ctx, n), ctx)
		if e := relErr(gotR, wantR); e > 0.03 {
			t.Errorf("GEMM N=%d: exact reads %d vs model %d (rel err %.3f)", n, gotR, wantR, e)
		}
		if e := relErr(gotW, wantW); e > 0.03 {
			t.Errorf("GEMM N=%d: exact writes %d vs model %d (rel err %.3f)", n, gotW, wantW, e)
		}
	}
}

func TestModelMatchesExactSimCappedGEMV(t *testing.T) {
	if testing.Short() {
		t.Skip("exact simulation is slow")
	}
	// Uncached regime: A (11.5 MB) exceeds even the issuer's whole pair
	// slice, matching the model's miss=1 branch. The model context uses
	// a per-core share of 5 MB; both sides predict no row reuse.
	ctx := fullSocket()
	const m, n, p = 2400, 1200, 1200
	gotR, gotW := exactRun(kernels.CappedGEMVNest(trace.NewAddressSpace(), "cgemv", m, n, p), false)
	wantR, wantW := perCore(CappedGEMV(ctx, m, n, p), ctx)
	if e := relErr(gotR, wantR); e > 0.05 {
		t.Errorf("capped GEMV: exact reads %d vs model %d (rel err %.3f)", gotR, wantR, e)
	}
	if e := relErr(gotW, wantW); e > 0.05 {
		t.Errorf("capped GEMV: exact writes %d vs model %d (rel err %.3f)", gotW, wantW, e)
	}
}

func TestModelMatchesExactSimSquareGEMV(t *testing.T) {
	ctx := fullSocket()
	const m = 512
	gotR, gotW := exactRun(kernels.CappedGEMVNest(trace.NewAddressSpace(), "sgemv", m, m, m), false)
	wantR, wantW := perCore(SquareGEMV(ctx, m), ctx)
	if e := relErr(gotR, wantR); e > 0.05 {
		t.Errorf("square GEMV: exact reads %d vs model %d (rel err %.3f)", gotR, wantR, e)
	}
	if e := relErr(gotW, wantW); e > 0.05 {
		t.Errorf("square GEMV: exact writes %d vs model %d (rel err %.3f)", gotW, wantW, e)
	}
}
