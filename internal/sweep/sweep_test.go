package sweep

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"papimc/internal/xrand"
)

func TestSeedSubstreamsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for _, base := range []uint64{0, 1, 20230515} {
		for i := 0; i < 1000; i++ {
			s := Seed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: %d repeats task %d", s, prev)
			}
			seen[s] = i
		}
	}
}

// TestSeed2GridDistinct: the two-level (cohort, client) grid yields no
// collisions among itself or with the single-level stream of the same
// base — the property that lets workload cohorts expand deterministically
// without any client sharing a stream.
func TestSeed2GridDistinct(t *testing.T) {
	const base = uint64(42)
	seen := map[uint64]string{}
	for i := 0; i < 8; i++ {
		for j := 0; j < 500; j++ {
			s := Seed2(base, i, j)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed2 collision at (%d,%d): repeats %s", i, j, prev)
			}
			seen[s] = "grid"
		}
	}
	for i := 0; i < 1000; i++ {
		if _, dup := seen[Seed(base, i)]; dup {
			t.Fatalf("Seed2 grid collides with Seed(base, %d)", i)
		}
	}
}

func TestSeedDiffersFromBase(t *testing.T) {
	// Task 0's substream must not be the base stream itself, or a
	// parallel sweep's first point would replay the serial run's noise.
	if Seed(42, 0) == 42 {
		t.Error("Seed(base, 0) == base")
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got < 1 {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		got, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// The determinism contract: a task that draws all randomness from its
// Seed substream yields the same value at every worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []uint64 {
		out, err := Map(50, workers, func(i int) (uint64, error) {
			rng := xrand.New(Seed(99, i))
			var sum uint64
			for k := 0; k < 100; k++ {
				sum += rng.Uint64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 16} {
		parallel := run(workers)
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d diverges at task %d", workers, i)
			}
		}
	}
}

func TestMapReportsLowestFailingIndex(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(40, 8, func(i int) (int, error) {
		if i == 5 || i == 17 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "task 5") {
		t.Errorf("err = %v, want lowest failing index 5", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

// TestMapRunsTasksConcurrently proves the pool really overlaps task
// execution (and, under -race, that result assembly is race-free): all
// four tasks block until all four have started, which only terminates if
// four workers run them at once.
func TestMapRunsTasksConcurrently(t *testing.T) {
	const n = 4
	var started sync.WaitGroup
	started.Add(n)
	var peak atomic.Int32
	_, err := Map(n, n, func(i int) (int, error) {
		peak.Add(1)
		started.Done()
		started.Wait()
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != n {
		t.Errorf("started %d tasks, want %d", got, n)
	}
}

func TestEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	if err := Each(10, 3, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("Each err = %v", err)
	}
	if err := Each(10, 3, func(int) error { return nil }); err != nil {
		t.Errorf("Each err = %v", err)
	}
}
