package papi

import (
	"fmt"

	"papimc/internal/simtime"
)

// addedEvent records one event added to an EventSet.
type addedEvent struct {
	full     string
	compName string
	native   string
	info     EventInfo
}

// compGroup is the instantiated counters of one component within a
// running EventSet, plus the positions its values map back to.
type compGroup struct {
	counters Counters
	indices  []int // position of each native value in the EventSet order
	instant  []bool
}

// EventSet mirrors PAPI's event-set lifecycle: add events (possibly from
// several components), Start, Read any number of times (values
// accumulate since Start, except instant events which report levels),
// Stop, optionally Reset and go again.
type EventSet struct {
	lib     *Library
	events  []addedEvent
	groups  []compGroup
	running bool
	closed  bool
	base    []uint64
	rawBuf  []uint64 // scratch reused by Read's raw gather
	startT  simtime.Time
}

// NewEventSet creates an empty event set.
func (l *Library) NewEventSet() *EventSet {
	return &EventSet{lib: l}
}

// Add appends a fully qualified event. It fails while the set runs.
func (es *EventSet) Add(full string) error {
	if es.closed {
		return ErrClosedEventSet
	}
	if es.running {
		return ErrIsRunning
	}
	compName, native := SplitEventName(full)
	_, info, err := es.lib.resolve(full)
	if err != nil {
		return err
	}
	es.events = append(es.events, addedEvent{full: full, compName: compName, native: native, info: info})
	return nil
}

// AddAll adds several events, stopping at the first failure.
func (es *EventSet) AddAll(fulls ...string) error {
	for _, f := range fulls {
		if err := es.Add(f); err != nil {
			return err
		}
	}
	return nil
}

// EventNames returns the fully qualified names in value order.
func (es *EventSet) EventNames() []string {
	out := make([]string, len(es.events))
	for i, e := range es.events {
		out[i] = e.full
	}
	return out
}

// Len returns the number of events in the set.
func (es *EventSet) Len() int { return len(es.events) }

// Start instantiates the counters and snapshots the baseline.
func (es *EventSet) Start() error {
	if es.closed {
		return ErrClosedEventSet
	}
	if es.running {
		return ErrIsRunning
	}
	if len(es.events) == 0 {
		return ErrEmptyEventSet
	}
	// Group natives by component, preserving per-component order.
	type build struct {
		natives []string
		indices []int
		instant []bool
	}
	builds := map[string]*build{}
	var order []string
	for i, e := range es.events {
		b, ok := builds[e.compName]
		if !ok {
			b = &build{}
			builds[e.compName] = b
			order = append(order, e.compName)
		}
		b.natives = append(b.natives, e.native)
		b.indices = append(b.indices, i)
		b.instant = append(b.instant, e.info.Instant)
	}
	var groups []compGroup
	for _, compName := range order {
		b := builds[compName]
		comp := es.lib.comps[compName]
		ctrs, err := comp.NewCounters(b.natives)
		if err != nil {
			for _, g := range groups {
				g.counters.Close()
			}
			return fmt.Errorf("papi: starting %s counters: %w", compName, err)
		}
		groups = append(groups, compGroup{counters: ctrs, indices: b.indices, instant: b.instant})
	}
	es.groups = groups
	es.startT = es.lib.clock.Now()
	base, err := es.rawRead(es.startT)
	if err != nil {
		es.teardown()
		return err
	}
	es.base = base
	es.running = true
	return nil
}

// rawRead gathers raw values from every group into event order,
// allocating a fresh slice (used where the result is retained).
func (es *EventSet) rawRead(t simtime.Time) ([]uint64, error) {
	return es.rawReadInto(t, nil)
}

// rawReadInto is rawRead into a reusable buffer. Every event position is
// written by exactly one group, so no clearing is needed.
func (es *EventSet) rawReadInto(t simtime.Time, dst []uint64) ([]uint64, error) {
	out := dst
	if cap(out) < len(es.events) {
		out = make([]uint64, len(es.events))
	}
	out = out[:len(es.events)]
	for _, g := range es.groups {
		vals, err := g.counters.ReadAt(t)
		if err != nil {
			return nil, err
		}
		if len(vals) != len(g.indices) {
			return nil, fmt.Errorf("papi: component returned %d values for %d events", len(vals), len(g.indices))
		}
		for i, idx := range g.indices {
			out[idx] = vals[i]
		}
	}
	return out, nil
}

// Read returns the current values: deltas since Start for counter
// events, current levels for instant events.
func (es *EventSet) Read() ([]uint64, error) {
	if es.closed {
		return nil, ErrClosedEventSet
	}
	if !es.running {
		return nil, ErrNotRunning
	}
	raw, err := es.rawReadInto(es.lib.clock.Now(), es.rawBuf)
	if err != nil {
		return nil, err
	}
	es.rawBuf = raw
	out := make([]uint64, len(raw))
	for i, v := range raw {
		if es.events[i].info.Instant {
			out[i] = v
			continue
		}
		if v < es.base[i] {
			// A counter moved backwards: treat as wrap/reset and
			// report the raw value rather than a huge delta.
			out[i] = v
			continue
		}
		out[i] = v - es.base[i]
	}
	return out, nil
}

// Reset re-baselines the running set so subsequent Reads count from now.
func (es *EventSet) Reset() error {
	if es.closed {
		return ErrClosedEventSet
	}
	if !es.running {
		return ErrNotRunning
	}
	base, err := es.rawRead(es.lib.clock.Now())
	if err != nil {
		return err
	}
	es.base = base
	return nil
}

// Stop reads final values and stops the set. The set can be started
// again.
func (es *EventSet) Stop() ([]uint64, error) {
	if es.closed {
		return nil, ErrClosedEventSet
	}
	if !es.running {
		return nil, ErrNotRunning
	}
	vals, err := es.Read()
	es.teardown()
	es.running = false
	return vals, err
}

func (es *EventSet) teardown() {
	for _, g := range es.groups {
		g.counters.Close()
	}
	es.groups = nil
	es.base = nil
}

// Close releases the set permanently.
func (es *EventSet) Close() error {
	if es.closed {
		return nil
	}
	if es.running {
		es.teardown()
		es.running = false
	}
	es.closed = true
	return nil
}
