package archive

import (
	"testing"
)

// Satellite audit: Samples / Floor / Nearest edge cases pinned with
// table-driven tests — inverted intervals, empty archives,
// single-sample blocks, and queries entirely outside the retained span.

// edgeArchive builds an archive with rows at the given timestamps
// (value = ts as uint64), with 1-sample blocks when tiny is set so
// every sealed block is a single-row block.
func edgeArchive(t *testing.T, stamps []int64, tiny bool) *Archive {
	t.Helper()
	opts := Options{}
	if tiny {
		opts.BlockSamples = 1
	}
	a, err := New(schema(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range stamps {
		if err := a.Append(row(ts, uint64(ts))); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestSamplesEdgeCases(t *testing.T) {
	stamps := []int64{100, 200, 300, 400, 500}
	cases := []struct {
		name   string
		stamps []int64
		tiny   bool
		t0, t1 int64
		want   []int64
	}{
		{"inverted interval", stamps, false, 300, 100, nil},
		{"empty archive", nil, false, 0, 1 << 60, nil},
		{"entirely before span", stamps, false, -50, 50, nil},
		{"entirely after span", stamps, false, 600, 900, nil},
		{"exact endpoints inclusive", stamps, false, 100, 500, stamps},
		{"interior", stamps, false, 150, 450, []int64{200, 300, 400}},
		{"single point hit", stamps, false, 300, 300, []int64{300}},
		{"single point miss", stamps, false, 301, 301, nil},
		{"single-sample blocks", stamps, true, 150, 450, []int64{200, 300, 400}},
		{"single-sample blocks full", stamps, true, 0, 1000, stamps},
		{"one-row archive hit", []int64{42}, false, 0, 100, []int64{42}},
		{"one-row archive miss", []int64{42}, false, 43, 100, nil},
		{"huge bounds", stamps, false, -1 << 62, 1 << 62, stamps},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := edgeArchive(t, c.stamps, c.tiny)
			got, err := a.Samples(c.t0, c.t1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(c.want) {
				t.Fatalf("Samples(%d, %d) returned %d rows, want %d", c.t0, c.t1, len(got), len(c.want))
			}
			for i, r := range got {
				if r.Timestamp != c.want[i] || r.Values[0] != uint64(c.want[i]) {
					t.Errorf("row %d = %+v, want ts=%d", i, r, c.want[i])
				}
			}
		})
	}
}

func TestFloorEdgeCases(t *testing.T) {
	stamps := []int64{100, 200, 300}
	cases := []struct {
		name   string
		stamps []int64
		tiny   bool
		t      int64
		want   int64
		ok     bool
	}{
		{"empty archive", nil, false, 0, 0, false},
		{"before first", stamps, false, 99, 0, false},
		{"exactly first", stamps, false, 100, 100, true},
		{"between samples", stamps, false, 250, 200, true},
		{"exactly last", stamps, false, 300, 300, true},
		{"after last", stamps, false, 1 << 60, 300, true},
		{"single row before", []int64{42}, false, 41, 0, false},
		{"single row at", []int64{42}, false, 42, 42, true},
		{"single row after", []int64{42}, false, 1000, 42, true},
		{"single-sample blocks between", stamps, true, 250, 200, true},
		{"single-sample blocks before", stamps, true, -1, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := edgeArchive(t, c.stamps, c.tiny)
			s, ok := a.Floor(c.t)
			if ok != c.ok {
				t.Fatalf("Floor(%d) ok = %v, want %v", c.t, ok, c.ok)
			}
			if ok && (s.Timestamp != c.want || s.Values[0] != uint64(c.want)) {
				t.Errorf("Floor(%d) = %+v, want ts=%d", c.t, s, c.want)
			}
		})
	}
}

func TestNearestEdgeCases(t *testing.T) {
	stamps := []int64{100, 200, 300}
	cases := []struct {
		name   string
		stamps []int64
		tiny   bool
		t      int64
		want   int64
		ok     bool
	}{
		{"empty archive", nil, false, 0, 0, false},
		{"far before", stamps, false, -1000, 100, true},
		{"far after", stamps, false, 1 << 60, 300, true},
		{"exact hit", stamps, false, 200, 200, true},
		{"closer to left", stamps, false, 240, 200, true},
		{"closer to right", stamps, false, 260, 300, true},
		{"tie goes older", stamps, false, 250, 200, true},
		{"single row", []int64{42}, false, -5, 42, true},
		{"single-sample blocks tie", stamps, true, 150, 100, true},
		{"single-sample blocks right", stamps, true, 170, 200, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := edgeArchive(t, c.stamps, c.tiny)
			s, ok := a.Nearest(c.t)
			if ok != c.ok {
				t.Fatalf("Nearest(%d) ok = %v, want %v", c.t, ok, c.ok)
			}
			if ok && s.Timestamp != c.want {
				t.Errorf("Nearest(%d) = ts %d, want %d", c.t, s.Timestamp, c.want)
			}
		})
	}
}

// TestFloorAcrossSealedBoundary: floors and ceilings served from block
// summaries (no decode) must agree with the decoded rows at every
// position around a block boundary.
func TestFloorAcrossSealedBoundary(t *testing.T) {
	a, _ := New(schema(1), Options{BlockSamples: 4})
	var stamps []int64
	for i := 0; i < 17; i++ { // 4 sealed blocks + 1 tail row
		ts := int64(i) * 10
		stamps = append(stamps, ts)
		if err := a.Append(row(ts, uint64(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	for probe := int64(-5); probe <= 170; probe++ {
		var want int64 = -1
		for _, ts := range stamps {
			if ts <= probe {
				want = ts
			}
		}
		s, ok := a.Floor(probe)
		if want < 0 {
			if ok {
				t.Fatalf("Floor(%d) = %+v, want miss", probe, s)
			}
			continue
		}
		if !ok || s.Timestamp != want {
			t.Fatalf("Floor(%d) = %+v ok=%v, want ts=%d", probe, s, ok, want)
		}
		i := want / 10
		if s.Values[0] != uint64(i*i) {
			t.Fatalf("Floor(%d) value = %d, want %d", probe, s.Values[0], i*i)
		}
	}
}
