package archive

import (
	"sync"

	"papimc/internal/pcp"
)

// Fetcher is the live upstream a Recorder wraps; *pcp.Client satisfies
// it (so does a pmproxy-side client, letting recordings be taken through
// the proxy tier).
type Fetcher interface {
	Names() ([]pcp.NameEntry, error)
	Lookup(name string) (uint32, error)
	Fetch(pmids []uint32) (pcp.FetchResult, error)
}

// Recorder tees fetch results into an archive while serving them to the
// caller — pmlogger's recording mode. It implements the same Source
// interface as a live client, so a profiler pointed at a Recorder
// produces both its live result and a replayable recording of the exact
// daemon samples that result was computed from.
//
// Every Fetch pulls the full schema from upstream (one daemon round trip
// regardless of how many columns the caller wanted), records the row,
// and projects the caller's PMIDs from it — so the archive always holds
// complete rows.
type Recorder struct {
	mu      sync.Mutex
	src     Fetcher
	arch    *Archive
	skipped int // rows not recorded because a schema value errored
}

// NewRecorder wraps src, recording into a.
func NewRecorder(src Fetcher, a *Archive) *Recorder {
	return &Recorder{src: src, arch: a}
}

// NewRecorderFromUpstream builds an archive whose schema is the
// upstream's full current namespace, and a recorder over it.
func NewRecorderFromUpstream(src Fetcher, opts Options) (*Recorder, error) {
	names, err := src.Names()
	if err != nil {
		return nil, err
	}
	a, err := New(names, opts)
	if err != nil {
		return nil, err
	}
	return NewRecorder(src, a), nil
}

// Archive returns the recording.
func (r *Recorder) Archive() *Archive { return r.arch }

// Skipped reports how many fetched rows could not be recorded (a schema
// value carried an error status).
func (r *Recorder) Skipped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.skipped
}

// Names delegates to the live upstream.
func (r *Recorder) Names() ([]pcp.NameEntry, error) { return r.src.Names() }

// Lookup delegates to the live upstream.
func (r *Recorder) Lookup(name string) (uint32, error) { return r.src.Lookup(name) }

// Fetch fetches the schema (plus any requested off-schema PMIDs) from
// upstream, records the schema row, and answers with the requested
// PMIDs in request order.
func (r *Recorder) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	req := r.arch.PMIDs()
	schema := make(map[uint32]bool, len(req))
	for _, id := range req {
		schema[id] = true
	}
	for _, id := range pmids {
		if !schema[id] {
			req = append(req, id)
		}
	}
	res, err := r.src.Fetch(req)
	if err != nil {
		return pcp.FetchResult{}, err
	}
	if aerr := r.arch.Append(res); aerr != nil {
		r.mu.Lock()
		r.skipped++
		r.mu.Unlock()
	}
	byPMID := make(map[uint32]pcp.FetchValue, len(res.Values))
	for _, v := range res.Values {
		byPMID[v.PMID] = v
	}
	out := pcp.FetchResult{Timestamp: res.Timestamp, Values: make([]pcp.FetchValue, len(pmids))}
	for i, id := range pmids {
		if v, ok := byPMID[id]; ok {
			out.Values[i] = v
		} else {
			out.Values[i] = pcp.FetchValue{PMID: id, Status: pcp.StatusNoSuchPMID}
		}
	}
	return out, nil
}

// Record performs one recording tick: fetch the full schema from
// upstream and append it. This is the pmlogger sampling-loop primitive;
// duplicate daemon samples (same timestamp) are deduplicated by Append.
func (r *Recorder) Record() error {
	res, err := r.src.Fetch(r.arch.PMIDs())
	if err != nil {
		return err
	}
	return r.arch.Append(res)
}
