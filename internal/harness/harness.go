// Package harness drives the paper's quantitative experiments: it plays
// kernel executions on a simulated testbed, measures their memory
// traffic through PAPI via either route (PCP or perf_uncore), applies
// the repetition-averaging methodology of Section III, and reports
// measured-versus-expected traffic for every point of Figs. 2–10.
package harness

import (
	"fmt"

	"papimc/internal/arch"
	"papimc/internal/expect"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/simtime"
	"papimc/internal/stats"
	"papimc/internal/sweep"
)

// Point is one problem size of a traffic-accuracy sweep.
type Point struct {
	Size               int64
	Reps               int
	MeasuredReadBytes  float64 // average per kernel execution
	MeasuredWriteBytes float64
	ExpectedReadBytes  int64
	ExpectedWriteBytes int64
}

// ReadError returns the relative error of the measured reads.
func (p Point) ReadError() float64 {
	return stats.RelativeError(p.MeasuredReadBytes, float64(p.ExpectedReadBytes))
}

// WriteError returns the relative error of the measured writes.
func (p Point) WriteError() float64 {
	return stats.RelativeError(p.MeasuredWriteBytes, float64(p.ExpectedWriteBytes))
}

// RepsPolicy decides how many kernel repetitions to average at a given
// problem size.
type RepsPolicy func(size int64) int

// SingleRep is the 1-repetition policy of Fig. 2.
func SingleRep(int64) int { return 1 }

// AdaptiveReps is Equation 5's policy (Figs. 3–5).
func AdaptiveReps(size int64) int { return stats.AdaptiveRepetitions(int(size)) }

// FixedReps always runs k repetitions.
func FixedReps(k int) RepsPolicy { return func(int64) int { return k } }

// settle advances the clock far enough for posted traffic and the PMCD
// sampling interval to make everything visible.
func settle(tb *node.Testbed) {
	d := 2 * tb.Machine.Noise.PMCDSampleInterval
	if lag := 10 * tb.Machine.Noise.CounterPostLatency; lag > d {
		d = lag
	}
	if d < 50*simtime.Millisecond {
		d = 50 * simtime.Millisecond
	}
	tb.Clock.Advance(d)
}

// MeasureAveraged measures the average per-execution read/write traffic
// of reps kernel executions: counters are read before and after the
// whole batch (the aggregate) and divided by reps, exactly the paper's
// amortization technique.
func MeasureAveraged(tb *node.Testbed, route node.Route, reps int, run func(rep int)) (readAvg, writeAvg float64, err error) {
	if reps <= 0 {
		return 0, 0, fmt.Errorf("harness: non-positive repetition count %d", reps)
	}
	lib, cleanup, err := tb.NewLibrary()
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	es := lib.NewEventSet()
	// Socket 0's events only: the kernel is pinned there.
	names := tb.NestEventNames(route)[:tb.Machine.Socket.MBAChannels*2]
	if err := es.AddAll(names...); err != nil {
		return 0, 0, err
	}
	settle(tb) // flush pre-existing activity out of the window
	if err := es.Start(); err != nil {
		return 0, 0, err
	}
	for rep := 0; rep < reps; rep++ {
		run(rep)
	}
	settle(tb)
	vals, err := es.Stop()
	if err != nil {
		return 0, 0, err
	}
	var reads, writes uint64
	for i, v := range vals {
		if i%2 == 0 { // events alternate READ, WRITE per channel
			reads += v
		} else {
			writes += v
		}
	}
	return float64(reads) / float64(reps), float64(writes) / float64(reps), nil
}

// pointTestbed builds the testbed for sweep task index i: its own node
// stack on a substream of the sweep's base seed, so tasks are mutually
// independent and the sweep's output does not depend on how many workers
// ran it. Adjacent plain seeds (the old shared-testbed scheme) would
// correlate noise across points; the SplitMix64 jump decorrelates them.
func pointTestbed(m arch.Machine, opts node.Options, i int) (*node.Testbed, error) {
	opts.Seed = sweep.Seed(opts.Seed, i)
	return node.NewTestbed(m, 1, opts)
}

// GEMMConfig parameterizes the GEMM accuracy experiment.
type GEMMConfig struct {
	Machine arch.Machine
	Batched bool // one GEMM per usable core vs. single-threaded
	Route   node.Route
	Reps    RepsPolicy
	Sizes   []int64
	Options node.Options
	// Workers bounds the parallel sweep executor; <1 means one worker
	// per CPU. Results are byte-identical for every worker count: each
	// size runs on its own deterministically seeded testbed.
	Workers int
}

// GEMMSweep reproduces Figs. 2–4: for each N it plays the model-predicted
// traffic of the (serial or batched) reference GEMM and measures it. The
// adaptive-repetition batch of one size is never split — one counter
// window over all repetitions IS the paper's amortization technique —
// so parallelism fans out across sizes instead.
func GEMMSweep(cfg GEMMConfig) ([]Point, error) {
	ctx := model.Serial(cfg.Machine)
	threads := int64(1)
	if cfg.Batched {
		ctx = model.Batched(cfg.Machine)
		threads = int64(ctx.ActiveCores)
	}
	return sweep.Map(len(cfg.Sizes), cfg.Workers, func(i int) (Point, error) {
		n := cfg.Sizes[i]
		tb, err := pointTestbed(cfg.Machine, cfg.Options, i)
		if err != nil {
			return Point{}, err
		}
		defer tb.Close()
		tr := model.GEMM(ctx, n)
		reps := cfg.Reps(n)
		r, w, err := MeasureAveraged(tb, cfg.Route, reps, func(int) {
			tb.Nodes[0].Play(0, tr, 4)
		})
		if err != nil {
			return Point{}, err
		}
		want := expect.GEMM(n).Scale(threads)
		return Point{
			Size: n, Reps: reps,
			MeasuredReadBytes: r, MeasuredWriteBytes: w,
			ExpectedReadBytes: want.ReadBytes, ExpectedWriteBytes: want.WriteBytes,
		}, nil
	})
}

// GEMVConfig parameterizes the capped-GEMV experiment (Fig. 5).
type GEMVConfig struct {
	Machine arch.Machine
	Route   node.Route
	Reps    RepsPolicy
	// Sizes are output-vector lengths M. Below Cap the kernel runs as a
	// square GEMV (M=N=P); above it the matrix is capped at Cap×Cap.
	Sizes   []int64
	Cap     int64
	Options node.Options
	// Workers bounds the parallel sweep executor; <1 means one worker
	// per CPU. Output is identical for every worker count.
	Workers int
}

// DefaultGEMVCap is the paper's transition point: the size at which the
// square matrix stops fitting the per-thread L3 allotment.
const DefaultGEMVCap = 1280

// CappedGEMVSweep reproduces Fig. 5: batched capped GEMV across output
// sizes, square below the cap and capped above it.
func CappedGEMVSweep(cfg GEMVConfig) ([]Point, error) {
	if cfg.Cap == 0 {
		cfg.Cap = DefaultGEMVCap
	}
	ctx := model.Batched(cfg.Machine)
	threads := int64(ctx.ActiveCores)
	return sweep.Map(len(cfg.Sizes), cfg.Workers, func(i int) (Point, error) {
		m := cfg.Sizes[i]
		tb, err := pointTestbed(cfg.Machine, cfg.Options, i)
		if err != nil {
			return Point{}, err
		}
		defer tb.Close()
		n, p := m, m
		var want expect.Traffic
		if m > cfg.Cap {
			n, p = cfg.Cap, cfg.Cap
			want = expect.CappedGEMV(m, n)
		} else {
			want = expect.SquareGEMV(m)
		}
		tr := model.CappedGEMV(ctx, m, n, p)
		reps := cfg.Reps(m)
		r, w, err := MeasureAveraged(tb, cfg.Route, reps, func(int) {
			tb.Nodes[0].Play(0, tr, 4)
		})
		if err != nil {
			return Point{}, err
		}
		scaled := want.Scale(threads)
		return Point{
			Size: m, Reps: reps,
			MeasuredReadBytes: r, MeasuredWriteBytes: w,
			ExpectedReadBytes: scaled.ReadBytes, ExpectedWriteBytes: scaled.WriteBytes,
		}, nil
	})
}
