// GEMM traffic: reproduce the paper's measurement-accuracy experiment in
// ~40 lines — run the batched reference GEMM at several sizes with
// Equation 5's adaptive repetitions, measure through PCP, and compare
// against the 3N²+N² expectation, watching the Eq. 4 cache-capacity jump.
//
// This example also runs the *numeric* reference GEMM once to show the
// kernels are real code, not just traffic models.
package main

import (
	"fmt"
	"log"

	"papimc"
	"papimc/internal/harness"
	"papimc/internal/kernels"
	"papimc/internal/node"
)

func main() {
	// The numeric kernel (Listing 3/4): multiply two 64×64 matrices on
	// 4 goroutine "cores" and spot-check the result.
	const n = 64
	as, bs, cs := make([][]float64, 4), make([][]float64, 4), make([][]float64, 4)
	for t := range as {
		as[t] = make([]float64, n*n)
		bs[t] = make([]float64, n*n)
		cs[t] = make([]float64, n*n)
		for i := 0; i < n; i++ {
			as[t][i*n+i] = 2 // 2·I
			bs[t][i*n+i] = float64(t + 1)
		}
	}
	kernels.BatchedGEMM(as, bs, cs, n)
	fmt.Printf("numeric batched GEMM: C[3] diagonal element = %.0f (want %d)\n\n", cs[3][0], 2*4)

	// The measurement experiment (Fig. 3b's shape).
	pts, err := papimc.GEMMSweep(harness.GEMMConfig{
		Machine: papimc.Summit(),
		Batched: true,
		Route:   node.ViaPCP,
		Reps:    harness.AdaptiveReps,
		Sizes:   []int64{256, 512, 700, 1024, 2048},
		Options: papimc.Options{Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batched GEMM via PCP, adaptive repetitions:")
	fmt.Printf("%6s %6s %16s %16s %10s\n", "N", "reps", "measured reads", "expected reads", "read err")
	for _, p := range pts {
		fmt.Printf("%6d %6d %16.0f %16d %9.2f%%\n",
			p.Size, p.Reps, p.MeasuredReadBytes, p.ExpectedReadBytes, 100*p.ReadError())
	}
	fmt.Println("\nNote the agreement below N≈809 (one matrix per core fits its 5 MB L3")
	fmt.Println("share) and the drastic jump above it — Equation 4's boundary.")
}
