// Ablation benchmarks: isolate each modelled mechanism and report its
// quantitative effect as custom metrics, so `go test -bench Ablation`
// documents why each design choice in DESIGN.md exists:
//
//   - store bypass: how much read traffic the POWER9 bypass saves;
//   - castout spill fraction: how the single-thread extraneous traffic
//     of Fig. 3a scales with the imperfection knob;
//   - PMCD sampling interval: the staleness cost of the indirection;
//   - adaptive repetitions: Eq. 5 versus naive fixed policies;
//   - POWER10: where the Eq. 3/4 boundaries move on the paper's
//     future-work target.
package papimc_test

import (
	"fmt"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/cache"
	"papimc/internal/expect"
	"papimc/internal/fft"
	"papimc/internal/harness"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/simtime"
	"papimc/internal/trace"
	"papimc/internal/units"
)

type countMem struct{ reads, writes int64 }

func (m *countMem) MemRead(addr, bytes int64)  { m.reads += bytes }
func (m *countMem) MemWrite(addr, bytes int64) { m.writes += bytes }

// BenchmarkAblationStoreBypass runs the S1CF sequential copy through the
// exact simulator with the bypass enabled and disabled: disabling it
// must double the read traffic (the Fig. 6a vs 6b delta, but produced by
// the Intel-style write-allocate policy instead of dcbtst).
func BenchmarkAblationStoreBypass(b *testing.B) {
	g := fft.Grid{N: 96, R: 2, C: 4}
	soc := arch.Summit().Socket
	all := make([]int, soc.Cores)
	for i := range all {
		all[i] = i
	}
	var withBypass, without int64
	for i := 0; i < b.N; i++ {
		m1 := &countMem{}
		h1 := cache.New(cache.Config{Socket: soc, ActiveCores: all}, m1)
		g.S1CFLoopNest1Nest(trace.NewAddressSpace(), false).Execute(0, h1)
		h1.Drain()
		withBypass = m1.reads

		m2 := &countMem{}
		h2 := cache.New(cache.Config{Socket: soc, ActiveCores: all, DisableStoreBypass: true}, m2)
		g.S1CFLoopNest1Nest(trace.NewAddressSpace(), false).Execute(0, h2)
		h2.Drain()
		without = m2.reads
	}
	ratio := float64(without) / float64(withBypass)
	b.ReportMetric(ratio, "read-amplification")
	if ratio < 1.9 || ratio > 2.1 {
		b.Fatalf("disabling store bypass amplified reads by %.2f, want ~2", ratio)
	}
}

// BenchmarkAblationSpillFraction sweeps the lateral-castout spill knob
// and reports the serial GEMM's read excess at N=1200 for each setting:
// the Fig. 3a divergence is proportional to it and vanishes at 0.
func BenchmarkAblationSpillFraction(b *testing.B) {
	want := expect.GEMM(1200)
	var excesses [3]float64
	fractions := []float64{1e-9, 1.0 / 3.0, 2.0 / 3.0}
	for i := 0; i < b.N; i++ {
		for fi, f := range fractions {
			ctx := model.Serial(arch.Summit())
			ctx.CastoutSpillFraction = f
			got := model.GEMM(ctx, 1200)
			excesses[fi] = float64(got.ReadBytes-want.ReadBytes) / float64(want.ReadBytes)
		}
	}
	for fi, f := range fractions {
		b.ReportMetric(excesses[fi], fmt.Sprintf("excess-f%.2f", f))
	}
	if !(excesses[0] < excesses[1] && excesses[1] < excesses[2]) {
		b.Fatalf("spill excess not monotone in the fraction: %v", excesses)
	}
	if excesses[0] > 0.01 {
		b.Fatalf("excess %.3f with spill disabled; want ~0", excesses[0])
	}
}

// BenchmarkAblationPMCDInterval measures the same short kernel through
// PCP with increasingly sluggish daemon collection: the reported metric
// is the measurement's relative read error per interval. Slower
// collection hurts only the settle time here because the harness waits
// it out — the ablation documents that the methodology (not luck) is
// what makes PCP as good as direct reads.
func BenchmarkAblationPMCDInterval(b *testing.B) {
	intervals := []simtime.Duration{simtime.Millisecond, 10 * simtime.Millisecond, 100 * simtime.Millisecond}
	var errs [3]float64
	for i := 0; i < b.N; i++ {
		for ii, iv := range intervals {
			m := arch.Summit()
			m.Noise.PMCDSampleInterval = iv
			pts, err := harness.GEMMSweep(harness.GEMMConfig{
				Machine: m, Batched: true, Route: node.ViaPCP,
				Reps: harness.FixedReps(20), Sizes: []int64{512},
				Options: node.Options{Seed: 20230515},
			})
			if err != nil {
				b.Fatal(err)
			}
			errs[ii] = pts[0].ReadError()
		}
	}
	for ii, iv := range intervals {
		b.ReportMetric(errs[ii], fmt.Sprintf("read-err-%s", iv))
	}
	for ii, e := range errs {
		if e > 0.05 {
			b.Fatalf("interval %v: read error %.3f; the settle discipline should absorb staleness", intervals[ii], e)
		}
	}
}

// BenchmarkAblationRepetitionPolicy compares Eq. 5 against naive fixed
// policies on a noise-dominated size: adaptive matches a generous fixed
// budget at a fraction of the repetitions.
func BenchmarkAblationRepetitionPolicy(b *testing.B) {
	policies := []struct {
		name string
		p    harness.RepsPolicy
	}{
		{"fixed1", harness.SingleRep},
		{"fixed10", harness.FixedReps(10)},
		{"adaptive", harness.AdaptiveReps},
	}
	var errs [3]float64
	for i := 0; i < b.N; i++ {
		for pi, pol := range policies {
			pts, err := harness.GEMMSweep(harness.GEMMConfig{
				Machine: arch.Summit(), Batched: false, Route: node.ViaPCP,
				Reps: pol.p, Sizes: []int64{256},
				Options: node.Options{Seed: 20230515},
			})
			if err != nil {
				b.Fatal(err)
			}
			errs[pi] = pts[0].ReadError()
		}
	}
	for pi, pol := range policies {
		b.ReportMetric(errs[pi], "read-err-"+pol.name)
	}
	if !(errs[2] < errs[1] && errs[1] < errs[0]) {
		b.Fatalf("more repetitions did not monotonically reduce error: %v", errs)
	}
}

// BenchmarkAblationPower10Boundary locates the Eq. 4 traffic jump on
// POWER9 and POWER10 by bisecting the analytic model: the paper's
// future-work target moves the boundary out with its 8 MiB per-core
// share (Eq. 4 gives 809 for 5 MiB and 1024 for 8 MiB).
func BenchmarkAblationPower10Boundary(b *testing.B) {
	findJump := func(m arch.Machine) int64 {
		ctx := model.Batched(m)
		lo, hi := int64(256), int64(4096)
		for hi-lo > 8 {
			mid := (lo + hi) / 2
			got := model.GEMM(ctx, mid)
			want := expect.GEMM(mid).Scale(int64(ctx.ActiveCores))
			if got.ReadBytes > want.ReadBytes*3/2 {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}
	var p9, p10 int64
	for i := 0; i < b.N; i++ {
		p9 = findJump(arch.Summit())
		p10 = findJump(arch.Power10())
	}
	b.ReportMetric(float64(p9), "power9-jump-N")
	b.ReportMetric(float64(p10), "power10-jump-N")
	eq4p9 := expect.Equation4Bound(5 * units.MiB)
	eq4p10 := expect.Equation4Bound(8 * units.MiB)
	if p9 < eq4p9*8/10 || p9 > eq4p9*12/10 {
		b.Fatalf("POWER9 jump at N=%d, Eq.4 says ~%d", p9, eq4p9)
	}
	if p10 < eq4p10*8/10 || p10 > eq4p10*12/10 {
		b.Fatalf("POWER10 jump at N=%d, Eq.4 says ~%d", p10, eq4p10)
	}
	if p10 <= p9 {
		b.Fatalf("POWER10 boundary (%d) did not move past POWER9's (%d)", p10, p9)
	}
}
