package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"papimc/internal/pcp"
)

// Server serves a Federator over the PCP PDU protocol, so a tree can
// span processes and machines: a parent federator dials it like any
// daemon, and partial results travel as PDUFetchPartialResp. The
// accept/serve structure mirrors pcp.Daemon's.
type Server struct {
	f  *Federator
	ln net.Listener

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Serve starts serving f on addr (e.g. "127.0.0.1:0") and returns the
// running server and its bound address.
func Serve(f *Federator, addr string) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("cluster: listen: %w", err)
	}
	s := &Server{
		f:      f,
		ln:     ln,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	// Shard the accept path like pcp.Daemon: one blocked Accept per
	// processor, load-balanced by the kernel, so connection setup does
	// not serialise behind a single goroutine wakeup.
	shards := runtime.GOMAXPROCS(0)
	s.wg.Add(shards)
	for i := 0; i < shards; i++ {
		go s.acceptLoop()
	}
	return s, ln.Addr().String(), nil
}

const acceptBackoffMax = time.Second

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if backoff == 0 {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-s.closed:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := pcp.ServerHandshake(br, bw); err != nil {
		return
	}
	var payloadBuf, respBuf []byte
	for {
		typ, payload, err := pcp.ReadPDUInto(br, payloadBuf)
		if err != nil {
			return
		}
		payloadBuf = payload
		if typ == pcp.PDUVersionReq {
			respType, resp, version := pcp.NegotiateVersionV(payload, respBuf[:0])
			respBuf = resp
			if err := pcp.WritePDU(bw, respType, resp); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			if version >= pcp.Version2 {
				s.serveTagged(conn, br, bw, version >= pcp.Version3)
				return
			}
			continue
		}
		respType, resp := s.handleReq(typ, payload)
		if err := pcp.WritePDU(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// taggedConcurrency caps in-flight requests per tagged connection: a
// pipelined client cannot spawn unbounded handler goroutines; past the
// cap the reader blocks, which is exactly TCP backpressure.
const taggedConcurrency = 32

// serveTagged serves the tagged, pipelined protocol with true
// out-of-order completion: each request runs in its own goroutine, so a
// fetch whose scatter is stalled on a hedging or dead edge does not
// head-of-line-block the requests queued behind it. This differs from
// pcp.ServeTagged (sequential) deliberately — at the federation tier
// per-request latency is dominated by downstream round trips, not
// handler CPU, so concurrency is where pipelining pays. Responses are
// serialised by a write mutex.
func (s *Server) serveTagged(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, wide bool) {
	var (
		wmu sync.Mutex
		wg  sync.WaitGroup
	)
	sem := make(chan struct{}, taggedConcurrency)
	defer wg.Wait()
	var payloadBuf []byte
	for {
		var (
			typ     uint8
			tag     uint32
			tenant  uint32
			payload []byte
			err     error
		)
		if wide {
			typ, tag, tenant, payload, err = pcp.ReadWidePDUInto(br, payloadBuf)
		} else {
			typ, tag, payload, err = pcp.ReadTaggedPDUInto(br, payloadBuf)
		}
		if err != nil {
			return
		}
		payloadBuf = payload
		// The handler runs concurrently with the next read, so it gets
		// its own copy of the payload.
		req := append([]byte(nil), payload...)
		sem <- struct{}{}
		wg.Add(1)
		go func(typ uint8, tag, tenant uint32, payload []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			respType, resp := s.handleReq(typ, payload)
			wmu.Lock()
			defer wmu.Unlock()
			var werr error
			if wide {
				werr = pcp.WriteWidePDU(bw, respType, tag, tenant, resp)
			} else {
				werr = pcp.WriteTaggedPDU(bw, respType, tag, resp)
			}
			if werr != nil {
				conn.Close() // unblocks the reader; the loop exits on its error
				return
			}
			if err := bw.Flush(); err != nil {
				conn.Close()
			}
		}(typ, tag, tenant, req)
	}
}

// handleReq dispatches one request PDU to the federator and encodes the
// response. It allocates its buffers because the tagged path runs it
// from concurrent goroutines; at this tier the downstream scatter
// dwarfs the allocation cost.
func (s *Server) handleReq(typ uint8, payload []byte) (uint8, []byte) {
	switch typ {
	case pcp.PDUNamesReq:
		return pcp.PDUNamesResp, pcp.AppendNamesResp(nil, s.f.names)
	case pcp.PDUFetchReq:
		pmids, err := pcp.DecodeFetchReqInto(payload, nil)
		if err != nil {
			return pcp.PDUError, pcp.AppendError(nil, err.Error())
		}
		res, ferr := s.f.Fetch(pmids)
		return s.answer(nil, res, ferr)
	case pcp.PDUFetchAllReq:
		res, ferr := s.f.FetchAll()
		return s.answer(nil, res, ferr)
	case pcp.PDUFetchBatchReq:
		sets, err := pcp.DecodeFetchBatchReqInto(payload, nil)
		if err != nil {
			return pcp.PDUError, pcp.AppendError(nil, err.Error())
		}
		results, ferr := s.f.FetchBatch(sets)
		return s.answerBatch(nil, results, ferr)
	default:
		return pcp.PDUError, pcp.AppendError(nil, fmt.Sprintf("unknown PDU type %d", typ))
	}
}

// answer encodes a scatter-gather outcome: full results as a fetch
// response, partial results as PDUFetchPartialResp, hard failures as a
// PDU error.
func (s *Server) answer(dst []byte, res pcp.FetchResult, err error) (uint8, []byte) {
	var pe *pcp.PartialError
	switch {
	case err == nil:
		return pcp.PDUFetchResp, pcp.AppendFetchResp(dst, res)
	case errors.As(err, &pe):
		return pcp.PDUFetchPartialResp, pcp.AppendPartialResp(dst, res, pe.Missing, pe.Cause)
	default:
		return pcp.PDUError, pcp.AppendError(dst, err.Error())
	}
}

// answerBatch is answer for the batch PDU: partial outcomes ride in the
// batch response's own missing/cause header instead of a separate PDU
// type.
func (s *Server) answerBatch(dst []byte, results []pcp.FetchResult, err error) (uint8, []byte) {
	var pe *pcp.PartialError
	switch {
	case err == nil:
		return pcp.PDUFetchBatchResp, pcp.AppendFetchBatchResp(dst, results, nil, "")
	case errors.As(err, &pe):
		return pcp.PDUFetchBatchResp, pcp.AppendFetchBatchResp(dst, results, pe.Missing, pe.Cause)
	default:
		return pcp.PDUError, pcp.AppendError(dst, err.Error())
	}
}

// Close stops the listener, disconnects clients, and waits for handlers.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}
