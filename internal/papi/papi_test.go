package papi

import (
	"errors"
	"fmt"
	"testing"

	"papimc/internal/simtime"
)

// mockComponent is a scriptable in-memory component.
type mockComponent struct {
	name    string
	events  map[string]EventInfo
	values  map[string]uint64
	failNew error
}

func newMock(name string) *mockComponent {
	return &mockComponent{
		name:   name,
		events: map[string]EventInfo{},
		values: map[string]uint64{},
	}
}

func (m *mockComponent) addEvent(native string, instant bool) {
	m.events[native] = EventInfo{Name: native, Instant: instant}
}

func (m *mockComponent) Name() string { return m.name }

func (m *mockComponent) ListEvents() ([]EventInfo, error) {
	var out []EventInfo
	for _, e := range m.events {
		out = append(out, e)
	}
	return out, nil
}

func (m *mockComponent) Describe(native string) (EventInfo, error) {
	e, ok := m.events[native]
	if !ok {
		return EventInfo{}, fmt.Errorf("%w: %q", ErrNoEvent, native)
	}
	return e, nil
}

func (m *mockComponent) NewCounters(natives []string) (Counters, error) {
	if m.failNew != nil {
		return nil, m.failNew
	}
	for _, n := range natives {
		if _, ok := m.events[n]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoEvent, n)
		}
	}
	return &mockCounters{comp: m, natives: natives}, nil
}

type mockCounters struct {
	comp    *mockComponent
	natives []string
	closed  bool
}

func (c *mockCounters) ReadAt(t simtime.Time) ([]uint64, error) {
	out := make([]uint64, len(c.natives))
	for i, n := range c.natives {
		out[i] = c.comp.values[n]
	}
	return out, nil
}

func (c *mockCounters) Close() error { c.closed = true; return nil }

func newTestLib(t *testing.T) (*Library, *mockComponent, *mockComponent) {
	t.Helper()
	lib := NewLibrary(simtime.NewClock())
	cpu := newMock("perf_uncore")
	cpu.addEvent("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0", false)
	cpu.addEvent("power9_nest_mba0::PM_MBA0_WRITE_BYTES:cpu=0", false)
	aux := newMock("nvml")
	aux.addEvent("Tesla_V100:device_0:power", true)
	if err := lib.Register(cpu); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(aux); err != nil {
		t.Fatal(err)
	}
	return lib, cpu, aux
}

func TestSplitEventName(t *testing.T) {
	c, n := SplitEventName("pcp:::a.b.c:cpu87")
	if c != "pcp" || n != "a.b.c:cpu87" {
		t.Errorf("split = %q/%q", c, n)
	}
	c, n = SplitEventName("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")
	if c != "perf_uncore" || n != "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0" {
		t.Errorf("default split = %q/%q", c, n)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	lib := NewLibrary(simtime.NewClock())
	if err := lib.Register(newMock("x")); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(newMock("x")); !errors.Is(err, ErrDupeComponent) {
		t.Errorf("err = %v, want ErrDupeComponent", err)
	}
}

func TestComponentLookup(t *testing.T) {
	lib, _, _ := newTestLib(t)
	if _, err := lib.Component("nvml"); err != nil {
		t.Error(err)
	}
	if _, err := lib.Component("cuda"); !errors.Is(err, ErrNoComponent) {
		t.Errorf("err = %v, want ErrNoComponent", err)
	}
	if got := len(lib.Components()); got != 2 {
		t.Errorf("Components() len = %d, want 2", got)
	}
}

func TestAllEventsQualified(t *testing.T) {
	lib, _, _ := newTestLib(t)
	events, err := lib.AllEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("AllEvents len = %d, want 3", len(events))
	}
	var sawQualified, sawBare bool
	for _, e := range events {
		if e.Name == "nvml:::Tesla_V100:device_0:power" {
			sawQualified = true
		}
		if e.Name == "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0" {
			sawBare = true
		}
	}
	if !sawQualified || !sawBare {
		t.Errorf("qualification wrong: %+v", events)
	}
}

func TestEventSetLifecycle(t *testing.T) {
	lib, cpu, aux := newTestLib(t)
	es := lib.NewEventSet()
	if err := es.AddAll(
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0",
		"nvml:::Tesla_V100:device_0:power",
	); err != nil {
		t.Fatal(err)
	}
	cpu.values["power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"] = 1000
	aux.values["Tesla_V100:device_0:power"] = 300_000 // 300 W in mW
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	// Counter grows by 500; power level changes.
	cpu.values["power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"] = 1500
	aux.values["Tesla_V100:device_0:power"] = 250_000
	vals, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 500 {
		t.Errorf("counter delta = %d, want 500", vals[0])
	}
	if vals[1] != 250_000 {
		t.Errorf("instant value = %d, want 250000 (levels are not deltas)", vals[1])
	}
	final, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if final[0] != 500 {
		t.Errorf("final counter = %d, want 500", final[0])
	}
	// Restartable: baseline re-snapshots.
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	vals, err = es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Errorf("restarted counter = %d, want 0", vals[0])
	}
	es.Close()
}

func TestEventSetReset(t *testing.T) {
	lib, cpu, _ := newTestLib(t)
	es := lib.NewEventSet()
	name := "power9_nest_mba0::PM_MBA0_WRITE_BYTES:cpu=0"
	if err := es.Add(name); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	cpu.values[name] = 100
	if err := es.Reset(); err != nil {
		t.Fatal(err)
	}
	cpu.values[name] = 130
	vals, _ := es.Read()
	if vals[0] != 30 {
		t.Errorf("post-reset delta = %d, want 30", vals[0])
	}
}

func TestEventSetStateErrors(t *testing.T) {
	lib, _, _ := newTestLib(t)
	es := lib.NewEventSet()
	if err := es.Start(); !errors.Is(err, ErrEmptyEventSet) {
		t.Errorf("empty start err = %v", err)
	}
	if _, err := es.Read(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("read-before-start err = %v", err)
	}
	if _, err := es.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("stop-before-start err = %v", err)
	}
	if err := es.Add("nvml:::Tesla_V100:device_0:power"); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Add("nvml:::Tesla_V100:device_0:power"); !errors.Is(err, ErrIsRunning) {
		t.Errorf("add-while-running err = %v", err)
	}
	if err := es.Start(); !errors.Is(err, ErrIsRunning) {
		t.Errorf("double start err = %v", err)
	}
	es.Close()
	if _, err := es.Read(); !errors.Is(err, ErrClosedEventSet) {
		t.Errorf("read-after-close err = %v", err)
	}
	if err := es.Add("x"); !errors.Is(err, ErrClosedEventSet) {
		t.Errorf("add-after-close err = %v", err)
	}
}

func TestAddUnknownEvent(t *testing.T) {
	lib, _, _ := newTestLib(t)
	es := lib.NewEventSet()
	if err := es.Add("nvml:::no_such_event"); !errors.Is(err, ErrNoEvent) {
		t.Errorf("err = %v, want ErrNoEvent", err)
	}
	if err := es.Add("ghost:::event"); !errors.Is(err, ErrNoComponent) {
		t.Errorf("err = %v, want ErrNoComponent", err)
	}
}

func TestStartFailureClosesEarlierGroups(t *testing.T) {
	lib, _, aux := newTestLib(t)
	aux.failNew = errors.New("device lost")
	es := lib.NewEventSet()
	if err := es.AddAll(
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0",
		"nvml:::Tesla_V100:device_0:power",
	); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err == nil {
		t.Fatal("expected start failure")
	}
	// The set must be restartable after the failure is fixed.
	aux.failNew = nil
	if err := es.Start(); err != nil {
		t.Errorf("restart after failure: %v", err)
	}
}

func TestValueOrderMatchesAddOrder(t *testing.T) {
	lib, cpu, aux := newTestLib(t)
	cpu.values["power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"] = 0
	aux.values["Tesla_V100:device_0:power"] = 77
	es := lib.NewEventSet()
	// Interleave components to check index mapping.
	if err := es.AddAll(
		"nvml:::Tesla_V100:device_0:power",
		"power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0",
		"power9_nest_mba0::PM_MBA0_WRITE_BYTES:cpu=0",
	); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	cpu.values["power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"] = 5
	cpu.values["power9_nest_mba0::PM_MBA0_WRITE_BYTES:cpu=0"] = 9
	vals, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 77 || vals[1] != 5 || vals[2] != 9 {
		t.Errorf("values = %v, want [77 5 9]", vals)
	}
	names := es.EventNames()
	if names[0] != "nvml:::Tesla_V100:device_0:power" || es.Len() != 3 {
		t.Errorf("names = %v", names)
	}
}

func TestCounterWrapReportsRaw(t *testing.T) {
	lib, cpu, _ := newTestLib(t)
	name := "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"
	cpu.values[name] = 1000
	es := lib.NewEventSet()
	if err := es.Add(name); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	cpu.values[name] = 10 // counter reset underneath us
	vals, err := es.Read()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 10 {
		t.Errorf("wrapped counter = %d, want raw 10", vals[0])
	}
}
