package mem

import (
	"testing"

	"papimc/internal/simtime"
)

// The controller's read path sits inside every counter collection sweep;
// these guards pin its steady-state allocation behavior at zero so a
// regression shows up as a test failure, not a profile surprise.

func TestReadIntoDoesNotAllocate(t *testing.T) {
	c, _ := noisyController(7)
	c.AddTraffic(true, 0, 1<<20, 0, 0)
	c.AddTraffic(false, 0, 1<<19, 0, 0)
	t0 := simtime.Time(simtime.Second)
	dst := c.ReadInto(t0, nil)
	if got := testing.AllocsPerRun(100, func() {
		dst = c.ReadInto(t0, dst)
	}); got != 0 {
		t.Errorf("ReadInto allocates %.1f objects per run, want 0", got)
	}
}

func TestTotalsDoesNotAllocate(t *testing.T) {
	c, _ := noisyController(7)
	c.AddTraffic(true, 0, 1<<20, 0, 0)
	t0 := simtime.Time(simtime.Second)
	c.Totals(t0) // fold pending events once
	if got := testing.AllocsPerRun(100, func() {
		c.Totals(t0)
	}); got != 0 {
		t.Errorf("Totals allocates %.1f objects per run, want 0", got)
	}
}

func TestAddTrafficSteadyStateDoesNotAllocate(t *testing.T) {
	c, _ := noisyController(7)
	// Warm up the bucket free list so the steady state recycles.
	for i := 0; i < 64; i++ {
		c.AddTraffic(true, int64(i)*64, 4096, 0, 0)
	}
	c.Read(simtime.Time(simtime.Second))
	if got := testing.AllocsPerRun(1000, func() {
		c.AddTraffic(true, 0, 4096, 0, 0)
	}); got != 0 {
		t.Errorf("AddTraffic allocates %.1f objects per run, want 0", got)
	}
}
