// Package mem simulates the memory subsystem behind the POWER9 nest: a
// per-socket memory controller whose traffic is interleaved across eight
// MBA channels, each maintaining the PM_MBA*_READ_BYTES and
// PM_MBA*_WRITE_BYTES counters the paper measures.
//
// Two deliberate imperfections make the counters behave like the real
// ones:
//
//   - posting lag: traffic becomes visible in the counters only some
//     (stochastic) time after it occurs on the bus, so windows around
//     very short kernels miss part of their own traffic and catch strays
//     from earlier activity;
//   - background noise: the OS and other tenants generate traffic at a
//     heavy-tailed rate, and the act of reading the counters itself
//     pollutes memory (measurement overhead).
//
// Together these reproduce the noise floor of Figs. 2–3 that motivates
// the paper's adaptive-repetition scheme.
//
// Not-yet-visible traffic is held in a time-bucketed posting queue: a
// min-heap of per-post-time buckets, each aggregating bytes per
// (channel, direction). Traffic sharing a post time — every slice of an
// ideal transfer, all misses of a cache-simulated kernel at one simulated
// instant — collapses into a single bucket, and a counter read folds only
// the buckets that have become visible instead of scanning every pending
// event. Buckets are recycled on a free list, so the steady state
// allocates nothing; ReadInto and Totals are allocation-free.
package mem

import (
	"fmt"
	"sync"

	"papimc/internal/arch"
	"papimc/internal/simtime"
	"papimc/internal/units"
	"papimc/internal/xrand"
)

// TxBytes is the channel interleaving and counting granularity.
const TxBytes = units.MemTxBytes

// ChannelCounts is a snapshot of one MBA channel's byte counters.
type ChannelCounts struct {
	ReadBytes  uint64
	WriteBytes uint64
}

// postBucket aggregates all traffic becoming visible at one post time:
// read and write bytes per channel.
type postBucket struct {
	post  simtime.Time
	read  []int64
	write []int64
	chs   []int32 // channels with nonzero bytes, bounding the reset cost
}

// event is one stochastically lagged posting. Lag draws are almost never
// equal, so lagged traffic skips the bucket machinery and sits in a
// compact unsorted slice instead, partitioned on demand when a read
// crosses the earliest pending post time.
type event struct {
	post  simtime.Time
	bytes int64
	ch    int32
	read  bool
}

// Config configures a Controller.
type Config struct {
	Channels int
	Noise    arch.NoiseParams
	Seed     uint64
	// DisableNoise turns off background noise, measurement overhead and
	// posting lag, giving an ideal counter (used by validation tests to
	// separate modelling effects from noise).
	DisableNoise bool
}

// Controller is one socket's memory controller. It is safe for
// concurrent use.
type Controller struct {
	mu        sync.Mutex
	cfg       Config
	clock     *simtime.Clock
	rng       *xrand.Source
	counters  []ChannelCounts
	lastNoise simtime.Time

	// Posting queue: a min-heap of buckets ordered by post time, with a
	// free list for reuse. lastBucket coalesces runs of same-post
	// traffic (every slice of an ideal transfer, every miss of a
	// cache-simulated kernel at one instant) into a single bucket;
	// stochastically lagged events get one bucket each. Duplicate post
	// times in the heap are harmless — folding visits every bucket whose
	// post time has passed.
	heap       []*postBucket
	free       []*postBucket
	lastBucket *postBucket // most recently posted-to bucket (fast path)
	// Lagged postings sit unsorted; laggedMin lets a read skip the
	// partition pass entirely while nothing has become visible.
	lagged    []event
	laggedMin simtime.Time
	folded    simtime.Time
}

// NewController builds a controller with the given channel count and
// noise model. It panics if channels is not positive.
func NewController(cfg Config, clock *simtime.Clock) *Controller {
	if cfg.Channels <= 0 {
		panic(fmt.Sprintf("mem: invalid channel count %d", cfg.Channels))
	}
	return &Controller{
		cfg:      cfg,
		clock:    clock,
		rng:      xrand.New(cfg.Seed),
		counters: make([]ChannelCounts, cfg.Channels),
	}
}

// Channels returns the number of MBA channels.
func (c *Controller) Channels() int { return c.cfg.Channels }

// Clock returns the simulated clock driving this controller.
func (c *Controller) Clock() *simtime.Clock { return c.clock }

// AddTraffic records bytes of read or write traffic occurring over
// [start, end] at the given starting address. The traffic is interleaved
// across channels in 64-byte transactions and posts to the counters with
// the configured lag after end.
func (c *Controller) AddTraffic(read bool, addr, bytes int64, start, end simtime.Time) {
	if bytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(read, addr, bytes, end)
	_ = start // start is kept in the signature for future DRAM-timing models
}

// bucketFor returns the (possibly new) bucket aggregating traffic that
// posts at the given time.
func (c *Controller) bucketFor(post simtime.Time) *postBucket {
	if b := c.lastBucket; b != nil && b.post == post {
		return b
	}
	var b *postBucket
	if n := len(c.free); n > 0 {
		b = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		b = &postBucket{
			read:  make([]int64, c.cfg.Channels),
			write: make([]int64, c.cfg.Channels),
			chs:   make([]int32, 0, c.cfg.Channels),
		}
	}
	b.post = post
	c.heapPush(b)
	c.lastBucket = b
	return b
}

// postLocked queues bytes on channel ch to become visible at post. If the
// post time is already folded into the counters, it posts directly — the
// allocation-free fast path taken whenever lag is disabled and the
// counters are read at (or past) the traffic's own instant.
func (c *Controller) postLocked(read bool, ch int, bytes int64, post simtime.Time) {
	if post <= c.folded {
		if read {
			c.counters[ch].ReadBytes += uint64(bytes)
		} else {
			c.counters[ch].WriteBytes += uint64(bytes)
		}
		return
	}
	b := c.bucketFor(post)
	if read {
		if b.read[ch] == 0 && b.write[ch] == 0 {
			b.chs = append(b.chs, int32(ch))
		}
		b.read[ch] += bytes
	} else {
		if b.read[ch] == 0 && b.write[ch] == 0 {
			b.chs = append(b.chs, int32(ch))
		}
		b.write[ch] += bytes
	}
}

func (c *Controller) addLocked(read bool, addr, bytes int64, at simtime.Time) {
	tx := units.TxCount(bytes)
	n := int64(c.cfg.Channels)
	base := tx / n
	rem := tx % n
	first := (addr / TxBytes) % n
	if first < 0 {
		first = -first
	}
	lagged := !c.cfg.DisableNoise && c.cfg.Noise.CounterPostLatency > 0
	for i := int64(0); i < n; i++ {
		chTx := base
		// The remainder lands on the channels immediately following the
		// starting address's channel, as interleaving would place it.
		if (i-first+n)%n < rem {
			chTx++
		}
		if chTx == 0 {
			continue
		}
		if lagged {
			lag := simtime.Duration(float64(c.cfg.Noise.CounterPostLatency) * c.rng.ExpFloat64())
			c.pushEvent(event{post: at.Add(lag), ch: int32(i), read: read, bytes: chTx * TxBytes})
			continue
		}
		c.postLocked(read, int(i), chTx*TxBytes, at)
	}
}

// AddTrafficSpread records bytes of traffic distributed uniformly over
// [start, end] in the given number of slices, so that counter samples
// taken inside the window see the transfer progressing rather than one
// lump at the end. Use it for long DMA transfers and copies.
func (c *Controller) AddTrafficSpread(read bool, addr, bytes int64, start, end simtime.Time, slices int) {
	if bytes <= 0 {
		return
	}
	if slices < 1 {
		slices = 1
	}
	span := end.Sub(start)
	per := bytes / int64(slices)
	for s := 0; s < slices; s++ {
		b := per
		if s == slices-1 {
			b = bytes - per*int64(slices-1)
		}
		t1 := start.Add(simtime.Duration(int64(span) * int64(s+1) / int64(slices)))
		t0 := start.Add(simtime.Duration(int64(span) * int64(s) / int64(slices)))
		c.AddTraffic(read, addr+int64(s)*TxBytes, b, t0, t1)
	}
}

// InjectMeasurementOverhead models the memory traffic caused by one
// counter-read operation (daemon wakeup, context switches, cache
// pollution of the measuring process).
func (c *Controller) InjectMeasurementOverhead(t simtime.Time) {
	if c.cfg.DisableNoise || c.cfg.Noise.MeasurementOverheadBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Log-normal with unit mean: exp(-σ²/2 + σZ).
	const sigma = 0.5
	mag := c.rng.LogNormal(-sigma*sigma/2, sigma)
	bytes := int64(c.cfg.Noise.MeasurementOverheadBytes * mag)
	// Overhead is mostly reads (instruction fetch, page metadata), with
	// a smaller write component.
	c.addLocked(true, int64(c.rng.Uint64()%(1<<30)), bytes*2/3, t)
	c.addLocked(false, int64(c.rng.Uint64()%(1<<30)), bytes/3, t)
}

// noiseStep is the granularity at which background noise is synthesized.
const noiseStep = simtime.Millisecond

// advanceNoiseLocked synthesizes background traffic from lastNoise to t.
func (c *Controller) advanceNoiseLocked(t simtime.Time) {
	if c.cfg.DisableNoise || c.cfg.Noise.BackgroundBytesPerSec <= 0 {
		c.lastNoise = t
		return
	}
	sigma := c.cfg.Noise.BackgroundBurstSigma
	for c.lastNoise < t {
		step := simtime.Duration(noiseStep)
		if remaining := t.Sub(c.lastNoise); remaining < step {
			step = remaining
		}
		mag := 1.0
		if sigma > 0 {
			mag = c.rng.LogNormal(-sigma*sigma/2, sigma)
		}
		bytes := int64(c.cfg.Noise.BackgroundBytesPerSec * step.Seconds() * mag)
		at := c.lastNoise.Add(step)
		addr := int64(c.rng.Uint64() % (1 << 30))
		c.addLocked(true, addr, bytes*3/5, at)
		c.addLocked(false, addr, bytes*2/5, at)
		c.lastNoise = at
	}
}

// foldLocked advances noise to t and folds everything posted at or
// before t — queued buckets and lagged events — into the cumulative
// counters.
func (c *Controller) foldLocked(t simtime.Time) {
	c.advanceNoiseLocked(t)
	for len(c.heap) > 0 && c.heap[0].post <= t {
		b := c.heapPop()
		for _, ch := range b.chs {
			c.counters[ch].ReadBytes += uint64(b.read[ch])
			c.counters[ch].WriteBytes += uint64(b.write[ch])
			b.read[ch] = 0
			b.write[ch] = 0
		}
		if c.lastBucket == b {
			c.lastBucket = nil
		}
		b.chs = b.chs[:0]
		c.free = append(c.free, b)
	}
	if len(c.lagged) > 0 && c.laggedMin <= t {
		// Single partition pass: fold everything visible, keep the rest
		// in place and recompute the watermark. Reads that precede the
		// earliest pending post skip this entirely.
		kept := c.lagged[:0]
		min := simtime.Time(1<<63 - 1)
		for _, e := range c.lagged {
			if e.post <= t {
				if e.read {
					c.counters[e.ch].ReadBytes += uint64(e.bytes)
				} else {
					c.counters[e.ch].WriteBytes += uint64(e.bytes)
				}
				continue
			}
			if e.post < min {
				min = e.post
			}
			kept = append(kept, e)
		}
		c.lagged = kept
		c.laggedMin = min
	}
	if t > c.folded {
		c.folded = t
	}
}

// Read returns a snapshot of every channel's counters as visible at
// simulated time t: all traffic posted at or before t, plus background
// noise up to t.
func (c *Controller) Read(t simtime.Time) []ChannelCounts {
	return c.ReadInto(t, nil)
}

// ReadInto is Read into a caller-provided buffer, growing it if needed;
// with a buffer of sufficient capacity it does not allocate.
func (c *Controller) ReadInto(t simtime.Time, dst []ChannelCounts) []ChannelCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.foldLocked(t)
	dst = dst[:0]
	dst = append(dst, c.counters...)
	return dst
}

// Totals returns the summed read and write bytes across channels at t.
// It sums in place under the lock and does not allocate.
func (c *Controller) Totals(t simtime.Time) (readBytes, writeBytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.foldLocked(t)
	for i := range c.counters {
		readBytes += c.counters[i].ReadBytes
		writeBytes += c.counters[i].WriteBytes
	}
	return readBytes, writeBytes
}

// PendingBuckets returns the number of unfolded posting-queue entries:
// coalesced buckets plus lagged events (test instrumentation).
func (c *Controller) PendingBuckets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.heap) + len(c.lagged)
}

// --- posting-queue min-heap (ordered by post time) ---------------------

func (c *Controller) heapPush(b *postBucket) {
	c.heap = append(c.heap, b)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent].post <= c.heap[i].post {
			break
		}
		c.heap[parent], c.heap[i] = c.heap[i], c.heap[parent]
		i = parent
	}
}

func (c *Controller) heapPop() *postBucket {
	top := c.heap[0]
	n := len(c.heap) - 1
	c.heap[0] = c.heap[n]
	c.heap[n] = nil
	c.heap = c.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && c.heap[l].post < c.heap[min].post {
			min = l
		}
		if r < n && c.heap[r].post < c.heap[min].post {
			min = r
		}
		if min == i {
			break
		}
		c.heap[i], c.heap[min] = c.heap[min], c.heap[i]
		i = min
	}
	return top
}

// pushEvent queues one lagged posting, folding it directly when its post
// time is already inside the folded window.
func (c *Controller) pushEvent(e event) {
	if e.post <= c.folded {
		if e.read {
			c.counters[e.ch].ReadBytes += uint64(e.bytes)
		} else {
			c.counters[e.ch].WriteBytes += uint64(e.bytes)
		}
		return
	}
	if len(c.lagged) == 0 || e.post < c.laggedMin {
		c.laggedMin = e.post
	}
	c.lagged = append(c.lagged, e)
}

// Port adapts the controller to the cache simulator's MemPort: each
// MemRead/MemWrite is traffic at the clock's current instant.
type Port struct {
	C *Controller
}

// MemRead implements cache.MemPort.
func (p Port) MemRead(addr, bytes int64) {
	now := p.C.clock.Now()
	p.C.AddTraffic(true, addr, bytes, now, now)
}

// MemWrite implements cache.MemPort.
func (p Port) MemWrite(addr, bytes int64) {
	now := p.C.clock.Now()
	p.C.AddTraffic(false, addr, bytes, now, now)
}
