// Targets: where the engine's requests go. The virtual-time engine and
// the wall-clock executor share the whole generation and issue path; a
// Target is the single point where they diverge — SimTarget computes a
// deterministic queueing outcome in virtual time, LiveTarget performs a
// real fetch and measures the wall clock.
package workload

import (
	"time"

	"papimc/internal/loadgen"
	"papimc/internal/simtime"
	"papimc/internal/sweep"
	"papimc/internal/xrand"
)

// Request is one generated query, fully determined by the spec and seed.
type Request struct {
	T      simtime.Time // scheduled (virtual) arrival
	Seq    int64        // global issue-order sequence number
	Cohort int
	Class  Class
	Size   int // metrics touched
}

// Outcome is a completed request: latency measured from the scheduled
// arrival (queueing included — no coordinated omission), and whether the
// request failed.
type Outcome struct {
	Lat int64 // nanoseconds
	Err bool
}

// Target executes one request.
type Target interface {
	Do(req Request) Outcome
}

// targetSub is the sweep.Seed substream index reserved for the service
// model, far above any cohort index so client streams never collide.
const targetSub = 1 << 20

// SimTarget is the deterministic service model: a bank of Servers
// parallel service slots fed in arrival order. A request entering at T
// starts on the earliest-free slot (queueing delay if all are busy) and
// holds it for a service time proportional to its size, with bounded
// uniform jitter drawn from the target's own seed substream in issue
// order — so a replayed trace, issuing the same requests in the same
// order, reproduces every latency bit-exact.
type SimTarget struct {
	spec ServerSpec
	rng  *xrand.Source
	busy []int64 // per-slot busy-until, virtual ns
}

// NewSimTarget builds the service model for a validated spec.
func NewSimTarget(spec *Spec) *SimTarget {
	return &SimTarget{
		spec: spec.Server,
		rng:  xrand.New(sweep.Seed(spec.Seed, targetSub)),
		busy: make([]int64, spec.Server.Servers),
	}
}

// Do implements Target.
func (st *SimTarget) Do(req Request) Outcome {
	best := 0
	for i := 1; i < len(st.busy); i++ {
		if st.busy[i] < st.busy[best] {
			best = i
		}
	}
	start := int64(req.T)
	if st.busy[best] > start {
		start = st.busy[best]
	}
	svc := float64(st.spec.Base) * float64(req.Size) / st.spec.SizeRef
	if j := st.spec.Jitter; j > 0 {
		svc *= 1 + j*(2*st.rng.Float64()-1)
	}
	if svc < 1 {
		svc = 1
	}
	done := start + int64(svc)
	st.busy[best] = done
	return Outcome{Lat: done - int64(req.T)}
}

// LiveTarget issues real fetches through a loadgen connection and
// measures wall-clock latency. The request's Size picks how many PMIDs
// the fetch covers (clamped to MaxPMIDs), so the heavy-tailed size mix
// exercises wide fetches against the real tier too.
type LiveTarget struct {
	fet      loadgen.Fetcher
	maxPMIDs int
	pmids    []uint32
}

// NewLiveTarget wraps one fetcher connection. maxPMIDs caps the fetch
// width (0 means 64).
func NewLiveTarget(fet loadgen.Fetcher, maxPMIDs int) *LiveTarget {
	if maxPMIDs <= 0 {
		maxPMIDs = 64
	}
	return &LiveTarget{fet: fet, maxPMIDs: maxPMIDs}
}

// Do implements Target.
func (lt *LiveTarget) Do(req Request) Outcome {
	n := req.Size
	if n > lt.maxPMIDs {
		n = lt.maxPMIDs
	}
	if n < 1 {
		n = 1
	}
	lt.pmids = lt.pmids[:0]
	for i := 0; i < n; i++ {
		lt.pmids = append(lt.pmids, uint32(i+1))
	}
	start := time.Now()
	_, err := lt.fet.Fetch(lt.pmids)
	return Outcome{Lat: time.Since(start).Nanoseconds(), Err: err != nil}
}
