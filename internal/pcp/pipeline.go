package pcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed is the sticky error every request in flight (and every
// later request) fails with once a pipelined client is closed.
var ErrClientClosed = errors.New("pcp: client closed")

// ErrRequestTimeout fails a pipelined request whose per-request deadline
// expired. It wraps os.ErrDeadlineExceeded so errors.Is and net-style
// timeout classification both work. Unlike a lockstep timeout, the
// connection stays in a defined state: the tag is abandoned and the late
// response, if it ever arrives, is discarded by the demux reader.
var ErrRequestTimeout = fmt.Errorf("pcp: request timed out: %w", os.ErrDeadlineExceeded)

// pcall is one in-flight pipelined request: the encoded request payload,
// the slot the response lands in, and the completion signal. Calls are
// pooled; a call abandoned on timeout is left to the garbage collector
// instead, because the writer or reader may still hold a reference.
type pcall struct {
	typ     uint8
	tag     uint32
	tenant  uint32 // stamped on the request's wide frame (Version3)
	req     []byte // encoded request payload (owned, reused)
	resp    []byte // response payload (owned, reused)
	respTyp uint8
	err     error
	done    chan struct{} // 1-buffered: completion never blocks
	timer   *time.Timer   // reused per-request deadline timer
}

var callPool = sync.Pool{
	New: func() any { return &pcall{done: make(chan struct{}, 1)} },
}

func getCall() *pcall {
	c := callPool.Get().(*pcall)
	c.err = nil
	c.respTyp = 0
	return c
}

func putCall(c *pcall) { callPool.Put(c) }

// wait blocks until the call completes or the per-request deadline d
// expires (d <= 0 means no deadline). The deadline timer lives in the
// call and is reused across round trips, so an armed wait does not
// allocate in the steady state.
func (c *pcall) wait(d time.Duration) error {
	if d <= 0 {
		<-c.done
		return nil
	}
	if c.timer == nil {
		c.timer = time.NewTimer(d)
	} else {
		c.timer.Reset(d)
	}
	select {
	case <-c.done:
		if !c.timer.Stop() {
			<-c.timer.C
		}
		return nil
	case <-c.timer.C:
		return ErrRequestTimeout
	}
}

// pipeline is the Version2 transport of a Client: a writer goroutine
// that drains a request queue into vectored, coalesced tagged frames,
// and a demux reader that completes calls by tag — many requests
// outstanding per connection, out-of-order completion, per-request
// deadlines. Any transport error is sticky: it fails every pending and
// future request and closes the connection.
type pipeline struct {
	conn net.Conn
	wq   chan *pcall
	quit chan struct{} // closed by fail; unblocks enqueue and the writer

	// wide selects Version3 framing: every frame carries a tenant field
	// (requests send the client's tenant, responses echo it). Set once at
	// construction, before the loops start.
	wide   bool
	tenant atomic.Uint32 // tenant stamped on outgoing wide frames

	mu      sync.Mutex
	pending map[uint32]*pcall
	nextTag uint32
	err     error // sticky transport error

	readerDone chan struct{}
	writerDone chan struct{}
}

// pipelineQueueDepth bounds the request queue. A full queue applies
// backpressure by blocking enqueue until the writer drains.
const pipelineQueueDepth = 256

func newPipeline(conn net.Conn, br *bufio.Reader, wide bool) *pipeline {
	p := &pipeline{
		conn:       conn,
		wq:         make(chan *pcall, pipelineQueueDepth),
		quit:       make(chan struct{}),
		wide:       wide,
		pending:    make(map[uint32]*pcall),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	go p.writeLoop()
	go p.readLoop(br)
	return p
}

// enqueue assigns the call a tag, registers it for demux, and hands it
// to the writer.
func (p *pipeline) enqueue(call *pcall) error {
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	// Tags wrap at 2^32; skip any still pending (a request would have to
	// stay outstanding across four billion successors to collide).
	for {
		p.nextTag++
		if _, live := p.pending[p.nextTag]; !live {
			break
		}
	}
	call.tag = p.nextTag
	p.pending[call.tag] = call
	p.mu.Unlock()
	select {
	case p.wq <- call:
		return nil
	case <-p.quit:
		p.mu.Lock()
		err := p.err
		delete(p.pending, call.tag)
		p.mu.Unlock()
		return err
	}
}

// abandon drops a timed-out call: the demux reader will discard its
// late response. The call itself is never pooled again — the writer or
// reader may still reference it.
func (p *pipeline) abandon(tag uint32) {
	p.mu.Lock()
	delete(p.pending, tag)
	p.mu.Unlock()
}

// writeLoop drains the request queue into a frameBatch: whatever is
// queued when the writer wakes goes out in one vectored write, so a
// burst of concurrent requests coalesces into one syscall.
func (p *pipeline) writeLoop() {
	defer close(p.writerDone)
	var batch frameBatch
	appendCall := func(c *pcall) error {
		if p.wide {
			_, err := batch.appendWide(c.typ, c.tag, c.tenant, c.req)
			return err
		}
		_, err := batch.appendFrame(c.typ, c.tag, c.req)
		return err
	}
	for {
		select {
		case call := <-p.wq:
			if err := appendCall(call); err != nil {
				p.fail(err)
				return
			}
		drain:
			for {
				select {
				case next := <-p.wq:
					if err := appendCall(next); err != nil {
						p.fail(err)
						return
					}
				default:
					break drain
				}
			}
			if err := batch.flush(p.conn); err != nil {
				p.fail(err)
				return
			}
		case <-p.quit:
			return
		}
	}
}

// readLoop demultiplexes responses by tag. A tag with no pending call
// belongs to an abandoned (timed-out) request; its payload is discarded
// without allocating.
func (p *pipeline) readLoop(br *bufio.Reader) {
	defer close(p.readerDone)
	for {
		var (
			typ uint8
			tag uint32
			n   uint32
			err error
		)
		if p.wide {
			typ, tag, _, n, err = ReadWideHeader(br) // echoed tenant is informational
		} else {
			typ, tag, n, err = ReadTaggedHeader(br)
		}
		if err != nil {
			p.fail(err)
			return
		}
		p.mu.Lock()
		call := p.pending[tag]
		delete(p.pending, tag)
		p.mu.Unlock()
		if call == nil {
			if _, err := br.Discard(int(n)); err != nil {
				p.fail(err)
				return
			}
			continue
		}
		if uint32(cap(call.resp)) < n {
			call.resp = make([]byte, n)
		}
		call.resp = call.resp[:n]
		if _, err := io.ReadFull(br, call.resp); err != nil {
			call.err = err
			call.done <- struct{}{}
			p.fail(err)
			return
		}
		call.respTyp = typ
		call.done <- struct{}{}
	}
}

// fail records the sticky error, closes the connection (unblocking both
// loops), and completes every pending call with the error. It is
// idempotent; the first error wins.
func (p *pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
		close(p.quit)
		p.conn.Close()
	}
	sticky := p.err
	pend := p.pending
	p.pending = make(map[uint32]*pcall)
	p.mu.Unlock()
	for _, call := range pend {
		call.err = sticky
		call.done <- struct{}{}
	}
}

// close shuts the pipeline down: pending requests fail with
// ErrClientClosed and both goroutines exit.
func (p *pipeline) close() error {
	p.fail(ErrClientClosed)
	<-p.writerDone
	<-p.readerDone
	return nil
}

// roundTrip issues one pipelined request and waits for its response
// (deadline d, 0 = none), surfacing server error PDUs as Go errors.
// enc appends the request payload to the call's reused buffer (nil =
// empty payload). On success the returned call holds the response
// payload; the caller decodes it and then releases the call with
// putCall.
func (p *pipeline) roundTrip(reqType uint8, enc func(dst []byte) []byte, d time.Duration, want1, want2 uint8) (*pcall, error) {
	call := getCall()
	call.typ = reqType
	call.tenant = p.tenant.Load()
	call.req = call.req[:0]
	if enc != nil {
		call.req = enc(call.req)
	}
	if err := p.enqueue(call); err != nil {
		putCall(call)
		return nil, err
	}
	if err := call.wait(d); err != nil {
		p.abandon(call.tag)
		return nil, err
	}
	if call.err != nil {
		err := call.err
		putCall(call)
		return nil, err
	}
	switch call.respTyp {
	case want1, want2:
		return call, nil
	case PDUError:
		msg, derr := DecodeError(call.resp)
		putCall(call)
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("pcp: daemon error: %s", msg)
	case PDUStatusError:
		se, derr := DecodeStatusError(call.resp)
		putCall(call)
		if derr != nil {
			return nil, derr
		}
		return nil, se
	}
	typ := call.respTyp
	putCall(call)
	return nil, fmt.Errorf("%w: expected PDU %d, got %d", ErrProtocol, want1, typ)
}
