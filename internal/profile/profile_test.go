package profile

import (
	"strings"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/gpu"
	"papimc/internal/model"
	"papimc/internal/node"
	"papimc/internal/simtime"
)

func testbed(t *testing.T) *node.Testbed {
	t.Helper()
	tb, err := node.NewTestbed(arch.Summit(), 2, node.Options{Seed: 9, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })
	return tb
}

func TestRunBasicSampling(t *testing.T) {
	tb := testbed(t)
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	events := tb.NestEventNames(node.ViaPCP)[:2]
	tr := model.Traffic{ReadBytes: 1 << 20, WriteBytes: 1 << 19, Duration: 100 * simtime.Millisecond}
	phases := []Phase{{
		Name:     "work",
		Duration: tr.Duration,
		Emit:     emitTraffic(tb.Nodes[0], 0, tr),
	}}
	res, err := Run(lib, events, 10*simtime.Millisecond, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 10 {
		t.Errorf("samples = %d, want 10", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.Phase != "work" {
			t.Errorf("phase = %q", s.Phase)
		}
	}
	// Ideal counters: total sampled deltas equal the emitted traffic on
	// channel 0 (events[0] is channel 0 READ, events[1] channel 0 WRITE).
	var reads uint64
	for _, s := range res.Samples {
		reads += s.Values[0]
	}
	// 8 channels, even split, modulo 64-byte rounding per emit call.
	want := uint64((1 << 20) / 8)
	if reads < want || reads > want+64*uint64(len(res.Samples)) {
		t.Errorf("channel-0 reads = %d, want ~%d", reads, want)
	}
}

func TestRunValidation(t *testing.T) {
	tb := testbed(t)
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	ev := tb.NestEventNames(node.ViaPCP)[:1]
	if _, err := Run(lib, ev, 0, []Phase{{Name: "x", Duration: 1}}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Run(lib, ev, 1, nil); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := Run(lib, ev, 1, []Phase{{Name: "x", Duration: 0}}); err == nil {
		t.Error("zero-duration phase accepted")
	}
	if _, err := Run(lib, []string{"ghost:::ev"}, 1, []Phase{{Name: "x", Duration: 1}}); err == nil {
		t.Error("unknown event accepted")
	}
}

// The Fig. 11 profile must show its signature: read burst before the
// GPU spike, write burst after, IB activity only in the All2All phases,
// strided resorts reading ~2× what they write.
func TestFFTProfileShape(t *testing.T) {
	tb := testbed(t)
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	// Paper-scale N keeps every phase much longer than both the PMCD
	// collection interval and the sampling interval.
	phases, err := FFTPhases(tb, FFTAppConfig{N: 2016, GridR: 8, GridC: 8})
	if err != nil {
		t.Fatal(err)
	}
	events := FFTProfileEvents(tb)
	res, err := Run(lib, events, 10*simtime.Millisecond, phases)
	if err != nil {
		t.Fatal(err)
	}
	totals := res.PhaseTotals()

	nCh := tb.Machine.Socket.MBAChannels
	sumReads := func(vals []float64) (s float64) {
		for i := 0; i < 2*nCh; i += 2 {
			s += vals[i]
		}
		return
	}
	sumWrites := func(vals []float64) (s float64) {
		for i := 1; i < 2*nCh; i += 2 {
			s += vals[i]
		}
		return
	}
	powerIdx := 2 * nCh
	ibIdx := 2*nCh + 1

	h2d := totals["H2D-z"]
	if sumReads(h2d) == 0 || sumWrites(h2d) > sumReads(h2d)/10 {
		t.Errorf("H2D phase should be read-dominated: R=%v W=%v", sumReads(h2d), sumWrites(h2d))
	}
	d2h := totals["D2H-z"]
	if sumWrites(d2h) == 0 || sumReads(d2h) > sumWrites(d2h)/10 {
		t.Errorf("D2H phase should be write-dominated: R=%v W=%v", sumReads(d2h), sumWrites(d2h))
	}
	fftPhase := totals["FFT-z(GPU)"]
	if fftPhase[powerIdx] < float64(gpu.BusyMilliwatts)*0.9 {
		t.Errorf("GPU power during FFT = %v mW, want ~%d", fftPhase[powerIdx], gpu.BusyMilliwatts)
	}
	if h2d[powerIdx] >= float64(gpu.BusyMilliwatts) {
		t.Errorf("GPU at full power during H2D: %v", h2d[powerIdx])
	}
	// Strided resort: ~2 reads per write (phase-boundary smearing from
	// the PMCD collection interval loosens the band slightly).
	r1 := totals["resort-1(S1CF)"]
	ratio := sumReads(r1) / sumWrites(r1)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("resort-1 read:write = %.2f, want ~2", ratio)
	}
	// Layout-matched resort: ~1:1.
	r2 := totals["resort-2"]
	ratio2 := sumReads(r2) / sumWrites(r2)
	if ratio2 < 0.75 || ratio2 > 1.3 {
		t.Errorf("resort-2 read:write = %.2f, want ~1", ratio2)
	}
	// Network counters move only in the All2All phases.
	if totals["All2All-1"][ibIdx] == 0 {
		t.Error("no IB traffic during All2All-1")
	}
	for name, vals := range totals {
		if strings.HasPrefix(name, "All2All") {
			continue
		}
		if vals[ibIdx] != 0 {
			t.Errorf("IB traffic during %q: %v", name, vals[ibIdx])
		}
	}
}

// The Fig. 12 profile: the three QMC stages must be distinguishable —
// monotonically increasing memory traffic, increasing GPU duty, network
// activity only in DMC.
func TestQMCProfileShape(t *testing.T) {
	tb := testbed(t)
	lib, _, err := tb.NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	phases, err := QMCPhases(tb, QMCAppConfig{Walkers: 1024, PhaseDuration: 200 * simtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	events := FFTProfileEvents(tb) // same selection works for QMC
	res, err := Run(lib, events, 10*simtime.Millisecond, phases)
	if err != nil {
		t.Fatal(err)
	}
	totals := res.PhaseTotals()
	nCh := tb.Machine.Socket.MBAChannels
	mem := func(phase string) (s float64) {
		for i := 0; i < 2*nCh; i++ {
			s += totals[phase][i]
		}
		return
	}
	v1, v2, d := mem("VMC-no-drift"), mem("VMC-drift"), mem("DMC")
	if !(v1 < v2 && v2 < d) {
		t.Errorf("memory traffic not increasing across stages: %v, %v, %v", v1, v2, d)
	}
	powerIdx := 2 * nCh
	p1 := totals["VMC-no-drift"][powerIdx]
	p3 := totals["DMC"][powerIdx]
	if p3 <= p1 {
		t.Errorf("DMC GPU duty %v not above VMC-no-drift %v", p3, p1)
	}
	ibIdx := 2*nCh + 1
	if totals["DMC"][ibIdx] == 0 {
		t.Error("no network activity in DMC")
	}
	if totals["VMC-no-drift"][ibIdx] != 0 {
		t.Error("network activity in VMC-no-drift")
	}
}

func TestAppBuilderValidation(t *testing.T) {
	tb := testbed(t)
	if _, err := FFTPhases(tb, FFTAppConfig{N: 7, GridR: 2, GridC: 2}); err == nil {
		t.Error("indivisible N accepted")
	}
	if _, err := QMCPhases(tb, QMCAppConfig{Walkers: 0, PhaseDuration: 1}); err == nil {
		t.Error("zero walkers accepted")
	}
	single, err := node.NewTestbed(arch.Summit(), 1, node.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if _, err := FFTPhases(single, FFTAppConfig{N: 64, GridR: 8, GridC: 8}); err == nil {
		t.Error("single-node testbed accepted for a distributed app")
	}
	tell, err := node.NewTestbed(arch.Tellico(), 2, node.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tell.Close()
	if _, err := FFTPhases(tell, FFTAppConfig{N: 64, GridR: 8, GridC: 8}); err == nil {
		t.Error("GPU-less machine accepted for the GPU FFT app")
	}
}
