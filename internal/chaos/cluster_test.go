package chaos

import (
	"strings"
	"testing"
)

// TestClusterProfiles drives a small tree through every named profile.
// Each trial's invariants (missing set == victim set, certified values,
// surviving groups, edge conservation laws) are checked inside
// runClusterTrial; any violation fails here with the repro line.
func TestClusterProfiles(t *testing.T) {
	for _, name := range ClusterProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			o := ClusterOptions{
				Seed:    0x5EED,
				Trials:  2,
				Queries: 3,
				Nodes:   16,
				FanOut:  4,
				Profile: ClusterProfiles[name],
				Trial:   -1,
			}
			rep, err := RunCluster(o)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				t.Fatalf("profile %s violated invariants:\n%s\nrepro: %s",
					name, rep, ClusterReproLine(o, rep.Trials[0].Index))
			}
		})
	}
}

// TestClusterAcceptance is the issue's acceptance scenario as a chaos
// trial: a 64-node, 3-level tree with 3 nodes killed mid-stream still
// answers sum(mem.read_bw) by (node), names exactly the missing nodes,
// and the whole report is byte-reproducible from the seed — including
// across worker counts, which proves no timing-dependent state leaks
// into the results.
func TestClusterAcceptance(t *testing.T) {
	o := ClusterOptions{
		Seed:    0xC10C,
		Trials:  3,
		Queries: 4,
		Nodes:   64,
		FanOut:  4,
		Profile: ClusterProfile{Kill: 3, Flap: true},
		Trial:   -1,
	}
	rep, err := RunCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("acceptance run violated invariants:\n%s", rep)
	}
	for _, tr := range rep.Trials {
		if tr.Depth != 3 {
			t.Errorf("trial %d: depth %d, want 3", tr.Index, tr.Depth)
		}
		if tr.Partials != tr.Queries {
			t.Errorf("trial %d: %d/%d queries partial; every query had 3 nodes down", tr.Index, tr.Partials, tr.Queries)
		}
		if len(tr.Missing) != 3 {
			t.Errorf("trial %d: missing=%v, want exactly 3 nodes", tr.Index, tr.Missing)
		}
	}

	// Byte-reproducible: same seed, different worker counts, identical
	// report text.
	first := rep.String()
	for _, workers := range []int{1, 4} {
		o2 := o
		o2.Workers = workers
		rep2, err := RunCluster(o2)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep2.String(); got != first {
			t.Errorf("workers=%d report diverged:\n--- first\n%s--- again\n%s", workers, first, got)
		}
	}
	if !strings.Contains(first, "missing=[node") {
		t.Errorf("report does not name missing nodes:\n%s", first)
	}
}

// TestClusterSingleTrialReplay checks that -trial replay reproduces the
// same trial the full sweep produced.
func TestClusterSingleTrialReplay(t *testing.T) {
	o := ClusterOptions{
		Seed:    0xD1CE,
		Trials:  3,
		Queries: 2,
		Nodes:   16,
		FanOut:  4,
		Profile: ClusterProfiles["mixed"],
		Trial:   -1,
	}
	full, err := RunCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Trial = 2
	one, err := RunCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Trials) != 1 {
		t.Fatalf("replay returned %d trials", len(one.Trials))
	}
	wantRep := (&ClusterReport{Trials: full.Trials[2:3]}).String()
	if got := one.String(); got != wantRep {
		t.Errorf("replayed trial diverged:\n--- sweep\n%s--- replay\n%s", wantRep, got)
	}
}
