package workload

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// recordRun runs the spec in virtual time with recording on and returns
// the report, the trace, and its serialized bytes.
func recordRun(t *testing.T, spec *Spec, o Options) (*Report, *Trace, []byte) {
	t.Helper()
	var tr Trace
	o.Record = &tr
	rep, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, &tr, buf.Bytes()
}

// TestTraceReplayBitExact is the acceptance criterion: record a
// virtual-time run, serialize the trace, read it back, replay it against
// the same spec — and get the identical result stream. Identical means
// bit-exact: the replay's re-recorded trace serializes to the same bytes
// as the original, and the reports render identically.
func TestTraceReplayBitExact(t *testing.T) {
	rep1, _, raw1 := recordRun(t, richSpec(), Options{})

	got, err := ReadTrace(bytes.NewReader(raw1))
	if err != nil {
		t.Fatal(err)
	}
	var rerec Trace
	rep2, err := Replay(got, richSpec(), Options{Record: &rerec})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := rerec.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, buf2.Bytes()) {
		t.Fatalf("replayed trace differs from recording: %d vs %d bytes", len(raw1), buf2.Len())
	}
	if rep1.Render() != rep2.Render() {
		t.Errorf("replay report differs:\n%s\nvs\n%s", rep1.Render(), rep2.Render())
	}
	if rep1.Total.Arrivals == 0 || int64(len(got.Rows)) != rep1.Total.Arrivals {
		t.Errorf("trace rows %d, arrivals %d", len(got.Rows), rep1.Total.Arrivals)
	}
}

// TestTraceReplayHonorsMult replays a trace recorded at a non-default
// multiplier: the trace carries the mult, so replay reproduces it
// without the caller restating it.
func TestTraceReplayHonorsMult(t *testing.T) {
	rep1, tr, raw1 := recordRun(t, kneeSpec(), Options{Mult: 2})
	var rerec Trace
	rep2, err := Replay(tr, kneeSpec(), Options{Record: &rerec})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Mult != 2 {
		t.Errorf("replay mult %g, want 2 from trace", rep2.Mult)
	}
	var buf2 bytes.Buffer
	if _, err := rerec.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, buf2.Bytes()) {
		t.Error("mult-2 replay not bit-exact")
	}
	if rep1.Render() != rep2.Render() {
		t.Error("mult-2 replay report differs")
	}
}

func TestTraceRoundTripStructural(t *testing.T) {
	_, tr, raw := recordRun(t, richSpec(), Options{})
	got, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != tr.Spec || got.Seed != tr.Seed || got.Mult != tr.Mult || got.Horizon != tr.Horizon {
		t.Errorf("header mismatch: %+v vs %+v", got, tr)
	}
	if !reflect.DeepEqual(got.Cohorts, tr.Cohorts) {
		t.Errorf("cohorts %v vs %v", got.Cohorts, tr.Cohorts)
	}
	if !reflect.DeepEqual(got.Rows, tr.Rows) {
		t.Fatalf("rows differ after round trip (%d vs %d)", len(got.Rows), len(tr.Rows))
	}
	// And the re-encode is byte-stable.
	var buf bytes.Buffer
	if _, err := got.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Error("re-encode changed bytes")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	_, tr, raw := recordRun(t, kneeSpec(), Options{})
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := got.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Error("file round trip changed bytes")
	}
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestTraceWriteRejectsDisorder(t *testing.T) {
	tr := &Trace{
		Spec: "bad", Cohorts: []string{"c"},
		Rows: []Row{{T: 10}, {T: 5}},
	}
	if _, err := tr.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("out-of-order rows serialized")
	}
}

func TestReadTraceRejectsCorruption(t *testing.T) {
	_, _, raw := recordRun(t, kneeSpec(), Options{})
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE!\nxxxx"),
		"magic only":   []byte(traceMagic),
		"truncated":    raw[:len(raw)/2],
		"row overrun":  append(append([]byte{}, raw...), 0xff),
		"huge cohorts": append([]byte(traceMagic), 0x01, 'x', 0x05, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		tr, err := ReadTrace(bytes.NewReader(data))
		if name == "row overrun" && err == nil {
			// A trailing byte after a complete trace is currently ignored;
			// the decoder's contract is only that valid prefixes decode.
			continue
		}
		if err == nil {
			t.Errorf("%s: decoded %d rows from corrupt input", name, len(tr.Rows))
			continue
		}
		if !errors.Is(err, ErrTrace) {
			t.Errorf("%s: error %v does not wrap ErrTrace", name, err)
		}
	}
	// Replay must reject a trace whose cohorts don't match the spec.
	tr := &Trace{Spec: "x", Cohorts: []string{"other"}}
	if _, err := Replay(tr, kneeSpec(), Options{}); err == nil {
		t.Error("cohort mismatch accepted")
	}
}
