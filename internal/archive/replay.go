package archive

import (
	"errors"
	"fmt"

	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// Replay serves an archive as if it were a live PMCD daemon: Fetch
// answers with the newest recorded sample at or before the replay
// clock's current time, exactly the row the daemon's sampling cache
// would have held then. It implements the pcpcomp Source interface, so
// a profile can be recomputed offline from a recording, and the
// metricql WindowPlanner interface, so windowed queries over a replay
// push down into the archive's rollup tiers instead of decoding raw
// rows.
type Replay struct {
	arch  *Archive
	clock *simtime.Clock
	res   Resolution // pinned read resolution; ResRaw serves raw rows
}

// NewReplay builds a replay source reading time from clock, serving
// full-resolution raw samples.
func NewReplay(a *Archive, clock *simtime.Clock) *Replay {
	return &Replay{arch: a, clock: clock}
}

// NewReplayAt builds a replay source pinned to one resolution: Fetch
// serves the newest rollup bucket's last-sample aggregates instead of
// raw rows, so a coarse dashboard can replay a long archive without
// touching the raw tier.
func NewReplayAt(a *Archive, clock *simtime.Clock, res Resolution) *Replay {
	return &Replay{arch: a, clock: clock, res: res}
}

// Resolution returns the replay's pinned read resolution.
func (r *Replay) Resolution() Resolution { return r.res }

// Names returns the recording's name table.
func (r *Replay) Names() ([]pcp.NameEntry, error) { return r.arch.Names(), nil }

// Lookup resolves a name against the recording's name table.
func (r *Replay) Lookup(name string) (uint32, error) { return r.arch.Lookup(name) }

// Fetch projects the requested PMIDs out of the sample a live daemon
// would have served at the clock's current time, at the replay's
// resolution. Before the first recorded sample it serves that first
// sample (the daemon would have sampled on first contact); PMIDs
// outside the schema get StatusNoSuchPMID, matching daemon behaviour
// for unknown PMIDs.
func (r *Replay) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	now := int64(r.clock.Now())
	s, ok := r.arch.FloorAt(r.res, now)
	if !ok {
		// Before the earliest servable row: serve it (the daemon would
		// have sampled on first contact). A rollup tier's earliest row
		// sits at its first bucket's *last* sample, after the tier span's
		// start, so floor at that bucket's LastTS, not at the span start.
		first, _, spanOK := r.arch.SpanAt(r.res)
		if spanOK && r.res != ResRaw {
			if bs, err := r.arch.Buckets(r.res, first, first); err == nil && len(bs) > 0 {
				first = bs[0].LastTS
			}
		}
		if !spanOK {
			return pcp.FetchResult{}, fmt.Errorf("archive: replay fetch at %d: %w", now, ErrEmpty)
		}
		if s, ok = r.arch.FloorAt(r.res, first); !ok {
			return pcp.FetchResult{}, fmt.Errorf("archive: replay fetch at %d: %w", now, ErrEmpty)
		}
	}
	out := pcp.FetchResult{Timestamp: s.Timestamp, Values: make([]pcp.FetchValue, len(pmids))}
	for i, id := range pmids {
		c, inSchema := r.arch.col[id]
		if !inSchema {
			out.Values[i] = pcp.FetchValue{PMID: id, Status: pcp.StatusNoSuchPMID}
			continue
		}
		out.Values[i] = pcp.FetchValue{PMID: id, Status: pcp.StatusOK, Value: s.Values[c]}
	}
	return out, nil
}

// EvalWindow implements the metricql WindowPlanner interface: windowed
// functions over a replay source are answered straight from the
// archive, selecting the coarsest tier that satisfies the window (a
// replay pinned to a resolution never reads finer than its pin). ok is
// false when the function or window cannot be pushed down — the engine
// then falls back to its sample-ring path.
func (r *Replay) EvalWindow(fn string, pmid uint32, t0, t1 int64) (float64, bool, error) {
	switch fn {
	case "avg_over", "min_over", "max_over", "rate_over":
	default:
		return 0, false, nil
	}
	res := r.arch.SelectResolution(t0, t1)
	if res < r.res {
		res = r.res
	}
	agg, err := r.arch.WindowAt(res, pmid, t0, t1)
	if err != nil {
		if errors.Is(err, ErrEmpty) || errors.Is(err, ErrNoTier) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if agg.Count == 0 {
		return 0, false, nil
	}
	switch fn {
	case "avg_over":
		return agg.Sum / float64(agg.Count), true, nil
	case "min_over":
		return float64(agg.Min), true, nil
	case "max_over":
		return float64(agg.Max), true, nil
	default: // rate_over
		if agg.Seconds <= 0 {
			return 0, false, nil
		}
		return agg.Delta / agg.Seconds, true, nil
	}
}
