package expect

import (
	"testing"

	"papimc/internal/units"
)

func TestGEMMExpectation(t *testing.T) {
	tr := GEMM(100)
	if tr.ReadBytes != 3*100*100*8 {
		t.Errorf("reads = %d", tr.ReadBytes)
	}
	if tr.WriteBytes != 100*100*8 {
		t.Errorf("writes = %d", tr.WriteBytes)
	}
}

func TestGEMVExpectations(t *testing.T) {
	sq := SquareGEMV(10)
	if sq.ReadBytes != (100+20)*8 || sq.WriteBytes != 80 {
		t.Errorf("square GEMV = %+v", sq)
	}
	cp := CappedGEMV(100, 10)
	if cp.ReadBytes != (1000+110)*8 || cp.WriteBytes != 800 {
		t.Errorf("capped GEMV = %+v", cp)
	}
	// At M=N the capped formula reduces to the square one.
	if CappedGEMV(10, 10) != SquareGEMV(10) {
		t.Error("capped(M,M) != square(M)")
	}
}

func TestScale(t *testing.T) {
	tr := Traffic{ReadBytes: 3, WriteBytes: 5}.Scale(21)
	if tr.ReadBytes != 63 || tr.WriteBytes != 105 {
		t.Errorf("scaled = %+v", tr)
	}
}

// The paper's Eq. 3 and 4 numbers: N≈467 and N≈809 for the 5 MB slice.
func TestEquation3And4Bounds(t *testing.T) {
	cache := 5 * units.MiB
	if n := Equation3Bound(cache); n != 467 {
		t.Errorf("Eq3 bound = %d, want 467", n)
	}
	if n := Equation4Bound(cache); n != 809 {
		t.Errorf("Eq4 bound = %d, want 809", n)
	}
}

// The paper's Eq. 7 number: N≈724 for 5 MB and the 2×4 grid.
func TestEquation7Bound(t *testing.T) {
	if n := Equation7Bound(5*units.MiB, 2, 4); n != 724 {
		t.Errorf("Eq7 bound = %d, want 724", n)
	}
}

func TestRankElems(t *testing.T) {
	// 2×4 grid over N=8: each rank holds 4×2×8 = 64 elements; ranks
	// total must equal N³.
	if got := RankElems(8, 2, 4); got != 64 {
		t.Errorf("RankElems = %d, want 64", got)
	}
	if got := RankElems(8, 2, 4) * 8; got != 512 {
		t.Errorf("aggregate = %d, want N³ = 512", got)
	}
}

func TestFFTExpectations(t *testing.T) {
	n, r, c := int64(64), int64(2), int64(4)
	bytes := RankElems(n, r, c) * 16

	ln1 := S1CFLoopNest1(n, r, c, false)
	if ln1.ReadBytes != bytes || ln1.WriteBytes != bytes {
		t.Errorf("S1CF LN1 = %+v, want 1 read / 1 write", ln1)
	}
	ln1p := S1CFLoopNest1(n, r, c, true)
	if ln1p.ReadBytes != 2*bytes || ln1p.WriteBytes != bytes {
		t.Errorf("S1CF LN1 prefetch = %+v, want 2 reads / 1 write", ln1p)
	}
	ln2 := S1CFLoopNest2(n, r, c)
	if ln2.ReadBytes != 2*bytes || ln2.WriteBytes != bytes {
		t.Errorf("S1CF LN2 = %+v, want 2 reads / 1 write", ln2)
	}
	comb := S1CFCombined(n, r, c)
	if comb.ReadBytes != 2*bytes || comb.WriteBytes != bytes {
		t.Errorf("S1CF combined = %+v", comb)
	}
	s2 := S2CF(n, r, c, false)
	if s2.ReadBytes != bytes || s2.WriteBytes != bytes {
		t.Errorf("S2CF = %+v, want 1 read / 1 write", s2)
	}
	s2p := S2CF(n, r, c, true)
	if s2p.ReadBytes != 2*bytes {
		t.Errorf("S2CF prefetch = %+v, want 2 reads", s2p)
	}
}
