// The capacity analyzer: sweep a spec's rate multiplier across the
// bandwidth–latency curve, run each operating point through the
// virtual-time engine, and find the knee — the point where the tier
// stops absorbing offered load (throughput-to-arrival ratio below
// threshold) or its p99 cliffs relative to the unloaded baseline. The
// sweep fans out through sweep.Map with per-point determinism, so the
// report is byte-identical at any worker count.
package workload

import (
	"fmt"
	"strings"

	"papimc/internal/simtime"
	"papimc/internal/sweep"
)

// CapacityOptions tune a capacity sweep.
type CapacityOptions struct {
	// Mults are the rate multipliers to sweep; default {0.25, 0.5, 1, 2, 4}.
	Mults []float64
	// Workers parallelizes the sweep points (sweep.Workers semantics).
	Workers int
	// KneeRatio is the throughput-to-arrival ratio below which a point
	// saturates; default 0.99.
	KneeRatio float64
	// CliffFactor flags a p99 more than this many times the lowest
	// point's p99; default 10.
	CliffFactor float64
}

// CapacityPoint is one operating point of the curve.
type CapacityPoint struct {
	Mult     float64 `json:"mult"`
	Offered  float64 `json:"offered_per_sec"`
	Achieved float64 `json:"achieved_per_sec"`
	Ratio    float64 `json:"ratio"`
	Pending  int64   `json:"pending"`
	Errors   int64   `json:"errors"`
	P50      int64   `json:"p50_ns"`
	P90      int64   `json:"p90_ns"`
	P99      int64   `json:"p99_ns"`
	P999     int64   `json:"p999_ns"`
}

// CapacityReport is the swept curve plus the knee verdict.
type CapacityReport struct {
	Spec    string           `json:"spec"`
	Seed    uint64           `json:"seed"`
	Horizon simtime.Duration `json:"horizon_ns"`
	Clients int              `json:"clients"`
	Points  []CapacityPoint  `json:"points"`
	// Knee indexes the first saturated point in Points, -1 if the sweep
	// never saturates.
	Knee       int    `json:"knee"`
	KneeReason string `json:"knee_reason,omitempty"`
}

// Capacity sweeps the spec across o.Mults and detects the knee.
func Capacity(spec *Spec, o CapacityOptions) (*CapacityReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(o.Mults) == 0 {
		o.Mults = []float64{0.25, 0.5, 1, 2, 4}
	}
	if o.KneeRatio == 0 {
		o.KneeRatio = 0.99
	}
	if o.CliffFactor == 0 {
		o.CliffFactor = 10
	}
	for i, m := range o.Mults {
		if m <= 0 {
			return nil, specErr("capacity mult[%d] = %g must be positive", i, m)
		}
		if i > 0 && m <= o.Mults[i-1] {
			return nil, specErr("capacity mults must be increasing (mult[%d] = %g)", i, m)
		}
	}
	points, err := sweep.Map(len(o.Mults), o.Workers, func(i int) (CapacityPoint, error) {
		rep, err := Run(spec, Options{Mult: o.Mults[i]})
		if err != nil {
			return CapacityPoint{}, err
		}
		return CapacityPoint{
			Mult:     rep.Mult,
			Offered:  rep.Offered,
			Achieved: rep.Achieved,
			Ratio:    rep.Ratio,
			Pending:  rep.Total.Pending,
			Errors:   rep.Total.Errors,
			P50:      rep.Total.P50,
			P90:      rep.Total.P90,
			P99:      rep.Total.P99,
			P999:     rep.Total.P999,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	cr := &CapacityReport{
		Spec:    spec.Name,
		Seed:    spec.Seed,
		Horizon: spec.Duration,
		Clients: spec.TotalClients(),
		Points:  points,
		Knee:    -1,
	}
	baseP99 := points[0].P99
	for i, p := range points {
		switch {
		case p.Ratio < o.KneeRatio:
			cr.Knee = i
			cr.KneeReason = fmt.Sprintf("throughput-to-arrival ratio %.3f < %.3f", p.Ratio, o.KneeRatio)
		case baseP99 > 0 && float64(p.P99) > o.CliffFactor*float64(baseP99):
			cr.Knee = i
			cr.KneeReason = fmt.Sprintf("p99 %s is %.1fx the %s baseline",
				fmtNs(p.P99), float64(p.P99)/float64(baseP99), fmtNs(baseP99))
		default:
			continue
		}
		break
	}
	return cr, nil
}

// Render formats the capacity report as an aligned, byte-deterministic
// text table with the knee verdict.
func (cr *CapacityReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity sweep: spec=%s seed=%d clients=%d horizon=%v\n",
		cr.Spec, cr.Seed, cr.Clients, cr.Horizon)
	fmt.Fprintf(&b, "%7s %12s %12s %7s %9s %9s %9s %9s %9s %5s\n",
		"mult", "offered/s", "achieved/s", "ratio", "pending", "p50", "p90", "p99", "p99.9", "knee")
	for i, p := range cr.Points {
		mark := ""
		if i == cr.Knee {
			mark = "<<"
		}
		fmt.Fprintf(&b, "%7.3g %12.1f %12.1f %7.3f %9d %9s %9s %9s %9s %5s\n",
			p.Mult, p.Offered, p.Achieved, p.Ratio, p.Pending,
			fmtNs(p.P50), fmtNs(p.P90), fmtNs(p.P99), fmtNs(p.P999), mark)
	}
	if cr.Knee >= 0 {
		fmt.Fprintf(&b, "knee at mult=%.3g: %s\n", cr.Points[cr.Knee].Mult, cr.KneeReason)
	} else {
		fmt.Fprintf(&b, "no knee found: tier absorbs every swept load\n")
	}
	return b.String()
}

// Render formats a single run report as an aligned, byte-deterministic
// text block.
func (r *Report) Render() string {
	var b strings.Builder
	mode := "virtual-time"
	if r.Live {
		mode = "wall-clock"
	}
	fmt.Fprintf(&b, "workload %s seed=%d mult=%g horizon=%v mode=%s\n",
		r.Name, r.Seed, r.Mult, r.Horizon, mode)
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %8s %6s %9s %9s %9s %9s %9s\n",
		"cohort", "clients", "arrivals", "complete", "pending", "errs", "p50", "p90", "p99", "p99.9", "max")
	rows := append([]CohortResult{}, r.Cohorts...)
	rows = append(rows, r.Total)
	for _, c := range rows {
		fmt.Fprintf(&b, "%-14s %9d %9d %9d %8d %6d %9s %9s %9s %9s %9s\n",
			c.Name, c.Clients, c.Arrivals, c.Completed, c.Pending, c.Errors,
			fmtNs(c.P50), fmtNs(c.P90), fmtNs(c.P99), fmtNs(c.P999), fmtNs(c.MaxLat))
	}
	fmt.Fprintf(&b, "mix: live=%d proxied=%d archive=%d derived=%d\n",
		r.Total.ByClass[Live], r.Total.ByClass[Proxied], r.Total.ByClass[Archive], r.Total.ByClass[Derived])
	// Events is engine bookkeeping (thinning candidates), which a replay
	// cannot observe — it stays out of the render so run and replay of
	// the same stream render identically.
	fmt.Fprintf(&b, "offered %.1f/s achieved %.1f/s ratio %.3f\n",
		r.Offered, r.Achieved, r.Ratio)
	return b.String()
}

// fmtNs renders a nanosecond latency with three significant figures.
func fmtNs(ns int64) string {
	f := float64(ns)
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.3gs", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.3gms", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.3gµs", f/1e3)
	default:
		return fmt.Sprintf("%.0fns", f)
	}
}
