// Derived metrics: one event set mixing raw nest counters with
// metricql-derived quantities — the curated mem.* bandwidth metrics and
// an ad-hoc expression — plus a pmie-style rule that alerts when total
// bandwidth crosses a threshold. Everything reads through the same
// profile-style lifecycle; profile.Run would work identically.
package main

import (
	"fmt"
	"log"

	"papimc"
	"papimc/internal/metricql"
	"papimc/internal/model"
	"papimc/internal/papi/components/derived"
	"papimc/internal/simtime"
)

func main() {
	tb, err := papimc.NewTestbed(papimc.Summit(), 1, papimc.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	lib, cleanup, err := tb.NewLibrary()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	// Raw counter and derived expressions side by side in one set. The
	// last event needs no registration: any expression is an event.
	es := lib.NewEventSet()
	events := []string{
		"pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
		"derived:::mem.read_bw",
		"derived:::mem.total_bw",
		"derived:::sum(delta(nest.mba*.write_bytes))",
	}
	if err := es.AddAll(events...); err != nil {
		log.Fatal(err)
	}

	// A pmie-style rule over the same engine the derived component
	// evaluates with: alert when total bandwidth exceeds 1.5 GB/s for
	// two consecutive samples.
	comp, err := lib.Component("derived")
	if err != nil {
		log.Fatal(err)
	}
	eng := comp.(*derived.Component).Engine()
	rules := metricql.NewRuleset(eng, func(f metricql.Firing) {
		fmt.Printf("  ** ALERT %s: %.3g at t=%.0fms\n",
			f.Rule.Name, f.Value, float64(f.Timestamp)/1e6)
	})
	err = rules.Add(metricql.Rule{
		Name:      "high-bandwidth",
		Expr:      "sum(rate(nest.mba*.read_bytes)) + sum(rate(nest.mba*.write_bytes))",
		Op:        ">",
		Threshold: 1.5e9,
		Hold:      2,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := es.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-14s %-14s %-14s %-14s\n",
		"phase", "raw mba0 rd", "mem.read_bw", "mem.total_bw", "delta(writes)")

	// Five phases of increasing traffic; the rule trips once the rate
	// stays above threshold for two samples.
	for phase := 1; phase <= 5; phase++ {
		vol := int64(phase) * (8 << 20)
		tb.Nodes[0].Play(0, model.Traffic{
			ReadBytes:  vol,
			WriteBytes: vol / 2,
			Duration:   20 * simtime.Millisecond,
		}, 8)
		vals, err := es.Read()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-14d %-14.4g %-14.4g %-14d\n",
			phase, vals[0], float64(vals[1]), float64(vals[2]), vals[3])
		if err := rules.Step(); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := es.Stop(); err != nil {
		log.Fatal(err)
	}
}
