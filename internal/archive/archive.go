// Package archive implements the pmlogger analogue: an append-only
// time-series archive of PCP fetch results, so profiles and figures can
// be replayed from a recording instead of a live daemon — grown here
// into a small TSDB: multi-resolution rollup tiers, an indexed block
// store with lock-free snapshot reads, and a background compactor.
//
// Raw samples are stored varint-delta encoded — each row is the zigzag
// varint of the timestamp delta followed by one zigzag varint per
// counter delta — in fixed-size blocks whose first row is absolute, so
// any block decodes independently. Every sealed block carries an index
// entry ([firstTS, lastTS]) and per-column summaries (first/last/min/
// max/sum and the wrap-corrected delta total), so range queries binary-
// search to the covering blocks and long-horizon rates fold summaries
// instead of decoding rows. Decoded blocks are cached behind an
// atomic.Pointer per block, so hot dashboards hit decoded data.
//
// Alongside the raw tier the archive maintains rollup tiers (10s and 5m
// buckets by default), updated incrementally on Append: each bucket
// stores count/first/last/min/max/sum per column plus the wrap-corrected
// intra-bucket delta, and the step between two adjacent buckets is
// recoverable exactly as pcp.CounterDelta(prev.Last, next.First) —
// adjacent buckets always hold adjacent samples at their facing edges —
// so rates over rollups are exact for wrapped counters on bucket-aligned
// windows. Compact (or the background compactor) folds aged raw blocks
// out of the raw tier once the rollups cover them, the production
// retention pattern: raw for hours, 10s for days, 5m for months.
//
// All writers (Append, Compact) serialize on a mutex and publish an
// immutable snapshot through an atomic pointer; readers load the pointer
// once and never block — the same publication pattern the PMCD daemon
// uses for its metric snapshots.
//
// The schema (the PMID set and the name table) is fixed when the
// archive is created, exactly like a real pmlogger archive's metadata
// volume.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"papimc/internal/pcp"
)

// Errors returned by the archive.
var (
	// ErrOutOfOrder rejects a sample older than the newest recorded one.
	ErrOutOfOrder = errors.New("archive: sample out of order")
	// ErrEmpty indicates a query against an archive with no samples.
	ErrEmpty = errors.New("archive: no samples")
	// ErrNoPMID indicates a query for a PMID outside the schema.
	ErrNoPMID = errors.New("archive: pmid not in schema")
	// ErrSchema rejects a fetch result that does not cover the schema.
	ErrSchema = errors.New("archive: fetch result does not match schema")
	// ErrFormat indicates a corrupt serialized archive.
	ErrFormat = errors.New("archive: bad archive format")
	// ErrNoTier indicates a query at a resolution with no rollup tier.
	ErrNoTier = errors.New("archive: no rollup tier at that resolution")
)

// Sample is one decoded row: the daemon's sample timestamp and one value
// per schema PMID, in schema order. Samples returned by queries may
// share storage with the archive's decoded-block cache and must be
// treated as read-only.
type Sample struct {
	Timestamp int64
	Values    []uint64
}

// Options tune archive construction.
type Options struct {
	// MaxBytes bounds the encoded raw sample storage; oldest blocks are
	// evicted once it is exceeded. 0 means DefaultMaxBytes.
	MaxBytes int
	// BlockSamples is the number of rows per raw block. 0 means
	// DefaultBlockSamples.
	BlockSamples int
	// Rollups lists the rollup tier bucket widths in nanoseconds,
	// strictly ascending. nil means DefaultRollups (10s and 5m); an
	// explicit empty non-nil slice disables rollups.
	Rollups []int64
	// MaxBuckets bounds each rollup tier's retained buckets (oldest
	// evicted past it). 0 means DefaultMaxBuckets.
	MaxBuckets int
	// RawRetention is how much full-resolution history Compact keeps,
	// in nanoseconds: raw blocks wholly older than newest-RawRetention
	// are folded out of the raw tier once every rollup tier covers
	// them. 0 disables age-based folding (raw is evicted only by the
	// MaxBytes ring budget).
	RawRetention int64
}

// Defaults for Options.
const (
	DefaultMaxBytes     = 4 << 20
	DefaultBlockSamples = 64
	DefaultMaxBuckets   = 1 << 17
)

// Res10s and Res5m are the default rollup resolutions.
const (
	ResRaw Resolution = 0
	Res10s Resolution = 10_000_000_000
	Res5m  Resolution = 300_000_000_000
)

// DefaultRollups returns the default tier set (10s, 5m).
func DefaultRollups() []int64 { return []int64{int64(Res10s), int64(Res5m)} }

// Resolution identifies a storage tier by its bucket width in
// nanoseconds; 0 is the raw (full-resolution) tier.
type Resolution int64

func (r Resolution) String() string {
	if r == 0 {
		return "raw"
	}
	switch {
	case int64(r)%1_000_000_000 == 0:
		return fmt.Sprintf("%ds", int64(r)/1_000_000_000)
	case int64(r)%1_000_000 == 0:
		return fmt.Sprintf("%dms", int64(r)/1_000_000)
	default:
		return fmt.Sprintf("%dns", int64(r))
	}
}

// colSummary is the per-column index entry of one sealed block: enough
// to answer floors, ceilings, and wrap-corrected rates without decoding.
type colSummary struct {
	First, Last uint64  // first/last sample values in the block
	Min, Max    uint64  // extrema over the block's samples
	Sum         float64 // Σ float64(value) over the block's samples
	Delta       int64   // Σ wrap-corrected steps between consecutive rows
}

// block is one sealed, immutable run of delta-encoded rows plus its
// index entry and summaries. dec caches the decoded rows; it is reset by
// the compactor for cold blocks and repopulated on demand.
type block struct {
	buf     []byte
	count   int
	firstTS int64
	lastTS  int64
	sums    []colSummary
	cum     []float64 // extended value at the first row, anchored at the writer epoch
	dec     atomic.Pointer[[]Sample]
}

// ColAgg is the per-column aggregate of one rollup bucket.
type ColAgg struct {
	First, Last uint64  // first/last sample values in the bucket
	Min, Max    uint64  // extrema
	Sum         float64 // Σ float64(value), for averages
	Delta       int64   // Σ wrap-corrected steps strictly inside the bucket
}

// Bucket is one rollup row: the aggregate of every raw sample whose
// timestamp falls in [Start, Start+resolution). The step between two
// adjacent retained buckets is exactly
// pcp.CounterDelta(prev.Cols[c].Last, next.Cols[c].First): their facing
// edge samples are adjacent in the raw stream, so rates reconstructed
// from rollups are exact for wrapped counters on bucket-aligned windows.
type Bucket struct {
	Start   int64 // bucket start, aligned to the tier resolution
	FirstTS int64 // timestamp of the first sample in the bucket
	LastTS  int64 // timestamp of the last sample in the bucket
	Count   int   // samples folded in
	Cols    []ColAgg
}

// tierSnap is one rollup tier inside a snapshot: completed buckets plus
// the in-progress one (copy-on-write so published buckets never mutate).
type tierSnap struct {
	res     int64
	done    []Bucket
	cur     *Bucket
	evicted int // buckets dropped by the MaxBuckets cap
}

func (t *tierSnap) count() int {
	n := len(t.done)
	if t.cur != nil {
		n++
	}
	return n
}

func (t *tierSnap) at(i int) *Bucket {
	if i < len(t.done) {
		return &t.done[i]
	}
	return t.cur
}

// snapshot is the immutable published state: readers load it once and
// work on it without locks. Writers build a new one under a.mu and
// store it atomically.
type snapshot struct {
	blocks  []*block  // sealed raw blocks, ascending time
	tail    []Sample  // decoded rows newer than the last sealed block
	tailCum []float64 // extended value at tail[0], anchored at the writer epoch
	tiers   []tierSnap
	last    *Sample // newest raw row, nil if none retained
	lastTS  int64   // newest timestamp ever accepted (survives raw eviction)
	seenAny bool    // any sample ever accepted (or loaded)

	rawSamples  int // retained raw rows
	sealedBytes int // encoded bytes across sealed blocks
	tailBytes   int // encoded bytes of the tail
	appended    int // rows ever accepted
	evicted     int // rows dropped by the ring budget
	folded      int // rows folded out of raw by Compact after rollup handoff
	compactions int
}

// Archive is an append-only recording. It is safe for concurrent use:
// reads are lock-free against the published snapshot.
type Archive struct {
	mu     sync.Mutex // serializes writers: Append, Compact, WriteTo capture
	names  []pcp.NameEntry
	byName map[string]uint32
	col    map[uint32]int // PMID -> column index
	opts   Options

	snap atomic.Pointer[snapshot]

	// Writer-only state, guarded by mu.
	tailBuf    []byte    // encoded form of the published tail
	runningExt []float64 // extended value at the newest row, anchored at the epoch
}

// New builds an empty archive over the given name table. The entries
// define the schema: one column per PMID, in the given order.
func New(names []pcp.NameEntry, opts Options) (*Archive, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("archive: empty schema")
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.BlockSamples <= 0 {
		opts.BlockSamples = DefaultBlockSamples
	}
	if opts.Rollups == nil {
		opts.Rollups = DefaultRollups()
	}
	if opts.MaxBuckets <= 0 {
		opts.MaxBuckets = DefaultMaxBuckets
	}
	for i, res := range opts.Rollups {
		if res <= 0 {
			return nil, fmt.Errorf("archive: rollup resolution %d must be positive", res)
		}
		if i > 0 && res <= opts.Rollups[i-1] {
			return nil, fmt.Errorf("archive: rollup resolutions must be strictly ascending")
		}
	}
	a := &Archive{
		names:      append([]pcp.NameEntry(nil), names...),
		byName:     make(map[string]uint32, len(names)),
		col:        make(map[uint32]int, len(names)),
		opts:       opts,
		runningExt: make([]float64, len(names)),
	}
	for i, e := range names {
		if e.PMID == 0 {
			return nil, fmt.Errorf("archive: schema entry %q has PMID 0", e.Name)
		}
		if _, dup := a.col[e.PMID]; dup {
			return nil, fmt.Errorf("archive: duplicate PMID %d in schema", e.PMID)
		}
		a.byName[e.Name] = e.PMID
		a.col[e.PMID] = i
	}
	s := &snapshot{tiers: make([]tierSnap, len(opts.Rollups))}
	for i, res := range opts.Rollups {
		s.tiers[i] = tierSnap{res: res}
	}
	a.snap.Store(s)
	return a, nil
}

// Names returns the schema's name table.
func (a *Archive) Names() []pcp.NameEntry {
	return append([]pcp.NameEntry(nil), a.names...)
}

// Lookup resolves a schema metric name to its PMID.
func (a *Archive) Lookup(name string) (uint32, error) {
	if id, ok := a.byName[name]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("archive: unknown metric %q", name)
}

// PMIDs returns the schema PMIDs in column order.
func (a *Archive) PMIDs() []uint32 {
	out := make([]uint32, len(a.names))
	for i, e := range a.names {
		out[i] = e.PMID
	}
	return out
}

// Resolutions returns the archive's tiers, finest first: ResRaw followed
// by the configured rollup resolutions.
func (a *Archive) Resolutions() []Resolution {
	s := a.snap.Load()
	out := make([]Resolution, 0, len(s.tiers)+1)
	out = append(out, ResRaw)
	for i := range s.tiers {
		out = append(out, Resolution(s.tiers[i].res))
	}
	return out
}

// Append records one fetch result. The result must contain an OK value
// for every schema PMID (extra values are ignored). A result with the
// same timestamp as the newest row is a daemon cache hit and is silently
// skipped; an older timestamp is ErrOutOfOrder.
func (a *Archive) Append(res pcp.FetchResult) error {
	row := Sample{Timestamp: res.Timestamp, Values: make([]uint64, len(a.names))}
	seen := 0
	for _, v := range res.Values {
		c, ok := a.col[v.PMID]
		if !ok {
			continue
		}
		if v.Status != pcp.StatusOK {
			return fmt.Errorf("%w: pmid %d has status %d", ErrSchema, v.PMID, v.Status)
		}
		row.Values[c] = v.Value
		seen++
	}
	if seen < len(a.names) {
		return fmt.Errorf("%w: %d of %d schema pmids present", ErrSchema, seen, len(a.names))
	}
	return a.AppendSample(row)
}

// AppendSample records one pre-built row (len(Values) must equal the
// schema width). Same ordering rules as Append. The row's Values slice
// is not retained.
func (a *Archive) AppendSample(row Sample) error {
	if len(row.Values) != len(a.names) {
		return fmt.Errorf("%w: row has %d values, schema has %d", ErrSchema, len(row.Values), len(a.names))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.snap.Load()
	if cur.seenAny {
		if row.Timestamp == cur.lastTS {
			return nil // same daemon sample, nothing new
		}
		if row.Timestamp < cur.lastTS {
			return fmt.Errorf("%w: %d after %d", ErrOutOfOrder, row.Timestamp, cur.lastTS)
		}
	}
	own := Sample{Timestamp: row.Timestamp, Values: append([]uint64(nil), row.Values...)}

	next := &snapshot{
		blocks:      cur.blocks,
		tiers:       make([]tierSnap, len(cur.tiers)),
		last:        &own,
		lastTS:      own.Timestamp,
		seenAny:     true,
		rawSamples:  cur.rawSamples + 1,
		sealedBytes: cur.sealedBytes,
		appended:    cur.appended + 1,
		evicted:     cur.evicted,
		folded:      cur.folded,
		compactions: cur.compactions,
	}

	// Advance the extended (wrap-unrolled) series: one step per column
	// from the previous row, when raw history is continuous.
	if cur.last != nil {
		for c := range own.Values {
			a.runningExt[c] += float64(int64(pcp.CounterDelta(cur.last.Values[c], own.Values[c])))
		}
	}

	// Encode the row into the writer's tail buffer: a keyframe when the
	// tail is empty, deltas against the previous row otherwise.
	if len(cur.tail) == 0 {
		a.tailBuf = binary.AppendVarint(a.tailBuf[:0], own.Timestamp)
		for _, v := range own.Values {
			a.tailBuf = binary.AppendUvarint(a.tailBuf, v)
		}
		next.tail = append([]Sample(nil), own)
		next.tailCum = append([]float64(nil), a.runningExt...)
	} else {
		a.tailBuf = binary.AppendVarint(a.tailBuf, own.Timestamp-cur.last.Timestamp)
		for c, v := range own.Values {
			a.tailBuf = binary.AppendVarint(a.tailBuf, int64(v-cur.last.Values[c]))
		}
		next.tail = append(cur.tail, own)
		next.tailCum = cur.tailCum
	}
	next.tailBytes = len(a.tailBuf)

	// Rollup maintenance: fold the row into every tier's current bucket.
	for i := range cur.tiers {
		next.tiers[i] = updateTier(&cur.tiers[i], own, a.opts.MaxBuckets)
	}

	// Seal a full tail into an immutable indexed block.
	if len(next.tail) >= a.opts.BlockSamples {
		blk := sealBlock(a.tailBuf, next.tail, next.tailCum)
		next.blocks = append(cur.blocks, blk)
		next.sealedBytes += len(blk.buf)
		next.tail, next.tailCum, next.tailBytes = nil, nil, 0
		a.tailBuf = nil
	}

	// Ring retention backstop: evict oldest sealed blocks past the byte
	// budget, always keeping the tail being written.
	for next.sealedBytes+next.tailBytes > a.opts.MaxBytes && len(next.blocks) > 0 {
		old := next.blocks[0]
		next.blocks = next.blocks[1:]
		next.sealedBytes -= len(old.buf)
		next.rawSamples -= old.count
		next.evicted += old.count
	}

	a.snap.Store(next)
	return nil
}

// sealBlock builds the immutable block for a finished tail: the encoded
// bytes, the [firstTS, lastTS] index entry, per-column summaries, and
// the extended-series anchor of its first row.
func sealBlock(buf []byte, rows []Sample, cum []float64) *block {
	width := len(rows[0].Values)
	b := &block{
		buf:     buf,
		count:   len(rows),
		firstTS: rows[0].Timestamp,
		lastTS:  rows[len(rows)-1].Timestamp,
		sums:    make([]colSummary, width),
		cum:     append([]float64(nil), cum...),
	}
	for c := 0; c < width; c++ {
		v0 := rows[0].Values[c]
		s := colSummary{First: v0, Last: v0, Min: v0, Max: v0, Sum: float64(v0)}
		for i := 1; i < len(rows); i++ {
			v := rows[i].Values[c]
			s.Last = v
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			s.Sum += float64(v)
			s.Delta += int64(pcp.CounterDelta(rows[i-1].Values[c], v))
		}
		b.sums[c] = s
	}
	return b
}

// alignDown returns the bucket start covering ts at resolution res,
// correct for negative timestamps.
func alignDown(ts, res int64) int64 {
	q := ts / res
	if ts%res < 0 {
		q--
	}
	return q * res
}

// updateTier folds one row into a tier, copy-on-write: published buckets
// are never mutated in place.
func updateTier(t *tierSnap, row Sample, maxBuckets int) tierSnap {
	nt := tierSnap{res: t.res, done: t.done, evicted: t.evicted}
	start := alignDown(row.Timestamp, t.res)
	if t.cur != nil && start == t.cur.Start {
		// Extend the in-progress bucket. The previous sample is, by
		// construction, this bucket's Last: steps folded here are
		// strictly intra-bucket.
		nb := Bucket{
			Start:   t.cur.Start,
			FirstTS: t.cur.FirstTS,
			LastTS:  row.Timestamp,
			Count:   t.cur.Count + 1,
			Cols:    make([]ColAgg, len(t.cur.Cols)),
		}
		for c := range nb.Cols {
			agg := t.cur.Cols[c]
			v := row.Values[c]
			agg.Delta += int64(pcp.CounterDelta(agg.Last, v))
			agg.Last = v
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
			agg.Sum += float64(v)
			nb.Cols[c] = agg
		}
		nt.cur = &nb
		return nt
	}
	if t.cur != nil {
		nt.done = append(t.done, *t.cur)
		if drop := len(nt.done) - maxBuckets; drop > 0 {
			nt.done = nt.done[drop:]
			nt.evicted += drop
		}
	}
	nb := Bucket{
		Start:   start,
		FirstTS: row.Timestamp,
		LastTS:  row.Timestamp,
		Count:   1,
		Cols:    make([]ColAgg, len(row.Values)),
	}
	for c, v := range row.Values {
		nb.Cols[c] = ColAgg{First: v, Last: v, Min: v, Max: v, Sum: float64(v)}
	}
	nt.cur = &nb
	return nt
}

// decodeRows decodes count delta-encoded rows of the given width from
// buf. With strict set, trailing bytes after the last row are rejected.
func decodeRows(buf []byte, count, width int, strict bool) ([]Sample, error) {
	rows := make([]Sample, 0, count)
	var prev Sample
	for i := 0; i < count; i++ {
		row := Sample{Values: make([]uint64, width)}
		if i == 0 {
			ts, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("%w: keyframe timestamp", ErrFormat)
			}
			buf = buf[n:]
			row.Timestamp = ts
			for c := range row.Values {
				v, n := binary.Uvarint(buf)
				if n <= 0 {
					return nil, fmt.Errorf("%w: keyframe value", ErrFormat)
				}
				buf = buf[n:]
				row.Values[c] = v
			}
		} else {
			dt, n := binary.Varint(buf)
			if n <= 0 {
				return nil, fmt.Errorf("%w: delta timestamp", ErrFormat)
			}
			buf = buf[n:]
			row.Timestamp = prev.Timestamp + dt
			for c := range row.Values {
				dv, n := binary.Varint(buf)
				if n <= 0 {
					return nil, fmt.Errorf("%w: delta value", ErrFormat)
				}
				buf = buf[n:]
				row.Values[c] = prev.Values[c] + uint64(dv)
			}
		}
		rows = append(rows, row)
		prev = row
	}
	if strict && len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after block", ErrFormat, len(buf))
	}
	return rows, nil
}

// decodeCached returns the block's rows, decoding once and caching the
// result behind the block's atomic pointer.
func (a *Archive) decodeCached(b *block) ([]Sample, error) {
	if p := b.dec.Load(); p != nil {
		return *p, nil
	}
	rows, err := decodeRows(b.buf, b.count, len(a.names), false)
	if err != nil {
		return nil, err
	}
	b.dec.Store(&rows)
	return rows, nil
}

// Len returns the number of retained raw samples.
func (a *Archive) Len() int {
	return a.snap.Load().rawSamples
}

// TierStats describes one rollup tier's storage state.
type TierStats struct {
	Resolution Resolution
	Buckets    int // retained buckets (including the in-progress one)
	Evicted    int // buckets dropped by the MaxBuckets cap
}

// Stats describes the archive's storage state.
type Stats struct {
	Samples      int // retained raw rows
	Appended     int // rows ever accepted
	Evicted      int // rows dropped by ring retention
	Folded       int // rows folded out of raw by compaction after rollup handoff
	Compactions  int // Compact passes that ran
	EncodedBytes int // current encoded raw size
	RawBytes     int // what the retained raw rows would cost un-encoded
	Tiers        []TierStats
}

// Stats returns storage counters, including the raw-vs-encoded size so
// tests can assert the compression win.
func (a *Archive) Stats() Stats {
	s := a.snap.Load()
	st := Stats{
		Samples:      s.rawSamples,
		Appended:     s.appended,
		Evicted:      s.evicted,
		Folded:       s.folded,
		Compactions:  s.compactions,
		EncodedBytes: s.sealedBytes + s.tailBytes,
	}
	st.RawBytes = st.Samples * (8 + 8*len(a.names))
	for i := range s.tiers {
		t := &s.tiers[i]
		st.Tiers = append(st.Tiers, TierStats{
			Resolution: Resolution(t.res),
			Buckets:    t.count(),
			Evicted:    t.evicted,
		})
	}
	return st
}

// Span returns the timestamps of the oldest and newest retained raw
// samples. Rollup-only history (raw folded away) is visible through
// SpanAt instead.
func (a *Archive) Span() (first, last int64, ok bool) {
	s := a.snap.Load()
	return s.rawSpan()
}

func (s *snapshot) rawSpan() (first, last int64, ok bool) {
	switch {
	case len(s.blocks) > 0 && len(s.tail) > 0:
		return s.blocks[0].firstTS, s.tail[len(s.tail)-1].Timestamp, true
	case len(s.blocks) > 0:
		return s.blocks[0].firstTS, s.blocks[len(s.blocks)-1].lastTS, true
	case len(s.tail) > 0:
		return s.tail[0].Timestamp, s.tail[len(s.tail)-1].Timestamp, true
	}
	return 0, 0, false
}

// SpanAt returns the sample span covered at the given resolution: the
// raw span for ResRaw, or the first/last sample timestamps of the
// tier's retained buckets.
func (a *Archive) SpanAt(res Resolution) (first, last int64, ok bool) {
	if res == ResRaw {
		return a.Span()
	}
	s := a.snap.Load()
	t := s.tier(int64(res))
	if t == nil || t.count() == 0 {
		return 0, 0, false
	}
	return t.at(0).FirstTS, t.at(t.count() - 1).LastTS, true
}

func (s *snapshot) tier(res int64) *tierSnap {
	for i := range s.tiers {
		if s.tiers[i].res == res {
			return &s.tiers[i]
		}
	}
	return nil
}

// Samples returns every retained raw row with t0 <= Timestamp <= t1,
// oldest first. An empty interval (t0 > t1), an empty archive, or an
// interval outside the retained span all yield an empty result, not an
// error. Returned rows may share storage with the decoded-block cache.
func (a *Archive) Samples(t0, t1 int64) ([]Sample, error) {
	if t0 > t1 {
		return nil, nil
	}
	s := a.snap.Load()
	var out []Sample
	blocks := s.blocks
	// Binary search to the first block that can contain t0.
	lo := sort.Search(len(blocks), func(i int) bool { return blocks[i].lastTS >= t0 })
	for i := lo; i < len(blocks); i++ {
		b := blocks[i]
		if b.firstTS > t1 {
			return out, nil
		}
		rows, err := a.decodeCached(b)
		if err != nil {
			return nil, err
		}
		if b.firstTS >= t0 && b.lastTS <= t1 {
			out = append(out, rows...)
			continue
		}
		for _, r := range rows {
			if r.Timestamp >= t0 && r.Timestamp <= t1 {
				out = append(out, r)
			}
		}
	}
	for _, r := range s.tail {
		if r.Timestamp > t1 {
			break
		}
		if r.Timestamp >= t0 {
			out = append(out, r)
		}
	}
	return out, nil
}

// All returns every retained raw row, oldest first.
func (a *Archive) All() ([]Sample, error) {
	s := a.snap.Load()
	out := make([]Sample, 0, s.rawSamples)
	for _, b := range s.blocks {
		rows, err := a.decodeCached(b)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	out = append(out, s.tail...)
	return out, nil
}

// Floor returns the newest raw sample with Timestamp <= t — the value a
// live daemon would have served at time t. ok is false if every retained
// sample is newer than t (or no raw samples are retained).
func (a *Archive) Floor(t int64) (Sample, bool) {
	s := a.snap.Load()
	return a.floorSnap(s, t)
}

func (a *Archive) floorSnap(s *snapshot, t int64) (Sample, bool) {
	if len(s.tail) > 0 && s.tail[0].Timestamp <= t {
		i := sort.Search(len(s.tail), func(i int) bool { return s.tail[i].Timestamp > t })
		return s.tail[i-1], true
	}
	blocks := s.blocks
	idx := sort.Search(len(blocks), func(i int) bool { return blocks[i].firstTS > t }) - 1
	if idx < 0 {
		return Sample{}, false
	}
	b := blocks[idx]
	if t >= b.lastTS {
		// The block's last row, synthesized from summaries: no decode.
		return a.summaryRow(b, b.lastTS, func(cs *colSummary) uint64 { return cs.Last }), true
	}
	rows, err := a.decodeCached(b)
	if err != nil {
		return Sample{}, false
	}
	i := sort.Search(len(rows), func(i int) bool { return rows[i].Timestamp > t })
	return rows[i-1], true
}

// ceilSnap returns the oldest raw sample with Timestamp >= t.
func (a *Archive) ceilSnap(s *snapshot, t int64) (Sample, bool) {
	blocks := s.blocks
	idx := sort.Search(len(blocks), func(i int) bool { return blocks[i].lastTS >= t })
	if idx < len(blocks) {
		b := blocks[idx]
		if t <= b.firstTS {
			return a.summaryRow(b, b.firstTS, func(cs *colSummary) uint64 { return cs.First }), true
		}
		rows, err := a.decodeCached(b)
		if err != nil {
			return Sample{}, false
		}
		i := sort.Search(len(rows), func(i int) bool { return rows[i].Timestamp >= t })
		return rows[i], true
	}
	for _, r := range s.tail {
		if r.Timestamp >= t {
			return r, true
		}
	}
	return Sample{}, false
}

// summaryRow synthesizes one edge row of a block from its summaries.
func (a *Archive) summaryRow(b *block, ts int64, get func(*colSummary) uint64) Sample {
	row := Sample{Timestamp: ts, Values: make([]uint64, len(a.names))}
	for c := range b.sums {
		row.Values[c] = get(&b.sums[c])
	}
	return row
}

// Nearest returns the retained raw sample whose timestamp is closest to
// t (ties go to the older sample).
func (a *Archive) Nearest(t int64) (Sample, bool) {
	s := a.snap.Load()
	lo, okLo := a.floorSnap(s, t)
	hi, okHi := a.ceilSnap(s, t)
	switch {
	case !okLo && !okHi:
		return Sample{}, false
	case !okLo:
		return hi, true
	case !okHi:
		return lo, true
	}
	if absDelta(lo.Timestamp, t) <= absDelta(hi.Timestamp, t) {
		return lo, true
	}
	return hi, true
}

func absDelta(a, b int64) uint64 {
	if a < b {
		return uint64(b - a)
	}
	return uint64(a - b)
}

// sampleStep is the wrap-corrected change of column c between two
// consecutive rows, as a signed float: the mod-2^64 delta from
// pcp.CounterDelta reinterpreted as int64, so a counter that wrapped
// between samples yields its true small positive increment (not a huge
// negative one, the bug this replaced) while an instant metric that
// genuinely decreased still yields a negative step.
func sampleStep(lo, hi Sample, c int) float64 {
	return float64(int64(pcp.CounterDelta(lo.Values[c], hi.Values[c])))
}

// ValueAt returns the metric's value at time t on the unwrapped
// ("extended") series: linear interpolation between the surrounding
// samples with uint64 wraparound corrected per step, clamped to the
// recording's raw span. After a wrap the extended value keeps growing
// past 2^64 — the series stays monotone for counters, which is what
// interpolation is for. The lookup binary-searches to the covering
// block and anchors on its precomputed extended-series prefix, so the
// cost is independent of the archive size.
func (a *Archive) ValueAt(pmid uint32, t int64) (float64, error) {
	c, ok := a.col[pmid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPMID, pmid)
	}
	s := a.snap.Load()
	// Oldest retained raw row: the anchor of the reported series.
	var oldestTS int64
	var oldestVal uint64
	var extOldest float64
	switch {
	case len(s.blocks) > 0:
		b := s.blocks[0]
		oldestTS, oldestVal, extOldest = b.firstTS, b.sums[c].First, b.cum[c]
	case len(s.tail) > 0:
		oldestTS, oldestVal, extOldest = s.tail[0].Timestamp, s.tail[0].Values[c], s.tailCum[c]
	default:
		return 0, ErrEmpty
	}
	if t <= oldestTS {
		return float64(oldestVal), nil
	}
	ext, err := a.extAt(s, c, t)
	if err != nil {
		return 0, err
	}
	return float64(oldestVal) + ext - extOldest, nil
}

// extAt computes the extended-series value at time t (> oldest retained
// timestamp), anchored at the writer epoch.
func (a *Archive) extAt(s *snapshot, c int, t int64) (float64, error) {
	// In or beyond the tail?
	if len(s.tail) > 0 && t >= s.tail[0].Timestamp {
		ext := s.tailCum[c]
		for i := 1; i < len(s.tail); i++ {
			step := sampleStep(s.tail[i-1], s.tail[i], c)
			if t <= s.tail[i].Timestamp {
				lo, hi := s.tail[i-1], s.tail[i]
				f := float64(t-lo.Timestamp) / float64(hi.Timestamp-lo.Timestamp)
				return ext + f*step, nil
			}
			ext += step
		}
		return ext, nil // clamped past the newest row
	}
	blocks := s.blocks
	idx := sort.Search(len(blocks), func(i int) bool { return blocks[i].firstTS > t }) - 1
	if idx < 0 {
		// t precedes all blocks but a tail exists before t was checked:
		// only reachable when there are no blocks at all.
		return 0, ErrEmpty
	}
	b := blocks[idx]
	if t <= b.lastTS {
		rows, err := a.decodeCached(b)
		if err != nil {
			return 0, err
		}
		ext := b.cum[c]
		for i := 1; i < len(rows); i++ {
			step := sampleStep(rows[i-1], rows[i], c)
			if t <= rows[i].Timestamp {
				lo, hi := rows[i-1], rows[i]
				f := float64(t-lo.Timestamp) / float64(hi.Timestamp-lo.Timestamp)
				return ext + f*step, nil
			}
			ext += step
		}
		return ext, nil
	}
	// t falls between this block's last row and the next chunk's first.
	extEnd := b.cum[c] + float64(b.sums[c].Delta)
	var nextTS int64
	var extNext float64
	switch {
	case idx+1 < len(blocks):
		nb := blocks[idx+1]
		nextTS, extNext = nb.firstTS, nb.cum[c]
	case len(s.tail) > 0:
		nextTS, extNext = s.tail[0].Timestamp, s.tailCum[c]
	default:
		return extEnd, nil // clamped past the newest row
	}
	f := float64(t-b.lastTS) / float64(nextTS-b.lastTS)
	return extEnd + f*(extNext-extEnd), nil
}

// Rate returns the metric's average rate over [t0, t1] in units per
// second of simulated time — the quantity the paper's bandwidth figures
// plot. It is deliberately not the difference of two ValueAt endpoints:
// near 2^64 adjacent float64 values are 2048 apart, so differencing two
// extended values would swallow exactly the small per-interval deltas a
// rate is made of. Instead each segment's wrap-corrected uint64 delta is
// summed directly, weighted by its fractional overlap with [t0, t1].
// Blocks that lie entirely inside the window contribute their summary
// delta without being decoded; only the window's edge blocks decode
// (served from the per-block cache when hot).
func (a *Archive) Rate(pmid uint32, t0, t1 int64) (float64, error) {
	if t1 <= t0 {
		return 0, fmt.Errorf("archive: bad rate interval [%d, %d]", t0, t1)
	}
	c, ok := a.col[pmid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoPMID, pmid)
	}
	s := a.snap.Load()
	if s.rawSamples == 0 {
		return 0, ErrEmpty
	}
	sum, err := a.rawDeltaSum(s, c, t0, t1)
	if err != nil {
		return 0, err
	}
	return sum / (float64(t1-t0) / 1e9), nil
}

// overlapFrac is the fraction of segment [lo, hi] covered by [t0, t1].
func overlapFrac(lo, hi, t0, t1 int64) float64 {
	if hi <= lo {
		return 0
	}
	s, e := max(t0, lo), min(t1, hi)
	if e <= s {
		return 0
	}
	return float64(e-s) / float64(hi-lo)
}

// rawDeltaSum computes Σ frac·step over every consecutive-sample segment
// of column c overlapping [t0, t1], using block summaries for fully
// covered blocks and decoding only the window's edge blocks.
func (a *Archive) rawDeltaSum(s *snapshot, c int, t0, t1 int64) (float64, error) {
	blocks := s.blocks
	var sum float64
	// walkRows folds the decoded rows of one chunk.
	walkRows := func(rows []Sample) {
		for i := 1; i < len(rows); i++ {
			f := overlapFrac(rows[i-1].Timestamp, rows[i].Timestamp, t0, t1)
			if f > 0 {
				sum += f * sampleStep(rows[i-1], rows[i], c)
			}
		}
	}
	// Sealed blocks overlapping the window.
	lo := sort.Search(len(blocks), func(i int) bool { return blocks[i].lastTS > t0 })
	for i := lo; i < len(blocks) && blocks[i].firstTS < t1; i++ {
		b := blocks[i]
		if b.firstTS >= t0 && b.lastTS <= t1 {
			sum += float64(b.sums[c].Delta)
			continue
		}
		rows, err := a.decodeCached(b)
		if err != nil {
			return 0, err
		}
		walkRows(rows)
	}
	// Boundary segments between consecutive chunks (block→block and
	// block→tail): their endpoint values come from summaries, no decode.
	// Start one block early — the boundary out of a block that ends
	// before t0 can still overlap the window.
	for i := max(lo-1, 0); i < len(blocks); i++ {
		endTS := blocks[i].lastTS
		if endTS >= t1 {
			break
		}
		var startTS int64
		var endVal, startVal uint64
		if i+1 < len(blocks) {
			startTS, startVal = blocks[i+1].firstTS, blocks[i+1].sums[c].First
		} else if len(s.tail) > 0 {
			startTS, startVal = s.tail[0].Timestamp, s.tail[0].Values[c]
		} else {
			break
		}
		endVal = blocks[i].sums[c].Last
		if f := overlapFrac(endTS, startTS, t0, t1); f > 0 {
			sum += f * float64(int64(pcp.CounterDelta(endVal, startVal)))
		}
	}
	// Tail rows.
	if len(s.tail) > 0 && s.tail[len(s.tail)-1].Timestamp > t0 && s.tail[0].Timestamp < t1 {
		walkRows(s.tail)
	}
	return sum, nil
}
