package archive

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCompactFoldsAgedRaw: blocks older than RawRetention fold out of
// the raw tier once every rollup tier covers them; their history stays
// queryable through the rollups; newer raw blocks survive.
func TestCompactFoldsAgedRaw(t *testing.T) {
	a, _ := New(schema(1), Options{
		BlockSamples: 10,
		Rollups:      []int64{1000},
		RawRetention: 5000,
	})
	for i := 0; i < 200; i++ {
		if err := a.Append(row(int64(i)*100, uint64(i)*50)); err != nil {
			t.Fatal(err)
		}
	}
	before := a.Stats()
	folded := a.Compact()
	if folded == 0 {
		t.Fatal("Compact folded nothing")
	}
	st := a.Stats()
	if st.Folded != folded || st.Compactions != 1 {
		t.Errorf("stats after compact = %+v", st)
	}
	if st.Samples != before.Samples-folded {
		t.Errorf("samples %d, want %d - %d", st.Samples, before.Samples, folded)
	}
	// Raw retention honored: remaining raw covers at least the window.
	first, last, ok := a.Span()
	if !ok || last-first < 5000-1000 {
		t.Errorf("raw span after fold = [%d, %d]", first, last)
	}
	if first <= 12_000 { // 200 rows to ts 19_900, retention 5000
		t.Errorf("raw blocks older than retention survived: first=%d", first)
	}
	// Folded history still answers through the rollup tier, exactly:
	// the counter climbs 50 per 100ns — 100 steps of 50 over the
	// window, divided by the window the same way the raw path divides.
	want := 5000.0 / (float64(10_000) / 1e9)
	rate, err := a.RateAt(1000, 1, 0, 10_000)
	if err != nil || rate != want {
		t.Errorf("rate over folded span = %v, %v; want exactly %v", rate, err, want)
	}
	// The raw path over the folded span now sees nothing.
	rows, err := a.Samples(0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("folded raw rows still served: %d", len(rows))
	}
	// Idempotent without new appends.
	if again := a.Compact(); again != 0 {
		t.Errorf("second compact folded %d more", again)
	}
}

// TestCompactRefusesUncoveredFolds: without a completed rollup bucket
// run covering the aged blocks — rollups disabled — Compact must not
// fold anything, no matter how old the raw blocks are.
func TestCompactRefusesUncoveredFolds(t *testing.T) {
	a, _ := New(schema(1), Options{
		BlockSamples: 10,
		Rollups:      []int64{}, // explicitly disabled
		RawRetention: 10,
	})
	for i := 0; i < 100; i++ {
		if err := a.Append(row(int64(i)*100, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if folded := a.Compact(); folded != 0 {
		t.Fatalf("Compact folded %d rows with no rollup coverage", folded)
	}
	if a.Len() != 100 {
		t.Fatalf("raw rows lost: %d", a.Len())
	}
}

// TestStartCompactor: the background compactor folds on its own and
// stops cleanly (idempotent stop).
func TestStartCompactor(t *testing.T) {
	a, _ := New(schema(1), Options{
		BlockSamples: 10,
		Rollups:      []int64{1000},
		RawRetention: 2000,
	})
	for i := 0; i < 200; i++ {
		if err := a.Append(row(int64(i)*100, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	stop := a.StartCompactor(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Folded == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if a.Stats().Folded == 0 {
		t.Fatal("background compactor never folded")
	}
}

// TestCompactorReaderStress is the -race proof that compaction never
// blocks or tears readers. A deterministic appender (fixed cadence,
// fixed increment) races an aggressive compactor against concurrent
// readers; the oracle: *any* consistent snapshot yields monotonic
// cadence-spaced Samples with value == 7·(ts/cadence), and every
// whole-segment Rate is exactly incr/cadence — no matter how the block
// list was republished mid-read.
func TestCompactorReaderStress(t *testing.T) {
	const (
		cadence = int64(1000)
		incr    = uint64(7)
		rows    = 30_000
	)
	a, _ := New(schema(1), Options{
		BlockSamples: 32,
		Rollups:      []int64{cadence * 8, cadence * 64},
		RawRetention: cadence * 2000,
		MaxBuckets:   1 << 20,
	})

	var wg sync.WaitGroup
	var appended atomic.Int64
	stopReaders := make(chan struct{})

	// Writer: deterministic series.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rows; i++ {
			if err := a.Append(row(int64(i)*cadence, uint64(i)*incr)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			appended.Store(int64(i + 1))
		}
	}()

	// Compactor: as aggressive as the scheduler allows.
	stopCompact := a.StartCompactor(50 * time.Microsecond)

	// Readers: verify the oracle against whatever snapshot they observe.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			probe := seed
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				n := appended.Load()
				if n < 10 {
					continue
				}
				probe = (probe*2862933555777941757 + 3037000493) & (1<<62 - 1)
				// A cadence-aligned window somewhere in the appended span.
				t1 := (probe % (n * cadence)) / cadence * cadence
				t0 := t1 - 500*cadence
				if t0 < 0 {
					t0 = 0
				}
				rowsGot, err := a.Samples(t0, t1)
				if err != nil {
					t.Errorf("Samples: %v", err)
					return
				}
				for i, s := range rowsGot {
					if s.Timestamp%cadence != 0 || s.Values[0] != uint64(s.Timestamp/cadence)*incr {
						t.Errorf("torn row %+v", s)
						return
					}
					if i > 0 && s.Timestamp != rowsGot[i-1].Timestamp+cadence {
						t.Errorf("gap in consistent snapshot: %d after %d", s.Timestamp, rowsGot[i-1].Timestamp)
						return
					}
				}
				// Rate oracles. Each call loads its own snapshot, and a
				// fold may land between two loads, so the raw-path rate
				// over a window chosen from an older snapshot is either
				// the full-coverage value or a fold-truncated one — but
				// always an exact whole number of cadence steps. Any
				// torn or inconsistent block list would break that.
				if len(rowsGot) > 1 {
					lo, hi := rowsGot[0].Timestamp, rowsGot[len(rowsGot)-1].Timestamp
					wantAt := func(l, h int64) float64 {
						return float64(uint64((h-l)/cadence)*incr) / (float64(h-l) / 1e9)
					}
					if rate, err := a.Rate(1, lo, hi); err == nil && rate != wantAt(lo, hi) {
						steps := rate * (float64(hi-lo) / 1e9) / float64(incr)
						k := math.Round(steps)
						if math.Abs(steps-k) > 1e-6 || k < 0 || int64(k) > (hi-lo)/cadence {
							t.Errorf("raw rate over [%d, %d] = %v: not a whole number of steps (%v)", lo, hi, rate, steps)
							return
						}
					}
					// Rollup buckets are never evicted in this config, so
					// bucket-aligned rollup rates are exact uncondition-
					// ally, folding or not.
					bw := int64(cadence * 8)
					loA, hiA := (lo+bw-1)/bw*bw, hi/bw*bw
					if hiA > loA {
						if rate, err := a.RateAt(Resolution(bw), 1, loA, hiA); err != nil || rate != wantAt(loA, hiA) {
							t.Errorf("rollup rate over [%d, %d] = %v, %v; want exactly %v", loA, hiA, rate, err, wantAt(loA, hiA))
							return
						}
					}
					// Floor can legitimately miss if the fold passed hi
					// between loads; the raw span's first timestamp only
					// grows, so a miss with first still <= hi is a bug.
					if s, ok := a.Floor(hi); ok {
						if s.Values[0] != uint64(hi/cadence)*incr {
							t.Errorf("Floor(%d) = %+v", hi, s)
							return
						}
					} else if first, _, sok := a.Span(); sok && first <= hi {
						t.Errorf("Floor(%d) missed but raw span starts at %d", hi, first)
						return
					}
				}
			}
		}(int64(r + 1))
	}

	// Let the writer finish, then stop everyone.
	for appended.Load() < rows {
		time.Sleep(time.Millisecond)
	}
	close(stopReaders)
	stopCompact()
	wg.Wait()

	if a.Stats().Compactions == 0 {
		t.Fatal("compactor never ran during the stress")
	}
}
