// Package derived implements a PAPI component whose events are metricql
// expressions over a PCP metric source, the analogue of PCP's derived
// metrics: an EventSet can mix raw counters and derived quantities
// (`derived:::mem.read_bw` next to a raw nest counter) and profile.Run
// works unchanged. Events are either names registered up front with
// Register — the curated namespace papitool lists — or ad-hoc: any
// native name that parses as a metricql expression is an event, so
//
//	es.Add("derived:::sum(rate(nest.mba*.read_bytes))")
//
// needs no prior setup.
package derived

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"papimc/internal/metricql"
	"papimc/internal/papi"
	"papimc/internal/simtime"
)

// registration is one curated derived metric.
type registration struct {
	expr  string
	desc  string
	units string
}

// Component evaluates metricql expressions as PAPI events.
type Component struct {
	mu         sync.Mutex
	engine     *metricql.Engine
	registered map[string]registration
}

// New builds the component over an existing engine (which carries the
// metric source, aliases, and counter state).
func New(engine *metricql.Engine) *Component {
	return &Component{engine: engine, registered: make(map[string]registration)}
}

// Engine returns the underlying expression engine, for consumers (the
// rule engine, pmquery) that want to share its counter state.
func (c *Component) Engine() *metricql.Engine { return c.engine }

// Name implements papi.Component.
func (c *Component) Name() string { return "derived" }

// Register adds a curated derived metric under a short name. The
// expression is validated by parsing; binding (which needs the metric
// source) is deferred to Describe/NewCounters.
func (c *Component) Register(name, expr, desc, units string) error {
	if name == "" {
		return fmt.Errorf("derived: empty metric name")
	}
	if _, err := metricql.Parse(expr); err != nil {
		return fmt.Errorf("derived: registering %q: %w", name, err)
	}
	c.mu.Lock()
	c.registered[name] = registration{expr: expr, desc: desc, units: units}
	c.mu.Unlock()
	return nil
}

// RegisterNestStandards installs the conventional memory-bandwidth
// metrics over the POWER9 nest counters — the derived quantities the
// paper's Figs. 10-12 plot. mem.total_bw shares its read and write
// subtrees with mem.read_bw/mem.write_bw, so an EventSet carrying all
// three costs one fetch and one rate computation per subtree per
// interval (the engine memoizes by canonical subexpression).
func RegisterNestStandards(c *Component) error {
	for _, m := range []struct{ name, expr, desc, units string }{
		{"mem.read_bw", "sum(rate(nest.mba*.read_bytes))",
			"memory read bandwidth summed over the 8 MBA channels", "bytes/s"},
		{"mem.write_bw", "sum(rate(nest.mba*.write_bytes))",
			"memory write bandwidth summed over the 8 MBA channels", "bytes/s"},
		{"mem.total_bw", "sum(rate(nest.mba*.read_bytes)) + sum(rate(nest.mba*.write_bytes))",
			"total memory bandwidth, read + write", "bytes/s"},
		{"mem.rw_ratio", "sum(rate(nest.mba*.read_bytes)) / sum(rate(nest.mba*.write_bytes))",
			"read-to-write bandwidth ratio", ""},
	} {
		if err := c.Register(m.name, m.expr, m.desc, m.units); err != nil {
			return err
		}
	}
	return nil
}

// resolve maps a native event name to the expression to evaluate:
// a registered short name, or the name itself as an ad-hoc expression.
func (c *Component) resolve(native string) (expr string, reg registration, curated bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.registered[native]; ok {
		return r.expr, r, true
	}
	return native, registration{}, false
}

// ListEvents implements papi.Component: the curated registrations only
// (the ad-hoc namespace is unbounded).
func (c *Component) ListEvents() ([]papi.EventInfo, error) {
	c.mu.Lock()
	names := make([]string, 0, len(c.registered))
	for n := range c.registered {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]papi.EventInfo, len(names))
	for i, n := range names {
		r := c.registered[n]
		ex, err := metricql.Parse(r.expr)
		if err != nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("derived: registered %q: %w", n, err)
		}
		out[i] = papi.EventInfo{
			Name:        n,
			Description: fmt.Sprintf("%s (= %s)", r.desc, r.expr),
			Units:       r.units,
			Instant:     ex.Instant(),
		}
	}
	c.mu.Unlock()
	return out, nil
}

// Describe implements papi.Component. Unknown names are treated as
// ad-hoc expressions; anything that fails to parse or bind (unknown
// metrics, vector-valued result) is ErrNoEvent.
func (c *Component) Describe(native string) (papi.EventInfo, error) {
	expr, reg, curated := c.resolve(native)
	ex, q, err := c.bind(expr)
	if err != nil {
		return papi.EventInfo{}, fmt.Errorf("%w: derived %q: %v", papi.ErrNoEvent, native, err)
	}
	_ = q
	info := papi.EventInfo{
		Name:        native,
		Description: fmt.Sprintf("derived metric %s", expr),
		Units:       reg.units,
		Instant:     ex.Instant(),
	}
	if curated {
		info.Description = fmt.Sprintf("%s (= %s)", reg.desc, expr)
	}
	return info, nil
}

// bind parses and binds one expression, enforcing the scalar-result
// contract a PAPI event carries.
func (c *Component) bind(expr string) (*metricql.Expr, *metricql.Query, error) {
	ex, err := metricql.Parse(expr)
	if err != nil {
		return nil, nil, err
	}
	q, err := c.engine.Bind(ex)
	if err != nil {
		return nil, nil, err
	}
	v, err := q.Width()
	if err != nil {
		return nil, nil, err
	}
	if v > 1 {
		return nil, nil, fmt.Errorf("expression is a vector of %d; aggregate it (sum/avg/...) to use as an event", v)
	}
	return ex, q, nil
}

// NewCounters implements papi.Component.
func (c *Component) NewCounters(natives []string) (papi.Counters, error) {
	qs := make([]*metricql.Query, len(natives))
	for i, n := range natives {
		expr, _, _ := c.resolve(n)
		_, q, err := c.bind(expr)
		if err != nil {
			return nil, fmt.Errorf("%w: derived %q: %v", papi.ErrNoEvent, n, err)
		}
		qs[i] = q
	}
	return &counters{engine: c.engine, qs: qs}, nil
}

type counters struct {
	engine *metricql.Engine
	qs     []*metricql.Query
	closed bool
}

// ReadAt implements papi.Counters: one coalesced engine evaluation for
// every expression in the set. Like the pcp component, the daemon's
// last collection tick decides the sampling instant, not t. Expression
// values are floats; they are clamped to non-negative and rounded to
// the nearest integer to fit PAPI's uint64 counter read (a NaN from
// 0/0 reads as 0).
func (s *counters) ReadAt(t simtime.Time) ([]uint64, error) {
	if s.closed {
		return nil, fmt.Errorf("derived: counters closed")
	}
	_ = t
	vals, err := s.engine.EvalAll(s.qs...)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(vals))
	for i, v := range vals {
		x, err := v.Scalar()
		if err != nil {
			return nil, fmt.Errorf("derived: %w", err)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			x = 0
		}
		out[i] = uint64(x + 0.5)
	}
	return out, nil
}

func (s *counters) Close() error {
	s.closed = true
	return nil
}
