// Package loopnest provides an affine loop-nest intermediate
// representation for the paper's computational kernels. A Nest describes
// the loops and array references of a kernel (Listings 1–9) once; the
// executor then replays its exact access stream into the cache simulator,
// while the analytic traffic engine (internal/model) reasons about the
// same description symbolically. Index expressions support the modular
// term needed for the capped GEMV's A[i%P][k] row recycling.
package loopnest

import (
	"fmt"

	"papimc/internal/trace"
)

// Loop is one loop of the nest, outermost first.
type Loop struct {
	Name   string
	Extent int64
}

// Term is one addend of an index expression: Coeff * (idx[Loop] % Mod),
// with Mod == 0 meaning no modulus.
type Term struct {
	Loop  int
	Coeff int64
	Mod   int64
}

// Expr is an affine-with-modulus index expression yielding a linear
// element index.
type Expr struct {
	Terms []Term
	Const int64
}

// Eval computes the element index for the given loop indices.
func (e Expr) Eval(idx []int64) int64 {
	v := e.Const
	for _, t := range e.Terms {
		x := idx[t.Loop]
		if t.Mod > 0 {
			x %= t.Mod
		}
		v += t.Coeff * x
	}
	return v
}

// Var builds the common single-variable term idx[loop]*coeff.
func Var(loop int, coeff int64) Expr {
	return Expr{Terms: []Term{{Loop: loop, Coeff: coeff}}}
}

// Add combines expressions.
func Add(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		out.Terms = append(out.Terms, e.Terms...)
		out.Const += e.Const
	}
	return out
}

// ModVar builds the term (idx[loop] % mod) * coeff.
func ModVar(loop int, mod, coeff int64) Expr {
	return Expr{Terms: []Term{{Loop: loop, Coeff: coeff, Mod: mod}}}
}

// Ref is one array reference in the nest.
type Ref struct {
	Array    trace.Region
	ElemSize int64
	Kind     trace.Kind
	Index    Expr
	// AtDepth is the number of loops enclosing the reference: a ref at
	// depth d executes once per iteration of loop d-1, after any deeper
	// loops complete (like the y[i] store that follows each dot
	// product in Listing 1). Zero means innermost (len(Loops)).
	AtDepth int
}

// depth resolves AtDepth's zero-default.
func (r Ref) depth(numLoops int) int {
	if r.AtDepth == 0 {
		return numLoops
	}
	return r.AtDepth
}

// Nest is a complete affine loop nest.
type Nest struct {
	Name string
	// Loops are ordered outermost first; the last loop is innermost.
	Loops []Loop
	// Refs are issued in order on every innermost iteration.
	Refs []Ref
	// SoftwarePrefetch models -fprefetch-loop-arrays: a PrefetchStore is
	// issued before every Store reference.
	SoftwarePrefetch bool
}

// Validate checks the nest for structural errors.
func (n *Nest) Validate() error {
	if len(n.Loops) == 0 {
		return fmt.Errorf("loopnest %s: no loops", n.Name)
	}
	for _, l := range n.Loops {
		if l.Extent <= 0 {
			return fmt.Errorf("loopnest %s: loop %s has extent %d", n.Name, l.Name, l.Extent)
		}
	}
	if len(n.Refs) == 0 {
		return fmt.Errorf("loopnest %s: no references", n.Name)
	}
	for i, r := range n.Refs {
		if r.ElemSize <= 0 {
			return fmt.Errorf("loopnest %s: ref %d has element size %d", n.Name, i, r.ElemSize)
		}
		d := r.depth(len(n.Loops))
		if d < 1 || d > len(n.Loops) {
			return fmt.Errorf("loopnest %s: ref %d at depth %d of %d loops", n.Name, i, r.AtDepth, len(n.Loops))
		}
		for _, t := range r.Index.Terms {
			if t.Loop < 0 || t.Loop >= len(n.Loops) {
				return fmt.Errorf("loopnest %s: ref %d indexes loop %d of %d", n.Name, i, t.Loop, len(n.Loops))
			}
			if t.Loop >= d && t.Coeff != 0 {
				return fmt.Errorf("loopnest %s: ref %d at depth %d uses inner loop %d", n.Name, i, d, t.Loop)
			}
			if t.Mod < 0 {
				return fmt.Errorf("loopnest %s: ref %d has negative modulus", n.Name, i)
			}
		}
		// Bounds check the extreme index.
		if max := r.maxIndex(n.Loops); (max+1)*r.ElemSize > r.Array.Size {
			return fmt.Errorf("loopnest %s: ref %d reaches element %d beyond region %s (%d bytes)",
				n.Name, i, max, r.Array.Name, r.Array.Size)
		}
		if min := r.minIndex(n.Loops); min < 0 {
			return fmt.Errorf("loopnest %s: ref %d reaches negative element %d", n.Name, i, min)
		}
	}
	return nil
}

// maxIndex computes the largest element index the ref can produce.
func (r Ref) maxIndex(loops []Loop) int64 {
	v := r.Index.Const
	for _, t := range r.Index.Terms {
		hi := loops[t.Loop].Extent - 1
		if t.Mod > 0 && hi >= t.Mod {
			hi = t.Mod - 1
		}
		if t.Coeff >= 0 {
			v += t.Coeff * hi
		}
	}
	return v
}

// minIndex computes the smallest element index the ref can produce.
func (r Ref) minIndex(loops []Loop) int64 {
	v := r.Index.Const
	for _, t := range r.Index.Terms {
		hi := loops[t.Loop].Extent - 1
		if t.Mod > 0 && hi >= t.Mod {
			hi = t.Mod - 1
		}
		if t.Coeff < 0 {
			v += t.Coeff * hi
		}
	}
	return v
}

// Iterations returns the total number of innermost-body executions.
func (n *Nest) Iterations() int64 {
	total := int64(1)
	for _, l := range n.Loops {
		total *= l.Extent
	}
	return total
}

// Execute replays the nest's exact access stream into sink as core. It
// panics on invalid nests (call Validate first for a graceful error).
func (n *Nest) Execute(core int, sink trace.Sink) {
	if err := n.Validate(); err != nil {
		panic(err)
	}
	idx := make([]int64, len(n.Loops))
	n.run(0, idx, core, sink)
}

func (n *Nest) run(depth int, idx []int64, core int, sink trace.Sink) {
	if depth == len(n.Loops) {
		n.emit(depth, idx, core, sink)
		return
	}
	for i := int64(0); i < n.Loops[depth].Extent; i++ {
		idx[depth] = i
		n.run(depth+1, idx, core, sink)
		// Refs at depth+1 execute after the deeper loops complete,
		// once per iteration of this loop.
		if depth+1 < len(n.Loops) {
			n.emit(depth+1, idx, core, sink)
		}
	}
}

// emit issues the refs attached at the given depth.
func (n *Nest) emit(depth int, idx []int64, core int, sink trace.Sink) {
	for _, r := range n.Refs {
		if r.depth(len(n.Loops)) != depth {
			continue
		}
		addr := r.Array.Addr(r.Index.Eval(idx) * r.ElemSize)
		if r.Kind == trace.Store && n.SoftwarePrefetch {
			sink.Access(core, trace.Access{Addr: addr, Size: r.ElemSize, Kind: trace.PrefetchStore})
		}
		sink.Access(core, trace.Access{Addr: addr, Size: r.ElemSize, Kind: r.Kind})
	}
}

// --- analysis ----------------------------------------------------------

// StrideClass classifies a reference's innermost access pattern.
type StrideClass int

const (
	// Invariant: the reference does not vary with the innermost
	// varying loop it appears under (e.g. fully loop-invariant).
	Invariant StrideClass = iota
	// Sequential: consecutive body executions touch the same or
	// adjacent cache blocks.
	Sequential
	// Strided: consecutive touches jump further than a cache line.
	Strided
)

func (s StrideClass) String() string {
	switch s {
	case Invariant:
		return "invariant"
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	default:
		return fmt.Sprintf("StrideClass(%d)", int(s))
	}
}

// InnerStrideBytes returns the byte stride between consecutive innermost
// iterations (the Coeff sum over terms of the innermost loop that the
// reference actually uses), and the loop index it varies with. A second
// return of -1 means the reference is constant.
func (n *Nest) InnerStrideBytes(ref int) (int64, int) {
	r := n.Refs[ref]
	// Find the innermost loop the ref depends on.
	varying := -1
	for _, t := range r.Index.Terms {
		if t.Coeff != 0 && t.Loop > varying {
			varying = t.Loop
		}
	}
	if varying < 0 {
		return 0, -1
	}
	stride := int64(0)
	for _, t := range r.Index.Terms {
		if t.Loop == varying {
			stride += t.Coeff
		}
	}
	return stride * r.ElemSize, varying
}

// Classify returns the stride class of reference ref with respect to its
// own innermost enclosing loop: a ref that varies with that loop is
// sequential or strided by its byte stride; one varying only with outer
// loops is invariant (reused) within its enclosing loop.
func (n *Nest) Classify(ref int) StrideClass {
	stride, varying := n.InnerStrideBytes(ref)
	if varying < 0 {
		return Invariant
	}
	if varying != n.Refs[ref].depth(len(n.Loops))-1 {
		return Invariant
	}
	abs := stride
	if abs < 0 {
		abs = -abs
	}
	if abs <= 128 {
		return Sequential
	}
	return Strided
}

// ExecCount returns how many times reference ref executes over the whole
// nest: the product of enclosing loop extents.
func (n *Nest) ExecCount(ref int) int64 {
	d := n.Refs[ref].depth(len(n.Loops))
	total := int64(1)
	for l := 0; l < d; l++ {
		total *= n.Loops[l].Extent
	}
	return total
}

// FootprintBytes estimates the distinct bytes reference ref touches over
// the whole nest: the product over referenced loops of their distinct
// index contributions, times the element size, clamped to the region
// size.
func (n *Nest) FootprintBytes(ref int) int64 {
	r := n.Refs[ref]
	elems := int64(1)
	perLoop := map[int]int64{}
	for _, t := range r.Index.Terms {
		if t.Coeff == 0 {
			continue
		}
		distinct := n.Loops[t.Loop].Extent
		if t.Mod > 0 && t.Mod < distinct {
			distinct = t.Mod
		}
		if cur, ok := perLoop[t.Loop]; !ok || distinct > cur {
			perLoop[t.Loop] = distinct
		}
	}
	for _, d := range perLoop {
		elems *= d
	}
	bytes := elems * r.ElemSize
	if bytes > r.Array.Size {
		bytes = r.Array.Size
	}
	return bytes
}

// HasStridedRef reports whether any reference in the nest is strided —
// the condition under which POWER9 store streams stop bypassing the
// cache.
func (n *Nest) HasStridedRef() bool {
	for i := range n.Refs {
		if n.Classify(i) == Strided {
			return true
		}
	}
	return false
}

// StoreDensityGap returns, for store reference ref, roughly how many
// accesses separate consecutive executions of that store: the number of
// innermost-body references times the iteration distance of the ref's
// enclosing loop. Sparse stores (large gap) cannot keep a gather buffer
// open and write-allocate.
func (n *Nest) StoreDensityGap(ref int) int64 {
	d := n.Refs[ref].depth(len(n.Loops))
	bodyRefs := 0
	for i := range n.Refs {
		if n.Refs[i].depth(len(n.Loops)) == len(n.Loops) {
			bodyRefs++
		}
	}
	if bodyRefs == 0 {
		bodyRefs = 1
	}
	inner := int64(1)
	for l := d; l < len(n.Loops); l++ {
		inner *= n.Loops[l].Extent
	}
	return inner * int64(bodyRefs)
}
