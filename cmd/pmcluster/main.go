// Command pmcluster assembles a federated metric cluster in one
// process — N simulated PMCD nodes, each its own daemon with a
// distinct architecture and noise seed, under a hierarchical
// scatter-gather tree of federators — then takes cluster-wide
// consistent snapshots and answers metricql queries at the root.
//
// Nodes named with -down are killed (connection refused) and nodes
// named with -stall answer slower than every deadline. Either way the
// cluster demonstrates the partial-result contract: queries still
// answer over the survivors, and the missing nodes are named exactly
// in the output. With -net every interior edge runs over TCP loopback;
// without it the tree is in-process function calls, which assembles
// thousands of nodes in well under a second.
//
//	pmcluster -nodes 64 -fanout 4 -down node013,node037,node061
//	pmcluster -nodes 1000 -fanout 8 -q 'sum(mem.read_bw) by (node)'
//	pmcluster -nodes 8 -net -stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"papimc/internal/cluster"
	"papimc/internal/metricql"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 64, "node count")
		fanout    = flag.Int("fanout", 4, "federator fan-out")
		seed      = flag.Uint64("seed", 0xC10C, "base seed (node i derives its own substream)")
		net       = flag.Bool("net", false, "serve every interior edge over TCP loopback")
		down      = flag.String("down", "", "comma-separated nodes to kill before querying")
		stall     = flag.String("stall", "", "comma-separated nodes to stall before querying")
		stallFor  = flag.Duration("stall-for", 500*time.Millisecond, "how long stalled nodes sleep per fetch")
		deadline  = flag.Duration("deadline", 50*time.Millisecond, "leaf-edge deadline (scaled per level)")
		hedge     = flag.Duration("hedge", 10*time.Millisecond, "leaf-edge hedge delay")
		retries   = flag.Int("retries", 1, "per-edge retries")
		query     = flag.String("q", "sum(mem.read_bw) by (node)", "metricql query evaluated at the root ('' = skip)")
		snapshots = flag.Int("snapshots", 1, "consistent snapshots to take")
		stats     = flag.Bool("stats", false, "print per-edge federation counters")
		verbose   = flag.Bool("v", false, "print every group of the query answer")
	)
	flag.Parse()

	tr, err := cluster.Assemble(cluster.Config{
		Nodes:  *nodes,
		FanOut: *fanout,
		Seed:   *seed,
		Net:    *net,
		Policy: pmproxy.EdgePolicy{Deadline: *deadline, HedgeAfter: *hedge, Retries: *retries},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmcluster: %v\n", err)
		os.Exit(1)
	}
	defer tr.Close()

	names, err := tr.Root.Names()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmcluster: %v\n", err)
		os.Exit(1)
	}
	shape := make([]string, 0, tr.Depth())
	for _, level := range tr.Levels {
		shape = append(shape, fmt.Sprint(len(level)))
	}
	mode := "in-process"
	if *net {
		mode = "tcp"
	}
	fmt.Printf("cluster: %d nodes, fanout %d, depth %d (%s federators), %d metrics, %s edges\n",
		*nodes, tr.Config.FanOut, tr.Depth(), strings.Join(shape, "+"), len(names), mode)

	gate(tr, *down, func(n *cluster.Node) { n.Kill() }, "killed")
	gate(tr, *stall, func(n *cluster.Node) { n.Stall(*stallFor) }, fmt.Sprintf("stalled %v", *stallFor))

	for i := 0; i < *snapshots; i++ {
		res, err := tr.Snapshot()
		var pe *pcp.PartialError
		switch {
		case err == nil:
			fmt.Printf("snapshot %d: ts=%d values=%d complete\n", i+1, res.Timestamp, len(res.Values))
		case errors.As(err, &pe):
			fmt.Printf("snapshot %d: ts=%d values=%d partial, missing=[%s] (%s)\n",
				i+1, res.Timestamp, countOK(res), strings.Join(pe.Missing, ","), pe.Cause)
		default:
			fmt.Fprintf(os.Stderr, "pmcluster: snapshot %d: %v\n", i+1, err)
			os.Exit(1)
		}
	}

	if *query != "" {
		eng := metricql.NewEngine(tr.Root)
		q, err := eng.Query(*query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmcluster: %v\n", err)
			os.Exit(1)
		}
		v, err := q.Eval()
		var pe *pcp.PartialError
		switch {
		case err == nil:
			fmt.Printf("query %s: %d elements\n", *query, len(v.Vals))
		case errors.As(err, &pe):
			fmt.Printf("query %s: %d elements, partial, missing=[%s]\n", *query, len(v.Vals), strings.Join(pe.Missing, ","))
		default:
			fmt.Fprintf(os.Stderr, "pmcluster: query: %v\n", err)
			os.Exit(1)
		}
		limit := len(v.Vals)
		if !*verbose && limit > 16 {
			limit = 16
		}
		for i := 0; i < limit; i++ {
			name := "(scalar)"
			if v.Names != nil {
				name = v.Names[i]
			}
			fmt.Printf("  %-12s %.6g\n", name, v.Vals[i])
		}
		if limit < len(v.Vals) {
			fmt.Printf("  ... %d more (use -v)\n", len(v.Vals)-limit)
		}
	}

	if *stats {
		fmt.Println("edges:")
		for _, es := range tr.EdgeStats() {
			s := es.Stats
			fmt.Printf("  %-22s fetches=%d successes=%d failures=%d retries=%d hedges=%d hedges_won=%d deadline_misses=%d\n",
				es.Edge, s.Fetches, s.Successes, s.Failures, s.Retries, s.Hedges, s.HedgesWon, s.DeadlineMisses)
		}
	}
}

// gate applies a fault to every node in the comma-separated list,
// exiting with usage status when a name is unknown.
func gate(tr *cluster.Tree, list string, apply func(*cluster.Node), what string) {
	if list == "" {
		return
	}
	names := strings.Split(list, ",")
	for _, name := range names {
		n := tr.Node(strings.TrimSpace(name))
		if n == nil {
			fmt.Fprintf(os.Stderr, "pmcluster: unknown node %q (nodes are %s..%s)\n",
				name, tr.Nodes[0].Name, tr.Nodes[len(tr.Nodes)-1].Name)
			os.Exit(2)
		}
		apply(n)
	}
	fmt.Printf("down: %s (%s)\n", strings.Join(names, " "), what)
}

func countOK(res pcp.FetchResult) int {
	n := 0
	for _, v := range res.Values {
		if v.Status == pcp.StatusOK {
			n++
		}
	}
	return n
}
