package mem

import (
	"testing"

	"papimc/internal/arch"
	"papimc/internal/simtime"
)

// BenchmarkRead: the counter-snapshot hot path under realistic noise —
// every PMU read, daemon sample and profile tick goes through it.
func BenchmarkRead(b *testing.B) {
	c, _ := noisyController(1)
	t := simtime.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(100 * simtime.Microsecond)
		c.AddTraffic(true, int64(i)*64, 1<<16, t, t)
		c.Read(t)
	}
}

// BenchmarkTotals: the summed variant used by the nest metrics.
func BenchmarkTotals(b *testing.B) {
	c, _ := noisyController(2)
	t := simtime.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(100 * simtime.Microsecond)
		c.AddTraffic(false, int64(i)*64, 1<<16, t, t)
		c.Totals(t)
	}
}

// BenchmarkAddTraffic: posting one 64 KiB transfer (ideal counters) —
// the cache simulator's MemPort emits these once per miss.
func BenchmarkAddTraffic(b *testing.B) {
	c, _ := idealController()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddTraffic(true, int64(i)*64, 1<<16, 0, 0)
	}
	b.StopTimer()
	c.Totals(0)
}

// BenchmarkAddTrafficNoisy: the same under posting lag, where every
// channel slice takes its own stochastic post time. Background noise is
// off so the measurement isolates the posting-queue cost.
func BenchmarkAddTrafficNoisy(b *testing.B) {
	clock := simtime.NewClock()
	noise := arch.Summit().Noise
	noise.BackgroundBytesPerSec = 0
	c := NewController(Config{Channels: 8, Noise: noise, Seed: 3}, clock)
	t := simtime.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = t.Add(simtime.Microsecond)
		c.AddTraffic(true, int64(i)*64, 1<<16, t, t)
		if i%1024 == 1023 { // drain periodically as a sampler would
			c.Read(t.Add(simtime.Second))
		}
	}
}
