package pmproxy

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"papimc/internal/pcp"
)

// ErrDeadline is the typed failure of a federation edge whose child did
// not answer within EdgePolicy.Deadline. It wraps ErrUpstreamDown so
// errors.Is(err, ErrUpstreamDown) holds for every edge failure.
var ErrDeadline = fmt.Errorf("%w: deadline exceeded", ErrUpstreamDown)

// EdgePolicy tunes one federation edge of the cluster tree: how long the
// parent waits for the child, when it hedges, and how often it retries.
type EdgePolicy struct {
	// Deadline bounds each attempt round (primary plus any hedge) by
	// wall-clock time; on expiry the round fails with ErrDeadline. Zero
	// means no deadline (the child's own timeouts are the only bound).
	Deadline time.Duration
	// HedgeAfter launches a second, hedged attempt if the primary has
	// not answered after this long — the standard tail-latency defense
	// against one slow child. The first answer wins; the loser is
	// discarded. Zero disables hedging.
	HedgeAfter time.Duration
	// Retries is how many fresh rounds are attempted after a failed one.
	Retries int
}

// UpstreamStats is one edge's counters, the per-edge observability of
// cluster health. Conservation laws (asserted by the exactness test and
// the chaos harness):
//
//	Fetches = Successes + Failures
//	Errors  = Retries + Failures
//	HedgesWon ≤ Hedges, DeadlineMisses ≤ Errors
type UpstreamStats struct {
	Fetches        int64 // fetches routed to this edge
	Successes      int64 // fetches answered (fully or partially)
	Failures       int64 // fetches failed after all retries
	Errors         int64 // attempt rounds that ended in error or deadline
	Retries        int64 // failed rounds that were retried
	Hedges         int64 // hedged attempts launched
	HedgesWon      int64 // rounds won by the hedge, not the primary
	DeadlineMisses int64 // rounds that hit the deadline with no answer
}

// Upstream is a federation client edge: it fetches from one child of the
// aggregation tree under an EdgePolicy and accounts for every attempt.
// It is safe for concurrent use; attempts for one Fetch run on their own
// goroutines so a stalled child never blocks the caller past the
// deadline (the abandoned attempt finishes in the background, bounded by
// the child's own timeout).
type Upstream struct {
	name   string
	fetch  func(pmids []uint32) (pcp.FetchResult, error)
	policy EdgePolicy

	fetches        atomic.Int64
	successes      atomic.Int64
	failures       atomic.Int64
	errors         atomic.Int64
	retries        atomic.Int64
	hedges         atomic.Int64
	hedgesWon      atomic.Int64
	deadlineMisses atomic.Int64
}

// NewUpstream builds an edge named name over the child's fetch function.
func NewUpstream(name string, fetch func(pmids []uint32) (pcp.FetchResult, error), policy EdgePolicy) *Upstream {
	return &Upstream{name: name, fetch: fetch, policy: policy}
}

// Name returns the edge's name (conventionally "parent->child").
func (u *Upstream) Name() string { return u.name }

// Stats returns a snapshot of the edge's counters.
func (u *Upstream) Stats() UpstreamStats {
	return UpstreamStats{
		Fetches:        u.fetches.Load(),
		Successes:      u.successes.Load(),
		Failures:       u.failures.Load(),
		Errors:         u.errors.Load(),
		Retries:        u.retries.Load(),
		Hedges:         u.hedges.Load(),
		HedgesWon:      u.hedgesWon.Load(),
		DeadlineMisses: u.deadlineMisses.Load(),
	}
}

// Fetch runs one fetch against the child with rounds of
// primary+hedge attempts until a round succeeds or retries are
// exhausted. A child's *pcp.PartialError counts as a success — the
// partial answer propagates up the tree, it does not trigger a retry.
func (u *Upstream) Fetch(pmids []uint32) (pcp.FetchResult, error) {
	u.fetches.Add(1)
	for round := 0; ; round++ {
		res, err, hedged := u.round(pmids)
		var pe *pcp.PartialError
		if err == nil || errors.As(err, &pe) {
			u.successes.Add(1)
			if hedged {
				u.hedgesWon.Add(1)
			}
			return res, err
		}
		u.errors.Add(1)
		if round >= u.policy.Retries {
			u.failures.Add(1)
			return pcp.FetchResult{}, fmt.Errorf("pmproxy: upstream %s: %w", u.name, err)
		}
		u.retries.Add(1)
	}
}

// outcome is one attempt's result.
type outcome struct {
	res   pcp.FetchResult
	err   error
	hedge bool
}

// round runs one attempt round: the primary attempt, optionally a hedge,
// bounded by the deadline. It returns the first success (reporting
// whether the hedge won), or an error when every in-flight attempt has
// failed or the deadline fired.
func (u *Upstream) round(pmids []uint32) (pcp.FetchResult, error, bool) {
	// Buffered to the maximum attempts in flight, so an abandoned
	// attempt's late send never blocks its goroutine forever.
	ch := make(chan outcome, 2)
	launch := func(hedge bool) {
		go func() {
			res, err := u.fetch(pmids)
			ch <- outcome{res: res, err: err, hedge: hedge}
		}()
	}
	launch(false)

	var deadlineC, hedgeC <-chan time.Time
	if u.policy.Deadline > 0 {
		t := time.NewTimer(u.policy.Deadline)
		defer t.Stop()
		deadlineC = t.C
	}
	if u.policy.HedgeAfter > 0 {
		t := time.NewTimer(u.policy.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	pending := 1
	var lastErr error
	for {
		select {
		case o := <-ch:
			pending--
			var pe *pcp.PartialError
			if o.err == nil || errors.As(o.err, &pe) {
				return o.res, o.err, o.hedge
			}
			lastErr = o.err
			if pending == 0 {
				// Every launched attempt failed. A hedge that has not
				// launched yet would only repeat the same failure after a
				// sleep; the retry loop owns re-attempts.
				return pcp.FetchResult{}, lastErr, false
			}
		case <-hedgeC:
			hedgeC = nil
			u.hedges.Add(1)
			launch(true)
			pending++
		case <-deadlineC:
			u.deadlineMisses.Add(1)
			return pcp.FetchResult{}, ErrDeadline, false
		}
	}
}
