package pcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frame builds a wire frame with an arbitrary (possibly lying) length
// prefix for seeding the fuzzer.
func frame(length uint32, typ uint8, payload []byte) []byte {
	b := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(b, length)
	b[4] = typ
	return append(b, payload...)
}

// FuzzReadPDU asserts hostile-frame robustness end to end: ReadPDU never
// panics or over-allocates whatever the length prefix claims, a frame it
// does accept round-trips bytewise through WritePDU, and every payload
// decoder is total on the accepted payload (error or value, no panic).
func FuzzReadPDU(f *testing.F) {
	// Well-formed frames of each PDU type.
	f.Add(frame(0, PDUNamesReq, nil))
	f.Add(frame(uint32(len(EncodeNamesResp([]NameEntry{{PMID: 1, Name: "kernel.load"}}))), PDUNamesResp,
		EncodeNamesResp([]NameEntry{{PMID: 1, Name: "kernel.load"}})))
	f.Add(frame(uint32(len(EncodeFetchReq([]uint32{1, 2, 3}))), PDUFetchReq, EncodeFetchReq([]uint32{1, 2, 3})))
	f.Add(frame(uint32(len(EncodeFetchResp(FetchResult{Timestamp: 42, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 1 << 60}}}))), PDUFetchResp,
		EncodeFetchResp(FetchResult{Timestamp: 42, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 1 << 60}}})))
	f.Add(frame(uint32(len(EncodeError("boom"))), PDUError, EncodeError("boom")))
	// Hostile frames: lying length prefixes, truncation, garbage.
	f.Add(frame(0xFFFFFFFF, PDUFetchResp, nil))       // oversize claim
	f.Add(frame(MaxPDUBytes+1, PDUNamesResp, nil))    // just over the cap
	f.Add(frame(100, PDUFetchReq, []byte{1, 2, 3}))   // claims more than present
	f.Add(frame(2, PDUNamesResp, []byte{0, 0, 0, 9})) // claims less than present
	f.Add([]byte{0, 0})                               // truncated header
	f.Add(frame(8, PDUFetchResp, bytes.Repeat([]byte{0xFF}, 8)))
	f.Add(frame(4, PDUNamesResp, []byte{0xFF, 0xFF, 0xFF, 0xFF})) // implausible count

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadPDU(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, ErrPDUTooLarge) && !errors.Is(err, ErrProtocol) {
				t.Fatal("ErrPDUTooLarge must wrap ErrProtocol")
			}
			return
		}
		if len(payload) > MaxPDUBytes {
			t.Fatalf("accepted %d-byte payload beyond MaxPDUBytes", len(payload))
		}
		// An accepted frame round-trips bytewise.
		var buf bytes.Buffer
		if err := WritePDU(&buf, typ, payload); err != nil {
			t.Fatalf("WritePDU of accepted frame: %v", err)
		}
		typ2, payload2, err := ReadPDU(&buf)
		if err != nil {
			t.Fatalf("re-read of written frame: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed frame: type %d->%d, %d->%d bytes", typ, typ2, len(payload), len(payload2))
		}
		// Every decoder must be total on arbitrary accepted payloads.
		if _, err := DecodeNamesResp(payload); err == nil {
			if entries, _ := DecodeNamesResp(payload); len(entries) > MaxPDUBytes/5 {
				t.Fatalf("DecodeNamesResp produced implausible %d entries", len(entries))
			}
		}
		_, _ = DecodeFetchReq(payload)
		_, _ = DecodeFetchResp(payload)
		_, _ = DecodeError(payload)
		_, _ = DecodeVersion(payload)
		_, _ = DecodeFetchBatchReqInto(payload, nil)
		_, _, _ = DecodeFetchBatchRespInto(payload, nil)
	})
}

// TestReadPDUOversizeNoAlloc pins the guard the fuzz target relies on:
// a hostile length prefix fails before any payload read or allocation.
func TestReadPDUOversizeNoAlloc(t *testing.T) {
	hdr := frame(0xFFFFFFF0, PDUFetchResp, nil)
	r := &countingReader{r: bytes.NewReader(hdr)}
	_, _, err := ReadPDU(r)
	if !errors.Is(err, ErrPDUTooLarge) {
		t.Fatalf("err = %v, want ErrPDUTooLarge", err)
	}
	if r.n > 5 {
		t.Fatalf("read %d bytes past the header of an oversize frame", r.n)
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
