package metricql

import (
	"testing"

	"papimc/internal/archive"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

// replayFixture records 1200 samples at a 100ms cadence — a linear
// counter (+700 per step), a near-wrap counter, and a sawtooth level —
// into an archive with 1s and 10s rollup tiers, and returns a replay
// source whose clock sits at the last sample.
func replayFixture(t *testing.T) (*archive.Replay, *archive.Archive, *simtime.Clock) {
	t.Helper()
	a, err := archive.New([]pcp.NameEntry{
		{PMID: 1, Name: "bench.counter"},
		{PMID: 2, Name: "bench.level"},
		{PMID: 3, Name: "bench.wrapping"},
	}, archive.Options{Rollups: []int64{1_000_000_000, 10_000_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	w0 := ^uint64(0) - 2000
	for i := 0; i < 1200; i++ {
		err := a.AppendSample(archive.Sample{
			Timestamp: int64(i) * 100_000_000,
			Values: []uint64{
				uint64(i) * 700,
				uint64(500 + 100*(i%7)),
				w0 + uint64(i)*700, // wraps between i=2 and i=3
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	clock := simtime.NewClock()
	clock.AdvanceTo(simtime.Time(1199 * 100_000_000))
	return archive.NewReplay(a, clock), a, clock
}

// TestPushdownAnswersFromHistory: on the very first evaluation the
// engine's sample ring holds one sample, so the ring path can only echo
// the current value — a pushed-down window must instead aggregate the
// archived history. That difference proves the pushdown path ran, and
// the values pin its exactness.
func TestPushdownAnswersFromHistory(t *testing.T) {
	r, _, _ := replayFixture(t)
	e := NewEngine(r)

	// 60s window ending at the clock: [59.9s, 119.9s) holds samples
	// i=599..1198 of the sawtooth (full 7-cycles plus remainder).
	qMin, err := e.Query("min_over(bench.level, 60s)")
	if err != nil {
		t.Fatal(err)
	}
	qMax, err := e.Query("max_over(bench.level, 60s)")
	if err != nil {
		t.Fatal(err)
	}
	qRate, err := e.Query("rate_over(bench.counter, 60s)")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := e.EvalAll(qMin, qMax, qRate)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := vs[0].Scalar(); v != 500 {
		t.Errorf("min_over = %v, want 500 (ring fallback would echo the current sample)", v)
	}
	if v, _ := vs[1].Scalar(); v != 1100 {
		t.Errorf("max_over = %v, want 1100", v)
	}
	// 600 steps of +700 over a 60s window, divided exactly as the
	// archive's rate path divides.
	wantRate := float64(600*700) / (float64(60_000_000_000) / 1e9)
	if v, _ := vs[2].Scalar(); v != wantRate {
		t.Errorf("rate_over = %v, want exactly %v", v, wantRate)
	}
}

// TestPushdownAvgMatchesArchive: avg_over pushdown must equal the
// archive's own window aggregate (Sum/Count) at the resolution the
// planner selects — and that resolution must be a rollup tier for a
// window this long, not the raw path.
func TestPushdownAvgMatchesArchive(t *testing.T) {
	r, a, clock := replayFixture(t)
	e := NewEngine(r)
	q, err := e.Query("avg_over(bench.level, 100s)")
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	now := int64(clock.Now())
	t0, t1 := now-100_000_000_000, now
	res := a.SelectResolution(t0, t1)
	if res == archive.ResRaw {
		t.Fatalf("100s window over 1s/10s tiers selected the raw path")
	}
	agg, err := a.WindowAt(res, 2, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Sum / float64(agg.Count)
	if got, _ := v.Scalar(); got != want {
		t.Errorf("avg_over pushdown = %v, want %v (archive agg at %v)", got, want, res)
	}
}

// TestPushdownRateAcrossWrap: the pushdown rate path sums per-sample
// wrap-corrected deltas, so a counter that wraps inside the window still
// reports its exact rate — the property the ring path can only
// approximate from the window's first and last samples.
func TestPushdownRateAcrossWrap(t *testing.T) {
	r, _, _ := replayFixture(t)
	e := NewEngine(r)
	q, err := e.Query("rate_over(bench.wrapping, 119s)")
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Eval()
	if err != nil {
		t.Fatal(err)
	}
	wantRate := float64(1190*700) / (float64(119_000_000_000) / 1e9)
	if got, _ := v.Scalar(); got != wantRate {
		t.Errorf("rate_over across wrap = %v, want exactly %v", got, wantRate)
	}
}

// TestPushdownFallbackForComposedArgs: a windowed function whose
// argument is not a bare metric cannot push down — it must fall back to
// the engine's sample ring, which on a first evaluation holds only the
// current sample.
func TestPushdownFallbackForComposedArgs(t *testing.T) {
	r, _, _ := replayFixture(t)
	e := NewEngine(r)
	qPush, err := e.Query("min_over(bench.level, 60s)")
	if err != nil {
		t.Fatal(err)
	}
	qRing, err := e.Query("min_over(bench.level + 0, 60s)")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := e.EvalAll(qPush, qRing)
	if err != nil {
		t.Fatal(err)
	}
	// Sample 1199: level = 500 + 100*(1199%7) = 700.
	if v, _ := vs[1].Scalar(); v != 700 {
		t.Errorf("ring fallback min_over = %v, want the lone current sample 700", v)
	}
	if v, _ := vs[0].Scalar(); v != 500 {
		t.Errorf("pushdown min_over = %v, want the archived window min 500", v)
	}
}

// TestPinnedReplayNeverReadsFiner: a replay pinned to the 10s tier must
// answer a window the planner would satisfy at 1s from the 10s tier
// instead.
func TestPinnedReplayNeverReadsFiner(t *testing.T) {
	_, a, clock := replayFixture(t)
	r := archive.NewReplayAt(a, clock, archive.Resolution(10_000_000_000))
	now := int64(clock.Now())
	got, ok, err := r.EvalWindow("avg_over", 2, now-20_000_000_000, now)
	if err != nil || !ok {
		t.Fatalf("pinned EvalWindow = %v, %v, %v", got, ok, err)
	}
	agg, err := a.WindowAt(archive.Resolution(10_000_000_000), 2, now-20_000_000_000, now)
	if err != nil {
		t.Fatal(err)
	}
	if want := agg.Sum / float64(agg.Count); got != want {
		t.Errorf("pinned replay window = %v, want the 10s tier's %v", got, want)
	}
}

// TestRingRateOverAndMinOver: the ring fallbacks for the two new
// windowed functions, pinned on a scriptable live source — min_over
// reduces the retained samples, rate_over wrap-corrects across the
// window's first and last samples.
func TestRingRateOverAndMinOver(t *testing.T) {
	e, f := newEngineFake()
	qMin, err := e.Query("min_over(rate(nest.mba0.read_bytes), 2s)")
	if err != nil {
		t.Fatal(err)
	}
	qRate, err := e.Query("rate_over(nest.mba0.read_bytes, 3s)")
	if err != nil {
		t.Fatal(err)
	}
	// Counter near the top of the range climbing 2048/step — every
	// value is a multiple of 2048, so its float64 image in the ring is
	// exact — wrapping to zero between steps 2 and 3.
	top := ^uint64(0) - 6143 // 2^64 - 6144
	vals := []uint64{top, top + 2048, top + 4096, 0, 2048}
	// rates per 1s step (uint64-exact in counterState): 0 then 2048.
	wantMin := []float64{0, 0, 2048, 2048, 2048}
	// rate_over spans the ring's (ts-3s, ts] samples: wrap-corrected
	// (last-first)/dt.
	wantRate := []float64{0, 2048, 2048, 2048, 2048}
	for i, v := range vals {
		f.vals[1] = v
		f.ts = int64(i) * 1_000_000_000
		vs, err := e.EvalAll(qMin, qRate)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := vs[0].Scalar(); got != wantMin[i] {
			t.Errorf("step %d: min_over = %v, want %v", i, got, wantMin[i])
		}
		if got, _ := vs[1].Scalar(); got != wantRate[i] {
			t.Errorf("step %d: rate_over = %v, want %v", i, got, wantRate[i])
		}
	}
}

// TestParseNewWindowedFuncs pins the grammar of min_over and rate_over:
// canonical forms and the rate_over metric-argument restriction.
func TestParseNewWindowedFuncs(t *testing.T) {
	for src, want := range map[string]string{
		"min_over(kernel.load, 5s)":        "min_over(kernel.load, 5000000000ns)",
		"rate_over(bench.counter, 500ms)":  "rate_over(bench.counter, 500000000ns)",
		"min_over(rate(kernel.load), 10s)": "min_over(rate(kernel.load), 10000000000ns)",
	} {
		ex, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := ex.String(); got != want {
			t.Errorf("Parse(%q) canonical = %q, want %q", src, got, want)
		}
	}
	for _, src := range []string{
		"rate_over(kernel.load + 1, 5s)", // metricArg violation
		"min_over(kernel.load)",          // missing window
		"rate_over(kernel.load, 0s)",     // non-positive window
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted, want error", src)
		}
	}
}
