// Package workload is the workload-model tier over loadgen, stats and
// sweep: it turns a declarative spec — client cohorts, per-window rate
// curves, multi-period diurnal patterns, heavy-tailed request mixes over
// live/proxied/archive/derived queries — into a deterministic stream of
// requests, runs that stream through a discrete-event virtual-time
// engine (millions of concurrent clients, faster than real time) or a
// wall-clock executor, records runs to a compact replayable trace, and
// sweeps configurations into a capacity report with knee-point
// detection.
//
// Determinism is the sweep package's contract extended to clients: every
// client draws from its own sweep.Seed2(spec.Seed, cohort, client)
// substream, the service model draws from its own substream in issue
// order, and the virtual-time event loop breaks ties deterministically —
// so a simulation of a million clients is byte-identical across runs and
// across host machines of the same platform.
package workload

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"papimc/internal/simtime"
)

// ErrSpec is wrapped by every spec validation failure, so callers can
// errors.Is a bad spec apart from I/O or engine errors.
var ErrSpec = errors.New("workload: invalid spec")

// Class is the query class a request exercises, mirroring the serving
// tiers the stack exposes: direct daemon fetches, proxied fetches,
// archive range reads, and derived-metric (metricql) evaluations.
type Class uint8

// Query classes, in mix-weight order.
const (
	Live Class = iota
	Proxied
	Archive
	Derived
	NumClasses
)

// String names the class as it appears in specs and reports.
func (c Class) String() string {
	switch c {
	case Live:
		return "live"
	case Proxied:
		return "proxied"
	case Archive:
		return "archive"
	case Derived:
		return "derived"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Mix is the request-class distribution of a cohort. Weights are
// relative; they need not sum to 1.
type Mix struct {
	Live    float64 `json:"live"`
	Proxied float64 `json:"proxied"`
	Archive float64 `json:"archive"`
	Derived float64 `json:"derived"`
}

func (m Mix) weights() [NumClasses]float64 {
	return [NumClasses]float64{m.Live, m.Proxied, m.Archive, m.Derived}
}

func (m Mix) total() float64 { return m.Live + m.Proxied + m.Archive + m.Derived }

// SizeSpec is the heavy-tailed request-size distribution: the number of
// metrics one request touches follows a bounded Pareto — Min × U^(-1/Alpha)
// clamped to Max — so most requests are small and a tail of requests
// sweeps wide metric sets, which is what makes p99s interesting.
type SizeSpec struct {
	Min   int     `json:"min"`             // smallest request, metrics; default 1
	Alpha float64 `json:"alpha,omitempty"` // Pareto tail index; 0 means fixed at Min
	Max   int     `json:"max,omitempty"`   // clamp; default 64
}

// Harmonic is one sinusoidal term of a cohort's diurnal pattern: the
// rate is modulated by 1 + Amplitude·sin(2π(t/Period + Phase)), and
// multiple harmonics (a daily cycle plus an hourly ripple) superpose.
type Harmonic struct {
	Period    simtime.Duration `json:"period"`
	Amplitude float64          `json:"amplitude"`
	Phase     float64          `json:"phase,omitempty"` // fraction of a period
}

// Window is one step of a cohort's piecewise-constant rate curve: from
// Start onward the base rate is scaled by Mult, until the next window.
type Window struct {
	Start simtime.Duration `json:"start"`
	Mult  float64          `json:"mult"`
}

// CohortSpec describes one client population: how many concurrent
// clients it holds, the aggregate arrival rate they produce, what they
// ask for, and how their rate moves over the run.
type CohortSpec struct {
	Name    string     `json:"name"`
	Clients int        `json:"clients"`
	Rate    float64    `json:"rate"` // aggregate requests/second at multiplier 1
	Mix     Mix        `json:"mix"`
	Size    SizeSpec   `json:"size"`
	Diurnal []Harmonic `json:"diurnal,omitempty"`
	Windows []Window   `json:"windows,omitempty"`
}

// envelope returns the cohort's peak rate multiplier: the largest value
// windowMult(t)·diurnal(t) can reach. The thinning sampler draws
// candidate arrivals at Rate×envelope and accepts with the true ratio.
func (c *CohortSpec) envelope() float64 {
	wmax := 1.0
	for _, w := range c.Windows {
		if w.Mult > wmax {
			wmax = w.Mult
		}
	}
	amp := 1.0
	for _, h := range c.Diurnal {
		amp += math.Abs(h.Amplitude)
	}
	return wmax * amp
}

// modulation returns the rate multiplier at virtual time t (≥ 0, ≤
// envelope): the active window's Mult times the diurnal superposition,
// clamped at zero so deep troughs mean silence, not negative rates.
func (c *CohortSpec) modulation(t simtime.Time) float64 {
	m := 1.0
	for _, w := range c.Windows {
		if simtime.Duration(t) >= w.Start {
			m = w.Mult
		} else {
			break
		}
	}
	d := 1.0
	for _, h := range c.Diurnal {
		d += h.Amplitude * math.Sin(2*math.Pi*(float64(t)/float64(h.Period)+h.Phase))
	}
	if d < 0 {
		d = 0
	}
	return m * d
}

// ServerSpec is the deterministic service model the virtual-time engine
// runs requests through: Servers parallel service slots, a mean service
// time of Base for a request of SizeRef metrics (service time scales
// linearly with request size), with bounded uniform jitter. Capacity is
// therefore Servers/Base·(SizeRef/meanSize) requests per second — finite,
// so offered load beyond it produces the knee the capacity analyzer
// looks for.
type ServerSpec struct {
	Servers int              `json:"servers"`
	Base    simtime.Duration `json:"base"`
	Jitter  float64          `json:"jitter,omitempty"`
	SizeRef float64          `json:"sizeref,omitempty"`
}

// Spec is one declarative workload: a named, seeded set of cohorts over
// a service model, bounded by a virtual-time horizon.
type Spec struct {
	Name     string           `json:"name"`
	Seed     uint64           `json:"seed"`
	Duration simtime.Duration `json:"duration"`
	Server   ServerSpec       `json:"server"`
	Cohorts  []CohortSpec     `json:"cohorts"`
}

func specErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
}

// Validate applies defaults and rejects inconsistent specs with errors
// wrapping ErrSpec. It is idempotent; parsers call it, and callers that
// build Specs in code should too.
func (s *Spec) Validate() error {
	if s.Name == "" {
		s.Name = "workload"
	}
	if s.Duration <= 0 {
		s.Duration = simtime.Duration(60) * simtime.Second
	}
	if s.Server.Servers == 0 {
		s.Server.Servers = 8
	}
	if s.Server.Servers < 0 {
		return specErr("server.servers %d is negative", s.Server.Servers)
	}
	if s.Server.Base == 0 {
		s.Server.Base = 500 * simtime.Microsecond
	}
	if s.Server.Base < 0 {
		return specErr("server.base %v is negative", s.Server.Base)
	}
	if s.Server.Jitter < 0 || s.Server.Jitter >= 1 {
		return specErr("server.jitter %g outside [0, 1)", s.Server.Jitter)
	}
	if s.Server.SizeRef == 0 {
		s.Server.SizeRef = 8
	}
	if s.Server.SizeRef < 0 {
		return specErr("server.sizeref %g is negative", s.Server.SizeRef)
	}
	if len(s.Cohorts) == 0 {
		return specErr("no cohorts")
	}
	names := make(map[string]int, len(s.Cohorts))
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			return specErr("cohort %d has no name", i)
		}
		if prev, dup := names[c.Name]; dup {
			return specErr("cohorts %d and %d share the name %q", prev, i, c.Name)
		}
		names[c.Name] = i
		if c.Clients <= 0 {
			return specErr("cohort %q: clients %d must be positive", c.Name, c.Clients)
		}
		if c.Rate <= 0 {
			return specErr("cohort %q: rate %g must be positive", c.Name, c.Rate)
		}
		if c.Mix.Live < 0 || c.Mix.Proxied < 0 || c.Mix.Archive < 0 || c.Mix.Derived < 0 {
			return specErr("cohort %q: negative mix weight", c.Name)
		}
		if c.Mix.total() == 0 {
			c.Mix.Live = 1
		}
		if c.Size.Min == 0 {
			c.Size.Min = 1
		}
		if c.Size.Min < 0 {
			return specErr("cohort %q: size.min %d is negative", c.Name, c.Size.Min)
		}
		if c.Size.Max == 0 {
			c.Size.Max = 64
		}
		if c.Size.Max < c.Size.Min {
			return specErr("cohort %q: size.max %d below size.min %d", c.Name, c.Size.Max, c.Size.Min)
		}
		if c.Size.Alpha < 0 {
			return specErr("cohort %q: size.alpha %g is negative", c.Name, c.Size.Alpha)
		}
		for j, h := range c.Diurnal {
			if h.Period <= 0 {
				return specErr("cohort %q: diurnal[%d] period %v must be positive", c.Name, j, h.Period)
			}
		}
		for j, w := range c.Windows {
			if w.Start < 0 {
				return specErr("cohort %q: windows[%d] start %v is negative", c.Name, j, w.Start)
			}
			if w.Mult < 0 {
				return specErr("cohort %q: windows[%d] mult %g is negative", c.Name, j, w.Mult)
			}
			if j > 0 && w.Start <= c.Windows[j-1].Start {
				return specErr("cohort %q: windows[%d] start %v not after windows[%d]", c.Name, j, w.Start, j-1)
			}
		}
	}
	return nil
}

// TotalClients sums the cohort populations.
func (s *Spec) TotalClients() int {
	n := 0
	for i := range s.Cohorts {
		n += s.Cohorts[i].Clients
	}
	return n
}

// String renders the validated spec in a canonical normalized form —
// every default made explicit — which the golden spec-parse test diffs.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s seed=%d duration=%v\n", s.Name, s.Seed, s.Duration)
	fmt.Fprintf(&b, "  server servers=%d base=%v jitter=%g sizeref=%g\n",
		s.Server.Servers, s.Server.Base, s.Server.Jitter, s.Server.SizeRef)
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		fmt.Fprintf(&b, "  cohort %s clients=%d rate=%g envelope=%.4g\n", c.Name, c.Clients, c.Rate, c.envelope())
		fmt.Fprintf(&b, "    mix live=%g proxied=%g archive=%g derived=%g\n",
			c.Mix.Live, c.Mix.Proxied, c.Mix.Archive, c.Mix.Derived)
		fmt.Fprintf(&b, "    size min=%d alpha=%g max=%d\n", c.Size.Min, c.Size.Alpha, c.Size.Max)
		for _, h := range c.Diurnal {
			fmt.Fprintf(&b, "    diurnal period=%v amplitude=%g phase=%g\n", h.Period, h.Amplitude, h.Phase)
		}
		for _, w := range c.Windows {
			fmt.Fprintf(&b, "    window start=%v mult=%g\n", w.Start, w.Mult)
		}
	}
	return b.String()
}
