// Package expect encodes the paper's closed-form expected-traffic
// formulas — the dashed lines of Figs. 2–9 — and the regime boundaries of
// Equations 3, 4 and 7. All results are in bytes of 64-byte-granular
// memory traffic.
package expect

import (
	"math"

	"papimc/internal/units"
)

// Traffic is an expected (read, write) byte pair.
type Traffic struct {
	ReadBytes  int64
	WriteBytes int64
}

// Scale multiplies both directions (e.g. per-thread → batched).
func (t Traffic) Scale(k int64) Traffic {
	return Traffic{ReadBytes: t.ReadBytes * k, WriteBytes: t.WriteBytes * k}
}

const elem = units.DoubleBytes // 8-byte doubles for the BLAS kernels

// GEMM returns the expected traffic of one reference N×N GEMM when the
// matrices are cacheable (Section II-B): 3·N² elements read (A once, B
// once, and a read-for-ownership per element of C) and N² written.
func GEMM(n int64) Traffic {
	return Traffic{
		ReadBytes:  3 * n * n * elem,
		WriteBytes: n * n * elem,
	}
}

// SquareGEMV returns the expected traffic of an unmodified M=N GEMV
// (Section III: M² + 2·M elements read — the matrix, the x vector, and
// the hardware's read per write of y — and M elements written).
func SquareGEMV(m int64) Traffic {
	return Traffic{
		ReadBytes:  (m*m + 2*m) * elem,
		WriteBytes: m * elem,
	}
}

// CappedGEMV returns the expected traffic of the capped GEMV (Equation
// 1): M×N + M + N elements read and M written.
func CappedGEMV(m, n int64) Traffic {
	return Traffic{
		ReadBytes:  (m*n + m + n) * elem,
		WriteBytes: m * elem,
	}
}

// complexElem is the size of the 3D-FFT's double-complex elements.
const complexElem = units.ComplexBytes

// RankElems returns the number of elements a single MPI rank holds in
// the r×c-decomposed N³ FFT: (N/r)·(N/c)·N.
func RankElems(n, r, c int64) int64 {
	return (n / r) * (n / c) * n
}

// S1CFLoopNest1 returns per-rank expected traffic of the first S1CF loop
// nest (Listing 5). Without software prefetch the sequential stores to
// tmp bypass the cache: one read (in), one write (tmp). With prefetch
// the target is read first: two reads, one write (Fig. 6).
func S1CFLoopNest1(n, r, c int64, prefetch bool) Traffic {
	bytes := RankElems(n, r, c) * complexElem
	t := Traffic{ReadBytes: bytes, WriteBytes: bytes}
	if prefetch {
		t.ReadBytes *= 2
	}
	return t
}

// S1CFLoopNest2 returns per-rank expected traffic of the second S1CF
// loop nest (Listing 7) in its cache-friendly regime: tmp is read once
// and each write to out incurs a read (strided stream present), so two
// reads and one write per element. Past the Equation 7 boundary the
// strided tmp reads amplify to a full cache line per element — up to
// five reads per write (Fig. 7a); see Equation7Bound and the model
// package for the amplified regime.
func S1CFLoopNest2(n, r, c int64) Traffic {
	bytes := RankElems(n, r, c) * complexElem
	return Traffic{ReadBytes: 2 * bytes, WriteBytes: bytes}
}

// S1CFCombined returns per-rank expected traffic of the fused S1CF nest
// (Listing 8): one read for in, one read for out (strided store stream —
// read per write), one write (Fig. 8).
func S1CFCombined(n, r, c int64) Traffic {
	bytes := RankElems(n, r, c) * complexElem
	return Traffic{ReadBytes: 2 * bytes, WriteBytes: bytes}
}

// S2CF returns per-rank expected traffic of S2CF (Listing 9): the
// traversal's innermost dimension matches the layout's, so the stores
// bypass: one read, one write (Fig. 9a). With prefetch: two reads.
func S2CF(n, r, c int64, prefetch bool) Traffic {
	bytes := RankElems(n, r, c) * complexElem
	t := Traffic{ReadBytes: bytes, WriteBytes: bytes}
	if prefetch {
		t.ReadBytes *= 2
	}
	return t
}

// Equation3Bound returns the GEMM problem size below which all three
// matrices fit in the given cache: 8·3·N² = cacheBytes (≈467 for 5 MiB).
func Equation3Bound(cacheBytes int64) int64 {
	return int64(math.Sqrt(float64(cacheBytes) / (3 * float64(elem))))
}

// Equation4Bound returns the GEMM problem size below which one matrix
// fits in the given cache: 8·N² = cacheBytes (≈809 for 5 MiB).
func Equation4Bound(cacheBytes int64) int64 {
	return int64(math.Sqrt(float64(cacheBytes) / float64(elem)))
}

// Equation7Bound returns the FFT problem size at which the S1CF loop
// nest 2 reuse footprint 5·16·N²/(r·c) exceeds the cache
// (≈724 for 5 MiB and an 8-process grid).
func Equation7Bound(cacheBytes, r, c int64) int64 {
	return int64(math.Sqrt(float64(cacheBytes) * float64(r*c) / (5 * float64(complexElem))))
}
