package fft

import (
	"math"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/cache"
	"papimc/internal/expect"
	"papimc/internal/loopnest"
	"papimc/internal/trace"
)

type countingMem struct{ readBytes, writeBytes int64 }

func (m *countingMem) MemRead(addr, bytes int64)  { m.readBytes += bytes }
func (m *countingMem) MemWrite(addr, bytes int64) { m.writeBytes += bytes }

// simulate runs a re-sort nest on core 0 of a fully occupied Summit
// socket and returns its memory traffic.
func simulate(nest *loopnest.Nest) (reads, writes int64) {
	mem := &countingMem{}
	soc := arch.Summit().Socket
	active := make([]int, soc.Cores)
	for i := range active {
		active[i] = i
	}
	h := cache.New(cache.Config{Socket: soc, ActiveCores: active}, mem)
	nest.Execute(0, h)
	h.Drain()
	return mem.readBytes, mem.writeBytes
}

func relErr(got, want int64) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

// The test grid: the paper's 2×4 decomposition at simulator-friendly N.
var testGrid = Grid{N: 128, R: 2, C: 4}

// Fig. 6a: the sequential copy of loop nest 1 shows ONE read and one
// write per element — the stores bypass the cache.
func TestLN1TrafficNoPrefetch(t *testing.T) {
	nest := testGrid.S1CFLoopNest1Nest(trace.NewAddressSpace(), false)
	reads, writes := simulate(nest)
	want := expect.S1CFLoopNest1(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C), false)
	if e := relErr(reads, want.ReadBytes); e > 0.02 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.02 {
		t.Errorf("writes = %d, want %d (rel err %.3f)", writes, want.WriteBytes, e)
	}
}

// Fig. 6b: with -fprefetch-loop-arrays the dcbtst forces tmp into the
// cache: TWO reads and one write per element.
func TestLN1TrafficWithPrefetch(t *testing.T) {
	nest := testGrid.S1CFLoopNest1Nest(trace.NewAddressSpace(), true)
	reads, writes := simulate(nest)
	want := expect.S1CFLoopNest1(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C), true)
	if e := relErr(reads, want.ReadBytes); e > 0.02 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.02 {
		t.Errorf("writes = %d, want %d", writes, want.WriteBytes)
	}
}

// Fig. 7a, cache-friendly region: the strided tmp reads cost one
// transaction per element (blocks are reused before eviction) and out's
// writes each incur a read — two reads, one write.
func TestLN2TrafficCacheFriendly(t *testing.T) {
	nest := testGrid.S1CFLoopNest2Nest(trace.NewAddressSpace(), false)
	reads, writes := simulate(nest)
	want := expect.S1CFLoopNest2(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C))
	if e := relErr(reads, want.ReadBytes); e > 0.05 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.05 {
		t.Errorf("writes = %d, want %d", writes, want.WriteBytes)
	}
}

// Fig. 7a, past the Eq. 7 boundary: reads amplify toward five per
// write. Exceeding the boundary at simulator-feasible sizes requires a
// small cache, so this test shrinks the L3 slice instead of growing N:
// the Eq. 7 working set for N=128, 2×4 is 5·16·128²/8 = 160 KiB, so a
// socket with 64 KiB slices is far past the boundary.
func TestLN2TrafficAmplifiedRegime(t *testing.T) {
	soc := arch.Summit().Socket
	soc.L3SlicePerPair = 64 << 10
	soc.L2.SizeBytes = 16 << 10
	soc.L1D.SizeBytes = 4 << 10
	mem := &countingMem{}
	active := make([]int, soc.Cores)
	for i := range active {
		active[i] = i
	}
	h := cache.New(cache.Config{Socket: soc, ActiveCores: active}, mem)
	nest := testGrid.S1CFLoopNest2Nest(trace.NewAddressSpace(), false)
	nest.Execute(0, h)
	h.Drain()
	bytes := expect.RankElems(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C)) * 16
	// Expect close to 5 reads per write: 4× amplified tmp + out RFO.
	ratio := float64(mem.readBytes) / float64(bytes)
	if ratio < 4.2 || ratio > 5.2 {
		t.Errorf("amplified read ratio = %.2f, want ~5", ratio)
	}
	if e := relErr(mem.writeBytes, bytes); e > 0.05 {
		t.Errorf("writes = %d, want %d", mem.writeBytes, bytes)
	}
}

// Fig. 8: the combined nest reads in once and out once (write-allocate
// on the huge-stride store stream): two reads, one write.
func TestCombinedTraffic(t *testing.T) {
	nest := testGrid.S1CFCombinedNest(trace.NewAddressSpace(), false)
	reads, writes := simulate(nest)
	want := expect.S1CFCombined(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C))
	if e := relErr(reads, want.ReadBytes); e > 0.05 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.05 {
		t.Errorf("writes = %d, want %d", writes, want.WriteBytes)
	}
}

// Fig. 9a: S2CF's traversal matches the layout's innermost dimension,
// so the stores bypass: one read, one write.
func TestS2CFTraffic(t *testing.T) {
	nest := testGrid.S2CFNest(trace.NewAddressSpace(), false)
	reads, writes := simulate(nest)
	want := expect.S2CF(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C), false)
	if e := relErr(reads, want.ReadBytes); e > 0.05 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.05 {
		t.Errorf("writes = %d, want %d", writes, want.WriteBytes)
	}
}

// Fig. 9b: prefetch adds the out read.
func TestS2CFTrafficWithPrefetch(t *testing.T) {
	nest := testGrid.S2CFNest(trace.NewAddressSpace(), true)
	reads, _ := simulate(nest)
	want := expect.S2CF(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C), true)
	if e := relErr(reads, want.ReadBytes); e > 0.05 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
}

// The planewise variants behave like their colwise counterparts, with
// one honest nuance the simulator surfaces: S1PF's chunk stores stride
// by ROWS elements (512 B at this grid), so they write-allocate — 2
// reads per write, like the fused S1CF nest rather than its bypassing
// first nest. S2PF copies contiguous runs like S2CF and matches it to
// within the stream-retrain cost at run boundaries. This is consistent
// with the paper treating the planewise results as redundant.
func TestPlanewiseVariantsMatchColwise(t *testing.T) {
	reads, writes := simulate(testGrid.S1PFNest(trace.NewAddressSpace(), false))
	bytes := expect.RankElems(int64(testGrid.N), int64(testGrid.R), int64(testGrid.C)) * 16
	if e := relErr(reads, 2*bytes); e > 0.05 {
		t.Errorf("S1PF reads = %d, want ~%d (strided stores write-allocate)", reads, 2*bytes)
	}
	if e := relErr(writes, bytes); e > 0.05 {
		t.Errorf("S1PF writes = %d, want ~%d", writes, bytes)
	}

	r2, w2 := simulate(testGrid.S2PFNest(trace.NewAddressSpace(), false))
	rc, wc := simulate(testGrid.S2CFNest(trace.NewAddressSpace(), false))
	if e := relErr(r2, rc); e > 0.08 {
		t.Errorf("S2PF reads %d vs S2CF %d", r2, rc)
	}
	if e := relErr(w2, wc); e > 0.08 {
		t.Errorf("S2PF writes %d vs S2CF %d", w2, wc)
	}
}

// All six nests must validate structurally at several grids.
func TestNestsValidate(t *testing.T) {
	for _, g := range []Grid{{N: 64, R: 2, C: 4}, {N: 48, R: 4, C: 4}, {N: 32, R: 1, C: 1}} {
		as := trace.NewAddressSpace()
		for _, nest := range []*loopnest.Nest{
			g.S1CFLoopNest1Nest(as, false),
			g.S1CFLoopNest2Nest(as, false),
			g.S1CFCombinedNest(as, false),
			g.S2CFNest(as, false),
			g.S1PFNest(as, false),
			g.S2PFNest(as, false),
		} {
			if err := nest.Validate(); err != nil {
				t.Errorf("grid %+v %s: %v", g, nest.Name, err)
			}
		}
	}
}
