package units

import (
	"testing"
	"testing/quick"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{1, "1 B"},
		{1023, "1023 B"},
		{1024, "1.00 KiB"},
		{5 * MiB, "5.00 MiB"},
		{3 * GiB, "3.00 GiB"},
		{1536, "1.50 KiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B/s"},
		{999, "999 B/s"},
		{1e3, "1.00 kB/s"},
		{2.5e6, "2.50 MB/s"},
		{120e9, "120.00 GB/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRoundUpTx(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0},
		{-5, 0},
		{1, 64},
		{64, 64},
		{65, 128},
		{128, 128},
	}
	for _, c := range cases {
		if got := RoundUpTx(c.in); got != c.want {
			t.Errorf("RoundUpTx(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestTxCount(t *testing.T) {
	if got := TxCount(129); got != 3 {
		t.Errorf("TxCount(129) = %d, want 3", got)
	}
	if got := TxCount(0); got != 0 {
		t.Errorf("TxCount(0) = %d, want 0", got)
	}
}

func TestLinesCovering(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {128, 1}, {129, 2}, {256, 2},
	}
	for _, c := range cases {
		if got := LinesCovering(c.in); got != c.want {
			t.Errorf("LinesCovering(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: RoundUpTx is idempotent, monotone and a multiple of MemTxBytes.
func TestRoundUpTxProperties(t *testing.T) {
	f := func(n int64) bool {
		r := RoundUpTx(n)
		return r%MemTxBytes == 0 && RoundUpTx(r) == r && r >= 0 && (n <= 0 || r >= n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
