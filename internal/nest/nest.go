// Package nest models the IBM POWER9 "nest" performance monitoring unit:
// the off-core (uncore) counters that measure memory traffic on the MBA
// channels. Because main memory is shared among all processes, these
// counters are readable only with elevated privileges — the access-control
// property that motivates the paper's use of the Performance Co-Pilot.
//
// The package provides the event vocabulary of Table I in both spellings:
// the perf_uncore native names used on Tellico
// (power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0) and the PCP metric names
// exported on Summit
// (perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value).
package nest

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"papimc/internal/arch"
	"papimc/internal/mem"
	"papimc/internal/simtime"
)

// ErrPermission is returned when unprivileged code reads nest counters
// directly.
var ErrPermission = errors.New("nest: reading nest counters requires elevated privileges")

// ErrNoSuchEvent is returned for event names that do not parse or
// channels that do not exist.
var ErrNoSuchEvent = errors.New("nest: no such event")

// Event identifies one nest hardware counter.
type Event struct {
	Channel int  // MBA channel index
	Write   bool // false: READ_BYTES, true: WRITE_BYTES
}

// direction returns the READ/WRITE spelling fragment.
func (e Event) direction() string {
	if e.Write {
		return "WRITE"
	}
	return "READ"
}

// PMUName returns the perf_uncore PMU this event belongs to,
// e.g. "power9_nest_mba0".
func (e Event) PMUName() string { return fmt.Sprintf("power9_nest_mba%d", e.Channel) }

// PerfUncoreName renders the direct-access spelling of Table I, e.g.
// "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0".
func (e Event) PerfUncoreName(cpu int) string {
	return fmt.Sprintf("%s::PM_MBA%d_%s_BYTES:cpu=%d", e.PMUName(), e.Channel, e.direction(), cpu)
}

// PCPMetricName renders the PCP metric namespace spelling of Table I,
// e.g. "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value".
func (e Event) PCPMetricName() string {
	return fmt.Sprintf("perfevent.hwcounters.nest_mba%d_imc.PM_MBA%d_%s_BYTES.value",
		e.Channel, e.Channel, e.direction())
}

// ParsePerfUncoreName parses the Tellico spelling, returning the event
// and the cpu qualifier (or 0 if absent).
func ParsePerfUncoreName(s string) (Event, int, error) {
	rest, ok := strings.CutPrefix(s, "power9_nest_mba")
	if !ok {
		return Event{}, 0, fmt.Errorf("%w: %q lacks power9_nest_mba prefix", ErrNoSuchEvent, s)
	}
	sep := strings.Index(rest, "::")
	if sep < 0 {
		return Event{}, 0, fmt.Errorf("%w: %q lacks '::'", ErrNoSuchEvent, s)
	}
	ch, err := strconv.Atoi(rest[:sep])
	if err != nil {
		return Event{}, 0, fmt.Errorf("%w: bad channel in %q", ErrNoSuchEvent, s)
	}
	tail := rest[sep+2:]
	cpu := 0
	if name, qual, has := strings.Cut(tail, ":"); has {
		tail = name
		q, ok := strings.CutPrefix(qual, "cpu=")
		if !ok {
			return Event{}, 0, fmt.Errorf("%w: unknown qualifier %q", ErrNoSuchEvent, qual)
		}
		cpu, err = strconv.Atoi(q)
		if err != nil {
			return Event{}, 0, fmt.Errorf("%w: bad cpu qualifier in %q", ErrNoSuchEvent, s)
		}
	}
	ev, err := parseCounterName(tail, ch)
	if err != nil {
		return Event{}, 0, err
	}
	return ev, cpu, nil
}

// ParsePCPMetricName parses the Summit PCP spelling.
func ParsePCPMetricName(s string) (Event, error) {
	rest, ok := strings.CutPrefix(s, "perfevent.hwcounters.nest_mba")
	if !ok {
		return Event{}, fmt.Errorf("%w: %q lacks perfevent nest prefix", ErrNoSuchEvent, s)
	}
	sep := strings.Index(rest, "_imc.")
	if sep < 0 {
		return Event{}, fmt.Errorf("%w: %q lacks _imc segment", ErrNoSuchEvent, s)
	}
	ch, err := strconv.Atoi(rest[:sep])
	if err != nil {
		return Event{}, fmt.Errorf("%w: bad channel in %q", ErrNoSuchEvent, s)
	}
	tail, ok := strings.CutSuffix(rest[sep+5:], ".value")
	if !ok {
		return Event{}, fmt.Errorf("%w: %q lacks .value suffix", ErrNoSuchEvent, s)
	}
	return parseCounterName(tail, ch)
}

// parseCounterName parses "PM_MBA<ch>_{READ,WRITE}_BYTES".
func parseCounterName(s string, ch int) (Event, error) {
	switch s {
	case fmt.Sprintf("PM_MBA%d_READ_BYTES", ch):
		return Event{Channel: ch, Write: false}, nil
	case fmt.Sprintf("PM_MBA%d_WRITE_BYTES", ch):
		return Event{Channel: ch, Write: true}, nil
	default:
		return Event{}, fmt.Errorf("%w: counter %q does not match channel %d", ErrNoSuchEvent, s, ch)
	}
}

// Credential is an access token for counter reads.
type Credential struct {
	privileged bool
}

// RootCredential returns a privileged credential (the PMCD daemon, or a
// user on a machine granting elevated access).
func RootCredential() Credential { return Credential{privileged: true} }

// UserCredential returns an ordinary, unprivileged credential.
func UserCredential() Credential { return Credential{} }

// CredentialFor returns the credential an ordinary user holds on machine
// m: privileged only where the site grants it (Tellico).
func CredentialFor(m arch.Machine) Credential {
	return Credential{privileged: m.PrivilegedNestAccess}
}

// Privileged reports whether the credential allows direct nest reads.
func (c Credential) Privileged() bool { return c.privileged }

// PMU exposes the nest counters of one socket.
type PMU struct {
	machine arch.Machine
	socket  int
	ctl     *mem.Controller

	mu           sync.Mutex
	overheadDone bool
	overheadAt   simtime.Time
	scratch      []mem.ChannelCounts // counter snapshot buffer, under mu
}

// NewPMU wraps the given socket's memory controller. It panics if the
// controller's channel count disagrees with the machine description.
func NewPMU(m arch.Machine, socket int, ctl *mem.Controller) *PMU {
	if ctl.Channels() != m.Socket.MBAChannels {
		panic(fmt.Sprintf("nest: controller has %d channels, machine %s has %d",
			ctl.Channels(), m.Name, m.Socket.MBAChannels))
	}
	return &PMU{machine: m, socket: socket, ctl: ctl}
}

// Machine returns the machine description this PMU belongs to.
func (p *PMU) Machine() arch.Machine { return p.machine }

// Socket returns the socket index this PMU monitors.
func (p *PMU) Socket() int { return p.socket }

// Events lists every counter this PMU exposes: READ and WRITE bytes for
// each MBA channel.
func (p *PMU) Events() []Event {
	out := make([]Event, 0, 2*p.machine.Socket.MBAChannels)
	for ch := 0; ch < p.machine.Socket.MBAChannels; ch++ {
		out = append(out, Event{Channel: ch, Write: false}, Event{Channel: ch, Write: true})
	}
	return out
}

// ReadAll reads the given events at simulated time t. Unprivileged
// credentials are rejected with ErrPermission. One measurement-overhead
// injection covers the whole batch (one syscall round trip reads all
// programmed counters).
func (p *PMU) ReadAll(events []Event, cred Credential, t simtime.Time) ([]uint64, error) {
	return p.ReadAllInto(events, cred, t, nil)
}

// ReadAllInto is ReadAll into a reusable buffer, growing it if needed;
// with a buffer of sufficient capacity it does not allocate.
func (p *PMU) ReadAllInto(events []Event, cred Credential, t simtime.Time, dst []uint64) ([]uint64, error) {
	if !cred.privileged {
		return nil, ErrPermission
	}
	for _, ev := range events {
		if ev.Channel < 0 || ev.Channel >= p.machine.Socket.MBAChannels {
			return nil, fmt.Errorf("%w: channel %d", ErrNoSuchEvent, ev.Channel)
		}
	}
	// One collection pass costs one measurement-overhead injection, no
	// matter how many counters it reads: PMCD (or perf_event) gathers
	// the whole group in a single sweep. Multiple reads at the same
	// simulated instant are part of the same sweep.
	p.mu.Lock()
	if !p.overheadDone || p.overheadAt != t {
		p.ctl.InjectMeasurementOverhead(t)
		p.overheadDone = true
		p.overheadAt = t
	}
	p.scratch = p.ctl.ReadInto(t, p.scratch)
	counts := p.scratch
	out := dst
	if cap(out) < len(events) {
		out = make([]uint64, len(events))
	}
	out = out[:len(events)]
	for i, ev := range events {
		if ev.Write {
			out[i] = counts[ev.Channel].WriteBytes
		} else {
			out[i] = counts[ev.Channel].ReadBytes
		}
	}
	p.mu.Unlock()
	return out, nil
}

// Read reads a single event at time t.
func (p *PMU) Read(ev Event, cred Credential, t simtime.Time) (uint64, error) {
	vs, err := p.ReadAll([]Event{ev}, cred, t)
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}
