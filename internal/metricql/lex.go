// Package metricql implements the derived-metrics expression engine: a
// small query language over PCP metric sources, the analogue of PCP's
// derived metrics and the expression core of pmie/pmrep. Expressions
// name metrics (with glob expansion over the source's namespace and an
// alias table), combine them with arithmetic, and apply functions with
// counter semantics — rate() and delta() from consecutive fetches with
// monotonic-wrap correction, sum/avg/min/max vector aggregation, and
// windowed avg_over/max_over for range evaluation over live streams or
// archive replays.
//
// The same Engine evaluates against any metric source — a live
// pcp.Client, a pmproxy connection, an archive.Recorder tee, or an
// archive.Replay — so a consumer asks for
//
//	sum(rate(nest.mba*.read_bytes))
//
// once, instead of fetching 16 raw counters and doing the math itself.
package metricql

import (
	"fmt"
	"strconv"
	"strings"
)

// Limits on accepted expressions; both exist so hostile input (the
// parser is fuzzed) cannot force pathological work.
const (
	maxExprBytes = 1 << 16
	maxDepth     = 200
)

// SyntaxError describes a parse failure with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("metricql: %s (at offset %d)", e.Msg, e.Pos)
}

func errAt(pos int, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokDuration
	tokName // metric name/pattern or function name
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return "number"
	case tokDuration:
		return "duration"
	case tokName:
		return "name"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string
	pos  int
	num  float64 // tokNumber
	dur  int64   // tokDuration, nanoseconds
}

// isNameChar reports whether c may appear inside a metric name or glob
// pattern. '-' is excluded (it is the subtraction operator); ranges like
// [0-7] are handled by the bracket scan in scanName. ':' is the
// federated node-label separator (node003:mem.read_bw).
func isNameChar(c byte) bool {
	return c == '.' || c == '_' || c == '*' || c == '?' || c == ':' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func isNameStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

type lexer struct {
	src string
	i   int
}

func (l *lexer) next() (token, error) {
	for l.i < len(l.src) {
		switch l.src[l.i] {
		case ' ', '\t', '\n', '\r':
			l.i++
			continue
		}
		break
	}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	pos := l.i
	c := l.src[l.i]
	switch {
	case c == '(':
		l.i++
		return token{kind: tokLParen, text: "(", pos: pos}, nil
	case c == ')':
		l.i++
		return token{kind: tokRParen, text: ")", pos: pos}, nil
	case c == ',':
		l.i++
		return token{kind: tokComma, text: ",", pos: pos}, nil
	case c == '+':
		l.i++
		return token{kind: tokPlus, text: "+", pos: pos}, nil
	case c == '-':
		l.i++
		return token{kind: tokMinus, text: "-", pos: pos}, nil
	case c == '/':
		l.i++
		return token{kind: tokSlash, text: "/", pos: pos}, nil
	case c == '*':
		// A '*' that scanName reached inside a name is always a glob
		// (nest.mba*.read_bytes), so this branch only sees '*' at token
		// start. There it multiplies when the previous character is an
		// operand ("2*3", "(a)*b") or when no name follows ("a * b"),
		// and begins a leading-glob pattern otherwise ("sum(*bytes)").
		// Multiplying two metrics therefore needs spaces: "a * b".
		prevOperand := pos > 0 && (isNameChar(l.src[pos-1]) || l.src[pos-1] == ')' || l.src[pos-1] == ']')
		nextName := pos+1 < len(l.src) && (isNameChar(l.src[pos+1]) || l.src[pos+1] == '[')
		if !prevOperand && nextName {
			return l.scanName(pos)
		}
		l.i++
		return token{kind: tokStar, text: "*", pos: pos}, nil
	case isDigit(c):
		return l.scanNumber(pos)
	case isNameStart(c) || c == '[':
		return l.scanName(pos)
	}
	return token{}, errAt(pos, "unexpected character %q", rune(c))
}

// scanName consumes a metric name, glob pattern, or function name.
// Bracketed character classes ([0-7]) are consumed wholesale so '-' can
// appear inside them.
func (l *lexer) scanName(start int) (token, error) {
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == '[' {
			end := strings.IndexByte(l.src[l.i:], ']')
			if end < 0 {
				return token{}, errAt(l.i, "unterminated '[' in pattern")
			}
			l.i += end + 1
			continue
		}
		if !isNameChar(c) {
			break
		}
		l.i++
	}
	return token{kind: tokName, text: l.src[start:l.i], pos: start}, nil
}

// durationUnits maps a unit suffix to its length in nanoseconds.
var durationUnits = map[string]float64{
	"ns": 1,
	"us": 1e3,
	"ms": 1e6,
	"s":  1e9,
}

// scanNumber consumes a numeric literal (with optional fraction and
// exponent). A unit suffix adjacent to the number (100ms, 1.5s) makes it
// a duration literal.
func (l *lexer) scanNumber(start int) (token, error) {
	for l.i < len(l.src) && isDigit(l.src[l.i]) {
		l.i++
	}
	if l.i < len(l.src) && l.src[l.i] == '.' {
		l.i++
		for l.i < len(l.src) && isDigit(l.src[l.i]) {
			l.i++
		}
	}
	if l.i < len(l.src) && (l.src[l.i] == 'e' || l.src[l.i] == 'E') {
		j := l.i + 1
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		if j < len(l.src) && isDigit(l.src[j]) {
			l.i = j
			for l.i < len(l.src) && isDigit(l.src[l.i]) {
				l.i++
			}
		}
	}
	text := l.src[start:l.i]
	num, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, errAt(start, "bad number %q", text)
	}
	// Adjacent letters form a duration unit (or are an error: metric
	// names cannot start with a digit).
	us := l.i
	for l.i < len(l.src) && isNameStart(l.src[l.i]) {
		l.i++
	}
	if unit := l.src[us:l.i]; unit != "" {
		scale, ok := durationUnits[unit]
		if !ok {
			return token{}, errAt(us, "bad duration unit %q", unit)
		}
		return token{kind: tokDuration, text: l.src[start:l.i], pos: start, dur: int64(num * scale)}, nil
	}
	return token{kind: tokNumber, text: text, pos: start, num: num}, nil
}
