package cache

import (
	"testing"
	"testing/quick"
)

func TestLevelLRUEvictionOrder(t *testing.T) {
	// 2 sets × 2 ways of 64-byte blocks.
	l := newLevel("t", 4*BlockBytes, 2)
	// Blocks 0 and 2 map to set 0; 1 and 3 to set 1.
	if ev := l.insert(0, false); ev.valid {
		t.Fatalf("insert into empty set evicted %+v", ev)
	}
	if ev := l.insert(2, false); ev.valid {
		t.Fatalf("second way evicted %+v", ev)
	}
	// Touch block 0 so block 2 becomes LRU.
	if w := l.lookup(0); w == nil {
		t.Fatal("block 0 missing")
	}
	ev := l.insert(4, false) // maps to set 0, must evict block 2
	if !ev.valid || ev.block != 2 {
		t.Errorf("evicted %+v, want block 2 (LRU)", ev)
	}
	if l.lookup(0) == nil {
		t.Error("MRU block 0 was evicted")
	}
}

func TestLevelDirtyPropagation(t *testing.T) {
	l := newLevel("t", 4*BlockBytes, 2)
	l.insert(0, false)
	// Re-inserting dirty marks the line dirty without eviction.
	if ev := l.insert(0, true); ev.valid {
		t.Fatalf("re-insert evicted %+v", ev)
	}
	l.insert(2, false)
	l.lookup(2) // make 0 the LRU
	if ev := l.insert(4, false); !ev.valid || ev.block != 0 || !ev.dirty {
		t.Errorf("evicted %+v, want dirty block 0", ev)
	}
}

func TestLevelInvalidate(t *testing.T) {
	l := newLevel("t", 4*BlockBytes, 2)
	l.insert(7, true)
	present, dirty := l.invalidate(7)
	if !present || !dirty {
		t.Errorf("invalidate = %v/%v, want true/true", present, dirty)
	}
	if p, _ := l.invalidate(7); p {
		t.Error("double invalidate found the block")
	}
	if l.lookup(7) != nil {
		t.Error("invalidated block still present")
	}
}

func TestLevelDrain(t *testing.T) {
	l := newLevel("t", 8*BlockBytes, 2)
	l.insert(0, true)
	l.insert(1, false)
	l.insert(2, true)
	var dirty []int64
	l.drain(func(b int64) { dirty = append(dirty, b) })
	if len(dirty) != 2 {
		t.Errorf("drained dirty blocks %v, want 2 of them", dirty)
	}
	if l.countValid() != 0 {
		t.Errorf("%d blocks valid after drain", l.countValid())
	}
}

func TestLevelNonPow2Sets(t *testing.T) {
	// 3 sets: falls back to modulo indexing.
	l := newLevel("t", 3*2*BlockBytes, 2)
	if l.pow2 {
		t.Fatal("3 sets misdetected as a power of two")
	}
	for b := int64(0); b < 12; b++ {
		l.insert(b, false)
	}
	if l.countValid() != 6 {
		t.Errorf("valid = %d, want capacity 6", l.countValid())
	}
}

// Property: a level never holds more lines than its capacity, and a
// lookup after insert always hits until the block is evicted.
func TestLevelCapacityProperty(t *testing.T) {
	f := func(blocks []uint16) bool {
		l := newLevel("t", 16*BlockBytes, 4) // capacity 16
		for _, raw := range blocks {
			b := int64(raw % 256)
			l.insert(b, raw%2 == 0)
			if l.lookup(b) == nil {
				return false // just-inserted block must be present
			}
			if l.countValid() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: eviction conserves lines — insertions minus evictions
// equals the resident count.
func TestLevelConservationProperty(t *testing.T) {
	f := func(blocks []uint16) bool {
		l := newLevel("t", 8*BlockBytes, 2)
		inserted, evicted := 0, 0
		seen := map[int64]bool{}
		for _, raw := range blocks {
			b := int64(raw % 64)
			wasPresent := l.lookup(b) != nil
			ev := l.insert(b, false)
			if !wasPresent {
				inserted++
			}
			if ev.valid {
				evicted++
			}
			seen[b] = true
		}
		return l.countValid() == inserted-evicted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
