package archive

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"papimc/internal/pcp"
)

// fuzzArchiveBytes serializes a small valid archive (current format
// version) to seed the corpus.
func fuzzArchiveBytes(tb testing.TB, rows int) []byte {
	tb.Helper()
	a, err := New([]pcp.NameEntry{
		{PMID: 1, Name: "fuzz.metric.a"},
		{PMID: 2, Name: "fuzz.metric.b"},
		{PMID: 7, Name: "fuzz.metric.c"},
	}, Options{BlockSamples: 4, Rollups: []int64{40, 200}})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		row := Sample{
			Timestamp: int64(i) * 10,
			Values:    []uint64{uint64(i) * 100, 1 << (uint(i) % 60), ^uint64(0) - uint64(i)},
		}
		if err := a.AppendSample(row); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzArchiveBytesV1 builds the same rows in the legacy v1 single-stream
// format, so the fuzzer exercises the legacy read path too.
func fuzzArchiveBytesV1(rows int) []byte {
	names := []pcp.NameEntry{
		{PMID: 1, Name: "fuzz.metric.a"},
		{PMID: 2, Name: "fuzz.metric.b"},
		{PMID: 7, Name: "fuzz.metric.c"},
	}
	var buf []byte
	buf = append(buf, fileMagicV1...)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, e := range names {
		buf = binary.AppendUvarint(buf, uint64(e.PMID))
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
	}
	buf = binary.AppendUvarint(buf, uint64(rows))
	var prev Sample
	for i := 0; i < rows; i++ {
		row := Sample{
			Timestamp: int64(i) * 10,
			Values:    []uint64{uint64(i) * 100, 1 << (uint(i) % 60), ^uint64(0) - uint64(i)},
		}
		if i == 0 {
			buf = binary.AppendVarint(buf, row.Timestamp)
			for _, v := range row.Values {
				buf = binary.AppendUvarint(buf, v)
			}
		} else {
			buf = binary.AppendVarint(buf, row.Timestamp-prev.Timestamp)
			for c, v := range row.Values {
				buf = binary.AppendVarint(buf, int64(v-prev.Values[c]))
			}
		}
		prev = row
	}
	return buf
}

// FuzzReadArchive hammers the archive decoder — both format versions,
// including the v2 block-index and rollup sections — with hostile
// input. Two properties:
//
//  1. Totality: Read never panics or runs away — any input is either
//     decoded or rejected with an error, no matter how the length
//     fields, varints, section ids, chunk counts, or bucket aggregates
//     are mangled.
//  2. Soundness: an input Read accepts yields a well-formed archive —
//     strictly increasing timestamps, full-width rows, queryable rollup
//     tiers — that round-trips through WriteTo/Read to identical
//     samples and identical rollup buckets.
func FuzzReadArchive(f *testing.F) {
	empty := fuzzArchiveBytes(f, 0)
	valid := fuzzArchiveBytes(f, 9)
	big := fuzzArchiveBytes(f, 23) // several sealed blocks + completed buckets
	legacy := fuzzArchiveBytesV1(9)
	f.Add(empty)
	f.Add(valid)
	f.Add(big)
	f.Add(legacy)
	// Truncations at structurally interesting places: inside the magic,
	// the schema, the chunk table, and the trailing sections.
	for _, n := range []int{0, 3, len(fileMagicV2), len(fileMagicV2) + 2, len(big) / 2, len(big) * 3 / 4, len(big) - 1} {
		f.Add(big[:n])
	}
	f.Add(legacy[:len(legacy)/2])
	// Single-bit flips in the header, schema, chunk lengths, delta
	// stream, and section payloads (index timestamps, bucket counts).
	for _, off := range []int{1, len(fileMagicV2), len(fileMagicV2) + 4, len(big) / 3, len(big) / 2, len(big) * 7 / 8, len(big) - 2} {
		b := append([]byte(nil), big...)
		b[off] ^= 0x10
		f.Add(b)
	}
	f.Add([]byte(fileMagicV1))
	f.Add([]byte(fileMagicV2))
	f.Add([]byte("not an archive at all"))
	// Hostile hand-built v2 skeletons: huge chunk/bucket counts that a
	// naive decoder would pre-allocate, an unknown section (must be
	// skipped), and an empty-section file.
	hostile := func(build func(b []byte) []byte) []byte {
		var b []byte
		b = append(b, fileMagicV2...)
		b = binary.AppendUvarint(b, 1) // one name
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 1)
		b = append(b, 'x')
		return build(b)
	}
	f.Add(hostile(func(b []byte) []byte { // chunk claims 2^24 rows in 3 bytes
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 1<<24)
		b = binary.AppendUvarint(b, 3)
		return append(b, 0, 0, 0)
	}))
	f.Add(hostile(func(b []byte) []byte { // rollup tier claims 2^24 buckets in 2 bytes
		b = binary.AppendUvarint(b, 0) // no chunks
		b = binary.AppendUvarint(b, 1) // one section
		b = binary.AppendUvarint(b, sectionRollups)
		b = binary.AppendUvarint(b, 6)
		b = binary.AppendUvarint(b, 1)     // one tier
		b = binary.AppendUvarint(b, 10)    // res
		b = binary.AppendUvarint(b, 0)     // evicted
		b = binary.AppendUvarint(b, 1<<24) // buckets
		return append(b, 0)
	}))
	f.Add(hostile(func(b []byte) []byte { // unknown section id: must be skipped
		b = binary.AppendUvarint(b, 0)
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 99)
		b = binary.AppendUvarint(b, 4)
		return append(b, 0xde, 0xad, 0xbe, 0xef)
	}))
	f.Add(hostile(func(b []byte) []byte { // section length past end of file
		b = binary.AppendUvarint(b, 0)
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, sectionBlockIndex)
		b = binary.AppendUvarint(b, 1<<40)
		return b
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Read(bytes.NewReader(data), Options{})
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		rows, err := a.All()
		if err != nil {
			t.Fatalf("accepted archive failed to decode: %v", err)
		}
		prev := int64(-1 << 62)
		for _, r := range rows {
			if r.Timestamp <= prev {
				t.Fatalf("accepted archive has non-increasing timestamps: %d after %d", r.Timestamp, prev)
			}
			prev = r.Timestamp
			if len(r.Values) != len(a.Names()) {
				t.Fatalf("row at ts=%d has %d values for a %d-column schema", r.Timestamp, len(r.Values), len(a.Names()))
			}
		}
		// Accepted rollup tiers must be queryable without panicking.
		for _, res := range a.Resolutions() {
			if _, _, ok := a.SpanAt(res); !ok {
				continue
			}
			if _, err := a.Buckets(res, math.MinInt64/2, math.MaxInt64/2); err != nil && res != ResRaw {
				t.Fatalf("accepted archive: Buckets(%v) failed: %v", res, err)
			}
			a.FloorAt(res, 0)
		}

		var out bytes.Buffer
		if _, err := a.WriteTo(&out); err != nil {
			t.Fatalf("accepted archive failed to re-serialize: %v", err)
		}
		b, err := Read(bytes.NewReader(out.Bytes()), Options{})
		if err != nil {
			t.Fatalf("round-tripped archive rejected: %v", err)
		}
		rows2, err := b.All()
		if err != nil {
			t.Fatalf("round-tripped archive failed to decode: %v", err)
		}
		if len(rows) != 0 || len(rows2) != 0 {
			if !reflect.DeepEqual(rows, rows2) {
				t.Fatalf("round trip changed samples:\n%v\n%v", rows, rows2)
			}
		}
		// Rollup tiers must survive the round trip bucket-for-bucket.
		for _, res := range a.Resolutions() {
			if res == ResRaw {
				continue
			}
			ba, errA := a.Buckets(res, math.MinInt64/2, math.MaxInt64/2)
			bb, errB := b.Buckets(res, math.MinInt64/2, math.MaxInt64/2)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("round trip changed tier %v availability: %v vs %v", res, errA, errB)
			}
			if len(ba) != 0 || len(bb) != 0 {
				if !reflect.DeepEqual(ba, bb) {
					t.Fatalf("round trip changed tier %v buckets:\n%v\n%v", res, ba, bb)
				}
			}
		}
	})
}
