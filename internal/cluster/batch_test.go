package cluster

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"papimc/internal/pcp"
)

// TestFederatorFetchBatchPartial: a batch scatter-gathers all its sets
// in one pass and lifts Fetch's partial semantics to the batch — down
// subtrees answer StatusNodeDown per value, the single PartialError
// names the union of missing nodes, every set shares the scatter's
// merged timestamp, and each set's values match what a lone Fetch of
// that set returns.
func TestFederatorFetchBatchPartial(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 16, FanOut: 4, Seed: 9, Interval: testInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Clock.Advance(testInterval + 1)

	names, _ := tr.Root.Names()
	pmidOn := func(node string) uint32 { // first PMID owned by the node
		for _, e := range names {
			if len(e.Name) > len(node) && e.Name[:len(node)] == node && e.Name[len(node)] == ':' {
				return e.PMID
			}
		}
		t.Fatalf("no metric qualified by %s", node)
		return 0
	}

	victims := []string{"node003", "node007"}
	for _, v := range victims {
		tr.Node(v).Kill()
	}
	// Each intermediate federator keeps one live routed node: a subtree
	// asked ONLY for dead-node pmids fails hard, and the parent then
	// conservatively reports that whole subtree missing.
	sets := [][]uint32{
		{pmidOn("node000"), pmidOn("node003")}, // one live, one down (l1.f0)
		{pmidOn("node004"), pmidOn("node007")}, // one live, one down (l1.f1)
		{pmidOn("node001"), pmidOn("node002")}, // all live
		{1, 9999},                              // unknown PMID rides along
	}
	results, err := tr.Root.FetchBatch(sets)
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *pcp.PartialError, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, victims) {
		t.Errorf("missing = %v, want %v", pe.Missing, victims)
	}
	if len(results) != len(sets) {
		t.Fatalf("%d results for %d sets", len(results), len(sets))
	}
	for si, res := range results {
		if res.Timestamp != results[0].Timestamp {
			t.Errorf("set %d timestamp %d differs from set 0's %d — one scatter, one time",
				si, res.Timestamp, results[0].Timestamp)
		}
		if len(res.Values) != len(sets[si]) {
			t.Fatalf("set %d: %d values for %d pmids", si, len(res.Values), len(sets[si]))
		}
		for j, v := range res.Values {
			if v.PMID != sets[si][j] {
				t.Errorf("set %d value %d echoes pmid %d, want %d", si, j, v.PMID, sets[si][j])
			}
		}
	}
	if got := results[0].Values[1].Status; got != pcp.StatusNodeDown {
		t.Errorf("victim-owned value status = %d, want StatusNodeDown", got)
	}
	if got := results[1].Values[1].Status; got != pcp.StatusNodeDown {
		t.Errorf("victim-owned value status = %d, want StatusNodeDown", got)
	}
	if got := results[1].Values[0].Status; got != pcp.StatusOK {
		t.Errorf("live value in a partially-down set = %d, want StatusOK", got)
	}
	if got := results[3].Values[1].Status; got != pcp.StatusNoSuchPMID {
		t.Errorf("unknown pmid status = %d, want StatusNoSuchPMID", got)
	}

	// Per-set parity with single fetches (clock held still, so the
	// scatter answers are identical).
	for si, set := range sets {
		single, err := tr.Root.Fetch(set)
		if err != nil && !errors.As(err, &pe) {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single.Values, results[si].Values) {
			t.Errorf("set %d: single fetch values differ from batch:\nsingle: %+v\nbatch:  %+v",
				si, single.Values, results[si].Values)
		}
	}
}

// TestServedFederatorBatchParity: the batch PDU through the served
// federator's tagged, out-of-order connection handler answers exactly
// like the in-process federator — including partial outcomes — and
// stays correct when many client goroutines share one pipelined
// connection.
func TestServedFederatorBatchParity(t *testing.T) {
	tr, err := Assemble(Config{Nodes: 4, FanOut: 2, Seed: 3, Interval: testInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	srv, addr, err := Serve(tr.Root, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() < pcp.Version2 {
		t.Fatalf("served federator negotiated version %d, want tagged", c.Version())
	}

	tr.Clock.Advance(testInterval + 1)
	names, _ := tr.Root.Names()
	pmidOn := func(node string) uint32 {
		for _, e := range names {
			if len(e.Name) > len(node) && e.Name[:len(node)] == node && e.Name[len(node)] == ':' {
				return e.PMID
			}
		}
		t.Fatalf("no metric qualified by %s", node)
		return 0
	}
	// Sets span both subtrees so the later kill degrades the batch to
	// partial instead of failing a whole scatter edge hard.
	sets := [][]uint32{
		{pmidOn("node000"), pmidOn("node002")},
		{pmidOn("node003")},
		{pmidOn("node001")},
	}
	local, err := tr.Root.FetchBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.FetchBatch(sets)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Errorf("served batch differs from in-process:\nremote: %+v\nlocal:  %+v", remote, local)
	}

	// Concurrent pipelined clients against the per-request-goroutine
	// server loop: every answer stays internally consistent.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				out, err := c.FetchBatch(sets)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(out, local) {
					errCh <- errors.New("concurrent batch answer diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// A killed node's absence arrives as the batch response's own
	// missing header, decoded back into one *pcp.PartialError.
	tr.Node("node000").Kill()
	tr.Clock.Advance(testInterval + 1)
	_, err = c.FetchBatch(sets)
	var pe *pcp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expected partial error through the batch PDU, got %v", err)
	}
	if !reflect.DeepEqual(pe.Missing, []string{"node000"}) {
		t.Errorf("missing = %v, want [node000]", pe.Missing)
	}
}
