package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"papimc/internal/cluster"
	"papimc/internal/metricql"
	"papimc/internal/pcp"
	"papimc/internal/pmproxy"
	"papimc/internal/sweep"
	"papimc/internal/xrand"
)

// ClusterProfile is a tree-wide fault plan: how many nodes are killed
// (immediate refusal) and stalled (slower than every deadline) during a
// trial, and whether the victim set flaps between queries.
type ClusterProfile struct {
	Kill  int
	Stall int
	Flap  bool // re-draw the victims before every query
}

// ClusterProfiles are the named tree-wide profiles shared by the test
// suite and the cmd/chaos -cluster driver.
var ClusterProfiles = map[string]ClusterProfile{
	"healthy":  {},
	"killed":   {Kill: 3},
	"stalled":  {Stall: 2},
	"mixed":    {Kill: 2, Stall: 1},
	"flapping": {Kill: 3, Flap: true},
}

// ClusterProfileNames returns the cluster profile names in sorted order.
func ClusterProfileNames() []string {
	names := make([]string, 0, len(ClusterProfiles))
	for n := range ClusterProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClusterOptions configures a federated-cluster chaos run.
type ClusterOptions struct {
	// Seed is the base seed; trial i derives sweep.Seed(Seed, i), which
	// seeds both the tree's node substreams and the victim draws.
	Seed uint64
	// Trials is how many independent trees to drive (default 2).
	Trials int
	// Queries is the scatter-gather query count per trial (default 4).
	Queries int
	// Nodes and FanOut shape each trial's tree (defaults 64 and 4 — the
	// 3-level acceptance geometry).
	Nodes  int
	FanOut int
	// Workers parallelizes trials; sweep.Workers semantics.
	Workers int
	// Profile is the fault plan.
	Profile ClusterProfile
	// Trial, when >= 0, replays only that trial index.
	Trial int
}

// ClusterTrial is one trial's outcome. Every field is a deterministic
// function of (base seed, index): victims come from the trial's seed
// substream, values from the nodes' self-certifying streams, and the
// missing-set from the victim set — nothing timing-dependent is
// recorded, which is what keeps the report byte-reproducible.
type ClusterTrial struct {
	Index      int
	Seed       uint64
	Depth      int
	Queries    int
	Partials   int      // queries that answered partially
	Missing    []string // the final query's missing set, sorted
	Violations []string
}

// ClusterReport is a full cluster chaos run's outcome.
type ClusterReport struct {
	Opts   ClusterOptions
	Trials []ClusterTrial
}

// Failed reports whether any trial violated an invariant.
func (r *ClusterReport) Failed() bool {
	for _, t := range r.Trials {
		if len(t.Violations) > 0 {
			return true
		}
	}
	return false
}

// String renders the deterministic per-trial report: byte-identical
// across runs and worker counts for the same options.
func (r *ClusterReport) String() string {
	var b strings.Builder
	for _, t := range r.Trials {
		fmt.Fprintf(&b, "cluster trial %02d seed=%#016x depth=%d queries=%d partials=%d missing=[%s]\n",
			t.Index, t.Seed, t.Depth, t.Queries, t.Partials, strings.Join(t.Missing, ","))
		for _, v := range t.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// ClusterReproLine is the one-command replay for a failing cluster
// trial.
func ClusterReproLine(o ClusterOptions, trial int) string {
	return fmt.Sprintf("go run ./cmd/chaos -cluster -seed %#x -trials %d -trial %d -nodes %d -fanout %d -queries %d -kill %d -stalled %d -flap=%v",
		o.Seed, maxInt(o.Trials, trial+1), trial, o.Nodes, o.FanOut, o.Queries,
		o.Profile.Kill, o.Profile.Stall, o.Profile.Flap)
}

// victimStream decorrelates victim draws from the tree's node seeds.
const victimStream = 0x71C

// Edge policy for chaos trees: tight leaf deadlines so stalled nodes
// are cut fast, a hedge window inside the deadline, one retry. Only
// leaf edges touch nodes, so the stall just has to exceed the leaf
// round's whole budget — Deadline·(Retries+1) = 40ms — for a stalled
// node to miss every attempt deterministically.
const (
	clusterDeadline = 20 * time.Millisecond
	clusterHedge    = 5 * time.Millisecond
	clusterStallFor = 250 * time.Millisecond
	clusterRetries  = 1
)

// RunCluster executes the federated-cluster chaos sweep: each trial
// assembles its own tree, takes killed/stalled nodes through a stream
// of cluster-wide consistent snapshots and grouped metricql queries,
// and checks the partial-result contract on every answer:
//
//   - a query with k nodes down still answers, and its PartialError
//     names exactly the down nodes — no more, no fewer;
//   - every answered value certifies against the single snapshot
//     timestamp (cluster.MetricValue recomputation);
//   - the grouped query's node groups are exactly the survivors, each
//     group value certified;
//   - every federation edge's counters obey the conservation laws.
func RunCluster(o ClusterOptions) (*ClusterReport, error) {
	if o.Trials <= 0 {
		o.Trials = 2
	}
	if o.Queries <= 0 {
		o.Queries = 4
	}
	if o.Nodes <= 0 {
		o.Nodes = 64
	}
	if o.FanOut <= 1 {
		o.FanOut = 4
	}
	rep := &ClusterReport{Opts: o}
	if o.Trial >= 0 {
		t, err := runClusterTrial(o, o.Trial)
		if err != nil {
			return nil, err
		}
		rep.Trials = []ClusterTrial{t}
		return rep, nil
	}
	trials, err := sweep.Map(o.Trials, o.Workers, func(i int) (ClusterTrial, error) {
		return runClusterTrial(o, i)
	})
	if err != nil {
		return nil, err
	}
	rep.Trials = trials
	return rep, nil
}

func runClusterTrial(o ClusterOptions, idx int) (ClusterTrial, error) {
	seed := sweep.Seed(o.Seed, idx)
	t := ClusterTrial{Index: idx, Seed: seed, Queries: o.Queries}
	violate := func(format string, args ...any) {
		t.Violations = append(t.Violations, fmt.Sprintf(format, args...))
	}

	tr, err := cluster.Assemble(cluster.Config{
		Nodes:    o.Nodes,
		FanOut:   o.FanOut,
		Seed:     seed,
		Interval: Interval,
		Policy: pmproxy.EdgePolicy{
			Deadline:   clusterDeadline,
			HedgeAfter: clusterHedge,
			Retries:    clusterRetries,
		},
	})
	if err != nil {
		return t, err
	}
	defer tr.Close()
	t.Depth = tr.Depth()

	eng := metricql.NewEngine(tr.Root)
	query, err := eng.Query("sum(mem.read_bw) by (node)")
	if err != nil {
		return t, err
	}

	rng := xrand.New(mix(seed ^ victimStream))
	var down []string // sorted victim names
	applyVictims := func() {
		for _, n := range tr.Nodes {
			n.Restore()
		}
		perm := rng.Perm(o.Nodes)
		down = down[:0]
		for i := 0; i < o.Profile.Kill+o.Profile.Stall && i < o.Nodes; i++ {
			n := tr.Nodes[perm[i]]
			if i < o.Profile.Kill {
				n.Kill()
			} else {
				n.Stall(clusterStallFor)
			}
			down = append(down, n.Name)
		}
		sort.Strings(down)
	}
	applyVictims()

	for q := 0; q < o.Queries; q++ {
		if o.Profile.Flap && q > 0 {
			applyVictims()
		}

		// Consistent snapshot: one virtual timestamp, every value
		// certified by Tree.Snapshot, missing set exact.
		res, err := tr.Snapshot()
		ts := int64(tr.Clock.Now())
		var pe *pcp.PartialError
		switch {
		case errors.As(err, &pe):
			t.Partials++
			if !equalStrings(pe.Missing, down) {
				violate("query %d: missing=%v but down=%v", q, pe.Missing, down)
			}
		case err != nil:
			violate("query %d: snapshot failed: %v", q, err)
			continue
		case len(down) > 0:
			violate("query %d: %d nodes down but the snapshot claims completeness", q, len(down))
		}
		if res.Timestamp != ts {
			violate("query %d: snapshot ts=%d, clock=%d", q, res.Timestamp, ts)
		}

		// The grouped query over the same snapshot interval: groups are
		// exactly the survivors, values certified.
		v, err := query.Eval()
		switch {
		case errors.As(err, &pe):
			if !equalStrings(pe.Missing, down) {
				violate("query %d: metricql missing=%v but down=%v", q, pe.Missing, down)
			}
		case err != nil:
			violate("query %d: metricql eval failed: %v", q, err)
			continue
		case len(down) > 0:
			violate("query %d: metricql saw no outage with %d nodes down", q, len(down))
		}
		downSet := make(map[string]bool, len(down))
		for _, n := range down {
			downSet[n] = true
		}
		if len(v.Names) != o.Nodes-len(down) {
			violate("query %d: %d node groups, want %d", q, len(v.Names), o.Nodes-len(down))
		}
		for i, name := range v.Names {
			if downSet[name] {
				violate("query %d: down node %s present in grouped answer", q, name)
				continue
			}
			node := tr.Node(name)
			if node == nil {
				violate("query %d: grouped answer names unknown node %q", q, name)
				continue
			}
			if want := float64(readBW(node.Seed, ts)); v.Vals[i] != want {
				violate("query %d: %s group value %v, want %v", q, name, v.Vals[i], want)
			}
		}
	}
	t.Missing = append([]string(nil), down...)

	// Attempts abandoned at a deadline are still asleep in the stall
	// gate: Fetches counts them at launch, but their failure lands only
	// when they wake. Let the ledgers settle before auditing them.
	settle := time.Now().Add(clusterStallFor + 2*time.Second)
	for {
		settled := true
		for _, es := range tr.EdgeStats() {
			if es.Stats.Fetches != es.Stats.Successes+es.Stats.Failures {
				settled = false
				break
			}
		}
		if settled || time.Now().After(settle) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Edge accounting: every edge of every federator obeys the
	// conservation laws after the whole query stream.
	for _, es := range tr.EdgeStats() {
		s := es.Stats
		if s.Fetches != s.Successes+s.Failures {
			violate("edge %s: Fetches=%d != Successes=%d + Failures=%d", es.Edge, s.Fetches, s.Successes, s.Failures)
		}
		if s.Errors != s.Retries+s.Failures {
			violate("edge %s: Errors=%d != Retries=%d + Failures=%d", es.Edge, s.Errors, s.Retries, s.Failures)
		}
		if s.HedgesWon > s.Hedges {
			violate("edge %s: HedgesWon=%d > Hedges=%d", es.Edge, s.HedgesWon, s.Hedges)
		}
		if s.DeadlineMisses > s.Errors {
			violate("edge %s: DeadlineMisses=%d > Errors=%d", es.Edge, s.DeadlineMisses, s.Errors)
		}
	}
	return t, nil
}

// readBW is the certified mem.read_bw value for a node seed at ts: the
// metric's PMID is its index in the node's sorted namespace.
func readBW(seed uint64, ts int64) uint64 {
	for i, name := range cluster.MetricNames(seed) {
		if name == "mem.read_bw" {
			return cluster.MetricValue(seed, uint32(i+1), ts)
		}
	}
	return 0
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
