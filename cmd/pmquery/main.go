// Command pmquery evaluates metricql expressions against a live PMCD
// daemon (or pmproxy) or against a recorded archive, like PCP's pmrep:
// it prints one CSV row per sample with a column per metric instance,
// and can carry pmie-style alert rules that fire to stderr.
//
// Usage:
//
//	pmquery -addr 127.0.0.1:44321 'sum(rate(nest.mba*.read_bytes))'
//	pmquery -addr 127.0.0.1:44321 -watch -interval 250ms mem.read_bw ...
//	pmquery -archive run.pmlog -interval 100ms 'rate(nest.mba0.read_bytes)'
//	pmquery -addr ... -watch -rule 'sum(rate(nest.mba*.read_bytes)) > 1e9'
//
// Expressions follow the metricql grammar (see DESIGN.md): metric names
// with globs (`nest.mba*.read_bytes`), arithmetic, and the functions
// rate, delta, sum, avg, min, max, avg_over, max_over. Note that an
// unspaced `*` between name characters is a glob; to multiply two
// metrics write `a * b` with spaces.
//
// The first fetch primes the counter baselines and is not printed, so
// every printed rate spans a real interval. In live mode ticks shorter
// than the daemon's sampling interval repeat its held sample, exactly
// as a raw fetch would. Archive mode steps a replay clock across the
// recording's span at -interval, yielding the same values a live run
// of this tool would have seen.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"papimc/internal/archive"
	"papimc/internal/metricql"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:44321", "PMCD daemon or pmproxy address")
	arch := flag.String("archive", "", "evaluate over this archive file instead of a live daemon")
	resolution := flag.Duration("resolution", 0, "archive read resolution: serve rollup buckets of this width instead of raw samples (0 = raw)")
	interval := flag.Duration("interval", 100*time.Millisecond, "sampling (live) or replay stepping (archive) interval")
	count := flag.Int("n", 1, "number of samples to print in live mode")
	watch := flag.Bool("watch", false, "sample until Ctrl-C instead of stopping after -n")
	hold := flag.Int("hold", 1, "consecutive breaching samples before a rule fires")
	holdoff := flag.Duration("holdoff", 0, "suppress rule re-firing for this long after a firing")
	var ruleSpecs []string
	flag.Func("rule", "alert rule 'expr > threshold' (repeatable; ops > >= < <=)", func(s string) error {
		ruleSpecs = append(ruleSpecs, s)
		return nil
	})
	flag.Parse()

	exprs := flag.Args()
	if len(exprs) == 0 && len(ruleSpecs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pmquery [flags] expr ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var err error
	if *arch != "" {
		err = runArchive(*arch, *resolution, *interval, exprs, ruleSpecs, *hold, *holdoff, os.Stdout, os.Stderr)
	} else {
		err = runLive(*addr, *interval, *count, *watch, exprs, ruleSpecs, *hold, *holdoff, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmquery:", err)
		os.Exit(1)
	}
}

// session binds the expressions and rules over one metric source and
// owns the CSV state (the header is derived from the first evaluation,
// which names every expanded instance of a vector expression).
type session struct {
	eng    *metricql.Engine
	qs     []*metricql.Query
	exprs  []string
	rs     *metricql.Ruleset
	header bool
	out    io.Writer // CSV rows
	alerts io.Writer // rule firings
}

func newSession(src metricql.Source, exprs, ruleSpecs []string, hold int, holdoff time.Duration, out, alerts io.Writer) (*session, error) {
	names, err := src.Names()
	if err != nil {
		return nil, err
	}
	eng := metricql.NewEngine(src)
	eng.AliasAll(metricql.NestAliases(names))
	s := &session{eng: eng, exprs: exprs, out: out, alerts: alerts}
	for _, e := range exprs {
		q, err := eng.Query(e)
		if err != nil {
			return nil, err
		}
		s.qs = append(s.qs, q)
	}
	if len(ruleSpecs) > 0 {
		s.rs = metricql.NewRuleset(eng, func(f metricql.Firing) {
			fmt.Fprintf(s.alerts, "# ALERT %s: value %.6g at %.3fs\n",
				f.Rule.Name, f.Value, float64(f.Timestamp)/1e9)
		})
		for _, spec := range ruleSpecs {
			r, err := parseRule(spec, hold, holdoff)
			if err != nil {
				return nil, err
			}
			if err := s.rs.Add(r); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// parseRule splits 'expr OP threshold' at the comparison operator
// (two-character operators first, so '>=' is not read as '>').
func parseRule(spec string, hold int, holdoff time.Duration) (metricql.Rule, error) {
	for _, op := range []string{">=", "<=", ">", "<"} {
		i := strings.Index(spec, op)
		if i < 0 {
			continue
		}
		thr, err := strconv.ParseFloat(strings.TrimSpace(spec[i+len(op):]), 64)
		if err != nil {
			return metricql.Rule{}, fmt.Errorf("rule %q: bad threshold: %v", spec, err)
		}
		return metricql.Rule{
			Name:      spec,
			Expr:      strings.TrimSpace(spec[:i]),
			Op:        op,
			Threshold: thr,
			Hold:      hold,
			Holdoff:   simtime.Duration(holdoff),
		}, nil
	}
	return metricql.Rule{}, fmt.Errorf("rule %q: want 'expr > threshold'", spec)
}

// prime performs the baseline evaluation: counter states get their
// first sample so the next evaluation yields true rates. Nothing is
// printed; rules do step (a level rule may legitimately fire on the
// very first sample).
func (s *session) prime() error {
	if len(s.qs) > 0 {
		if _, err := s.eng.EvalAll(s.qs...); err != nil {
			return err
		}
	}
	if s.rs != nil {
		return s.rs.Step()
	}
	return nil
}

// sample evaluates every expression in one coalesced fetch, prints the
// CSV row (and the header first), then steps the rules.
func (s *session) sample() error {
	if len(s.qs) > 0 {
		vals, err := s.eng.EvalAll(s.qs...)
		if err != nil {
			return err
		}
		if !s.header {
			cols := []string{"time"}
			for i, v := range vals {
				if len(v.Names) > 0 {
					cols = append(cols, v.Names...)
				} else {
					cols = append(cols, s.exprs[i])
				}
			}
			fmt.Fprintln(s.out, strings.Join(cols, ","))
			s.header = true
		}
		ts, _ := s.eng.LastTimestamp()
		row := []string{strconv.FormatFloat(float64(ts)/1e9, 'f', 3, 64)}
		for _, v := range vals {
			for _, x := range v.Vals {
				row = append(row, strconv.FormatFloat(x, 'g', 6, 64))
			}
		}
		fmt.Fprintln(s.out, strings.Join(row, ","))
	}
	if s.rs != nil {
		return s.rs.Step()
	}
	return nil
}

func runLive(addr string, interval time.Duration, count int, watch bool, exprs, ruleSpecs []string, hold int, holdoff time.Duration, out, alerts io.Writer) error {
	client, err := pcp.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()
	s, err := newSession(client, exprs, ruleSpecs, hold, holdoff, out, alerts)
	if err != nil {
		return err
	}
	if err := s.prime(); err != nil {
		return err
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for n := 0; watch || n < count; n++ {
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
		if err := s.sample(); err != nil {
			return err
		}
	}
	return nil
}

func runArchive(path string, resolution, interval time.Duration, exprs, ruleSpecs []string, hold int, holdoff time.Duration, out, alerts io.Writer) error {
	if interval <= 0 {
		return fmt.Errorf("interval must be positive")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	a, err := archive.Read(f, archive.Options{})
	f.Close()
	if err != nil {
		return err
	}
	res := archive.Resolution(resolution.Nanoseconds())
	first, last, ok := a.SpanAt(res)
	if !ok {
		if res != archive.ResRaw {
			return fmt.Errorf("%s: archive has no %v rollup tier", path, res)
		}
		return fmt.Errorf("%s: empty archive", path)
	}
	clock := simtime.NewClock()
	replay := archive.NewReplayAt(a, clock, res)
	s, err := newSession(replay, exprs, ruleSpecs, hold, holdoff, out, alerts)
	if err != nil {
		return err
	}
	clock.AdvanceTo(simtime.Time(first))
	if err := s.prime(); err != nil {
		return err
	}
	for ts := first + interval.Nanoseconds(); ts <= last; ts += interval.Nanoseconds() {
		clock.AdvanceTo(simtime.Time(ts))
		if err := s.sample(); err != nil {
			return err
		}
	}
	return nil
}
