package workload

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"papimc/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestValidateDefaults(t *testing.T) {
	s := &Spec{Cohorts: []CohortSpec{{Name: "c", Clients: 10, Rate: 5}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "workload" || s.Duration != 60*simtime.Second {
		t.Errorf("spec defaults: name=%q duration=%v", s.Name, s.Duration)
	}
	if s.Server.Servers != 8 || s.Server.Base != 500*simtime.Microsecond || s.Server.SizeRef != 8 {
		t.Errorf("server defaults: %+v", s.Server)
	}
	c := s.Cohorts[0]
	if c.Mix.Live != 1 || c.Size.Min != 1 || c.Size.Max != 64 {
		t.Errorf("cohort defaults: mix=%+v size=%+v", c.Mix, c.Size)
	}
	// Idempotent: validating again changes nothing.
	before := s.String()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.String() != before {
		t.Error("Validate is not idempotent")
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mutate func(*Spec)) *Spec {
		s := richSpec()
		mutate(s)
		return s
	}
	cases := map[string]*Spec{
		"no cohorts":        {Name: "x"},
		"unnamed cohort":    mk(func(s *Spec) { s.Cohorts[0].Name = "" }),
		"duplicate cohort":  mk(func(s *Spec) { s.Cohorts[1].Name = s.Cohorts[0].Name }),
		"zero clients":      mk(func(s *Spec) { s.Cohorts[0].Clients = 0 }),
		"negative rate":     mk(func(s *Spec) { s.Cohorts[0].Rate = -4 }),
		"zero rate":         mk(func(s *Spec) { s.Cohorts[0].Rate = 0 }),
		"negative mix":      mk(func(s *Spec) { s.Cohorts[0].Mix.Archive = -1 }),
		"negative size min": mk(func(s *Spec) { s.Cohorts[0].Size.Min = -2 }),
		"max below min":     mk(func(s *Spec) { s.Cohorts[0].Size = SizeSpec{Min: 10, Max: 5} }),
		"negative alpha":    mk(func(s *Spec) { s.Cohorts[0].Size.Alpha = -1 }),
		"zero period":       mk(func(s *Spec) { s.Cohorts[0].Diurnal[0].Period = 0 }),
		"negative window":   mk(func(s *Spec) { s.Cohorts[0].Windows[0].Start = -simtime.Second }),
		"window disorder":   mk(func(s *Spec) { s.Cohorts[0].Windows[1].Start = 0 }),
		"negative servers":  mk(func(s *Spec) { s.Server.Servers = -1 }),
		"jitter too big":    mk(func(s *Spec) { s.Server.Jitter = 1 }),
	}
	for name, s := range cases {
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: %v does not wrap ErrSpec", name, err)
		}
	}
}

// TestLoadSpecGolden parses the checked-in example spec and diffs its
// canonical normalized form against the golden file. Refresh with
// go test ./internal/workload -run LoadSpecGolden -update
func TestLoadSpecGolden(t *testing.T) {
	s, err := LoadSpec(filepath.Join("testdata", "diurnal.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	got := s.String()
	golden := filepath.Join("testdata", "diurnal.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("parsed spec drifted from golden (rerun with -update if intended):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParseSpecJSONEquivalence feeds the same spec through both front
// ends; the raw trees must decode identically.
func TestParseSpecJSONEquivalence(t *testing.T) {
	yamlSrc := `
name: two-front-ends
seed: 11
duration: 90s
server: {servers: 4, base: 250us, jitter: 0.1, sizeref: 2}
cohorts:
  - name: readers
    clients: 300
    rate: 120
    mix: {live: 3, archive: 1}
    size: {min: 2, alpha: 1.5, max: 32}
    diurnal:
      - period: 30s
        amplitude: 0.4
        phase: 0.25
    windows:
      - start: 0s
        mult: 1
      - start: 45s
        mult: 2
`
	jsonSrc := `{
  "name": "two-front-ends",
  "seed": 11,
  "duration": "90s",
  "server": {"servers": 4, "base": "250us", "jitter": 0.1, "sizeref": 2},
  "cohorts": [
    {
      "name": "readers", "clients": 300, "rate": 120,
      "mix": {"live": 3, "archive": 1},
      "size": {"min": 2, "alpha": 1.5, "max": 32},
      "diurnal": [{"period": "30s", "amplitude": 0.4, "phase": 0.25}],
      "windows": [{"start": "0s", "mult": 1}, {"start": "45s", "mult": 2}]
    }
  ]
}`
	fromYAML, err := ParseSpec([]byte(yamlSrc))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseSpec([]byte(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	if fromYAML.String() != fromJSON.String() {
		t.Errorf("front ends disagree:\n--- yaml ---\n%s--- json ---\n%s", fromYAML, fromJSON)
	}
	// Durations accept bare seconds too.
	bare, err := ParseSpec([]byte("name: bare\nduration: 90\ncohorts:\n  - name: c\n    clients: 1\n    rate: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Duration != 90*simtime.Second {
		t.Errorf("bare duration parsed as %v", bare.Duration)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"unknown key":        "name: x\nbogus: 1\ncohorts:\n  - name: c\n    clients: 1\n    rate: 1\n",
		"unknown cohort key": "cohorts:\n  - name: c\n    clients: 1\n    rate: 1\n    color: red\n",
		"unknown mix key":    "cohorts:\n  - name: c\n    clients: 1\n    rate: 1\n    mix: {livee: 1}\n",
		"tab indent":         "name: x\ncohorts:\n\t- name: c\n",
		"bad duration":       "duration: soon\ncohorts:\n  - name: c\n    clients: 1\n    rate: 1\n",
		"bad number":         "cohorts:\n  - name: c\n    clients: few\n    rate: 1\n",
		"non-integer":        "cohorts:\n  - name: c\n    clients: 1.5\n    rate: 1\n",
		"duplicate key":      "name: x\nname: y\ncohorts:\n  - name: c\n    clients: 1\n    rate: 1\n",
		"bad json":           "{not json",
		"empty":              "",
		"cohorts not list":   "cohorts: 3\n",
		"invalid spec":       "cohorts:\n  - name: c\n    clients: 0\n    rate: 1\n",
	}
	for name, src := range cases {
		_, err := ParseSpec([]byte(src))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: %v does not wrap ErrSpec", name, err)
		}
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.yaml")); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestModulationEnvelope(t *testing.T) {
	c := &richSpec().Cohorts[0]
	env := c.envelope()
	for _, tm := range []simtime.Time{0, 1e9, 5e9, 9e9, 11e9, 19e9} {
		m := c.modulation(tm)
		if m < 0 || m > env+1e-9 {
			t.Errorf("modulation(%v) = %g outside [0, envelope=%g]", tm, m, env)
		}
	}
	if !strings.Contains(richSpec().String(), "envelope=") {
		t.Error("String omits the envelope")
	}
}
