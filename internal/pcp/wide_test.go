package pcp

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"
)

// TestStatusErrorCodec pins the typed-rejection payload: round trip,
// overload classification via errors.Is, and decoder totality.
func TestStatusErrorCodec(t *testing.T) {
	b := EncodeStatusError(StatusOverload, "shed: over quota")
	se, err := DecodeStatusError(b)
	if err != nil {
		t.Fatal(err)
	}
	if se.Status != StatusOverload || se.Msg != "shed: over quota" {
		t.Fatalf("decoded %+v", se)
	}
	if !errors.Is(se, ErrOverload) {
		t.Fatal("StatusOverload must unwrap to ErrOverload")
	}
	other, err := DecodeStatusError(EncodeStatusError(StatusNodeDown, "down"))
	if err != nil {
		t.Fatal(err)
	}
	if errors.Is(other, ErrOverload) {
		t.Fatal("non-overload status must not unwrap to ErrOverload")
	}
	if _, err := DecodeStatusError([]byte{1, 2}); err == nil {
		t.Fatal("truncated payload must not decode")
	}
	if _, err := DecodeStatusError(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must not decode")
	}
}

// TestWideFrameRoundTrip covers the Version3 frame format directly:
// write/read round trip with tenant preserved, header-only reads
// leaving the payload unread, and batch coalescing of wide frames.
func TestWideFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello wide world")
	if err := WriteWidePDU(&buf, PDUFetchReq, 7, 42, payload); err != nil {
		t.Fatal(err)
	}
	typ, tag, tenant, got, err := ReadWidePDUInto(bufio.NewReader(bytes.NewReader(buf.Bytes())), nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != PDUFetchReq || tag != 7 || tenant != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type=%d tag=%d tenant=%d payload=%q", typ, tag, tenant, got)
	}
	hr := bytes.NewReader(buf.Bytes())
	if _, _, _, n, err := ReadWideHeader(hr); err != nil {
		t.Fatal(err)
	} else if hr.Len() != int(n) {
		t.Fatalf("header read consumed payload: %d left, want %d", hr.Len(), n)
	}

	// Oversize claims are rejected before any allocation.
	big := wframe(MaxPDUBytes+1, PDUFetchResp, 1, 2, nil)
	if _, _, _, _, err := ReadWidePDUInto(bufio.NewReader(bytes.NewReader(big)), nil); !errors.Is(err, ErrPDUTooLarge) {
		t.Fatalf("oversize wide frame: err = %v, want ErrPDUTooLarge", err)
	}

	// A batch of wide frames coalesces and decodes frame by frame.
	var batch frameBatch
	for i := uint32(1); i <= 3; i++ {
		if _, err := batch.appendWide(PDUFetchResp, i, i*10, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := batch.flush(&out); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(out.Bytes()))
	for i := uint32(1); i <= 3; i++ {
		typ, tag, tenant, p, err := ReadWidePDUInto(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		if typ != PDUFetchResp || tag != i || tenant != i*10 || len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("frame %d: type=%d tag=%d tenant=%d payload=%v", i, typ, tag, tenant, p)
		}
	}
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("trailing bytes after batch")
	}
}

// TestTenantTravelsInBand proves SetTenant reaches a Version3 server's
// handler in-band: a hand-rolled ServeTaggedWide server answers every
// fetch with the tenant it saw, and typed status errors travel back as
// errors.Is(..., ErrOverload).
func TestTenantTravelsInBand(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				if err := ServerHandshake(br, bw); err != nil {
					return
				}
				typ, payload, err := ReadPDU(br)
				if err != nil || typ != PDUVersionReq {
					return
				}
				respType, resp, version := NegotiateVersionV(payload, nil)
				if WritePDU(bw, respType, resp) != nil || bw.Flush() != nil {
					return
				}
				if version < Version3 {
					return
				}
				var scratch []byte
				ServeTaggedWide(conn, br, func(typ uint8, tenant uint32, payload []byte) (uint8, []byte) {
					if tenant == 99 {
						scratch = AppendStatusError(scratch[:0], StatusOverload, "tenant 99 always shed")
						return PDUStatusError, scratch
					}
					scratch = AppendFetchResp(scratch[:0], FetchResult{
						Timestamp: 1,
						Values:    []FetchValue{{PMID: 1, Status: StatusOK, Value: uint64(tenant)}},
					})
					return PDUFetchResp, scratch
				})
			}(conn)
		}
	}()

	c, err := DialTenant(ln.Addr().String(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.Version(); v != Version3 {
		t.Fatalf("negotiated %d, want Version3", v)
	}
	if got := c.Tenant(); got != 42 {
		t.Fatalf("Tenant() = %d, want 42", got)
	}
	res, err := c.Fetch([]uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || res.Values[0].Value != 42 {
		t.Fatalf("server saw tenant %v, want 42", res.Values)
	}

	// Retenanting the same connection changes what the server sees.
	c.SetTenant(7)
	res, err = c.Fetch([]uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0].Value != 7 {
		t.Fatalf("after SetTenant(7) server saw %d", res.Values[0].Value)
	}

	// A shed tenant gets a typed overload error, not a string match.
	c.SetTenant(99)
	if _, err := c.Fetch([]uint32{1}); !errors.Is(err, ErrOverload) {
		t.Fatalf("shed fetch err = %v, want ErrOverload", err)
	}
	var se *StatusError
	c.SetTenant(99)
	_, err = c.Fetch([]uint32{1})
	if !errors.As(err, &se) || se.Status != StatusOverload {
		t.Fatalf("err = %v, want *StatusError{StatusOverload}", err)
	}

	// The connection stays usable after a typed rejection.
	c.SetTenant(5)
	res, err = c.Fetch([]uint32{1})
	if err != nil || res.Values[0].Value != 5 {
		t.Fatalf("post-rejection fetch: %v %v", res, err)
	}
}
