package pcp

import (
	"errors"
	"reflect"
	"testing"

	"papimc/internal/simtime"
)

func TestPartialRespRoundTrip(t *testing.T) {
	res := FetchResult{
		Timestamp: 12345,
		Values: []FetchValue{
			{PMID: 1, Status: StatusOK, Value: 42},
			{PMID: 2, Status: StatusNodeDown},
			{PMID: 3, Status: StatusOK, Value: 7},
		},
	}
	missing := []string{"node003", "node017"}
	b := EncodePartialResp(res, missing, "node003: connection refused")

	var got FetchResult
	pe, err := DecodePartialResp(b, &got)
	if err != nil {
		t.Fatalf("DecodePartialResp: %v", err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("result round trip: got %+v want %+v", got, res)
	}
	if !reflect.DeepEqual(pe.Missing, missing) {
		t.Errorf("missing round trip: got %v want %v", pe.Missing, missing)
	}
	if pe.Cause != "node003: connection refused" {
		t.Errorf("cause round trip: got %q", pe.Cause)
	}
	var asPE *PartialError
	if !errors.As(error(pe), &asPE) {
		t.Errorf("PartialError does not satisfy errors.As")
	}
}

func TestPartialRespEmptyMissing(t *testing.T) {
	res := FetchResult{Timestamp: 1, Values: []FetchValue{{PMID: 1, Status: StatusOK, Value: 9}}}
	b := EncodePartialResp(res, nil, "")
	var got FetchResult
	pe, err := DecodePartialResp(b, &got)
	if err != nil {
		t.Fatalf("DecodePartialResp: %v", err)
	}
	if len(pe.Missing) != 0 || pe.Cause != "" {
		t.Errorf("unexpected partial error contents: %+v", pe)
	}
}

func TestPartialRespTruncated(t *testing.T) {
	b := EncodePartialResp(FetchResult{Timestamp: 5, Values: []FetchValue{{PMID: 1}}}, []string{"n0"}, "x")
	for cut := 0; cut < len(b); cut++ {
		var got FetchResult
		if _, err := DecodePartialResp(b[:cut], &got); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestDaemonFetchAll(t *testing.T) {
	clock := simtime.NewClock()
	metrics := []Metric{
		{Name: "b.metric", Read: func(simtime.Time) (uint64, error) { return 2, nil }},
		{Name: "a.metric", Read: func(simtime.Time) (uint64, error) { return 1, nil }},
		{Name: "c.metric", Read: func(simtime.Time) (uint64, error) { return 3, nil }},
	}
	d, err := NewDaemon(clock, 10*simtime.Millisecond, metrics)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.FetchAll()
	if err != nil {
		t.Fatalf("FetchAll: %v", err)
	}
	// PMIDs are assigned in sorted-name order: a=1, b=2, c=3.
	want := []FetchValue{
		{PMID: 1, Status: StatusOK, Value: 1},
		{PMID: 2, Status: StatusOK, Value: 2},
		{PMID: 3, Status: StatusOK, Value: 3},
	}
	if !reflect.DeepEqual(res.Values, want) {
		t.Errorf("FetchAll values: got %+v want %+v", res.Values, want)
	}

	// The batch answer must match the enumerated fetch from the same
	// snapshot (the clock has not advanced).
	enum, err := c.Fetch([]uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enum, res) {
		t.Errorf("FetchAll != enumerated fetch: %+v vs %+v", res, enum)
	}
}
