// Command pmlogger records a PMCD daemon's metrics into an archive file,
// like PCP's pmlogger: it polls the daemon at a fixed interval, appends
// each new sample (duplicate daemon samples are deduplicated by
// timestamp), and writes a varint-delta-encoded archive that cmd tools
// and the archive replay source can consume offline.
//
// Usage:
//
//	pmlogger -addr 127.0.0.1:44321 -o run.pmlog [-interval 100ms] [-duration 10s]
//	pmlogger -addr ... -o run.pmlog -rollup 10s,5m -raw-retention 1h
//	pmlogger -dump run.pmlog
//
// With -rollup the archive maintains multi-resolution rollup tiers
// alongside the raw samples; -raw-retention additionally lets a
// background compactor fold raw blocks older than the retention into
// the tiers, bounding the raw footprint of a long recording while
// keeping its full history queryable at rollup resolution.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"papimc/internal/archive"
	"papimc/internal/pcp"
	"papimc/internal/units"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:44321", "PMCD daemon address")
	out := flag.String("o", "pmlogger.pmlog", "archive output file")
	interval := flag.Duration("interval", 100*time.Millisecond, "polling interval")
	duration := flag.Duration("duration", 0, "stop after this long (0 = until Ctrl-C)")
	maxBytes := flag.Int("max-bytes", archive.DefaultMaxBytes, "ring retention budget for encoded samples")
	rollup := flag.String("rollup", "", "comma-separated rollup tier widths, finest first (e.g. 10s,5m)")
	rawRetention := flag.Duration("raw-retention", 0, "fold raw blocks older than this into the rollup tiers (0 = keep all raw)")
	dump := flag.String("dump", "", "print the given archive file and exit")
	flag.Parse()

	if *dump != "" {
		if err := dumpArchive(*dump); err != nil {
			fmt.Fprintln(os.Stderr, "pmlogger:", err)
			os.Exit(1)
		}
		return
	}
	opts := archive.Options{MaxBytes: *maxBytes, RawRetention: rawRetention.Nanoseconds()}
	var err error
	if opts.Rollups, err = parseRollups(*rollup); err != nil {
		fmt.Fprintln(os.Stderr, "pmlogger:", err)
		os.Exit(2)
	}
	if err := record(*addr, *out, *interval, *duration, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pmlogger:", err)
		os.Exit(1)
	}
}

// parseRollups turns "10s,5m" into ascending tier widths in nanoseconds.
func parseRollups(spec string) ([]int64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -rollup %q: %v", part, err)
		}
		out = append(out, d.Nanoseconds())
	}
	return out, nil
}

func record(addr, out string, interval, duration time.Duration, opts archive.Options) error {
	client, err := pcp.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()
	rec, err := archive.NewRecorderFromUpstream(client, opts)
	if err != nil {
		return err
	}
	if opts.RawRetention > 0 {
		stop := rec.Archive().StartCompactor(time.Second)
		defer stop()
	}
	fmt.Printf("pmlogger: recording %d metrics from %s every %v\n",
		len(rec.Archive().Names()), addr, interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-deadline:
			break loop
		case <-tick.C:
			if err := rec.Record(); err != nil {
				fmt.Fprintln(os.Stderr, "pmlogger: sample failed:", err)
			}
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := rec.Archive().WriteTo(f); err != nil {
		return err
	}
	st := rec.Archive().Stats()
	fmt.Printf("pmlogger: wrote %s: %d samples (%d evicted, %d folded), %s encoded vs %s raw\n",
		out, st.Samples, st.Evicted, st.Folded, units.FormatBytes(int64(st.EncodedBytes)), units.FormatBytes(int64(st.RawBytes)))
	for _, ts := range st.Tiers {
		fmt.Printf("pmlogger: rollup tier %v: %d buckets (%d evicted)\n", ts.Resolution, ts.Buckets, ts.Evicted)
	}
	return nil
}

func dumpArchive(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := archive.Read(f, archive.Options{})
	if err != nil {
		return err
	}
	st := a.Stats()
	first, last, ok := a.Span()
	fmt.Printf("%s: %d metrics, %d samples, %s encoded\n",
		path, len(a.Names()), st.Samples, units.FormatBytes(int64(st.EncodedBytes)))
	if !ok {
		return nil
	}
	fmt.Printf("span: %d ns .. %d ns (%.3f s)\n", first, last, float64(last-first)/1e9)
	for _, ts := range st.Tiers {
		tf, tl, tok := a.SpanAt(ts.Resolution)
		if !tok {
			continue
		}
		fmt.Printf("tier %v: %d buckets (%d evicted), span %.3f s .. %.3f s\n",
			ts.Resolution, ts.Buckets, ts.Evicted, float64(tf)/1e9, float64(tl)/1e9)
	}
	for _, e := range a.Names() {
		fmt.Printf("  pmid %3d  %s", e.PMID, e.Name)
		if last > first {
			if rate, err := a.Rate(e.PMID, first, last); err == nil {
				fmt.Printf("  avg %.3g/s", rate)
			}
		}
		fmt.Println()
	}
	return nil
}
