// Package testutil provides the shared serving-stack testbed: a PMCD
// daemon over a simulated Summit socket (or synthetic metrics), started
// on loopback with cleanup registered, plus client dialling helpers.
// The pcp, pmproxy, loadgen, and chaos tests all build on it instead of
// carrying their own copies of the setup.
//
// The package imports cluster (for StartClusterNodes), and cluster
// imports pmproxy for its federation edges — so pmproxy's own internal
// tests cannot import testutil without a cycle; they carry a local
// copy of the nest rig instead. Proxy construction stays with the
// callers, which also keeps proxy Config choices visible at each test
// site.
package testutil

import (
	"fmt"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/cluster"
	"papimc/internal/mem"
	"papimc/internal/nest"
	"papimc/internal/pcp"
	"papimc/internal/simtime"
	"papimc/internal/sweep"
)

// SampleInterval is the daemon sampling interval the testbeds use: long
// enough that a test can land several fetches inside one interval, short
// enough that Clock.Advance crosses it cheaply.
const SampleInterval = 10 * simtime.Millisecond

// NestBed is a running PMCD daemon exporting a Summit socket's nest PMU
// counters over an ideal (noise-free) memory controller.
type NestBed struct {
	Ctl    *mem.Controller
	Clock  *simtime.Clock
	Daemon *pcp.Daemon
	Addr   string
}

// StartNestDaemon builds the Summit-socket testbed: an ideal controller,
// a nest PMU over it, and a daemon exporting the PMU's counters,
// listening on loopback. Cleanup is registered on t.
func StartNestDaemon(t *testing.T, interval simtime.Duration) NestBed {
	t.Helper()
	clock := simtime.NewClock()
	m := arch.Summit()
	ctl := mem.NewController(mem.Config{Channels: m.Socket.MBAChannels, DisableNoise: true}, clock)
	pmu := nest.NewPMU(m, 0, ctl)
	d, err := pcp.NewDaemon(clock, interval, pcp.NestMetrics([]*nest.PMU{pmu}, nest.RootCredential()))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return NestBed{Ctl: ctl, Clock: clock, Daemon: d, Addr: addr}
}

// NestPMU rebuilds a PMU handle bound to the bed's controller, for
// metric-naming purposes only.
func (b NestBed) NestPMU() *nest.PMU {
	return nest.NewPMU(arch.Summit(), 0, b.Ctl)
}

// StartSyntheticDaemon builds a daemon exporting n synthetic metrics
// named "load.metric.%d" with fixed values i*10, listening on loopback.
// Cleanup is registered on t.
func StartSyntheticDaemon(t *testing.T, n int) (*pcp.Daemon, string) {
	t.Helper()
	d, err := pcp.NewDaemon(simtime.NewClock(), SampleInterval, SyntheticMetrics(n))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, addr
}

// SyntheticMetrics builds n fixed-value metrics named "load.metric.%d".
func SyntheticMetrics(n int) []pcp.Metric {
	ms := make([]pcp.Metric, n)
	for i := range ms {
		v := uint64(i) * 10
		ms[i] = pcp.Metric{
			Name: fmt.Sprintf("load.metric.%d", i),
			Read: func(simtime.Time) (uint64, error) { return v, nil },
		}
	}
	return ms
}

// CounterMetrics builds n monotonically advancing counters named
// "load.counter.%d": metric i ticks i+1 units per simulated millisecond,
// so successive fetches observe motion and each PMID is distinguishable
// by rate. Workload and loadgen tests use these where fixed values would
// hide a stuck sampler.
func CounterMetrics(n int) []pcp.Metric {
	ms := make([]pcp.Metric, n)
	for i := range ms {
		rate := uint64(i + 1)
		ms[i] = pcp.Metric{
			Name: fmt.Sprintf("load.counter.%d", i),
			Read: func(t simtime.Time) (uint64, error) {
				return rate * uint64(int64(t)/int64(simtime.Millisecond)), nil
			},
		}
	}
	return ms
}

// StartCounterDaemon builds a daemon exporting n CounterMetrics,
// listening on loopback. Cleanup is registered on t.
func StartCounterDaemon(t *testing.T, n int) (*pcp.Daemon, string) {
	t.Helper()
	d, err := pcp.NewDaemon(simtime.NewClock(), SampleInterval, CounterMetrics(n))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, addr
}

// ClusterBed is a fleet of in-process cluster nodes sharing one
// simulated clock.
type ClusterBed struct {
	Clock *simtime.Clock
	Nodes []*cluster.Node
}

// StartClusterNodes builds n cluster nodes — each its own PMCD daemon
// with a distinct noise seed and architecture (channel count varies by
// seed) — on a shared clock, with daemon cleanup registered on t. The
// daemons are in-process only: no listeners, so a test can spin up
// hundreds of nodes without port churn. Node i is seeded
// sweep.Seed(seed, i), the same substream convention the cluster tree
// and the sweep executor use.
func StartClusterNodes(t *testing.T, n int, seed uint64) ClusterBed {
	t.Helper()
	bed := ClusterBed{Clock: simtime.NewClock(), Nodes: make([]*cluster.Node, n)}
	for i := range bed.Nodes {
		node, err := cluster.NewNode(fmt.Sprintf("node%03d", i), sweep.Seed(seed, i), bed.Clock, SampleInterval)
		if err != nil {
			t.Fatal(err)
		}
		bed.Nodes[i] = node
		t.Cleanup(func() { node.Daemon.Close() })
	}
	return bed
}

// Dial connects a PCP client to addr, failing the test on error and
// registering cleanup.
func Dial(t *testing.T, addr string) *pcp.Client {
	t.Helper()
	c, err := pcp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}
