package kernels

import (
	"math"
	"testing"

	"papimc/internal/arch"
	"papimc/internal/cache"
	"papimc/internal/expect"
	"papimc/internal/loopnest"
	"papimc/internal/trace"
	"papimc/internal/xrand"
)

// --- numeric correctness ------------------------------------------------

func randSlice(rng *xrand.Source, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()*2 - 1
	}
	return s
}

func TestDOT(t *testing.T) {
	if got := DOT([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("DOT = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	DOT([]float64{1}, []float64{1, 2})
}

func TestGEMVMatchesManual(t *testing.T) {
	rng := xrand.New(1)
	const m, n = 7, 5
	a, x := randSlice(rng, m*n), randSlice(rng, n)
	y := make([]float64, m)
	GEMV(a, x, y, m, n)
	for i := 0; i < m; i++ {
		want := 0.0
		for k := 0; k < n; k++ {
			want += a[i*n+k] * x[k]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestCappedGEMVRecyclesRows(t *testing.T) {
	rng := xrand.New(2)
	const m, n, p = 9, 4, 3
	a, x := randSlice(rng, p*n), randSlice(rng, n)
	y := make([]float64, m)
	CappedGEMV(a, x, y, m, n, p)
	for i := 0; i < m; i++ {
		want := 0.0
		for k := 0; k < n; k++ {
			want += a[(i%p)*n+k] * x[k]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
	// Rows must repeat with period p.
	if math.Abs(y[0]-y[p]) > 1e-12 || math.Abs(y[1]-y[1+p]) > 1e-12 {
		t.Error("capped GEMV rows do not recycle with period p")
	}
}

func TestCappedGEMVWithPEqualMMatchesGEMV(t *testing.T) {
	rng := xrand.New(3)
	const m, n = 6, 6
	a, x := randSlice(rng, m*n), randSlice(rng, n)
	y1 := make([]float64, m)
	y2 := make([]float64, m)
	GEMV(a, x, y1, m, n)
	CappedGEMV(a, x, y2, m, n, m)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Errorf("y[%d]: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestGEMMMatchesManual(t *testing.T) {
	rng := xrand.New(4)
	const n = 8
	a, b := randSlice(rng, n*n), randSlice(rng, n*n)
	c := make([]float64, n*n)
	GEMM(a, b, c, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += a[i*n+k] * b[k*n+j]
			}
			if math.Abs(c[i*n+j]-want) > 1e-12 {
				t.Errorf("C[%d][%d] = %v, want %v", i, j, c[i*n+j], want)
			}
		}
	}
}

func TestGEMMIdentity(t *testing.T) {
	const n = 16
	rng := xrand.New(5)
	a := randSlice(rng, n*n)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]float64, n*n)
	GEMM(a, id, c, n)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A·I != A at %d: %v vs %v", i, c[i], a[i])
		}
	}
}

func TestBatchedGEMMMatchesSerial(t *testing.T) {
	rng := xrand.New(6)
	const n, threads = 12, 8
	as := make([][]float64, threads)
	bs := make([][]float64, threads)
	cs := make([][]float64, threads)
	want := make([][]float64, threads)
	for t := 0; t < threads; t++ {
		as[t] = randSlice(rng, n*n)
		bs[t] = randSlice(rng, n*n)
		cs[t] = make([]float64, n*n)
		want[t] = make([]float64, n*n)
		GEMM(as[t], bs[t], want[t], n)
	}
	BatchedGEMM(as, bs, cs, n)
	for th := 0; th < threads; th++ {
		for i := range cs[th] {
			if cs[th][i] != want[th][i] {
				t.Fatalf("thread %d element %d: %v vs %v", th, i, cs[th][i], want[th][i])
			}
		}
	}
}

func TestBatchedCappedGEMVMatchesSerial(t *testing.T) {
	rng := xrand.New(7)
	const m, n, p, threads = 20, 6, 5, 4
	as := make([][]float64, threads)
	xs := make([][]float64, threads)
	ys := make([][]float64, threads)
	want := make([][]float64, threads)
	for t := 0; t < threads; t++ {
		as[t] = randSlice(rng, p*n)
		xs[t] = randSlice(rng, n)
		ys[t] = make([]float64, m)
		want[t] = make([]float64, m)
		CappedGEMV(as[t], xs[t], want[t], m, n, p)
	}
	BatchedCappedGEMV(as, xs, ys, m, n, p)
	for th := 0; th < threads; th++ {
		for i := range ys[th] {
			if ys[th][i] != want[th][i] {
				t.Fatalf("thread %d element %d differs", th, i)
			}
		}
	}
}

// --- descriptor/simulator cross-validation -------------------------------

// countingMem tallies traffic from the cache simulator.
type countingMem struct{ readBytes, writeBytes int64 }

func (m *countingMem) MemRead(addr, bytes int64)  { m.readBytes += bytes }
func (m *countingMem) MemWrite(addr, bytes int64) { m.writeBytes += bytes }

// relErr is |got-want|/want.
func relErr(got, want int64) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

// simulate runs the nest on core 0 of a Summit socket with every core
// marked active (no slice borrowing, 5 MB effective share) and returns
// the memory traffic including the final drain.
func simulate(nest interface {
	Execute(core int, sink trace.Sink)
}) (int64, int64) {
	mem := &countingMem{}
	soc := arch.Summit().Socket
	active := make([]int, soc.Cores)
	for i := range active {
		active[i] = i
	}
	h := cache.New(cache.Config{Socket: soc, ActiveCores: active}, mem)
	nest.Execute(0, h)
	h.Drain()
	return mem.readBytes, mem.writeBytes
}

// The exact simulator must reproduce the paper's GEMM expectation
// (3N² element reads, N² writes) for a cache-resident problem size.
func TestGEMMNestTrafficMatchesExpectation(t *testing.T) {
	const n = 128
	nest := GEMMNest(trace.NewAddressSpace(), "gemm", n)
	if err := nest.Validate(); err != nil {
		t.Fatal(err)
	}
	reads, writes := simulate(nest)
	want := expect.GEMM(n)
	if e := relErr(reads, want.ReadBytes); e > 0.03 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.03 {
		t.Errorf("writes = %d, want %d (rel err %.3f)", writes, want.WriteBytes, e)
	}
}

// For a capped GEMV whose matrix exceeds the per-core cache share, the
// simulator must reproduce M×N + M + N element reads and M writes.
func TestCappedGEMVNestTrafficMatchesExpectation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million access simulation")
	}
	// A must exceed the core pair's whole 10 MB slice (only one core
	// issues traffic here, so it owns the pair slice) for the
	// no-row-reuse expectation to hold.
	const (
		n = 1200 // A is 11.5 MB > the 10 MB pair slice
		p = 1200
		m = 2400
	)
	nest := CappedGEMVNest(trace.NewAddressSpace(), "cgemv", m, n, p)
	if err := nest.Validate(); err != nil {
		t.Fatal(err)
	}
	reads, writes := simulate(nest)
	want := expect.CappedGEMV(m, n)
	if e := relErr(reads, want.ReadBytes); e > 0.05 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.05 {
		t.Errorf("writes = %d, want %d (rel err %.3f)", writes, want.WriteBytes, e)
	}
}

// A cache-resident square GEMV: expectation M²+2M reads, M writes.
func TestSquareGEMVNestTraffic(t *testing.T) {
	const m = 512 // A = 2 MB: streams through cache once
	nest := CappedGEMVNest(trace.NewAddressSpace(), "sgemv", m, m, m)
	reads, writes := simulate(nest)
	want := expect.SquareGEMV(m)
	if e := relErr(reads, want.ReadBytes); e > 0.05 {
		t.Errorf("reads = %d, want %d (rel err %.3f)", reads, want.ReadBytes, e)
	}
	if e := relErr(writes, want.WriteBytes); e > 0.05 {
		t.Errorf("writes = %d, want %d (rel err %.3f)", writes, want.WriteBytes, e)
	}
}

func TestBatchedDescriptorsDisjoint(t *testing.T) {
	as := trace.NewAddressSpace()
	nests := Batched(as, 4, func(th int, as *trace.AddressSpace) *loopnest.Nest {
		return GEMMNest(as, "g", 16)
	})
	if len(nests) != 4 {
		t.Fatalf("Batched returned %d nests", len(nests))
	}
	// Regions across threads must not overlap.
	var regions []trace.Region
	for _, n := range nests {
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, r := range n.Refs {
			regions = append(regions, r.Array)
		}
	}
	for i, r := range regions {
		for _, o := range regions[i+1:] {
			if r.Base < o.End() && o.Base < r.End() {
				t.Fatalf("regions %s and %s overlap across threads", r.Name, o.Name)
			}
		}
	}
}
