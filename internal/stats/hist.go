package stats

import (
	"math/bits"
	"sort"
)

// Histogram is an HDR-style log-bucketed latency histogram: values are
// binned into power-of-two ranges, each split into histSub linear
// sub-buckets, so any recorded value is represented with at most
// 1/histSub (≈3%) relative error while the whole structure is a fixed
// flat array — recording is O(1), allocation-free, and quantile queries
// are a single pass.
//
// Values are int64 (nanoseconds, in the load-generator's use), clamped
// at zero. The zero value is an empty histogram ready to use. A
// Histogram is not safe for concurrent use; concurrent recorders keep
// one each and Merge them at the end, which keeps counts exact.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	min    int64
	max    int64
}

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // linear sub-buckets per power of two
	// Values up to 2^62 map below this; the last bucket absorbs the rest.
	histBuckets = histSub * (64 - histSubBits)
)

// bucketIndex maps v to its bucket. Values below histSub are exact; a
// larger value with highest set bit b lands in major bucket b-histSubBits,
// sub-indexed by its top histSubBits+1 bits.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - histSubBits - 1
	idx := int(exp)*histSub + int(v>>uint(exp))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns the midpoint of bucket idx's value range, the value
// reported for quantiles landing in that bucket.
func bucketMid(idx int) float64 {
	if idx < histSub {
		return float64(idx)
	}
	exp := uint(idx/histSub - 1)
	lo := int64(idx%histSub+histSub) << exp
	return float64(lo) + float64(int64(1)<<exp)/2
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Min returns the smallest recorded value (0 if empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the value at quantile q in [0, 1] — Quantile(0.99) is
// the p99. The answer carries the histogram's ≈3% relative bucketing
// error, except at the extremes where the exact observed min/max are
// returned. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			m := bucketMid(i)
			// Never report outside the observed range: the first and
			// last occupied buckets may straddle min/max.
			if m < float64(h.min) {
				m = float64(h.min)
			}
			if m > float64(h.max) {
				m = float64(h.max)
			}
			return m
		}
	}
	return float64(h.max)
}

// Quantiles returns the value at each quantile in qs — the batch form of
// Quantile, answering p50/p90/p99/p999 (the capacity analyzer's set) in
// one pass over the buckets instead of one per quantile. qs may be in any
// order; the result is positionally aligned with qs and each entry is
// exactly what Quantile would have returned for that q.
func (h *Histogram) Quantiles(qs []float64) []float64 {
	out := make([]float64, len(qs))
	if h.total == 0 {
		return out
	}
	// Process quantiles in ascending rank order so one cumulative sweep
	// answers all of them; ordering only affects the visit order, not the
	// per-q answer.
	order := make([]int, len(qs))
	for i := range order {
		order[i] = i
	}
	rank := func(q float64) int64 {
		r := int64(q*float64(h.total) + 0.5)
		if r < 1 {
			r = 1
		}
		if r > h.total {
			r = h.total
		}
		return r
	}
	sort.Slice(order, func(a, b int) bool { return qs[order[a]] < qs[order[b]] })
	// seen is the cumulative count of buckets [0, bucket); consuming a
	// bucket advances both, so no count is ever added twice.
	var seen int64
	bucket := 0
	for _, oi := range order {
		q := qs[oi]
		switch {
		case q <= 0:
			out[oi] = float64(h.min)
			continue
		case q >= 1:
			out[oi] = float64(h.max)
			continue
		}
		r := rank(q)
		for seen < r && bucket < histBuckets {
			seen += h.counts[bucket]
			bucket++
		}
		if bucket == 0 || seen < r {
			out[oi] = float64(h.max)
			continue
		}
		m := bucketMid(bucket - 1)
		if m < float64(h.min) {
			m = float64(h.min)
		}
		if m > float64(h.max) {
			m = float64(h.max)
		}
		out[oi] = m
	}
	return out
}

// Merge adds o's observations into h. Counts stay exact: merging
// per-worker histograms equals having recorded every value into one.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Reset empties the histogram for reuse.
func (h *Histogram) Reset() {
	*h = Histogram{}
}
